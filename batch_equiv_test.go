package lcds

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/rng"
	"repro/internal/scheme"

	_ "repro/internal/baseline" // register the comparison roster
)

// The wavefront batch path promises more than equal answers: each query must
// probe exactly the cells — at exactly the step numbers — that the
// sequential path would probe for it, so the paper's probe distributions
// (and with them every contention bound) are untouched by batching. This
// battery checks that promise cell by cell across replica layouts and
// wavefront widths, on the static core, the whole registered roster, and
// the dynamic dictionary's buffered epochs.

// captureScalar answers each key sequentially with per-query capture on,
// returning answers and per-query probe logs.
func captureScalar(t *testing.T, contains func(x uint64, sc *core.QueryScratch) (bool, error), keys []uint64) ([]bool, [][]int32) {
	t.Helper()
	ans := make([]bool, len(keys))
	logs := make([][]int32, len(keys))
	sc := new(core.QueryScratch)
	for i, x := range keys {
		sc.StartCapture()
		ok, err := contains(x, sc)
		if err != nil {
			t.Fatalf("scalar query %d (key %d): %v", i, x, err)
		}
		ans[i] = ok
		logs[i] = append([]int32(nil), sc.StopCapture()...)
	}
	return ans, logs
}

// requireSameLogs asserts per-query probe-cell equality between the scalar
// and batch captures.
func requireSameLogs(t *testing.T, scalar, batch [][]int32, label string) {
	t.Helper()
	if len(batch) < len(scalar) {
		// Queries a batch never admitted (buffer-resolved) may be absent
		// from the tail; pad the view.
		batch = append(append([][]int32(nil), batch...), make([][]int32, len(scalar)-len(batch))...)
	}
	for i := range scalar {
		a, b := scalar[i], batch[i]
		if len(a) != len(b) {
			t.Fatalf("%s: query %d probed %d steps scalar vs %d batch", label, i, len(a), len(b))
		}
		for s := range a {
			if a[s] != b[s] {
				t.Fatalf("%s: query %d step %d probed cell %d scalar vs %d batch", label, i, s, a[s], b[s])
			}
		}
	}
}

// TestBatchWavefrontCellEquivalence: on the static core — every replica
// layout × a sweep of wavefront widths — the batch path must return the
// scalar answers, probe the scalar cells at the scalar steps, and consume
// the shared random stream to exactly the scalar position (checked by
// comparing the next raw draw of both sources).
func TestBatchWavefrontCellEquivalence(t *testing.T) {
	stored := testKeys(2048, 21)
	probes := append(append([]uint64(nil), stored[:512]...), testKeys(512, 22)...)

	layouts := []struct {
		name string
		p    core.Params
	}{
		{"block", core.Params{}},
		{"strided", core.Params{Strided: true}},
		{"compact", core.Params{Compact: true}},
	}
	for _, lay := range layouts {
		d, err := core.Build(stored, lay.p, 21)
		if err != nil {
			t.Fatal(err)
		}
		rs := rng.New(77)
		want, wantLogs := captureScalar(t, func(x uint64, sc *core.QueryScratch) (bool, error) {
			return d.ContainsScratch(x, rs, sc)
		}, probes)

		for _, g := range []int{1, 2, 3, 8, 16, 64} {
			t.Run(fmt.Sprintf("%s/G=%d", lay.name, g), func(t *testing.T) {
				d.SetBatchGroup(g)
				defer d.SetBatchGroup(0)
				rb := rng.New(77)
				out := make([]bool, len(probes))
				sc := new(core.QueryScratch)
				sc.StartBatchCapture()
				if err := d.ContainsBatch(probes, out, rb, sc); err != nil {
					t.Fatal(err)
				}
				logs := sc.StopBatchCapture()
				for i := range probes {
					if out[i] != want[i] {
						t.Fatalf("query %d (key %d): batch=%v scalar=%v", i, probes[i], out[i], want[i])
					}
				}
				requireSameLogs(t, wantLogs, logs, lay.name)
				// Whole-batch stream identity: both sources must sit at the
				// same position, so batches compose with scalar queries on a
				// shared stream.
				rs2, rb2 := rng.New(77), rng.New(77)
				scalarDrain(t, d, probes, rs2)
				if err := d.ContainsBatch(probes, out, rb2, nil); err != nil {
					t.Fatal(err)
				}
				if a, b := rs2.Uint64(), rb2.Uint64(); a != b {
					t.Fatalf("random stream diverged: next draw %d scalar vs %d batch", a, b)
				}
			})
		}
	}
}

func scalarDrain(t *testing.T, d *core.Dict, keys []uint64, r rng.Source) {
	t.Helper()
	sc := new(core.QueryScratch)
	for _, x := range keys {
		if _, err := d.ContainsScratch(x, r, sc); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchRosterEquivalence runs every registered scheme through the batch
// helper — the real wavefront for structures that have one, a sequential
// loop otherwise — and requires agreement with a sequential reference run
// on an identically seeded source, plus ground-truth membership for exact
// schemes.
func TestBatchRosterEquivalence(t *testing.T) {
	stored := testKeys(512, 31)
	probes := append(append([]uint64(nil), stored[:128]...), testKeys(128, 32)...)
	member := make(map[uint64]bool, len(stored))
	for _, k := range stored {
		member[k] = true
	}

	batchContains := func(s scheme.Scheme, keys []uint64, out []bool, r rng.Source) error {
		if cd, ok := s.(*core.Dict); ok {
			return cd.ContainsBatch(keys, out, r, nil)
		}
		for i, x := range keys {
			ok, err := s.Contains(x, r)
			if err != nil {
				return err
			}
			out[i] = ok
		}
		return nil
	}

	for _, info := range scheme.Infos() {
		t.Run(info.Name, func(t *testing.T) {
			s, err := info.Build(stored, 31)
			if err != nil {
				t.Fatal(err)
			}
			rs := rng.New(99)
			want := make([]bool, len(probes))
			for i, x := range probes {
				ok, err := s.Contains(x, rs)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = ok
			}
			rb := rng.New(99)
			out := make([]bool, len(probes))
			if err := batchContains(s, probes, out, rb); err != nil {
				t.Fatal(err)
			}
			for i, x := range probes {
				if out[i] != want[i] {
					t.Fatalf("key %d: batch=%v sequential=%v", x, out[i], want[i])
				}
				if !info.Approximate && out[i] != member[x] {
					t.Fatalf("key %d: answer %v, membership %v", x, out[i], member[x])
				}
			}
		})
	}
}

// TestBatchDynamicBufferedEquivalence: on a dynamic dictionary whose buffer
// holds live inserts and tombstones, the batch path must resolve buffered
// keys identically, hand the static wavefront the rest in sequential order,
// and leave the shared random stream at the sequential position. Static
// probe cells are compared via batch capture (buffer-resolved queries
// record no static probes on either path).
func TestBatchDynamicBufferedEquivalence(t *testing.T) {
	base := testKeys(2048, 41)
	extra := testKeys(256, 42)
	d, err := dynamic.New(base, dynamic.Params{Epsilon: 0.5, SyncRebuild: true}, 41)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range extra {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range base[:64] { // tombstone snapshot keys into the buffer
		if _, err := d.Delete(k); err != nil {
			t.Fatal(err)
		}
	}

	probes := append(append([]uint64(nil), base[:256]...), extra[:128]...)
	probes = append(probes, testKeys(128, 43)...)

	rs := rng.New(55)
	want, wantLogs := captureScalar(t, func(x uint64, sc *core.QueryScratch) (bool, error) {
		return d.ContainsScratch(x, rs, sc)
	}, probes)

	rb := rng.New(55)
	out := make([]bool, len(probes))
	sc := new(core.QueryScratch)
	sc.StartBatchCapture()
	if err := d.ContainsBatchScratch(probes, out, rb, sc); err != nil {
		t.Fatal(err)
	}
	logs := sc.StopBatchCapture()
	for i := range probes {
		if out[i] != want[i] {
			t.Fatalf("query %d (key %d): batch=%v scalar=%v", i, probes[i], out[i], want[i])
		}
	}
	requireSameLogs(t, wantLogs, logs, "dynamic")
	if a, b := rs.Uint64(), rb.Uint64(); a != b {
		t.Fatalf("random stream diverged: next draw %d scalar vs %d batch", a, b)
	}
}

// TestBatchDynamicMidRebuild triggers a background rebuild and answers
// batches while it may be in flight: every answer must match current
// membership regardless of which epoch the batch pins.
func TestBatchDynamicMidRebuild(t *testing.T) {
	base := testKeys(4096, 51)
	extra := testKeys(2048, 52)
	d, err := dynamic.New(base, dynamic.Params{Epsilon: 0.1}, 51)
	if err != nil {
		t.Fatal(err)
	}
	member := make(map[uint64]bool, len(base)+len(extra))
	for _, k := range base {
		member[k] = true
	}
	probes := append(append([]uint64(nil), base[:512]...), extra[:512]...)
	r := rng.New(66)
	out := make([]bool, len(probes))
	inserted := 0
	for _, k := range extra {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
		member[k] = true
		inserted++
		if inserted%256 != 0 {
			continue
		}
		// A rebuild is plausibly in flight right now; the batch pins
		// whatever epoch is current and must still answer exactly.
		if err := d.ContainsBatch(probes, out, r); err != nil {
			t.Fatal(err)
		}
		for i, x := range probes {
			if out[i] != member[x] {
				t.Fatalf("after %d inserts: key %d = %v, want %v (rebuilding=%v)",
					inserted, x, out[i], member[x], d.Rebuilding())
			}
		}
	}
	d.Quiesce()
	if err := d.ContainsBatch(probes, out, r); err != nil {
		t.Fatal(err)
	}
	for i, x := range probes {
		if out[i] != member[x] {
			t.Fatalf("after quiesce: key %d = %v, want %v", x, out[i], member[x])
		}
	}
}
