//go:build !race

package lcds

import (
	"runtime/debug"
	"testing"
)

// assertPooledPathsZeroAlloc asserts strict zero allocations on the pooled
// facade paths (Contains with pooled scratch + sharded source, and
// ContainsBatch). GC is paused while counting so pool refills after a
// collection don't land in the measurement. The race build replaces this
// with a correctness-only pass — see zeroalloc_race_test.go.
func assertPooledPathsZeroAlloc(t *testing.T, d *Dict, keys []uint64) {
	gc := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gc)

	// Facade single-key path (pooled scratch + sharded source).
	d.Contains(keys[0])
	i := 0
	if allocs := testing.AllocsPerRun(400, func() {
		i++
		if !d.Contains(keys[i%len(keys)]) {
			t.Error("lost key")
		}
	}); allocs != 0 {
		t.Fatalf("facade Contains: %v allocs/op, want 0", allocs)
	}

	// Facade batch path.
	batch := keys[:256]
	out := make([]bool, len(batch))
	if err := d.ContainsBatch(batch, out); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := d.ContainsBatch(batch, out); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Fatalf("facade ContainsBatch: %v allocs per batch, want 0", allocs)
	}
}
