package lcds

import (
	"encoding/json"
	"testing"
)

// TestEventLogOff checks that a dictionary built without WithEventLog and
// without WithTelemetry has no flight recorder and that Timeline degrades to
// the identity cursor.
func TestEventLogOff(t *testing.T) {
	keys := testKeys(300, 61)
	d, err := New(keys, WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	if d.EventLog() != nil {
		t.Fatal("bare dictionary has an event log")
	}
	if evs, next := d.Timeline(7, 10); evs != nil || next != 7 {
		t.Fatalf("Timeline off = (%v, %d), want (nil, 7)", evs, next)
	}
}

// TestEventLogStatic checks the WithEventLog surface on a static dictionary:
// the log exists, queries run at full speed (the pooled paths stay
// zero-alloc), and the timeline is empty — static dictionaries have no
// structural transitions to record.
func TestEventLogStatic(t *testing.T) {
	keys := testKeys(2000, 62)
	d, err := New(keys, WithSeed(62), WithEventLog(EventLogConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if d.EventLog() == nil {
		t.Fatal("WithEventLog left no log")
	}
	assertPooledPathsZeroAlloc(t, d, keys)
	if evs, _ := d.Timeline(0, 100); len(evs) != 0 {
		t.Fatalf("static dictionary recorded %d events", len(evs))
	}
}

// TestEventLogTelemetryImplied checks that WithTelemetry alone installs the
// always-on log, that WithEventLog sizes the shared one, and that the
// telemetry snapshot carries the log's stats.
func TestEventLogTelemetryImplied(t *testing.T) {
	keys := testKeys(500, 63)
	d, err := New(keys, WithSeed(63), WithTelemetry(TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if d.EventLog() == nil {
		t.Fatal("WithTelemetry left no event log")
	}
	if d.EventLog() != d.Telemetry().Events() {
		t.Fatal("facade log differs from the telemetry layer's")
	}
	s := d.Telemetry().Snapshot()
	if s.Events.ByType == nil {
		t.Fatal("snapshot carries no event stats")
	}

	d2, err := New(keys, WithSeed(63),
		WithTelemetry(TelemetryConfig{}), WithEventLog(EventLogConfig{RingCapacity: 64}))
	if err != nil {
		t.Fatal(err)
	}
	if d2.EventLog() != d2.Telemetry().Events() {
		t.Fatal("explicit log was not shared with the telemetry layer")
	}
}

// checkTimelineCoherence asserts the structural invariants of a drained
// timeline: per shard, every RebuildStart is balanced by a RebuildEnd (after
// Quiesce), epochs never decrease, PhaseSplit and PhaseJoined strictly
// alternate, and OverflowDropped entries account for the log's drop counter
// exactly. It returns the per-type totals observed.
func checkTimelineCoherence(t *testing.T, evs []Event, log *EventLog) map[EventType]int {
	t.Helper()
	starts := map[int32]int{}
	ends := map[int32]int{}
	lastEpoch := map[int32]uint64{}
	split := map[int32]bool{}
	counts := map[EventType]int{}
	var droppedTotal, lastSeq uint64
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("timeline seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		counts[ev.Type]++
		switch ev.Type {
		case EventRebuildStart:
			starts[ev.Shard]++
			if ev.A < lastEpoch[ev.Shard] {
				t.Fatalf("shard %d epoch went backwards: %d after %d", ev.Shard, ev.A, lastEpoch[ev.Shard])
			}
			lastEpoch[ev.Shard] = ev.A
		case EventRebuildEnd:
			if _, failed := EventFailedRebuild(ev.A); failed {
				t.Fatalf("unexpected failed rebuild: %+v", ev)
			}
			ends[ev.Shard]++
		case EventPhaseSplit:
			if split[ev.Shard] {
				t.Fatalf("shard %d split twice without a join", ev.Shard)
			}
			split[ev.Shard] = true
			if ev.B == 0 {
				t.Fatalf("PhaseSplit with empty hot set: %+v", ev)
			}
		case EventPhaseJoined:
			if !split[ev.Shard] {
				t.Fatalf("shard %d joined without a split", ev.Shard)
			}
			split[ev.Shard] = false
		case EventOverflowDropped:
			droppedTotal = ev.B
		}
	}
	for shard, n := range starts {
		if ends[shard] != n {
			t.Fatalf("shard %d: %d RebuildStart vs %d RebuildEnd", shard, n, ends[shard])
		}
	}
	if got := log.Dropped(); droppedTotal != got {
		t.Fatalf("OverflowDropped total %d, log dropped %d", droppedTotal, got)
	}
	return counts
}

// TestEventLogDynamicTimeline churns a dynamic dictionary (unsharded and
// sharded) and checks the recorded timeline is coherent: sealed epochs,
// balanced rebuilds, shard labels within range.
func TestEventLogDynamicTimeline(t *testing.T) {
	for _, shards := range []int{1, 4} {
		keys := testKeys(1200, 64)
		opts := []Option{WithSeed(64), WithEventLog(EventLogConfig{})}
		if shards > 1 {
			opts = append(opts, WithShards(shards))
		}
		d, err := NewDynamic(keys[:600], 0.1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys[600:] {
			if _, err := d.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range keys[:300] {
			if _, err := d.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
		d.Quiesce()
		evs, next := d.Timeline(0, 1<<20)
		if len(evs) == 0 {
			t.Fatalf("shards=%d: empty timeline after churn", shards)
		}
		if next != evs[len(evs)-1].Seq {
			t.Fatalf("cursor %d != last seq %d", next, evs[len(evs)-1].Seq)
		}
		counts := checkTimelineCoherence(t, evs, d.EventLog())
		if counts[EventRebuildStart] < shards {
			t.Fatalf("shards=%d: only %d rebuilds recorded", shards, counts[EventRebuildStart])
		}
		if counts[EventEpochSealed] == 0 {
			t.Fatalf("shards=%d: no sealed epochs recorded", shards)
		}
		if shards > 1 && counts[EventShardRebuild] == 0 {
			t.Fatal("sharded dictionary recorded no ShardRebuild events")
		}
		for _, ev := range evs {
			if ev.Shard < 0 || int(ev.Shard) >= shards {
				t.Fatalf("event shard %d outside [0, %d)", ev.Shard, shards)
			}
			if _, err := json.Marshal(ev); err != nil {
				t.Fatalf("event does not marshal: %v", err)
			}
		}
		// Incremental pagination from the cursor sees only what happens next.
		if more, next2 := d.Timeline(next, 100); len(more) != 0 || next2 != next {
			t.Fatalf("quiesced dictionary kept emitting: %d events", len(more))
		}
	}
}

// TestEventLogAbsorptionPhases hammers hot keys on an absorbing dictionary
// until phases split, then lets them cool, and checks the split/join
// transitions and hot-key promotions appear on the timeline with hashed
// payloads.
func TestEventLogAbsorptionPhases(t *testing.T) {
	keys := testKeys(600, 65)
	d, err := NewDynamic(keys, 0.1, WithSeed(65), WithWriteAbsorption(),
		WithEventLog(EventLogConfig{TimelineCapacity: 1 << 14}))
	if err != nil {
		t.Fatal(err)
	}
	hot := keys[0]
	// Phase 1: concentrate churn on one key until it is promoted.
	for i := 0; i < 6000 && !d.Stats().SplitPhase; i++ {
		if _, err := d.Delete(hot); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Insert(hot); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			d.Quiesce()
		}
	}
	d.Quiesce()
	if !d.Stats().SplitPhase {
		t.Skip("hot key never promoted under this schedule")
	}
	// Phase 2: cool traffic until the phase joins again.
	for i := 1; i < 4000 && d.Stats().SplitPhase; i++ {
		k := keys[i%len(keys)]
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			d.Quiesce()
		}
	}
	d.Quiesce()
	evs, _ := d.Timeline(0, 1<<20)
	counts := checkTimelineCoherence(t, evs, d.EventLog())
	if counts[EventPhaseSplit] == 0 {
		t.Fatal("no PhaseSplit recorded despite a split phase")
	}
	if counts[EventHotKeyPromoted] == 0 {
		t.Fatal("no HotKeyPromoted recorded")
	}
	for _, ev := range evs {
		if ev.Type == EventHotKeyPromoted && ev.A == hot {
			t.Fatal("promotion event leaked the raw key")
		}
	}
}
