package lcds

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/workload"
)

// benchConfig scales the experiment suite for benchmarking. Set the
// LCDS_BENCH_FULL environment variable to run at the full sizes used for
// EXPERIMENTS.md; the default keeps `go test -bench=.` affordable.
func benchConfig() experiments.Config {
	if os.Getenv("LCDS_BENCH_FULL") != "" {
		return experiments.Default()
	}
	cfg := experiments.Default()
	cfg.Sizes = []int{512, 1024, 2048, 4096}
	cfg.FixedN = 2048
	cfg.Queries = 50000
	cfg.Procs = []int{1, 4, 16, 64}
	cfg.Trials = 10
	return cfg
}

// benchExperiment regenerates one experiment table per iteration. Run with
// -v to see the rendered table once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	cfg := benchConfig()
	var out io.Writer = io.Discard
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			out = os.Stderr
		}
		if err := tab.Render(out); err != nil {
			b.Fatal(err)
		}
		out = io.Discard
	}
}

// One benchmark per evaluation artifact (DESIGN.md §3).

// BenchmarkTableT1 regenerates T1 — Theorem 3's contention/time/space table.
func BenchmarkTableT1(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkTableT2 regenerates T2 — the §1.3 baseline comparison sweep.
func BenchmarkTableT2(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkTableT3 regenerates T3 — skewed query distributions.
func BenchmarkTableT3(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkTableT4 regenerates T4 — construction cost.
func BenchmarkTableT4(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkTableT5 regenerates T5 — Lemma 9 success rates.
func BenchmarkTableT5(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkFigureF1 regenerates F1 — per-cell contention profiles.
func BenchmarkFigureF1(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkFigureF2 regenerates F2 — hot-spot slowdown vs processors.
func BenchmarkFigureF2(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkFigureF3 regenerates F3 — the Theorem 13 t* growth series.
func BenchmarkFigureF3(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkFigureF4 regenerates F4 — Lemma 14/16 accounting on real specs.
func BenchmarkFigureF4(b *testing.B) { benchExperiment(b, "F4") }

// BenchmarkTableT6 regenerates T6 — absolute contention maxΦ·n.
func BenchmarkTableT6(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkTableX1 regenerates X1 — dynamic-extension update contention.
func BenchmarkTableX1(b *testing.B) { benchExperiment(b, "X1") }

// BenchmarkTableA1 regenerates A1 — space-factor ablation.
func BenchmarkTableA1(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkTableA2 regenerates A2 — independence-degree ablation.
func BenchmarkTableA2(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkTableA3 regenerates A3 — memory-bank ablation.
func BenchmarkTableA3(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkTableA4 regenerates A4 — replica-layout ablation.
func BenchmarkTableA4(b *testing.B) { benchExperiment(b, "A4") }

// BenchmarkTableA5 regenerates A5 — read-combining ablation.
func BenchmarkTableA5(b *testing.B) { benchExperiment(b, "A5") }

// BenchmarkTableA6 regenerates A6 — hash-family ablation.
func BenchmarkTableA6(b *testing.B) { benchExperiment(b, "A6") }

// BenchmarkTableA7 regenerates A7 — sharded contention composition.
func BenchmarkTableA7(b *testing.B) { benchExperiment(b, "A7") }

// BenchmarkTableA8 regenerates A8 — live telemetry vs exact analysis.
func BenchmarkTableA8(b *testing.B) { benchExperiment(b, "A8") }

// BenchmarkTableT7 regenerates T7 — uniform-negative query sweep.
func BenchmarkTableT7(b *testing.B) { benchExperiment(b, "T7") }

// BenchmarkFigureF5 regenerates F5 — open-system saturation curves.
func BenchmarkFigureF5(b *testing.B) { benchExperiment(b, "F5") }

// BenchmarkTableW1 regenerates W1 — realistic-workload contention.
func BenchmarkTableW1(b *testing.B) { benchExperiment(b, "W1") }

// BenchmarkTableX2 regenerates X2 — known-distribution skew repair.
func BenchmarkTableX2(b *testing.B) { benchExperiment(b, "X2") }

// BenchmarkTableP1 regenerates P1 — real-hardware goroutine scaling.
func BenchmarkTableP1(b *testing.B) { benchExperiment(b, "P1") }

// --- Real shared-memory benchmarks -----------------------------------------
//
// The cell-probe model's contention prediction should manifest as wall-clock
// scalability on actual hardware: structures whose queries converge on few
// cache lines (binary search root, plain hash parameters) bounce those lines
// between cores, while the low-contention dictionary's randomized replicas
// spread traffic. These benches issue membership queries from all procs via
// RunParallel with probe recording off.

const benchN = 1 << 14

func benchKeys(b *testing.B) []uint64 {
	b.Helper()
	return testKeys(benchN, 1)
}

// BenchmarkParallelLCDS measures concurrent membership queries on the
// low-contention dictionary.
func BenchmarkParallelLCDS(b *testing.B) {
	keys := benchKeys(b)
	d, err := New(keys, WithSeed(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(rand64())
		for pb.Next() {
			k := keys[r.Intn(len(keys))]
			ok, err := d.inner.Contains(k, r)
			if err != nil || !ok {
				b.Fail()
				return
			}
		}
	})
}

// BenchmarkParallelFKS measures concurrent queries on replicated FKS.
func BenchmarkParallelFKS(b *testing.B) {
	keys := benchKeys(b)
	d, err := baseline.BuildFKS(keys, true, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(rand64())
		for pb.Next() {
			k := keys[r.Intn(len(keys))]
			ok, err := d.Contains(k, r)
			if err != nil || !ok {
				b.Fail()
				return
			}
		}
	})
}

// BenchmarkParallelCuckoo measures concurrent queries on replicated cuckoo.
func BenchmarkParallelCuckoo(b *testing.B) {
	keys := benchKeys(b)
	d, err := baseline.BuildCuckoo(keys, true, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(rand64())
		for pb.Next() {
			k := keys[r.Intn(len(keys))]
			ok, err := d.Contains(k, r)
			if err != nil || !ok {
				b.Fail()
				return
			}
		}
	})
}

// BenchmarkParallelBinarySearch measures concurrent queries on the sorted
// array — the maximally contended baseline.
func BenchmarkParallelBinarySearch(b *testing.B) {
	keys := benchKeys(b)
	d, err := baseline.BuildBinarySearch(keys, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(rand64())
		for pb.Next() {
			k := keys[r.Intn(len(keys))]
			ok, err := d.Contains(k, r)
			if err != nil || !ok {
				b.Fail()
				return
			}
		}
	})
}

// BenchmarkPublicContains exercises the facade's per-call RNG derivation.
func BenchmarkPublicContains(b *testing.B) {
	keys := benchKeys(b)
	d, err := New(keys, WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.Contains(keys[i%len(keys)]) {
			b.Fatal("lost key")
		}
	}
}

// benchContainsTelemetry is the shared body of the telemetry-overhead
// benchmark pair: the single-key facade path with the given extra options.
func benchContainsTelemetry(b *testing.B, extra ...Option) {
	b.Helper()
	keys := benchKeys(b)
	d, err := New(keys, append([]Option{WithSeed(3)}, extra...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.Contains(keys[i%len(keys)]) {
			b.Fatal("lost key")
		}
	}
}

// BenchmarkContainsTelemetryOff guards the telemetry-off overhead contract:
// no sink is installed, so this must track BenchmarkPublicContains within
// noise (< 3% vs the committed BENCH_*.json baseline) at 0 allocs/op.
func BenchmarkContainsTelemetryOff(b *testing.B) { benchContainsTelemetry(b) }

// BenchmarkContainsTelemetryOn measures the worst-case telemetry cost:
// every probe counted (sampling 1) on the striped per-cell and per-step
// vectors, plus latency/outcome accounting per query.
func BenchmarkContainsTelemetryOn(b *testing.B) {
	benchContainsTelemetry(b, WithTelemetry(TelemetryConfig{Sample: 1}))
}

// BenchmarkContainsTelemetrySampled measures the 1-in-64 sampling point —
// the configuration meant for always-on production telemetry.
func BenchmarkContainsTelemetrySampled(b *testing.B) {
	benchContainsTelemetry(b, WithTelemetry(TelemetryConfig{Sample: 64}))
}

// BenchmarkContainsTelemetryAdaptive measures the controller-tuned path at
// the same effective rate as BenchmarkContainsTelemetrySampled (bounds pin
// k = 64): the extra cost over fixed-k sampling is one atomic factor load
// per probe plus the pre-scaled add on kept probes, and must stay within
// noise of the fixed-k figure at 0 allocs/op.
func BenchmarkContainsTelemetryAdaptive(b *testing.B) {
	benchContainsTelemetry(b, WithTelemetry(TelemetryConfig{
		Adaptive: &TelemetryAdaptiveConfig{TargetProbesPerSec: 1, MinSample: 64, MaxSample: 64},
	}))
}

// BenchmarkBuild measures construction throughput at the bench size.
func BenchmarkBuild(b *testing.B) {
	keys := benchKeys(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(keys, WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildParallel races GOMAXPROCS independent hash draws per round
// during construction (WithParallelBuild). Deterministic per (seed, workers).
func BenchmarkBuildParallel(b *testing.B) {
	keys := benchKeys(b)
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(keys, WithSeed(uint64(i+1)), WithParallelBuild(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContainsScratch measures the zero-allocation core fast path: an
// explicit QueryScratch and a sequential RNG, no pools. Expect 0 allocs/op.
func BenchmarkContainsScratch(b *testing.B) {
	keys := benchKeys(b)
	d, err := New(keys, WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	sc := new(core.QueryScratch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := d.inner.ContainsScratch(keys[i%len(keys)], r, sc)
		if err != nil || !ok {
			b.Fatal("lost key")
		}
	}
}

// BenchmarkContainsBatch measures the facade batch path — the wavefront
// scheduler that keeps BatchGroup probe chains in flight behind software
// prefetches — across batch sizes: small batches barely fill the wavefront,
// large ones show its steady state. Queries cycle the stored keys when the
// batch exceeds the key count. Expect 0 allocs per batch.
func BenchmarkContainsBatch(b *testing.B) {
	keys := benchKeys(b)
	d, err := New(keys, WithSeed(8))
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{64, 1024, 32768} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			qs := make([]uint64, batch)
			for i := range qs {
				qs[i] = keys[i%len(keys)]
			}
			out := make([]bool, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.ContainsBatch(qs, out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Per-key figure: divide ns/op by the batch size.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(batch), "ns/key")
		})
	}
}

// BenchmarkContainsBatchGroup sweeps the wavefront width G at a fixed batch
// size, bracketing the default (8): G=1 is the scalar query-at-a-time
// reference, and the curve flattens once G covers the core's memory-level
// parallelism. Answers are identical at every width by contract.
func BenchmarkContainsBatchGroup(b *testing.B) {
	keys := benchKeys(b)
	const batch = 1024
	out := make([]bool, batch)
	for _, g := range []int{1, 4, 8, 16} {
		d, err := New(keys, WithSeed(8), WithBatchGroup(g))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.ContainsBatch(keys[:batch], out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/key")
		})
	}
}

// BenchmarkExactContention compares the serial and parallel exact contention
// analyses; the parallel run is bit-identical to the serial one by contract.
func BenchmarkExactContention(b *testing.B) {
	keys := benchKeys(b)
	d, err := New(keys, WithSeed(9))
	if err != nil {
		b.Fatal(err)
	}
	support := dist.NewUniformSet(keys, "").Support()
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := contention.ExactWorkers(d.inner, support, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Goroutine-count scaling benchmarks ------------------------------------
//
// The refactor removed every shared mutable word from the read path: the
// facade draws query randomness from a sharded source and the dynamic
// dictionary publishes immutable epoch snapshots. These benchmarks pin the
// goroutine count explicitly (1, 4, GOMAXPROCS) so a scaling regression —
// per-op time growing with goroutines — is visible at a glance.

func benchGoroutineCounts() []int {
	counts := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

// runFanOut splits b.N across g goroutines, each running loop(seed, n).
func runFanOut(b *testing.B, g int, loop func(seed uint64, n int)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		n := b.N / g
		if i == 0 {
			n += b.N % g
		}
		wg.Add(1)
		go func(seed uint64, n int) {
			defer wg.Done()
			loop(seed, n)
		}(rand64(), n)
	}
	wg.Wait()
}

// BenchmarkStaticContainsGoroutines queries a static Dict through the public
// facade at fixed goroutine counts.
func BenchmarkStaticContainsGoroutines(b *testing.B) {
	keys := benchKeys(b)
	d, err := New(keys, WithSeed(5))
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range benchGoroutineCounts() {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			runFanOut(b, g, func(seed uint64, n int) {
				r := rng.New(seed)
				for i := 0; i < n; i++ {
					if !d.Contains(keys[r.Intn(len(keys))]) {
						b.Error("lost key")
						return
					}
				}
			})
		})
	}
}

// BenchmarkDynamicMixGoroutines drives the dynamic facade with read/write
// mixes at fixed goroutine counts. Reads are lock-free epoch loads and
// writers claim buffer slots with CAS, so both sides of the mix should scale
// with goroutines until rebuild work or CAS retries on hot slots bite.
func BenchmarkDynamicMixGoroutines(b *testing.B) {
	keys := testKeys(benchN+benchN/2, 4)
	resident, extra := keys[:benchN], keys[benchN:]
	for _, mix := range []struct {
		name   string
		writes int // percent of ops that mutate
	}{{"reads", 0}, {"mix90r10w", 10}, {"mix50r50w", 50}} {
		for _, g := range benchGoroutineCounts() {
			b.Run(fmt.Sprintf("%s/g=%d", mix.name, g), func(b *testing.B) {
				d, err := NewDynamic(resident, 0.5, WithSeed(6))
				if err != nil {
					b.Fatal(err)
				}
				runFanOut(b, g, func(seed uint64, n int) {
					r := rng.New(seed)
					for i := 0; i < n; i++ {
						if r.Intn(100) < mix.writes {
							k := extra[r.Intn(len(extra))]
							var err error
							if r.Intn(2) == 0 {
								_, err = d.Insert(k)
							} else {
								_, err = d.Delete(k)
							}
							if err != nil {
								b.Error(err)
								return
							}
						} else if ok, err := d.Contains(resident[r.Intn(len(resident))]); err != nil || !ok {
							b.Errorf("resident key lookup: ok=%v err=%v", ok, err)
							return
						}
					}
				})
				b.StopTimer()
				d.Quiesce()
			})
		}
	}
}

// BenchmarkDynamicWriterScaling is the pure update-path scaling story: every
// goroutine is a writer churning insert/delete over a shared key pool, no
// reads at all. With the mutex gone from the claim fast path, throughput at
// g=4 should clearly exceed g=1 on a multi-core machine; CAS retries and
// epoch-transition serialization are the only remaining writer coupling.
func BenchmarkDynamicWriterScaling(b *testing.B) {
	keys := testKeys(benchN*2, 7)
	resident, churn := keys[:benchN], keys[benchN:]
	for _, g := range benchGoroutineCounts() {
		b.Run(fmt.Sprintf("writers=%d", g), func(b *testing.B) {
			d, err := NewDynamic(resident, 0.5, WithSeed(8))
			if err != nil {
				b.Fatal(err)
			}
			runFanOut(b, g, func(seed uint64, n int) {
				r := rng.New(seed)
				for i := 0; i < n; i++ {
					k := churn[r.Intn(len(churn))]
					var err error
					if r.Intn(2) == 0 {
						_, err = d.Insert(k)
					} else {
						_, err = d.Delete(k)
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			d.Quiesce()
		})
	}
	// Hot-set variants: the same pure-writer storm, but 90% of the churn
	// lands on a rotating 8-key point mass — the workload where CAS claims
	// collide hardest. absorb=true runs the two-phase write protocol
	// (WithWriteAbsorption), absorb=false the plain claim path; the pair is
	// the benchmark-form of the mixed_hot_* vs mixed_hot_cas_* BENCH fields.
	for _, g := range benchGoroutineCounts() {
		for _, absorb := range []bool{false, true} {
			b.Run(fmt.Sprintf("hot/writers=%d/absorb=%v", g, absorb), func(b *testing.B) {
				opts := []Option{WithSeed(8)}
				if absorb {
					opts = append(opts, WithWriteAbsorption())
				}
				d, err := NewDynamic(resident, 0.5, opts...)
				if err != nil {
					b.Fatal(err)
				}
				drive, err := workload.NewRotatingHotSet(churn, 8, 1<<14, 0.9, 9)
				if err != nil {
					b.Fatal(err)
				}
				runFanOut(b, g, func(seed uint64, n int) {
					r := rng.New(seed)
					for i := 0; i < n; i++ {
						k := drive.Next()
						var err error
						if r.Intn(2) == 0 {
							_, err = d.Insert(k)
						} else {
							_, err = d.Delete(k)
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.StopTimer()
				d.Quiesce()
			})
		}
	}
}

// --- Sharding benchmarks ----------------------------------------------------
//
// WithShards(p) trades one extra routing probe per query for scale-out: batch
// queries fan out one goroutine per shard, and each dynamic shard rebuilds
// ε·(n/p) keys instead of ε·n. The first benchmark shows batch throughput
// against the shard count, the second the rebuild pause an insert stream
// absorbs (inline rebuilds, so the cost lands on the measured goroutine
// instead of racing a background worker).

// BenchmarkShardedBatch measures facade ContainsBatch throughput as the shard
// count grows. shards=1 is the unsharded single-goroutine batch path; p ≥ 2
// answers per-shard groups concurrently.
func BenchmarkShardedBatch(b *testing.B) {
	keys := benchKeys(b)
	const batch = 4096
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			d, err := New(keys, WithSeed(10), WithShards(p))
			if err != nil {
				b.Fatal(err)
			}
			out := make([]bool, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.ContainsBatch(keys[:batch], out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch, "ns/key")
		})
	}
}

// BenchmarkShardedRebuildPause measures an insert stream against the dynamic
// dictionary with rebuilds run inline (SyncRebuild), so every rebuild's full
// pause is charged to the inserting goroutine. Sharding divides each pause:
// a rebuild re-keys one shard's ε·(n/p) keys, not ε·n.
func BenchmarkShardedRebuildPause(b *testing.B) {
	keys := testKeys(benchN+benchN, 11)
	resident, extra := keys[:benchN], keys[benchN:]
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", p), func(b *testing.B) {
			var d *dynamic.Dict
			var sd *shard.DynamicDict
			params := dynamic.Params{SyncRebuild: true}
			var err error
			if p == 1 {
				d, err = dynamic.New(resident, params, 12)
			} else {
				sd, err = shard.NewDynamic(resident, p, params, 12)
			}
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := extra[i%len(extra)]
				if i/len(extra)%2 == 0 {
					if p == 1 {
						_, err = d.Insert(k)
					} else {
						_, err = sd.Insert(k)
					}
				} else {
					if p == 1 {
						_, err = d.Delete(k)
					} else {
						_, err = sd.Delete(k)
					}
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var benchSeedCtr atomic.Uint64

// rand64 yields distinct seeds for parallel bench goroutines.
func rand64() uint64 {
	s := benchSeedCtr.Add(1) * 0x9e3779b97f4a7c15
	return rng.SplitMix64(&s)
}
