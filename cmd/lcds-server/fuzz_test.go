package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
)

// fuzzMux builds one server shared by all fuzz executions — the dictionary
// is concurrency-safe and rebuilding it per input would dominate the fuzz
// loop.
var fuzzMux = sync.OnceValue(func() *http.ServeMux {
	_, mux, err := newServer(256, 29, 1, 0.1, false, 1)
	if err != nil {
		panic(err)
	}
	return mux
})

// FuzzContainsParam: an arbitrary ?key= value must answer 200 or 400 —
// never a panic, never a 5xx. CI's fuzz-smoke step runs this
// coverage-guided on every push.
func FuzzContainsParam(f *testing.F) {
	f.Add("1")
	f.Add("")
	f.Add("-1")
	f.Add("2305843009213693950")
	f.Add("2305843009213693951")
	f.Add("18446744073709551615")
	f.Add("0x10")
	f.Add("١٢٣")
	f.Fuzz(func(t *testing.T, key string) {
		q := url.Values{}
		q.Set("key", key)
		rec := httptest.NewRecorder()
		fuzzMux().ServeHTTP(rec, httptest.NewRequest("GET", "/contains?"+q.Encode(), nil))
		if rec.Code != 200 && rec.Code != 400 {
			t.Fatalf("key %q answered %d", key, rec.Code)
		}
	})
}

// FuzzBatchBody: an arbitrary POST /batch body must answer 200 or 400 —
// malformed JSON, wrong shapes, out-of-universe keys and oversized batches
// are all client errors, never panics.
func FuzzBatchBody(f *testing.F) {
	f.Add([]byte(`{"keys":[1,2,3]}`))
	f.Add([]byte(`{"keys":[]}`))
	f.Add([]byte(`{"keys":[18446744073709551615]}`))
	f.Add([]byte(`{"keys":"no"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2]`))
	f.Add([]byte(`{"keys":[1],"x":2}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := httptest.NewRecorder()
		fuzzMux().ServeHTTP(rec, httptest.NewRequest("POST", "/batch", bytes.NewReader(body)))
		if rec.Code != 200 && rec.Code != 400 {
			t.Fatalf("body %q answered %d", body, rec.Code)
		}
	})
}
