// Command lcds-server serves a dynamic low-contention dictionary over a
// small HTTP membership API: GET /contains, POST /batch, POST /insert,
// POST /delete. The observability surface — /metrics, /debug/telemetry,
// /debug/timeline, /debug/pprof — is byte-compatible with lcds-monitor
// because both render through internal/serve; on top of it the server adds
// per-endpoint HTTP request counters and latency summaries so an open-loop
// load generator (cmd/lcds-loadgen) can be cross-checked against the
// server's own view of the traffic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	lcds "repro"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// batchLimit caps the number of keys a single POST /batch may carry; the
// request body size cap is derived from it (a uint64 key needs at most 20
// decimal digits plus JSON punctuation).
const (
	batchLimit     = 4096
	batchBodyLimit = 32 * batchLimit
)

// endpointStats is one handler's request ledger: total requests, requests
// answered with a 4xx/5xx, and a log₂ latency histogram. The histogram is
// the same striped structure the dictionary's telemetry uses, so scraping
// it costs the handlers nothing.
type endpointStats struct {
	name     string
	requests atomic.Uint64
	errors   atomic.Uint64
	lat      *telemetry.LogHistogram
}

type server struct {
	dd *lcds.DynamicDict

	n       int
	seed    uint64
	shards  int
	epsilon float64
	absorb  bool

	stats []*endpointStats
}

func newEndpointStats(name string) *endpointStats {
	return &endpointStats{name: name, lat: telemetry.NewLogHistogram()}
}

// instrument wraps a handler that returns its HTTP status. Every request is
// counted and timed; statuses ≥ 400 also count as errors.
func (s *server) instrument(st *endpointStats, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := h(w, r)
		st.lat.Observe(uint64(time.Since(start).Nanoseconds()))
		st.requests.Add(1)
		if code >= 400 {
			st.errors.Add(1)
		}
	}
}

// parseKey validates a ?key= parameter: a decimal uint64 strictly below
// lcds.MaxKey, the dictionary's key-universe bound.
func parseKey(raw string) (uint64, error) {
	k, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key: want a decimal uint64")
	}
	if k >= lcds.MaxKey {
		return 0, fmt.Errorf("bad key: %d is outside the key universe [0, 2^61-1)", k)
	}
	return k, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) handleContains(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return http.StatusMethodNotAllowed
	}
	key, err := parseKey(r.URL.Query().Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return http.StatusBadRequest
	}
	member, err := s.dd.Contains(key)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	writeJSON(w, map[string]any{"key": key, "member": member})
	return http.StatusOK
}

type batchRequest struct {
	Keys []uint64 `json:"keys"`
}

type batchResponse struct {
	Members []bool `json:"members"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return http.StatusMethodNotAllowed
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, batchBodyLimit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad batch body: "+err.Error(), http.StatusBadRequest)
		return http.StatusBadRequest
	}
	if len(req.Keys) == 0 {
		http.Error(w, "bad batch: empty keys", http.StatusBadRequest)
		return http.StatusBadRequest
	}
	if len(req.Keys) > batchLimit {
		http.Error(w, fmt.Sprintf("bad batch: %d keys exceeds the %d-key limit", len(req.Keys), batchLimit), http.StatusBadRequest)
		return http.StatusBadRequest
	}
	for _, k := range req.Keys {
		if k >= lcds.MaxKey {
			http.Error(w, fmt.Sprintf("bad key: %d is outside the key universe [0, 2^61-1)", k), http.StatusBadRequest)
			return http.StatusBadRequest
		}
	}
	out := make([]bool, len(req.Keys))
	if err := s.dd.ContainsBatch(req.Keys, out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	writeJSON(w, batchResponse{Members: out})
	return http.StatusOK
}

// handleWrite serves /insert and /delete, which differ only in the
// dictionary method and the response field name.
func (s *server) handleWrite(w http.ResponseWriter, r *http.Request, del bool) int {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return http.StatusMethodNotAllowed
	}
	key, err := parseKey(r.URL.Query().Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return http.StatusBadRequest
	}
	var changed bool
	if del {
		changed, err = s.dd.Delete(key)
	} else {
		changed, err = s.dd.Insert(key)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	field := "inserted"
	if del {
		field = "deleted"
	}
	writeJSON(w, map[string]any{"key": key, field: changed})
	return http.StatusOK
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	serve.WriteMetrics(w, s.dd.Telemetry().Snapshot(), nil, s.dd.Telemetry().Sample())
	s.writeHTTPMetrics(w)
}

// writeHTTPMetrics renders the server-level request ledger: per-handler
// request and error counters plus a per-handler latency summary, with an
// "all" aggregate merged bucket-wise from the per-handler snapshots — the
// same merge an open-loop load generator applies to its workers.
func (s *server) writeHTTPMetrics(w http.ResponseWriter) {
	fmt.Fprint(w, "# HELP lcds_http_requests_total HTTP requests served, by handler.\n# TYPE lcds_http_requests_total counter\n")
	for _, st := range s.stats {
		fmt.Fprintf(w, "lcds_http_requests_total{handler=%q} %d\n", st.name, st.requests.Load())
	}
	fmt.Fprint(w, "# HELP lcds_http_errors_total HTTP requests answered 4xx/5xx, by handler.\n# TYPE lcds_http_errors_total counter\n")
	for _, st := range s.stats {
		fmt.Fprintf(w, "lcds_http_errors_total{handler=%q} %d\n", st.name, st.errors.Load())
	}
	fmt.Fprint(w, "# HELP lcds_http_request_ns Request latency in nanoseconds, by handler (log2 buckets; quantiles are bucket upper bounds).\n# TYPE lcds_http_request_ns summary\n")
	snaps := make([]telemetry.HistogramSnapshot, 0, len(s.stats))
	emit := func(name string, h telemetry.HistogramSnapshot) {
		fmt.Fprintf(w, "lcds_http_request_ns{handler=%q,quantile=\"0.5\"} %d\n", name, h.P50)
		fmt.Fprintf(w, "lcds_http_request_ns{handler=%q,quantile=\"0.99\"} %d\n", name, h.P99)
		fmt.Fprintf(w, "lcds_http_request_ns{handler=%q,quantile=\"0.999\"} %d\n", name, h.P999)
		fmt.Fprintf(w, "lcds_http_request_ns_sum{handler=%q} %d\n", name, h.Sum)
		fmt.Fprintf(w, "lcds_http_request_ns_count{handler=%q} %d\n", name, h.Count)
	}
	for _, st := range s.stats {
		snap := st.lat.Snapshot()
		snaps = append(snaps, snap)
		emit(st.name, snap)
	}
	emit("all", telemetry.MergeHistogramSnapshots(snaps...))
}

func (s *server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.dd.Telemetry().Snapshot())
}

func (s *server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"n":       s.n,
		"seed":    s.seed,
		"shards":  s.shards,
		"epsilon": s.epsilon,
		"absorb":  s.absorb,
	})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "lcds-server\n\n"+
		"GET  /contains?key=<k>  membership query\n"+
		"POST /batch             {\"keys\":[...]} -> {\"members\":[...]} (<= 4096 keys)\n"+
		"POST /insert?key=<k>    insert\n"+
		"POST /delete?key=<k>    delete\n"+
		"GET  /info              construction parameters\n"+
		"GET  /healthz           liveness\n"+
		"/metrics                Prometheus text exposition (+ per-handler HTTP series)\n"+
		"/debug/telemetry        JSON telemetry snapshot\n"+
		"/debug/timeline         flight-recorder timeline (?since=<cursor>&max=<n>)\n"+
		"/debug/pprof/           runtime profiles\n")
}

// newServer builds the dictionary and the handler mux; split from main so
// tests and fuzz targets drive the exact production wiring.
func newServer(n int, seed uint64, shards int, epsilon float64, absorb bool, sample int) (*server, *http.ServeMux, error) {
	keys := workload.MemberKeys(n, seed)
	opts := []lcds.Option{
		lcds.WithSeed(seed),
		lcds.WithTelemetry(lcds.TelemetryConfig{Sample: sample, TopK: 10}),
	}
	if shards > 1 {
		opts = append(opts, lcds.WithShards(shards))
	}
	if absorb {
		opts = append(opts, lcds.WithWriteAbsorption())
	}
	dd, err := lcds.NewDynamic(keys, epsilon, opts...)
	if err != nil {
		return nil, nil, err
	}
	s := &server{dd: dd, n: n, seed: seed, shards: shards, epsilon: epsilon, absorb: absorb}

	contains := newEndpointStats("contains")
	batch := newEndpointStats("batch")
	insert := newEndpointStats("insert")
	del := newEndpointStats("delete")
	s.stats = []*endpointStats{contains, batch, insert, del}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/contains", s.instrument(contains, s.handleContains))
	mux.HandleFunc("/batch", s.instrument(batch, s.handleBatch))
	mux.HandleFunc("/insert", s.instrument(insert, func(w http.ResponseWriter, r *http.Request) int {
		return s.handleWrite(w, r, false)
	}))
	mux.HandleFunc("/delete", s.instrument(del, func(w http.ResponseWriter, r *http.Request) int {
		return s.handleWrite(w, r, true)
	}))
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/telemetry", s.handleTelemetry)
	mux.HandleFunc("/debug/timeline", serve.TimelineHandler(s.dd))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, mux, nil
}

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	n := flag.Int("n", 8192, "initial member key count (keys derived deterministically from -seed)")
	seed := flag.Uint64("seed", 1, "construction and key-derivation seed")
	shards := flag.Int("shards", 1, "shard count (≥ 2 enables the sharded composite)")
	epsilon := flag.Float64("epsilon", 0.1, "dynamic buffer fraction")
	absorb := flag.Bool("absorb", false, "enable two-phase write absorption (hot keys soak into split-phase overlays)")
	sample := flag.Int("sample", 1, "probe sampling rate: count 1 in k probes (rounded to a power of two)")
	flag.Parse()

	_, mux, err := newServer(*n, *seed, *shards, *epsilon, *absorb, *sample)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcds-server:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcds-server:", err)
		os.Exit(1)
	}
	fmt.Printf("lcds-server: n=%d seed=%d shards=%d absorb=%v, serving http://%s/\n",
		*n, *seed, *shards, *absorb, ln.Addr())
	if err := http.Serve(ln, mux); err != nil {
		fmt.Fprintln(os.Stderr, "lcds-server:", err)
		os.Exit(1)
	}
}
