package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/workload"
)

func newTestMux(t *testing.T, n int, seed uint64) (*server, *http.ServeMux) {
	t.Helper()
	s, mux, err := newServer(n, seed, 1, 0.1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s, mux
}

func get(mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func post(mux *http.ServeMux, path string, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	mux.ServeHTTP(rec, httptest.NewRequest("POST", path, rd))
	return rec
}

// TestContainsEndpoint: every member key answers {"member":true} and a
// derived non-member answers false — the server's key set is exactly
// workload.MemberKeys(n, seed), so clients can re-derive it.
func TestContainsEndpoint(t *testing.T) {
	const n, seed = 256, 7
	_, mux := newTestMux(t, n, seed)
	keys := workload.MemberKeys(n, seed)
	for _, k := range keys[:32] {
		rec := get(mux, fmt.Sprintf("/contains?key=%d", k))
		if rec.Code != 200 {
			t.Fatalf("key %d: status %d: %s", k, rec.Code, rec.Body)
		}
		var resp struct {
			Key    uint64 `json:"key"`
			Member bool   `json:"member"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if !resp.Member || resp.Key != k {
			t.Fatalf("member key %d answered %+v", k, resp)
		}
	}
	// MemberKeys is prefix-stable, so key n of the (n+1)-sized derivation is
	// a fresh non-member of the n-sized set.
	outsider := workload.MemberKeys(n+1, seed)[n]
	var resp struct {
		Member bool `json:"member"`
	}
	if err := json.Unmarshal(get(mux, fmt.Sprintf("/contains?key=%d", outsider)).Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Member {
		t.Fatalf("non-member %d answered true", outsider)
	}
}

// TestBatchMatchesSingles: a /batch answer must agree entry-wise with the
// single-key endpoint over a mixed member/non-member batch.
func TestBatchMatchesSingles(t *testing.T) {
	const n, seed = 256, 11
	_, mux := newTestMux(t, n, seed)
	probe := workload.MemberKeys(2*n, seed) // first n are members, rest mostly not
	body, _ := json.Marshal(batchRequest{Keys: probe})
	rec := post(mux, "/batch", string(body))
	if rec.Code != 200 {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Members) != len(probe) {
		t.Fatalf("batch answered %d entries for %d keys", len(resp.Members), len(probe))
	}
	for i, k := range probe {
		var single struct {
			Member bool `json:"member"`
		}
		if err := json.Unmarshal(get(mux, fmt.Sprintf("/contains?key=%d", k)).Body.Bytes(), &single); err != nil {
			t.Fatal(err)
		}
		if single.Member != resp.Members[i] {
			t.Fatalf("key %d: batch=%v single=%v", k, resp.Members[i], single.Member)
		}
	}
}

// TestInsertDelete: inserting a fresh key flips membership on, deleting
// flips it off, and the changed-bit reports idempotence.
func TestInsertDelete(t *testing.T) {
	const n, seed = 128, 13
	_, mux := newTestMux(t, n, seed)
	fresh := workload.MemberKeys(n+1, seed)[n]

	member := func() bool {
		var resp struct {
			Member bool `json:"member"`
		}
		if err := json.Unmarshal(get(mux, fmt.Sprintf("/contains?key=%d", fresh)).Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Member
	}
	if member() {
		t.Fatalf("fresh key %d already a member", fresh)
	}
	var ins struct {
		Inserted bool `json:"inserted"`
	}
	if err := json.Unmarshal(post(mux, fmt.Sprintf("/insert?key=%d", fresh), "").Body.Bytes(), &ins); err != nil {
		t.Fatal(err)
	}
	if !ins.Inserted || !member() {
		t.Fatalf("insert did not take: changed=%v member=%v", ins.Inserted, member())
	}
	if err := json.Unmarshal(post(mux, fmt.Sprintf("/insert?key=%d", fresh), "").Body.Bytes(), &ins); err != nil {
		t.Fatal(err)
	}
	if ins.Inserted {
		t.Fatal("second insert of the same key reported a change")
	}
	var del struct {
		Deleted bool `json:"deleted"`
	}
	if err := json.Unmarshal(post(mux, fmt.Sprintf("/delete?key=%d", fresh), "").Body.Bytes(), &del); err != nil {
		t.Fatal(err)
	}
	if !del.Deleted || member() {
		t.Fatalf("delete did not take: changed=%v member=%v", del.Deleted, member())
	}
}

// TestBadRequests pins the 400/405 surface: malformed keys, out-of-universe
// keys, malformed batch bodies, oversized batches, wrong methods.
func TestBadRequests(t *testing.T) {
	_, mux := newTestMux(t, 64, 17)
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/contains", "", 400},
		{"GET", "/contains?key=x", "", 400},
		{"GET", "/contains?key=-1", "", 400},
		{"GET", "/contains?key=2305843009213693951", "", 400}, // == MaxKey
		{"POST", "/contains?key=1", "", 405},
		{"POST", "/batch", "", 400},
		{"POST", "/batch", "{", 400},
		{"POST", "/batch", `{"keys":[]}`, 400},
		{"POST", "/batch", `{"keys":[1], "extra":true}`, 400},
		{"POST", "/batch", `{"keys":[2305843009213693951]}`, 400},
		{"GET", "/batch", "", 405},
		{"POST", "/insert", "", 400},
		{"POST", "/insert?key=x", "", 400},
		{"GET", "/insert?key=1", "", 405},
		{"POST", "/delete?key=y", "", 400},
		{"GET", "/delete?key=1", "", 405},
		{"GET", "/debug/timeline?since=x", "", 400},
	} {
		var rec *httptest.ResponseRecorder
		if tc.method == "GET" {
			rec = get(mux, tc.path)
		} else {
			rec = post(mux, tc.path, tc.body)
		}
		if rec.Code != tc.want {
			t.Errorf("%s %s (body %q): status %d, want %d", tc.method, tc.path, tc.body, rec.Code, tc.want)
		}
	}
	// The oversized batch: one over the limit.
	keys := make([]uint64, batchLimit+1)
	body, _ := json.Marshal(batchRequest{Keys: keys})
	if rec := post(mux, "/batch", string(body)); rec.Code != 400 {
		t.Errorf("oversized batch: status %d, want 400", rec.Code)
	}
}

// TestMetricsContract: the shared RequiredMetrics names and the server's own
// HTTP series all appear, and the request/error ledgers reflect the traffic
// this test drove.
func TestMetricsContract(t *testing.T) {
	_, mux := newTestMux(t, 128, 19)
	keys := workload.MemberKeys(128, 19)
	for _, k := range keys[:16] {
		get(mux, fmt.Sprintf("/contains?key=%d", k))
	}
	get(mux, "/contains?key=x") // one contains error
	body := get(mux, "/metrics").Body.String()
	for _, name := range serve.RequiredMetrics {
		if !strings.Contains(body, name) {
			t.Errorf("missing metric %s", name)
		}
	}
	for _, want := range []string{
		`lcds_http_requests_total{handler="contains"} 17`,
		`lcds_http_errors_total{handler="contains"} 1`,
		`lcds_http_requests_total{handler="batch"} 0`,
		`lcds_http_request_ns{handler="contains",quantile="0.99"}`,
		`lcds_http_request_ns{handler="all",quantile="0.999"}`,
		`lcds_http_request_ns_count{handler="all"} 17`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing sample %q", want)
		}
	}
}

// TestInfoAndHealth pins the operational endpoints.
func TestInfoAndHealth(t *testing.T) {
	_, mux := newTestMux(t, 64, 23)
	if rec := get(mux, "/healthz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz: %d %q", rec.Code, rec.Body)
	}
	var info struct {
		N       int     `json:"n"`
		Seed    uint64  `json:"seed"`
		Shards  int     `json:"shards"`
		Epsilon float64 `json:"epsilon"`
		Absorb  bool    `json:"absorb"`
	}
	rec := get(mux, "/info")
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.N != 64 || info.Seed != 23 || info.Shards != 1 || info.Epsilon != 0.1 || info.Absorb {
		t.Fatalf("/info answered %+v", info)
	}
}
