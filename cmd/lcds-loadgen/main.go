// Command lcds-loadgen is an open-loop load generator for lcds-server: it
// drives the named workload scenarios from internal/workload over the HTTP
// membership API, sweeping worker counts, and reports throughput plus
// p50/p99/p999 latency into a BENCH-style JSON file.
//
// Open loop means every request has an intended dispatch time fixed by the
// target rate alone; latency is measured from that intended time, not from
// the actual send. A server that falls behind therefore shows the queueing
// delay it inflicts (no coordinated omission), which is the honest way to
// measure a tail.
//
// The scenario schedule is the deterministic one the rest of the suite
// uses: workers claim positions of the same realized op sequence, so a run
// at -workers 1 and a run at -workers 8 issue exactly the same multiset of
// operations against the server.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/workload"
)

// loadResult is one (scenario, workers) cell of the sweep.
type loadResult struct {
	Scenario    string  `json:"scenario"`
	Workers     int     `json:"workers"`
	TargetRate  float64 `json:"target_rate"`
	DurationSec float64 `json:"duration_sec"`

	Ops    uint64 `json:"ops"`
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// Errors counts transport failures, non-2xx answers, and — on read-only
	// scenarios, where every scheduled key is a member — reads answered
	// false. Misses counts false reads on mutating scenarios, where they are
	// legitimate.
	Errors uint64 `json:"errors"`
	Misses uint64 `json:"misses"`

	OpsPerSec     float64 `json:"ops_per_sec"`
	LatencyP50Ns  uint64  `json:"latency_p50_ns"`
	LatencyP99Ns  uint64  `json:"latency_p99_ns"`
	LatencyP999Ns uint64  `json:"latency_p999_ns"`
	LatencyMaxNs  uint64  `json:"latency_max_ns"`
	LatencyMeanNs float64 `json:"latency_mean_ns"`
}

// loadReport is the committed JSON artifact, one result per sweep cell.
type loadReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Addr       string       `json:"addr"`
	N          int          `json:"n"`
	Seed       uint64       `json:"seed"`
	Results    []loadResult `json:"results"`
}

// workerState is one worker's private ledger; workers never share mutable
// state beyond the scenario's position cursor, so the hot loop is
// contention-free and the ledgers merge after the run.
type workerState struct {
	hist   *telemetry.LogHistogram
	reads  uint64
	writes uint64
	errors uint64
	misses uint64
}

type client struct {
	http *http.Client
	addr string
}

// readKey issues GET /contains and reports membership; any transport error
// or non-200 answer is an error.
func (c *client) readKey(key uint64) (member bool, err error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/contains?key=%d", c.addr, key))
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Member bool `json:"member"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, err
	}
	return body.Member, nil
}

// writeKey issues POST /insert or /delete.
func (c *client) writeKey(key uint64, del bool) error {
	ep := "/insert"
	if del {
		ep = "/delete"
	}
	resp, err := c.http.Post(fmt.Sprintf("%s%s?key=%d", c.addr, ep, key), "", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// runScenario drives one sweep cell: `workers` goroutines claim positions of
// the scenario's deterministic schedule and issue them against the server
// until the wall-clock deadline.
func runScenario(c *client, spec string, keys []uint64, seed uint64, workers int, rate float64, duration time.Duration) (loadResult, error) {
	sc, err := workload.NewScenario(spec, keys, seed)
	if err != nil {
		return loadResult{}, err
	}
	// Per-worker interarrival: `workers` senders collectively hit `rate`
	// ops/sec. rate 0 selects a closed loop (send as fast as answers come
	// back; latency is then pure service time).
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(workers) / rate * float64(time.Second))
	}

	states := make([]*workerState, workers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < workers; w++ {
		st := &workerState{hist: telemetry.NewLogHistogram()}
		states[w] = st
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stagger workers 1/rate apart so the aggregate arrival process
			// is evenly spaced, not `workers` simultaneous bursts.
			next := start
			if interval > 0 {
				next = start.Add(time.Duration(w) * interval / time.Duration(workers))
			}
			readOnly := sc.ReadOnly()
			for {
				intended := time.Now()
				if interval > 0 {
					intended = next
					next = next.Add(interval)
					if sleep := time.Until(intended); sleep > 0 {
						time.Sleep(sleep)
					}
				}
				if intended.After(deadline) {
					return
				}
				op := sc.Next()
				switch op.Kind {
				case workload.OpRead:
					st.reads++
					member, err := c.readKey(op.Key)
					switch {
					case err != nil:
						st.errors++
					case !member && readOnly:
						st.errors++ // scheduled keys are members; a false read is a lost key
					case !member:
						st.misses++
					}
				default:
					st.writes++
					if err := c.writeKey(op.Key, op.Kind == workload.OpDelete); err != nil {
						st.errors++
					}
				}
				st.hist.Observe(uint64(time.Since(intended).Nanoseconds()))
				if time.Now().After(deadline) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := loadResult{
		Scenario:    spec,
		Workers:     workers,
		TargetRate:  rate,
		DurationSec: duration.Seconds(),
	}
	snaps := make([]telemetry.HistogramSnapshot, workers)
	for w, st := range states {
		snaps[w] = st.hist.Snapshot()
		res.Reads += st.reads
		res.Writes += st.writes
		res.Errors += st.errors
		res.Misses += st.misses
	}
	merged := telemetry.MergeHistogramSnapshots(snaps...)
	res.Ops = merged.Count
	res.OpsPerSec = float64(merged.Count) / elapsed.Seconds()
	res.LatencyP50Ns = merged.P50
	res.LatencyP99Ns = merged.P99
	res.LatencyP999Ns = merged.P999
	res.LatencyMaxNs = merged.Max
	res.LatencyMeanNs = merged.Mean
	return res, nil
}

// repairMembership re-inserts every member key after a mutating scenario, so
// a later read-only scenario (whose error accounting assumes full
// membership) starts from the state the server booted with.
func repairMembership(c *client, keys []uint64) error {
	for _, k := range keys {
		if err := c.writeKey(k, false); err != nil {
			return fmt.Errorf("repair insert %d: %w", k, err)
		}
	}
	return nil
}

func parseScenarios(s string) ([]string, error) {
	if s == "all" {
		return workload.ScenarioNames(), nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty scenario in list %q", s)
		}
		out = append(out, part)
	}
	return out, nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil || v < 1 {
			return nil, fmt.Errorf("bad worker list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8090", "lcds-server base URL")
	scenarios := flag.String("scenarios", "all", "comma-separated scenario specs, or \"all\" for every registered scenario")
	n := flag.Int("n", 8192, "member key count — must match the server's -n")
	seed := flag.Uint64("seed", 1, "schedule seed — must match the server's -seed for the derived key set to agree")
	rate := flag.Float64("rate", 5000, "target aggregate ops/sec (0 = closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "wall-clock length of each sweep cell")
	workersList := flag.String("workers", "2", "comma-separated worker counts to sweep")
	out := flag.String("out", "", "output JSON path (default BENCH_LOAD_<date>.json)")
	flag.Parse()

	specs, err := parseScenarios(*scenarios)
	if err != nil {
		fatal(err)
	}
	workerCounts, err := parseWorkers(*workersList)
	if err != nil {
		fatal(err)
	}
	keys := workload.MemberKeys(*n, *seed)
	maxWorkers := 0
	for _, w := range workerCounts {
		if w > maxWorkers {
			maxWorkers = w
		}
	}
	c := &client{
		addr: strings.TrimRight(*addr, "/"),
		http: &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        maxWorkers,
				MaxIdleConnsPerHost: maxWorkers,
			},
		},
	}
	// Fail fast if the server is not there or was built over a different
	// key universe.
	if _, err := c.readKey(keys[0]); err != nil {
		fatal(fmt.Errorf("server not reachable at %s: %w", c.addr, err))
	}

	rep := loadReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Addr:       c.addr,
		N:          *n,
		Seed:       *seed,
	}
	for _, spec := range specs {
		for _, w := range workerCounts {
			res, err := runScenario(c, spec, keys, *seed, w, *rate, *duration)
			if err != nil {
				fatal(err)
			}
			rep.Results = append(rep.Results, res)
			fmt.Printf("%-20s workers=%-3d %9.0f ops/s  p50=%-8d p99=%-8d p999=%-8d errors=%d\n",
				spec, w, res.OpsPerSec, res.LatencyP50Ns, res.LatencyP99Ns, res.LatencyP999Ns, res.Errors)
			if res.Writes > 0 {
				if err := repairMembership(c, keys); err != nil {
					fatal(err)
				}
			}
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_LOAD_" + rep.Date + ".json"
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(rep.Results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcds-loadgen:", err)
	os.Exit(1)
}
