package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestLoadReportSchema is the golden-schema test: the committed BENCH_LOAD
// JSON has exactly these fields, and adding, renaming or dropping one is a
// deliberate act that must update this list.
func TestLoadReportSchema(t *testing.T) {
	rep := loadReport{
		Date: "2026-01-01", GoVersion: "go", GOMAXPROCS: 1, Addr: "a", N: 1, Seed: 1,
		Results: []loadResult{{Scenario: "uniform", Workers: 1, TargetRate: 1,
			DurationSec: 1, Ops: 1, Reads: 1, OpsPerSec: 1}},
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf, &top); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{"addr", "date", "go_version", "gomaxprocs", "n", "results", "seed"}
	if got := sortedKeys(top); !reflect.DeepEqual(got, wantTop) {
		t.Errorf("top-level fields %v, want %v", got, wantTop)
	}
	var results []map[string]json.RawMessage
	if err := json.Unmarshal(top["results"], &results); err != nil {
		t.Fatal(err)
	}
	wantRes := []string{
		"duration_sec", "errors", "latency_max_ns", "latency_mean_ns",
		"latency_p50_ns", "latency_p999_ns", "latency_p99_ns", "misses",
		"ops", "ops_per_sec", "reads", "scenario", "target_rate", "workers",
		"writes",
	}
	if got := sortedKeys(results[0]); !reflect.DeepEqual(got, wantRes) {
		t.Errorf("result fields %v, want %v", got, wantRes)
	}
}

func sortedKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// stubServer is a minimal in-process stand-in for lcds-server's membership
// API, so the open-loop machinery is tested without the real dictionary
// (whose HTTP surface has its own test suite in cmd/lcds-server).
type stubServer struct {
	mu  sync.Mutex
	set map[uint64]bool
}

func newStub(keys []uint64) (*stubServer, *httptest.Server) {
	st := &stubServer{set: make(map[uint64]bool, len(keys))}
	for _, k := range keys {
		st.set[k] = true
	}
	mux := http.NewServeMux()
	key := func(r *http.Request) uint64 {
		k, _ := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
		return k
	}
	mux.HandleFunc("/contains", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		member := st.set[key(r)]
		st.mu.Unlock()
		fmt.Fprintf(w, `{"member":%v}`, member)
	})
	mux.HandleFunc("/insert", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		st.set[key(r)] = true
		st.mu.Unlock()
		fmt.Fprint(w, `{"inserted":true}`)
	})
	mux.HandleFunc("/delete", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		delete(st.set, key(r))
		st.mu.Unlock()
		fmt.Fprint(w, `{"deleted":true}`)
	})
	return st, httptest.NewServer(mux)
}

func newTestClient(ts *httptest.Server) *client {
	return &client{addr: ts.URL, http: ts.Client()}
}

// TestOpenLoopReadScenario drives a read-only scenario against the stub and
// checks the ledger: no errors, every op a read, a populated latency
// distribution, and a throughput near the configured open-loop rate.
func TestOpenLoopReadScenario(t *testing.T) {
	keys := workload.MemberKeys(64, 5)
	_, ts := newStub(keys)
	defer ts.Close()
	res, err := runScenario(newTestClient(ts), "uniform", keys, 5, 2, 2000, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Misses != 0 {
		t.Fatalf("clean read run reported errors=%d misses=%d", res.Errors, res.Misses)
	}
	if res.Ops == 0 || res.Reads != res.Ops || res.Writes != 0 {
		t.Fatalf("ledger off: %+v", res)
	}
	if res.LatencyP50Ns == 0 || res.LatencyP99Ns < res.LatencyP50Ns {
		t.Fatalf("degenerate latency quantiles: p50=%d p99=%d", res.LatencyP50Ns, res.LatencyP99Ns)
	}
	// 2000 ops/s for 0.3 s ≈ 600 ops; allow wide slack for CI jitter but
	// catch a closed loop (which would do far more) or a stall.
	if res.Ops < 100 || res.Ops > 1200 {
		t.Fatalf("open-loop pacing off: %d ops at 2000/s over 300ms", res.Ops)
	}
}

// TestOpenLoopMutatingScenario: flood writes through to the stub, misses on
// the churned key are counted as misses (not errors), and repairMembership
// restores the pre-run state.
func TestOpenLoopMutatingScenario(t *testing.T) {
	keys := workload.MemberKeys(64, 9)
	st, ts := newStub(keys)
	defer ts.Close()
	c := newTestClient(ts)
	res, err := runScenario(c, "flood", keys, 9, 3, 3000, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("flood run reported %d errors", res.Errors)
	}
	if res.Writes == 0 || res.Reads+res.Writes != res.Ops {
		t.Fatalf("ledger off: %+v", res)
	}
	if err := repairMembership(c, keys); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, k := range keys {
		if !st.set[k] {
			t.Fatalf("repair left key %d missing", k)
		}
	}
}

// TestClosedLoop: rate 0 issues back-to-back requests; the op count should
// dwarf any realistic open-loop pacing at the same duration.
func TestClosedLoop(t *testing.T) {
	keys := workload.MemberKeys(32, 3)
	_, ts := newStub(keys)
	defer ts.Close()
	res, err := runScenario(newTestClient(ts), "point", keys, 3, 2, 0, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Ops < 1000 {
		t.Fatalf("closed loop too slow or failing: ops=%d errors=%d", res.Ops, res.Errors)
	}
}

// TestParseLists pins the -scenarios and -workers grammars.
func TestParseLists(t *testing.T) {
	all, err := parseScenarios("all")
	if err != nil || len(all) != len(workload.ScenarioNames()) {
		t.Fatalf("all: %v %v", all, err)
	}
	two, err := parseScenarios("uniform, flood")
	if err != nil || len(two) != 2 || two[1] != "flood" {
		t.Fatalf("list: %v %v", two, err)
	}
	if _, err := parseScenarios("uniform,,flood"); err == nil {
		t.Error("empty scenario accepted")
	}
	ws, err := parseWorkers("1, 2,8")
	if err != nil || len(ws) != 3 || ws[2] != 8 {
		t.Fatalf("workers: %v %v", ws, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "1,"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("-workers %q accepted", bad)
		}
	}
}
