// lcds-bench regenerates the evaluation tables and figure series of
// DESIGN.md §3 / EXPERIMENTS.md.
//
// Usage:
//
//	lcds-bench                  # run every experiment at full scale
//	lcds-bench -exp T2          # one experiment
//	lcds-bench -quick           # reduced sizes (seconds instead of minutes)
//	lcds-bench -sizes 1024,4096 -trials 20 -seed 99
//	lcds-bench -parallel        # run independent experiments concurrently
//	lcds-bench -json            # micro-perf suite -> BENCH_<date>.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/experiments"
	"repro/internal/scheme"

	// Register every structure so -structures can name any of them.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (T1..T5, F1..F4) or 'all'")
	quick := flag.Bool("quick", false, "use the reduced test-scale configuration")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = default)")
	sizes := flag.String("sizes", "", "comma-separated n sweep (overrides default)")
	fixedN := flag.Int("n", 0, "n for single-size experiments (T3, F1, F2); also the -json suite size")
	queries := flag.Int("queries", 0, "Monte-Carlo query count")
	trials := flag.Int("trials", 0, "trials for rate experiments (T4, T5)")
	procs := flag.String("procs", "", "comma-separated processor counts for F2")
	structures := flag.String("structures", "", "comma-separated registry names restricting roster experiments (T2, T3, T6, F1, F2, ...)")
	markdown := flag.Bool("markdown", false, "render GitHub-flavored markdown tables")
	parallel := flag.Bool("parallel", false, "run independent experiments concurrently (output order is preserved)")
	jsonMode := flag.Bool("json", false, "run the micro-perf suite and write BENCH_<date>.json")
	jsonOut := flag.String("out", "", "output path for -json (default BENCH_<date>.json in the working directory)")
	telemetrySample := flag.Int("telemetry", 0, "with -json, also measure the query path under live telemetry at this sampling rate (0 = skip)")
	flag.Parse()

	if *jsonMode {
		n := *fixedN
		if n == 0 {
			n = 32768
		}
		if err := runPerfSuite(n, *seed, *jsonOut, *telemetrySample); err != nil {
			fatal(err)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *fixedN != 0 {
		cfg.FixedN = *fixedN
	}
	if *queries != 0 {
		cfg.Queries = *queries
	}
	if *trials != 0 {
		cfg.Trials = *trials
	}
	if *sizes != "" {
		list, err := parseInts(*sizes)
		if err != nil {
			fatal(err)
		}
		cfg.Sizes = list
	}
	if *procs != "" {
		list, err := parseInts(*procs)
		if err != nil {
			fatal(err)
		}
		cfg.Procs = list
	}
	if *structures != "" {
		for _, name := range strings.Split(*structures, ",") {
			name = strings.TrimSpace(name)
			if _, ok := scheme.Lookup(name); !ok {
				fatal(fmt.Errorf("unknown structure %q (registered: %s)",
					name, strings.Join(scheme.Names(), ", ")))
			}
			cfg.Structures = append(cfg.Structures, name)
		}
	}

	var ids []string
	if strings.EqualFold(*exp, "all") {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	if *parallel {
		// Experiments are independent and each is deterministic given
		// cfg.Seed, so running them concurrently changes nothing but the
		// wall clock; rendering into per-experiment buffers keeps the
		// output byte-identical to a serial run.
		outs := make([]bytes.Buffer, len(ids))
		errs := make([]error, len(ids))
		var wg sync.WaitGroup
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				tab, err := experiments.Run(id, cfg)
				if err != nil {
					errs[i] = err
					return
				}
				render := tab.Render
				if *markdown {
					render = tab.RenderMarkdown
				}
				errs[i] = render(&outs[i])
			}(i, id)
		}
		wg.Wait()
		for i := range ids {
			if errs[i] != nil {
				fatal(errs[i])
			}
			if _, err := outs[i].WriteTo(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	for _, id := range ids {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			fatal(err)
		}
		render := tab.Render
		if *markdown {
			render = tab.RenderMarkdown
		}
		if err := render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcds-bench:", err)
	os.Exit(1)
}
