package main

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad list accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
}

// TestPerfReportSchema is the golden-schema test for the committed BENCH
// JSON: exactly these fields, in this set, including the telemetry block
// (omitempty — asserted by marshalling a fully populated record). Renaming
// or dropping a field breaks the comparability of the historical records,
// so doing it must update this list deliberately.
func TestPerfReportSchema(t *testing.T) {
	rep := perfReport{TelemetrySample: 1, ContainsTelemetryNsPerOp: 1,
		ContainsTelemetryAllocs: 1, TelemetryOverheadRatio: 1,
		TelemetryMaxPhiN: 1, TelemetryProbesPerQuery: 1}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{
		"batch_contains_mlp_ns_per_op", "batch_contains_ns_per_op",
		"batch_group", "batch_speedup_vs_scalar",
		"build_ms", "build_parallel_ms", "build_workers",
		"contains_allocs_per_op", "contains_eventlog_allocs_per_op",
		"contains_eventlog_ns_per_op", "contains_ns_per_op",
		"contains_telemetry_allocs_per_op", "contains_telemetry_ns_per_op",
		"date", "eventlog_overhead_ratio",
		"exact_contention_parallel_ms", "exact_contention_serial_ms",
		"exact_contention_speedup", "exact_contention_workers",
		"go_version", "gomaxprocs", "insert_ns_per_op",
		"max_phi_times_s",
		"mixed_hot_absorbed_writes", "mixed_hot_cas_retries",
		"mixed_hot_cas_w1_ops_per_sec", "mixed_hot_cas_w4_ops_per_sec",
		"mixed_hot_cas_wmax_ops_per_sec",
		"mixed_hot_w1_ops_per_sec", "mixed_hot_w4_ops_per_sec",
		"mixed_hot_wmax_ops_per_sec",
		"mixed_w1_ops_per_sec", "mixed_w4_ops_per_sec",
		"mixed_wmax_ops_per_sec", "mixed_wmax_writers",
		"n", "seed",
		"telemetry_max_phi_n", "telemetry_overhead_ratio",
		"telemetry_probes_per_query", "telemetry_sample",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("perfReport fields changed:\n got %v\nwant %v", got, want)
	}
}
