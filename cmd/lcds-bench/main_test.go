package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad list accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
}
