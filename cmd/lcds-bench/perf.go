package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/workload"

	lcds "repro"
)

// perfReport is the machine-readable benchmark record the -json mode writes.
// One file per run, named BENCH_<date>.json, starts the repository's
// performance trajectory: successive entries are comparable because every
// measured quantity is pinned to the same seed and key count.
type perfReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	N          int    `json:"n"`
	Seed       uint64 `json:"seed"`

	BuildMs         float64 `json:"build_ms"`
	BuildParallelMs float64 `json:"build_parallel_ms"`
	BuildWorkers    int     `json:"build_workers"`

	ContainsNsPerOp     float64 `json:"contains_ns_per_op"`
	ContainsAllocsPerOp float64 `json:"contains_allocs_per_op"`

	// Flight-recorder overhead: the same Contains loop against a dictionary
	// built with WithEventLog only. The recorder hangs off the write and
	// rebuild paths, never the query path, so the acceptance contract
	// (gated in CI via the ratio below) is ≤ 1.05× the uninstrumented
	// number with 0 allocs/op — both loops are timed best-of-3 so the
	// ratio measures the code path, not scheduler noise.
	ContainsEventlogNsPerOp float64 `json:"contains_eventlog_ns_per_op"`
	ContainsEventlogAllocs  float64 `json:"contains_eventlog_allocs_per_op"`
	EventlogOverheadRatio   float64 `json:"eventlog_overhead_ratio"`

	// Batch query path: the scalar reference (wavefront width 1 —
	// query-at-a-time, comparable with historical records) and the
	// memory-level-parallel default, which keeps batch_group probe chains
	// in flight behind software prefetches.
	BatchContainsNsPerOp    float64 `json:"batch_contains_ns_per_op"`
	BatchGroup              int     `json:"batch_group"`
	BatchContainsMlpNsPerOp float64 `json:"batch_contains_mlp_ns_per_op"`
	BatchSpeedupVsScalar    float64 `json:"batch_speedup_vs_scalar"`

	// Dynamic update path: sequential insert latency (rebuilds amortized in),
	// then the 80/10/10 Contains/Insert/Delete mixed workload at 1, 4 and
	// GOMAXPROCS worker goroutines. The writer-scaling headline is
	// mixed_w4_ops_per_sec / mixed_w1_ops_per_sec — on a single-core runner
	// the ratio is honestly ~1 (GOMAXPROCS is recorded above for exactly
	// that reason).
	InsertNsPerOp      float64 `json:"insert_ns_per_op"`
	MixedW1OpsPerSec   float64 `json:"mixed_w1_ops_per_sec"`
	MixedW4OpsPerSec   float64 `json:"mixed_w4_ops_per_sec"`
	MixedWMaxOpsPerSec float64 `json:"mixed_wmax_ops_per_sec"`
	MixedWMaxWriters   int     `json:"mixed_wmax_writers"`

	// Rotating-hot-set write storm: pure insert/delete churn with 90% of
	// the ops on a rotating 8-key point mass, the workload two-phase write
	// absorption exists for. mixed_hot_* runs with WithWriteAbsorption,
	// mixed_hot_cas_* the identical storm on the plain CAS claim path; the
	// acceptance contract is absorbed ≥ direct-CAS at every writer count.
	// mixed_hot_cas_retries counts the absorbed run's claim-CAS retries —
	// near zero, because hot writes never touch a contended slot — and
	// mixed_hot_absorbed_writes certifies the overlay actually engaged.
	MixedHotW1OpsPerSec      float64 `json:"mixed_hot_w1_ops_per_sec"`
	MixedHotW4OpsPerSec      float64 `json:"mixed_hot_w4_ops_per_sec"`
	MixedHotWMaxOpsPerSec    float64 `json:"mixed_hot_wmax_ops_per_sec"`
	MixedHotCasW1OpsPerSec   float64 `json:"mixed_hot_cas_w1_ops_per_sec"`
	MixedHotCasW4OpsPerSec   float64 `json:"mixed_hot_cas_w4_ops_per_sec"`
	MixedHotCasWMaxOpsPerSec float64 `json:"mixed_hot_cas_wmax_ops_per_sec"`
	MixedHotCASRetries       uint64  `json:"mixed_hot_cas_retries"`
	MixedHotAbsorbedWrites   uint64  `json:"mixed_hot_absorbed_writes"`

	// Telemetry overhead, measured only when -telemetry k is given: the
	// same Contains loop against a dictionary built with
	// WithTelemetry(Sample: k), and its ratio to the uninstrumented number.
	TelemetrySample          int     `json:"telemetry_sample,omitempty"`
	ContainsTelemetryNsPerOp float64 `json:"contains_telemetry_ns_per_op,omitempty"`
	ContainsTelemetryAllocs  float64 `json:"contains_telemetry_allocs_per_op,omitempty"`
	TelemetryOverheadRatio   float64 `json:"telemetry_overhead_ratio,omitempty"`
	TelemetryMaxPhiN         float64 `json:"telemetry_max_phi_n,omitempty"`
	TelemetryProbesPerQuery  float64 `json:"telemetry_probes_per_query,omitempty"`

	ExactSerialMs   float64 `json:"exact_contention_serial_ms"`
	ExactParallelMs float64 `json:"exact_contention_parallel_ms"`
	ExactSpeedup    float64 `json:"exact_contention_speedup"`
	ExactWorkers    int     `json:"exact_contention_workers"`
	MaxPhiTimesS    float64 `json:"max_phi_times_s"`
}

// runPerfSuite measures the perf-critical paths at key count n and writes
// the JSON record. seed 0 selects the default seed 1. telemetrySample > 0
// additionally measures the query path with live telemetry at that
// sampling rate, so the record tracks the instrumentation overhead.
func runPerfSuite(n int, seed uint64, outPath string, telemetrySample int) error {
	if seed == 0 {
		seed = 1
	}
	workers := runtime.GOMAXPROCS(0)
	rep := perfReport{
		Date:         time.Now().Format("2006-01-02"),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   workers,
		N:            n,
		Seed:         seed,
		BuildWorkers: workers,
	}
	r := rng.New(seed)
	keys := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for len(keys) < n {
		k := r.Uint64n(lcds.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}

	// Construction, serial and racing GOMAXPROCS draws per round.
	start := time.Now()
	d, err := lcds.New(keys, lcds.WithSeed(seed))
	if err != nil {
		return err
	}
	rep.BuildMs = msSince(start)
	start = time.Now()
	if _, err := lcds.New(keys, lcds.WithSeed(seed), lcds.WithParallelBuild(workers)); err != nil {
		return err
	}
	rep.BuildParallelMs = msSince(start)

	// Query latency and allocations on the facade fast path. GC stays off
	// during the alloc count so pool refills cannot inflate it.
	const queryOps = 1 << 18
	if rep.ContainsNsPerOp, err = containsNsPerOp(d, keys, queryOps); err != nil {
		return err
	}
	gc := debug.SetGCPercent(-1)
	rep.ContainsAllocsPerOp = testing.AllocsPerRun(1000, func() {
		d.Contains(keys[0])
	})
	debug.SetGCPercent(gc)

	// The same loop with the flight recorder armed. The recorder observes
	// writes and rebuilds only, so this is the CI-gated proof the query
	// path stayed untouched.
	de, err := lcds.New(keys, lcds.WithSeed(seed), lcds.WithEventLog(lcds.EventLogConfig{}))
	if err != nil {
		return err
	}
	if rep.ContainsEventlogNsPerOp, err = containsNsPerOp(de, keys, queryOps); err != nil {
		return err
	}
	gc = debug.SetGCPercent(-1)
	rep.ContainsEventlogAllocs = testing.AllocsPerRun(1000, func() {
		de.Contains(keys[0])
	})
	debug.SetGCPercent(gc)
	if rep.ContainsNsPerOp > 0 {
		rep.EventlogOverheadRatio = rep.ContainsEventlogNsPerOp / rep.ContainsNsPerOp
	}

	if telemetrySample > 0 {
		rep.TelemetrySample = telemetrySample
		dt, err := lcds.New(keys, lcds.WithSeed(seed),
			lcds.WithTelemetry(lcds.TelemetryConfig{Sample: telemetrySample}))
		if err != nil {
			return err
		}
		start = time.Now()
		for i := 0; i < queryOps; i++ {
			if !dt.Contains(keys[i%n]) {
				return fmt.Errorf("lost key %d under telemetry", keys[i%n])
			}
		}
		rep.ContainsTelemetryNsPerOp = float64(time.Since(start).Nanoseconds()) / queryOps
		gc = debug.SetGCPercent(-1)
		rep.ContainsTelemetryAllocs = testing.AllocsPerRun(1000, func() {
			dt.Contains(keys[0])
		})
		debug.SetGCPercent(gc)
		if rep.ContainsNsPerOp > 0 {
			rep.TelemetryOverheadRatio = rep.ContainsTelemetryNsPerOp / rep.ContainsNsPerOp
		}
		snap := dt.Telemetry().Snapshot()
		rep.TelemetryMaxPhiN = snap.MaxPhiN
		rep.TelemetryProbesPerQuery = snap.ProbesPerQuery
	}

	// Batch path, scalar reference first: a width-1 wavefront answers one
	// query at a time, keeping the field comparable with records from
	// before the scheduler existed. The same seed builds the identical
	// dictionary, so both loops probe the same table.
	const batch = 1024
	out := make([]bool, batch)
	d1, err := lcds.New(keys, lcds.WithSeed(seed), lcds.WithBatchGroup(1))
	if err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i+batch <= queryOps; i += batch {
		if err := d1.ContainsBatch(keys[:batch], out); err != nil {
			return err
		}
	}
	rep.BatchContainsNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(queryOps/batch*batch)
	start = time.Now()
	for i := 0; i+batch <= queryOps; i += batch {
		if err := d.ContainsBatch(keys[:batch], out); err != nil {
			return err
		}
	}
	rep.BatchContainsMlpNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(queryOps/batch*batch)
	if rep.BatchContainsMlpNsPerOp > 0 {
		rep.BatchSpeedupVsScalar = rep.BatchContainsNsPerOp / rep.BatchContainsMlpNsPerOp
	}

	// Dynamic update path. Sequential inserts first: build over half the
	// keys, insert the rest, Quiesce inside the timed window so triggered
	// rebuilds are amortized into the per-op figure rather than leaking
	// into the next measurement.
	dd, err := lcds.NewDynamic(keys[:n/2], 0, lcds.WithSeed(seed))
	if err != nil {
		return err
	}
	start = time.Now()
	for _, k := range keys[n/2:] {
		if _, err := dd.Insert(k); err != nil {
			return err
		}
	}
	dd.Quiesce()
	rep.InsertNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(n-n/2)

	rep.MixedWMaxWriters = workers
	if rep.MixedW1OpsPerSec, err = mixedDynamicOpsPerSec(keys, seed, 1); err != nil {
		return err
	}
	if rep.MixedW4OpsPerSec, err = mixedDynamicOpsPerSec(keys, seed, 4); err != nil {
		return err
	}
	switch workers {
	case 1:
		rep.MixedWMaxOpsPerSec = rep.MixedW1OpsPerSec
	case 4:
		rep.MixedWMaxOpsPerSec = rep.MixedW4OpsPerSec
	default:
		if rep.MixedWMaxOpsPerSec, err = mixedDynamicOpsPerSec(keys, seed, workers); err != nil {
			return err
		}
	}

	// Rotating-hot-set write storm, absorbed and direct-CAS.
	hot := func(workers int, absorb bool) (float64, lcds.DynamicStats, error) {
		return hotStormOpsPerSec(keys, seed, workers, absorb)
	}
	var hotStats lcds.DynamicStats
	if rep.MixedHotW1OpsPerSec, hotStats, err = hot(1, true); err != nil {
		return err
	}
	rep.MixedHotCASRetries = hotStats.WriteCASRetries
	rep.MixedHotAbsorbedWrites = hotStats.AbsorbedWrites
	if rep.MixedHotW4OpsPerSec, hotStats, err = hot(4, true); err != nil {
		return err
	}
	rep.MixedHotCASRetries += hotStats.WriteCASRetries
	rep.MixedHotAbsorbedWrites += hotStats.AbsorbedWrites
	if rep.MixedHotCasW1OpsPerSec, _, err = hot(1, false); err != nil {
		return err
	}
	if rep.MixedHotCasW4OpsPerSec, _, err = hot(4, false); err != nil {
		return err
	}
	switch workers {
	case 1:
		rep.MixedHotWMaxOpsPerSec = rep.MixedHotW1OpsPerSec
		rep.MixedHotCasWMaxOpsPerSec = rep.MixedHotCasW1OpsPerSec
	case 4:
		rep.MixedHotWMaxOpsPerSec = rep.MixedHotW4OpsPerSec
		rep.MixedHotCasWMaxOpsPerSec = rep.MixedHotCasW4OpsPerSec
	default:
		if rep.MixedHotWMaxOpsPerSec, hotStats, err = hot(workers, true); err != nil {
			return err
		}
		rep.MixedHotCASRetries += hotStats.WriteCASRetries
		rep.MixedHotAbsorbedWrites += hotStats.AbsorbedWrites
		if rep.MixedHotCasWMaxOpsPerSec, _, err = hot(workers, false); err != nil {
			return err
		}
	}

	// Exact contention analysis, serial versus parallel, with the
	// bit-identity contract checked on the headline maxΦ·s. A discarded
	// warmup run faults in the table and support first, so the serial
	// timing is not penalized by cold caches relative to the parallel one.
	// The parallel run uses GOMAXPROCS workers — ExactWorkers clamps there
	// anyway, because oversubscribing pure-compute workers onto fewer
	// cores only adds scheduler churn (the old force-to-2 here produced a
	// 0.65× "speedup" on one core). On a single-core machine both runs are
	// therefore serial and the speedup is honestly ~1×.
	exactWorkers := workers
	rep.ExactWorkers = exactWorkers
	inner, err := core.Build(keys, core.Params{}, seed)
	if err != nil {
		return err
	}
	rep.BatchGroup = inner.BatchGroup()
	support := dist.NewUniformSet(keys, "").Support()
	if _, err := contention.ExactWorkers(inner, support, 1); err != nil {
		return err
	}
	start = time.Now()
	serial, err := contention.ExactWorkers(inner, support, 1)
	if err != nil {
		return err
	}
	rep.ExactSerialMs = msSince(start)
	start = time.Now()
	par, err := contention.ExactWorkers(inner, support, exactWorkers)
	if err != nil {
		return err
	}
	rep.ExactParallelMs = msSince(start)
	if serial.MaxStep != par.MaxStep || serial.MaxTotal != par.MaxTotal {
		return fmt.Errorf("parallel exact contention diverged: serial maxΦ=%v/%v, parallel %v/%v",
			serial.MaxStep, serial.MaxTotal, par.MaxStep, par.MaxTotal)
	}
	rep.ExactSpeedup = rep.ExactSerialMs / rep.ExactParallelMs
	rep.MaxPhiTimesS = serial.RatioStep()

	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	fmt.Printf("n=%d build %.1fms (parallel %.1fms), contains %.0fns/op %.2g allocs/op, batch %.0fns/op -> %.0fns/op (%.2fx at G=%d), exact %0.fms -> %.0fms (%.2fx on %d workers, GOMAXPROCS=%d)\n",
		n, rep.BuildMs, rep.BuildParallelMs, rep.ContainsNsPerOp, rep.ContainsAllocsPerOp,
		rep.BatchContainsNsPerOp, rep.BatchContainsMlpNsPerOp, rep.BatchSpeedupVsScalar, rep.BatchGroup,
		rep.ExactSerialMs, rep.ExactParallelMs, rep.ExactSpeedup, exactWorkers, workers)
	fmt.Printf("eventlog: contains %.0fns/op (%.2fx overhead) %.2g allocs/op\n",
		rep.ContainsEventlogNsPerOp, rep.EventlogOverheadRatio, rep.ContainsEventlogAllocs)
	fmt.Printf("dynamic: insert %.0fns/op, mixed 80r/20w %.0f ops/s (w=1) %.0f ops/s (w=4) %.0f ops/s (w=%d)\n",
		rep.InsertNsPerOp, rep.MixedW1OpsPerSec, rep.MixedW4OpsPerSec, rep.MixedWMaxOpsPerSec, rep.MixedWMaxWriters)
	fmt.Printf("hot storm: absorbed %.0f/%.0f/%.0f ops/s vs cas %.0f/%.0f/%.0f ops/s (w=1/4/%d), %d absorbed writes, %d cas retries\n",
		rep.MixedHotW1OpsPerSec, rep.MixedHotW4OpsPerSec, rep.MixedHotWMaxOpsPerSec,
		rep.MixedHotCasW1OpsPerSec, rep.MixedHotCasW4OpsPerSec, rep.MixedHotCasWMaxOpsPerSec,
		rep.MixedWMaxWriters, rep.MixedHotAbsorbedWrites, rep.MixedHotCASRetries)
	if telemetrySample > 0 {
		fmt.Printf("telemetry sample=%d: contains %.0fns/op (%.2fx overhead) %.2g allocs/op, maxPhi*n=%.3f, probes/query=%.3f\n",
			telemetrySample, rep.ContainsTelemetryNsPerOp, rep.TelemetryOverheadRatio,
			rep.ContainsTelemetryAllocs, rep.TelemetryMaxPhiN, rep.TelemetryProbesPerQuery)
	}
	return nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// containsNsPerOp times the facade Contains loop best-of-3: the minimum of
// three back-to-back passes, so one scheduler hiccup cannot fake an
// overhead regression in a CI-gated ratio.
func containsNsPerOp(d *lcds.Dict, keys []uint64, ops int) (float64, error) {
	var best float64
	for pass := 0; pass < 3; pass++ {
		start := time.Now()
		for i := 0; i < ops; i++ {
			if !d.Contains(keys[i%len(keys)]) {
				return 0, fmt.Errorf("lost key %d", keys[i%len(keys)])
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(ops)
		if pass == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// mixedDynamicOpsPerSec runs the mixed 80% Contains / 10% Insert / 10%
// Delete workload with the given number of worker goroutines against a
// fresh dynamic dictionary over keys, and returns aggregate operations per
// second. Writers churn the same key set they read, so membership drifts
// while buffer claims keep triggering rebuilds — the throughput number
// includes that steady-state rebuild cost.
func mixedDynamicOpsPerSec(keys []uint64, seed uint64, workers int) (float64, error) {
	d, err := lcds.NewDynamic(keys, 0, lcds.WithSeed(seed))
	if err != nil {
		return 0, err
	}
	const totalOps = 1 << 17
	per := totalOps / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(seed ^ (uint64(w+1) * 0x9e3779b97f4a7c15))
			for i := 0; i < per; i++ {
				k := keys[r.Intn(len(keys))]
				var err error
				switch r.Intn(10) {
				case 0:
					_, err = d.Insert(k)
				case 1:
					_, err = d.Delete(k)
				default:
					_, err = d.Contains(k)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	d.Quiesce()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(per*workers) / elapsed.Seconds(), nil
}

// hotStormOpsPerSec runs the rotating-hot-set write storm — pure 50/50
// insert/delete churn, 90% of it on a rotating 8-key point mass — with the
// given writer count, returning aggregate ops/sec and the dictionary's final
// stats. absorb toggles WithWriteAbsorption, so the absorbed and direct-CAS
// runs face the identical schedule (same drive seed) and differ only in the
// write protocol.
func hotStormOpsPerSec(keys []uint64, seed uint64, workers int, absorb bool) (float64, lcds.DynamicStats, error) {
	opts := []lcds.Option{lcds.WithSeed(seed)}
	if absorb {
		opts = append(opts, lcds.WithWriteAbsorption())
	}
	d, err := lcds.NewDynamic(keys, 0, opts...)
	if err != nil {
		return 0, lcds.DynamicStats{}, err
	}
	drive, err := workload.NewRotatingHotSet(keys, 8, 1<<14, 0.9, seed^0x407)
	if err != nil {
		return 0, lcds.DynamicStats{}, err
	}
	const totalOps = 1 << 17
	per := totalOps / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(seed ^ (uint64(w+1) * 0x9e3779b97f4a7c15))
			for i := 0; i < per; i++ {
				k := drive.Next()
				var err error
				if r.Intn(2) == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	d.Quiesce()
	for _, err := range errs {
		if err != nil {
			return 0, lcds.DynamicStats{}, err
		}
	}
	return float64(per*workers) / elapsed.Seconds(), d.Stats(), nil
}
