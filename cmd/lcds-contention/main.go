// lcds-contention profiles the contention of one dictionary structure under
// one query distribution, printing the exact analysis, a Monte-Carlo
// cross-check, and the hottest-cell profile.
//
// Usage:
//
//	lcds-contention -structure lcds -n 8192 -dist uniform-pos
//	lcds-contention -structure fks+rep -dist zipf -zipf 1.1
//	lcds-contention -structure bsearch -dist point
package main

import (
	"flag"
	"fmt"
	"os"

	"strings"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
	"repro/internal/shard"

	// Register every structure the -structure flag can name.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
)

func main() {
	name := flag.String("structure", "lcds", "any registered structure (see -list)")
	list := flag.Bool("list", false, "print the registered structure names and exit")
	n := flag.Int("n", 8192, "number of stored keys")
	shards := flag.Int("shards", 1, "shard the structure P ways behind a routing row (P ≥ 2)")
	distName := flag.String("dist", "uniform-pos", "uniform-pos, uniform-neg, posneg, zipf, point")
	zipfExp := flag.Float64("zipf", 1.0, "Zipf exponent")
	queries := flag.Int("queries", 200000, "Monte-Carlo query count")
	seed := flag.Uint64("seed", 20100613, "random seed")
	explain := flag.Bool("explain", false, "trace one query step by step (lcds only)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(scheme.Names(), "\n"))
		return
	}

	keys := experiments.Keys(*n, *seed)
	var st contention.Structure
	var err error
	if *shards > 1 {
		st, err = shard.NewNamed(keys, *shards, *name, *seed)
	} else {
		st, err = scheme.Build(*name, keys, *seed)
	}
	if err != nil {
		fatal(err)
	}

	var q dist.Dist
	switch *distName {
	case "uniform-pos":
		q = dist.NewUniformSet(keys, "uniform-pos")
	case "uniform-neg":
		q = dist.NewUniformComplement(hash.MaxKey, keys)
	case "posneg":
		q = dist.PosNeg(keys, hash.MaxKey, 0.5)
	case "zipf":
		q = dist.NewZipf(keys, *zipfExp)
	case "point":
		q = dist.PointMass{Key: keys[0]}
	default:
		fatal(fmt.Errorf("unknown distribution %q", *distName))
	}

	fmt.Printf("structure %s, n = %d, cells = %d, distribution %s\n",
		st.Name(), st.N(), st.Table().Size(), q.Name())

	if *explain {
		lc, ok := st.(*core.Dict)
		if !ok {
			fatal(fmt.Errorf("-explain supports the lcds structure only"))
		}
		fmt.Println()
		if _, err := lc.Explain(q.Sample(rng.New(*seed^1)), rng.New(*seed^2), os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if sup, ok := q.(dist.Supporter); ok {
		ex, err := contention.Exact(st, sup.Support())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact:        ratioStep %.1f  ratioTotal %.1f  probes/query %.2f\n",
			ex.RatioStep(), ex.RatioTotal(), ex.Probes)
		prof, err := contention.Profile(st, sup.Support())
		if err != nil {
			fatal(err)
		}
		sorted := contention.SortedDescending(prof)
		fracs := []float64{0, 1e-4, 1e-3, 1e-2, 0.1, 0.5}
		vals := contention.Quantiles(sorted, fracs)
		fmt.Printf("profile (Φ·s at descending quantiles):\n")
		for i, f := range fracs {
			fmt.Printf("  q=%-8g %.2f\n", f, vals[i]*float64(len(prof)))
		}
	} else {
		fmt.Println("exact:        (distribution support not enumerable; Monte-Carlo only)")
	}

	mc, err := contention.MonteCarlo(st, q, *queries, rng.New(*seed^0xabcdef))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("monte-carlo:  ratioStep %.1f  ratioTotal %.1f  probes/query %.2f  (%d queries, %d positive)\n",
		mc.RatioStep(), mc.MaxTotal*float64(mc.Cells), mc.Probes, mc.Queries, mc.Positives)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcds-contention:", err)
	os.Exit(1)
}
