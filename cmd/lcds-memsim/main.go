// lcds-memsim simulates m simultaneous membership queries against a
// single-port-per-module memory and reports the hot-spot slowdown of each
// structure — the paper's §1 motivation made observable.
//
// Usage:
//
//	lcds-memsim -n 8192 -procs 1,4,16,64,256
//	lcds-memsim -n 8192 -modules 64   # interleave cells over 64 banks
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/rng"
	"repro/internal/scheme"
)

func main() {
	n := flag.Int("n", 8192, "number of stored keys")
	procsFlag := flag.String("procs", "1,2,4,8,16,32,64,128,256", "processor counts")
	modules := flag.Int("modules", 0, "memory modules (0 = one per cell)")
	structures := flag.String("structures", "", "comma-separated registry names (default: the comparison roster)")
	seed := flag.Uint64("seed", 20100613, "random seed")
	flag.Parse()

	var procs []int
	for _, p := range strings.Split(*procsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fatal(err)
		}
		procs = append(procs, v)
	}

	names := experiments.ComparisonNames()
	if *structures != "" {
		names = nil
		for _, name := range strings.Split(*structures, ",") {
			name = strings.TrimSpace(name)
			if _, ok := scheme.Lookup(name); !ok {
				fatal(fmt.Errorf("unknown structure %q (registered: %s)",
					name, strings.Join(scheme.Names(), ", ")))
			}
			names = append(names, name)
		}
	}
	keys := experiments.Keys(*n, *seed)
	sts, err := experiments.BuildRoster(names, keys, *seed)
	if err != nil {
		fatal(err)
	}
	q := dist.NewUniformSet(keys, "")

	fmt.Printf("n = %d keys, uniform positive queries, %s\n\n", *n, moduleDesc(*modules))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "m"
	for _, st := range sts {
		header += "\t" + st.Name()
	}
	fmt.Fprintln(tw, header+"\t(slowdown = makespan / conflict-free)")
	for _, m := range procs {
		row := fmt.Sprintf("%d", m)
		for _, st := range sts {
			seqs, err := memsim.Sequences(st, q, m, rng.New(*seed+uint64(m)))
			if err != nil {
				fatal(err)
			}
			res := memsim.Run(seqs, memsim.Config{Modules: *modules})
			row += fmt.Sprintf("\t%.2f", res.Slowdown())
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
}

func moduleDesc(m int) string {
	if m <= 0 {
		return "one memory module per cell"
	}
	return fmt.Sprintf("%d interleaved memory modules", m)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcds-memsim:", err)
	os.Exit(1)
}
