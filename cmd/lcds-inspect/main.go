// lcds-inspect prints the structure and statistics of a serialized
// low-contention dictionary, and optionally verifies it by querying every
// stored key.
//
// Usage:
//
//	lcds-bench ... | lcds-inspect file.lcds
//	lcds-inspect -verify file.lcds
//
// Files are produced with Dict.WriteTo (package lcds) or core.Dict.WriteTo.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
)

func main() {
	verify := flag.Bool("verify", false, "re-run the exact contention analysis (uniform positive queries)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lcds-inspect [-verify] <file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := core.Read(f)
	if err != nil {
		fatal(err)
	}
	rep := d.Report()
	fmt.Printf("low-contention dictionary: n = %d keys\n", rep.N)
	fmt.Printf("  table: %d rows × %d cells = %d cells (%d histogram rows)\n",
		rep.Rows, rep.S, rep.Cells, rep.Rho)
	fmt.Printf("  groups: %d of %d buckets each; g range %d\n", rep.M, rep.S/rep.M, rep.R)
	fmt.Printf("  loads: max bucket %d, Σℓ² = %d (FKS budget %d)\n",
		rep.MaxBucketLoad, rep.SumSquares, rep.S)
	fmt.Printf("  probes per query: ≤ %d\n", d.MaxProbes())

	if !*verify {
		return
	}
	if rep.N == 0 {
		fmt.Println("verify: empty dictionary, nothing to analyze")
		return
	}
	keys := d.Keys()
	q := dist.NewUniformSet(keys, "")
	ex, err := contention.Exact(d, q.Support())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("verify: exact contention ratio %.1f× optimal, %.2f probes/query\n",
		ex.RatioStep(), ex.Probes)
	qr := rng.New(1)
	for _, k := range keys {
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			fatal(fmt.Errorf("verification query for %d failed (err %v)", k, err))
		}
	}
	fmt.Printf("verify: all %d stored keys answer true\n", len(keys))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcds-inspect:", err)
	os.Exit(1)
}
