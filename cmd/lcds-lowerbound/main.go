// lcds-lowerbound explores the paper's §3 lower bound numerically.
//
// Modes:
//
//	-mode tstar   minimal probe count t* vs n (the F3 series)
//	-mode game    Lemma 14 information accounting on a real dictionary
//	-mode vcdim   VC-dimension of small membership instances
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/cellprobe"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lowerbound"
)

func main() {
	mode := flag.String("mode", "tstar", "tstar, game, or vcdim")
	n := flag.Int("n", 4096, "dictionary size for -mode game")
	seed := flag.Uint64("seed", 20100613, "random seed")
	flag.Parse()

	switch *mode {
	case "tstar":
		tstar()
	case "game":
		game(*n, *seed)
	case "vcdim":
		vcdim()
	default:
		fmt.Fprintf(os.Stderr, "lcds-lowerbound: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}

// tstar prints the minimal feasible probe count for polylog contention
// budgets — Theorem 13's Ω(log log n) made concrete.
func tstar() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tlg lg n\tt* (budget lg n)\tt* (budget lg²n)\tt* (budget lg⁴n)")
	for _, e := range []int{8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512} {
		nf := math.Pow(2, float64(e))
		lg := float64(e)
		fmt.Fprintf(tw, "2^%d\t%.2f\t%d\t%d\t%d\n",
			e, math.Log2(lg),
			lowerbound.MinTStar(nf, lg, lg),
			lowerbound.MinTStar(nf, lg*lg, lg*lg),
			lowerbound.MinTStar(nf, lg*lg*lg*lg, lg*lg*lg*lg))
	}
	tw.Flush()
	fmt.Println("\nt* is the smallest probe count satisfying n·2^(−2t) ≤ a₁·a^(1−2^(−t));")
	fmt.Println("any balanced scheme (Definition 12) with contention φ* ≤ budget/s needs ≥ t* probes.")
}

// game runs the Lemma 14 accounting on the real dictionary's probe matrices.
func game(n int, seed uint64) {
	keys := experiments.Keys(n, seed)
	d, err := core.Build(keys, core.Params{}, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcds-lowerbound:", err)
		os.Exit(1)
	}
	specs := make([]cellprobe.ProbeSpec, len(keys))
	for i, k := range keys {
		specs[i] = d.ProbeSpec(k)
	}
	res := lowerbound.PlayGame(specs, 128)
	fmt.Printf("n = %d parallel query instances, table of %d cells, b = 128 bits\n\n", n, d.Table().Size())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "round\tinfo rate Σ_j max_i P_t(i,j)\tbits bound\tmax cell prob")
	for _, round := range res.Rounds {
		fmt.Fprintf(tw, "%d\t%.2f\t%.1f\t%.2e\n", round.Step, round.InfoRate, round.BitsBound, round.MaxCellProb)
	}
	tw.Flush()
	fmt.Printf("\ntotal bits bound %.1f, required n·2^(−2t*) = %.3e, feasible = %v\n",
		res.TotalBits, res.RequiredBits, res.Feasible())
	fmt.Println("replicated rounds contribute ≈ 1 cell of joint information; only the")
	fmt.Println("final (data) round is instance-specific — the structure of the Ω(log log n) argument.")
}

// vcdim prints exact VC-dimensions of small data-structure problems
// (Definition 11) — membership (dimension = |S|), interval stabbing (2),
// thresholds (1), and full subsets (= universe size).
func vcdim() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "problem\tVC-dim (computed)\tVC-dim (theory)")
	for _, tc := range [][2]int{{6, 1}, {6, 3}, {8, 4}, {12, 6}} {
		p := lowerbound.Membership(tc[0], tc[1])
		fmt.Fprintf(tw, "membership(%d choose %d)\t%d\t%d\n", tc[0], tc[1], lowerbound.VCDim(p), tc[1])
	}
	for _, q := range []int{4, 8, 12} {
		fmt.Fprintf(tw, "interval(%d points)\t%d\t2\n", q, lowerbound.VCDim(lowerbound.Interval(q)))
	}
	for _, q := range []int{4, 10} {
		fmt.Fprintf(tw, "threshold(%d points)\t%d\t1\n", q, lowerbound.VCDim(lowerbound.Threshold(q)))
	}
	for _, q := range []int{4, 8} {
		fmt.Fprintf(tw, "all-subsets(%d points)\t%d\t%d\n", q, lowerbound.VCDim(lowerbound.Parity(q)), q)
	}
	tw.Flush()
	fmt.Println("\nTheorem 13's Ω(log log n) applies with n = the problem's VC-dimension;")
	fmt.Println("membership is simply the problem where that dimension equals the data-set size.")
}
