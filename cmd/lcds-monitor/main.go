// lcds-monitor serves live contention telemetry for a low-contention
// dictionary under synthetic load: a Prometheus-style /metrics endpoint, a
// /debug/telemetry JSON snapshot (top-K hottest cells, recent probe traces,
// and the live-vs-exact Φ̂ drift), and net/http/pprof.
//
// Usage:
//
//	lcds-monitor                        # n=8192 static dict on :8080
//	lcds-monitor -shards 4 -sample 16   # sharded, 1-in-16 probe sampling
//	lcds-monitor -dist zipf:1.2         # skewed query distribution
//	lcds-monitor -adaptive 500000       # self-tuning probe sampling
//	lcds-monitor -dynamic -churn 64     # dynamic dict with update churn
//	lcds-monitor -selfcheck             # start, drive, scrape, verify, exit
//
// The workload drives Contains over a deterministic weighted schedule
// realizing the -dist distribution (uniform by default — the round-robin
// pass of old), and the /debug/telemetry drift block compares the live Φ̂
// against contention.Exact under the schedule's realized weights, so the
// headline gauge lcds_max_phi_n stays comparable to the paper's maxΦ·n
// under any supported skew. -miss-frac mixes in negative lookups at the
// cost of that comparability.
//
// -adaptive budgets the recorded (post-sampling) probe rate: a feedback
// controller doubles or halves the sampling factor k (gauge
// lcds_sampling_k) to hold the budget, so the monitor can stay attached to
// any traffic level without hand-tuning -sample.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/workload"

	lcds "repro"
)

type dict interface {
	Contains(x uint64) bool
	Telemetry() *lcds.Telemetry
	EventLog() *lcds.EventLog
	Timeline(since uint64, max int) ([]lcds.Event, uint64)
}

// staticDict adapts *lcds.Dict (Contains returns bool) and *lcds.DynamicDict
// (Contains returns (bool, error)) to one query interface for the drivers.
type dynAdapter struct{ d *lcds.DynamicDict }

func (a dynAdapter) Contains(x uint64) bool     { ok, _ := a.d.Contains(x); return ok }
func (a dynAdapter) Telemetry() *lcds.Telemetry { return a.d.Telemetry() }
func (a dynAdapter) EventLog() *lcds.EventLog   { return a.d.EventLog() }
func (a dynAdapter) Timeline(since uint64, max int) ([]lcds.Event, uint64) {
	return a.d.Timeline(since, max)
}

// driftState is the last live-vs-exact comparison, republished atomically.
type driftState struct {
	Drift      lcds.TelemetryDrift `json:"drift"`
	ComputedAt time.Time           `json:"computed_at"`
	Queries    uint64              `json:"queries_at_compute"`
}

// queryDrive is the shared query schedule: a WeightedDrive for the static
// distributions, a RotatingHotSet for -dist rotating:<hot>:<window>.
type queryDrive interface {
	Next() uint64
}

type server struct {
	d      dict
	static *lcds.Dict // nil in -dynamic mode (no exact comparison there)
	// dyn is the dynamic dictionary in -dynamic mode (nil otherwise); absorb
	// records whether the two-phase write protocol is armed, so -selfcheck
	// knows to drive and verify the absorbed path.
	dyn    *lcds.DynamicDict
	absorb bool
	keys   []uint64
	// drive is the query schedule (-dist); support is its realized weighted
	// support, the distribution the exact comparison runs under. support is
	// nil when the schedule has no stationary distribution (rotating hot
	// set), which also disables the exact-Φ drift. Both are nil for servers
	// that only answer ad-hoc queries (tests).
	drive   queryDrive
	support []lcds.WeightedKey
	drift   atomic.Pointer[driftState]
}

// scenarioKeys adapts a workload scenario to the monitor's read-only drive:
// the monitor issues Contains for every scheduled key, ignoring op kinds
// (mutating scenarios like auction/flood drive the same key schedule but
// the churn itself comes from -churn / the selfcheck, not the drive).
type scenarioKeys struct{ s *workload.Scenario }

func (d scenarioKeys) Next() uint64 { return d.s.Next().Key }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 8192, "member key count")
	shards := flag.Int("shards", 1, "shard count (≥ 2 enables the sharded composite)")
	dynamic := flag.Bool("dynamic", false, "serve a dynamic (insert/delete) dictionary")
	absorb := flag.Bool("absorb", false, "dynamic mode: enable two-phase write absorption (hot keys soak into split-phase overlays)")
	epsilon := flag.Float64("epsilon", 0.1, "dynamic buffer fraction")
	seed := flag.Uint64("seed", 1, "construction seed")
	sample := flag.Int("sample", 1, "probe sampling rate: count 1 in k probes (rounded to a power of two)")
	adaptive := flag.Float64("adaptive", 0, "self-tune the sampling factor toward this recorded-probe rate per second (0 = fixed -sample)")
	distName := flag.String("dist", "uniform", "workload scenario driving the queries: uniform, zipf:<s>, point, rotating:<hot>:<window>, auction, flood")
	traceEvery := flag.Int("trace-every", 1024, "capture a full probe trace for 1 in k queries (0 = off)")
	traceBuffer := flag.Int("trace-buffer", 256, "trace ring-buffer capacity")
	topK := flag.Int("topk", 10, "hottest cells to report")
	workers := flag.Int("workers", 1, "query-driving goroutines")
	missFrac := flag.Float64("miss-frac", 0, "fraction of queries for non-member keys")
	churn := flag.Int("churn", 0, "dynamic mode: insert+delete operations per second (0 = none)")
	driftEvery := flag.Duration("drift-every", 0, "recompute the exact-Φ drift at this interval (0 = once, after the first key pass)")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until interrupted)")
	selfcheck := flag.Bool("selfcheck", false, "drive one deterministic pass, scrape /metrics in-process, verify, and exit")
	flag.Parse()

	cfg := lcds.TelemetryConfig{
		Sample:      *sample,
		TraceEvery:  *traceEvery,
		TraceBuffer: *traceBuffer,
		TopK:        *topK,
	}
	if *adaptive > 0 {
		cfg.Adaptive = &lcds.TelemetryAdaptiveConfig{TargetProbesPerSec: *adaptive}
	}
	otlpConfigure(&cfg)
	keys := genKeys(*n, *seed)
	opts := []lcds.Option{lcds.WithSeed(*seed), lcds.WithTelemetry(cfg)}
	if *shards > 1 {
		opts = append(opts, lcds.WithShards(*shards))
	}

	srv := &server{keys: keys, absorb: *absorb}
	sc, err := workload.NewScenario(*distName, keys, *seed)
	if err != nil {
		fatal(err)
	}
	srv.drive = scenarioKeys{sc}
	// Scenarios with a stationary distribution expose their exact realized
	// support; the exact-Φ drift runs under it. Support() is nil for
	// rotating/mutating schedules, which disables the comparison.
	for _, w := range sc.Support() {
		srv.support = append(srv.support, lcds.WeightedKey{Key: w.Key, P: w.P})
	}
	if *dynamic {
		if *absorb {
			opts = append(opts, lcds.WithWriteAbsorption())
		}
		dd, err := lcds.NewDynamic(keys, *epsilon, opts...)
		if err != nil {
			fatal(err)
		}
		srv.d = dynAdapter{dd}
		srv.dyn = dd
		if *churn > 0 && !*selfcheck {
			go churnLoop(dd, keys, *seed, *churn, *absorb)
		}
	} else {
		sd, err := lcds.New(keys, opts...)
		if err != nil {
			fatal(err)
		}
		srv.d = sd
		if srv.support != nil {
			srv.static = sd
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", srv.handleIndex)
	mux.HandleFunc("/metrics", srv.handleMetrics)
	mux.HandleFunc("/debug/telemetry", srv.handleTelemetry)
	mux.HandleFunc("/debug/timeline", srv.handleTimeline)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	if *selfcheck {
		if err := runSelfcheck(srv, mux); err != nil {
			fatal(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	for w := 0; w < *workers; w++ {
		go srv.driveLoop(ctx, w, *missFrac, *seed)
	}
	if srv.static != nil && *missFrac == 0 {
		go srv.driftLoop(ctx, *driftEvery)
	}
	if *adaptive > 0 {
		go srv.adaptLoop(ctx)
	}
	startOTLP(ctx, srv)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(shctx)
	}()
	fmt.Printf("lcds-monitor: n=%d shards=%d dynamic=%v sample=%d, serving http://%s/metrics\n",
		*n, *shards, *dynamic, *sample, ln.Addr())
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// genKeys draws n distinct member keys deterministically from seed — the
// shared (n, seed) key convention of workload.MemberKeys, so a monitor and
// an lcds-server started with the same parameters hold the same set.
func genKeys(n int, seed uint64) []uint64 {
	return workload.MemberKeys(n, seed)
}

// driveLoop issues queries from the shared weighted schedule (workers claim
// schedule positions atomically, so the aggregate realizes the -dist
// frequencies exactly per pass), mixing in misses at missFrac.
func (s *server) driveLoop(ctx context.Context, worker int, missFrac float64, seed uint64) {
	r := rng.New(seed ^ (0x9e3779b97f4a7c15 * uint64(worker+1)))
	for ctx.Err() == nil {
		for batch := 0; batch < 4096; batch++ {
			if missFrac > 0 && r.Float64() < missFrac {
				s.d.Contains(r.Uint64n(lcds.MaxKey))
			} else {
				s.d.Contains(s.drive.Next())
			}
		}
	}
}

// adaptLoop runs the sampling controller at a 1 s cadence, feeding it the
// measured elapsed time so wall-clock hiccups don't skew the rate estimate.
func (s *server) adaptLoop(ctx context.Context) {
	tel := s.d.Telemetry()
	last := time.Now()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-ticker.C:
			tel.AdaptTick(now.Sub(last))
			last = now
		}
	}
}

// driftLoop publishes the live-vs-exact comparison once one full key pass
// has accumulated, then refreshes it at the configured interval.
func (s *server) driftLoop(ctx context.Context, every time.Duration) {
	tel := s.d.Telemetry()
	for ctx.Err() == nil {
		if tel.Snapshot().Queries >= uint64(len(s.keys)) {
			break
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
	for {
		s.computeDrift()
		if every <= 0 {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(every):
		}
	}
}

func (s *server) computeDrift() {
	if s.static == nil {
		return
	}
	var dr lcds.TelemetryDrift
	var err error
	if s.support != nil {
		// Compare under the schedule's realized weights so the drift reads
		// 1.0 under any -dist skew, not just uniform.
		dr, err = s.static.TelemetryCompareExactWeighted(s.support)
	} else {
		dr, err = s.static.TelemetryCompareExact(s.keys)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lcds-monitor: drift:", err)
		return
	}
	s.drift.Store(&driftState{
		Drift:      dr,
		ComputedAt: time.Now(),
		Queries:    s.d.Telemetry().Snapshot().Queries,
	})
}

// churnLoop exercises the dynamic update path: it inserts a disjoint block
// of fresh keys and deletes it again, paced at rate ops/second, driving
// epoch rebuilds and the rebuild/pause metrics. With hot (the -absorb
// flag), the churn concentrates on an 8-key block flipped over and over —
// the point-mass write skew the classifier is there to detect — so the
// absorbed-write and phase series move on a live monitor.
func churnLoop(d *lcds.DynamicDict, member []uint64, seed uint64, rate int, hot bool) {
	memberSet := make(map[uint64]bool, len(member))
	for _, k := range member {
		memberSet[k] = true
	}
	r := rng.New(seed ^ 0xc0ffee)
	fresh := make([]uint64, 0, 256)
	for len(fresh) < cap(fresh) {
		k := r.Uint64n(lcds.MaxKey)
		if !memberSet[k] {
			fresh = append(fresh, k)
		}
	}
	pace := time.Second / time.Duration(rate)
	if hot {
		fresh = fresh[:8]
	}
	for {
		for _, k := range fresh {
			d.Insert(k)
			time.Sleep(pace)
		}
		for _, k := range fresh {
			d.Delete(k)
			time.Sleep(pace)
		}
	}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "lcds-monitor\n\n/metrics          Prometheus text exposition\n/debug/telemetry  JSON snapshot (top-K cells, traces, exact-Φ drift)\n/debug/timeline   flight-recorder event timeline (?since=<cursor>&max=<n>)\n/debug/pprof/     runtime profiles\n")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	tel := s.d.Telemetry()
	// Read the sampling factor at scrape time — the snapshot's copy can be a
	// retune behind when the adaptive controller ticks between scrapes.
	writeMetrics(w, tel.Snapshot(), s.drift.Load(), tel.Sample())
}

// timelineReport is the /debug/timeline response body (shared shape).
type timelineReport = serve.TimelineReport

// handleTimeline serves the flight recorder through the shared handler:
// since-cursor pagination, 400 on malformed parameters.
func (s *server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	serve.TimelineHandler(s.d)(w, r)
}

// telemetryReport is the /debug/telemetry response body.
type telemetryReport struct {
	Snapshot lcds.TelemetrySnapshot `json:"snapshot"`
	Drift    *driftState            `json:"drift,omitempty"`
	Traces   []lcds.QueryTrace      `json:"traces,omitempty"`
}

func (s *server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	tel := s.d.Telemetry()
	rep := telemetryReport{
		Snapshot: tel.Snapshot(),
		Drift:    s.drift.Load(),
		Traces:   tel.Traces(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// runSelfcheck drives one deterministic round-robin pass per member key
// (plus one traced warm pass), scrapes /metrics through the real HTTP
// stack, and verifies the exposition contains every stable metric name and
// that the live Φ̂ agrees with the exact analysis within 5%. It prints the
// scraped body so callers (CI) can grep it too.
func runSelfcheck(s *server, mux *http.ServeMux) error {
	// Each data cell receives exactly one probe per pass; the replicated
	// rows draw their columns at random, so their hottest cell is a max
	// over binomials that only concentrates below the data cells once the
	// expected count per replica cell is large. 128 passes is where the
	// overshoot probability is negligible for every n ≥ 1024 (and matches
	// the facade acceptance test's query budget at n = 8192).
	const passes = 128
	pass := func() error {
		for range s.keys {
			k := s.drive.Next()
			if !s.d.Contains(k) && s.static != nil {
				return fmt.Errorf("selfcheck: lost key %d", k)
			}
		}
		return nil
	}
	for p := 0; p < passes; p++ {
		if err := pass(); err != nil {
			return err
		}
	}
	if tel := s.d.Telemetry(); tel.Adaptive() {
		// Deterministic controller convergence: feed one schedule pass per
		// simulated second and require the sampling factor to hold steady for
		// three consecutive ticks. The offered rate is constant, so the
		// hysteresis deadband guarantees a fixed point.
		k, steady := tel.AdaptTick(time.Second), 1
		for tick := 0; tick < 16 && steady < 3; tick++ {
			if err := pass(); err != nil {
				return err
			}
			if next := tel.AdaptTick(time.Second); next == k {
				steady++
			} else {
				k, steady = next, 1
			}
		}
		if steady < 3 {
			return fmt.Errorf("selfcheck: adaptive sampling factor never settled (last k=%d)", k)
		}
		fmt.Printf("# selfcheck: adaptive sampling converged at k=%d\n", k)
	}
	s.computeDrift()

	if s.dyn != nil && s.absorb {
		// Absorbed-path check: flip a 4-key hot block hard enough for the
		// classifier to promote it, then verify the two-phase counters moved
		// before the exposition is scraped.
		hot := s.keys[:4]
		for i := 0; i < 4096; i++ {
			k := hot[i%len(hot)]
			var err error
			if (i/len(hot))%2 == 0 {
				_, err = s.dyn.Delete(k)
			} else {
				_, err = s.dyn.Insert(k)
			}
			if err != nil {
				return err
			}
		}
		s.dyn.Quiesce()
		st := s.dyn.Stats()
		if st.AbsorbedWrites == 0 || st.PhaseSeals == 0 {
			return fmt.Errorf("selfcheck: hot churn moved no two-phase counters (absorbed=%d seals=%d)",
				st.AbsorbedWrites, st.PhaseSeals)
		}
		// Restore the flipped block so the exposition's key gauge stays honest.
		for _, k := range hot {
			if _, err := s.dyn.Insert(k); err != nil {
				return err
			}
		}
		fmt.Printf("# selfcheck: absorbed %d writes across %d phase seals (hot keys now %d)\n",
			st.AbsorbedWrites, st.PhaseSeals, st.HotKeys)
	}

	if err := runTimelineCheck(s); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: mux}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); hs.Serve(ln) }()
	defer func() { hs.Close(); wg.Wait() }()

	body, err := get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	if err != nil {
		return err
	}
	for _, name := range RequiredMetrics {
		if !strings.Contains(body, name) {
			return fmt.Errorf("selfcheck: /metrics is missing %s", name)
		}
	}
	if _, err := get(fmt.Sprintf("http://%s/debug/telemetry", ln.Addr())); err != nil {
		return err
	}
	tlBody, err := get(fmt.Sprintf("http://%s/debug/timeline?since=0&max=16", ln.Addr()))
	if err != nil {
		return err
	}
	var tl timelineReport
	if err := json.Unmarshal([]byte(tlBody), &tl); err != nil {
		return fmt.Errorf("selfcheck: /debug/timeline is not valid JSON: %w", err)
	}
	if s.dyn != nil && len(tl.Events) == 0 {
		return fmt.Errorf("selfcheck: /debug/timeline is empty after dynamic churn")
	}
	fmt.Print(body)
	if s.static != nil {
		st := s.drift.Load()
		if st == nil {
			return fmt.Errorf("selfcheck: drift never computed")
		}
		if s.d.Telemetry().Adaptive() {
			// The convergence phase ran some passes at a transiently elevated
			// k, and a max-over-cells statistic is biased upward by scaled
			// sampling noise that never washes out of the counters. The
			// unbiasedness contract for the controller is the sum statistic:
			// total probes per query must still match the exact expectation.
			if r := st.Drift.ProbesRatio; r < 0.95 || r > 1.05 {
				return fmt.Errorf("selfcheck: adaptive probes/query live/exact ratio %.4f outside 5%%", r)
			}
			fmt.Printf("# selfcheck OK: probes/query live %.4f exact %.4f (ratio %.4f)\n",
				st.Drift.ProbesLive, st.Drift.ProbesExact, st.Drift.ProbesRatio)
		} else {
			if r := st.Drift.MaxPhiRatio; r < 0.95 || r > 1.05 {
				return fmt.Errorf("selfcheck: maxPhi live/exact ratio %.4f outside 5%%", r)
			}
			fmt.Printf("# selfcheck OK: maxPhi*n live %.4f exact %.4f (ratio %.4f)\n",
				st.Drift.MaxPhiLive*float64(len(s.keys)), st.Drift.MaxPhiExact*float64(len(s.keys)), st.Drift.MaxPhiRatio)
		}
	} else {
		fmt.Println("# selfcheck OK (dynamic: no exact comparison)")
	}
	return nil
}

// runTimelineCheck drives concurrent update churn on the dynamic dictionary
// (one writer goroutine per processor, each flipping a disjoint fresh-key
// block, forcing epoch rebuilds — and phase transitions with -absorb), then
// verifies the flight-recorder timeline is coherent: every RebuildStart is
// balanced by a RebuildEnd, per-shard epochs never decrease, PhaseSplit and
// PhaseJoined strictly alternate, and the OverflowDropped entries account
// for the ring's exact drop counter. Static servers record no structural
// events, so the check is a no-op there.
func runTimelineCheck(s *server) error {
	if s.dyn == nil {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	memberSet := make(map[uint64]bool, len(s.keys))
	for _, k := range s.keys {
		memberSet[k] = true
	}
	r := rng.New(0xf11657)
	blocks := make([][]uint64, workers)
	for w := range blocks {
		for len(blocks[w]) < 64 {
			k := r.Uint64n(lcds.MaxKey)
			if !memberSet[k] {
				memberSet[k] = true
				blocks[w] = append(blocks[w], k)
			}
		}
	}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(block []uint64) {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				for _, k := range block {
					if _, err := s.dyn.Insert(k); err != nil {
						errs <- err
						return
					}
				}
				for _, k := range block {
					if _, err := s.dyn.Delete(k); err != nil {
						errs <- err
						return
					}
				}
			}
		}(blocks[w])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("selfcheck: timeline churn: %w", err)
	}
	s.dyn.Quiesce()

	evs, _ := s.dyn.Timeline(0, 1<<20)
	if len(evs) == 0 {
		return fmt.Errorf("selfcheck: empty timeline after %d churn writers", workers)
	}
	starts := map[int32]int{}
	ends := map[int32]int{}
	lastEpoch := map[int32]uint64{}
	split := map[int32]bool{}
	var lastSeq, droppedTotal uint64
	rebuilds := 0
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			return fmt.Errorf("selfcheck: timeline seq %d not after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case lcds.EventRebuildStart:
			starts[ev.Shard]++
			if ev.A < lastEpoch[ev.Shard] {
				return fmt.Errorf("selfcheck: shard %d epoch went backwards (%d after %d)", ev.Shard, ev.A, lastEpoch[ev.Shard])
			}
			lastEpoch[ev.Shard] = ev.A
		case lcds.EventRebuildEnd:
			if _, failed := lcds.EventFailedRebuild(ev.A); failed {
				return fmt.Errorf("selfcheck: rebuild failed: %+v", ev)
			}
			ends[ev.Shard]++
			rebuilds++
		case lcds.EventPhaseSplit:
			if split[ev.Shard] {
				return fmt.Errorf("selfcheck: shard %d split twice without a join", ev.Shard)
			}
			split[ev.Shard] = true
		case lcds.EventPhaseJoined:
			if !split[ev.Shard] {
				return fmt.Errorf("selfcheck: shard %d joined without a split", ev.Shard)
			}
			split[ev.Shard] = false
		case lcds.EventOverflowDropped:
			droppedTotal = ev.B
		}
	}
	for shard, n := range starts {
		if ends[shard] != n {
			return fmt.Errorf("selfcheck: shard %d has %d RebuildStart but %d RebuildEnd", shard, n, ends[shard])
		}
	}
	if got := s.dyn.EventLog().Dropped(); droppedTotal != got {
		return fmt.Errorf("selfcheck: OverflowDropped accounts %d drops, ring counter says %d", droppedTotal, got)
	}
	fmt.Printf("# selfcheck: timeline coherent (%d events, %d rebuilds, %d dropped)\n",
		len(evs), rebuilds, s.dyn.EventLog().Dropped())
	return nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcds-monitor:", err)
	os.Exit(1)
}
