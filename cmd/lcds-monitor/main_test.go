package main

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/workload"

	lcds "repro"
)

func newTestServer(t *testing.T, n int, opts ...lcds.Option) *server {
	t.Helper()
	keys := genKeys(n, 7)
	opts = append([]lcds.Option{lcds.WithSeed(7),
		lcds.WithTelemetry(lcds.TelemetryConfig{TraceEvery: 64, TopK: 4})}, opts...)
	d, err := lcds.New(keys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{d: d, static: d, keys: keys}
	for _, k := range keys {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	return s
}

// TestMetricsExposition checks the /metrics body carries every name in the
// RequiredMetrics contract and parses as Prometheus text: each sample line
// is `name[{labels}] value` with a numeric value.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, 512)
	s.computeDrift()
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range RequiredMetrics {
		if !strings.Contains(body, name) {
			t.Errorf("missing metric %s", name)
		}
	}
	if !strings.Contains(body, "lcds_max_phi_ratio_vs_exact") {
		t.Error("missing drift gauge after computeDrift")
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
	}
}

// TestTelemetryEndpoint checks /debug/telemetry returns a JSON document
// with the snapshot, drift and trace sections populated.
func TestTelemetryEndpoint(t *testing.T) {
	s := newTestServer(t, 512)
	s.computeDrift()
	rec := httptest.NewRecorder()
	s.handleTelemetry(rec, httptest.NewRequest("GET", "/debug/telemetry", nil))
	var rep telemetryReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Snapshot.Queries == 0 || rep.Snapshot.Probes == 0 {
		t.Fatalf("empty snapshot: %+v", rep.Snapshot)
	}
	if len(rep.Snapshot.TopCells) == 0 {
		t.Fatal("snapshot has no top cells")
	}
	if rep.Drift == nil {
		t.Fatal("drift missing after computeDrift")
	}
	if len(rep.Traces) == 0 {
		t.Fatal("no traces despite TraceEvery=64 over 512 queries")
	}
}

// TestDynamicExposition checks the per-shard rebuild metrics surface once
// the dynamic dictionary has rebuilt.
func TestDynamicExposition(t *testing.T) {
	keys := genKeys(1500, 9)
	dd, err := lcds.NewDynamic(keys[:1000], 0.05, lcds.WithSeed(9),
		lcds.WithTelemetry(lcds.TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[1000:1200] {
		if _, err := dd.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	dd.Quiesce()
	s := &server{d: dynAdapter{dd}, keys: keys[:1000]}
	s.d.Contains(keys[0])
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{"lcds_rebuilds_total", "lcds_rebuild_ns", "lcds_delta_high_water"} {
		if !strings.Contains(body, name) {
			t.Errorf("dynamic exposition missing %s", name)
		}
	}
	if strings.Contains(body, "lcds_rebuilds_total{shard=\"0\"} 0") {
		t.Error("rebuild counter still zero after forced rebuilds")
	}
}

// TestTimelineEndpoint churns a dynamic dictionary and checks /debug/timeline
// serves the flight recorder with working since-cursor pagination, and that
// the per-type event counters appear in /metrics.
func TestTimelineEndpoint(t *testing.T) {
	keys := genKeys(1500, 17)
	dd, err := lcds.NewDynamic(keys[:1000], 0.05, lcds.WithSeed(17),
		lcds.WithTelemetry(lcds.TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[1000:1300] {
		if _, err := dd.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	dd.Quiesce()
	s := &server{d: dynAdapter{dd}, dyn: dd, keys: keys[:1000]}

	rec := httptest.NewRecorder()
	s.handleTimeline(rec, httptest.NewRequest("GET", "/debug/timeline?max=4", nil))
	var page1 timelineReport
	if err := json.Unmarshal(rec.Body.Bytes(), &page1); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(page1.Events) != 4 {
		t.Fatalf("page 1 has %d events, want 4", len(page1.Events))
	}
	rec = httptest.NewRecorder()
	s.handleTimeline(rec, httptest.NewRequest("GET",
		"/debug/timeline?since="+strconv.FormatUint(page1.NextCursor, 10), nil))
	var page2 timelineReport
	if err := json.Unmarshal(rec.Body.Bytes(), &page2); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(page2.Events) == 0 {
		t.Fatal("page 2 empty: cursor did not advance through the timeline")
	}
	if first := page2.Events[0].Seq; first != page1.NextCursor+1 {
		t.Fatalf("page 2 starts at seq %d, want %d", first, page1.NextCursor+1)
	}
	for _, bad := range []string{"?since=x", "?max=0", "?max=x"} {
		rec = httptest.NewRecorder()
		s.handleTimeline(rec, httptest.NewRequest("GET", "/debug/timeline"+bad, nil))
		if rec.Code != 400 {
			t.Errorf("query %q got status %d, want 400", bad, rec.Code)
		}
	}

	rec = httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `lcds_events_total{type="rebuild_end"}`) {
		t.Error("metrics missing per-type event counter")
	}
	if strings.Contains(body, `lcds_events_total{type="rebuild_end"} 0`) {
		t.Error("rebuild_end counter still zero after forced rebuilds")
	}
	if !strings.Contains(body, "lcds_events_dropped_total 0") {
		t.Error("metrics missing exact drop counter")
	}
	if !strings.Contains(body, `lcds_latency_ns{quantile="0.999"}`) {
		t.Error("latency summary missing p999 quantile")
	}
	if !strings.Contains(body, `lcds_rebuild_ns{shard="0",quantile="0.999"}`) {
		t.Error("rebuild summary missing p999 quantile")
	}
	if !strings.Contains(body, `lcds_writer_pause_ns{shard="0",quantile="0.5"}`) {
		t.Error("writer pause summary missing p50 quantile")
	}
}

// TestScenarioDrive pins the -dist wiring through the scenario registry:
// stationary scenarios expose the support the drift runs under, rotating
// and mutating scenarios disable it, and unknown specs are rejected — the
// grammar itself is pinned in internal/workload.
func TestScenarioDrive(t *testing.T) {
	keys := genKeys(64, 3)
	uni, err := workload.NewScenario("uniform", keys, 3)
	if err != nil || len(uni.Support()) != len(keys) {
		t.Fatalf("uniform: %v (%d weights)", err, len(uni.Support()))
	}
	drive := scenarioKeys{uni}
	seen := map[uint64]bool{}
	for i := 0; i < len(keys); i++ {
		seen[drive.Next()] = true
	}
	if len(seen) != len(keys) {
		t.Fatalf("uniform pass visited %d of %d keys", len(seen), len(keys))
	}
	rot, err := workload.NewScenario("rotating:4:512", keys, 3)
	if err != nil || rot.Support() != nil {
		t.Fatalf("rotating: err=%v support=%v", err, rot.Support())
	}
	if _, err := workload.NewScenario("hot", keys, 3); err == nil {
		t.Error("-dist \"hot\" accepted")
	}
}

// TestWeightedDriftExposition drives a skewed schedule and checks the drift
// block — computed under the schedule's realized weights — reads ≈ 1, and
// that the lcds_sampling_k gauge appears in the exposition.
func TestWeightedDriftExposition(t *testing.T) {
	const n, passes = 1024, 16
	s := newTestServer(t, n)
	support := dist.NewZipf(s.keys, 1.2).Support()
	drive, err := workload.NewWeightedDrive(support, n, 7^0xd157)
	if err != nil {
		t.Fatal(err)
	}
	s.drive = drive
	for _, w := range drive.Realized() {
		s.support = append(s.support, lcds.WeightedKey{Key: w.Key, P: w.P})
	}
	for i := 0; i < passes*n; i++ {
		s.d.Contains(s.drive.Next())
	}
	s.computeDrift()
	st := s.drift.Load()
	if st == nil {
		t.Fatal("drift not computed")
	}
	// newTestServer's uniform warm pass plus the zipf passes: the aggregate
	// realized distribution is not exactly the schedule's, so allow the warm
	// pass's 1/(passes+1) dilution on top of the 5% tolerance.
	if math.Abs(st.Drift.MaxPhiRatio-1) > 0.15 {
		t.Fatalf("skewed drift ratio %.4f far from 1", st.Drift.MaxPhiRatio)
	}
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "lcds_sampling_k 1") {
		t.Error("lcds_sampling_k gauge missing or wrong")
	}
	if !strings.Contains(body, "lcds_sampling_adaptive 0") {
		t.Error("lcds_sampling_adaptive gauge missing for fixed-k config")
	}
}

// TestAdaptiveExposition checks that a controller-tuned server exposes the
// retuned factor through lcds_sampling_k.
func TestAdaptiveExposition(t *testing.T) {
	keys := genKeys(512, 11)
	d, err := lcds.New(keys, lcds.WithSeed(11), lcds.WithTelemetry(lcds.TelemetryConfig{
		Adaptive: &lcds.TelemetryAdaptiveConfig{TargetProbesPerSec: 100},
	}))
	if err != nil {
		t.Fatal(err)
	}
	s := &server{d: d, static: d, keys: keys}
	for _, k := range keys {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	k := d.Telemetry().AdaptTick(time.Second)
	if k <= 1 {
		t.Fatalf("controller did not raise k under load (k=%d)", k)
	}
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "lcds_sampling_k "+strconv.Itoa(k)) {
		t.Errorf("lcds_sampling_k does not report the tuned factor %d", k)
	}
	if !strings.Contains(body, "lcds_sampling_adaptive 1") {
		t.Error("lcds_sampling_adaptive gauge not set")
	}
}

// TestAbsorbedExposition drives hot churn on an absorbing dynamic dictionary
// and checks the two-phase series surface with nonzero values, and that the
// unconditional headers keep the RequiredMetrics contract in static mode.
func TestAbsorbedExposition(t *testing.T) {
	keys := genKeys(2048, 13)
	dd, err := lcds.NewDynamic(keys, 0.25, lcds.WithSeed(13),
		lcds.WithTelemetry(lcds.TelemetryConfig{}), lcds.WithWriteAbsorption())
	if err != nil {
		t.Fatal(err)
	}
	hot := keys[:4]
	for i := 0; i < 4096; i++ {
		k := hot[i%len(hot)]
		if (i/len(hot))%2 == 0 {
			_, err = dd.Delete(k)
		} else {
			_, err = dd.Insert(k)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	dd.Quiesce()
	st := dd.Stats()
	if st.AbsorbedWrites == 0 || st.PhaseSeals == 0 {
		t.Fatalf("hot churn never engaged absorption: %+v", st)
	}
	s := &server{d: dynAdapter{dd}, keys: keys}
	s.d.Contains(keys[0])
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{"lcds_absorbed_writes_total{shard=\"0\"}",
		"lcds_phase_seals_total{shard=\"0\"}", "lcds_phase_hot_keys{shard=\"0\"}",
		"lcds_phase_split{shard=\"0\"}"} {
		if !strings.Contains(body, name) {
			t.Errorf("absorbed exposition missing %s", name)
		}
	}
	if strings.Contains(body, "lcds_absorbed_writes_total{shard=\"0\"} 0\n") {
		t.Error("absorbed counter still zero after hot churn")
	}

	// Static mode: no dynamic series, but the headers keep every
	// RequiredMetrics name present.
	stc := newTestServer(t, 256)
	rec = httptest.NewRecorder()
	stc.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body = rec.Body.String()
	for _, name := range RequiredMetrics {
		if !strings.Contains(body, name) {
			t.Errorf("static exposition missing %s", name)
		}
	}
}
