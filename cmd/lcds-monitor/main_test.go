package main

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	lcds "repro"
)

func newTestServer(t *testing.T, n int, opts ...lcds.Option) *server {
	t.Helper()
	keys := genKeys(n, 7)
	opts = append([]lcds.Option{lcds.WithSeed(7),
		lcds.WithTelemetry(lcds.TelemetryConfig{TraceEvery: 64, TopK: 4})}, opts...)
	d, err := lcds.New(keys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{d: d, static: d, keys: keys}
	for _, k := range keys {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	return s
}

// TestMetricsExposition checks the /metrics body carries every name in the
// RequiredMetrics contract and parses as Prometheus text: each sample line
// is `name[{labels}] value` with a numeric value.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, 512)
	s.computeDrift()
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range RequiredMetrics {
		if !strings.Contains(body, name) {
			t.Errorf("missing metric %s", name)
		}
	}
	if !strings.Contains(body, "lcds_max_phi_ratio_vs_exact") {
		t.Error("missing drift gauge after computeDrift")
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
	}
}

// TestTelemetryEndpoint checks /debug/telemetry returns a JSON document
// with the snapshot, drift and trace sections populated.
func TestTelemetryEndpoint(t *testing.T) {
	s := newTestServer(t, 512)
	s.computeDrift()
	rec := httptest.NewRecorder()
	s.handleTelemetry(rec, httptest.NewRequest("GET", "/debug/telemetry", nil))
	var rep telemetryReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Snapshot.Queries == 0 || rep.Snapshot.Probes == 0 {
		t.Fatalf("empty snapshot: %+v", rep.Snapshot)
	}
	if len(rep.Snapshot.TopCells) == 0 {
		t.Fatal("snapshot has no top cells")
	}
	if rep.Drift == nil {
		t.Fatal("drift missing after computeDrift")
	}
	if len(rep.Traces) == 0 {
		t.Fatal("no traces despite TraceEvery=64 over 512 queries")
	}
}

// TestDynamicExposition checks the per-shard rebuild metrics surface once
// the dynamic dictionary has rebuilt.
func TestDynamicExposition(t *testing.T) {
	keys := genKeys(1500, 9)
	dd, err := lcds.NewDynamic(keys[:1000], 0.05, lcds.WithSeed(9),
		lcds.WithTelemetry(lcds.TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[1000:1200] {
		if _, err := dd.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	dd.Quiesce()
	s := &server{d: dynAdapter{dd}, keys: keys[:1000]}
	s.d.Contains(keys[0])
	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{"lcds_rebuilds_total", "lcds_rebuild_ns", "lcds_delta_high_water"} {
		if !strings.Contains(body, name) {
			t.Errorf("dynamic exposition missing %s", name)
		}
	}
	if strings.Contains(body, "lcds_rebuilds_total{shard=\"0\"} 0") {
		t.Error("rebuild counter still zero after forced rebuilds")
	}
}
