package main

import (
	"io"

	"repro/internal/serve"

	lcds "repro"
)

// RequiredMetrics is the stable exposition contract, shared with
// lcds-server through internal/serve. CI's smoke job and -selfcheck both
// assert against this list.
var RequiredMetrics = serve.RequiredMetrics

// writeMetrics renders the snapshot through the shared exposition,
// converting the monitor's drift state (which also carries compute-time
// metadata for /debug/telemetry) into the exposition's gauge block.
func writeMetrics(w io.Writer, s lcds.TelemetrySnapshot, st *driftState, samplingK int) {
	var dr *serve.Drift
	if st != nil {
		dr = &serve.Drift{
			MaxPhiRatio:     st.Drift.MaxPhiRatio,
			ProbesRatio:     st.Drift.ProbesRatio,
			StepMassMaxDiff: st.Drift.StepMassMaxDiff,
		}
	}
	serve.WriteMetrics(w, s, dr, samplingK)
}
