//go:build otlp

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/telemetry/otlp"

	lcds "repro"
)

var (
	otlpEndpoint = flag.String("otlp", "", "export metrics and flight-recorder spans to this OTLP/HTTP endpoint (e.g. http://localhost:4318); sampled query traces become OTLP spans instead of filling /debug/telemetry's ring")
	otlpEvery    = flag.Duration("otlp-every", 10*time.Second, "OTLP export interval")

	otlpExporter *otlp.Exporter
	otlpTracer   *otlp.SpanTracer
)

// otlpConfigure builds the exporter and, when query tracing is on, replaces
// the internal trace ring with the OTLP span tracer.
func otlpConfigure(cfg *lcds.TelemetryConfig) {
	if *otlpEndpoint == "" {
		return
	}
	exp, err := otlp.New(otlp.Config{Endpoint: *otlpEndpoint, Service: "lcds-monitor"})
	if err != nil {
		fatal(err)
	}
	otlpExporter = exp
	if cfg.TraceEvery > 0 {
		otlpTracer = exp.NewSpanTracer(64)
		cfg.Tracer = otlpTracer
	}
}

// startOTLP runs the export loop: every -otlp-every it posts the telemetry
// snapshot as OTLP metrics and the flight recorder's fresh window as OTLP
// spans (rebuilds and split phases), advancing a since-cursor so each event
// exports once.
func startOTLP(ctx context.Context, s *server) {
	if otlpExporter == nil {
		return
	}
	go func() {
		ticker := time.NewTicker(*otlpEvery)
		defer ticker.Stop()
		var cursor uint64
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := otlpExporter.ExportSnapshot(s.d.Telemetry().Snapshot()); err != nil {
					fmt.Fprintln(os.Stderr, "lcds-monitor: otlp:", err)
				}
				evs, next := s.d.Timeline(cursor, 4096)
				cursor = next
				if err := otlpExporter.ExportEvents(evs); err != nil {
					fmt.Fprintln(os.Stderr, "lcds-monitor: otlp:", err)
				}
				if otlpTracer != nil {
					if err := otlpTracer.Flush(); err != nil {
						fmt.Fprintln(os.Stderr, "lcds-monitor: otlp:", err)
					}
				}
			}
		}
	}()
}
