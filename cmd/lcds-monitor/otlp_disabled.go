//go:build !otlp

package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	lcds "repro"
)

// The -otlp flags are registered in every build so a misdirected invocation
// fails with a clear message instead of a flag-parse error; the exporter
// itself only exists under the otlp build tag (internal/telemetry/otlp).
var (
	otlpEndpoint = flag.String("otlp", "", "export metrics and flight-recorder spans to this OTLP/HTTP endpoint (requires building with -tags otlp)")
	otlpEvery    = flag.Duration("otlp-every", 10*time.Second, "OTLP export interval")
)

// otlpConfigure (no-otlp build): refuse -otlp so the operator learns the
// binary lacks the exporter rather than silently exporting nothing.
func otlpConfigure(cfg *lcds.TelemetryConfig) {
	if *otlpEndpoint != "" {
		fatal(fmt.Errorf("-otlp requires a binary built with -tags otlp"))
	}
	_ = otlpEvery
}

// startOTLP (no-otlp build): nothing to start.
func startOTLP(ctx context.Context, s *server) {}
