package lcds

import (
	"fmt"

	"repro/internal/modarith"
)

// KeyOf maps an arbitrary byte string into the dictionary's key universe
// [0, MaxKey) by evaluating a fixed-coefficient polynomial over the
// Mersenne-61 field (a standard string fingerprint). The map is not
// injective in principle; NewFromStrings verifies that the actual key set
// is collision-free and fails otherwise (probability ≈ n²/2^61 for
// adversarial-free inputs).
func KeyOf(s string) uint64 {
	// Polynomial rolling hash with fixed base over F_p; the base is an
	// arbitrary odd 60-bit constant so results are stable across runs.
	const base = 0x5bd1e995_9e3779b9 & (1<<60 - 1)
	var acc uint64
	for i := 0; i < len(s); i++ {
		acc = modarith.Add(modarith.Mul(acc, base), uint64(s[i])+1)
	}
	// Mix in the length so "a" and "a\x00"-style prefixes differ even when
	// trailing bytes hash to the identity.
	return modarith.Add(modarith.Mul(acc, base), uint64(len(s)))
}

// NewFromStrings builds a dictionary over string members. It fingerprints
// each string with KeyOf and rejects the (astronomically unlikely) case of
// a fingerprint collision, which would make two distinct strings
// indistinguishable.
func NewFromStrings(members []string, opts ...Option) (*StringDict, error) {
	keys := make([]uint64, len(members))
	seen := make(map[uint64]string, len(members))
	for i, s := range members {
		k := KeyOf(s)
		if prev, dup := seen[k]; dup {
			if prev == s {
				return nil, fmt.Errorf("lcds: duplicate member %q", s)
			}
			return nil, fmt.Errorf("lcds: fingerprint collision between %q and %q", prev, s)
		}
		seen[k] = s
		keys[i] = k
	}
	d, err := New(keys, opts...)
	if err != nil {
		return nil, err
	}
	return &StringDict{inner: d}, nil
}

// StringDict answers membership queries over a static string set with the
// low-contention guarantee of Dict.
//
// Because members are stored as 61-bit fingerprints, a Contains(true)
// answer for a string outside the built set is possible with probability
// ≈ 2^-61 per query (a false positive, as in any fingerprint filter);
// false negatives cannot occur.
type StringDict struct {
	inner *Dict
}

// Contains reports whether s is a member.
func (d *StringDict) Contains(s string) bool { return d.inner.Contains(KeyOf(s)) }

// Len returns the number of members.
func (d *StringDict) Len() int { return d.inner.Len() }

// Dict exposes the underlying fingerprint dictionary.
func (d *StringDict) Dict() *Dict { return d.inner }
