package lcds

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestDynamicDictBasic(t *testing.T) {
	keys := testKeys(500, 20)
	d, err := NewDynamic(keys[:400], 0, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 400 {
		t.Errorf("Len = %d", d.Len())
	}
	for _, k := range keys[:400] {
		ok, err := d.Contains(k)
		if err != nil || !ok {
			t.Fatalf("missing initial key %d (err %v)", k, err)
		}
	}
	for _, k := range keys[400:] {
		if changed, err := d.Insert(k); err != nil || !changed {
			t.Fatalf("Insert(%d): changed=%v err=%v", k, changed, err)
		}
	}
	for _, k := range keys[:200] {
		if changed, err := d.Delete(k); err != nil || !changed {
			t.Fatalf("Delete(%d): changed=%v err=%v", k, changed, err)
		}
	}
	if d.Len() != 300 { // 400 initial + 100 inserted − 200 deleted
		t.Errorf("Len = %d after churn, want 300", d.Len())
	}
	for _, k := range keys[:200] {
		if ok, _ := d.Contains(k); ok {
			t.Fatalf("deleted key %d still present", k)
		}
	}
	if d.Rebuilds() < 1 {
		t.Errorf("Rebuilds = %d", d.Rebuilds())
	}
}

func TestDynamicDictOptionValidation(t *testing.T) {
	if _, err := NewDynamic(nil, 0, WithSpace(1)); err == nil {
		t.Error("bad option accepted")
	}
	if _, err := NewDynamic(nil, 3); err == nil {
		t.Error("bufferFrac > 1 accepted")
	}
}

func TestDynamicDictConcurrent(t *testing.T) {
	keys := testKeys(2000, 22)
	d, err := NewDynamic(keys[:1000], 0.25, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	// Readers on the stable half, writers churning the volatile half.
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g))
			for i := 0; i < 2000; i++ {
				k := keys[r.Intn(500)] // never touched by writers
				ok, err := d.Contains(k)
				if err != nil {
					errc <- err
					return
				}
				if !ok {
					errc <- err
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(100 + g))
			for i := 0; i < 500; i++ {
				k := keys[1000+r.Intn(1000)]
				var err error
				if r.Intn(2) == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent dynamic op failed: %v", err)
	}
}
