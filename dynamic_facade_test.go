package lcds

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestDynamicDictBasic(t *testing.T) {
	keys := testKeys(500, 20)
	d, err := NewDynamic(keys[:400], 0, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 400 {
		t.Errorf("Len = %d", d.Len())
	}
	for _, k := range keys[:400] {
		ok, err := d.Contains(k)
		if err != nil || !ok {
			t.Fatalf("missing initial key %d (err %v)", k, err)
		}
	}
	for _, k := range keys[400:] {
		if changed, err := d.Insert(k); err != nil || !changed {
			t.Fatalf("Insert(%d): changed=%v err=%v", k, changed, err)
		}
	}
	for _, k := range keys[:200] {
		if changed, err := d.Delete(k); err != nil || !changed {
			t.Fatalf("Delete(%d): changed=%v err=%v", k, changed, err)
		}
	}
	if d.Len() != 300 { // 400 initial + 100 inserted − 200 deleted
		t.Errorf("Len = %d after churn, want 300", d.Len())
	}
	for _, k := range keys[:200] {
		if ok, _ := d.Contains(k); ok {
			t.Fatalf("deleted key %d still present", k)
		}
	}
	if d.Rebuilds() < 1 {
		t.Errorf("Rebuilds = %d", d.Rebuilds())
	}
}

// TestDynamicBatchUpdates checks InsertBatch/DeleteBatch on both the
// unsharded and sharded layouts: changed counts must match what sequential
// Insert/Delete would report (duplicates within a batch count once), and the
// resulting membership must agree with Contains.
func TestDynamicBatchUpdates(t *testing.T) {
	for _, shards := range []int{1, 4} {
		keys := testKeys(900, 24)
		opts := []Option{WithSeed(25)}
		if shards > 1 {
			opts = append(opts, WithShards(shards))
		}
		d, err := NewDynamic(keys[:300], 0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// 300 fresh keys, 100 already present, plus 50 in-batch duplicates.
		batch := append(append([]uint64{}, keys[300:600]...), keys[:100]...)
		batch = append(batch, keys[300:350]...)
		changed, err := d.InsertBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if changed != 300 {
			t.Errorf("shards=%d: InsertBatch changed %d, want 300", shards, changed)
		}
		if d.Len() != 600 {
			t.Errorf("shards=%d: Len = %d after batch insert, want 600", shards, d.Len())
		}
		// Delete 200 members, 100 non-members, 50 in-batch duplicates.
		del := append(append([]uint64{}, keys[100:300]...), keys[600:700]...)
		del = append(del, keys[100:150]...)
		changed, err = d.DeleteBatch(del)
		if err != nil {
			t.Fatal(err)
		}
		if changed != 200 {
			t.Errorf("shards=%d: DeleteBatch changed %d, want 200", shards, changed)
		}
		if d.Len() != 400 {
			t.Errorf("shards=%d: Len = %d after batch delete, want 400", shards, d.Len())
		}
		out := make([]bool, len(keys))
		if err := d.ContainsBatch(keys, out); err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			want := (i < 100) || (i >= 300 && i < 600)
			if out[i] != want {
				t.Fatalf("shards=%d: Contains(%d) = %v, want %v", shards, k, out[i], want)
			}
		}
	}
}

func TestDynamicDictOptionValidation(t *testing.T) {
	if _, err := NewDynamic(nil, 0, WithSpace(1)); err == nil {
		t.Error("bad option accepted")
	}
	if _, err := NewDynamic(nil, 3); err == nil {
		t.Error("bufferFrac > 1 accepted")
	}
}

func TestDynamicDictConcurrent(t *testing.T) {
	keys := testKeys(2000, 22)
	d, err := NewDynamic(keys[:1000], 0.25, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	// Readers on the stable half, writers churning the volatile half.
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g))
			for i := 0; i < 2000; i++ {
				k := keys[r.Intn(500)] // never touched by writers
				ok, err := d.Contains(k)
				if err != nil {
					errc <- err
					return
				}
				if !ok {
					errc <- err
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(100 + g))
			for i := 0; i < 500; i++ {
				k := keys[1000+r.Intn(1000)]
				var err error
				if r.Intn(2) == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent dynamic op failed: %v", err)
	}
}
