package lcds

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func negKeys(keys []uint64, n int, seed uint64) []uint64 {
	members := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		members[k] = true
	}
	r := rng.New(seed)
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := r.Uint64n(MaxKey)
		if !members[k] {
			out = append(out, k)
		}
	}
	return out
}

// TestWithShardsOneIsIdentity is an acceptance criterion: WithShards(1) is
// behaviorally identical to the plain facade on a fixed seed — same answers,
// same probe counts, same table.
func TestWithShardsOneIsIdentity(t *testing.T) {
	keys := testKeys(800, 120)
	plain, err := New(keys, WithSeed(121))
	if err != nil {
		t.Fatal(err)
	}
	one, err := New(keys, WithSeed(121), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if one.Shards() != 1 {
		t.Fatalf("Shards() = %d", one.Shards())
	}
	if plain.Len() != one.Len() || plain.SpaceCells() != one.SpaceCells() || plain.MaxProbes() != one.MaxProbes() {
		t.Fatalf("shape differs: len %d/%d cells %d/%d probes %d/%d",
			plain.Len(), one.Len(), plain.SpaceCells(), one.SpaceCells(), plain.MaxProbes(), one.MaxProbes())
	}
	if plain.Stats() != one.Stats() {
		t.Fatalf("stats differ:\n%+v\n%+v", plain.Stats(), one.Stats())
	}
	queries := append(append([]uint64(nil), keys...), negKeys(keys, 400, 122)...)
	for _, k := range queries {
		if plain.Contains(k) != one.Contains(k) {
			t.Fatalf("answers differ for %d", k)
		}
	}
	ca, err := plain.ContentionSummary(keys)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := one.ContentionSummary(keys)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("contention differs: %+v vs %+v", ca, cb)
	}
}

func TestShardedDict(t *testing.T) {
	keys := testKeys(1500, 130)
	d, err := New(keys, WithSeed(131), WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	if d.Shards() != 8 {
		t.Fatalf("Shards() = %d", d.Shards())
	}
	if d.Len() != len(keys) {
		t.Fatalf("Len() = %d", d.Len())
	}
	if d.SpaceCells() <= 0 || d.MaxProbes() <= 0 {
		t.Fatalf("SpaceCells=%d MaxProbes=%d", d.SpaceCells(), d.MaxProbes())
	}
	negs := negKeys(keys, 500, 132)
	for _, k := range keys {
		if !d.Contains(k) {
			t.Fatalf("member %d lost", k)
		}
	}
	for _, k := range negs {
		if d.Contains(k) {
			t.Fatalf("non-member %d found", k)
		}
	}
	queries := append(append([]uint64(nil), keys[:400]...), negs[:400]...)
	out := make([]bool, len(queries))
	if err := d.ContainsBatch(queries, out); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if out[i] != (i < 400) {
			t.Fatalf("batch answer %d for key %d, want %v", i, queries[i], i < 400)
		}
	}

	st := d.Stats()
	if st.Shards != 8 || st.N != len(keys) || st.Cells != d.SpaceCells() {
		t.Fatalf("stats %+v", st)
	}
	if st.Buckets == 0 || st.Groups == 0 || st.HashTries < 8 || st.MaxBucketLoad == 0 || st.SlackC == 0 {
		t.Fatalf("sharded stats not aggregated: %+v", st)
	}

	c, err := d.ContentionSummary(keys)
	if err != nil {
		t.Fatal(err)
	}
	// Composite ratioStep stays O(1): routing contributes exactly 2 and the
	// shards' per-step mass is diluted by the composite cell count.
	if c.RatioStep <= 0 || c.RatioStep > 500 {
		t.Fatalf("sharded ratioStep = %v", c.RatioStep)
	}
	if c.Probes <= 1 {
		t.Fatalf("probes/query = %v, want > 1 (routing probe + inner query)", c.Probes)
	}
}

func TestShardedOptionErrors(t *testing.T) {
	if _, err := New(testKeys(16, 1), WithShards(0)); err == nil {
		t.Fatal("WithShards(0) accepted")
	}
	if _, err := New(testKeys(16, 1), WithShards(-3)); err == nil {
		t.Fatal("WithShards(-3) accepted")
	}
	if _, err := NewDynamic(testKeys(16, 1), 0, WithShards(0)); err == nil {
		t.Fatal("NewDynamic WithShards(0) accepted")
	}
}

func TestShardedWriteToUnsupported(t *testing.T) {
	d, err := New(testKeys(64, 140), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err == nil {
		t.Fatal("WriteTo on a sharded dictionary did not error")
	}
}

func TestShardedExplain(t *testing.T) {
	keys := testKeys(256, 150)
	d, err := New(keys, WithSeed(151), WithShards(4), WithQuerySource(rng.New(152)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ok, err := d.Explain(keys[0], &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("Explain answered false for member %d", keys[0])
	}
	if !strings.Contains(buf.String(), "route:") {
		t.Fatalf("Explain output lacks the routing line:\n%s", buf.String())
	}
}

func TestShardedDynamicFacade(t *testing.T) {
	keys := testKeys(1200, 160)
	d, err := NewDynamic(keys, 0, WithSeed(161), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Shards() != 4 {
		t.Fatalf("Shards() = %d", d.Shards())
	}
	if d.Len() != len(keys) {
		t.Fatalf("Len() = %d", d.Len())
	}
	if d.Rebuilds() < 4 {
		t.Fatalf("Rebuilds() = %d, want ≥ 1 per shard", d.Rebuilds())
	}
	extra := negKeys(keys, 300, 162)
	for _, k := range extra {
		if changed, err := d.Insert(k); err != nil || !changed {
			t.Fatalf("Insert(%d): %v %v", k, changed, err)
		}
	}
	for _, k := range keys[:200] {
		if changed, err := d.Delete(k); err != nil || !changed {
			t.Fatalf("Delete(%d): %v %v", k, changed, err)
		}
	}
	d.Quiesce()
	if got, want := d.Len(), len(keys)+len(extra)-200; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	queries := append(append([]uint64(nil), keys...), extra...)
	out := make([]bool, len(queries))
	if err := d.ContainsBatch(queries, out); err != nil {
		t.Fatal(err)
	}
	for i, k := range queries {
		want := i >= 200
		if out[i] != want {
			t.Fatalf("batch answer for %d = %v, want %v", k, out[i], want)
		}
		ok, err := d.Contains(k)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, ok, want)
		}
	}
}
