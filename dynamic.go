package lcds

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// DynamicDict is a mutable low-contention dictionary — the paper's §4
// future-work direction, built as global rebuilding over the static
// structure with a small replicated update buffer. Reads keep the static
// contention guarantee up to a constant; updates concentrate on the buffer,
// which is the inherent cost the paper conjectures (see internal/dynamic
// and experiment X1).
//
// All methods are safe for concurrent use. Contains and Len are lock-free:
// they load the current epoch — an immutable (static snapshot, update
// buffer) pair published through an atomic pointer — and probe it without
// writing any shared cache line. Insert and Delete are lock-free on the
// fast path too: writers claim buffer slots directly with CAS (a monotone
// empty → inserted/deleted → vacated state machine per packed slot word),
// so update throughput scales with writer goroutines; the internal mutex is
// taken only to coordinate epoch transitions. The ε·n global rebuild runs
// in a background goroutine while the old epoch stays readable, so readers
// never stall behind it; writers racing a rebuild either land in a
// mutex-serialized delta log that is replayed before the epoch swap, or
// retry against the freshly published epoch.
//
// With WithWriteAbsorption the dictionary additionally runs the two-phase
// write protocol: keys the classifier detects as hot are absorbed wait-free
// by a per-epoch overlay (split phase) instead of fighting over buffer
// slots, and reconcile into the next snapshot at the phase boundary. See
// Stats for the absorbed-write and phase figures.
type DynamicDict struct {
	inner   *dynamic.Dict      // unsharded (nil when sharded)
	sharded *shard.DynamicDict // P-way composite (nil when unsharded)
	src     rng.Source
	// tel is the live telemetry layer, nil unless WithTelemetry was used.
	// Dynamic telemetry is cell-agnostic (tables are replaced on rebuild):
	// probe/step counters, latency histograms and per-shard rebuild metrics,
	// but no per-cell Φ̂ vector.
	tel *telemetry.Telemetry
	// events is the flight recorder the rebuild/phase lifecycle emits into:
	// WithEventLog's log, or the telemetry layer's always-on log when only
	// WithTelemetry was used. Never consulted on the query path.
	events  *events.Log
	scratch sync.Pool // *core.QueryScratch for traced queries
}

// NewDynamic builds a dynamic dictionary over the initial keys. bufferFrac
// is the paper-style ε ∈ (0, 1]: a global rebuild triggers after ε·n
// buffered updates (pass 0 for the default 0.25).
//
// With WithShards(p ≥ 2), each of the p shards keeps its own update buffer,
// epoch snapshot and background rebuild: an update storm concentrated on
// one shard rebuilds ε·(n/p) keys on that shard alone while the other
// shards' snapshots stay untouched.
func NewDynamic(initial []uint64, bufferFrac float64, opts ...Option) (*DynamicDict, error) {
	cfg := opterr{o: options{seed: 1}}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	params := dynamic.Params{
		Epsilon: bufferFrac,
		Static:  cfg.o.params,
	}
	elog := cfg.o.newEventLog()
	var tel *telemetry.Telemetry
	if cfg.o.telem != nil {
		// Cell-agnostic mode: the dynamic tables are replaced on every
		// rebuild, so there is no stable per-cell index space to count in.
		tc := *cfg.o.telem
		tc.Events = elog
		tel = telemetry.New(tc, 0, len(initial))
		params.Sink = tel
		elog = tel.Events() // always-on log when none was configured
	}
	d := &DynamicDict{src: cfg.o.querySource(), tel: tel, events: elog}
	d.scratch.New = func() any { return new(core.QueryScratch) }
	if cfg.o.shards > 1 {
		// Each shard gets its own metrics slot and — with WithWriteAbsorption
		// — its own hot-key classifier, because shards seal and reconcile
		// phases independently. All shards share one flight recorder; the
		// shard hook labels their events with the shard index.
		configure := func(i int, sp *dynamic.Params) {
			if tel != nil {
				sp.Metrics = tel.DynamicShard(i)
			}
			sp.Events = elog
			if cfg.o.absorb {
				hc := telemetry.NewHotKeyClassifier(telemetry.HotKeyConfig{})
				hc.SetEventLog(elog, i)
				sp.Hot = hc
			}
		}
		sharded, err := shard.NewDynamicWithHooks(initial, cfg.o.shards, params, cfg.o.seed, configure)
		if err != nil {
			return nil, err
		}
		d.sharded = sharded
		return d, nil
	}
	if tel != nil {
		params.Metrics = tel.DynamicShard(0)
	}
	params.Events = elog
	if cfg.o.absorb {
		hc := telemetry.NewHotKeyClassifier(telemetry.HotKeyConfig{})
		hc.SetEventLog(elog, 0)
		params.Hot = hc
	}
	inner, err := dynamic.New(initial, params, cfg.o.seed)
	if err != nil {
		return nil, err
	}
	d.inner = inner
	return d, nil
}

// Contains reports membership of x. It acquires no lock and runs
// concurrently with updates and rebuilds.
func (d *DynamicDict) Contains(x uint64) (bool, error) {
	if d.tel != nil {
		return d.containsTelemetry(x)
	}
	if d.sharded != nil {
		return d.sharded.Contains(x, d.src)
	}
	return d.inner.Contains(x, d.src)
}

// ContainsBatch answers membership for every keys[i] into out[i]. The
// whole batch is answered against one epoch snapshot loaded once up front,
// amortizing the epoch-pointer load and the query working memory across the
// batch; updates published mid-batch are not observed. out must be at least
// as long as keys. On a sharded dictionary the batch is grouped by shard,
// each group answered against a single snapshot of its own shard, the
// groups on concurrent goroutines (a source supplied via WithQuerySource
// must then be safe for concurrent use).
func (d *DynamicDict) ContainsBatch(keys []uint64, out []bool) error {
	if d.tel != nil {
		start := time.Now()
		err := d.containsBatch(keys, out)
		observeBatch(d.tel, out, len(keys), err, start)
		return err
	}
	return d.containsBatch(keys, out)
}

// containsBatch is the uninstrumented batch path.
func (d *DynamicDict) containsBatch(keys []uint64, out []bool) error {
	if d.sharded != nil {
		return d.sharded.ContainsBatchParallel(keys, out, d.src)
	}
	return d.inner.ContainsBatch(keys, out, d.src)
}

// Insert adds x; it reports whether the set changed. Any number of
// goroutines may call Insert, Delete and Contains concurrently: writers
// claim update-buffer slots with CAS and take no lock on the fast path.
func (d *DynamicDict) Insert(x uint64) (bool, error) {
	if d.sharded != nil {
		return d.sharded.Insert(x)
	}
	return d.inner.Insert(x)
}

// Delete removes x; it reports whether the set changed. Safe for any number
// of concurrent callers, like Insert.
func (d *DynamicDict) Delete(x uint64) (bool, error) {
	if d.sharded != nil {
		return d.sharded.Delete(x)
	}
	return d.inner.Delete(x)
}

// InsertBatch inserts every key and reports how many actually changed the
// set. On a sharded dictionary the batch is grouped by shard and the groups
// are applied on concurrent goroutines — the shard-parallel update fan-out
// mirroring ContainsBatch's read fan-out; unsharded, the keys are applied in
// order through the lock-free claim path.
func (d *DynamicDict) InsertBatch(keys []uint64) (int, error) {
	if d.sharded != nil {
		return d.sharded.InsertBatch(keys)
	}
	return d.applyBatch(keys, false)
}

// DeleteBatch deletes every key and reports how many actually changed the
// set, with the same shard-parallel fan-out as InsertBatch.
func (d *DynamicDict) DeleteBatch(keys []uint64) (int, error) {
	if d.sharded != nil {
		return d.sharded.DeleteBatch(keys)
	}
	return d.applyBatch(keys, true)
}

func (d *DynamicDict) applyBatch(keys []uint64, del bool) (int, error) {
	changed := 0
	for _, k := range keys {
		var ok bool
		var err error
		if del {
			ok, err = d.inner.Delete(k)
		} else {
			ok, err = d.inner.Insert(k)
		}
		if err != nil {
			return changed, err
		}
		if ok {
			changed++
		}
	}
	return changed, nil
}

// Len returns the current number of keys without taking a lock.
func (d *DynamicDict) Len() int {
	if d.sharded != nil {
		return d.sharded.Len()
	}
	return d.inner.Len()
}

// Shards returns the shard count: 1 unless WithShards(p ≥ 2) was used.
func (d *DynamicDict) Shards() int {
	if d.sharded != nil {
		return d.sharded.Shards()
	}
	return 1
}

// Rebuilds returns how many rebuilds have occurred (≥ 1 per shard; each
// shard's initial construction counts as its first). A rebuild in flight is
// counted once it publishes; call Quiesce first for a settled figure.
func (d *DynamicDict) Rebuilds() int {
	if d.sharded != nil {
		return d.sharded.Rebuilds()
	}
	return d.inner.Stats().Epoch
}

// Quiesce blocks until any background rebuild in flight has published its
// epoch. Useful before measuring or when deterministic rebuild counts
// matter; normal operation never requires it.
func (d *DynamicDict) Quiesce() {
	if d.sharded != nil {
		d.sharded.Quiesce()
		return
	}
	d.inner.Quiesce()
}

// DynamicStats is a point-in-time read of the dictionary's update-path
// behaviour, summed over shards. All sources are atomic or striped
// counters, so Stats is safe to call mid-storm; counts may trail in-flight
// operations by a few (Quiesce for settled figures).
type DynamicStats struct {
	Len             int    // current number of keys
	Epochs          int    // rebuilds published (≥ 1 per shard)
	Buffered        int    // live update-buffer entries across shards
	Updates         int    // Insert/Delete calls that changed membership
	WriteProbes     uint64 // probes + slot writes issued by the claim path
	WriteCASRetries uint64 // claim CASes lost to racing writers
	AbsorbedWrites  uint64 // writes soaked by split-phase overlays
	PhaseSeals      int    // phase boundaries sealed (absorption enabled)
	HotKeys         int    // absorbed-hot keys across current epochs
	SplitPhase      bool   // whether any shard currently runs a split phase
}

// Stats reads the dictionary's dynamic statistics (summed over shards).
func (d *DynamicDict) Stats() DynamicStats {
	var st dynamicStats
	if d.sharded != nil {
		st = d.sharded.Stats()
	} else {
		st = d.inner.Stats()
	}
	return DynamicStats{
		Len:             st.Len,
		Epochs:          st.Epoch,
		Buffered:        st.Buffered,
		Updates:         st.Updates,
		WriteProbes:     st.WriteProbes,
		WriteCASRetries: st.WriteCASRetries,
		AbsorbedWrites:  st.AbsorbedWrites,
		PhaseSeals:      st.PhaseSeals,
		HotKeys:         st.HotKeys,
		SplitPhase:      st.SplitPhase,
	}
}

// dynamicStats aliases the internal stats struct both branches return.
type dynamicStats = dynamic.Stats
