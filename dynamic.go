package lcds

import (
	"sync"

	"repro/internal/dynamic"
	"repro/internal/rng"
)

// newQueryRNG derives a query generator from a counter-based state.
func newQueryRNG(state uint64) *rng.RNG {
	return rng.New(rng.SplitMix64(&state))
}

// DynamicDict is a mutable low-contention dictionary — the paper's §4
// future-work direction, built as global rebuilding over the static
// structure with a small replicated update buffer. Reads keep the static
// contention guarantee up to a constant; updates concentrate on the buffer,
// which is the inherent cost the paper conjectures (see internal/dynamic
// and experiment X1).
//
// All methods are safe for concurrent use; updates serialize internally.
type DynamicDict struct {
	mu    sync.RWMutex
	inner *dynamic.Dict
	seed  uint64
	rng   rngState
}

// rngState is a lock-free splitmix64 counter for query randomness.
type rngState struct {
	mu  sync.Mutex
	ctr uint64
}

// NewDynamic builds a dynamic dictionary over the initial keys. bufferFrac
// is the paper-style ε ∈ (0, 1]: a global rebuild triggers after ε·n
// buffered updates (pass 0 for the default 0.25).
func NewDynamic(initial []uint64, bufferFrac float64, opts ...Option) (*DynamicDict, error) {
	cfg := opterr{o: options{seed: 1}}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	inner, err := dynamic.New(initial, dynamic.Params{
		Epsilon: bufferFrac,
		Static:  cfg.o.params,
	}, cfg.o.seed)
	if err != nil {
		return nil, err
	}
	return &DynamicDict{inner: inner, seed: cfg.o.seed}, nil
}

// Contains reports membership of x.
func (d *DynamicDict) Contains(x uint64) (bool, error) {
	d.rng.mu.Lock()
	d.rng.ctr++
	c := d.rng.ctr
	d.rng.mu.Unlock()
	s := d.seed + c
	r := newQueryRNG(s)
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.inner.Contains(x, r)
}

// Insert adds x; it reports whether the set changed.
func (d *DynamicDict) Insert(x uint64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Insert(x)
}

// Delete removes x; it reports whether the set changed.
func (d *DynamicDict) Delete(x uint64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Delete(x)
}

// Len returns the current number of keys.
func (d *DynamicDict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.inner.Len()
}

// Rebuilds returns how many global rebuilds have occurred (≥ 1; the initial
// construction counts as the first).
func (d *DynamicDict) Rebuilds() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.inner.Stats().Epoch
}
