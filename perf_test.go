package lcds

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// TestContainsZeroAlloc guards the zero-allocation query fast path: a
// regression that reintroduces per-query heap allocation fails here rather
// than silently in a benchmark. The non-pooled assertion below (explicit
// scratch, sequential RNG) is strictly allocation-free under every build
// mode, race detector included; the pooled facade paths are checked by
// assertPooledPathsZeroAlloc, whose allocation counting is build-tag
// guarded (sync.Pool drops Puts at random under the race detector by
// design, so the race build exercises those paths for correctness only).
func TestContainsZeroAlloc(t *testing.T) {
	keys := testKeys(4096, 9)
	d, err := New(keys, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}

	// Non-pooled path: explicit scratch, sequential RNG — no pools involved,
	// so this assertion holds under -race too.
	r := rng.New(1)
	sc := new(core.QueryScratch)
	if _, err := d.inner.ContainsScratch(keys[0], r, sc); err != nil {
		t.Fatal(err)
	}
	i := 0
	if allocs := testing.AllocsPerRun(400, func() {
		i++
		if _, err := d.inner.ContainsScratch(keys[i%len(keys)], r, sc); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Fatalf("core ContainsScratch: %v allocs/op, want 0", allocs)
	}

	// Non-pooled wavefront batch path: explicit scratch whose arena is
	// grown once, then reused — the scheduler itself must not allocate at
	// any width, including the widest.
	d16, err := New(keys, WithSeed(9), WithBatchGroup(16))
	if err != nil {
		t.Fatal(err)
	}
	batch := keys[:256]
	out := make([]bool, len(batch))
	bsc := new(core.QueryScratch)
	if err := d16.inner.ContainsBatch(batch, out, r, bsc); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := d16.inner.ContainsBatch(batch, out, r, bsc); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Fatalf("core ContainsBatch wavefront: %v allocs per batch, want 0", allocs)
	}

	assertPooledPathsZeroAlloc(t, d, keys)
}

func TestContainsBatchFacade(t *testing.T) {
	keys := testKeys(2000, 10)
	d, err := New(keys[:1000], WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, len(keys))
	if err := d.ContainsBatch(keys, out); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if want := i < 1000; out[i] != want {
			t.Fatalf("batch[%d] (key %d) = %v, want %v", i, k, out[i], want)
		}
	}
	if err := d.ContainsBatch(keys, out[:10]); err == nil {
		t.Error("short output slice accepted")
	}
}

func TestDynamicContainsBatchFacade(t *testing.T) {
	keys := testKeys(1500, 11)
	d, err := NewDynamic(keys[:1000], 0.5, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[1000:1200] {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	d.Quiesce()
	out := make([]bool, len(keys))
	if err := d.ContainsBatch(keys, out); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want := i < 1200
		got, err := d.Contains(k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want || out[i] != want {
			t.Fatalf("key %d: batch=%v single=%v want %v", k, out[i], got, want)
		}
	}
}

// TestParallelBuildFacade: WithParallelBuild must be deterministic per
// (seed, workers) and build a correct dictionary.
func TestParallelBuildFacade(t *testing.T) {
	keys := testKeys(3000, 12)
	a, err := New(keys, WithSeed(12), WithParallelBuild(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(keys, WithSeed(12), WithParallelBuild(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("parallel facade build not reproducible: %+v != %+v", a.Stats(), b.Stats())
	}
	for _, k := range keys {
		if !a.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	if _, err := New(keys, WithParallelBuild(0)); err == nil {
		t.Error("WithParallelBuild(0) accepted")
	}
}
