//go:build !race

package lcds

const raceEnabled = false
