package lcds

import (
	"fmt"
	"testing"
)

func TestKeyOfDistinctAndStable(t *testing.T) {
	a1, a2 := KeyOf("alpha"), KeyOf("alpha")
	if a1 != a2 {
		t.Fatal("KeyOf not deterministic")
	}
	if a1 >= MaxKey {
		t.Fatalf("KeyOf out of universe: %d", a1)
	}
	pairs := [][2]string{
		{"", "a"},
		{"a", "b"},
		{"ab", "ba"},
		{"a", "a\x00"},
		{"alpha", "alphA"},
	}
	for _, p := range pairs {
		if KeyOf(p[0]) == KeyOf(p[1]) {
			t.Errorf("KeyOf(%q) == KeyOf(%q)", p[0], p[1])
		}
	}
}

func TestNewFromStrings(t *testing.T) {
	members := make([]string, 500)
	for i := range members {
		members[i] = fmt.Sprintf("user-%d@example.com", i)
	}
	d, err := NewFromStrings(members, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 500 {
		t.Errorf("Len = %d", d.Len())
	}
	for _, m := range members {
		if !d.Contains(m) {
			t.Fatalf("missing member %q", m)
		}
	}
	for i := 0; i < 500; i++ {
		s := fmt.Sprintf("stranger-%d@example.com", i)
		if d.Contains(s) {
			t.Fatalf("phantom member %q", s)
		}
	}
	if d.Dict() == nil {
		t.Error("Dict() returned nil")
	}
}

func TestNewFromStringsRejectsDuplicates(t *testing.T) {
	if _, err := NewFromStrings([]string{"x", "y", "x"}); err == nil {
		t.Error("duplicate member accepted")
	}
}
