// Package lcds is a low-contention static dictionary — a Go implementation
// of the membership data structure of Aspnes, Eisenstat and Yin,
// "Low-Contention Data Structures" (SPAA 2010).
//
// A dictionary built from n keys answers membership queries in O(1) cell
// probes using O(n) space, and — when queries are uniform over members (and
// uniform over non-members) — no memory cell is probed with probability more
// than O(1/n) at any step. Many concurrent readers therefore spread their
// accesses almost perfectly evenly across the structure's memory instead of
// converging on hash-parameter or index cells the way FKS, cuckoo hashing,
// or binary search do.
//
// The package is the public facade over internal/core (the Theorem 3
// construction), internal/baseline (the paper's §1.3 comparison
// structures), internal/contention (exact and Monte-Carlo contention
// analysis), internal/memsim (a hot-spot queueing simulator), and
// internal/lowerbound (the §3 Ω(log log n) machinery). The experiment
// harness reproducing every table and figure lives in internal/experiments
// and is driven by cmd/lcds-bench.
//
// Keys are uint64 values below MaxKey (= 2^61 − 1).
package lcds

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// MaxKey is the exclusive upper bound of the key universe.
const MaxKey = hash.MaxKey

// Dict is an immutable low-contention static dictionary. It is safe for
// concurrent use by multiple goroutines: queries draw their replica choices
// from a sharded random source (see QuerySource), so concurrent readers
// write no shared cache line — the machine-level analogue of the paper's
// O(1/s) per-cell guarantee.
type Dict struct {
	inner   *core.Dict  // unsharded dictionary (nil when sharded)
	sharded *shard.Dict // P-way composite (nil when unsharded)
	seed    uint64
	src     rng.Source
	// tel is the live telemetry layer, nil unless WithTelemetry was used —
	// the query path's only telemetry cost when off is this one nil check.
	tel *telemetry.Telemetry
	// events is the flight recorder: WithEventLog's log, or the telemetry
	// layer's always-on log when only WithTelemetry was used. It is never
	// consulted on the query path — static dictionaries emit no structural
	// events of their own (the adaptive sampler does), so an event log
	// costs queries nothing.
	events *events.Log
	// scratch pools per-query working memory (coefficient buffers,
	// histogram words) so the steady-state read path allocates nothing.
	scratch sync.Pool
}

// newDict wraps a built core dictionary with its query source and pool.
func newDict(inner *core.Dict, seed uint64, src rng.Source) *Dict {
	d := &Dict{inner: inner, seed: seed, src: src}
	d.scratch.New = func() any { return new(core.QueryScratch) }
	return d
}

// newShardDict wraps a built sharded composite with its query source and
// pool (the pool serves the telemetry layer's traced queries).
func newShardDict(sharded *shard.Dict, seed uint64, src rng.Source) *Dict {
	d := &Dict{sharded: sharded, seed: seed, src: src}
	d.scratch.New = func() any { return new(core.QueryScratch) }
	return d
}

// structure returns the scheme the dictionary queries — the core structure
// or the sharded composite.
func (d *Dict) structure() scheme.Scheme {
	if d.sharded != nil {
		return d.sharded
	}
	return d.inner
}

// QuerySource is the stream of uniform draws a query consumes for its
// replica choices. The default is a sharded splitmix64 source
// (rng.NewSharded) whose streams are padded to separate cache lines;
// supply your own via WithQuerySource — e.g. an *rng.RNG for bit-exact
// reproducible query traces.
type QuerySource = rng.Source

// options collects construction options.
type options struct {
	seed     uint64
	src      rng.Source
	params   core.Params
	shards   int
	telem    *telemetry.Config // nil: telemetry off
	absorb   bool              // two-phase write absorption (dynamic only)
	eventlog *EventLogConfig   // nil: no explicit flight recorder
}

// Option configures New.
type Option func(*opterr)

type opterr struct {
	o   options
	err error
}

// WithSeed fixes the randomness of construction (and seeds the default
// query source), making the structure reproducible. The default seed is 1.
// Concurrent queries interleave the sharded source's streams in scheduling
// order; combine with WithQuerySource for bit-exact query traces.
func WithSeed(seed uint64) Option {
	return func(c *opterr) { c.o.seed = seed }
}

// WithQuerySource replaces the default sharded query source. The source
// supplies every replica choice queries make; it must be safe for as many
// concurrent callers as the dictionary has (an *rng.RNG is single-goroutine
// only, an rng.Sharded is safe for any number).
func WithQuerySource(src QuerySource) Option {
	return func(c *opterr) {
		if src == nil {
			c.err = fmt.Errorf("lcds: nil query source")
			return
		}
		c.o.src = src
	}
}

// WithSpace sets the space factor β ≥ 2 (buckets per key; the paper's
// s = βn). Larger β lowers contention constants at the cost of memory.
func WithSpace(beta float64) Option {
	return func(c *opterr) {
		if beta < 2 {
			c.err = fmt.Errorf("lcds: space factor %v must be ≥ 2", beta)
			return
		}
		c.o.params.Beta = beta
	}
}

// WithIndependence sets the hash-family independence degree d > 2.
func WithIndependence(d int) Option {
	return func(c *opterr) {
		if d <= 2 {
			c.err = fmt.Errorf("lcds: independence degree %d must be > 2", d)
			return
		}
		c.o.params.D = d
	}
}

// WithSlack sets the load-slack constant c > e of property P(S).
func WithSlack(slack float64) Option {
	return func(c *opterr) { c.o.params.C = slack }
}

// WithParallelBuild races workers ≥ 1 independent (f, g, z) draws per round
// of the construction's resampling loop, dividing the wall-clock of the
// expected-O(1) geometric retry by the worker count. Builds remain fully
// deterministic for a given (seed, workers) pair — the accepted draw is the
// success of lowest (round, worker) rank, not the first to finish on the
// clock — but different worker counts may select different (equally valid)
// hash functions. The default (1) reproduces historical builds byte for
// byte.
func WithParallelBuild(workers int) Option {
	return func(c *opterr) {
		if workers < 1 {
			c.err = fmt.Errorf("lcds: parallel build workers %d must be ≥ 1", workers)
			return
		}
		c.o.params.BuildWorkers = workers
	}
}

// WithCompact backs the replicated table rows with one stored value per
// replica block instead of materializing every copy, cutting the heap
// footprint ≈ 7× with no observable behaviour change. Recommended for
// dictionaries beyond ~10^5 keys.
func WithCompact() Option {
	return func(c *opterr) { c.o.params.Compact = true }
}

// WithShards hash-partitions the dictionary over p independent
// sub-dictionaries behind a replicated routing row (internal/shard). Reads
// stay low-contention — the composite's exact contention is the analytic
// composition of its shards' (experiment A7) — while batch queries fan out
// over the shards and, for dynamic dictionaries, each shard rebuilds
// independently. p = 1 is the unsharded structure itself: it builds the
// identical dictionary New without the option builds, answer for answer and
// probe for probe.
//
// ContainsBatch on a sharded dictionary answers per-shard groups on
// concurrent goroutines, so a source supplied via WithQuerySource must then
// be safe for concurrent use (the default source is; an *rng.RNG is not).
func WithShards(p int) Option {
	return func(c *opterr) {
		if p < 1 {
			c.err = fmt.Errorf("lcds: shard count %d must be ≥ 1", p)
			return
		}
		c.o.shards = p
	}
}

// WithBatchGroup sets the wavefront width G ∈ [1, 64] of the batch query
// path: ContainsBatch keeps up to G queries in flight, each evaluating the
// probe stage it software-prefetched on the previous round, so the dependent
// cache misses of G independent probe chains overlap instead of serializing.
// The default (8) suits current cores; 1 degenerates to query-at-a-time.
// Answers and per-query probe cells are identical for every G — the paper's
// probe distributions, and therefore every contention bound, are unchanged —
// only throughput and the probe interleaving across a batch differ.
func WithBatchGroup(g int) Option {
	return func(c *opterr) {
		if g < 1 || g > 64 {
			c.err = fmt.Errorf("lcds: batch group %d outside [1, 64]", g)
			return
		}
		c.o.params.BatchGroup = g
	}
}

// WithWriteAbsorption enables two-phase write absorption on a dynamic
// dictionary (NewDynamic; static New ignores it): a per-shard hysteresis
// classifier watches the lock-free claim path, and keys hot enough to
// degrade it into a CAS-retry convoy are promoted at the next epoch
// boundary into a split phase, where their writes are soaked wait-free by
// a reader-visible overlay plus per-core delta logs and reconciled into
// the following snapshot (last write wins) by the rebuild that ends the
// phase. Linearizability is unchanged — readers observe absorbed writes
// immediately — and cool keys keep the plain claim path. Off by default;
// without it the update sequence is bit-identical to previous releases.
func WithWriteAbsorption() Option {
	return func(c *opterr) { c.o.absorb = true }
}

// New builds a dictionary over the given distinct keys (each < MaxKey).
// Construction takes expected O(n) time; the keys slice is not retained.
func New(keys []uint64, opts ...Option) (*Dict, error) {
	cfg := opterr{o: options{seed: 1}}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if cfg.o.shards > 1 {
		params := cfg.o.params
		sharded, err := shard.New(keys, cfg.o.shards, func(part []uint64, seed uint64) (scheme.Scheme, error) {
			inner, err := core.Build(part, params, seed)
			if err != nil {
				return nil, err
			}
			return inner, nil
		}, cfg.o.seed)
		if err != nil {
			return nil, err
		}
		d := newShardDict(sharded, cfg.o.seed, cfg.o.querySource())
		d.finishOptions(cfg.o)
		return d, nil
	}
	inner, err := core.Build(keys, cfg.o.params, cfg.o.seed)
	if err != nil {
		return nil, err
	}
	d := newDict(inner, cfg.o.seed, cfg.o.querySource())
	d.finishOptions(cfg.o)
	return d, nil
}

// finishOptions attaches the optional observability layers — telemetry and
// the flight recorder — to a freshly constructed dictionary, before it is
// shared (so no installation races a query).
func (d *Dict) finishOptions(o options) {
	elog := o.newEventLog()
	if o.telem != nil {
		tc := *o.telem
		tc.Events = elog
		d.installTelemetry(tc)
		elog = d.tel.Events()
	}
	d.events = elog
}

// newEventLog creates the explicitly configured flight recorder, or nil.
func (o options) newEventLog() *events.Log {
	if o.eventlog == nil {
		return nil
	}
	return events.NewLog(o.eventlog.RingCapacity, o.eventlog.TimelineCapacity)
}

// querySource resolves the configured query source, defaulting to a
// sharded splitmix64 source derived from the seed.
func (o options) querySource() rng.Source {
	if o.src != nil {
		return o.src
	}
	return rng.NewSharded(o.seed^0x9e3779b97f4a7c15, 0)
}

// Contains reports whether x is in the dictionary. It panics only if the
// underlying table is corrupt; use Lookup to receive that as an error.
func (d *Dict) Contains(x uint64) bool {
	ok, err := d.Lookup(x)
	if err != nil {
		panic(err)
	}
	return ok
}

// Lookup reports membership and surfaces table corruption as an error — and
// only table corruption (failure injection, bit flips): on a well-formed
// table the error is always nil and the answer exact. It acquires no lock,
// writes no memory outside the query source's cache-line-private shard, and
// performs no steady-state heap allocation (query working memory comes from
// an internal pool).
func (d *Dict) Lookup(x uint64) (bool, error) {
	if d.tel != nil {
		return d.lookupTelemetry(x)
	}
	if d.sharded != nil {
		return d.sharded.Contains(x, d.src)
	}
	sc := d.scratch.Get().(*core.QueryScratch)
	ok, err := d.inner.ContainsScratch(x, d.src, sc)
	d.scratch.Put(sc)
	return ok, err
}

// ContainsBatch answers membership for every keys[i] into out[i], reusing
// one pooled scratch across the whole batch — the cheapest way to issue
// many queries from one goroutine. out must be at least as long as keys.
// It stops at the first corrupt-table error; on a well-formed table it
// never errors. On a sharded dictionary the batch is grouped by shard and
// the groups are answered concurrently (see WithShards).
func (d *Dict) ContainsBatch(keys []uint64, out []bool) error {
	if d.tel != nil {
		start := time.Now()
		err := d.containsBatch(keys, out)
		observeBatch(d.tel, out, len(keys), err, start)
		return err
	}
	return d.containsBatch(keys, out)
}

// containsBatch is the uninstrumented batch path.
func (d *Dict) containsBatch(keys []uint64, out []bool) error {
	if d.sharded != nil {
		return d.sharded.ContainsBatchParallel(keys, out, d.src)
	}
	sc := d.scratch.Get().(*core.QueryScratch)
	defer d.scratch.Put(sc)
	return d.inner.ContainsBatch(keys, out, d.src, sc)
}

// Len returns the number of stored keys.
func (d *Dict) Len() int { return d.structure().N() }

// SpaceCells returns the total number of 128-bit cells the table occupies.
func (d *Dict) SpaceCells() int { return d.structure().Table().Size() }

// MaxProbes returns the worst-case number of cell probes per query.
func (d *Dict) MaxProbes() int { return d.structure().MaxProbes() }

// Shards returns the shard count: 1 unless WithShards(p ≥ 2) was used.
func (d *Dict) Shards() int {
	if d.sharded != nil {
		return d.sharded.Shards()
	}
	return 1
}

// Stats describes what construction did. For a sharded dictionary the
// counts are summed over the shards (MaxBucketLoad and SlackC take the
// worst shard) and Cells is the composite table size, routing row included.
type Stats struct {
	N             int     // stored keys
	Cells         int     // table cells (128-bit words)
	Rows          int     // table rows (each of width s)
	Shards        int     // sub-dictionaries (1 unless WithShards)
	Buckets       int     // the paper's s
	Groups        int     // the paper's m
	HashTries     int     // (f,g,z) draws until property P(S) held
	Escalations   int     // slack escalations (0 in the normal regime)
	MaxBucketLoad int     // largest bucket
	SlackC        float64 // the c in force when P(S) held
}

// Stats returns construction statistics.
func (d *Dict) Stats() Stats {
	if d.sharded != nil {
		out := Stats{
			N:      d.sharded.N(),
			Cells:  d.sharded.Table().Size(),
			Shards: d.sharded.Shards(),
		}
		for i := 0; i < d.sharded.Shards(); i++ {
			r := d.sharded.Shard(i).(*core.Dict).Report()
			out.Rows += r.Rows
			out.Buckets += r.S
			out.Groups += r.M
			out.HashTries += r.HashTries
			out.Escalations += r.Escalations
			if r.MaxBucketLoad > out.MaxBucketLoad {
				out.MaxBucketLoad = r.MaxBucketLoad
			}
			if r.FinalC > out.SlackC {
				out.SlackC = r.FinalC
			}
		}
		return out
	}
	r := d.inner.Report()
	return Stats{
		N: r.N, Cells: r.Cells, Rows: r.Rows, Shards: 1, Buckets: r.S, Groups: r.M,
		HashTries: r.HashTries, Escalations: r.Escalations,
		MaxBucketLoad: r.MaxBucketLoad, SlackC: r.FinalC,
	}
}

// WeightedKey is one support point of a caller-described query
// distribution: key Key queried with probability (or unnormalized weight) P.
// The weighted contention and telemetry entry points — ContentionSummary-
// Weighted, TelemetryCompareExactWeighted — normalize the weights and merge
// duplicate keys, so any non-negative finite weighting with positive total
// mass is accepted.
type WeightedKey struct {
	Key uint64
	P   float64
}

// Contention summarizes the dictionary's exact contention under uniform
// queries over a caller-chosen key set (the paper's uniform-positive
// distribution when that set is the stored keys).
type Contention struct {
	// RatioStep is max_{t,j} Φ_t(j) · s — the per-step contention as a
	// multiple of the unachievable optimum 1/s. Theorem 3 keeps it O(1).
	RatioStep float64
	// RatioTotal is max_j Σ_t Φ_t(j) · s.
	RatioTotal float64
	// Probes is the expected number of cell probes per query.
	Probes float64
}

// Explain runs one membership query, writing a step-by-step account of
// every cell probe to w — which row, which replica, what was learned.
// Useful for understanding the four-phase query algorithm. Explain
// installs a table trace and must not run concurrently with queries.
func (d *Dict) Explain(x uint64, w io.Writer) (bool, error) {
	if d.sharded != nil {
		i := d.sharded.ShardOf(x)
		fmt.Fprintf(w, "route: x = %d → shard %d of %d (one probe of the %d-replica routing row)\n",
			x, i, d.sharded.Shards(), d.sharded.RouteWidth())
		return d.sharded.Shard(i).(*core.Dict).Explain(x, d.src, w)
	}
	return d.inner.Explain(x, d.src, w)
}

// WriteTo serializes the dictionary in a compact format (the construction
// state, ≈ 3 words per key, rather than the full table). It implements
// io.WriterTo. Sharded dictionaries do not support serialization.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	if d.sharded != nil {
		return 0, fmt.Errorf("lcds: sharded dictionaries do not support serialization")
	}
	return d.inner.WriteTo(w)
}

// Read deserializes a dictionary written by WriteTo, reconstructing and
// verifying its table. The query seed of the returned dictionary defaults
// to 1; pass WithSeed to change it.
func Read(r io.Reader, opts ...Option) (*Dict, error) {
	cfg := opterr{o: options{seed: 1}}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	inner, err := core.Read(r)
	if err != nil {
		return nil, err
	}
	// The wire format carries no query-side tuning; apply it post-read.
	inner.SetBatchGroup(cfg.o.params.BatchGroup)
	d := newDict(inner, cfg.o.seed, cfg.o.querySource())
	d.finishOptions(cfg.o)
	return d, nil
}

// ContentionSummary computes the exact contention under uniform queries
// over the caller-supplied keys — pass the stored key set for the paper's
// uniform-positive distribution, or any other support of interest. It
// returns an error for an empty key set (the uniform distribution over it
// is undefined).
func (d *Dict) ContentionSummary(keys []uint64) (Contention, error) {
	if len(keys) == 0 {
		return Contention{}, fmt.Errorf("lcds: contention summary needs a non-empty key set")
	}
	q := dist.NewUniformSet(keys, "")
	res, err := contention.Exact(d.structure(), q.Support())
	if err != nil {
		return Contention{}, err
	}
	return Contention{
		RatioStep:  res.RatioStep(),
		RatioTotal: res.RatioTotal(),
		Probes:     res.Probes,
	}, nil
}

// ContentionSummaryWeighted computes the exact contention under an arbitrary
// query distribution given as a weighted support — the quantity the paper
// bounds for every q, and the prediction the skew-aware telemetry comparison
// (TelemetryCompareExactWeighted) checks the live counters against. Weights
// are normalized and duplicate keys merged.
func (d *Dict) ContentionSummaryWeighted(support []WeightedKey) (Contention, error) {
	res, err := exactWeighted(d.structure(), support)
	if err != nil {
		return Contention{}, err
	}
	return Contention{
		RatioStep:  res.RatioStep(),
		RatioTotal: res.RatioTotal(),
		Probes:     res.Probes,
	}, nil
}
