package lcds

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/telemetry"
)

// TestTelemetryAcceptance is the PR's headline self-check: with telemetry
// at sampling 1, the empirical maxΦ̂·n measured over ≥1e6 uniform queries on
// an n=8192 core dictionary must match the exact offline analysis
// (contention.Exact) within 5%.
//
// The workload drives every stored key the same number of times
// (round-robin over the member set = the uniform-positive distribution
// realized deterministically), so the per-cell counts concentrate on their
// expectations instead of adding max-of-n-binomials extreme-value bias on
// top of the estimate.
func TestTelemetryAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-query acceptance drive skipped in -short")
	}
	const (
		n      = 8192
		passes = 128 // 128 × 8192 = 1,048,576 ≥ 1e6 queries
	)
	keys := testKeys(n, 20100613)
	d, err := New(keys, WithSeed(20100613), WithTelemetry(TelemetryConfig{Sample: 1}))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, n)
	for p := 0; p < passes; p++ {
		if err := d.ContainsBatch(keys, out); err != nil {
			t.Fatal(err)
		}
	}
	snap := d.Telemetry().Snapshot()
	if snap.Queries != n*passes {
		t.Fatalf("queries = %d, want %d", snap.Queries, n*passes)
	}
	drift, err := d.TelemetryCompareExact(keys)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("maxΦ̂·n live %.4f exact %.4f (ratio %.4f); probes/query live %.3f exact %.3f; step-mass L∞ %.2e",
		snap.MaxPhiN, drift.MaxPhiExact*n, drift.MaxPhiRatio, drift.ProbesLive, drift.ProbesExact, drift.StepMassMaxDiff)
	if math.Abs(drift.MaxPhiRatio-1) > 0.05 {
		t.Fatalf("empirical maxΦ̂·n = %.4f vs exact %.4f: off by %.1f%%, want ≤ 5%%",
			snap.MaxPhiN, drift.MaxPhiExact*n, 100*math.Abs(drift.MaxPhiRatio-1))
	}
	if math.Abs(drift.ProbesRatio-1) > 0.05 {
		t.Fatalf("probes/query live %.3f vs exact %.3f", drift.ProbesLive, drift.ProbesExact)
	}
}

// TestTelemetryOffNoSink asserts the telemetry-off contract: no probe sink
// is installed anywhere, so the query hot path performs zero additional
// atomic writes (there is no counter to write) and Telemetry() is nil.
// The zero-additional-allocations half is guarded by TestContainsZeroAlloc,
// which runs against a telemetry-off dictionary.
func TestTelemetryOffNoSink(t *testing.T) {
	keys := testKeys(512, 21)
	d, err := New(keys, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if d.Telemetry() != nil {
		t.Fatal("Telemetry() non-nil without WithTelemetry")
	}
	if d.structure().Table().Sink() != nil {
		t.Fatal("probe sink installed without WithTelemetry")
	}
	sharded, err := New(keys, WithSeed(21), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.structure().Table().Sink() != nil {
		t.Fatal("sharded probe sink installed without WithTelemetry")
	}
	dyn, err := NewDynamic(keys, 0.25, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Telemetry() != nil {
		t.Fatal("dynamic Telemetry() non-nil without WithTelemetry")
	}
	if dyn.inner.BaseTable().Sink() != nil || dyn.inner.BufferTable().Sink() != nil {
		t.Fatal("dynamic probe sink installed without WithTelemetry")
	}
	if _, err := d.TelemetryCompareExact(keys); err == nil {
		t.Fatal("TelemetryCompareExact succeeded without telemetry")
	}
}

func TestTelemetryCounters(t *testing.T) {
	keys := testKeys(1024, 22)
	d, err := New(keys[:512], WithSeed(22), WithTelemetry(TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:100] {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	for _, k := range keys[512:612] {
		if d.Contains(k) {
			t.Fatalf("phantom key %d", k)
		}
	}
	s := d.Telemetry().Snapshot()
	if s.Queries != 200 || s.Hits != 100 || s.Misses != 100 || s.Errors != 0 {
		t.Fatalf("counters: %+v", s)
	}
	if s.Probes == 0 || s.ProbesPerQuery < 1 {
		t.Fatalf("no probes recorded: %+v", s)
	}
	if s.Latency.Count != 200 {
		t.Fatalf("latency count = %d, want 200", s.Latency.Count)
	}
	if s.Cells != d.SpaceCells() || s.N != 512 {
		t.Fatalf("shape: cells %d (want %d) n %d", s.Cells, d.SpaceCells(), s.N)
	}
	// Every query executes step 0 (a coefficient probe) exactly once.
	if len(s.StepMass) == 0 || math.Abs(s.StepMass[0]-1) > 1e-9 {
		t.Fatalf("StepMass = %v", s.StepMass)
	}
	if len(s.TopCells) == 0 {
		t.Fatal("no hot cells reported")
	}
	// Batch queries land in the same counters via the batch histogram.
	out := make([]bool, 512)
	if err := d.ContainsBatch(keys[:512], out); err != nil {
		t.Fatal(err)
	}
	s = d.Telemetry().Snapshot()
	if s.Queries != 712 || s.BatchLatency.Count != 1 {
		t.Fatalf("after batch: queries %d batches %d", s.Queries, s.BatchLatency.Count)
	}
}

func TestTelemetryTraces(t *testing.T) {
	keys := testKeys(600, 23)
	d, err := New(keys, WithSeed(23), WithTelemetry(TelemetryConfig{TraceEvery: 1, TraceBuffer: 16}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:20] {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	traces := d.Telemetry().Traces()
	if len(traces) != 16 {
		t.Fatalf("ring holds %d traces, want 16 (buffer cap)", len(traces))
	}
	size := d.SpaceCells()
	for _, tr := range traces {
		if !tr.Found || tr.Err {
			t.Fatalf("trace outcome: %+v", tr)
		}
		if tr.Steps != len(tr.Cells) || tr.Steps != d.MaxProbes() {
			t.Fatalf("trace steps %d cells %d maxprobes %d", tr.Steps, len(tr.Cells), d.MaxProbes())
		}
		for s, c := range tr.Cells {
			if c < 0 || int(c) >= size {
				t.Fatalf("step %d probes cell %d outside [0, %d)", s, c, size)
			}
		}
		if tr.LatencyNs < 0 || tr.KeyHash == 0 {
			t.Fatalf("trace metadata: %+v", tr)
		}
	}
}

func TestTelemetrySharded(t *testing.T) {
	keys := testKeys(4096, 24)
	d, err := New(keys, WithSeed(24), WithShards(4), WithTelemetry(TelemetryConfig{TraceEvery: 1}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:200] {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	s := d.Telemetry().Snapshot()
	if len(s.Ranges) != 5 {
		t.Fatalf("ranges = %+v, want route + 4 shards", s.Ranges)
	}
	if s.Ranges[0].Name != "route" || s.Ranges[0].Probes == 0 {
		t.Fatalf("route range = %+v", s.Ranges[0])
	}
	share := 0.0
	for _, r := range s.Ranges {
		share += r.Share
	}
	// The ranges tile the whole composite table, so their shares sum to 1.
	if math.Abs(share-1) > 1e-9 {
		t.Fatalf("range shares sum to %v", share)
	}
	// Each traced query's captured cells must lie inside the range of the
	// shard that answered it.
	for _, tr := range d.Telemetry().Traces() {
		lo := d.sharded.CellOffset(tr.Shard)
		hi := lo + d.sharded.Shard(tr.Shard).Table().Size()
		for _, c := range tr.Cells {
			if int(c) < lo || int(c) >= hi {
				t.Fatalf("shard %d trace probes cell %d outside [%d, %d)", tr.Shard, c, lo, hi)
			}
		}
	}
	// The sharded live estimate matches its own exact analysis (loose
	// bound: only 200 queries).
	if _, err := d.TelemetryCompareExact(keys); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryShardedStepMass pins the step-layout fold: the composite
// ProbeSpec gives each shard a disjoint step range while the live counters
// time-align every shard at step 1, so TelemetryCompareExact must fold the
// exact vector before diffing. Probe counts and step masses are
// deterministic per query, so both comparisons are exact at any pass count.
func TestTelemetryShardedStepMass(t *testing.T) {
	keys := testKeys(1024, 31)
	d, err := New(keys, WithSeed(31), WithShards(4), WithTelemetry(TelemetryConfig{Sample: 1}))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 8; pass++ {
		for _, k := range keys {
			if !d.Contains(k) {
				t.Fatalf("lost key %d", k)
			}
		}
	}
	dr, err := d.TelemetryCompareExact(keys)
	if err != nil {
		t.Fatal(err)
	}
	if dr.StepMassMaxDiff > 1e-12 {
		t.Fatalf("sharded step-mass L∞ = %g, want 0 after folding", dr.StepMassMaxDiff)
	}
	if math.Abs(dr.ProbesRatio-1) > 1e-9 {
		t.Fatalf("sharded probes ratio = %v, want exactly 1", dr.ProbesRatio)
	}
}

func TestTelemetryDynamic(t *testing.T) {
	keys := testKeys(3000, 25)
	d, err := NewDynamic(keys[:2000], 0.1, WithSeed(25), WithTelemetry(TelemetryConfig{TraceEvery: 1}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[2000:2500] {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	d.Quiesce()
	hits := 0
	for _, k := range keys[:2500] {
		ok, err := d.Contains(k)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			hits++
		}
	}
	if hits != 2500 {
		t.Fatalf("lost %d keys", 2500-hits)
	}
	s := d.Telemetry().Snapshot()
	if s.Queries != 2500 || s.Hits != 2500 {
		t.Fatalf("counters: %+v", s)
	}
	if s.Cells != 0 || s.MaxPhi != 0 {
		t.Fatalf("dynamic telemetry should be cell-agnostic: %+v", s)
	}
	if s.Probes == 0 {
		t.Fatal("no probes recorded through the epoch tables")
	}
	if len(s.Dynamic) != 1 {
		t.Fatalf("dynamic shards = %d, want 1", len(s.Dynamic))
	}
	dm := s.Dynamic[0]
	// 500 inserts at ε=0.1 over ~2000 keys: several rebuilds beyond the
	// initial construction.
	if dm.Rebuilds < 2 {
		t.Fatalf("rebuilds = %d, want ≥ 2", dm.Rebuilds)
	}
	if dm.RebuildNs.Count != dm.Rebuilds {
		t.Fatalf("rebuild histogram count %d != rebuilds %d", dm.RebuildNs.Count, dm.Rebuilds)
	}
	if dm.DeltaHighWater == 0 {
		t.Fatal("delta high-water never moved despite 500 buffered inserts")
	}
	if len(d.Telemetry().Traces()) == 0 {
		t.Fatal("no traces captured")
	}

	// Sharded dynamic: per-shard metrics slots.
	ds, err := NewDynamic(keys[:2000], 0.25, WithSeed(25), WithShards(2), WithTelemetry(TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[2000:2200] {
		if _, err := ds.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	ds.Quiesce()
	if ok, err := ds.Contains(keys[0]); err != nil || !ok {
		t.Fatalf("sharded dynamic lost a key: %v %v", ok, err)
	}
	ss := ds.Telemetry().Snapshot()
	if len(ss.Dynamic) != 2 {
		t.Fatalf("sharded dynamic metrics = %+v", ss.Dynamic)
	}
	for i, dm := range ss.Dynamic {
		if dm.Rebuilds < 1 {
			t.Fatalf("shard %d rebuilds = %d, want ≥ 1 (initial build)", i, dm.Rebuilds)
		}
	}
}

// TestTelemetryRead: a deserialized dictionary accepts WithTelemetry like a
// built one.
func TestTelemetryRead(t *testing.T) {
	keys := testKeys(400, 26)
	d, err := New(keys, WithSeed(26))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rd, err := Read(&buf, WithSeed(26), WithTelemetry(TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:50] {
		if !rd.Contains(k) {
			t.Fatalf("lost key %d after round-trip", k)
		}
	}
	if s := rd.Telemetry().Snapshot(); s.Queries != 50 || s.Probes == 0 {
		t.Fatalf("telemetry after Read: %+v", s)
	}
}

func TestWithTelemetryValidation(t *testing.T) {
	if _, err := New(testKeys(16, 27), WithTelemetry(TelemetryConfig{Sample: -1})); err == nil {
		t.Fatal("negative sample accepted")
	}
}

// TestTelemetrySampledEstimate: with 1-in-k sampling the scaled estimates
// stay close to the sampling-off truth.
func TestTelemetrySampledEstimate(t *testing.T) {
	keys := testKeys(2048, 28)
	exact, err := New(keys, WithSeed(28), WithTelemetry(TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := New(keys, WithSeed(28), WithTelemetry(TelemetryConfig{Sample: 8}))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, len(keys))
	for p := 0; p < 8; p++ {
		if err := exact.ContainsBatch(keys, out); err != nil {
			t.Fatal(err)
		}
		if err := sampled.ContainsBatch(keys, out); err != nil {
			t.Fatal(err)
		}
	}
	se, ss := exact.Telemetry().Snapshot(), sampled.Telemetry().Snapshot()
	if ss.Sample != 8 {
		t.Fatalf("Sample = %d, want 8", ss.Sample)
	}
	if ratio := float64(ss.Probes) / float64(se.Probes); math.Abs(ratio-1) > 0.05 {
		t.Fatalf("sampled probe estimate off by %.1f%% (sampled %d, exact %d)",
			100*math.Abs(ratio-1), ss.Probes, se.Probes)
	}
}

// TestTelemetryUniformSupport pins the acceptance workload's semantics: the
// round-robin drive realizes dist.NewUniformSet's support exactly, so the
// comparison in TestTelemetryAcceptance diffs like against like.
func TestTelemetryUniformSupport(t *testing.T) {
	keys := testKeys(64, 29)
	q := dist.NewUniformSet(keys, "")
	sup := q.Support()
	if len(sup) != len(keys) {
		t.Fatalf("support size %d, want %d", len(sup), len(keys))
	}
	for _, w := range sup {
		if math.Abs(w.P-1.0/float64(len(keys))) > 1e-15 {
			t.Fatalf("support weight %v, want uniform %v", w.P, 1.0/float64(len(keys)))
		}
	}
	_ = telemetry.Config{} // facade aliases stay interchangeable with the internal types
}
