// Package prime provides deterministic 64-bit primality testing and prime
// search. The hash-family substrates use it to pick prime moduli for
// auxiliary pairwise-independent families, and tests use it to validate the
// Mersenne field order.
package prime

import "math/bits"

// mulmod returns (a * b) mod m without overflow for any a, b, m < 2^64, m > 0.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powmod returns a^e mod m.
func powmod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, a, m)
		}
		a = mulmod(a, a, m)
		e >>= 1
	}
	return result
}

// millerRabinWitnesses is a base set proven sufficient for deterministic
// primality testing of every n < 2^64 (Sinclair's 7-base set).
var millerRabinWitnesses = [...]uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022}

// IsPrime reports whether n is prime, deterministically correct for all
// n < 2^64.
func IsPrime(n uint64) bool {
	switch {
	case n < 2:
		return false
	case n < 4:
		return true
	case n%2 == 0:
		return false
	}
	// Write n-1 = d * 2^r with d odd.
	d := n - 1
	r := uint(0)
	for d%2 == 0 {
		d /= 2
		r++
	}
	for _, a := range millerRabinWitnesses {
		a %= n
		if a == 0 {
			continue
		}
		x := powmod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := uint(1); i < r; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// Next returns the smallest prime ≥ n. It panics if no prime ≥ n fits in a
// uint64 (n beyond 18446744073709551557, the largest 64-bit prime).
func Next(n uint64) uint64 {
	const maxPrime = 18446744073709551557
	if n > maxPrime {
		panic("prime: no 64-bit prime ≥ n")
	}
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// Prev returns the largest prime ≤ n. It panics if n < 2.
func Prev(n uint64) uint64 {
	if n < 2 {
		panic("prime: no prime ≤ n")
	}
	if n == 2 {
		return 2
	}
	if n%2 == 0 {
		n--
	}
	for !IsPrime(n) {
		n -= 2
	}
	return n
}
