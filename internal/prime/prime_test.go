package prime

import (
	"testing"
	"testing/quick"
)

func trialDivisionIsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func TestIsPrimeSmall(t *testing.T) {
	for n := uint64(0); n < 2000; n++ {
		if got, want := IsPrime(n), trialDivisionIsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimeKnownLarge(t *testing.T) {
	primes := []uint64{
		(1 << 61) - 1,          // Mersenne prime used by modarith
		2147483647,             // 2^31 - 1
		4294967311,             // smallest prime > 2^32
		18446744073709551557,   // largest 64-bit prime
		1000000007, 1000000009, // common competitive-programming primes
	}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	composites := []uint64{
		(1 << 61), (1 << 61) - 3, // neighbors of the Mersenne prime
		18446744073709551615, // 2^64 - 1 = 3·5·17·257·641·65537·6700417
		3215031751,           // strong pseudoprime to bases 2,3,5,7
		341, 561, 1105, 1729, // Carmichael / Fermat pseudoprimes
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestIsPrimeMatchesTrialDivisionRandom(t *testing.T) {
	f := func(x uint32) bool {
		n := uint64(x)
		return IsPrime(n) == trialDivisionIsPrime(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNext(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 2}, {1, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {90, 97},
		{1 << 32, 4294967311},
	}
	for _, c := range cases {
		if got := Next(c.in); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPrev(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{2, 2}, {3, 3}, {4, 3}, {10, 7}, {100, 97},
		{1 << 61, (1 << 61) - 1},
	}
	for _, c := range cases {
		if got := Prev(c.in); got != c.want {
			t.Errorf("Prev(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNextPrevRoundTrip(t *testing.T) {
	f := func(x uint32) bool {
		n := uint64(x) + 2
		p := Next(n)
		if !IsPrime(p) || p < n {
			return false
		}
		q := Prev(p)
		return q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrevPanicsBelowTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Prev(1) did not panic")
		}
	}()
	Prev(1)
}

func BenchmarkIsPrimeMersenne61(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !IsPrime((1 << 61) - 1) {
			b.Fatal("wrong answer")
		}
	}
}
