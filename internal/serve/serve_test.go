package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	lcds "repro"

	"repro/internal/workload"
)

// TestWriteMetricsContract: every RequiredMetrics name appears for a plain
// static dictionary, every sample line parses, and the drift block appears
// only when provided.
func TestWriteMetricsContract(t *testing.T) {
	keys := workload.MemberKeys(512, 7)
	d, err := lcds.New(keys, lcds.WithSeed(7), lcds.WithTelemetry(lcds.TelemetryConfig{TopK: 4}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	var sb strings.Builder
	WriteMetrics(&sb, d.Telemetry().Snapshot(), nil, d.Telemetry().Sample())
	body := sb.String()
	for _, name := range RequiredMetrics {
		if !strings.Contains(body, name) {
			t.Errorf("missing metric %s", name)
		}
	}
	if strings.Contains(body, "lcds_max_phi_ratio_vs_exact") {
		t.Error("drift gauges present without a drift block")
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
	}

	sb.Reset()
	WriteMetrics(&sb, d.Telemetry().Snapshot(), &Drift{MaxPhiRatio: 1, ProbesRatio: 1}, 1)
	if !strings.Contains(sb.String(), "lcds_max_phi_ratio_vs_exact 1") {
		t.Error("drift block missing when provided")
	}
}

// TestParseTimelineParams pins the cursor grammar and the page-size cap.
func TestParseTimelineParams(t *testing.T) {
	since, max, err := ParseTimelineParams("", "")
	if err != nil || since != 0 || max != DefaultTimelineMax {
		t.Fatalf("defaults: since=%d max=%d err=%v", since, max, err)
	}
	since, max, err = ParseTimelineParams("17", "3")
	if err != nil || since != 17 || max != 3 {
		t.Fatalf("explicit: since=%d max=%d err=%v", since, max, err)
	}
	if _, max, err := ParseTimelineParams("", "99999999"); err != nil || max != MaxTimelineMax {
		t.Fatalf("cap: max=%d err=%v", max, err)
	}
	for _, bad := range [][2]string{
		{"x", ""}, {"-1", ""}, {"", "0"}, {"", "-3"}, {"", "x"}, {"1e3", ""}, {"", "2.5"},
	} {
		if _, _, err := ParseTimelineParams(bad[0], bad[1]); err == nil {
			t.Errorf("since=%q max=%q accepted", bad[0], bad[1])
		}
	}
}

// TestTimelineHandler serves a real dynamic dictionary's recorder through
// the handler and checks pagination plus the 400 paths.
func TestTimelineHandler(t *testing.T) {
	keys := workload.MemberKeys(1500, 17)
	dd, err := lcds.NewDynamic(keys[:1000], 0.05, lcds.WithSeed(17),
		lcds.WithTelemetry(lcds.TelemetryConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[1000:1300] {
		if _, err := dd.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	dd.Quiesce()
	h := TimelineHandler(dd)

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/timeline?max=4", nil))
	var page1 TimelineReport
	if err := json.Unmarshal(rec.Body.Bytes(), &page1); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(page1.Events) != 4 {
		t.Fatalf("page 1 has %d events, want 4", len(page1.Events))
	}
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET",
		"/debug/timeline?since="+strconv.FormatUint(page1.NextCursor, 10), nil))
	var page2 TimelineReport
	if err := json.Unmarshal(rec.Body.Bytes(), &page2); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(page2.Events) == 0 {
		t.Fatal("page 2 empty: cursor did not advance")
	}
	if first := page2.Events[0].Seq; first != page1.NextCursor+1 {
		t.Fatalf("page 2 starts at seq %d, want %d", first, page1.NextCursor+1)
	}
	for _, bad := range []string{"?since=x", "?max=0", "?max=x", "?since=-2", "?max=1.5"} {
		rec = httptest.NewRecorder()
		h(rec, httptest.NewRequest("GET", "/debug/timeline"+bad, nil))
		if rec.Code != 400 {
			t.Errorf("query %q got status %d, want 400", bad, rec.Code)
		}
	}
}
