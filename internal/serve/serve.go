// Package serve is the shared HTTP plumbing of the service binaries
// (lcds-monitor, lcds-server): the Prometheus text exposition of a
// telemetry snapshot with its stable RequiredMetrics contract, and the
// /debug/timeline flight-recorder endpoint with since/max cursor
// pagination. Both binaries serve byte-compatible endpoints because they
// serve this package.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	lcds "repro"
)

// Drift is the live-vs-exact agreement block of the exposition — nil when
// the serving process has no exact comparison (dynamic membership, or a
// schedule with no stationary distribution).
type Drift struct {
	MaxPhiRatio     float64
	ProbesRatio     float64
	StepMassMaxDiff float64
}

// RequiredMetrics is the stable exposition contract: every name must appear
// in /metrics output regardless of configuration. CI's smoke jobs and the
// binaries' self-checks assert against this list.
var RequiredMetrics = []string{
	"lcds_queries_total",
	"lcds_hits_total",
	"lcds_misses_total",
	"lcds_errors_total",
	"lcds_probes_total",
	"lcds_probes_per_query",
	"lcds_max_phi",
	"lcds_max_phi_n",
	"lcds_step_mass",
	"lcds_sample",
	"lcds_sampling_k",
	"lcds_cells",
	"lcds_keys",
	"lcds_uptime_seconds",
	"lcds_latency_ns",
	"lcds_batch_latency_ns",
	"lcds_events_total",
	"lcds_events_dropped_total",
	"lcds_absorbed_writes_total",
	"lcds_phase_seals_total",
	"lcds_phase_absorbed_total",
	"lcds_phase_hot_keys",
	"lcds_phase_split",
}

// WriteMetrics renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4), with no client library: the snapshot
// is already a consistent point-in-time read, so exposition is pure
// formatting. samplingK is the sampling factor read atomically at scrape
// time (Telemetry.Sample), not the snapshot's copy: an adaptive controller
// retunes between AdaptTick and the scrape, and the gauge must report the
// factor in force now.
func WriteMetrics(w io.Writer, s lcds.TelemetrySnapshot, drift *Drift, samplingK int) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("lcds_queries_total", "Queries observed by the telemetry layer.", s.Queries)
	counter("lcds_hits_total", "Queries answered true.", s.Hits)
	counter("lcds_misses_total", "Queries answered false.", s.Misses)
	counter("lcds_errors_total", "Queries that returned an error.", s.Errors)
	counter("lcds_probes_total", "Cell probes (sampled counts scaled by lcds_sample).", s.Probes)
	gauge("lcds_probes_per_query", "Mean probes per query.", s.ProbesPerQuery)
	gauge("lcds_max_phi", "Empirical per-cell contention max_j phi(j) (Definition 1).", s.MaxPhi)
	gauge("lcds_max_phi_n", "max_j phi(j) * n, the paper's absolute contention headline.", s.MaxPhiN)
	gauge("lcds_max_phi_cell", "Flat index of the hottest cell.", float64(s.MaxPhiCell))
	gauge("lcds_sample", "Probe sampling rate (1 = every probe counted).", float64(s.Sample))
	gauge("lcds_sampling_k", "Sampling factor k currently in force (controller-tuned when lcds_sampling_adaptive is 1).", float64(samplingK))
	adaptiveVal := 0.0
	if s.Adaptive {
		adaptiveVal = 1
	}
	gauge("lcds_sampling_adaptive", "1 when the sampling factor is tuned by the adaptive controller.", adaptiveVal)
	gauge("lcds_cells", "Cell-probe table size s.", float64(s.Cells))
	gauge("lcds_keys", "Member key count n.", float64(s.N))
	gauge("lcds_uptime_seconds", "Seconds since telemetry was attached.", s.UptimeSeconds)

	fmt.Fprintf(w, "# HELP lcds_step_mass Probability a query executes probe step t.\n# TYPE lcds_step_mass gauge\n")
	for t, m := range s.StepMass {
		fmt.Fprintf(w, "lcds_step_mass{step=\"%d\"} %g\n", t, m)
	}

	for _, h := range s.TopCells {
		fmt.Fprintf(w, "lcds_hot_cell_phi{cell=\"%d\"} %g\n", h.Cell, h.Phi)
	}
	for _, r := range s.Ranges {
		fmt.Fprintf(w, "lcds_range_probes_total{range=%q} %d\n", r.Name, r.Probes)
		fmt.Fprintf(w, "lcds_range_share{range=%q} %g\n", r.Name, r.Share)
		fmt.Fprintf(w, "lcds_range_max_phi{range=%q} %g\n", r.Name, r.MaxPhi)
	}

	Summary(w, "lcds_latency_ns", "Contains latency in nanoseconds (log2 buckets; quantiles are bucket upper bounds).", s.Latency)
	Summary(w, "lcds_batch_latency_ns", "ContainsBatch latency in nanoseconds per batch.", s.BatchLatency)

	// Flight-recorder series: one counter per event type (all types always
	// present, zero included, so dashboards never see a series appear late)
	// plus the exact overflow-drop counter.
	fmt.Fprintf(w, "# HELP lcds_events_total Flight-recorder events recorded, by type.\n# TYPE lcds_events_total counter\n")
	for ty := lcds.EventEpochSealed; ty <= lcds.EventOverflowDropped; ty++ {
		fmt.Fprintf(w, "lcds_events_total{type=%q} %d\n", ty.String(), s.Events.ByType[ty.String()])
	}
	counter("lcds_events_dropped_total", "Flight-recorder emissions refused on a full ring (counted exactly).", s.Events.Dropped)

	// Two-phase write-absorption series. The headers are unconditional so the
	// RequiredMetrics contract holds in every configuration; the labeled
	// samples only exist in dynamic mode (one per shard), like the rebuild
	// series below.
	header := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	header("lcds_absorbed_writes_total", "Writes soaked wait-free by split-phase hot-key overlays.", "counter")
	header("lcds_phase_seals_total", "Write-absorption phase boundaries sealed by epoch rebuilds.", "counter")
	header("lcds_phase_absorbed_total", "Absorbed operations reconciled into snapshots at phase seals.", "counter")
	header("lcds_phase_hot_keys", "Hot keys absorbed by the current phase's overlay.", "gauge")
	header("lcds_phase_split", "1 while the shard runs a split phase (non-empty hot set).", "gauge")

	for _, d := range s.Dynamic {
		sh := fmt.Sprintf("{shard=\"%d\"}", d.Shard)
		split := 0
		if d.SplitPhase {
			split = 1
		}
		fmt.Fprintf(w, "lcds_absorbed_writes_total%s %d\n", sh, d.AbsorbedWrites)
		fmt.Fprintf(w, "lcds_phase_seals_total%s %d\n", sh, d.PhaseSeals)
		fmt.Fprintf(w, "lcds_phase_absorbed_total%s %d\n", sh, d.PhaseAbsorbed)
		fmt.Fprintf(w, "lcds_phase_hot_keys%s %d\n", sh, d.PhaseHotKeys)
		fmt.Fprintf(w, "lcds_phase_split%s %d\n", sh, split)
		fmt.Fprintf(w, "lcds_rebuilds_total%s %d\n", sh, d.Rebuilds)
		fmt.Fprintf(w, "lcds_rebuild_keys_total%s %d\n", sh, d.RebuildKeys)
		fmt.Fprintf(w, "lcds_rebuild_failures_total%s %d\n", sh, d.RebuildFails)
		fmt.Fprintf(w, "lcds_delta_depth%s %d\n", sh, d.DeltaDepth)
		fmt.Fprintf(w, "lcds_delta_high_water%s %d\n", sh, d.DeltaHighWater)
		fmt.Fprintf(w, "lcds_claim_probes_total%s %d\n", sh, d.ClaimProbes)
		fmt.Fprintf(w, "lcds_cas_retries_total%s %d\n", sh, d.CASRetries)
		fmt.Fprintf(w, "lcds_rebuild_ns%s %d\n", labels(d.Shard, "0.5"), d.RebuildNs.P50)
		fmt.Fprintf(w, "lcds_rebuild_ns%s %d\n", labels(d.Shard, "0.99"), d.RebuildNs.P99)
		fmt.Fprintf(w, "lcds_rebuild_ns%s %d\n", labels(d.Shard, "0.999"), d.RebuildNs.P999)
		fmt.Fprintf(w, "lcds_rebuild_ns_sum%s %d\n", sh, d.RebuildNs.Sum)
		fmt.Fprintf(w, "lcds_rebuild_ns_count%s %d\n", sh, d.RebuildNs.Count)
		fmt.Fprintf(w, "lcds_writer_pause_ns%s %d\n", labels(d.Shard, "0.5"), d.WriterPauseNs.P50)
		fmt.Fprintf(w, "lcds_writer_pause_ns%s %d\n", labels(d.Shard, "0.99"), d.WriterPauseNs.P99)
		fmt.Fprintf(w, "lcds_writer_pause_ns%s %d\n", labels(d.Shard, "0.999"), d.WriterPauseNs.P999)
		fmt.Fprintf(w, "lcds_writer_pause_ns_sum%s %d\n", sh, d.WriterPauseNs.Sum)
		fmt.Fprintf(w, "lcds_writer_pause_ns_count%s %d\n", sh, d.WriterPauseNs.Count)
	}

	if drift != nil {
		gauge("lcds_max_phi_ratio_vs_exact", "Live maxPhi divided by contention.Exact's maxPhi (1.0 = perfect agreement).", drift.MaxPhiRatio)
		gauge("lcds_probes_ratio_vs_exact", "Live probes/query divided by the exact expectation.", drift.ProbesRatio)
		gauge("lcds_step_mass_max_diff_vs_exact", "L-infinity gap between live and exact per-step probe mass.", drift.StepMassMaxDiff)
	}
}

// Summary renders a LogHistogram snapshot as a Prometheus summary. The
// quantiles are log2-bucket upper bounds, which is what a 65-bucket
// power-of-two histogram can honestly claim.
func Summary(w io.Writer, name, help string, h lcds.TelemetryHistogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", name, h.P50)
	fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", name, h.P99)
	fmt.Fprintf(w, "%s{quantile=\"0.999\"} %d\n", name, h.P999)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

func labels(shard int, quantile string) string {
	return fmt.Sprintf("{shard=\"%d\",quantile=%q}", shard, quantile)
}

// TimelineSource is a dictionary exposing its flight recorder — both facade
// dictionary types satisfy it.
type TimelineSource interface {
	Timeline(since uint64, max int) ([]lcds.Event, uint64)
	EventLog() *lcds.EventLog
}

// TimelineReport is the /debug/timeline response body.
type TimelineReport struct {
	Events []lcds.Event `json:"events"`
	// NextCursor is the value to pass as ?since= to read only newer events.
	NextCursor uint64 `json:"next_cursor"`
	// Dropped is the exact count of events refused on a full ring so far.
	Dropped uint64 `json:"dropped"`
}

// Timeline page-size bounds: DefaultTimelineMax when ?max= is absent,
// MaxTimelineMax as the silent cap on explicit requests.
const (
	DefaultTimelineMax = 256
	MaxTimelineMax     = 4096
)

// ParseTimelineParams validates the ?since= and ?max= cursor parameters.
// Empty strings select the defaults (since 0, max DefaultTimelineMax);
// anything non-numeric, a negative or zero max, or a max overflow is an
// error — the handler turns any error into a 400, never a panic (fuzzed).
func ParseTimelineParams(sinceStr, maxStr string) (since uint64, max int, err error) {
	if sinceStr != "" {
		since, err = strconv.ParseUint(sinceStr, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad since cursor")
		}
	}
	max = DefaultTimelineMax
	if maxStr != "" {
		m, err := strconv.Atoi(maxStr)
		if err != nil || m <= 0 {
			return 0, 0, fmt.Errorf("bad max")
		}
		max = m
	}
	if max > MaxTimelineMax {
		max = MaxTimelineMax
	}
	return since, max, nil
}

// TimelineHandler serves the flight recorder with since-cursor pagination:
// ?since=<cursor> returns only events newer than the cursor (0 = from the
// oldest retained), ?max=<n> caps the page size. Malformed parameters 400.
func TimelineHandler(src TimelineSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		since, max, err := ParseTimelineParams(q.Get("since"), q.Get("max"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		evs, next := src.Timeline(since, max)
		if evs == nil {
			evs = []lcds.Event{}
		}
		rep := TimelineReport{Events: evs, NextCursor: next, Dropped: src.EventLog().Dropped()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	}
}
