package serve

import (
	"net/http/httptest"
	"net/url"
	"testing"

	lcds "repro"

	"repro/internal/workload"
)

// FuzzTimelineParams: arbitrary since/max cursor strings must either parse
// cleanly or produce an error — and driven through the live handler, any
// error must surface as a 400, never a panic or a 5xx. CI's fuzz-smoke
// step runs this coverage-guided for a few seconds on every push.
func FuzzTimelineParams(f *testing.F) {
	keys := workload.MemberKeys(200, 3)
	dd, err := lcds.NewDynamic(keys[:128], 0.1, lcds.WithSeed(3),
		lcds.WithEventLog(lcds.EventLogConfig{}))
	if err != nil {
		f.Fatal(err)
	}
	for _, k := range keys[128:] {
		if _, err := dd.Insert(k); err != nil {
			f.Fatal(err)
		}
	}
	dd.Quiesce()
	handler := TimelineHandler(dd)

	f.Add("", "")
	f.Add("0", "16")
	f.Add("18446744073709551615", "4096")
	f.Add("-1", "0")
	f.Add("1e9", "2.5")
	f.Add("؂٣", "𝟜")
	f.Fuzz(func(t *testing.T, since, max string) {
		_, m, err := ParseTimelineParams(since, max)
		if err == nil && (m <= 0 || m > MaxTimelineMax) {
			t.Fatalf("accepted max out of bounds: %d", m)
		}
		q := url.Values{}
		if since != "" {
			q.Set("since", since)
		}
		if max != "" {
			q.Set("max", max)
		}
		rec := httptest.NewRecorder()
		handler(rec, httptest.NewRequest("GET", "/debug/timeline?"+q.Encode(), nil))
		if err != nil && rec.Code != 400 {
			t.Fatalf("parse error %v but handler answered %d", err, rec.Code)
		}
		if err == nil && rec.Code != 200 {
			t.Fatalf("valid params (since=%q max=%q) answered %d", since, max, rec.Code)
		}
	})
}
