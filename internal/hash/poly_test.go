package hash

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPolyRange(t *testing.T) {
	r := rng.New(1)
	for _, m := range []uint64{1, 2, 7, 1024, 1 << 40} {
		h := NewPoly(r, 4, m)
		for i := 0; i < 500; i++ {
			if v := h.Eval(r.Uint64n(MaxKey)); v >= m {
				t.Fatalf("Eval out of range: %d ≥ %d", v, m)
			}
		}
	}
}

func TestPolyDeterministic(t *testing.T) {
	h := NewPoly(rng.New(2), 4, 1000)
	x := uint64(123456789)
	a := h.Eval(x)
	for i := 0; i < 10; i++ {
		if h.Eval(x) != a {
			t.Fatal("Eval not deterministic")
		}
	}
}

func TestPolyFromCoefMatches(t *testing.T) {
	h := NewPoly(rng.New(3), 4, 999)
	h2 := PolyFromCoef(h.Coef, h.M)
	r := rng.New(4)
	for i := 0; i < 1000; i++ {
		x := r.Uint64n(MaxKey)
		if h.Eval(x) != h2.Eval(x) {
			t.Fatalf("reconstructed poly disagrees at %d", x)
		}
	}
}

func TestPolyEvalFieldConsistency(t *testing.T) {
	h := NewPoly(rng.New(5), 4, 77)
	r := rng.New(6)
	for i := 0; i < 1000; i++ {
		x := r.Uint64n(MaxKey)
		if h.EvalField(x)%h.M != h.Eval(x) {
			t.Fatal("EvalField % M != Eval")
		}
	}
}

// TestPolyPairwiseCollisions verifies the pairwise-independence consequence
// Pr[h(x) = h(y)] ≈ 1/m over random draws of h for fixed distinct x, y.
func TestPolyPairwiseCollisions(t *testing.T) {
	r := rng.New(7)
	const m = 64
	const trials = 40000
	collisions := 0
	x, y := uint64(1234567), uint64(7654321)
	for i := 0; i < trials; i++ {
		h := NewPoly(r, 2, m)
		if h.Eval(x) == h.Eval(y) {
			collisions++
		}
	}
	got := float64(collisions) / trials
	want := 1.0 / m
	sigma := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 5*sigma {
		t.Errorf("collision rate %.5f, want %.5f ± %.5f", got, want, 5*sigma)
	}
}

// TestPolyFourwiseUniformity checks that for 4 fixed points the joint image
// under a random h ∈ H^4_m looks uniform (chi-squared on the first point and
// on pairwise XOR of outputs as a cheap surrogate for full joint testing).
func TestPolyFourwiseUniformity(t *testing.T) {
	r := rng.New(8)
	const m = 8
	const trials = 64000
	points := []uint64{3, 1 << 20, 1 << 40, (1 << 55) + 9}
	// Count the joint outcome of two of the four points: m*m cells.
	counts := make([]int, m*m)
	for i := 0; i < trials; i++ {
		h := NewPoly(r, 4, m)
		a := h.Eval(points[0])
		b := h.Eval(points[2])
		counts[a*m+b]++
	}
	expected := float64(trials) / float64(m*m)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom, 99.9% quantile ≈ 103.4
	if chi2 > 103.4 {
		t.Errorf("joint chi2 = %.1f exceeds 99.9%% quantile", chi2)
	}
}

func TestDMDefinition(t *testing.T) {
	rand := rng.New(9)
	h := NewDM(rand, 4, 32, 1000)
	r2 := rng.New(10)
	for i := 0; i < 1000; i++ {
		x := r2.Uint64n(MaxKey)
		want := (h.F.Eval(x) + h.Z[h.G.Eval(x)]) % h.M()
		if got := h.Eval(x); got != want {
			t.Fatalf("DM.Eval(%d) = %d, want %d", x, got, want)
		}
		if h.Eval(x) >= h.M() {
			t.Fatalf("DM.Eval out of range")
		}
	}
}

func TestDMModAgreesWithDirectReduction(t *testing.T) {
	rand := rng.New(11)
	const s, m = 1200, 100 // m | s
	h := NewDM(rand, 4, 16, s)
	hp, err := h.Mod(m)
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(12)
	for i := 0; i < 5000; i++ {
		x := r2.Uint64n(MaxKey)
		if hp.Eval(x) != h.Eval(x)%m {
			t.Fatalf("Mod disagrees at x=%d: %d vs %d", x, hp.Eval(x), h.Eval(x)%m)
		}
	}
}

func TestDMModRejectsNonDivisor(t *testing.T) {
	h := NewDM(rng.New(13), 3, 8, 100)
	if _, err := h.Mod(7); err == nil {
		t.Error("Mod(7) of range 100 did not fail")
	}
	if _, err := h.Mod(0); err == nil {
		t.Error("Mod(0) did not fail")
	}
}

func TestLoadsMatchesNaive(t *testing.T) {
	r := rng.New(14)
	S := make([]uint64, 500)
	for i := range S {
		S[i] = r.Uint64n(MaxKey)
	}
	h := NewPoly(r, 3, 37)
	loads := Loads(S, h.Eval, 37)
	total := 0
	for i, l := range loads {
		total += l
		count := 0
		for _, x := range S {
			if h.Eval(x) == uint64(i) {
				count++
			}
		}
		if count != l {
			t.Fatalf("loads[%d] = %d, want %d", i, l, count)
		}
	}
	if total != len(S) {
		t.Fatalf("loads sum to %d, want %d", total, len(S))
	}
}

func TestMaxLoadAndSumSquares(t *testing.T) {
	loads := []int{0, 3, 1, 4, 1, 5}
	if got := MaxLoad(loads); got != 5 {
		t.Errorf("MaxLoad = %d, want 5", got)
	}
	if got := SumSquares(loads); got != 9+1+16+1+25 {
		t.Errorf("SumSquares = %d, want 52", got)
	}
	if MaxLoad(nil) != 0 || SumSquares(nil) != 0 {
		t.Error("empty loads not handled")
	}
}

// TestLemma9Part1 — g from H^d_r keeps every load ≤ c·n/r with high
// probability (Lemma 9(1)), for c = 2e, d = 4, r = √n.
func TestLemma9Part1(t *testing.T) {
	const n = 4096
	const c = 2 * math.E
	r := uint64(64) // n^(1/2)
	bound := int(c * float64(n) / float64(r))
	rand := rng.New(15)
	S := distinctKeys(rand, n)
	ok := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		g := NewPoly(rand, 4, r)
		if MaxLoad(Loads(S, g.Eval, int(r))) <= bound {
			ok++
		}
	}
	if ok < trials*9/10 {
		t.Errorf("Lemma 9(1) held in only %d/%d trials (bound %d)", ok, trials, bound)
	}
}

// TestLemma9Part3 — the FKS condition Σℓ² ≤ s holds with probability ≥ 1/2
// for h ∈ R^d_{r,s}, s = βn, β ≥ 2 (Lemma 9(3) gives 1 − 1/(β(β−1))).
func TestLemma9Part3(t *testing.T) {
	const n = 2000
	const beta = 4
	const s = beta * n
	rand := rng.New(16)
	S := distinctKeys(rand, n)
	ok := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		h := NewDM(rand, 4, 45, s)
		if SumSquares(Loads(S, h.Eval, s)) <= s {
			ok++
		}
	}
	// Expected success ≥ 1 − 1/(β(β−1)) = 11/12; demand at least 2/3.
	if ok < trials*2/3 {
		t.Errorf("FKS condition held in only %d/%d trials", ok, trials)
	}
}

func distinctKeys(r *rng.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestEvalFromCoefMatchesPoly(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.Intn(6)
		m := 1 + r.Uint64n(1<<40)
		h := NewPoly(r, d, m)
		for q := 0; q < 20; q++ {
			x := r.Uint64n(MaxKey)
			if got, want := EvalFromCoef(h.Coef, m, x), h.Eval(x); got != want {
				t.Fatalf("EvalFromCoef(d=%d, m=%d, x=%d) = %d, want %d", d, m, x, got, want)
			}
		}
	}
}
