package hash

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTabulationRangeAndDeterminism(t *testing.T) {
	r := rng.New(1)
	for _, m := range []uint64{1, 2, 97, 1 << 20} {
		h := NewTabulation(r, m)
		for i := 0; i < 300; i++ {
			x := r.Uint64()
			v := h.Eval(x)
			if v >= m {
				t.Fatalf("m=%d: value %d out of range", m, v)
			}
			if h.Eval(x) != v {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestTabulationPanicsOnZeroRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTabulation(0) did not panic")
		}
	}()
	NewTabulation(rng.New(1), 0)
}

func TestTabulationCollisionRate(t *testing.T) {
	r := rng.New(2)
	const m = 128
	const trials = 30000
	x, y := uint64(0x0123456789abcdef), uint64(0xfedcba9876543210)
	collisions := 0
	for i := 0; i < trials; i++ {
		h := NewTabulation(r, m)
		if h.Eval(x) == h.Eval(y) {
			collisions++
		}
	}
	want := 1.0 / m
	sigma := math.Sqrt(want * (1 - want) / trials)
	if got := float64(collisions) / trials; math.Abs(got-want) > 5*sigma {
		t.Errorf("collision rate %v, want %v", got, want)
	}
}

// TestTabulationThreeIndependence spot-checks the joint distribution of
// three fixed keys over random draws (chi-squared on an 8³-cell histogram
// would need huge samples; test the pairwise marginals of all three pairs
// plus uniformity of the XOR triple, which 3-independence implies).
func TestTabulationThreeIndependence(t *testing.T) {
	r := rng.New(3)
	const m = 8
	const trials = 48000
	keys := []uint64{1, 1 << 30, (1 << 50) + 7}
	pairCounts := [3][m * m]int{}
	for i := 0; i < trials; i++ {
		h := NewTabulation(r, m)
		v := [3]uint64{h.Eval(keys[0]), h.Eval(keys[1]), h.Eval(keys[2])}
		pairs := [3][2]int{{0, 1}, {0, 2}, {1, 2}}
		for pi, p := range pairs {
			pairCounts[pi][v[p[0]]*m+v[p[1]]]++
		}
	}
	expected := float64(trials) / (m * m)
	for pi := range pairCounts {
		chi2 := 0.0
		for _, c := range pairCounts[pi] {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 63 dof, 99.9% quantile ≈ 103.4
		if chi2 > 103.4 {
			t.Errorf("pair %d: chi2 = %.1f", pi, chi2)
		}
	}
}

func TestTabulationMaxLoadComparable(t *testing.T) {
	// Balls-in-bins: tabulation's max load on random keys tracks the
	// polynomial families'.
	r := rng.New(4)
	keys := distinctKeys(r, 4096)
	const m = 256
	h := NewTabulation(r, m)
	maxL := MaxLoad(Loads(keys, h.Eval, m))
	mean := 4096.0 / m
	if ratio := float64(maxL) / mean; ratio > 2.5 {
		t.Errorf("tabulation max/mean %v suspicious", ratio)
	}
}

func BenchmarkTabulationEval(b *testing.B) {
	h := NewTabulation(rng.New(1), 1<<20)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Eval(sink | 1)
	}
	_ = sink
}
