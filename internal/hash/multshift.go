package hash

import "repro/internal/rng"

// MultShift is Dietzfelbinger's multiply-shift hash into a power-of-two
// range: h(x) = (A·x mod 2^64) >> (64 − K), with A odd. It is 2-universal
// (collision probability ≤ 2/2^K). Baseline dictionaries use it where the
// paper's baselines would use "a standard hash function"; the low-contention
// dictionary itself uses the polynomial families, as the paper requires.
type MultShift struct {
	A uint64 // odd multiplier
	K uint   // output bits; range is 2^K
}

// NewMultShift draws a multiply-shift function with 2^k outputs (0 ≤ k ≤ 63).
func NewMultShift(r *rng.RNG, k uint) MultShift {
	if k > 63 {
		panic("hash: NewMultShift needs k ≤ 63")
	}
	return MultShift{A: r.Uint64() | 1, K: k}
}

// Eval returns h(x) ∈ [0, 2^K).
func (h MultShift) Eval(x uint64) uint64 {
	if h.K == 0 {
		return 0
	}
	return (h.A * x) >> (64 - h.K)
}

// Range returns the number of outputs, 2^K.
func (h MultShift) Range() uint64 { return 1 << h.K }
