package hash

import "repro/internal/rng"

// Tabulation is simple tabulation hashing (Zobrist; Pǎtraşcu–Thorup):
// the key is split into 8 bytes, each indexed into its own table of random
// words, and the results are XORed. It is exactly 3-independent — strictly
// between the pairwise family and the d ≥ 4 polynomial families the
// construction needs — and its load-concentration behaviour is famously
// better than its independence suggests (Pǎtraşcu–Thorup 2011), which the
// A6 ablation makes visible next to the families the paper analyzes.
type Tabulation struct {
	T [8][256]uint64
	M uint64 // range
}

// NewTabulation draws a simple tabulation hash into [m).
func NewTabulation(r *rng.RNG, m uint64) *Tabulation {
	if m < 1 {
		panic("hash: NewTabulation needs m ≥ 1")
	}
	t := &Tabulation{M: m}
	for i := range t.T {
		for j := range t.T[i] {
			t.T[i][j] = r.Uint64()
		}
	}
	return t
}

// Eval returns h(x) ∈ [0, M).
func (t *Tabulation) Eval(x uint64) uint64 {
	var h uint64
	for i := 0; i < 8; i++ {
		h ^= t.T[i][byte(x>>(8*uint(i)))]
	}
	return h % t.M
}
