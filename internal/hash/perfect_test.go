package hash

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPairwiseRange(t *testing.T) {
	r := rng.New(20)
	for _, m := range []uint64{1, 2, 9, 100} {
		h := NewPairwise(r, m)
		for i := 0; i < 200; i++ {
			if v := h.Eval(r.Uint64n(MaxKey)); v >= m {
				t.Fatalf("Pairwise.Eval out of range %d ≥ %d", v, m)
			}
		}
	}
}

func TestPairwiseCollisionRate(t *testing.T) {
	r := rng.New(21)
	const m = 100
	const trials = 40000
	x, y := uint64(42), uint64(99999999)
	collisions := 0
	for i := 0; i < trials; i++ {
		h := NewPairwise(r, m)
		if h.Eval(x) == h.Eval(y) {
			collisions++
		}
	}
	got := float64(collisions) / trials
	want := 1.0 / m
	sigma := math.Sqrt(want * (1 - want) / trials)
	if math.Abs(got-want) > 5*sigma {
		t.Errorf("collision rate %.5f, want %.5f", got, want)
	}
}

func TestFindPerfectInjective(t *testing.T) {
	r := rng.New(22)
	for _, n := range []int{0, 1, 2, 5, 17, 40} {
		keys := distinctKeys(r, n)
		m := uint64(n * n)
		if m == 0 {
			m = 1
		}
		h, tries, err := FindPerfect(r, keys, m, 200)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tries < 1 {
			t.Fatalf("n=%d: tries = %d", n, tries)
		}
		seen := map[uint64]bool{}
		for _, x := range keys {
			v := h.Eval(x)
			if v >= m {
				t.Fatalf("n=%d: value %d out of range %d", n, v, m)
			}
			if seen[v] {
				t.Fatalf("n=%d: not injective", n)
			}
			seen[v] = true
		}
	}
}

func TestFindPerfectExpectedTries(t *testing.T) {
	// With m = n² the success probability per trial is ≥ 1/2, so the mean
	// trial count over many runs must be well under 3.
	r := rng.New(23)
	const n = 30
	totalTries := 0
	const runs = 200
	for i := 0; i < runs; i++ {
		keys := distinctKeys(r, n)
		_, tries, err := FindPerfect(r, keys, n*n, 500)
		if err != nil {
			t.Fatal(err)
		}
		totalTries += tries
	}
	if mean := float64(totalTries) / runs; mean > 3 {
		t.Errorf("mean tries = %.2f, want ≤ 3 (expected ≤ 2)", mean)
	}
}

func TestFindPerfectImpossible(t *testing.T) {
	r := rng.New(24)
	keys := distinctKeys(r, 5)
	if _, _, err := FindPerfect(r, keys, 4, 10); err == nil {
		t.Error("5 keys into range 4 did not fail")
	}
}

func TestFindPerfectGivesUp(t *testing.T) {
	// 3 keys into range 3 is possible but rare enough that 1 try may fail;
	// with maxTries = 0 semantics (loop never runs) we must get an error.
	r := rng.New(25)
	keys := distinctKeys(r, 3)
	if _, _, err := FindPerfect(r, keys, 9, 0); err == nil {
		t.Error("maxTries=0 did not fail")
	}
}

func TestIsInjectiveOnScratchReuse(t *testing.T) {
	r := rng.New(26)
	keys := distinctKeys(r, 10)
	h, _, err := FindPerfect(r, keys, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]bool, 100)
	if !h.IsInjectiveOn(keys, scratch) {
		t.Error("injective hash reported non-injective with scratch")
	}
	// Scratch must be reset between calls: run twice.
	if !h.IsInjectiveOn(keys, scratch) {
		t.Error("scratch not reset between calls")
	}
	dup := append(append([]uint64{}, keys...), keys[0])
	if h.IsInjectiveOn(dup, scratch) {
		t.Error("duplicate key reported injective")
	}
}

func TestMultShift(t *testing.T) {
	r := rng.New(27)
	for _, k := range []uint{0, 1, 4, 16, 32} {
		h := NewMultShift(r, k)
		if h.A%2 == 0 {
			t.Fatal("multiplier must be odd")
		}
		if h.Range() != 1<<k {
			t.Fatalf("Range = %d, want %d", h.Range(), 1<<k)
		}
		for i := 0; i < 500; i++ {
			if v := h.Eval(r.Uint64()); v >= h.Range() {
				t.Fatalf("k=%d: value %d out of range", k, v)
			}
		}
	}
}

func TestMultShiftCollisionRate(t *testing.T) {
	r := rng.New(28)
	const k = 7 // range 128
	const trials = 40000
	x, y := uint64(1001), uint64(123456789012345)
	collisions := 0
	for i := 0; i < trials; i++ {
		h := NewMultShift(r, k)
		if h.Eval(x) == h.Eval(y) {
			collisions++
		}
	}
	// 2-universal: Pr ≤ 2/2^k = 1/64. Allow slack up to 3/128.
	if rate := float64(collisions) / trials; rate > 3.0/128 {
		t.Errorf("collision rate %.5f exceeds 2-universal bound slack", rate)
	}
}

func BenchmarkPolyEvalD4(b *testing.B) {
	h := NewPoly(rng.New(1), 4, 1<<20)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Eval(sink | 1)
	}
	_ = sink
}

func BenchmarkDMEval(b *testing.B) {
	h := NewDM(rng.New(1), 4, 1024, 1<<20)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Eval(sink | 1)
	}
	_ = sink
}

func BenchmarkFindPerfect25Keys(b *testing.B) {
	r := rng.New(1)
	keys := distinctKeys(r, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FindPerfect(r, keys, 625, 500); err != nil {
			b.Fatal(err)
		}
	}
}
