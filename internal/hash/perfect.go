package hash

import (
	"fmt"

	"repro/internal/modarith"
	"repro/internal/rng"
)

// Pairwise is a pairwise-independent hash x ↦ ((A·x + B) mod p) mod M with
// A, B ∈ F_p. Both coefficients are < 2^61, so a Pairwise function fits in a
// single 128-bit table cell — this is how each bucket's perfect hash function
// is stored "repeatedly in the space owned by the bucket" (paper §2.2) while
// keeping one probe per row.
type Pairwise struct {
	A, B uint64
	M    uint64
}

// NewPairwise draws a uniform pairwise-independent function into [m).
func NewPairwise(r *rng.RNG, m uint64) Pairwise {
	if m < 1 {
		panic("hash: NewPairwise needs m ≥ 1")
	}
	return Pairwise{A: r.Uint64n(modarith.P), B: r.Uint64n(modarith.P), M: m}
}

// Eval returns h(x) ∈ [0, M).
func (h Pairwise) Eval(x uint64) uint64 {
	return modarith.Add(modarith.Mul(h.A, modarith.Reduce(x)), h.B) % h.M
}

// IsInjectiveOn reports whether h maps the given keys to distinct values.
// scratch, if non-nil and of length ≥ M, is used to avoid allocation.
func (h Pairwise) IsInjectiveOn(keys []uint64, scratch []bool) bool {
	var seen []bool
	if uint64(len(scratch)) >= h.M {
		seen = scratch[:h.M]
		for i := range seen {
			seen[i] = false
		}
	} else {
		seen = make([]bool, h.M)
	}
	for _, x := range keys {
		v := h.Eval(x)
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// FindPerfect searches for a Pairwise function into [m) that is injective on
// keys, by rejection sampling. With m ≥ |keys|² pairwise independence makes
// each trial succeed with probability ≥ 1/2 (paper §2.1), so the expected
// number of trials is ≤ 2. It returns the function and the number of trials
// used, or an error after maxTries failures.
func FindPerfect(r *rng.RNG, keys []uint64, m uint64, maxTries int) (Pairwise, int, error) {
	if uint64(len(keys)) > m {
		return Pairwise{}, 0, fmt.Errorf("hash: %d keys cannot be perfect-hashed into range %d", len(keys), m)
	}
	scratch := make([]bool, m)
	for try := 1; try <= maxTries; try++ {
		h := NewPairwise(r, m)
		if h.IsInjectiveOn(keys, scratch) {
			return h, try, nil
		}
	}
	return Pairwise{}, maxTries, fmt.Errorf("hash: no perfect hash for %d keys into range %d after %d tries", len(keys), m, maxTries)
}
