// Package hash implements the hash families the paper builds on:
//
//   - H^d_m — the d-wise independent (d-universal) polynomial families of
//     Carter and Wegman [1]: degree-(d−1) polynomials over F_p with
//     p = 2^61 − 1, reduced mod m.
//   - R^d_{r,m} — the Dietzfelbinger–Meyer auf der Heide family (paper
//     Definition 4): h_{f,g,z}(x) = (f(x) + z_{g(x)}) mod m with f ∈ H^d_m,
//     g ∈ H^d_r, z ∈ [m]^r. This family gives the evenly distributed bucket
//     loads of Lemma 9 that the low-contention dictionary's groups rely on.
//   - per-bucket perfect hash functions: pairwise-independent polynomials
//     into a quadratic range, found by rejection sampling (FKS [8]).
//   - multiply-shift hashing, used by baseline dictionaries.
//
// All keys live in the universe U = [0, 2^61 − 1); see modarith.
package hash

import (
	"fmt"

	"repro/internal/modarith"
	"repro/internal/rng"
)

// MaxKey is the exclusive upper bound of the key universe: keys must be
// < 2^61 − 1 so that they embed injectively into F_p.
const MaxKey = modarith.P

// Poly is a function drawn from the d-wise independent family H^d_m:
// x ↦ (Σ_i Coef[i]·x^i mod p) mod m. For distinct x_1..x_d the values are
// uniform and independent over [m], up to the negligible bias m/p from the
// final reduction (m ≤ 2^40 in every use here, so bias < 2^-21).
type Poly struct {
	Coef []uint64 // d coefficients, each in [0, p)
	M    uint64   // range size
}

// NewPoly draws a uniform member of H^d_m. It panics unless d ≥ 1 and m ≥ 1.
func NewPoly(r *rng.RNG, d int, m uint64) Poly {
	if d < 1 {
		panic("hash: NewPoly needs d ≥ 1")
	}
	if m < 1 {
		panic("hash: NewPoly needs m ≥ 1")
	}
	coef := make([]uint64, d)
	for i := range coef {
		coef[i] = r.Uint64n(modarith.P)
	}
	return Poly{Coef: coef, M: m}
}

// PolyFromCoef reconstructs a polynomial hash from stored coefficients,
// as the query algorithm does after reading them from table cells.
func PolyFromCoef(coef []uint64, m uint64) Poly {
	if m < 1 {
		panic("hash: PolyFromCoef needs m ≥ 1")
	}
	return Poly{Coef: coef, M: m}
}

// Eval returns h(x) ∈ [0, M).
func (h Poly) Eval(x uint64) uint64 {
	return modarith.PolyEval(h.Coef, x) % h.M
}

// EvalFromCoef evaluates the H^d_m member with the given coefficients at x
// without constructing a Poly value — the query algorithm's in-place
// evaluation over coefficient buffers it just read from table cells. It is
// exactly PolyFromCoef(coef, m).Eval(x).
func EvalFromCoef(coef []uint64, m uint64, x uint64) uint64 {
	if m < 1 {
		panic("hash: EvalFromCoef needs m ≥ 1")
	}
	return modarith.PolyEval(coef, x) % m
}

// EvalField returns the polynomial value in F_p before the reduction to [M).
// The dictionary stores field values and reduces at query time so that the
// same coefficients can serve several ranges (h into [s] and h′ into [m]).
func (h Poly) EvalField(x uint64) uint64 {
	return modarith.PolyEval(h.Coef, x)
}

// D returns the independence degree (number of coefficients).
func (h Poly) D() int { return len(h.Coef) }

// DM is a function h_{f,g,z} from the family R^d_{r,m} of Definition 4:
//
//	h(x) = (F(x) + Z[G(x)]) mod M.
//
// F has range M, G has range r = len(Z), and every Z[i] ∈ [M).
type DM struct {
	F Poly
	G Poly
	Z []uint64
}

// NewDM draws a uniform member of R^d_{r,m}.
func NewDM(rand *rng.RNG, d int, r, m uint64) DM {
	if r < 1 {
		panic("hash: NewDM needs r ≥ 1")
	}
	z := make([]uint64, r)
	for i := range z {
		z[i] = rand.Uint64n(m)
	}
	return DM{
		F: NewPoly(rand, d, m),
		G: NewPoly(rand, d, r),
		Z: z,
	}
}

// Eval returns h(x) ∈ [0, M).
func (h DM) Eval(x uint64) uint64 {
	return (h.F.Eval(x) + h.Z[h.G.Eval(x)]) % h.F.M
}

// M returns the range size.
func (h DM) M() uint64 { return h.F.M }

// Mod returns h′ = h mod m as a member of R^d_{r,m}. It requires m | M:
// then ((f(x)+z_{g(x)}) mod M) mod m = (f(x) mod m + z_{g(x)} mod m) mod m,
// so h′ is represented by the same coefficients with the smaller range and
// z reduced mod m — exactly the paper's §2.2 observation that h′ is itself
// uniform over R^d_{r,m}.
func (h DM) Mod(m uint64) (DM, error) {
	if m == 0 || h.F.M%m != 0 {
		return DM{}, fmt.Errorf("hash: range %d does not divide %d", m, h.F.M)
	}
	z := make([]uint64, len(h.Z))
	for i, v := range h.Z {
		z[i] = v % m
	}
	return DM{F: Poly{Coef: h.F.Coef, M: m}, G: h.G, Z: z}, nil
}

// Loads returns the bucket loads ℓ(S, h, i) of Definition 5 for the hash
// function eval with range m: loads[i] = |{x ∈ S : eval(x) = i}|.
func Loads(S []uint64, eval func(uint64) uint64, m int) []int {
	loads := make([]int, m)
	for _, x := range S {
		loads[eval(x)]++
	}
	return loads
}

// MaxLoad returns the largest entry of loads (0 for an empty slice).
func MaxLoad(loads []int) int {
	best := 0
	for _, l := range loads {
		if l > best {
			best = l
		}
	}
	return best
}

// SumSquares returns Σ_i loads[i]², the FKS space requirement of Lemma 9(3).
func SumSquares(loads []int) int {
	total := 0
	for _, l := range loads {
		total += l * l
	}
	return total
}
