package workload

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/rng"
)

// WeightedDrive drives queries whose aggregate frequencies realize an
// arbitrary weighted support — the distribution-aware generalization of the
// round-robin pass the telemetry self-checks drive for the uniform
// distribution. Two modes share one object:
//
//   - Next walks a precomputed schedule: one pass of Len queries in which
//     key i appears exactly round(P_i · Len) times (largest-remainder
//     apportionment, seeded shuffle). The position counter is atomic, so
//     any number of concurrent workers collectively realize the schedule's
//     exact per-pass frequencies regardless of interleaving — live counters
//     only accumulate totals, so the realized empirical distribution is
//     deterministic even though the per-worker order is not.
//   - Draw samples i.i.d. from the support through any rng.Source (pass an
//     rng.Sharded for concurrent low-contention sampling).
//
// Realized returns the schedule's exact empirical support; computing
// contention.Exact under it makes the live-vs-exact comparison free of
// apportionment quantization for deterministic schemes.
type WeightedDrive struct {
	set      *dist.WeightedSet
	schedule []uint64
	realized []dist.Weighted
	pos      atomic.Uint64
}

// NewWeightedDrive builds a driver over support with a schedule of passLen
// queries shuffled by seed. passLen must be ≥ 1; supports with more keys
// than passLen lose their lightest keys to apportionment (counts round to
// zero) — use a passLen of at least a few times the support size.
func NewWeightedDrive(support []dist.Weighted, passLen int, seed uint64) (*WeightedDrive, error) {
	if passLen < 1 {
		return nil, fmt.Errorf("workload: weighted drive pass length %d must be ≥ 1", passLen)
	}
	set, err := dist.NewWeightedSet(support, "")
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	norm := set.Support()

	// Largest-remainder apportionment: floor everyone, then hand the
	// leftover slots to the largest fractional remainders (ties by lower
	// index, i.e. lower key — deterministic).
	counts := make([]int, len(norm))
	type rem struct {
		i int
		f float64
	}
	rems := make([]rem, len(norm))
	total := 0
	for i, w := range norm {
		exact := w.P * float64(passLen)
		c := int(exact)
		counts[i] = c
		total += c
		rems[i] = rem{i: i, f: exact - float64(c)}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].f != rems[b].f {
			return rems[a].f > rems[b].f
		}
		return rems[a].i < rems[b].i
	})
	for j := 0; total < passLen; j++ {
		counts[rems[j%len(rems)].i]++
		total++
	}

	d := &WeightedDrive{set: set, schedule: make([]uint64, 0, passLen)}
	for i, c := range counts {
		for j := 0; j < c; j++ {
			d.schedule = append(d.schedule, norm[i].Key)
		}
		if c > 0 {
			d.realized = append(d.realized, dist.Weighted{Key: norm[i].Key, P: float64(c) / float64(passLen)})
		}
	}
	r := rng.New(seed)
	for i := len(d.schedule) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		d.schedule[i], d.schedule[j] = d.schedule[j], d.schedule[i]
	}
	return d, nil
}

// Len returns the schedule length (one pass).
func (d *WeightedDrive) Len() int { return len(d.schedule) }

// Next returns the next scheduled query key, cycling over the pass. Safe for
// concurrent callers: each claims a distinct schedule position, so every
// completed pass realizes the apportioned frequencies exactly.
func (d *WeightedDrive) Next() uint64 {
	return d.schedule[int(d.pos.Add(1)-1)%len(d.schedule)]
}

// At returns schedule position i (mod the pass length) without advancing the
// shared cursor — for workers that stride disjoint index ranges.
func (d *WeightedDrive) At(i int) uint64 { return d.schedule[i%len(d.schedule)] }

// Draw samples one key i.i.d. from the support through src.
func (d *WeightedDrive) Draw(src rng.Source) uint64 { return d.set.Draw(src) }

// Realized returns the schedule's exact empirical support: key i with
// probability counts_i / Len. Exact analyses computed under this support
// compare against a live drive with zero apportionment error.
func (d *WeightedDrive) Realized() []dist.Weighted {
	out := make([]dist.Weighted, len(d.realized))
	copy(out, d.realized)
	return out
}

// Sample implements dist.Dist over the schedule (the argument is unused —
// the schedule is the randomness, fixed at construction).
func (d *WeightedDrive) Sample(*rng.RNG) uint64 { return d.Next() }

// Name identifies the drive in reports.
func (d *WeightedDrive) Name() string {
	return fmt.Sprintf("weighted-drive(%d keys, pass %d)", d.set.Len(), len(d.schedule))
}

var _ dist.Dist = (*WeightedDrive)(nil)
