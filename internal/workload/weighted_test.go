package workload

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
)

func TestWeightedDriveValidation(t *testing.T) {
	sup := []dist.Weighted{{Key: 1, P: 1}}
	if _, err := NewWeightedDrive(sup, 0, 1); err == nil {
		t.Error("zero pass length accepted")
	}
	if _, err := NewWeightedDrive(nil, 10, 1); err == nil {
		t.Error("empty support accepted")
	}
	if _, err := NewWeightedDrive([]dist.Weighted{{Key: 1, P: -1}}, 10, 1); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedDriveApportionmentIsExact(t *testing.T) {
	// 0.5 / 0.3 / 0.2 over a pass of 10 has exact integer apportionment:
	// 5, 3, 2 — the schedule must realize it with no rounding drift.
	sup := []dist.Weighted{{Key: 1, P: 0.5}, {Key: 2, P: 0.3}, {Key: 3, P: 0.2}}
	d, err := NewWeightedDrive(sup, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Fatalf("pass length %d, want 10", d.Len())
	}
	counts := map[uint64]int{}
	for i := 0; i < d.Len(); i++ {
		counts[d.At(i)]++
	}
	want := map[uint64]int{1: 5, 2: 3, 3: 2}
	for k, c := range want {
		if counts[k] != c {
			t.Errorf("key %d scheduled %d times, want %d (counts %v)", k, counts[k], c, counts)
		}
	}
}

func TestWeightedDriveRealizedMatchesSchedule(t *testing.T) {
	// A support whose weights do NOT divide the pass length: realized
	// frequencies must equal the schedule's actual counts, sum to 1, and sit
	// within 1/passLen of the requested weights (largest-remainder bound).
	sup := []dist.Weighted{{Key: 10, P: 1}, {Key: 20, P: 1}, {Key: 30, P: 1}}
	const passLen = 100
	d, err := NewWeightedDrive(sup, passLen, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for i := 0; i < passLen; i++ {
		counts[d.At(i)]++
	}
	total := 0.0
	for _, w := range d.Realized() {
		if got := float64(counts[w.Key]) / passLen; math.Abs(got-w.P) > 1e-12 {
			t.Errorf("key %d realized %v, schedule says %v", w.Key, w.P, got)
		}
		if math.Abs(w.P-1.0/3) > 1.0/passLen {
			t.Errorf("key %d realized %v, want within 1/%d of 1/3", w.Key, w.P, passLen)
		}
		total += w.P
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("realized mass %v, want 1", total)
	}
}

func TestWeightedDriveNextCyclesDeterministically(t *testing.T) {
	sup := []dist.Weighted{{Key: 1, P: 2}, {Key: 2, P: 1}}
	d, err := NewWeightedDrive(sup, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]uint64, d.Len())
	for i := range first {
		first[i] = d.Next()
	}
	// Second pass replays the same schedule.
	for i := range first {
		if got := d.Next(); got != first[i] {
			t.Fatalf("pass 2 position %d: got %d, want %d", i, got, first[i])
		}
	}
	// Two drives with the same seed agree; a different seed shuffles.
	d2, _ := NewWeightedDrive(sup, 9, 5)
	same := true
	for i := 0; i < d.Len(); i++ {
		if d.At(i) != d2.At(i) {
			same = false
		}
	}
	if !same {
		t.Error("same seed produced different schedules")
	}
}

func TestWeightedDriveConcurrentNextRealizesPass(t *testing.T) {
	// Concurrent workers draining exactly W whole passes must collectively
	// realize the apportioned counts exactly — the property the telemetry
	// comparison depends on.
	sup := []dist.Weighted{{Key: 1, P: 0.6}, {Key: 2, P: 0.25}, {Key: 3, P: 0.15}}
	const passLen, passes, workers = 200, 8, 4
	d, err := NewWeightedDrive(sup, passLen, 9)
	if err != nil {
		t.Fatal(err)
	}
	scheduled := map[uint64]int{}
	for i := 0; i < passLen; i++ {
		scheduled[d.At(i)]++
	}
	var mu sync.Mutex
	got := map[uint64]int{}
	var wg sync.WaitGroup
	per := passLen * passes / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := map[uint64]int{}
			for i := 0; i < per; i++ {
				local[d.Next()]++
			}
			mu.Lock()
			for k, c := range local {
				got[k] += c
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for k, c := range scheduled {
		if got[k] != c*passes {
			t.Errorf("key %d drawn %d times across %d passes, want %d", k, got[k], passes, c*passes)
		}
	}
}

func TestWeightedDriveDrawSamplesSupport(t *testing.T) {
	sup := []dist.Weighted{{Key: 100, P: 0.7}, {Key: 200, P: 0.3}}
	d, err := NewWeightedDrive(sup, 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	hits := 0
	const trials = 40000
	for i := 0; i < trials; i++ {
		switch d.Draw(r) {
		case 100:
			hits++
		case 200:
		default:
			t.Fatal("Draw left the support")
		}
	}
	if got := float64(hits) / trials; math.Abs(got-0.7) > 0.02 {
		t.Errorf("key 100 frequency %.3f, want 0.7", got)
	}
}

func TestWeightedDriveName(t *testing.T) {
	d, err := NewWeightedDrive([]dist.Weighted{{Key: 1, P: 1}}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() == "" {
		t.Error("empty name")
	}
}
