// Package workload provides stateful query generators that sit between the
// paper's two analyzed extremes — the uniform positive/negative class of §2
// and the adversarial distributions of §3. They model what real concurrent
// readers do: temporal locality with a drifting working set, sequential
// scans, and read-mostly negative lookups. Each generator implements
// dist.Dist, so the contention machinery consumes them directly.
package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/rng"
)

// WorkingSet models temporal locality: with probability Locality the query
// comes uniformly from a working set of WSize keys; otherwise uniformly
// from the full key set. After every query, with probability Churn one
// working-set member is replaced by a random outside key, so the hot set
// drifts over time the way request popularity does.
type WorkingSet struct {
	keys     []uint64
	ws       []int // indices into keys
	inWS     map[int]bool
	Locality float64
	Churn    float64
}

// NewWorkingSet builds a working-set generator. wsize must be in [1, len(keys)];
// locality and churn in [0, 1].
func NewWorkingSet(keys []uint64, wsize int, locality, churn float64, r *rng.RNG) (*WorkingSet, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("workload: empty key set")
	}
	if wsize < 1 || wsize > len(keys) {
		return nil, fmt.Errorf("workload: working set size %d outside [1, %d]", wsize, len(keys))
	}
	if locality < 0 || locality > 1 || churn < 0 || churn > 1 {
		return nil, fmt.Errorf("workload: locality %v / churn %v outside [0,1]", locality, churn)
	}
	w := &WorkingSet{
		keys:     keys,
		Locality: locality,
		Churn:    churn,
		inWS:     make(map[int]bool, wsize),
	}
	perm := r.Perm(len(keys))
	for _, i := range perm[:wsize] {
		w.ws = append(w.ws, i)
		w.inWS[i] = true
	}
	return w, nil
}

// Sample draws the next query and advances the working-set drift.
func (w *WorkingSet) Sample(r *rng.RNG) uint64 {
	var k uint64
	if r.Float64() < w.Locality {
		k = w.keys[w.ws[r.Intn(len(w.ws))]]
	} else {
		k = w.keys[r.Intn(len(w.keys))]
	}
	if r.Float64() < w.Churn && len(w.ws) < len(w.keys) {
		// Replace a random working-set member with an outside key.
		pos := r.Intn(len(w.ws))
		for try := 0; try < 64; try++ {
			cand := r.Intn(len(w.keys))
			if !w.inWS[cand] {
				delete(w.inWS, w.ws[pos])
				w.ws[pos] = cand
				w.inWS[cand] = true
				break
			}
		}
	}
	return k
}

// Name identifies the workload in reports.
func (w *WorkingSet) Name() string {
	return fmt.Sprintf("working-set(w=%d,l=%.2f)", len(w.ws), w.Locality)
}

// Scan cycles through the key set in a fixed order — the access pattern of
// a batch job validating every member. It is deterministic, maximally
// correlated, and far from both of the paper's analyzed distributions.
type Scan struct {
	keys []uint64
	pos  int
}

// NewScan builds a scanning generator over keys.
func NewScan(keys []uint64) (*Scan, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("workload: empty key set")
	}
	return &Scan{keys: keys}, nil
}

// Sample returns the next key in cyclic order.
func (s *Scan) Sample(*rng.RNG) uint64 {
	k := s.keys[s.pos]
	s.pos = (s.pos + 1) % len(s.keys)
	return k
}

// Name identifies the workload in reports.
func (s *Scan) Name() string { return fmt.Sprintf("scan(%d)", len(s.keys)) }

// ReadMostlyNegative models a filter in front of a data store: most lookups
// miss (uniform negatives), a small fraction hit (uniform positives).
func ReadMostlyNegative(keys []uint64, universe uint64, hitRate float64) dist.Dist {
	return dist.PosNeg(keys, universe, hitRate)
}

// Interface assertions.
var (
	_ dist.Dist = (*WorkingSet)(nil)
	_ dist.Dist = (*Scan)(nil)
)
