package workload

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/rng"
)

// RotatingHotSet is the ddtxn-auction-style adversary for the two-phase
// write path: a point mass of H hot keys receives hotFrac of all traffic,
// and every window of W operations the hot block rotates to the next H keys
// (wrapping over the key set). Within a window the schedule is a
// WeightedDrive pass over key *indices* — largest-remainder apportionment
// plus a seeded shuffle — so the realized hot mass per window is exact and
// deterministic; rotation is pure index arithmetic on top, so the whole
// sequence is reproducible and the shared cursor stays a single atomic.
//
// The drive answers three consumers: bench and monitor loops call Next
// (concurrent, schedule semantics like WeightedDrive), tests use At and
// HotSet to know exactly which keys are hot at any position, and dist.Dist
// consumers use Sample.
type RotatingHotSet struct {
	keys    []uint64
	hot     int
	window  int
	hotFrac float64
	inner   *WeightedDrive // schedule over indices [0, len(keys))
	pos     atomic.Uint64
}

// NewRotatingHotSet builds the drive: hot keys out of keys get hotFrac of
// the traffic, rotating every window ops. The window is also the inner
// schedule's pass length, so each window realizes the apportioned
// frequencies exactly; window must be ≥ 1 and hot in [1, len(keys)].
func NewRotatingHotSet(keys []uint64, hot, window int, hotFrac float64, seed uint64) (*RotatingHotSet, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("workload: rotating hot set needs keys")
	}
	if hot < 1 || hot > len(keys) {
		return nil, fmt.Errorf("workload: hot-set size %d outside [1, %d]", hot, len(keys))
	}
	if window < 1 {
		return nil, fmt.Errorf("workload: rotation window %d must be ≥ 1", window)
	}
	if hotFrac <= 0 || hotFrac >= 1 {
		return nil, fmt.Errorf("workload: hot fraction %v outside (0, 1)", hotFrac)
	}
	// Index support: indices 0..hot-1 carry the hot mass on top of the
	// uniform residual every index gets. Rotation shifts which keys those
	// indices map to, not the support itself.
	n := len(keys)
	support := make([]dist.Weighted, n)
	residual := (1 - hotFrac) / float64(n)
	for i := range support {
		support[i] = dist.Weighted{Key: uint64(i), P: residual}
		if i < hot {
			support[i].P += hotFrac / float64(hot)
		}
	}
	inner, err := NewWeightedDrive(support, window, seed)
	if err != nil {
		return nil, err
	}
	return &RotatingHotSet{
		keys:    append([]uint64(nil), keys...),
		hot:     hot,
		window:  window,
		hotFrac: hotFrac,
		inner:   inner,
	}, nil
}

// at maps one schedule position to a key: the inner pass supplies the
// index pattern, the position's window supplies the rotation offset.
func (d *RotatingHotSet) at(pos uint64) uint64 {
	idx := d.inner.At(int(pos % uint64(d.window)))
	w := pos / uint64(d.window)
	return d.keys[(idx+w*uint64(d.hot))%uint64(len(d.keys))]
}

// Next returns the next scheduled key. Safe for concurrent callers: each
// claims a distinct position, so every window collectively realizes the
// exact apportioned hot mass on that window's hot block.
func (d *RotatingHotSet) Next() uint64 { return d.at(d.pos.Add(1) - 1) }

// At returns the key at schedule position i without advancing the cursor —
// for workers striding disjoint ranges, and for tests replaying the exact
// sequence Next produces from a fresh drive.
func (d *RotatingHotSet) At(i int) uint64 { return d.at(uint64(i)) }

// Window returns which rotation window position i falls in.
func (d *RotatingHotSet) Window(i int) int { return i / d.window }

// HotSet returns the hot keys of rotation window w, in block order.
func (d *RotatingHotSet) HotSet(w int) []uint64 {
	out := make([]uint64, d.hot)
	off := uint64(w) * uint64(d.hot)
	for i := range out {
		out[i] = d.keys[(off+uint64(i))%uint64(len(d.keys))]
	}
	return out
}

// Len returns the rotation window length (one inner pass).
func (d *RotatingHotSet) Len() int { return d.window }

// Sample implements dist.Dist over the rotating schedule (the argument is
// unused — the schedule is the randomness, fixed at construction).
func (d *RotatingHotSet) Sample(*rng.RNG) uint64 { return d.Next() }

// Name identifies the drive in reports.
func (d *RotatingHotSet) Name() string {
	return fmt.Sprintf("rotating-hot-set(%d/%d keys at %.2f, window %d)",
		d.hot, len(d.keys), d.hotFrac, d.window)
}

var _ dist.Dist = (*RotatingHotSet)(nil)
