package workload

import (
	"sync"
	"testing"
)

func rotKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(1000 + i*7)
	}
	return keys
}

// TestRotatingHotSetWindows checks that within each rotation window the hot
// block receives its apportioned mass exactly, and that the block actually
// rotates by the hot-set size from window to window.
func TestRotatingHotSetWindows(t *testing.T) {
	keys := rotKeys(64)
	const hot, window = 4, 512
	hotFrac := 0.9
	d, err := NewRotatingHotSet(keys, hot, window, hotFrac, 42)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		hotSet := make(map[uint64]bool)
		for _, k := range d.HotSet(w) {
			hotSet[k] = true
		}
		if len(hotSet) != hot {
			t.Fatalf("window %d: hot set has %d distinct keys, want %d", w, len(hotSet), hot)
		}
		hits := 0
		for i := w * window; i < (w+1)*window; i++ {
			if d.Window(i) != w {
				t.Fatalf("position %d maps to window %d, want %d", i, d.Window(i), w)
			}
			if hotSet[d.At(i)] {
				hits++
			}
		}
		// Exact apportionment: the hot indices' counts are fixed per pass.
		// hotFrac plus the uniform residual the hot keys also receive.
		wantMin := int(float64(window) * hotFrac)
		if hits < wantMin {
			t.Errorf("window %d: hot block got %d/%d ops, want ≥ %d", w, hits, window, wantMin)
		}
	}
	// Rotation: window 1's block starts hot positions further along.
	h0, h1 := d.HotSet(0), d.HotSet(1)
	if h0[0] == h1[0] {
		t.Errorf("hot block did not rotate: window 0 and 1 both start at key %d", h0[0])
	}
	if h1[0] != keys[hot] {
		t.Errorf("window 1 starts at key %d, want %d", h1[0], keys[hot])
	}
}

// TestRotatingHotSetNextMatchesAt checks that concurrent Next calls
// collectively consume exactly the positional schedule At describes.
func TestRotatingHotSetNextMatchesAt(t *testing.T) {
	keys := rotKeys(32)
	const hot, window, total = 2, 128, 1024
	d, err := NewRotatingHotSet(keys, hot, window, 0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64]int)
	for i := 0; i < total; i++ {
		want[d.At(i)]++
	}
	got := make(map[uint64]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make(map[uint64]int)
			for i := 0; i < total/4; i++ {
				local[d.Next()]++
			}
			mu.Lock()
			for k, c := range local {
				got[k] += c
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for k, c := range want {
		if got[k] != c {
			t.Errorf("key %d drawn %d times, want %d", k, got[k], c)
		}
	}
}

// TestRotatingHotSetValidation covers the constructor's error paths.
func TestRotatingHotSetValidation(t *testing.T) {
	keys := rotKeys(8)
	cases := []struct {
		name    string
		keys    []uint64
		hot     int
		window  int
		hotFrac float64
	}{
		{"no keys", nil, 1, 16, 0.5},
		{"hot too big", keys, 9, 16, 0.5},
		{"hot zero", keys, 0, 16, 0.5},
		{"window zero", keys, 2, 0, 0.5},
		{"frac one", keys, 2, 16, 1.0},
		{"frac zero", keys, 2, 16, 0},
	}
	for _, c := range cases {
		if _, err := NewRotatingHotSet(c.keys, c.hot, c.window, c.hotFrac, 1); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
