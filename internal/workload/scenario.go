package workload

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/hash"
	"repro/internal/rng"
)

// OpKind classifies one scheduled operation.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpInsert
	OpDelete
)

// String names the op kind for reports and JSON.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Op is one scheduled operation: a kind and the key it targets.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Scenario is a named, seeded workload: a deterministic schedule of
// operations that every driver — bench, monitor, server, loadgen — realizes
// identically. Position i always maps to the same Op for a given
// (spec, key set, seed), so a schedule is reproducible no matter how many
// goroutines drive it: concurrent callers of Next claim distinct positions
// from one atomic cursor, and the collective realized schedule is exactly
// {At(0), At(1), ...} regardless of which goroutine executed which position.
//
// Read-only scenarios with a stationary distribution additionally expose
// their exact realized support, so exact-contention comparisons (the
// monitor's drift block) run under precisely the driven distribution.
type Scenario struct {
	spec     string
	pass     int
	readOnly bool
	support  []dist.Weighted
	at       func(i uint64) Op
	pos      atomic.Uint64
}

// ScenarioNames returns one canonical instance of every registered scenario
// family, in a stable order — the enumeration CI's battery and the
// conformance tests sweep. Parameterized families appear with their default
// parameters; NewScenario accepts other parameter values too.
func ScenarioNames() []string {
	return []string{
		"uniform",
		"zipf:1.1",
		"point",
		"rotating:8:4096",
		"auction",
		"flood",
	}
}

// NewScenario resolves a scenario spec over the member key set:
//
//	uniform                  uniform reads over the key set
//	zipf:<s>                 Zipf(s) reads, skew toward the first keys
//	point                    every read hits the first key (T3 adversary)
//	rotating:<hot>:<window>  90% of reads on <hot> keys, rotating every <window> ops
//	auction                  rotating hot set with churn: every 8th op is a
//	                         write (alternating delete/insert) on the
//	                         scheduled key; optional auction:<hot>:<window>
//	flood                    adversarial point-mass writes: 90% of ops are
//	                         alternating delete/insert on the first key,
//	                         10% reads of the same key
//
// The schedule is deterministic in (spec, keys, seed). Weighted specs
// realize their distribution exactly per pass (largest-remainder
// apportionment, seeded shuffle); rotating specs use absolute positions, so
// the hot block advances forever without repeating the first window.
func NewScenario(spec string, keys []uint64, seed uint64) (*Scenario, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("workload: scenario %q needs keys", spec)
	}
	switch {
	case spec == "uniform":
		return newWeightedScenario(spec, dist.NewUniformSet(keys, "").Support(), len(keys), seed)
	case strings.HasPrefix(spec, "zipf:"):
		s, err := strconv.ParseFloat(strings.TrimPrefix(spec, "zipf:"), 64)
		if err != nil || s < 0 {
			return nil, fmt.Errorf("workload: bad zipf exponent in scenario %q", spec)
		}
		return newWeightedScenario(spec, dist.NewZipf(keys, s).Support(), len(keys), seed)
	case spec == "point":
		return newWeightedScenario(spec, dist.PointMass{Key: keys[0]}.Support(), len(keys), seed)
	case strings.HasPrefix(spec, "rotating:"):
		hot, window, err := parseHotWindow(spec, "rotating:", keys)
		if err != nil {
			return nil, err
		}
		rot, err := NewRotatingHotSet(keys, hot, window, scenarioHotFrac, seed^scenarioSeedSalt)
		if err != nil {
			return nil, err
		}
		return &Scenario{
			spec:     spec,
			pass:     window,
			readOnly: true,
			at:       func(i uint64) Op { return Op{Kind: OpRead, Key: rot.at(i)} },
		}, nil
	case spec == "auction" || strings.HasPrefix(spec, "auction:"):
		hot, window := 8, 4096
		if spec != "auction" {
			var err error
			if hot, window, err = parseHotWindow(spec, "auction:", keys); err != nil {
				return nil, err
			}
		}
		if hot > len(keys) {
			hot = len(keys)
		}
		rot, err := NewRotatingHotSet(keys, hot, window, scenarioHotFrac, seed^scenarioSeedSalt)
		if err != nil {
			return nil, err
		}
		// Every 8th position is a write on whatever key the rotating schedule
		// put there — overwhelmingly a hot key — with the polarity alternating
		// per write index, so hot keys flip membership over and over: the
		// churn profile two-phase write absorption exists for.
		return &Scenario{
			spec: spec,
			pass: window,
			at: func(i uint64) Op {
				op := Op{Kind: OpRead, Key: rot.at(i)}
				if i%8 == 7 {
					if (i/8)%2 == 0 {
						op.Kind = OpDelete
					} else {
						op.Kind = OpInsert
					}
				}
				return op
			},
		}, nil
	case spec == "flood":
		// Point-mass write flood: blocks of 20 positions, the first 18
		// alternating delete/insert on the first key, the last 2 reading it
		// back — 90% writes, all on one key, membership restored per block.
		target := keys[0]
		return &Scenario{
			spec: spec,
			pass: 20 * 100,
			at: func(i uint64) Op {
				switch m := i % 20; {
				case m >= 18:
					return Op{Kind: OpRead, Key: target}
				case m%2 == 0:
					return Op{Kind: OpDelete, Key: target}
				default:
					return Op{Kind: OpInsert, Key: target}
				}
			},
		}, nil
	}
	return nil, fmt.Errorf("workload: unknown scenario %q (families: %s)",
		spec, strings.Join(ScenarioNames(), ", "))
}

const (
	// scenarioHotFrac is the traffic share of the hot block in the rotating
	// and auction scenarios — the same 90% the monitor's rotating drive and
	// the bench write storm use.
	scenarioHotFrac = 0.9
	// scenarioSeedSalt decorrelates the schedule shuffle from the
	// construction seed the dictionary itself was built with.
	scenarioSeedSalt = 0xd157
)

// newWeightedScenario wraps a WeightedDrive pass as a read-only scenario.
func newWeightedScenario(spec string, support []dist.Weighted, passLen int, seed uint64) (*Scenario, error) {
	drive, err := NewWeightedDrive(support, passLen, seed^scenarioSeedSalt)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		spec:     spec,
		pass:     drive.Len(),
		readOnly: true,
		support:  drive.Realized(),
		at: func(i uint64) Op {
			return Op{Kind: OpRead, Key: drive.At(int(i % uint64(drive.Len())))}
		},
	}, nil
}

// parseHotWindow parses "<family>:<hot>:<window>" specs.
func parseHotWindow(spec, prefix string, keys []uint64) (hot, window int, err error) {
	parts := strings.Split(strings.TrimPrefix(spec, prefix), ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("workload: bad scenario %q (want %s<hot>:<window>)", spec, prefix)
	}
	hot, err1 := strconv.Atoi(parts[0])
	window, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || hot < 1 || window < 1 || hot > len(keys) {
		return 0, 0, fmt.Errorf("workload: bad scenario %q (want %s<hot>:<window> with hot in [1,%d], window ≥ 1)",
			spec, prefix, len(keys))
	}
	return hot, window, nil
}

// Name returns the scenario spec (its registry name).
func (s *Scenario) Name() string { return s.spec }

// PassLen returns the schedule's pass length: weighted scenarios realize
// their distribution exactly every PassLen positions, pattern scenarios
// repeat their op mix at that period (rotation offsets excluded).
func (s *Scenario) PassLen() int { return s.pass }

// ReadOnly reports whether the schedule contains no inserts or deletes —
// such scenarios can drive a static dictionary, and every scheduled read
// targets a member key.
func (s *Scenario) ReadOnly() bool { return s.readOnly }

// Support returns the scenario's exact realized query support, or nil when
// the schedule mutates membership or has no stationary distribution
// (rotating, auction, flood). Exact-contention comparisons under this
// support see zero apportionment error.
func (s *Scenario) Support() []dist.Weighted {
	if s.support == nil {
		return nil
	}
	out := make([]dist.Weighted, len(s.support))
	copy(out, s.support)
	return out
}

// At returns the operation at schedule position i without advancing the
// shared cursor. It is a pure function of (spec, keys, seed, i) — the
// determinism contract the conformance battery pins.
func (s *Scenario) At(i int) Op { return s.at(uint64(i)) }

// Next claims the next schedule position. Safe for concurrent callers: each
// claims a distinct position, so any number of drivers collectively realize
// the exact deterministic schedule.
func (s *Scenario) Next() Op { return s.at(s.pos.Add(1) - 1) }

// MemberKeys draws n distinct member keys deterministically from seed — the
// shared key-set convention: a server built from (n, seed) and a load
// generator pointed at it derive the identical key set, so scheduled
// reads target real members without any key exchange over the wire.
func MemberKeys(n int, seed uint64) []uint64 {
	r := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}
