package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func keysN(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i * 37)
	}
	return keys
}

func TestWorkingSetValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewWorkingSet(nil, 1, 0.5, 0.1, r); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := NewWorkingSet(keysN(10), 0, 0.5, 0.1, r); err == nil {
		t.Error("zero working set accepted")
	}
	if _, err := NewWorkingSet(keysN(10), 11, 0.5, 0.1, r); err == nil {
		t.Error("oversized working set accepted")
	}
	if _, err := NewWorkingSet(keysN(10), 5, 1.5, 0.1, r); err == nil {
		t.Error("locality > 1 accepted")
	}
}

func TestWorkingSetLocality(t *testing.T) {
	keys := keysN(1000)
	r := rng.New(2)
	w, err := NewWorkingSet(keys, 50, 0.9, 0, r) // no churn: fixed hot set
	if err != nil {
		t.Fatal(err)
	}
	hot := map[uint64]bool{}
	for _, i := range w.ws {
		hot[keys[i]] = true
	}
	const trials = 50000
	inHot := 0
	for i := 0; i < trials; i++ {
		if hot[w.Sample(r)] {
			inHot++
		}
	}
	got := float64(inHot) / trials
	// 0.9 locality + 0.1·(50/1000) background hits ≈ 0.905.
	if math.Abs(got-0.905) > 0.02 {
		t.Errorf("hot fraction %v, want ≈ 0.905", got)
	}
}

func TestWorkingSetChurnDrifts(t *testing.T) {
	keys := keysN(500)
	r := rng.New(3)
	w, err := NewWorkingSet(keys, 20, 0.9, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	initial := append([]int(nil), w.ws...)
	for i := 0; i < 2000; i++ {
		w.Sample(r)
	}
	same := 0
	initialSet := map[int]bool{}
	for _, i := range initial {
		initialSet[i] = true
	}
	for _, i := range w.ws {
		if initialSet[i] {
			same++
		}
	}
	if same > len(initial)/2 {
		t.Errorf("working set did not drift: %d/%d members unchanged", same, len(initial))
	}
	// Invariants: ws has no duplicates and matches inWS.
	seen := map[int]bool{}
	for _, i := range w.ws {
		if seen[i] {
			t.Fatal("duplicate working-set member")
		}
		seen[i] = true
		if !w.inWS[i] {
			t.Fatal("inWS out of sync")
		}
	}
	if len(w.inWS) != len(w.ws) {
		t.Fatalf("inWS size %d != ws size %d", len(w.inWS), len(w.ws))
	}
}

func TestScanCycles(t *testing.T) {
	keys := keysN(5)
	s, err := NewScan(keys)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for round := 0; round < 3; round++ {
		for i := range keys {
			if got := s.Sample(r); got != keys[i] {
				t.Fatalf("round %d pos %d: got %d, want %d", round, i, got, keys[i])
			}
		}
	}
	if _, err := NewScan(nil); err == nil {
		t.Error("empty scan accepted")
	}
}

func TestReadMostlyNegative(t *testing.T) {
	keys := keysN(100)
	inSet := map[uint64]bool{}
	for _, k := range keys {
		inSet[k] = true
	}
	q := ReadMostlyNegative(keys, 1<<40, 0.1)
	r := rng.New(5)
	hits := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		if inSet[q.Sample(r)] {
			hits++
		}
	}
	if got := float64(hits) / trials; math.Abs(got-0.1) > 0.01 {
		t.Errorf("hit rate %v, want ≈ 0.1", got)
	}
}

func TestNames(t *testing.T) {
	r := rng.New(6)
	w, _ := NewWorkingSet(keysN(10), 3, 0.8, 0.1, r)
	s, _ := NewScan(keysN(10))
	if w.Name() == "" || s.Name() == "" || w.Name() == s.Name() {
		t.Errorf("bad names: %q %q", w.Name(), s.Name())
	}
}
