package workload

import (
	"fmt"
	"sync"
	"testing"
)

// TestScenarioDeterminism is the registry-wide determinism battery: for
// every registered scenario, the realized key/op schedule for a given seed
// is identical regardless of how many goroutines drive it. Concurrent
// drivers claim distinct positions from the shared cursor, so the multiset
// of executed ops over one claimed prefix must equal the serial schedule's
// prefix exactly. CI runs this under -race at GOMAXPROCS=4.
func TestScenarioDeterminism(t *testing.T) {
	keys := MemberKeys(256, 42)
	for _, spec := range ScenarioNames() {
		t.Run(spec, func(t *testing.T) {
			serial, err := NewScenario(spec, keys, 7)
			if err != nil {
				t.Fatal(err)
			}
			total := serial.PassLen()
			if total > 1<<14 {
				total = 1 << 14
			}
			want := map[Op]int{}
			for i := 0; i < total; i++ {
				want[serial.At(i)]++
			}
			for _, workers := range []int{1, 2, 4, 7} {
				sc, err := NewScenario(spec, keys, 7)
				if err != nil {
					t.Fatal(err)
				}
				got := make([]map[Op]int, workers)
				per := total / workers
				extra := total - per*workers
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					claim := per
					if w < extra {
						claim++
					}
					got[w] = map[Op]int{}
					wg.Add(1)
					go func(w, claim int) {
						defer wg.Done()
						for i := 0; i < claim; i++ {
							got[w][sc.Next()]++
						}
					}(w, claim)
				}
				wg.Wait()
				merged := map[Op]int{}
				for _, m := range got {
					for op, c := range m {
						merged[op] += c
					}
				}
				if len(merged) != len(want) {
					t.Fatalf("%d workers realized %d distinct ops, serial schedule has %d",
						workers, len(merged), len(want))
				}
				for op, c := range want {
					if merged[op] != c {
						t.Fatalf("%d workers realized op %+v %d times, serial schedule %d",
							workers, op, merged[op], c)
					}
				}
			}
		})
	}
}

// TestScenarioAtPure pins At as a pure function: two independently
// constructed instances agree position by position, and At never perturbs
// the shared cursor or later At calls.
func TestScenarioAtPure(t *testing.T) {
	keys := MemberKeys(128, 3)
	for _, spec := range ScenarioNames() {
		a, err := NewScenario(spec, keys, 11)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		b, err := NewScenario(spec, keys, 11)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		const probe = 4096
		// Read b out of order first, then compare in order: order of access
		// must not matter.
		for i := probe - 1; i >= 0; i-- {
			b.At(i)
		}
		for i := 0; i < probe; i++ {
			if a.At(i) != b.At(i) {
				t.Fatalf("%s: At(%d) differs between instances: %+v vs %+v",
					spec, i, a.At(i), b.At(i))
			}
		}
		// A different seed must change the schedule somewhere (point and
		// flood are single-key patterns whose op sequence is seed-free).
		if spec == "point" || spec == "flood" {
			continue
		}
		c, err := NewScenario(spec, keys, 12)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := 0; i < probe; i++ {
			if a.At(i) != c.At(i) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seed 11 and 12 produce identical %d-op prefixes", spec, probe)
		}
	}
}

// TestScenarioGrammar pins the spec parser: accepted forms, defaults, and
// every malformed spec rejected.
func TestScenarioGrammar(t *testing.T) {
	keys := MemberKeys(64, 5)
	for _, good := range []string{
		"uniform", "zipf:0", "zipf:1.2", "point",
		"rotating:4:512", "auction", "auction:4:512", "flood",
	} {
		if _, err := NewScenario(good, keys, 1); err != nil {
			t.Errorf("spec %q rejected: %v", good, err)
		}
	}
	for _, bad := range []string{
		"", "hot", "zipf", "zipf:x", "zipf:-1",
		"rotating:", "rotating:4", "rotating:x:512", "rotating:4:x",
		"rotating:0:512", "rotating:4:0", "rotating:65:512",
		"auction:4", "auction:0:512", "flood:9",
	} {
		if _, err := NewScenario(bad, keys, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if _, err := NewScenario("uniform", nil, 1); err == nil {
		t.Error("empty key set accepted")
	}
}

// TestScenarioShapes pins each family's semantic contract: op mix, key
// targeting, read-only flag, and support exposure.
func TestScenarioShapes(t *testing.T) {
	keys := MemberKeys(64, 9)
	inKeys := map[uint64]bool{}
	for _, k := range keys {
		inKeys[k] = true
	}

	counts := func(s *Scenario, n int) (reads, inserts, deletes int) {
		for i := 0; i < n; i++ {
			op := s.At(i)
			if !inKeys[op.Key] {
				t.Fatalf("%s: At(%d) targets non-member key %d", s.Name(), i, op.Key)
			}
			switch op.Kind {
			case OpRead:
				reads++
			case OpInsert:
				inserts++
			case OpDelete:
				deletes++
			}
		}
		return
	}

	for _, spec := range []string{"uniform", "zipf:1.1", "point", "rotating:8:4096"} {
		s, err := NewScenario(spec, keys, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !s.ReadOnly() {
			t.Errorf("%s: not read-only", spec)
		}
		reads, ins, del := counts(s, s.PassLen())
		if ins != 0 || del != 0 || reads != s.PassLen() {
			t.Errorf("%s: op mix %d/%d/%d over pass %d", spec, reads, ins, del, s.PassLen())
		}
	}

	uni, _ := NewScenario("uniform", keys, 1)
	if sup := uni.Support(); len(sup) != len(keys) {
		t.Errorf("uniform support has %d keys, want %d", len(sup), len(keys))
	}
	pt, _ := NewScenario("point", keys, 1)
	if sup := pt.Support(); len(sup) != 1 || sup[0].Key != keys[0] || sup[0].P != 1 {
		t.Errorf("point support %v", sup)
	}
	for i := 0; i < 64; i++ {
		if op := pt.At(i); op.Key != keys[0] {
			t.Fatalf("point At(%d) = key %d, want %d", i, op.Key, keys[0])
		}
	}
	rot, _ := NewScenario("rotating:8:4096", keys, 1)
	if rot.Support() != nil {
		t.Error("rotating scenario claims a stationary support")
	}

	auction, err := NewScenario("auction", keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if auction.ReadOnly() || auction.Support() != nil {
		t.Error("auction should be mutating with no support")
	}
	reads, ins, del := counts(auction, auction.PassLen())
	writes := ins + del
	if want := auction.PassLen() / 8; writes != want || ins != del {
		t.Errorf("auction writes %d (ins %d del %d), want %d balanced", writes, ins, del, want)
	}
	if reads != auction.PassLen()-writes {
		t.Errorf("auction reads %d", reads)
	}

	flood, err := NewScenario("flood", keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flood.ReadOnly() || flood.Support() != nil {
		t.Error("flood should be mutating with no support")
	}
	reads, ins, del = counts(flood, flood.PassLen())
	if ins != del || ins+del != flood.PassLen()*9/10 {
		t.Errorf("flood op mix reads=%d ins=%d del=%d over pass %d", reads, ins, del, flood.PassLen())
	}
	for i := 0; i < 128; i++ {
		if op := flood.At(i); op.Key != keys[0] {
			t.Fatalf("flood At(%d) targets key %d, want point mass on %d", i, op.Key, keys[0])
		}
	}
}

// TestMemberKeys pins the shared key-derivation convention: deterministic,
// distinct, and stable across instance counts — the contract that lets
// lcds-loadgen reconstruct a server's key set from (n, seed) alone.
func TestMemberKeys(t *testing.T) {
	a := MemberKeys(512, 77)
	b := MemberKeys(512, 77)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("MemberKeys not deterministic")
	}
	// A prefix request yields a prefix of the longer draw.
	c := MemberKeys(64, 77)
	for i, k := range c {
		if a[i] != k {
			t.Fatalf("MemberKeys(64) diverges from MemberKeys(512) at %d", i)
		}
	}
	seen := map[uint64]bool{}
	for _, k := range a {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	if d := MemberKeys(64, 78); fmt.Sprint(c) == fmt.Sprint(d) {
		t.Error("seed change did not move the key set")
	}
}
