package cellprobe

import (
	"fmt"
	"math"
)

// Span is probability mass spread uniformly over a contiguous range of flat
// cell indices: each of the Count cells starting at Start receives
// Mass/Count. The query algorithms of this repository only ever randomize
// uniformly within replica ranges, so spans represent their probe
// distributions exactly and compactly.
type Span struct {
	Start int
	Count int
	Mass  float64
}

// PerCell returns the probability assigned to each individual cell in the span.
func (sp Span) PerCell() float64 { return sp.Mass / float64(sp.Count) }

// StepSpec is the probe distribution of one step: a sub-stochastic set of
// spans (total mass ≤ 1; < 1 when the step executes only conditionally).
type StepSpec []Span

// Mass returns the total probability that this step performs a probe.
func (s StepSpec) Mass() float64 {
	total := 0.0
	for _, sp := range s {
		total += sp.Mass
	}
	return total
}

// ProbeSpec is the exact per-step probe distribution of one query input x on
// a fixed table — the row P_t(x, ·) of the paper's probe matrices for every
// step t (§1.1: Pt(x, j) = Pr[I_t(x) = j]).
type ProbeSpec []StepSpec

// Validate checks that the spec is well-formed for a table of the given cell
// count: spans in range, counts positive, masses non-negative, and each
// step's total mass ≤ 1 + ε.
func (p ProbeSpec) Validate(cells int) error {
	const eps = 1e-9
	for t, step := range p {
		mass := 0.0
		for _, sp := range step {
			if sp.Count <= 0 {
				return fmt.Errorf("step %d: span count %d", t, sp.Count)
			}
			if sp.Start < 0 || sp.Start+sp.Count > cells {
				return fmt.Errorf("step %d: span [%d,%d) outside table of %d cells", t, sp.Start, sp.Start+sp.Count, cells)
			}
			if sp.Mass < -eps || math.IsNaN(sp.Mass) {
				return fmt.Errorf("step %d: span mass %v", t, sp.Mass)
			}
			mass += sp.Mass
		}
		if mass > 1+eps {
			return fmt.Errorf("step %d: total mass %v exceeds 1", t, mass)
		}
	}
	return nil
}

// MaxCellProb returns, for each step, the largest single-cell probability in
// that step — max_j P_t(x, j). This is the quantity constraint (2) of
// Lemma 14 bounds by φ*/q_x.
func (p ProbeSpec) MaxCellProb() []float64 {
	out := make([]float64, len(p))
	for t, step := range p {
		// Spans within one step may overlap (e.g. two conditional branches
		// probing the same replica range); accumulate per-cell via a sparse
		// sweep over span boundaries.
		out[t] = maxOverlap(step)
	}
	return out
}

// maxOverlap computes the maximum per-cell mass of a set of spans, allowing
// overlaps, by a boundary sweep.
func maxOverlap(step StepSpec) float64 {
	if len(step) == 0 {
		return 0
	}
	type edge struct {
		pos   int
		delta float64
	}
	edges := make([]edge, 0, 2*len(step))
	for _, sp := range step {
		pc := sp.PerCell()
		edges = append(edges, edge{sp.Start, pc}, edge{sp.Start + sp.Count, -pc})
	}
	// Insertion sort by position: span lists are tiny (≤ a few dozen).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j].pos < edges[j-1].pos; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	best, cur := 0.0, 0.0
	for i, e := range edges {
		cur += e.delta
		// Only evaluate at the end of a position group.
		if i+1 < len(edges) && edges[i+1].pos == e.pos {
			continue
		}
		if cur > best {
			best = cur
		}
	}
	return best
}

// UniformSpan builds the common case: one probe chosen uniformly among count
// replicas starting at flat index start, executed with the given probability.
func UniformSpan(start, count int, mass float64) StepSpec {
	return StepSpec{{Start: start, Count: count, Mass: mass}}
}

// PointSpan builds a deterministic probe of a single cell with the given mass.
func PointSpan(index int, mass float64) StepSpec {
	return StepSpec{{Start: index, Count: 1, Mass: mass}}
}
