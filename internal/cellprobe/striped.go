package cellprobe

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// stripePad pads each stripe to its own cache line so that concurrent
// adders on different stripes never write the same line.
const stripePad = 64

type stripe struct {
	n atomic.Uint64
	_ [stripePad - 8]byte
}

// StripedCounter is a probe counter safe for concurrent addition from a
// lock-free read path. Each adder lands on a per-goroutine stripe (cached
// through a sync.Pool, so in the steady state each P owns one), keeping the
// counter itself from becoming the shared hot cell the structures around it
// are designed to avoid. Sum is a full-sweep read and may miss additions
// concurrent with it; callers wanting an exact total must quiesce first.
type StripedCounter struct {
	stripes []stripe
	mask    uint64
	next    atomic.Uint64
	pool    sync.Pool // *uint64: cached stripe index
}

// NewStripedCounter returns a counter with at least GOMAXPROCS stripes,
// rounded up to a power of two.
func NewStripedCounter() *StripedCounter {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	c := &StripedCounter{stripes: make([]stripe, n), mask: uint64(n - 1)}
	c.pool.New = func() any {
		i := new(uint64)
		*i = c.next.Add(1) - 1
		return i
	}
	return c
}

// Add adds delta to the calling goroutine's stripe.
func (c *StripedCounter) Add(delta uint64) {
	h := c.pool.Get().(*uint64)
	i := *h & c.mask
	c.pool.Put(h)
	c.stripes[i].n.Add(delta)
}

// Sum returns the total across all stripes.
func (c *StripedCounter) Sum() uint64 {
	var total uint64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}
