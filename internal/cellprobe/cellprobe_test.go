package cellprobe

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestTableShape(t *testing.T) {
	tab := New(3, 10)
	if tab.Rows() != 3 || tab.Width() != 10 || tab.Size() != 30 {
		t.Fatalf("shape = %d×%d size %d", tab.Rows(), tab.Width(), tab.Size())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", shape[0], shape[1])
				}
			}()
			New(shape[0], shape[1])
		}()
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	tab := New(4, 7)
	want := Cell{Lo: 0xdead, Hi: 0xbeef}
	tab.Set(2, 3, want)
	if got := tab.At(2, 3); got != want {
		t.Errorf("At = %+v, want %+v", got, want)
	}
	if got := tab.AtIndex(tab.Index(2, 3)); got != want {
		t.Errorf("AtIndex = %+v, want %+v", got, want)
	}
	if got := tab.At(2, 4); got != (Cell{}) {
		t.Errorf("untouched cell = %+v, want zero", got)
	}
}

func TestIndexPanicsOutOfRange(t *testing.T) {
	tab := New(2, 5)
	bad := [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 5}}
	for _, rc := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%d,%d) did not panic", rc[0], rc[1])
				}
			}()
			tab.Index(rc[0], rc[1])
		}()
	}
}

func TestSetBlockRow(t *testing.T) {
	tab := New(3, 10)
	// Row 0: constant backing.
	tab.SetBlockRow(0, []Cell{{Lo: 7}}, 10)
	// Row 1: two blocks of 5.
	tab.SetBlockRow(1, []Cell{{Lo: 1}, {Lo: 2}}, 5)
	// Row 2: dense.
	tab.Set(2, 3, Cell{Lo: 99})

	for j := 0; j < 10; j++ {
		if got := tab.At(0, j); got.Lo != 7 {
			t.Fatalf("constant row col %d = %+v", j, got)
		}
		want := uint64(1)
		if j >= 5 {
			want = 2
		}
		if got := tab.At(1, j); got.Lo != want {
			t.Fatalf("block row col %d = %+v, want %d", j, got, want)
		}
	}
	if tab.At(2, 3).Lo != 99 || tab.At(2, 4) != (Cell{}) {
		t.Error("dense row broken")
	}
	// Probes read through the backing and are recorded at virtual indices.
	rec := NewRecorder(tab.Size())
	tab.Attach(rec)
	if got := tab.Probe(0, 1, 7); got.Lo != 2 {
		t.Errorf("Probe through block = %+v", got)
	}
	tab.Detach()
	if rec.Total[tab.Index(1, 7)] != 1 {
		t.Error("probe not recorded at virtual index")
	}
	// Heap accounting: 1 + 2 block values + 10 dense cells.
	if got := tab.HeapCells(); got != 13 {
		t.Errorf("HeapCells = %d, want 13", got)
	}
	// Size still reports the model's full space.
	if tab.Size() != 30 {
		t.Errorf("Size = %d", tab.Size())
	}
}

func TestSetBlockRowTrailingCap(t *testing.T) {
	// Width 10, blk 3, 4 values: cols 9 uses values[3].
	tab := New(1, 10)
	tab.SetBlockRow(0, []Cell{{Lo: 1}, {Lo: 2}, {Lo: 3}, {Lo: 4}}, 3)
	if got := tab.At(0, 9).Lo; got != 4 {
		t.Errorf("col 9 = %d, want 4", got)
	}
	// Width 10, blk 4, 2 values: col 8,9 map to index 2 -> capped at 1.
	tab2 := New(1, 10)
	tab2.SetBlockRow(0, []Cell{{Lo: 1}, {Lo: 2}}, 4)
	if got := tab2.At(0, 9).Lo; got != 2 {
		t.Errorf("capped col 9 = %d, want 2", got)
	}
}

func TestSetOnCompactRowPanics(t *testing.T) {
	tab := New(1, 4)
	tab.SetBlockRow(0, []Cell{{Lo: 1}}, 4)
	defer func() {
		if recover() == nil {
			t.Error("Set on compact row did not panic")
		}
	}()
	tab.Set(0, 0, Cell{})
}

func TestSetBlockRowValidation(t *testing.T) {
	tab := New(2, 10)
	for _, f := range []func(){
		func() { tab.SetBlockRow(-1, []Cell{{}}, 1) },
		func() { tab.SetBlockRow(0, nil, 1) },
		func() { tab.SetBlockRow(0, []Cell{{}}, 0) },
		func() { tab.SetBlockRow(0, []Cell{{}}, 2) }, // 1 value of block 2 cannot cover 10
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid SetBlockRow did not panic")
				}
			}()
			f()
		}()
	}
}

func TestLazyRowsReadZero(t *testing.T) {
	tab := New(2, 5)
	if tab.At(1, 4) != (Cell{}) {
		t.Error("unallocated row not zero")
	}
	if tab.HeapCells() != 0 {
		t.Errorf("HeapCells = %d before any write", tab.HeapCells())
	}
}

func TestRecorderCounts(t *testing.T) {
	tab := New(2, 4)
	rec := NewRecorder(tab.Size())
	tab.Attach(rec)
	// Query 1: probe (0,1) at step 0, (1,2) at step 1.
	tab.Probe(0, 0, 1)
	tab.Probe(1, 1, 2)
	rec.EndQuery()
	// Query 2: probe (0,1) at step 0 twice (adaptive revisit) and stop.
	tab.Probe(0, 0, 1)
	tab.Probe(0, 0, 1)
	rec.EndQuery()
	tab.Detach()
	// After detach, probes are not recorded.
	tab.Probe(0, 0, 0)

	if rec.Queries != 2 {
		t.Fatalf("Queries = %d", rec.Queries)
	}
	if got := rec.Total[tab.Index(0, 1)]; got != 3 {
		t.Errorf("Total[(0,1)] = %d, want 3", got)
	}
	if got := rec.Total[tab.Index(0, 0)]; got != 0 {
		t.Errorf("post-detach probe recorded")
	}
	if got := rec.PerStep[0][tab.Index(0, 1)]; got != 3 {
		t.Errorf("PerStep[0][(0,1)] = %d, want 3", got)
	}
	if got := rec.PerStep[1][tab.Index(1, 2)]; got != 1 {
		t.Errorf("PerStep[1][(1,2)] = %d, want 1", got)
	}
	if got := rec.ProbesPerQuery(); got != 2.0 {
		t.Errorf("ProbesPerQuery = %v, want 2", got)
	}
	if got := rec.MaxStepContention(); got != 1.5 {
		t.Errorf("MaxStepContention = %v, want 1.5", got)
	}
	if got := rec.MaxTotalContention(); got != 1.5 {
		t.Errorf("MaxTotalContention = %v, want 1.5", got)
	}
	if got := rec.StepMass(0); got != 1.5 {
		t.Errorf("StepMass(0) = %v, want 1.5", got)
	}
	if got := rec.StepMass(1); got != 0.5 {
		t.Errorf("StepMass(1) = %v, want 0.5", got)
	}
	if got := rec.StepMass(7); got != 0 {
		t.Errorf("StepMass(7) = %v, want 0", got)
	}
}

func TestEmptyRecorder(t *testing.T) {
	rec := NewRecorder(10)
	if rec.MaxStepContention() != 0 || rec.MaxTotalContention() != 0 || rec.ProbesPerQuery() != 0 {
		t.Error("empty recorder not all-zero")
	}
}

func TestProbeIndexPanics(t *testing.T) {
	tab := New(1, 3)
	defer func() {
		if recover() == nil {
			t.Error("ProbeIndex(3) did not panic")
		}
	}()
	tab.ProbeIndex(0, 3)
}

func TestSpanPerCell(t *testing.T) {
	sp := Span{Start: 0, Count: 4, Mass: 1}
	if sp.PerCell() != 0.25 {
		t.Errorf("PerCell = %v", sp.PerCell())
	}
}

func TestStepSpecMass(t *testing.T) {
	s := StepSpec{{0, 2, 0.5}, {10, 1, 0.25}}
	if got := s.Mass(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Mass = %v, want 0.75", got)
	}
}

func TestValidate(t *testing.T) {
	good := ProbeSpec{
		UniformSpan(0, 10, 1),
		PointSpan(5, 0.5),
		{},
	}
	if err := good.Validate(10); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []ProbeSpec{
		{StepSpec{{Start: -1, Count: 2, Mass: 1}}},
		{StepSpec{{Start: 9, Count: 2, Mass: 1}}},
		{StepSpec{{Start: 0, Count: 0, Mass: 1}}},
		{StepSpec{{Start: 0, Count: 1, Mass: -0.5}}},
		{StepSpec{{Start: 0, Count: 1, Mass: 0.7}, {Start: 1, Count: 1, Mass: 0.7}}},
	}
	for i, p := range bad {
		if err := p.Validate(10); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestMaxCellProbDisjoint(t *testing.T) {
	p := ProbeSpec{
		StepSpec{{0, 4, 1}},                // 0.25 each
		StepSpec{{0, 1, 0.5}, {5, 5, 0.5}}, // 0.5 point, 0.1 each
	}
	got := p.MaxCellProb()
	if math.Abs(got[0]-0.25) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Errorf("MaxCellProb = %v", got)
	}
}

func TestMaxCellProbOverlapping(t *testing.T) {
	// Two overlapping spans: [0,4) at 0.25/cell and [2,6) at 0.1/cell.
	// Cells 2,3 receive 0.35.
	p := ProbeSpec{StepSpec{{0, 4, 1.0}, {2, 4, 0.4}}}
	got := p.MaxCellProb()[0]
	if math.Abs(got-0.35) > 1e-12 {
		t.Errorf("overlap max = %v, want 0.35", got)
	}
}

func TestMaxCellProbEmptyStep(t *testing.T) {
	p := ProbeSpec{StepSpec{}}
	if got := p.MaxCellProb()[0]; got != 0 {
		t.Errorf("empty step max = %v", got)
	}
}

// TestMaxCellProbMatchesBruteForce cross-checks the sweep against a dense
// per-cell accumulation on random span sets.
func TestMaxCellProbMatchesBruteForce(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		const cells = 50
		nspans := 1 + r.Intn(6)
		step := make(StepSpec, nspans)
		for i := range step {
			start := r.Intn(cells)
			count := 1 + r.Intn(cells-start)
			step[i] = Span{Start: start, Count: count, Mass: r.Float64() / float64(nspans)}
		}
		dense := make([]float64, cells)
		for _, sp := range step {
			for j := sp.Start; j < sp.Start+sp.Count; j++ {
				dense[j] += sp.PerCell()
			}
		}
		want := 0.0
		for _, v := range dense {
			if v > want {
				want = v
			}
		}
		got := ProbeSpec{step}.MaxCellProb()[0]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: sweep %v, brute force %v (spans %+v)", trial, got, want, step)
		}
	}
}

// Property: recorded Monte-Carlo step mass of an always-executed step is 1.
func TestRecorderStepMassProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tab := New(1, 16)
		rec := NewRecorder(tab.Size())
		tab.Attach(rec)
		const q = 50
		for i := 0; i < q; i++ {
			tab.Probe(0, 0, r.Intn(16))
			rec.EndQuery()
		}
		return math.Abs(rec.StepMass(0)-1.0) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkProbeRecorded(b *testing.B) {
	tab := New(4, 1024)
	rec := NewRecorder(tab.Size())
	tab.Attach(rec)
	for i := 0; i < b.N; i++ {
		tab.Probe(i&3, i&3, i&1023)
	}
}

// TestForwardTo checks probe mirroring onto a parent table: recorder, trace
// and chained forwarding all see the translated (step, cell) coordinates
// while the probe reads the child's own cells.
func TestForwardTo(t *testing.T) {
	child := New(1, 4)
	child.Set(0, 2, Cell{Lo: 7, Hi: 9})
	parent := New(1, 10)
	grand := New(1, 20)

	prec := NewRecorder(parent.Size())
	parent.Attach(prec)
	var traced []int
	parent.SetTrace(func(step, cell int) { traced = append(traced, step, cell) })
	grec := NewRecorder(grand.Size())
	grand.Attach(grec)

	parent.ForwardTo(grand, 10, 1) // parent cell c → grand cell 10+c, step s → s+1
	child.ForwardTo(parent, 6, 1)  // child cell c → parent cell 6+c, step s → s+1

	c := child.Probe(0, 0, 2)
	if c.Lo != 7 || c.Hi != 9 {
		t.Fatalf("probe read %+v, want the child's own cell", c)
	}
	child.ProbeIndex(2, 3)

	// Parent accounting: child (0,2) → (1,8); child (2,3) → (3,9).
	if prec.Total[8] != 1 || prec.Total[9] != 1 {
		t.Fatalf("parent totals %v", prec.Total)
	}
	if prec.PerStep[1][8] != 1 || prec.PerStep[3][9] != 1 {
		t.Fatalf("parent per-step counts wrong: %v", prec.PerStep)
	}
	if len(traced) != 4 || traced[0] != 1 || traced[1] != 8 || traced[2] != 3 || traced[3] != 9 {
		t.Fatalf("parent trace %v", traced)
	}
	// Chained forwarding: parent (1,8) → grand (2,18); (3,9) → (4,19).
	if grec.Total[18] != 1 || grec.Total[19] != 1 {
		t.Fatalf("grandparent totals %v", grec.Total)
	}
	if grec.PerStep[2][18] != 1 || grec.PerStep[4][19] != 1 {
		t.Fatalf("grandparent per-step counts wrong: %v", grec.PerStep)
	}
	// The child's own accounting is untouched by forwarding.
	if child.Recorder() != nil {
		t.Fatal("forwarding attached a recorder to the child")
	}

	// Detaching the link stops the mirroring.
	child.ForwardTo(nil, 0, 0)
	child.Probe(0, 0, 1)
	if prec.Total[7] != 0 {
		t.Fatal("probe forwarded after ForwardTo(nil)")
	}
}
