// Package cellprobe implements the paper's model of computation (§1.1):
// a table of s cells of b bits each, probed by a randomized adaptive query
// algorithm, with per-cell per-step contention accounting.
//
// Three accounting mechanisms coexist:
//
//   - a Recorder counts actual probes during Monte-Carlo query execution,
//     yielding the empirical contention Φ̂_t(j) = probes_t(j) / queries;
//   - a ProbeSpec describes a query's exact per-step probe distribution as
//     a set of uniform spans, from which package contention computes the
//     exact Φ_t = q·P_t of Definition 1 without sampling;
//   - a ProbeSink observes the live probe stream concurrently — the
//     production telemetry hook (internal/telemetry), counting on striped
//     counters instead of the Recorder's sequential dense matrices.
//
// Cells are 128 bits (b = Θ(log N) for the 2^61-key universe; wide enough
// that one cell holds a full pairwise hash function, preserving the paper's
// one-probe-per-row table layout).
//
// Rows may be backed densely (one Go value per cell) or compactly
// (SetBlockRow): a row whose content repeats in blocks — the replicated
// rows of the paper's construction — stores one value per block while
// still *accounting* for the full s cells of model space. Compact backing
// changes nothing observable through At/Probe.
package cellprobe

import (
	"fmt"
	"unsafe"

	"repro/internal/cpu"
)

// Cell is one b-bit memory cell, b = 128.
type Cell struct {
	Lo, Hi uint64
}

// Table is a rows × width grid of cells addressed either two-dimensionally
// (row, col) following the paper's §2.2 layout, or by flat index
// row*width + col. The zero column count is invalid; use New.
type Table struct {
	rows  int
	width int
	dense [][]Cell   // dense[r] allocated on first Set of row r
	block []blockRow // block[r].values non-nil for compact rows
	rec   *Recorder
	trace func(step, cell int)
	sink  ProbeSink
	fwd   *forward
}

// forward re-records this table's probes on a parent table's accounting at
// translated coordinates — how a composite structure (internal/shard) makes
// its sub-tables' probes visible to a recorder or trace attached to the
// composite.
type forward struct {
	parent  *Table
	cellOff int
	stepOff int
}

func (f *forward) record(step, cell int) {
	step, cell = step+f.stepOff, cell+f.cellOff
	if f.parent.rec != nil {
		f.parent.rec.record(step, cell)
	}
	if f.parent.trace != nil {
		f.parent.trace(step, cell)
	}
	if f.parent.sink != nil {
		f.parent.sink.ProbeObserved(step, cell)
	}
	if f.parent.fwd != nil {
		f.parent.fwd.record(step, cell)
	}
}

// blockRow is a shared backing for a row whose content is constant on
// consecutive blocks of blk columns.
type blockRow struct {
	values []Cell
	blk    int
}

func (b blockRow) at(col int) Cell {
	i := col / b.blk
	if i >= len(b.values) {
		i = len(b.values) - 1
	}
	return b.values[i]
}

// New allocates a table of the given shape with all cells zero. Row storage
// is allocated lazily on first write, so compact tables never materialize
// their replicated rows.
func New(rows, width int) *Table {
	if rows < 1 || width < 1 {
		panic(fmt.Sprintf("cellprobe: invalid table shape %d×%d", rows, width))
	}
	return &Table{
		rows:  rows,
		width: width,
		dense: make([][]Cell, rows),
		block: make([]blockRow, rows),
	}
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Width returns the number of cells per row (the paper's s).
func (t *Table) Width() int { return t.width }

// Size returns the total number of cells — the model's space usage, which
// counts replicated cells at full size regardless of backing.
func (t *Table) Size() int { return t.rows * t.width }

// HeapCells returns the number of Cell values actually allocated — the Go
// memory footprint (compact rows count one value per block).
func (t *Table) HeapCells() int {
	total := 0
	for r := 0; r < t.rows; r++ {
		total += len(t.dense[r]) + len(t.block[r].values)
	}
	return total
}

// Index converts (row, col) to a flat cell index.
func (t *Table) Index(row, col int) int {
	if row < 0 || row >= t.rows || col < 0 || col >= t.width {
		panic(fmt.Sprintf("cellprobe: index (%d,%d) out of %d×%d table", row, col, t.rows, t.width))
	}
	return row*t.width + col
}

// read returns the cell value honoring the row's backing.
func (t *Table) read(row, col int) Cell {
	if b := t.block[row]; b.values != nil {
		return b.at(col)
	}
	if d := t.dense[row]; d != nil {
		return d[col]
	}
	return Cell{}
}

// Set writes a cell during construction. Construction writes are not probes
// and are never recorded. Writing to a compact row panics — replace the
// backing with SetBlockRow instead.
func (t *Table) Set(row, col int, c Cell) {
	i := t.Index(row, col) // bounds check
	_ = i
	if t.block[row].values != nil {
		panic(fmt.Sprintf("cellprobe: Set on compact row %d", row))
	}
	if t.dense[row] == nil {
		t.dense[row] = make([]Cell, t.width)
	}
	t.dense[row][col] = c
}

// SetBlockRow installs a compact backing for a row whose content is
// values[col/blk] (with the last value covering any trailing columns).
// It requires blk ≥ 1 and len(values)·blk ≥ width − blk (the values must
// cover the row) and replaces any dense data previously written to the row.
func (t *Table) SetBlockRow(row int, values []Cell, blk int) {
	if row < 0 || row >= t.rows {
		panic(fmt.Sprintf("cellprobe: row %d out of range", row))
	}
	if blk < 1 || len(values) == 0 {
		panic("cellprobe: SetBlockRow needs blk ≥ 1 and values")
	}
	if len(values)*blk+blk <= t.width {
		panic(fmt.Sprintf("cellprobe: %d values of block %d do not cover width %d", len(values), blk, t.width))
	}
	t.dense[row] = nil
	t.block[row] = blockRow{values: values, blk: blk}
}

// At reads a cell without recording a probe. Only construction and test
// oracles may use it; query algorithms must use Probe.
func (t *Table) At(row, col int) Cell {
	t.Index(row, col) // bounds check
	return t.read(row, col)
}

// AtIndex reads by flat index without recording a probe.
func (t *Table) AtIndex(i int) Cell {
	if i < 0 || i >= t.Size() {
		panic(fmt.Sprintf("cellprobe: flat index %d out of range %d", i, t.Size()))
	}
	return t.read(i/t.width, i%t.width)
}

// PrefetchCell hints that cell (row, col) will be probed soon, resolving the
// row's backing (dense or compact block) to the Go value that actually holds
// the cell and issuing a hardware prefetch for its cache line. A prefetch is
// not a probe of the cell-probe model: it transfers no value and is never
// recorded — only the later Probe of the same cell is. Out-of-range or
// unwritten targets are silently ignored (a hint must never fault).
func (t *Table) PrefetchCell(row, col int) {
	if row < 0 || row >= t.rows || col < 0 || col >= t.width {
		return
	}
	if b := t.block[row]; b.values != nil {
		i := col / b.blk
		if i >= len(b.values) {
			i = len(b.values) - 1
		}
		cpu.Prefetch(unsafe.Pointer(&b.values[i]))
		return
	}
	if d := t.dense[row]; d != nil {
		cpu.Prefetch(unsafe.Pointer(&d[col]))
	}
}

// Probe performs a recorded query probe of cell (row, col) at the given
// 0-based step number and returns the cell contents.
func (t *Table) Probe(step, row, col int) Cell {
	i := t.Index(row, col)
	if t.rec != nil {
		t.rec.record(step, i)
	}
	if t.trace != nil {
		t.trace(step, i)
	}
	if t.sink != nil {
		t.sink.ProbeObserved(step, i)
	}
	if t.fwd != nil {
		t.fwd.record(step, i)
	}
	return t.read(row, col)
}

// ProbeIndex performs a recorded query probe by flat cell index.
func (t *Table) ProbeIndex(step, i int) Cell {
	if i < 0 || i >= t.Size() {
		panic(fmt.Sprintf("cellprobe: flat index %d out of range %d", i, t.Size()))
	}
	if t.rec != nil {
		t.rec.record(step, i)
	}
	if t.trace != nil {
		t.trace(step, i)
	}
	if t.sink != nil {
		t.sink.ProbeObserved(step, i)
	}
	if t.fwd != nil {
		t.fwd.record(step, i)
	}
	return t.read(i/t.width, i%t.width)
}

// ForwardTo mirrors every future Probe/ProbeIndex of t onto parent's
// accounting (recorder, trace, and any further forwarding) at flat cell
// index cellOffset + local index and step stepOffset + local step. The
// probe still reads t's own cells; only the accounting is forwarded.
// Pass a nil parent to remove the link. Like Attach/SetTrace, ForwardTo
// must not race with probes.
func (t *Table) ForwardTo(parent *Table, cellOffset, stepOffset int) {
	if parent == nil {
		t.fwd = nil
		return
	}
	t.fwd = &forward{parent: parent, cellOff: cellOffset, stepOff: stepOffset}
}

// SetTrace installs a per-probe callback invoked with (step, flat cell
// index) on every Probe/ProbeIndex. Pass nil to remove it. The memory
// simulator uses it to capture the exact probe sequence of a query.
func (t *Table) SetTrace(f func(step, cell int)) { t.trace = f }

// Attach installs a recorder that accumulates probe counts until Detach.
// Attaching replaces any previous recorder.
func (t *Table) Attach(r *Recorder) { t.rec = r }

// Detach removes the recorder.
func (t *Table) Detach() { t.rec = nil }

// Recorder returns the attached recorder, or nil.
func (t *Table) Recorder() *Recorder { return t.rec }

// Recorder accumulates per-step, per-cell probe counts over a sequence of
// query executions. Divide by Queries to estimate contention.
type Recorder struct {
	cells   int
	Queries int        // number of queries executed (incremented by EndQuery)
	Total   []uint64   // Total[i] = probes to cell i summed over all steps
	PerStep [][]uint64 // PerStep[t][i], allocated lazily per step
	probes  uint64     // total probes across all queries
}

// NewRecorder creates a recorder for a table with the given cell count.
func NewRecorder(cells int) *Recorder {
	return &Recorder{cells: cells, Total: make([]uint64, cells)}
}

func (r *Recorder) record(step, cell int) {
	r.Total[cell]++
	r.probes++
	for len(r.PerStep) <= step {
		r.PerStep = append(r.PerStep, nil)
	}
	if r.PerStep[step] == nil {
		r.PerStep[step] = make([]uint64, r.cells)
	}
	r.PerStep[step][cell]++
}

// EndQuery marks the completion of one query execution.
func (r *Recorder) EndQuery() { r.Queries++ }

// Steps returns the number of distinct step indices observed.
func (r *Recorder) Steps() int { return len(r.PerStep) }

// ProbesPerQuery returns the mean number of probes per executed query.
func (r *Recorder) ProbesPerQuery() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.probes) / float64(r.Queries)
}

// MaxStepContention returns max over steps t and cells j of Φ̂_t(j) =
// PerStep[t][j] / Queries — the empirical analogue of the φ in
// Definition 2's (s,b,t,φ)-balanced scheme.
func (r *Recorder) MaxStepContention() float64 {
	if r.Queries == 0 {
		return 0
	}
	var best uint64
	for _, step := range r.PerStep {
		for _, c := range step {
			if c > best {
				best = c
			}
		}
	}
	return float64(best) / float64(r.Queries)
}

// MaxTotalContention returns max_j Φ̂(j) = Total[j] / Queries, the total
// contention of Definition 1.
func (r *Recorder) MaxTotalContention() float64 {
	if r.Queries == 0 {
		return 0
	}
	var best uint64
	for _, c := range r.Total {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(r.Queries)
}

// StepMass returns the total probe mass recorded at step t divided by
// Queries; ≤ 1, and exactly 1 for steps every query executes.
func (r *Recorder) StepMass(t int) float64 {
	if r.Queries == 0 || t >= len(r.PerStep) || r.PerStep[t] == nil {
		return 0
	}
	var sum uint64
	for _, c := range r.PerStep[t] {
		sum += c
	}
	return float64(sum) / float64(r.Queries)
}
