package cellprobe

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// vecPad is the number of leading and trailing counter slots left unused in
// each stripe's backing array, so that two stripes allocated adjacently by
// the runtime never share a cache line at their boundaries (8 × 8-byte
// counters = one 64-byte line on each side).
const vecPad = 8

// StripedVector generalizes StripedCounter from one counter to a vector of
// them: N logical counters, each the sum of S per-stripe cells. An adder
// lands on a per-goroutine stripe (the same sync.Pool-cached handle
// discipline as StripedCounter), so concurrent adders on different Ps write
// disjoint backing arrays and never false-share a cache line even when they
// increment *adjacent* logical counters — the failure mode a single shared
// atomic array would have on the dictionary's replica blocks, where nearby
// cells are probed by different goroutines in the same instant.
//
// Sum and SumInto are full-sweep reads and may miss additions concurrent
// with them; callers wanting exact totals must quiesce first. The memory
// cost is S × N words, so stripe counts default low (min(GOMAXPROCS, 8)).
type StripedVector struct {
	stripes [][]atomic.Uint64 // each stripe: vecPad + length + vecPad slots
	length  int
	mask    uint64
	next    atomic.Uint64
	pool    sync.Pool // *uint64: cached stripe index
}

// maxVectorStripes caps the per-vector memory multiplier: beyond 8 stripes
// the false-sharing return is negligible next to S × N words of memory.
const maxVectorStripes = 8

// DefaultVectorStripes returns the default stripe count: min(GOMAXPROCS, 8)
// rounded up to a power of two.
func DefaultVectorStripes() int {
	s := runtime.GOMAXPROCS(0)
	if s > maxVectorStripes {
		s = maxVectorStripes
	}
	n := 1
	for n < s {
		n <<= 1
	}
	return n
}

// NewStripedVector returns a vector of length counters across the given
// number of stripes (rounded up to a power of two; stripes <= 0 selects
// DefaultVectorStripes).
func NewStripedVector(length, stripes int) *StripedVector {
	if length < 1 {
		panic("cellprobe: StripedVector needs length ≥ 1")
	}
	if stripes <= 0 {
		stripes = DefaultVectorStripes()
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	v := &StripedVector{
		stripes: make([][]atomic.Uint64, n),
		length:  length,
		mask:    uint64(n - 1),
	}
	for s := range v.stripes {
		v.stripes[s] = make([]atomic.Uint64, length+2*vecPad)
	}
	v.pool.New = func() any {
		i := new(uint64)
		*i = v.next.Add(1) - 1
		return i
	}
	return v
}

// Len returns the number of logical counters.
func (v *StripedVector) Len() int { return v.length }

// Stripes returns the stripe count S.
func (v *StripedVector) Stripes() int { return len(v.stripes) }

// Add increments counter i on the calling goroutine's stripe.
func (v *StripedVector) Add(i int) {
	h := v.pool.Get().(*uint64)
	s := *h & v.mask
	v.pool.Put(h)
	v.stripes[s][vecPad+i].Add(1)
}

// AddStripe increments counter i on the given stripe (masked into range).
// Callers that already hold a per-goroutine stripe identity — the telemetry
// probe sink fetches one handle per probe and charges several vectors with
// it — use this to skip the per-vector pool round trip.
func (v *StripedVector) AddStripe(stripe uint64, i int) {
	v.stripes[stripe&v.mask][vecPad+i].Add(1)
}

// AddStripeN adds n to counter i on the given stripe. The adaptive telemetry
// sampler records each kept probe pre-scaled by its sampling factor at
// record time, which keeps the accumulated estimates unbiased across factor
// changes without rewriting history.
func (v *StripedVector) AddStripeN(stripe uint64, i int, n uint64) {
	v.stripes[stripe&v.mask][vecPad+i].Add(n)
}

// Sum returns the total of counter i across all stripes.
func (v *StripedVector) Sum(i int) uint64 {
	var total uint64
	for s := range v.stripes {
		total += v.stripes[s][vecPad+i].Load()
	}
	return total
}

// SumInto writes every counter's cross-stripe total into dst (which must
// have length Len) and returns the grand total across all counters.
func (v *StripedVector) SumInto(dst []uint64) uint64 {
	if len(dst) != v.length {
		panic("cellprobe: SumInto needs a destination of length Len()")
	}
	for i := range dst {
		dst[i] = 0
	}
	var grand uint64
	for s := range v.stripes {
		row := v.stripes[s]
		for i := 0; i < v.length; i++ {
			c := row[vecPad+i].Load()
			dst[i] += c
			grand += c
		}
	}
	return grand
}

// Sums returns a freshly allocated vector of cross-stripe totals.
func (v *StripedVector) Sums() []uint64 {
	dst := make([]uint64, v.length)
	v.SumInto(dst)
	return dst
}

// ProbeSink observes the live probe stream of a table: one callback per
// recorded probe, from however many goroutines are querying concurrently.
// Implementations must therefore be safe for concurrent use and cheap —
// internal/telemetry's implementation lands every count on a
// cache-line-striped counter. Unlike a Recorder (sequential, exact,
// measurement-mode) a sink is an always-on production hook; unlike a trace
// callback it has no exclusivity caveat.
type ProbeSink interface {
	ProbeObserved(step, cell int)
}

// SetSink installs (or with nil removes) the table's probe sink. Installing
// must not race with probes — do it before the table is shared, as the
// facade's WithTelemetry and the dynamic dictionary's epoch publication do.
func (t *Table) SetSink(s ProbeSink) { t.sink = s }

// Sink returns the installed probe sink, or nil.
func (t *Table) Sink() ProbeSink { return t.sink }
