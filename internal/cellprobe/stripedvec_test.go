package cellprobe

import (
	"sync"
	"testing"
)

func TestStripedVectorBasic(t *testing.T) {
	v := NewStripedVector(5, 4)
	if v.Len() != 5 {
		t.Fatalf("Len = %d, want 5", v.Len())
	}
	if v.Stripes() != 4 {
		t.Fatalf("Stripes = %d, want 4", v.Stripes())
	}
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			v.Add(i)
		}
	}
	for i := 0; i < 5; i++ {
		if got := v.Sum(i); got != uint64(i+1) {
			t.Fatalf("Sum(%d) = %d, want %d", i, got, i+1)
		}
	}
	sums := v.Sums()
	var dst [5]uint64
	if grand := v.SumInto(dst[:]); grand != 1+2+3+4+5 {
		t.Fatalf("grand total = %d, want 15", grand)
	}
	for i := range sums {
		if sums[i] != dst[i] {
			t.Fatalf("Sums()[%d] = %d, SumInto dst[%d] = %d", i, sums[i], i, dst[i])
		}
	}
}

func TestStripedVectorAddStripe(t *testing.T) {
	v := NewStripedVector(3, 2)
	// Explicit stripe identities, including out-of-range ones that must be
	// masked into [0, Stripes).
	v.AddStripe(0, 1)
	v.AddStripe(1, 1)
	v.AddStripe(7, 1) // masked to stripe 1
	if got := v.Sum(1); got != 3 {
		t.Fatalf("Sum(1) = %d, want 3", got)
	}
	if got := v.Sum(0) + v.Sum(2); got != 0 {
		t.Fatalf("untouched counters hold %d", got)
	}
}

func TestStripedVectorRoundsStripes(t *testing.T) {
	v := NewStripedVector(1, 3)
	if v.Stripes() != 4 {
		t.Fatalf("stripes rounded to %d, want 4", v.Stripes())
	}
	if d := NewStripedVector(1, 0).Stripes(); d != DefaultVectorStripes() {
		t.Fatalf("default stripes = %d, want %d", d, DefaultVectorStripes())
	}
}

// TestStripedVectorConcurrent checks no increments are lost across
// concurrent adders (each atomic add lands on some stripe; the cross-stripe
// sum must be exact once the adders join).
func TestStripedVectorConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
		counters   = 17
	)
	v := NewStripedVector(counters, 0)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v.Add((g + i) % counters)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < counters; i++ {
		total += v.Sum(i)
	}
	if want := uint64(goroutines * perG); total != want {
		t.Fatalf("lost increments: total %d, want %d", total, want)
	}
}

// TestTableSink checks the ProbeSink hook fires for direct and forwarded
// probes with the forwarded coordinates.
func TestTableSink(t *testing.T) {
	type probe struct{ step, cell int }
	var got []probe
	sinkFn := sinkFunc(func(step, cell int) { got = append(got, probe{step, cell}) })

	tab := New(2, 4)
	tab.SetSink(sinkFn)
	tab.Probe(0, 1, 2)
	tab.ProbeIndex(3, 5)
	if len(got) != 2 || got[0] != (probe{0, 6}) || got[1] != (probe{3, 5}) {
		t.Fatalf("direct probes recorded %v", got)
	}
	if tab.Sink() == nil {
		t.Fatal("Sink() lost the installed sink")
	}

	// Forwarded probes: child probes must reach the parent's sink at
	// translated coordinates.
	got = nil
	parent := New(1, 100)
	parent.SetSink(sinkFn)
	child := New(1, 4)
	child.ForwardTo(parent, 10, 5)
	child.Probe(1, 0, 3)
	if len(got) != 1 || got[0] != (probe{6, 13}) {
		t.Fatalf("forwarded probe recorded %v, want {6 13}", got)
	}
}

type sinkFunc func(step, cell int)

func (f sinkFunc) ProbeObserved(step, cell int) { f(step, cell) }
