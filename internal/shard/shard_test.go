package shard

import (
	"math"
	"testing"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dynamic"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"

	_ "repro/internal/baseline"
)

func testKeys(n int, seed uint64) []uint64 {
	r := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func negativesFor(keys []uint64, n int, seed uint64) []uint64 {
	members := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		members[k] = true
	}
	r := rng.New(seed)
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := r.Uint64n(hash.MaxKey)
		if !members[k] {
			out = append(out, k)
		}
	}
	return out
}

func TestNewValidates(t *testing.T) {
	if _, err := NewNamed([]uint64{1, 2}, 0, "lcds", 1); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	if _, err := New([]uint64{1, 2}, 2, nil, 1); err == nil {
		t.Fatal("nil builder accepted")
	}
	if _, err := NewNamed([]uint64{1, 1}, 2, "lcds", 1); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := NewNamed([]uint64{1}, 2, "no-such", 1); err == nil {
		t.Fatal("unknown inner scheme accepted")
	}
}

func TestMembership(t *testing.T) {
	keys := testKeys(1024, 11)
	negs := negativesFor(keys, 500, 12)
	for _, p := range []int{1, 2, 3, 8} {
		d, err := NewNamed(keys, p, "lcds", 7)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if d.N() != len(keys) {
			t.Fatalf("P=%d: N() = %d", p, d.N())
		}
		if got, want := d.Name(), "lcds×"+string(rune('0'+p)); got != want {
			t.Fatalf("P=%d: Name() = %q, want %q", p, got, want)
		}
		r := rng.New(99)
		for _, k := range keys {
			ok, err := d.Contains(k, r)
			if err != nil {
				t.Fatalf("P=%d Contains(%d): %v", p, k, err)
			}
			if !ok {
				t.Fatalf("P=%d: member %d lost", p, k)
			}
		}
		for _, k := range negs {
			ok, err := d.Contains(k, r)
			if err != nil {
				t.Fatalf("P=%d Contains(%d): %v", p, k, err)
			}
			if ok {
				t.Fatalf("P=%d: non-member %d found", p, k)
			}
		}
	}
}

func TestEmptyShardsAndEmptyDict(t *testing.T) {
	// 3 keys over 8 shards leaves most shards empty; 0 keys leaves all.
	for _, keys := range [][]uint64{testKeys(3, 5), nil} {
		d, err := NewNamed(keys, 8, "lcds", 3)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(1)
		for _, k := range keys {
			if ok, err := d.Contains(k, r); err != nil || !ok {
				t.Fatalf("member %d: ok=%v err=%v", k, ok, err)
			}
		}
		for _, k := range negativesFor(keys, 100, 6) {
			if ok, err := d.Contains(k, r); err != nil || ok {
				t.Fatalf("non-member %d: ok=%v err=%v", k, ok, err)
			}
		}
		q := dist.NewUniformSet(append([]uint64{12345}, negativesFor(keys, 31, 8)...), "")
		if _, err := contention.Exact(d, q.Support()); err != nil {
			t.Fatalf("Exact over empty-shard queries: %v", err)
		}
	}
}

// TestExactComposition is the acceptance criterion of the sharding layer:
// the composite's exact maxΦ (and hence maxΦ·s) must equal the analytic
// per-shard composition bit for bit, for P ∈ {1, 2, 8} — under the uniform
// positive distribution and under a mixed positive/negative one.
func TestExactComposition(t *testing.T) {
	keys := testKeys(2048, 21)
	mixed := append(append([]uint64(nil), keys[:512]...), negativesFor(keys, 512, 22)...)
	supports := map[string][]dist.Weighted{
		"uniform-positive": dist.NewUniformSet(keys, "").Support(),
		"mixed":            dist.NewUniformSet(mixed, "").Support(),
	}
	for _, p := range []int{1, 2, 8} {
		d, err := NewNamed(keys, p, "lcds", 31)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for label, support := range supports {
			ex, err := contention.Exact(d, support)
			if err != nil {
				t.Fatalf("P=%d %s Exact: %v", p, label, err)
			}
			composed, err := d.ComposeExact(support)
			if err != nil {
				t.Fatalf("P=%d %s ComposeExact: %v", p, label, err)
			}
			if ex.MaxStep != composed {
				t.Errorf("P=%d %s: composite maxΦ = %.17g, composed = %.17g (not bit-exact)",
					p, label, ex.MaxStep, composed)
			}
			if got, want := ex.RatioStep(), composed*float64(ex.Cells); got != want {
				t.Errorf("P=%d %s: ratioStep measured %.17g vs composed %.17g", p, label, got, want)
			}
		}
	}
}

// TestCompositionAgainstSerialExact pins the bit-exactness to the serial
// reference analyzer too (ExactWorkers(…, 1)), not just the parallel
// default.
func TestCompositionAgainstSerialExact(t *testing.T) {
	keys := testKeys(1024, 41)
	d, err := NewNamed(keys, 8, "lcds", 43)
	if err != nil {
		t.Fatal(err)
	}
	support := dist.NewUniformSet(keys, "").Support()
	ex, err := contention.ExactWorkers(d, support, 1)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := d.ComposeExact(support)
	if err != nil {
		t.Fatal(err)
	}
	if ex.MaxStep != composed {
		t.Fatalf("serial maxΦ = %.17g, composed = %.17g", ex.MaxStep, composed)
	}
}

// TestCompositionOtherInners checks the composition is scheme-agnostic:
// any registered inner build composes exactly.
func TestCompositionOtherInners(t *testing.T) {
	keys := testKeys(512, 51)
	support := dist.NewUniformSet(keys, "").Support()
	for _, inner := range []string{"fks+rep", "cuckoo+rep", "bsearch", "chained+rep"} {
		d, err := NewNamed(keys, 4, inner, 53)
		if err != nil {
			t.Fatalf("%s: %v", inner, err)
		}
		ex, err := contention.Exact(d, support)
		if err != nil {
			t.Fatalf("%s: %v", inner, err)
		}
		composed, err := d.ComposeExact(support)
		if err != nil {
			t.Fatalf("%s: %v", inner, err)
		}
		if ex.MaxStep != composed {
			t.Errorf("%s×4: maxΦ %.17g vs composed %.17g", inner, ex.MaxStep, composed)
		}
	}
}

func TestProbeSpecShape(t *testing.T) {
	keys := testKeys(512, 61)
	d, err := NewNamed(keys, 4, "lcds", 63)
	if err != nil {
		t.Fatal(err)
	}
	cells := d.Table().Size()
	if cells != 2*d.RouteWidth() {
		t.Fatalf("composite has %d cells, want 2·R = %d", cells, 2*d.RouteWidth())
	}
	for _, x := range append(keys[:16:16], negativesFor(keys, 16, 64)...) {
		spec := d.ProbeSpec(x)
		if err := spec.Validate(cells); err != nil {
			t.Fatalf("spec for %d: %v", x, err)
		}
		// Step 0 is the full-mass uniform routing probe.
		if len(spec[0]) != 1 || spec[0][0].Start != 0 || spec[0][0].Count != d.RouteWidth() || spec[0][0].Mass != 1 {
			t.Fatalf("spec for %d: routing step = %+v", x, spec[0])
		}
		// All later mass lies inside the owning shard's cell range.
		i := d.ShardOf(x)
		lo := d.CellOffset(i)
		hi := lo + d.Shard(i).Table().Size()
		for t2, step := range spec[1:] {
			for _, sp := range step {
				if sp.Start < lo || sp.Start+sp.Count > hi {
					t.Fatalf("spec for %d step %d: span [%d,%d) outside shard range [%d,%d)",
						x, t2+1, sp.Start, sp.Start+sp.Count, lo, hi)
				}
			}
		}
	}
}

// TestForwarding checks that probes against shard tables are mirrored onto
// the composite table: a Monte-Carlo run over the composite agrees with the
// exact analysis.
func TestForwarding(t *testing.T) {
	keys := testKeys(1024, 71)
	d, err := NewNamed(keys, 4, "lcds", 73)
	if err != nil {
		t.Fatal(err)
	}
	q := dist.NewUniformSet(keys, "")
	ex, err := contention.Exact(d, q.Support())
	if err != nil {
		t.Fatal(err)
	}
	mc, err := contention.MonteCarlo(d, q, 60000, rng.New(75))
	if err != nil {
		t.Fatal(err)
	}
	if mc.Positives != mc.Queries {
		t.Fatalf("%d of %d positive queries answered true", mc.Positives, mc.Queries)
	}
	if math.Abs(mc.Probes-ex.Probes) > 0.05*ex.Probes {
		t.Fatalf("MC probes/query %.3f vs exact %.3f", mc.Probes, ex.Probes)
	}
	// The empirical per-step max overshoots the exact value by sampling
	// noise only; it must be within a small factor and never below.
	if mc.MaxStep < ex.MaxStep {
		t.Fatalf("MC maxΦ %.3g below exact %.3g — probes are going unrecorded", mc.MaxStep, ex.MaxStep)
	}
	if mc.RatioStep() > 10*ex.RatioStep() {
		t.Fatalf("MC ratio %.1f wildly above exact %.1f", mc.RatioStep(), ex.RatioStep())
	}
}

func TestBatchMatchesContains(t *testing.T) {
	keys := testKeys(1024, 81)
	d, err := NewNamed(keys, 4, "lcds", 83)
	if err != nil {
		t.Fatal(err)
	}
	queries := append(append([]uint64(nil), keys[:300]...), negativesFor(keys, 300, 84)...)
	want := make([]bool, len(queries))
	r := rng.New(85)
	for i, k := range queries {
		want[i], err = d.Contains(k, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	seq := make([]bool, len(queries))
	if err := d.ContainsBatch(queries, seq, rng.New(86)); err != nil {
		t.Fatal(err)
	}
	par := make([]bool, len(queries))
	if err := d.ContainsBatchParallel(queries, par, rng.NewSharded(87, 0)); err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if seq[i] != want[i] || par[i] != want[i] {
			t.Fatalf("query %d (%d): contains=%v batch=%v parallel=%v", i, queries[i], want[i], seq[i], par[i])
		}
	}
}

func TestDynamicSharded(t *testing.T) {
	keys := testKeys(1024, 91)
	d, err := NewDynamic(keys, 4, dynamic.Params{}, 93)
	if err != nil {
		t.Fatal(err)
	}
	if d.Shards() != 4 {
		t.Fatalf("Shards() = %d", d.Shards())
	}
	if d.Len() != len(keys) {
		t.Fatalf("Len() = %d, want %d", d.Len(), len(keys))
	}
	src := rng.New(95)
	extra := negativesFor(keys, 200, 96)
	for _, k := range extra {
		if changed, err := d.Insert(k); err != nil || !changed {
			t.Fatalf("Insert(%d): changed=%v err=%v", k, changed, err)
		}
	}
	for _, k := range keys[:100] {
		if changed, err := d.Delete(k); err != nil || !changed {
			t.Fatalf("Delete(%d): changed=%v err=%v", k, changed, err)
		}
	}
	d.Quiesce()
	if got, want := d.Len(), len(keys)+len(extra)-100; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	for _, k := range extra {
		if ok, err := d.Contains(k, src); err != nil || !ok {
			t.Fatalf("inserted %d: ok=%v err=%v", k, ok, err)
		}
	}
	for _, k := range keys[:100] {
		if ok, err := d.Contains(k, src); err != nil || ok {
			t.Fatalf("deleted %d still present (err=%v)", k, err)
		}
	}
	out := make([]bool, len(keys))
	if err := d.ContainsBatch(keys, out, src); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if want := i >= 100; out[i] != want {
			t.Fatalf("batch answer for %d = %v, want %v", k, out[i], want)
		}
	}
}

// TestPerShardRebuildIsolation is the point of dynamic sharding: an update
// storm confined to one shard rebuilds that shard alone.
func TestPerShardRebuildIsolation(t *testing.T) {
	keys := testKeys(2048, 101)
	d, err := NewDynamic(keys, 4, dynamic.Params{SyncRebuild: true}, 103)
	if err != nil {
		t.Fatal(err)
	}
	target := 2
	before := make([]int, d.Shards())
	for i := 0; i < d.Shards(); i++ {
		before[i] = d.Shard(i).Stats().Epoch
	}
	// Insert enough keys routed to the target shard to force rebuilds there.
	r := rng.New(105)
	inserted := 0
	for inserted < 600 {
		k := r.Uint64n(hash.MaxKey)
		if d.ShardOf(k) != target {
			continue
		}
		changed, err := d.Insert(k)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			inserted++
		}
	}
	d.Quiesce()
	for i := 0; i < d.Shards(); i++ {
		ep := d.Shard(i).Stats().Epoch
		if i == target && ep <= before[i] {
			t.Errorf("shard %d absorbed %d inserts but never rebuilt (epoch %d)", i, inserted, ep)
		}
		if i != target && ep != before[i] {
			t.Errorf("shard %d rebuilt (epoch %d → %d) without receiving any update", i, before[i], ep)
		}
	}
	if d.Rebuilds() <= d.Shards() {
		t.Errorf("Rebuilds() = %d, want > %d", d.Rebuilds(), d.Shards())
	}
}

// TestShardZeroInnerSeed checks shard 0 of any composite builds with the
// caller's seed itself, so P = 1 wraps the very dictionary the unsharded
// builder produces.
func TestShardZeroInnerSeed(t *testing.T) {
	keys := testKeys(512, 111)
	d, err := NewNamed(keys, 1, "lcds", 113)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := scheme.Build("lcds", keys, 113)
	if err != nil {
		t.Fatal(err)
	}
	in, ok := d.Shard(0).(*core.Dict)
	if !ok {
		t.Fatalf("inner is %T", d.Shard(0))
	}
	// Same seed, same keys (a 1-way route preserves order) ⇒ identical
	// probe specs for every key.
	for _, k := range keys[:32] {
		a, b := in.ProbeSpec(k), plain.ProbeSpec(k)
		if len(a) != len(b) {
			t.Fatalf("spec lengths differ for %d", k)
		}
		for s := range a {
			if len(a[s]) != len(b[s]) {
				t.Fatalf("step %d differs for %d", s, k)
			}
			for j := range a[s] {
				if a[s][j] != b[s][j] {
					t.Fatalf("span %d of step %d differs for %d", j, s, k)
				}
			}
		}
	}
}

// TestDynamicShardedBatchUpdates checks the shard-parallel update fan-out
// against sequential semantics: changed counts must equal the number of keys
// whose membership actually flipped, duplicates within a batch counting once,
// with the batch spread across all shards.
func TestDynamicShardedBatchUpdates(t *testing.T) {
	keys := testKeys(1024, 111)
	d, err := NewDynamic(keys[:512], 4, dynamic.Params{}, 113)
	if err != nil {
		t.Fatal(err)
	}
	// 256 fresh keys + 128 already-present keys + 64 in-batch duplicates.
	batch := append(append([]uint64{}, keys[512:768]...), keys[:128]...)
	batch = append(batch, keys[512:576]...)
	changed, err := d.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 256 {
		t.Errorf("InsertBatch changed %d, want 256", changed)
	}
	if d.Len() != 768 {
		t.Errorf("Len = %d after batch insert, want 768", d.Len())
	}
	// 128 members + 128 non-members + 64 in-batch duplicates.
	del := append(append([]uint64{}, keys[128:256]...), keys[768:896]...)
	del = append(del, keys[128:192]...)
	changed, err = d.DeleteBatch(del)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 128 {
		t.Errorf("DeleteBatch changed %d, want 128", changed)
	}
	d.Quiesce()
	if d.Len() != 640 {
		t.Errorf("Len = %d after batch delete, want 640", d.Len())
	}
	src := rng.New(115)
	out := make([]bool, len(keys))
	if err := d.ContainsBatch(keys, out, src); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want := (i < 128) || (i >= 256 && i < 768)
		if out[i] != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, out[i], want)
		}
	}
	// An empty batch is a no-op on every shard.
	if changed, err := d.InsertBatch(nil); err != nil || changed != 0 {
		t.Errorf("empty InsertBatch: changed=%d err=%v", changed, err)
	}
}
