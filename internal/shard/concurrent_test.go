package shard

import (
	"sync"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/hash"
	"repro/internal/rng"
)

// TestConcurrentShardedReadsAndWrites drives an update storm against a
// sharded dynamic dictionary while reader goroutines issue single and
// batched queries. Run under -race in CI: it exercises the per-shard epoch
// publication, the batch fan-out goroutines and the shared rng.Sharded
// source at once.
func TestConcurrentShardedReadsAndWrites(t *testing.T) {
	keys := testKeys(2048, 201)
	d, err := NewDynamic(keys, 4, dynamic.Params{}, 203)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		readers  = 4
		batchers = 2
		rounds   = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers+batchers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(300 + w))
			for i := 0; i < rounds; i++ {
				k := r.Uint64n(hash.MaxKey)
				if _, err := d.Insert(k); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					if _, err := d.Delete(k); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(400 + g))
			for i := 0; i < rounds; i++ {
				// The initial keys are never deleted by the writers (they
				// only delete keys they themselves inserted this round), so
				// membership of the seed set must hold throughout.
				k := keys[r.Intn(len(keys))]
				ok, err := d.Contains(k, r)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					t.Errorf("seed key %d lost mid-storm", k)
					return
				}
				_ = d.Len()
			}
		}(g)
	}

	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			src := rng.NewSharded(uint64(500+b), 0)
			out := make([]bool, 256)
			for i := 0; i < rounds/4; i++ {
				batch := keys[(i*131)%(len(keys)-256):][:256]
				if err := d.ContainsBatchParallel(batch, out, src); err != nil {
					errs <- err
					return
				}
				for j, ok := range out {
					if !ok {
						t.Errorf("batch lost seed key %d", batch[j])
						return
					}
				}
			}
		}(b)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	d.Quiesce()
	for _, k := range keys {
		if ok, err := d.Contains(k, rng.New(1)); err != nil || !ok {
			t.Fatalf("seed key %d missing after storm (err=%v)", k, err)
		}
	}
}

// TestConcurrentStaticBatch hammers the static composite's parallel batch
// path from many goroutines sharing one sharded source; the static Dict is
// immutable after New, so only the scratch pool and source are shared.
func TestConcurrentStaticBatch(t *testing.T) {
	keys := testKeys(2048, 211)
	d, err := NewNamed(keys, 8, "lcds", 213)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSharded(215, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]bool, 512)
			for i := 0; i < 50; i++ {
				batch := keys[((g*53+i)*97)%(len(keys)-512):][:512]
				if err := d.ContainsBatchParallel(batch, out, src); err != nil {
					t.Error(err)
					return
				}
				for j, ok := range out {
					if !ok {
						t.Errorf("member %d answered false", batch[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentDynamicBatchUpdates drives InsertBatch/DeleteBatch from
// several goroutines at once — each batch fans out across shards on its own
// worker goroutines, so concurrent batches put multiple claiming writers on
// every shard's buffer — while readers hold a disjoint seed range invariant.
// Run under -race.
func TestConcurrentDynamicBatchUpdates(t *testing.T) {
	keys := testKeys(3072, 221)
	seed, churn := keys[:1024], keys[1024:]
	d, err := NewDynamic(seed, 4, dynamic.Params{}, 223)
	if err != nil {
		t.Fatal(err)
	}

	const updaters = 3
	var wg sync.WaitGroup
	errs := make(chan error, updaters+1)
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			// Each updater owns a disjoint churn slice: batch-insert it,
			// batch-delete half, repeat. Changed counts are only exact for
			// the first round (later rounds depend on interleaving within
			// the slice owner — still single-owner, so they stay exact).
			mine := churn[u*640 : (u+1)*640]
			for round := 0; round < 4; round++ {
				changed, err := d.InsertBatch(mine)
				if err != nil {
					errs <- err
					return
				}
				want := len(mine)
				if round > 0 {
					want = len(mine) / 2 // second half stayed deleted
				}
				if changed != want {
					t.Errorf("updater %d round %d: InsertBatch changed %d, want %d", u, round, changed, want)
					return
				}
				changed, err = d.DeleteBatch(mine[len(mine)/2:])
				if err != nil {
					errs <- err
					return
				}
				if changed != len(mine)/2 {
					t.Errorf("updater %d round %d: DeleteBatch changed %d, want %d", u, round, changed, len(mine)/2)
					return
				}
			}
		}(u)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := rng.NewSharded(225, 0)
		out := make([]bool, 512)
		for i := 0; i < 100; i++ {
			batch := seed[(i*97)%(len(seed)-512):][:512]
			if err := d.ContainsBatchParallel(batch, out, src); err != nil {
				errs <- err
				return
			}
			for j, ok := range out {
				if !ok {
					t.Errorf("seed key %d lost during batch churn", batch[j])
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	d.Quiesce()
	// Final state: every updater's first half present, second half absent.
	src := rng.New(227)
	for u := 0; u < updaters; u++ {
		mine := churn[u*640 : (u+1)*640]
		for i, k := range mine {
			ok, err := d.Contains(k, src)
			if err != nil {
				t.Fatal(err)
			}
			if want := i < len(mine)/2; ok != want {
				t.Fatalf("updater %d key %d: present=%v, want %v", u, k, ok, want)
			}
		}
	}
}
