// Package shard scales any registered membership scheme out to P
// independent sub-dictionaries behind a top-level pairwise hash, preserving
// the cell-probe contention model exactly.
//
// The composite is itself a scheme.Scheme. A query probes one replica of
// the routing row (the routing hash stored redundantly across as many cells
// as the shards occupy, the paper's §1.3 replication trick — per-cell mass
// 1/R with R = Σ_i s_i, a constant ratio to optimum), routes to shard
// h(x) ∈ [P), and runs that shard's own query on its own cells. Because the
// shards occupy disjoint cell ranges and the routing splits the query
// distribution into per-shard conditional distributions, the composite's
// exact contention is the routing mass plus the maximum of the shards' own
// exact spectra — contention composes, which is the paper's point: Φ is a
// per-cell probe mass, so hash partitioning is a model-preserving scale-out.
// ComposeExact computes that composition analytically; the tests check it
// is bit-identical to running contention.Exact on the composite.
//
// ProbeSpec places each shard's steps in a disjoint step range
// (1 + Σ_{j<i} MaxProbes_j for shard i). Step placement is observationally
// irrelevant — shards touch disjoint cells, so no (step, cell) pair ever
// receives mass from two shards either way — but it keeps the per-step
// difference arrays of contention.Exact confined to one shard's cell range
// each, which is what makes the analytic composition reproduce the
// composite's floats bit for bit instead of merely up to rounding.
package shard

import (
	"fmt"
	"sync"

	"repro/internal/cellprobe"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
)

// routeSalt decorrelates the routing hash draw from the shard builds.
const routeSalt = 0x5ca1ab1e5ca1ab1e

// subseed derives shard i's build seed. Shard 0 keeps the caller's seed, so
// a 1-way composite builds the identical inner structure the unsharded
// builder would.
func subseed(seed uint64, i int) uint64 {
	return seed ^ (uint64(i) * 0x9e3779b97f4a7c15)
}

// Dict is a static P-way sharded composite dictionary.
type Dict struct {
	name    string
	shards  []scheme.Scheme
	cellOff []int // flat composite offset of each shard's cells
	stepOff []int // first composite probe step of each shard
	route   hash.Pairwise
	routeW  int // routing replicas (= total inner cells)
	acct    *cellprobe.Table
	n       int
	probes  int // 1 + max over shards of MaxProbes
	scratch sync.Pool
}

// New builds a P-way composite over the given keys, constructing every
// shard with the supplied builder. shards must be ≥ 1; the builder must
// accept an empty key slice (a shard may receive no keys).
func New(keys []uint64, shards int, build scheme.Builder, seed uint64) (*Dict, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be ≥ 1", shards)
	}
	if build == nil {
		return nil, fmt.Errorf("shard: nil builder")
	}
	if err := scheme.ValidateKeys(keys); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	route := hash.NewPairwise(rng.New(seed^routeSalt), uint64(shards))
	parts := make([][]uint64, shards)
	for _, k := range keys {
		i := int(route.Eval(k))
		parts[i] = append(parts[i], k)
	}
	d := &Dict{
		shards:  make([]scheme.Scheme, shards),
		cellOff: make([]int, shards),
		stepOff: make([]int, shards),
		route:   route,
		n:       len(keys),
	}
	d.scratch.New = func() any { return new(core.QueryScratch) }
	total, steps, maxP := 0, 1, 0
	for i, part := range parts {
		st, err := build(part, subseed(seed, i))
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", i, shards, err)
		}
		d.shards[i] = st
		d.stepOff[i] = steps
		steps += st.MaxProbes()
		total += st.Table().Size()
		if st.MaxProbes() > maxP {
			maxP = st.MaxProbes()
		}
	}
	d.routeW = total
	d.probes = 1 + maxP
	d.name = fmt.Sprintf("%s×%d", d.shards[0].Name(), shards)
	// The composite's accounting table: one row of routeW routing replicas
	// followed by the shards' cell ranges. The routing hash is stored
	// block-compactly (one value backing the whole row); the shard ranges
	// belong to the inner tables, whose probes are forwarded here.
	d.acct = cellprobe.New(1, d.routeW+total)
	d.acct.SetBlockRow(0, []cellprobe.Cell{{Lo: route.A, Hi: route.B}}, d.routeW+total)
	off := d.routeW
	for i, st := range d.shards {
		d.cellOff[i] = off
		st.Table().ForwardTo(d.acct, off, 1)
		off += st.Table().Size()
	}
	return d, nil
}

// NewNamed builds a P-way composite whose shards are the named registered
// scheme.
func NewNamed(keys []uint64, shards int, inner string, seed uint64) (*Dict, error) {
	info, ok := scheme.Lookup(inner)
	if !ok {
		return nil, fmt.Errorf("shard: unknown inner scheme %q", inner)
	}
	return New(keys, shards, info.Build, seed)
}

// Name identifies the composite, e.g. "lcds×8".
func (d *Dict) Name() string { return d.name }

// N returns the number of stored keys across all shards.
func (d *Dict) N() int { return d.n }

// Table returns the composite accounting table. Probes against any shard's
// own table are forwarded here, so recorders and traces attached to it see
// the full composite probe stream (routing probes at step 0, shard probes
// from step 1, at composite cell indices).
func (d *Dict) Table() *cellprobe.Table { return d.acct }

// MaxProbes bounds the probes of any single query: one routing probe plus
// the worst shard's bound.
func (d *Dict) MaxProbes() int { return d.probes }

// Shards returns the shard count P.
func (d *Dict) Shards() int { return len(d.shards) }

// Shard returns the i-th sub-dictionary.
func (d *Dict) Shard(i int) scheme.Scheme { return d.shards[i] }

// ShardOf returns the shard index the routing hash assigns to x.
func (d *Dict) ShardOf(x uint64) int { return int(d.route.Eval(x)) }

// CellOffset returns the flat composite index of shard i's first cell.
func (d *Dict) CellOffset(i int) int { return d.cellOff[i] }

// StepOffset returns shard i's first probe step in the composite's
// ProbeSpec layout, which gives every shard a disjoint step range (the
// runtime forwarding instead time-aligns all shards at step 1, since only
// one shard executes per query).
func (d *Dict) StepOffset(i int) int { return d.stepOff[i] }

// RouteWidth returns the number of routing replicas R.
func (d *Dict) RouteWidth() int { return d.routeW }

// FoldStepMass converts an exact step-mass vector from the composite
// ProbeSpec layout (disjoint step range per shard, see StepOffset) to the
// time-aligned layout live telemetry counters use: the routing probe is step
// 0 and every shard's step t lands at 1 + t, since only one shard executes
// per query. Per-cell masses need no conversion — shard cells only ever
// receive their own shard's steps — so only step-mass comparisons fold.
func (d *Dict) FoldStepMass(mass []float64) []float64 {
	maxP := 0
	for i := range d.shards {
		if mp := d.shards[i].MaxProbes(); mp > maxP {
			maxP = mp
		}
	}
	folded := make([]float64, 1+maxP)
	if len(mass) > 0 {
		folded[0] = mass[0] // routing step
	}
	for i := range d.shards {
		off := d.stepOff[i]
		for t := 0; t < d.shards[i].MaxProbes() && off+t < len(mass); t++ {
			folded[1+t] += mass[off+t]
		}
	}
	return folded
}

// routeProbe reads one uniformly chosen routing replica (step 0) and
// returns the shard index it directs x to.
func (d *Dict) routeProbe(x uint64, r rng.Source) int {
	c := d.acct.Probe(0, 0, r.Intn(d.routeW))
	h := hash.Pairwise{A: c.Lo, B: c.Hi, M: uint64(len(d.shards))}
	return int(h.Eval(x))
}

// Contains answers membership: one routing probe, then the owning shard's
// own query.
func (d *Dict) Contains(x uint64, r rng.Source) (bool, error) {
	return d.containsShard(d.routeProbe(x, r), x, r)
}

// containsShard runs shard i's query, using pooled scratch on the
// low-contention dictionary's zero-allocation path.
func (d *Dict) containsShard(i int, x uint64, r rng.Source) (bool, error) {
	if cd, ok := d.shards[i].(*core.Dict); ok {
		sc := d.scratch.Get().(*core.QueryScratch)
		ok2, err := cd.ContainsScratch(x, r, sc)
		d.scratch.Put(sc)
		return ok2, err
	}
	return d.shards[i].Contains(x, r)
}

// ContainsTraced is Contains with caller-supplied scratch, reporting which
// shard answered. The telemetry layer arms the scratch with StartCapture
// before calling, so the inner query's probe log lands in it; captured cell
// indices are shard-local — translate them with CellOffset(shard). Inner
// schemes other than the low-contention dictionary answer normally but
// capture nothing.
func (d *Dict) ContainsTraced(x uint64, r rng.Source, sc *core.QueryScratch) (found bool, shard int, err error) {
	shard = d.routeProbe(x, r)
	if cd, ok := d.shards[shard].(*core.Dict); ok {
		found, err = cd.ContainsScratch(x, r, sc)
		return found, shard, err
	}
	found, err = d.shards[shard].Contains(x, r)
	return found, shard, err
}

// group is one shard's slice of a batch.
type group struct {
	keys []uint64
	idx  []int
}

// groupBatch routes every key (consuming one routing probe per key, exactly
// as Contains would) and groups the batch by shard.
func (d *Dict) groupBatch(keys []uint64, r rng.Source) []group {
	groups := make([]group, len(d.shards))
	for i, k := range keys {
		g := d.routeProbe(k, r)
		groups[g].keys = append(groups[g].keys, k)
		groups[g].idx = append(groups[g].idx, i)
	}
	return groups
}

// answerGroup answers one shard's group, batching through the inner
// dictionary's own batch path when it has one — for core dictionaries that
// is the wavefront scheduler, so a sharded batch gets memory-level
// parallelism within each shard on top of the cross-shard fan-out.
func (d *Dict) answerGroup(shard int, g group, out []bool, r rng.Source) error {
	if len(g.keys) == 0 {
		return nil
	}
	if cd, ok := d.shards[shard].(*core.Dict); ok {
		sc := d.scratch.Get().(*core.QueryScratch)
		defer d.scratch.Put(sc)
		ans := make([]bool, len(g.keys))
		if err := cd.ContainsBatch(g.keys, ans, r, sc); err != nil {
			return err
		}
		for j, i := range g.idx {
			out[i] = ans[j]
		}
		return nil
	}
	for j, k := range g.keys {
		ok, err := d.shards[shard].Contains(k, r)
		if err != nil {
			return err
		}
		out[g.idx[j]] = ok
	}
	return nil
}

// ContainsBatch answers membership for every keys[i] into out[i],
// sequentially: the batch is routed up front, grouped by shard, and each
// group answered in shard order against that shard's batch path. out must
// be at least as long as keys.
func (d *Dict) ContainsBatch(keys []uint64, out []bool, r rng.Source) error {
	for shard, g := range d.groupBatch(keys, r) {
		if err := d.answerGroup(shard, g, out, r); err != nil {
			return err
		}
	}
	return nil
}

// ContainsBatchParallel is ContainsBatch with the per-shard groups answered
// by concurrent goroutines — the scale-out read path sharding exists for.
// The source must be safe for concurrent use (rng.Sharded is; an *rng.RNG
// is not) whenever the batch spans more than one shard.
func (d *Dict) ContainsBatchParallel(keys []uint64, out []bool, r rng.Source) error {
	groups := d.groupBatch(keys, r)
	busy := 0
	for _, g := range groups {
		if len(g.keys) > 0 {
			busy++
		}
	}
	if busy <= 1 {
		for shard, g := range groups {
			if err := d.answerGroup(shard, g, out, r); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for shard, g := range groups {
		if len(g.keys) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard int, g group) {
			defer wg.Done()
			errs[shard] = d.answerGroup(shard, g, out, r)
		}(shard, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ProbeSpec returns the exact composite probe distribution for x: the
// uniform routing span at step 0, then the owning shard's own spec with
// cells offset into its range and steps offset into its disjoint step
// window.
func (d *Dict) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	i := d.ShardOf(x)
	inner := d.shards[i].ProbeSpec(x)
	spec := make(cellprobe.ProbeSpec, d.stepOff[i], d.stepOff[i]+len(inner))
	spec[0] = cellprobe.UniformSpan(0, d.routeW, 1)
	for _, step := range inner {
		shifted := make(cellprobe.StepSpec, len(step))
		for k, sp := range step {
			sp.Start += d.cellOff[i]
			shifted[k] = sp
		}
		spec = append(spec, shifted)
	}
	return spec
}

// ComposeExact computes the composite's exact contention analytically from
// its parts: the routing step's per-cell mass plus, for each shard, the
// exact spectrum of that shard alone under the conditional support the
// routing sends it. It returns max_{t,j} Φ_t(j), the quantity whose product
// with the cell count is the headline RatioStep. Because the composite's
// steps are shard-disjoint, the result is bit-identical to
// contention.Exact(d, support).MaxStep — composition is exact in the model
// and in float64.
func (d *Dict) ComposeExact(support []dist.Weighted) (float64, error) {
	// Routing step: every query probes one of routeW replicas uniformly.
	// Same float operations, in the same support order, as the exact
	// analyzer's difference array for step 0.
	max := 0.0
	for _, w := range support {
		pc := cellprobe.Span{Start: 0, Count: d.routeW, Mass: 1}.PerCell() * w.P
		max += pc
	}
	subs := make([][]dist.Weighted, len(d.shards))
	for _, w := range support {
		i := d.ShardOf(w.Key)
		subs[i] = append(subs[i], w)
	}
	for i, sub := range subs {
		if len(sub) == 0 {
			continue
		}
		res, err := contention.Exact(d.shards[i], sub)
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
		if res.MaxStep > max {
			max = res.MaxStep
		}
	}
	return max, nil
}
