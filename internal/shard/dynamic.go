package shard

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
)

// DynamicDict is a P-way sharded mutable dictionary: one internal/dynamic
// epoch-snapshot dictionary per shard behind the same top-level routing
// hash the static composite uses. Each shard keeps its own update buffer,
// epoch pointer and background rebuild, so an insert storm concentrated on
// one shard rebuilds ε·(n/P) keys on that shard alone — the other P−1
// shards' snapshots stay untouched and their readers never even observe an
// epoch change.
//
// Routing is pure arithmetic on the immutable hash (no shared memory), so
// every concurrency property of the single dictionary — lock-free reads,
// lock-free CAS claim-slot updates — holds per shard and therefore for the
// composite: any number of goroutines may Insert, Delete and Contains
// concurrently. Unlike the static Dict, the dynamic composite is not a
// scheme.Scheme: probe accounting lives inside each shard (see
// dynamic.Dict.Stats).
type DynamicDict struct {
	route  hash.Pairwise
	shards []*dynamic.Dict
}

// NewDynamic builds a P-way sharded dynamic dictionary over the initial
// keys. p configures every shard identically.
func NewDynamic(initial []uint64, shards int, p dynamic.Params, seed uint64) (*DynamicDict, error) {
	return NewDynamicWithMetrics(initial, shards, p, seed, nil)
}

// NewDynamicWithMetrics is NewDynamic with a per-shard metrics supplier:
// when metricsFor is non-nil, shard i is built with p.Metrics replaced by
// metricsFor(i), so each shard's rebuild telemetry lands in its own slot
// (the facade passes telemetry.Telemetry.DynamicShard).
func NewDynamicWithMetrics(initial []uint64, shards int, p dynamic.Params, seed uint64, metricsFor func(i int) dynamic.Metrics) (*DynamicDict, error) {
	var configure func(i int, sp *dynamic.Params)
	if metricsFor != nil {
		configure = func(i int, sp *dynamic.Params) { sp.Metrics = metricsFor(i) }
	}
	return NewDynamicWithHooks(initial, shards, p, seed, configure)
}

// NewDynamicWithHooks is NewDynamic with a per-shard parameter hook: when
// configure is non-nil it runs on a copy of p for each shard before the
// shard is built, so per-shard state — metrics slots, hot-key classifiers
// (each shard classifies and turns phases independently, matching its
// independent rebuilds) — never crosses shard boundaries.
func NewDynamicWithHooks(initial []uint64, shards int, p dynamic.Params, seed uint64, configure func(i int, sp *dynamic.Params)) (*DynamicDict, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be ≥ 1", shards)
	}
	if err := scheme.ValidateKeys(initial); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	route := hash.NewPairwise(rng.New(seed^routeSalt), uint64(shards))
	parts := make([][]uint64, shards)
	for _, k := range initial {
		parts[route.Eval(k)] = append(parts[route.Eval(k)], k)
	}
	d := &DynamicDict{route: route, shards: make([]*dynamic.Dict, shards)}
	for i, part := range parts {
		sp := p
		if configure != nil {
			configure(i, &sp)
		}
		if sp.Events != nil {
			// Every shard emits into the one shared flight recorder, labeled
			// with its index; multi-shard composites additionally surface
			// each shard's published rebuilds as ShardRebuild events.
			sp.EventShard = i
			sp.ShardEvents = shards > 1
		}
		inner, err := dynamic.New(part, sp, subseed(seed, i))
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", i, shards, err)
		}
		d.shards[i] = inner
	}
	return d, nil
}

// Shards returns the shard count P.
func (d *DynamicDict) Shards() int { return len(d.shards) }

// Shard returns the i-th sub-dictionary.
func (d *DynamicDict) Shard(i int) *dynamic.Dict { return d.shards[i] }

// ShardOf returns the shard index the routing hash assigns to x.
func (d *DynamicDict) ShardOf(x uint64) int { return int(d.route.Eval(x)) }

// Contains reports membership of x. Lock-free: it routes and probes one
// shard's current epoch.
func (d *DynamicDict) Contains(x uint64, r rng.Source) (bool, error) {
	return d.shards[d.ShardOf(x)].Contains(x, r)
}

// ContainsTraced is Contains with caller-supplied scratch, reporting which
// shard answered — the telemetry layer's traced-query entry point (arm the
// scratch with StartCapture first). Captured cell indices are local to the
// answering shard's current static snapshot.
func (d *DynamicDict) ContainsTraced(x uint64, r rng.Source, sc *core.QueryScratch) (bool, int, error) {
	i := d.ShardOf(x)
	ok, err := d.shards[i].ContainsScratch(x, r, sc)
	return ok, i, err
}

// Insert adds x, touching only its shard; it reports whether the set
// changed. Safe for any number of concurrent callers.
func (d *DynamicDict) Insert(x uint64) (bool, error) {
	return d.shards[d.ShardOf(x)].Insert(x)
}

// Delete removes x, touching only its shard; it reports whether the set
// changed. Safe for any number of concurrent callers.
func (d *DynamicDict) Delete(x uint64) (bool, error) {
	return d.shards[d.ShardOf(x)].Delete(x)
}

// InsertBatch inserts every key, fanning the batch out across shards — one
// goroutine per non-empty shard group, each group's keys applied in order by
// that shard's lock-free claim path. It returns how many keys actually
// changed the set. Groups touching distinct shards share no mutable memory
// at all; within a shard, concurrent claims coordinate by CAS.
func (d *DynamicDict) InsertBatch(keys []uint64) (int, error) {
	return d.updateBatch(keys, false)
}

// DeleteBatch deletes every key with the same shard-parallel fan-out as
// InsertBatch, returning how many keys actually changed the set.
func (d *DynamicDict) DeleteBatch(keys []uint64) (int, error) {
	return d.updateBatch(keys, true)
}

func (d *DynamicDict) updateBatch(keys []uint64, del bool) (int, error) {
	groups := d.groupBatch(keys)
	busy := 0
	for _, g := range groups {
		if len(g.keys) > 0 {
			busy++
		}
	}
	apply := func(shard int, g dynGroup) (int, error) {
		changed := 0
		for _, k := range g.keys {
			var ok bool
			var err error
			if del {
				ok, err = d.shards[shard].Delete(k)
			} else {
				ok, err = d.shards[shard].Insert(k)
			}
			if err != nil {
				return changed, err
			}
			if ok {
				changed++
			}
		}
		return changed, nil
	}
	if busy <= 1 {
		for shard, g := range groups {
			if len(g.keys) > 0 {
				return apply(shard, g)
			}
		}
		return 0, nil
	}
	changed := make([]int, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for shard, g := range groups {
		if len(g.keys) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard int, g dynGroup) {
			defer wg.Done()
			changed[shard], errs[shard] = apply(shard, g)
		}(shard, g)
	}
	wg.Wait()
	total := 0
	for shard := range groups {
		if errs[shard] != nil {
			return 0, errs[shard]
		}
		total += changed[shard]
	}
	return total, nil
}

// Len returns the current key count, summed over shards without locking.
func (d *DynamicDict) Len() int {
	n := 0
	for _, s := range d.shards {
		n += s.Len()
	}
	return n
}

// dynGroup is one shard's slice of a batch.
type dynGroup struct {
	keys []uint64
	idx  []int
}

func (d *DynamicDict) groupBatch(keys []uint64) []dynGroup {
	groups := make([]dynGroup, len(d.shards))
	for i, k := range keys {
		g := d.ShardOf(k)
		groups[g].keys = append(groups[g].keys, k)
		groups[g].idx = append(groups[g].idx, i)
	}
	return groups
}

func (d *DynamicDict) answerGroup(shard int, g dynGroup, out []bool, r rng.Source) error {
	if len(g.keys) == 0 {
		return nil
	}
	ans := make([]bool, len(g.keys))
	// dynamic.ContainsBatch pins one epoch for the whole group, so each
	// shard's slice of the batch is answered against a single snapshot.
	if err := d.shards[shard].ContainsBatch(g.keys, ans, r); err != nil {
		return err
	}
	for j, i := range g.idx {
		out[i] = ans[j]
	}
	return nil
}

// ContainsBatch answers membership for every keys[i] into out[i]. The batch
// is grouped by shard and each group is answered against a single epoch
// snapshot of its shard (loaded once per group); groups are answered
// sequentially. out must be at least as long as keys.
func (d *DynamicDict) ContainsBatch(keys []uint64, out []bool, r rng.Source) error {
	for shard, g := range d.groupBatch(keys) {
		if err := d.answerGroup(shard, g, out, r); err != nil {
			return err
		}
	}
	return nil
}

// ContainsBatchParallel is ContainsBatch with the per-shard groups answered
// concurrently, one goroutine per non-empty group. The source must be safe
// for concurrent use (rng.Sharded is) whenever the batch spans more than
// one shard.
func (d *DynamicDict) ContainsBatchParallel(keys []uint64, out []bool, r rng.Source) error {
	groups := d.groupBatch(keys)
	busy := 0
	for _, g := range groups {
		if len(g.keys) > 0 {
			busy++
		}
	}
	if busy <= 1 {
		for shard, g := range groups {
			if err := d.answerGroup(shard, g, out, r); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for shard, g := range groups {
		if len(g.keys) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard int, g dynGroup) {
			defer wg.Done()
			errs[shard] = d.answerGroup(shard, g, out, r)
		}(shard, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rebuilds returns the total number of rebuilds across all shards (each
// shard's initial construction counts as its first).
func (d *DynamicDict) Rebuilds() int {
	total := 0
	for _, s := range d.shards {
		total += s.Stats().Epoch
	}
	return total
}

// Stats sums the dynamic statistics over all shards. Per-shard epoch
// detail (SnapshotN, BufferSlots, rebuild cells) is aggregated additively;
// SplitPhase reports whether any shard currently runs a split phase.
func (d *DynamicDict) Stats() dynamic.Stats {
	var total dynamic.Stats
	for _, s := range d.shards {
		st := s.Stats()
		total.Len += st.Len
		total.Epoch += st.Epoch
		total.SnapshotN += st.SnapshotN
		total.Buffered += st.Buffered
		total.BufferSlots += st.BufferSlots
		total.RebuildKeys += st.RebuildKeys
		total.Updates += st.Updates
		total.ReadProbes += st.ReadProbes
		total.WriteProbes += st.WriteProbes
		total.WriteCASRetries += st.WriteCASRetries
		total.RebuildCells += st.RebuildCells
		total.StaticHashTries += st.StaticHashTries
		total.AbsorbedWrites += st.AbsorbedWrites
		total.PhaseSeals += st.PhaseSeals
		total.HotKeys += st.HotKeys
		total.SplitPhase = total.SplitPhase || st.SplitPhase
	}
	return total
}

// Quiesce blocks until every shard's in-flight rebuild has published.
func (d *DynamicDict) Quiesce() {
	for _, s := range d.shards {
		s.Quiesce()
	}
}
