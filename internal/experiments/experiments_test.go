package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func renderOK(t *testing.T, tab *Table) {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatalf("%s render: %v", tab.ID, err)
	}
	out := buf.String()
	if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Columns[0]) {
		t.Errorf("%s render missing header:\n%s", tab.ID, out)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Errorf("%s: row width %d != %d columns: %v", tab.ID, len(row), len(tab.Columns), row)
		}
	}
}

func TestT1ShapeFlatRatio(t *testing.T) {
	tab, err := T1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	if len(tab.Rows) != len(Quick().Sizes) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio := parseF(t, row[5])
		if ratio > 64 {
			t.Errorf("n=%s: exact ratio %v not O(1)", row[0], ratio)
		}
		mc := parseF(t, row[6])
		if mc > 3*ratio+10 {
			t.Errorf("n=%s: Monte-Carlo ratio %v far above exact %v", row[0], mc, ratio)
		}
		probes := parseF(t, row[3])
		maxProbes := parseF(t, row[4])
		if probes > maxProbes {
			t.Errorf("n=%s: probes %v exceed max %v", row[0], probes, maxProbes)
		}
		cellsPerN := parseF(t, row[2])
		if cellsPerN > 60 {
			t.Errorf("n=%s: space %v cells/key not linear-looking", row[0], cellsPerN)
		}
	}
}

func TestT2ShapeOrdering(t *testing.T) {
	tab, err := T2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	// Columns: n, lnn/lnlnn, sqrt, then the names list of T2.
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	last := tab.Rows[len(tab.Rows)-1]
	n := parseF(t, last[0])
	lcds, fksRep, dm := parseF(t, last[idx["lcds"]]), parseF(t, last[idx["fks+rep"]]), parseF(t, last[idx["dm"]])
	ckRep, bsearch := parseF(t, last[idx["cuckoo+rep"]]), parseF(t, last[idx["bsearch"]])
	chained := parseF(t, last[idx["chained+rep"]])
	fksPlain, ckPlain := parseF(t, last[idx["fks"]]), parseF(t, last[idx["cuckoo"]])
	// Whole-structure replication does not improve the ratio: within MC-free
	// exact arithmetic the two bsearch columns are equal.
	if rb := parseF(t, last[idx["bsearch+rep"]]); rb != bsearch {
		t.Errorf("bsearch+rep ratio %v != bsearch %v", rb, bsearch)
	}
	// chained's 3n-cell table makes its *relative* ratio small even though
	// its hottest cell is ℓ_max× hotter than any lcds cell in absolute
	// terms; the ratio just has to sit in the polylog band below bsearch.
	if chained <= 3 || chained >= bsearch {
		t.Errorf("chained+rep ratio %v outside (3, bsearch=%v)", chained, bsearch)
	}
	if lcds > 64 {
		t.Errorf("lcds ratio %v not constant", lcds)
	}
	for name, v := range map[string]float64{"fks+rep": fksRep, "dm": dm, "cuckoo+rep": ckRep} {
		if v <= lcds {
			t.Errorf("%s ratio %v not above lcds %v", name, v, lcds)
		}
	}
	// Ratios are relative to each structure's own cell count; dm's table is
	// ≈ 56n cells vs bsearch's n, so dm crosses below bsearch only at
	// larger n (visible in the full-scale run). The small-table baselines
	// must already sit below bsearch here.
	for name, v := range map[string]float64{"fks+rep": fksRep, "cuckoo+rep": ckRep} {
		if v >= bsearch {
			t.Errorf("%s ratio %v not below bsearch %v", name, v, bsearch)
		}
	}
	if dm >= 4*bsearch {
		t.Errorf("dm ratio %v not within polylog band of n", dm)
	}
	if bsearch < n-1 {
		t.Errorf("bsearch ratio %v, want ≈ n = %v", bsearch, n)
	}
	// Plain variants pin the parameter cell: ratio equals the cell count.
	if fksPlain < 4*n-1 {
		t.Errorf("plain fks ratio %v, want = cells = 4n", fksPlain)
	}
	if ckPlain < 2*n-1 {
		t.Errorf("plain cuckoo ratio %v, want ≥ cells of one side", ckPlain)
	}
}

func TestT3ShapeSkewDegrades(t *testing.T) {
	cfg := Quick()
	tab, err := T3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		uniform := parseF(t, row[1])
		point := parseF(t, row[4])
		if point < uniform-1e-9 {
			t.Errorf("%s: point-mass ratio %v below uniform %v", row[0], point, uniform)
		}
		// Point mass pins at least one cell completely: ratio = cells ≥ n.
		if point < float64(cfg.FixedN) {
			t.Errorf("%s: point-mass ratio %v below n", row[0], point)
		}
	}
}

func TestT4ShapeConstantTries(t *testing.T) {
	cfg := Quick()
	cfg.Trials = 5
	tab, err := T4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		if mean := parseF(t, row[2]); mean > 16 {
			t.Errorf("n=%s: mean hash tries %v not O(1)", row[0], mean)
		}
		if perBucket := parseF(t, row[5]); perBucket > 4 {
			t.Errorf("n=%s: perfect tries per bucket %v, expected ≈ ≤ 2", row[0], perBucket)
		}
	}
}

func TestT5ShapeLemma9Rates(t *testing.T) {
	cfg := Quick()
	cfg.Trials = 20
	tab, err := T5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		p1, p2, p3 := parseF(t, row[2]), parseF(t, row[3]), parseF(t, row[4])
		if p1 < 0.9 {
			t.Errorf("n=%s: Lemma 9(1) rate %v", row[0], p1)
		}
		if p2 < 0.9 {
			t.Errorf("n=%s: Lemma 9(2) rate %v", row[0], p2)
		}
		if p3 < 0.5 {
			t.Errorf("n=%s: FKS condition rate %v below 1/2", row[0], p3)
		}
	}
}

func TestF1ShapeProfiles(t *testing.T) {
	tab, err := F1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	heads := map[string]float64{}
	ginis := map[string]float64{}
	for _, row := range tab.Rows {
		heads[row[0]] = parseF(t, row[1])
		ginis[row[0]] = parseF(t, row[len(row)-2])
		// Quantile columns are sorted descending (the last two columns
		// are the flatness metrics).
		prev := parseF(t, row[1])
		for i := 2; i < len(row)-2; i++ {
			v := parseF(t, row[i])
			if v > prev+1e-9 {
				t.Errorf("%s: profile not descending at column %d", row[0], i)
			}
			prev = v
		}
	}
	if ginis["lcds"] >= ginis["bsearch"] {
		t.Errorf("lcds gini %v not below bsearch %v", ginis["lcds"], ginis["bsearch"])
	}
	if heads["lcds"] > 64 {
		t.Errorf("lcds hottest cell %v not O(1)", heads["lcds"])
	}
	if heads["bsearch"] < heads["lcds"] {
		t.Errorf("bsearch head %v below lcds %v", heads["bsearch"], heads["lcds"])
	}
}

func TestF2ShapeSlowdowns(t *testing.T) {
	tab, err := F2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	// Columns: m, lcds, fks+rep, dm, cuckoo+rep, bsearch, linear+rep
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	last := tab.Rows[len(tab.Rows)-1] // largest m
	m := parseF(t, last[0])
	lcds := parseF(t, last[idx["lcds"]])
	bsearch := parseF(t, last[idx["bsearch"]])
	if lcds > 4 {
		t.Errorf("lcds slowdown %v at m=%v", lcds, m)
	}
	// Binary search serializes on the root: makespan ≥ m, so slowdown is
	// at least (m-1)/idealSpan with idealSpan = ⌈lg n⌉ + 1 probes.
	idealSpan := 1.0
	for n := Quick().FixedN; n > 0; n /= 2 {
		idealSpan++
	}
	if bsearch < (m-1)/idealSpan {
		t.Errorf("bsearch slowdown %v at m=%v, want ≥ %v", bsearch, m, (m-1)/idealSpan)
	}
	if bsearch < 3*lcds {
		t.Errorf("no separation: bsearch %v vs lcds %v", bsearch, lcds)
	}
	// Slowdown at m=1 is exactly 1 for everything.
	first := tab.Rows[0]
	for i := 1; i < len(first); i++ {
		if v := parseF(t, first[i]); v != 1 {
			t.Errorf("column %s: slowdown %v at m=1", tab.Columns[i], v)
		}
	}
}

func TestF3ShapeLogLogGrowth(t *testing.T) {
	tab, err := F3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	prev := 0.0
	for _, row := range tab.Rows {
		v := parseF(t, row[2])
		if v < prev {
			t.Errorf("t* decreased at n=%s", row[0])
		}
		prev = v
	}
	first := parseF(t, tab.Rows[0][2])
	lastRow := tab.Rows[len(tab.Rows)-1]
	last := parseF(t, lastRow[2])
	if last <= first {
		t.Errorf("t* not growing: %v -> %v", first, last)
	}
	loglog := parseF(t, lastRow[1])
	if last > 3*loglog+4 {
		t.Errorf("t* = %v too far above lg lg n = %v", last, loglog)
	}
}

func TestF4ShapeGameAccounting(t *testing.T) {
	cfg := Quick()
	cfg.Sizes = []int{256, 512}
	tab, err := F4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		if parseF(t, row[2]) > 1.01 {
			t.Errorf("n=%s: round-0 info rate %s, want ≈ 1", row[0], row[2])
		}
		n := parseF(t, row[0])
		if maxInfo := parseF(t, row[3]); maxInfo < 0.9*n {
			t.Errorf("n=%s: max info %v, want ≈ n", row[0], maxInfo)
		}
		if row[6] != "true" {
			t.Errorf("n=%s: game infeasible", row[0])
		}
		if row[7] != "true" {
			t.Errorf("n=%s: lemma 16 check failed", row[0])
		}
	}
}

func TestRunDispatchAndAll(t *testing.T) {
	cfg := Quick()
	cfg.Sizes = []int{256}
	cfg.FixedN = 256
	cfg.Trials = 3
	cfg.Queries = 5000
	cfg.Procs = []int{1, 8}
	if _, err := Run("nope", cfg); err == nil {
		t.Error("unknown id accepted")
	}
	tabs, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(IDs()) {
		t.Fatalf("All returned %d tables", len(tabs))
	}
	seen := map[string]bool{}
	for _, tab := range tabs {
		if seen[tab.ID] {
			t.Errorf("duplicate table %s", tab.ID)
		}
		seen[tab.ID] = true
		renderOK(t, tab)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{
		ID:      "TX",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### TX: demo", "| a | b |", "| --- | --- |", "| 3 | 4 |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestKeysDistinctAndDeterministic(t *testing.T) {
	a := Keys(500, 1)
	b := Keys(500, 1)
	c := Keys(500, 2)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Keys not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("duplicate key")
		}
		seen[a[i]] = true
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d equal keys", same)
	}
}

func TestBuildAllNames(t *testing.T) {
	keys := Keys(100, 3)
	sts, err := BuildAll(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"lcds", "fks", "fks+rep", "dm", "cuckoo", "cuckoo+rep", "bsearch", "linear+rep", "chained+rep", "bsearch+rep", "bloom+rep"}
	if len(sts) != len(want) {
		t.Fatalf("got %d structures", len(sts))
	}
	for i, st := range sts {
		if st.Name() != want[i] {
			t.Errorf("structure %d = %s, want %s", i, st.Name(), want[i])
		}
	}
	comp, err := ComparisonSet(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != 6 {
		t.Errorf("comparison set has %d structures", len(comp))
	}
}
