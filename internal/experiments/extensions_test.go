package experiments

import "testing"

func TestX1ShapeDynamicContention(t *testing.T) {
	cfg := Quick()
	cfg.Sizes = []int{256, 512}
	cfg.Queries = 20000
	tab, err := X1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		if rebuilds := parseF(t, row[2]); rebuilds < 1 {
			t.Errorf("n=%s: no rebuilds under churn of n ops", row[0])
		}
		// Amortized rebuild work per op is O(1/ε) = O(4) keys plus churn
		// effects; anything below ~16 keys/op is the claimed constant band.
		if work := parseF(t, row[3]); work > 16 {
			t.Errorf("n=%s: amortized rebuild keys/op %v", row[0], work)
		}
		if wp := parseF(t, row[4]); wp < 2 || wp > 16 {
			t.Errorf("n=%s: write probes/op %v outside O(1) band", row[0], wp)
		}
		if ratio := parseF(t, row[5]); ratio > 192 {
			t.Errorf("n=%s: base read ratio %v after churn", row[0], ratio)
		}
	}
}

func TestT6ShapeAbsoluteContention(t *testing.T) {
	cfg := Quick()
	tab, err := T6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	last := tab.Rows[len(tab.Rows)-1]
	n := parseF(t, last[0])
	lcds := parseF(t, last[idx["lcds"]])
	if lcds > 4 {
		t.Errorf("lcds maxΦ·n = %v, want O(1) near 1", lcds)
	}
	// Every header-indexed structure's hottest cell is at least as hot as
	// lcds's in absolute terms.
	for _, name := range []string{"fks+rep", "dm", "cuckoo+rep", "chained+rep"} {
		if v := parseF(t, last[idx[name]]); v < lcds {
			t.Errorf("%s maxΦ·n = %v below lcds %v", name, v, lcds)
		}
	}
	// bsearch and plain fks have a contention-1 cell: maxΦ·n = n.
	for _, name := range []string{"bsearch", "fks"} {
		if v := parseF(t, last[idx[name]]); v < n-1 {
			t.Errorf("%s maxΦ·n = %v, want ≈ n = %v", name, v, n)
		}
	}
}

func TestA1ShapeSpaceAblation(t *testing.T) {
	cfg := Quick()
	tab, err := A1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prevCells := 0.0
	for _, row := range tab.Rows {
		cells := parseF(t, row[1])
		if cells <= prevCells {
			t.Errorf("cells not increasing with beta: %v after %v", cells, prevCells)
		}
		prevCells = cells
		// The absolute contention maxΦ·n must stay in a flat O(1) band
		// across β — that is Theorem 3's O(1/n), independent of space.
		if abs := parseF(t, row[5]); abs > 40 {
			t.Errorf("beta=%s: maxΦ·n = %v not flat", row[0], abs)
		}
	}
}

func TestA2ShapeDegreeAblation(t *testing.T) {
	cfg := Quick()
	tab, err := A2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	prevProbes := 0.0
	for _, row := range tab.Rows {
		probes := parseF(t, row[1])
		if probes <= prevProbes {
			t.Errorf("probes not increasing with d: %v after %v", probes, prevProbes)
		}
		prevProbes = probes
		if ratio := parseF(t, row[2]); ratio > 96 {
			t.Errorf("d=%s: ratio %v", row[0], ratio)
		}
	}
}

func TestA4ShapeLayoutEquivalence(t *testing.T) {
	cfg := Quick()
	cfg.Sizes = []int{512}
	cfg.Queries = 60000
	tab, err := A4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		mcBlock, mcStrided := parseF(t, row[2]), parseF(t, row[3])
		if mcBlock < 0.5*mcStrided || mcBlock > 2*mcStrided {
			t.Errorf("n=%s: layouts disagree: block mc %v vs strided mc %v", row[0], mcBlock, mcStrided)
		}
		if row[4] != row[5] {
			t.Errorf("n=%s: probe counts differ: %s vs %s", row[0], row[4], row[5])
		}
	}
}

func TestT7ShapeNegativeQueries(t *testing.T) {
	cfg := Quick()
	cfg.Sizes = []int{256, 512}
	cfg.Queries = 60000
	tab, err := T7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	for _, row := range tab.Rows {
		lcds := parseF(t, row[idx["lcds"]])
		bsearch := parseF(t, row[idx["bsearch"]])
		if lcds > 96 {
			t.Errorf("n=%s: negative-query lcds ratio %v not O(1)", row[0], lcds)
		}
		n := parseF(t, row[0])
		if bsearch < n/2 {
			t.Errorf("n=%s: bsearch negative ratio %v, want ≈ n", row[0], bsearch)
		}
	}
}

func TestA6ShapeHashFamilies(t *testing.T) {
	cfg := Quick()
	cfg.Trials = 15
	tab, err := A6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		dm := parseF(t, row[5])
		bound := parseF(t, row[6])
		if dm > bound {
			t.Errorf("n=%s: DM family max/mean %v exceeds the Lemma 9(2) bound %v", row[0], dm, bound)
		}
		// All families produce loads ≥ the mean.
		for i := 2; i <= 5; i++ {
			if v := parseF(t, row[i]); v < 1 {
				t.Errorf("n=%s: column %d max/mean %v below 1", row[0], i, v)
			}
		}
	}
}

func TestX2ShapeKnownQRepair(t *testing.T) {
	cfg := Quick()
	cfg.FixedN = 512
	tab, err := X2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		plain := parseF(t, row[1])
		r4, r8, r16 := parseF(t, row[2]), parseF(t, row[3]), parseF(t, row[4])
		// Ratios are not necessarily monotone in R: once the cold
		// structure's heaviest non-hot key becomes the bottleneck, extra
		// copies only add cells. But no R may be substantially worse than
		// oblivious, and R=8 must clearly beat it for real skew.
		for _, v := range []float64{r4, r8, r16} {
			if v > 1.25*plain {
				t.Errorf("zipf %s: skew ratio %v worse than plain %v", row[0], v, plain)
			}
		}
		if exp := parseF(t, row[0]); exp >= 0.8 && r8 > plain/2 {
			t.Errorf("zipf %s: R=8 ratio %v not well below plain %v", row[0], r8, plain)
		}
	}
}

// TestF3Golden pins the purely arithmetic F3 series: any change to the
// t* solver that shifts these values is a regression (or a deliberate
// recalibration that must update this test and EXPERIMENTS.md together).
func TestF3Golden(t *testing.T) {
	tab, err := F3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"2^8":    "1",
		"2^128":  "2",
		"2^384":  "3",
		"2^1024": "4",
		"2^2048": "5",
	}
	for _, row := range tab.Rows {
		if w, ok := want[row[0]]; ok && row[2] != w {
			t.Errorf("t*(%s, lg²n budget) = %s, want %s", row[0], row[2], w)
		}
	}
}

func TestP1RunsAndReportsPositiveThroughput(t *testing.T) {
	cfg := Quick()
	cfg.FixedN = 512
	cfg.Queries = 8000
	tab, err := P1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	if len(tab.Rows) < 1 {
		t.Fatal("no thread counts")
	}
	for _, row := range tab.Rows {
		for i := 1; i < len(row); i++ {
			if v := parseF(t, row[i]); v <= 0 {
				t.Errorf("thread row %s column %s: non-positive throughput %v", row[0], tab.Columns[i], v)
			}
		}
	}
}

func TestF5ShapeSaturation(t *testing.T) {
	cfg := Quick()
	tab, err := F5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	// At the highest rate, bsearch's latency must dwarf lcds's.
	last := tab.Rows[len(tab.Rows)-1]
	lcds := parseF(t, last[idx["lcds"]])
	bsearch := parseF(t, last[idx["bsearch"]])
	if bsearch < 10*lcds {
		t.Errorf("no saturation separation: bsearch %v vs lcds %v", bsearch, lcds)
	}
	// At λ = 0.5 (underloaded), everyone's latency is near their probe count.
	first := tab.Rows[0]
	for i := 1; i < len(first); i++ {
		if v := parseF(t, first[i]); v > 40 {
			t.Errorf("%s: underloaded latency %v", tab.Columns[i], v)
		}
	}
	// bsearch latency is non-decreasing in λ.
	prev := 0.0
	for _, row := range tab.Rows {
		v := parseF(t, row[idx["bsearch"]])
		if v+1e-9 < prev {
			t.Errorf("bsearch latency decreased at λ=%s", row[0])
		}
		prev = v
	}
}

func TestW1ShapeWorkloads(t *testing.T) {
	cfg := Quick()
	cfg.Queries = 30000
	tab, err := W1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	for _, row := range tab.Rows {
		uniform := parseF(t, row[1])
		if row[0] == "lcds" {
			// Working-set skew concentrates lcds's deterministic data
			// probes on the hot keys: the ratio rises well above uniform
			// but stays far from the point-mass extreme (= cells).
			ws := parseF(t, row[2])
			if ws < uniform {
				t.Errorf("lcds working-set ratio %v below uniform %v", ws, uniform)
			}
			// Scan queries each key equally often: total contention like
			// uniform (within MC noise bands).
			scan := parseF(t, row[3])
			if scan > 4*uniform+20 {
				t.Errorf("lcds scan ratio %v far above uniform %v", scan, uniform)
			}
		}
	}
}

func TestA5ShapeCombining(t *testing.T) {
	cfg := Quick()
	tab, err := A5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	for _, row := range tab.Rows {
		plain, combined := parseF(t, row[1]), parseF(t, row[2])
		if combined > plain+1e-9 {
			t.Errorf("%s: combining made things worse (%v > %v)", row[0], combined, plain)
		}
		if row[0] == "bsearch" && combined > plain/2 {
			t.Errorf("bsearch: combining improvement too small (%v vs %v)", combined, plain)
		}
		if row[0] == "lcds" && plain > 2*combined+1 {
			t.Errorf("lcds should not need combining: plain %v vs combined %v", plain, combined)
		}
	}
}

func TestA3ShapeBankAblation(t *testing.T) {
	cfg := Quick()
	tab, err := A3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, tab)
	// The last row is the per-cell model; it must dominate (lowest
	// slowdowns) every banked configuration for the lcds column.
	idx := map[string]int{}
	for i, c := range tab.Columns {
		idx[c] = i
	}
	perCell := tab.Rows[len(tab.Rows)-1]
	if perCell[0] != "per-cell" {
		t.Fatalf("last row is %q", perCell[0])
	}
	lcdsPerCell := parseF(t, perCell[idx["lcds"]])
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		v := parseF(t, row[idx["lcds"]])
		if v+1e-9 < lcdsPerCell {
			t.Errorf("banks=%s: lcds slowdown %v below per-cell %v", row[0], v, lcdsPerCell)
		}
	}
	// With very few banks everything serializes toward m/banks; the
	// smallest bank count must show real slowdown even for lcds.
	few := parseF(t, tab.Rows[0][idx["lcds"]])
	if few < 1.5 {
		t.Errorf("16 banks: lcds slowdown %v suspiciously low", few)
	}
}
