package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hash"
	"repro/internal/rng"
)

// T1 — Theorem 3 head-on: the low-contention dictionary is an
// (O(n), b, O(1), O(1/n))-balanced scheme. For each n we report the exact
// per-step contention ratio to optimal (must stay O(1)), the probe count
// (constant), and the space per key (constant), under uniform positive
// queries; a Monte-Carlo column cross-checks the analysis.
func T1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T1",
		Title: "Theorem 3 — contention, time, and space of the low-contention dictionary (uniform positive queries)",
		Columns: []string{"n", "cells", "cells/n", "probes", "maxProbes",
			"ratioStep(exact)", "ratioStep(mc)", "ratioTotal(exact)"},
		Notes: []string{
			"ratioStep = max_{t,j} Φ_t(j) · s; optimal is 1, Theorem 3 promises O(1) — the column must stay flat as n grows",
			"probes = expected cell probes per query; maxProbes = worst case (2d + ρ + 4)",
			fmt.Sprintf("Monte-Carlo column uses %d sampled queries; it overshoots the exact value by Poisson sampling noise that grows with s/queries (the exact column is the claim)", cfg.Queries),
		},
	}
	for _, n := range cfg.Sizes {
		keys := Keys(n, cfg.Seed+uint64(n))
		lc, err := core.Build(keys, core.Params{}, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		q := dist.NewUniformSet(keys, "")
		ex, err := contention.Exact(lc, q.Support())
		if err != nil {
			return nil, err
		}
		mc, err := contention.MonteCarlo(lc, q, cfg.Queries, rng.New(cfg.Seed^uint64(n)))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(n), d(ex.Cells), f2s(float64(ex.Cells) / float64(n)),
			f2s(ex.Probes), d(lc.MaxProbes()),
			f1(ex.RatioStep()), f1(mc.RatioStep()), f1(ex.RatioTotal()),
		})
	}
	return t, nil
}

// T2 — the §1.3 comparison: contention ratio to optimal for every structure
// as n grows. The paper's predictions: LCDS O(1); replicated FKS Θ(√n)
// worst-case (measured values on random keys track the balls-in-bins
// Θ(ln n/ln ln n) average case); DM and cuckoo Θ(ln n/ln ln n); binary
// search Θ(s).
func T2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T2",
		Title: "Contention ratio to optimal vs n — LCDS and the §1.3 baselines (uniform positive queries)",
		Notes: []string{
			"entries are max_{t,j} Φ_t(j)·s, exact; optimal = 1",
			"paper predictions: lcds O(1); fks+rep Θ(√n) worst case; dm, cuckoo+rep Θ(ln n/ln ln n); bsearch Θ(s) = Θ(n)",
			"plain fks/cuckoo pin their parameter cell: ratio = s exactly (the §1 hot spot)",
			"on random key sets FKS's measured max bucket load follows the average-case ln n/ln ln n rather than its √n worst-case guarantee",
			"ratios normalize by each structure's own cell count; structures with small tables (chained: 3n cells) read low here even when their hottest cell is hotter than lcds's in absolute Φ·n terms",
		},
	}
	names := cfg.filterNames([]string{"lcds", "fks+rep", "dm", "cuckoo+rep", "chained+rep", "bsearch", "bsearch+rep", "linear+rep", "fks", "cuckoo"})
	t.Columns = append([]string{"n", "ln n/ln ln n", "sqrt n"}, names...)
	for _, n := range cfg.Sizes {
		keys := Keys(n, cfg.Seed+uint64(n))
		sts, err := BuildRoster(names, keys, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		q := dist.NewUniformSet(keys, "")
		ratios := map[string]float64{}
		for _, st := range sts {
			ex, err := contention.Exact(st, q.Support())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", st.Name(), err)
			}
			ratios[st.Name()] = ex.RatioStep()
		}
		ln := math.Log(float64(n))
		row := []string{d(n), f2s(ln / math.Log(ln)), f1(math.Sqrt(float64(n)))}
		for _, name := range names {
			row = append(row, f1(ratios[name]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// T6 — the cross-structure comparable view of T2: absolute per-cell probe
// probability scaled by n (maxΦ·n). Unlike the ratio to each structure's
// own optimum, this does not reward small tables: it is the expected number
// of probes the hottest cell receives when n queries run, divided by... n/n
// — i.e. the paper's O(1/n) claim reads as an O(1) entry here.
func T6(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T6",
		Title: "Absolute contention maxΦ·n vs n (uniform positive queries)",
		Notes: []string{
			"maxΦ·n = n × the hottest cell's per-query probe probability; with n simultaneous queries the hottest cell expects this many probes (linearity of expectation, §1)",
			"Theorem 3 keeps lcds at O(1) here; header-indexed structures grow with their max bucket load; plain variants and bsearch grow as n (their hot cell has Φ = 1)",
			"bsearch+rep stores 8 whole copies: its absolute contention is n/8 — better by exactly its space factor, never by more (its T2 ratio is unchanged at n)",
			"bloom+rep is the approximate competitor: its hottest bit cell is shared by several members (balls-in-bins multiplicity), so even a Bloom filter does not reach lcds's exact 1.00",
		},
	}
	names := cfg.filterNames([]string{"lcds", "bloom+rep", "fks+rep", "dm", "cuckoo+rep", "chained+rep", "linear+rep", "bsearch", "bsearch+rep", "fks"})
	t.Columns = append([]string{"n"}, names...)
	for _, n := range cfg.Sizes {
		keys := Keys(n, cfg.Seed+uint64(n))
		sts, err := BuildRoster(names, keys, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		q := dist.NewUniformSet(keys, "")
		abs := map[string]float64{}
		for _, st := range sts {
			ex, err := contention.Exact(st, q.Support())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", st.Name(), err)
			}
			abs[st.Name()] = ex.MaxStep * float64(n)
		}
		row := []string{d(n)}
		for _, name := range names {
			row = append(row, f2s(abs[name]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// T3 — arbitrary query distributions (§1.3 end, §3 motivation): skew makes
// every structure's contention degrade; the point-mass distribution drives
// any scheme with deterministic data probes to ratio = s.
func T3(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	sts, err := cfg.comparison(keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dists := []dist.Dist{
		dist.NewUniformSet(keys, "uniform-pos"),
		dist.NewZipf(keys, 0.8),
		dist.NewZipf(keys, 1.2),
		dist.PointMass{Key: keys[0]},
	}
	t := &Table{
		ID:    "T3",
		Title: fmt.Sprintf("Contention ratio under skewed query distributions (n = %d)", n),
		Notes: []string{
			"Theorem 3's O(1) guarantee assumes uniform positive/negative queries; under skew the",
			"deterministic last probes concentrate: with a point-mass distribution every structure",
			"has a cell of contention 1 (ratio = s) — why §3 proves no scheme avoids this cheaply",
		},
	}
	t.Columns = []string{"structure"}
	for _, q := range dists {
		t.Columns = append(t.Columns, q.Name())
	}
	for _, st := range sts {
		row := []string{st.Name()}
		for _, q := range dists {
			sup, ok := q.(dist.Supporter)
			if !ok {
				return nil, fmt.Errorf("T3 distribution %s lacks exact support", q.Name())
			}
			ex, err := contention.Exact(st, sup.Support())
			if err != nil {
				return nil, err
			}
			row = append(row, f1(ex.RatioStep()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// T4 — construction cost (§2.2): expected O(1) draws of (f, g, z) until
// P(S) holds, expected ≤ 2 perfect-hash draws per bucket, and O(n) build
// time overall.
func T4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T4",
		Title: "Construction cost of the low-contention dictionary",
		Columns: []string{"n", "trials", "hashTries(mean)", "hashTries(max)",
			"escalations", "perfectTries/bucket", "build ns/key"},
		Notes: []string{
			"hashTries = (f,g,z) draws until property P(S) held; the paper's Lemma 9 union bound gives success probability ≥ 1/2 − o(1) per draw, so the mean must be a small constant",
			"escalations = slack increases on c (0 in the asymptotic regime)",
			"ns/key is wall-clock and machine-dependent; linearity (flat column) is the claim",
		},
	}
	for _, n := range cfg.Sizes {
		var tries, maxTries, esc, perfect, buckets int
		var elapsed time.Duration
		for trial := 0; trial < cfg.Trials; trial++ {
			keys := Keys(n, cfg.Seed+uint64(n*1000+trial))
			start := time.Now()
			lc, err := core.Build(keys, core.Params{}, cfg.Seed+uint64(trial))
			elapsed += time.Since(start)
			if err != nil {
				return nil, err
			}
			rep := lc.Report()
			tries += rep.HashTries
			if rep.HashTries > maxTries {
				maxTries = rep.HashTries
			}
			esc += rep.Escalations
			perfect += rep.PerfectTries
			buckets += nonEmptyBuckets(rep)
		}
		trials := float64(cfg.Trials)
		perBucket := 0.0
		if buckets > 0 {
			perBucket = float64(perfect) / float64(buckets)
		}
		t.Rows = append(t.Rows, []string{
			d(n), d(cfg.Trials),
			f2s(float64(tries) / trials), d(maxTries), f2s(float64(esc) / trials),
			f2s(perBucket),
			f1(float64(elapsed.Nanoseconds()) / trials / float64(n)),
		})
	}
	return t, nil
}

// nonEmptyBuckets estimates the number of non-empty buckets from the report:
// buckets ≥ ceil(n / maxLoad) and ≤ n; we use Σℓ²/maxLoad ≥ Σℓ = n ...
// the report does not carry the exact count, so approximate with n divided
// by the mean load implied by SumSquares (exact enough for a per-bucket
// tries average).
func nonEmptyBuckets(rep core.BuildReport) int {
	if rep.N == 0 {
		return 0
	}
	if rep.SumSquares <= 0 {
		return rep.N
	}
	// Cauchy–Schwarz: nonEmpty ≥ n²/Σℓ². Use it as the estimate.
	est := rep.N * rep.N / rep.SumSquares
	if est < 1 {
		est = 1
	}
	return est
}

// T5 — Lemma 9 directly: success rates of its three load conditions for the
// hash families, with c = 2e, d = 4, measured over many independent draws.
func T5(cfg Config) (*Table, error) {
	c := 2 * math.E
	const dDeg = 4
	t := &Table{
		ID:    "T5",
		Title: "Lemma 9 — load-condition success rates of the hash families (c = 2e, d = 4)",
		Columns: []string{"n", "trials",
			"P1: g loads ≤ cn/r", "P2: h' loads ≤ cn/m", "P3: Σℓ² ≤ s",
			"max g load / bound", "max h' load / bound"},
		Notes: []string{
			"predictions: P1 → 1−o(1), P2 → 1−o(1), P3 ≥ 1 − 1/(β(β−1)) = 11/12 for β = 4",
			"r = √n, m = n/(2 ln n), s = 4n as in the construction",
		},
	}
	for _, n := range cfg.Sizes {
		keys := Keys(n, cfg.Seed+uint64(n))
		r := int(math.Ceil(math.Sqrt(float64(n))))
		m := int(float64(n) / (2 * math.Log(float64(n))))
		if m < 1 {
			m = 1
		}
		s := ((4*n + m - 1) / m) * m
		rand := rng.New(cfg.Seed ^ uint64(n))
		var ok1, ok2, ok3 int
		worstG, worstHp := 0.0, 0.0
		bound1 := c * float64(n) / float64(r)
		bound2 := c * float64(n) / float64(m)
		for trial := 0; trial < cfg.Trials; trial++ {
			g := hash.NewPoly(rand, dDeg, uint64(r))
			gl := hash.MaxLoad(hash.Loads(keys, g.Eval, r))
			if float64(gl) <= bound1 {
				ok1++
			}
			if v := float64(gl) / bound1; v > worstG {
				worstG = v
			}

			hp := hash.NewDM(rand, dDeg, uint64(r), uint64(m))
			hpl := hash.MaxLoad(hash.Loads(keys, hp.Eval, m))
			if float64(hpl) <= bound2 {
				ok2++
			}
			if v := float64(hpl) / bound2; v > worstHp {
				worstHp = v
			}

			h := hash.NewDM(rand, dDeg, uint64(r), uint64(s))
			if hash.SumSquares(hash.Loads(keys, h.Eval, s)) <= s {
				ok3++
			}
		}
		trials := float64(cfg.Trials)
		t.Rows = append(t.Rows, []string{
			d(n), d(cfg.Trials),
			f3s(float64(ok1) / trials), f3s(float64(ok2) / trials), f3s(float64(ok3) / trials),
			f2s(worstG), f2s(worstHp),
		})
	}
	return t, nil
}
