package experiments

import (
	"fmt"
	"math"

	"repro/internal/cellprobe"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dynamic"
	"repro/internal/hash"
	"repro/internal/memsim"
	"repro/internal/rng"
	"repro/internal/skew"
	"repro/internal/workload"
)

// X1 — the paper's §4 future-work question: what contention do *updates*
// cause? We run the dynamic extension (static LCDS + update buffer + global
// rebuilding) through churn and measure (a) that read contention stays
// within a constant of the static guarantee, and (b) the write probe mass
// concentrated on the buffer — the inherent hot region updates create.
func X1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "X1",
		Title: "Dynamic extension — update cost and contention under churn (ε = 0.25)",
		Columns: []string{"n", "ops", "rebuilds", "rebuildKeys/op",
			"writeProbes/op", "readRatio(base)", "bufHotΦ·cells", "bufLoad"},
		Notes: []string{
			"workload: n initial keys, then ops = n alternating insert/delete operations",
			"rebuildKeys/op is the amortized global-rebuilding work (O(1/ε) keys per update)",
			"readRatio(base) = empirical max step contention × cells on the static table after churn — must match the static O(1) band",
			"bufHotΦ·cells = hottest buffer cell's read contention × buffer cells; bufLoad = buffer occupancy at the end",
		},
	}
	for _, n := range cfg.Sizes {
		keys := Keys(2*n, cfg.Seed+uint64(n))
		initial, extra := keys[:n], keys[n:]
		// Synchronous rebuilds keep the epoch sequence (and thus every
		// column) deterministic; readers are lock-free either way.
		d, err := dynamic.New(initial, dynamic.Params{SyncRebuild: true}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ops := 0
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				if _, err := d.Insert(extra[i]); err != nil {
					return nil, err
				}
			} else {
				if _, err := d.Delete(initial[i]); err != nil {
					return nil, err
				}
			}
			ops++
		}
		stats := d.Stats()

		// Read-contention measurement after churn.
		// Live keys: the even-indexed inserts plus the initial keys that
		// were never deleted (odd indices were deleted).
		live := make([]uint64, 0, d.Len())
		for i := 0; i < n; i += 2 {
			live = append(live, extra[i], initial[i])
		}
		baseRec := cellprobe.NewRecorder(d.BaseTable().Size())
		bufRec := cellprobe.NewRecorder(d.BufferTable().Size())
		d.BaseTable().Attach(baseRec)
		d.BufferTable().Attach(bufRec)
		qr := rng.New(cfg.Seed ^ uint64(n))
		for i := 0; i < cfg.Queries; i++ {
			k := live[qr.Intn(len(live))]
			ok, err := d.Contains(k, qr)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("X1: live key %d missing", k)
			}
			baseRec.EndQuery()
			bufRec.EndQuery()
		}
		d.BaseTable().Detach()
		d.BufferTable().Detach()

		t.Rows = append(t.Rows, []string{
			d2(n), d2(ops), d2(stats.Epoch - 1),
			f2s(float64(stats.RebuildKeys-n) / float64(ops)),
			f2s(float64(stats.WriteProbes) / float64(ops)),
			f1(baseRec.MaxStepContention() * float64(d.BaseTable().Size())),
			f1(bufRec.MaxStepContention() * float64(d.BufferTable().Size())),
			fmt.Sprintf("%d/%d", stats.Buffered, stats.BufferSlots),
		})
	}
	return t, nil
}

// A1 — ablation over the space factor β (the paper's s = βn): more space
// lowers the absolute contention of the replicated rows but the
// deterministic data probes stay at 1/n, so the ratio *to each table's own
// optimum* grows while the per-cell probe probability (×n) stays flat.
func A1(cfg Config) (*Table, error) {
	n := cfg.FixedN
	t := &Table{
		ID:    "A1",
		Title: fmt.Sprintf("Ablation — space factor β (n = %d, uniform positive queries)", n),
		Columns: []string{"beta", "cells", "cells/n", "probes",
			"maxΦ·s (vs optimal)", "maxΦ·n (absolute)", "hashTries"},
		Notes: []string{
			"maxΦ·n is the contention normalized by key count — the O(1/n) claim of Theorem 3; it must stay flat across β",
			"maxΦ·s grows with β only because the optimum 1/s improves with more cells",
		},
	}
	keys := Keys(n, cfg.Seed)
	q := dist.NewUniformSet(keys, "")
	for _, beta := range []float64{2, 4, 8, 16} {
		lc, err := core.Build(keys, core.Params{Beta: beta}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ex, err := contention.Exact(lc, q.Support())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f1(beta), d2(ex.Cells), f2s(float64(ex.Cells) / float64(n)),
			f2s(ex.Probes),
			f1(ex.RatioStep()), f2s(ex.MaxStep * float64(n)),
			d2(lc.Report().HashTries),
		})
	}
	return t, nil
}

// A2 — ablation over the independence degree d: more independence costs
// probes (2d coefficient reads) and buys sharper load concentration
// (Lemma 9's exponents improve with d).
func A2(cfg Config) (*Table, error) {
	n := cfg.FixedN
	t := &Table{
		ID:    "A2",
		Title: fmt.Sprintf("Ablation — hash independence degree d (n = %d)", n),
		Columns: []string{"d", "probes/query", "maxΦ·s", "maxBucketLoad",
			"maxGroupLoad", "hashTries"},
		Notes: []string{
			"probes grow as 2d + ρ + 4; the paper requires d > 2 for Lemma 9",
		},
	}
	keys := Keys(n, cfg.Seed)
	q := dist.NewUniformSet(keys, "")
	for _, deg := range []int{3, 4, 6, 8} {
		// δ must lie in (2/(d+2), 1 − 1/d); 0.5 works for every d ≥ 3.
		lc, err := core.Build(keys, core.Params{D: deg, Delta: 0.5}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ex, err := contention.Exact(lc, q.Support())
		if err != nil {
			return nil, err
		}
		rep := lc.Report()
		t.Rows = append(t.Rows, []string{
			d2(deg), f2s(ex.Probes), f1(ex.RatioStep()),
			d2(rep.MaxBucketLoad), d2(rep.MaxGroupLoad), d2(rep.HashTries),
		})
	}
	return t, nil
}

// A3 — memory-bank ablation for the hot-spot simulation: instead of one
// module per cell (the paper's model), interleave cells over a fixed number
// of banks. Fewer banks add structural conflicts for everyone; the
// low-contention dictionary's advantage persists until the bank count
// approaches the processor count.
func A3(cfg Config) (*Table, error) {
	n := cfg.FixedN
	procs := cfg.Procs[len(cfg.Procs)-1]
	keys := Keys(n, cfg.Seed)
	sts, err := cfg.comparison(keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	q := dist.NewUniformSet(keys, "")
	t := &Table{
		ID:    "A3",
		Title: fmt.Sprintf("Ablation — memory banks (n = %d, m = %d processors)", n, procs),
		Notes: []string{
			"modules = 0 means one module per cell (the cell-contention model); otherwise cell c maps to bank c mod modules",
		},
	}
	t.Columns = []string{"banks"}
	for _, st := range sts {
		t.Columns = append(t.Columns, st.Name())
	}
	for _, banks := range []int{16, 64, 256, 1024, 0} {
		label := "per-cell"
		if banks > 0 {
			label = d2(banks)
		}
		row := []string{label}
		for _, st := range sts {
			seqs, err := memsim.Sequences(st, q, procs, rng.New(cfg.Seed+uint64(banks)))
			if err != nil {
				return nil, err
			}
			res := memsim.Run(seqs, memsim.Config{Modules: banks})
			row = append(row, f2s(res.Slowdown()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// A4 — layout ablation: the paper stores replica j of z at column j mod r
// (residue classes); we default to contiguous blocks so the analyzer can
// represent probe distributions as intervals. The two layouts must have
// identical Monte-Carlo contention, probes and answers — this experiment is
// the empirical proof of that documented deviation.
func A4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "A4",
		Title: "Ablation — replica layout: contiguous blocks (ours) vs residue classes (paper-literal)",
		Columns: []string{"n", "ratio(block,exact)", "ratio(block,mc)",
			"ratio(strided,mc)", "probes(block)", "probes(strided)"},
		Notes: []string{
			"same replica counts ⇒ identical probe distributions up to cell permutation; the two Monte-Carlo columns must agree within sampling noise",
			"the strided layout has no exact-analyzer support (interval spans), hence Monte-Carlo",
		},
	}
	for _, n := range cfg.Sizes {
		keys := Keys(n, cfg.Seed+uint64(n))
		q := dist.NewUniformSet(keys, "")
		block, err := core.Build(keys, core.Params{}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		strided, err := core.Build(keys, core.Params{Strided: true}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ex, err := contention.Exact(block, q.Support())
		if err != nil {
			return nil, err
		}
		mcB, err := contention.MonteCarlo(block, q, cfg.Queries, rng.New(cfg.Seed^uint64(n)))
		if err != nil {
			return nil, err
		}
		mcS, err := contention.MonteCarlo(strided, q, cfg.Queries, rng.New(cfg.Seed^uint64(n)))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d2(n), f1(ex.RatioStep()), f1(mcB.RatioStep()), f1(mcS.RatioStep()),
			f2s(mcB.Probes), f2s(mcS.Probes),
		})
	}
	return t, nil
}

// A5 — contention avoidance vs contention resolution: the classic fix for
// hot spots is hardware read combining ([13] in the paper); the paper's
// thesis is that a data structure can avoid needing it. This ablation runs
// F2's simulation with and without combining.
func A5(cfg Config) (*Table, error) {
	n := cfg.FixedN
	procs := cfg.Procs[len(cfg.Procs)-1]
	keys := Keys(n, cfg.Seed)
	sts, err := cfg.comparison(keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	q := dist.NewUniformSet(keys, "")
	t := &Table{
		ID:    "A5",
		Title: fmt.Sprintf("Ablation — read combining vs contention avoidance (n = %d, m = %d)", n, procs),
		Notes: []string{
			"combining completes all same-cell requests queued at a module in one cycle (hot-spot combining networks, the paper's ref [13])",
			"combining rescues the hot-cell baselines; the low-contention dictionary needs no such hardware — its two columns match",
		},
	}
	t.Columns = []string{"structure", "slowdown(plain)", "slowdown(combining)", "improvement"}
	for _, st := range sts {
		seqs, err := memsim.Sequences(st, q, procs, rng.New(cfg.Seed+uint64(procs)))
		if err != nil {
			return nil, err
		}
		plain := memsim.Run(seqs, memsim.Config{})
		combined := memsim.Run(seqs, memsim.Config{Combining: true})
		improvement := plain.Slowdown() / combined.Slowdown()
		t.Rows = append(t.Rows, []string{
			st.Name(), f2s(plain.Slowdown()), f2s(combined.Slowdown()), f2s(improvement),
		})
	}
	return t, nil
}

// W1 — realistic workloads between the paper's analyzed extremes: temporal
// locality (drifting working set), batch scans, and read-mostly-negative
// filter traffic. Contention is Monte-Carlo (the workloads are stateful, so
// there is no static support to analyze exactly).
func W1(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	sts, err := cfg.comparison(keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "W1",
		Title: fmt.Sprintf("Contention ratio under realistic workloads (n = %d, Monte-Carlo, %d queries)", n, cfg.Queries),
		Notes: []string{
			"working-set: 5% of keys hot with 90% locality, drifting (churn 1%); between uniform (Theorem 3's regime) and Zipf (T3)",
			"scan: deterministic cyclic sweep — every key queried equally often overall, so total contention matches uniform, but probes are maximally correlated in time",
			"negative-heavy: 90% misses — exercises Lemma 10's uniform-negative side",
		},
	}
	makeWorkloads := func(seed uint64) ([]dist.Dist, error) {
		r := rng.New(seed)
		ws, err := workload.NewWorkingSet(keys, n/20, 0.9, 0.01, r)
		if err != nil {
			return nil, err
		}
		sc, err := workload.NewScan(keys)
		if err != nil {
			return nil, err
		}
		return []dist.Dist{
			dist.NewUniformSet(keys, "uniform"),
			ws,
			sc,
			workload.ReadMostlyNegative(keys, hash.MaxKey, 0.1),
		}, nil
	}
	probe, err := makeWorkloads(cfg.Seed)
	if err != nil {
		return nil, err
	}
	t.Columns = []string{"structure"}
	for _, q := range probe {
		t.Columns = append(t.Columns, q.Name())
	}
	for _, st := range sts {
		// Fresh stateful workloads per structure so drift is identical.
		qs, err := makeWorkloads(cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := []string{st.Name()}
		for qi, q := range qs {
			mc, err := contention.MonteCarlo(st, q, cfg.Queries, rng.New(cfg.Seed+uint64(qi)))
			if err != nil {
				return nil, err
			}
			row = append(row, f1(mc.RatioStep()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// T7 — the other half of Theorem 3's query class: uniform negative queries
// (Lemma 10). Monte-Carlo, because the negative support is the whole
// universe.
func T7(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T7",
		Title: "Contention ratio under uniform NEGATIVE queries vs n (Monte-Carlo)",
		Notes: []string{
			"Lemma 10: the hash functions are uniform over the domain, so negative query mass is even across buckets — the lcds ratio must stay O(1)",
			fmt.Sprintf("%d sampled queries per cell count; Poisson sampling noise grows with s/queries as in T1's MC column", cfg.Queries),
		},
	}
	names := []string{"lcds", "fks+rep", "dm", "cuckoo+rep", "bsearch"}
	t.Columns = append([]string{"n"}, names...)
	for _, n := range cfg.Sizes {
		keys := Keys(n, cfg.Seed+uint64(n))
		sts, err := cfg.comparison(keys, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		neg := dist.NewUniformComplement(hash.MaxKey, keys)
		ratios := map[string]float64{}
		for _, st := range sts {
			mc, err := contention.MonteCarlo(st, neg, cfg.Queries, rng.New(cfg.Seed^uint64(3*n)))
			if err != nil {
				return nil, err
			}
			if mc.Positives != 0 {
				return nil, fmt.Errorf("T7: %s answered %d positives to negative queries", st.Name(), mc.Positives)
			}
			ratios[st.Name()] = mc.RatioStep()
		}
		row := []string{d2(n)}
		for _, name := range names {
			row = append(row, f1(ratios[name]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// A6 — hash-family ablation: the construction's group balance rests on the
// DM family R^d_{r,m} (Lemma 9(2)). Compare the realized max group load,
// relative to the mean n/m, across families: pairwise polynomials, d-wise
// polynomials, and the DM family, for m = n/(2 ln n) groups.
func A6(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "A6",
		Title: "Ablation — hash family vs max group load (m = n/(2 ln n) groups, mean load = n/m)",
		Columns: []string{"n", "trials", "pairwise (max/mean)", "4-wise poly (max/mean)",
			"tabulation (max/mean)", "DM R⁴ (max/mean)", "bound c·(2e)"},
		Notes: []string{
			"Lemma 9(2) guarantees max/mean ≤ c = 2e for the DM family with probability 1−o(1); plain families have no such guarantee, though random keys keep them close",
			"tabulation is 3-independent simple tabulation (Pǎtraşcu–Thorup) — the practical family, included for reference",
			"entries are the worst max/mean over the trials",
		},
	}
	for _, n := range cfg.Sizes {
		keys := Keys(n, cfg.Seed+uint64(n))
		m := n / (2 * int(math.Max(1, math.Log(float64(n)))))
		if m < 1 {
			m = 1
		}
		r := int(math.Ceil(math.Sqrt(float64(n))))
		mean := float64(n) / float64(m)
		rand := rng.New(cfg.Seed ^ uint64(7*n))
		worst := func(draw func() func(uint64) uint64) float64 {
			w := 0.0
			for trial := 0; trial < cfg.Trials; trial++ {
				eval := draw()
				if v := float64(hash.MaxLoad(hash.Loads(keys, eval, m))) / mean; v > w {
					w = v
				}
			}
			return w
		}
		pw := worst(func() func(uint64) uint64 { return hash.NewPairwise(rand, uint64(m)).Eval })
		poly := worst(func() func(uint64) uint64 { return hash.NewPoly(rand, 4, uint64(m)).Eval })
		tab := worst(func() func(uint64) uint64 { return hash.NewTabulation(rand, uint64(m)).Eval })
		dm := worst(func() func(uint64) uint64 { return hash.NewDM(rand, 4, uint64(r), uint64(m)).Eval })
		t.Rows = append(t.Rows, []string{
			d2(n), d2(cfg.Trials), f2s(pw), f2s(poly), f2s(tab), f2s(dm), f2s(2 * math.E),
		})
	}
	return t, nil
}

// X2 — the known-distribution extension: the §3 lower bound forbids a
// distribution-OBLIVIOUS algorithm from leveling skew cheaply, but the
// paper's model lets the builder know q (§1.1). The skew-aware dictionary
// replicates hot keys across R whole copies; this experiment measures the
// contention repair across Zipf exponents and replica budgets.
func X2(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	t := &Table{
		ID:    "X2",
		Title: fmt.Sprintf("Known-q extension — exact contention ratio under Zipf (n = %d)", n),
		Columns: []string{"zipf exp", "plain lcds", "skew R=4", "skew R=8", "skew R=16",
			"hot keys", "hot share", "space ×"},
		Notes: []string{
			"plain lcds is the distribution-oblivious Theorem 3 structure; skew columns replicate the hot set across R copies built from the known q",
			"the improvement factor is bounded by R (each hot key's deterministic probe mass divides by R) — the lower bound's price, paid in space, not probes",
			"returns diminish: once the heaviest NON-hot key dominates, more copies only add cells and the ratio can tick back up",
			"hot keys / hot share / space× are for R=8",
		},
	}
	for _, exp := range []float64{0.6, 0.8, 1.0, 1.2} {
		zipf := dist.NewZipf(keys, exp)
		support := zipf.Support()
		plain, err := core.Build(keys, core.Params{}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ex, err := contention.Exact(plain, support)
		if err != nil {
			return nil, err
		}
		row := []string{f2s(exp), f1(ex.RatioStep())}
		var hot8 *skew.Dict
		for _, r := range []int{4, 8, 16} {
			sd, err := skew.Build(support, skew.Params{Replicas: r}, cfg.Seed)
			if err != nil {
				return nil, err
			}
			a, err := sd.Analyze(support)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(a.RatioStep()))
			if r == 8 {
				hot8 = sd
			}
		}
		a8, err := hot8.Analyze(support)
		if err != nil {
			return nil, err
		}
		row = append(row,
			d2(hot8.HotKeys()), f2s(a8.HotShare),
			f2s(float64(hot8.Cells())/float64(plain.Table().Size())))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// d2 formats an int. The package-level helper d is shadowed inside X1 by
// the dictionary variable, so this file uses a distinct name throughout.
func d2(v int) string { return fmt.Sprintf("%d", v) }
