package experiments

import (
	"fmt"
	"strconv"
	"testing"
)

// TestA8ShapeTelemetryAgreement checks the live Φ̂ estimator against the
// exact analysis: the deterministic round-robin drive must land the core
// dictionary's measured maxΦ̂·n within 5% of contention.Exact (the
// acceptance bound; in practice the agreement is exact), and every scheme's
// live probes-per-query must stay within 5% of its exact expectation.
func TestA8ShapeTelemetryAgreement(t *testing.T) {
	cfg := Quick()
	cfg.Structures = []string{"lcds", "bsearch", "cuckoo+rep"}
	tab, err := A8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("A8 rows = %d, want 3", len(tab.Rows))
	}
	col := func(row []string, i int) float64 {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, i, err)
		}
		return v
	}
	sawCore := false
	for _, row := range tab.Rows {
		probesLive, probesExact := col(row, 2), col(row, 3)
		if probesExact <= 0 {
			t.Fatalf("%s: non-positive exact probes %v", row[0], probesExact)
		}
		if r := probesLive / probesExact; r < 0.95 || r > 1.05 {
			t.Errorf("%s: probes/query live %.3f vs exact %.3f (ratio %.3f) outside 5%%",
				row[0], probesLive, probesExact, r)
		}
		if row[0] == "lcds" {
			sawCore = true
			ratio := col(row, 6)
			if ratio < 0.95 || ratio > 1.05 {
				t.Errorf("lcds: maxΦ̂·n ratio %.3f outside the 5%% acceptance bound", ratio)
			}
			// The round-robin drive is deterministic for the core scheme:
			// the agreement should be exact, not merely within tolerance.
			if live, exact := col(row, 4), col(row, 5); live != exact {
				t.Errorf("lcds: maxΦ̂·n live %.3f != exact %.3f under deterministic drive", live, exact)
			}
		}
	}
	if !sawCore {
		t.Fatal("A8 table has no lcds row")
	}
}

// TestA10ShapeSketchAgreement checks the reservoir (step, cell) sketch
// against the exact probe matrix on the two anchor regimes: under the
// point-mass drive, deterministic-probe schemes (bsearch, cuckoo) must
// score a perfect per-step top-1 with zero share error, while the core
// randomized dictionary must NOT — its intermediate probes are randomized
// precisely so no stable hot cell forms, so a high top-1 there would mean
// the probe path stopped being input-independent.
func TestA10ShapeSketchAgreement(t *testing.T) {
	cfg := Quick()
	cfg.Structures = []string{"lcds", "bsearch", "cuckoo"}
	tab, err := A10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("A10 rows = %d, want 6 (3 structures x 2 dists)", len(tab.Rows))
	}
	frac := func(row []string) (hit, steps int) {
		if _, err := fmt.Sscanf(row[5], "%d/%d", &hit, &steps); err != nil {
			t.Fatalf("row %v top1 %q: %v", row, row[5], err)
		}
		return hit, steps
	}
	for _, row := range tab.Rows {
		name, dist := row[0], row[1]
		hit, steps := frac(row)
		if steps == 0 {
			t.Fatalf("%s/%s: no steps compared", name, dist)
		}
		if row[4] == "0" {
			t.Fatalf("%s/%s: sketch retained no samples", name, dist)
		}
		if dist != "point" {
			continue
		}
		switch name {
		case "bsearch", "cuckoo":
			if hit != steps {
				t.Errorf("%s/point: top1 %d/%d, want perfect — deterministic probe path has one cell per step", name, hit, steps)
			}
			if row[7] != "0.000" {
				t.Errorf("%s/point: shareΔmax %s, want 0.000", name, row[7])
			}
			if row[8] != "1.000" {
				t.Errorf("%s/point: hotShare %s, want 1.000", name, row[8])
			}
		case "lcds":
			if 2*hit > steps {
				t.Errorf("lcds/point: top1 %d/%d — randomized intermediate probes should leave most steps without a stable argmax", hit, steps)
			}
		}
	}
}
