package experiments

import (
	"fmt"
	"sort"

	"repro/internal/cellprobe"
	"repro/internal/contention"
	"repro/internal/dist"
	"repro/internal/memsim"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// A8 — live telemetry self-check: the runtime Φ̂ estimator agrees with the
// exact analysis. Every roster scheme is instrumented with a telemetry sink
// (sampling 1, so every probe is counted) and driven with queries
// round-robin over the member keys — the deterministic realization of the
// uniform positive distribution, so each key contributes exactly Q/n
// queries and the empirical per-cell probe mass converges to the analytic
// Φ(j) without Monte-Carlo extreme-value bias. The table reports the
// measured maxΦ̂·n next to contention.Exact's maxΦ·n and the ratio between
// them; the core dictionary must sit at 1.00/1.00. Replicated baselines
// still draw their replica columns at random, so their live/exact ratios
// carry sampling noise the deterministic schemes do not.
//
// The last three columns close the loop with the execution model: a batch
// of simulated processors replays captured probe sequences through
// internal/memsim with the SAME telemetry estimator attached as the
// simulator's probe sink, so one Φ̂ pipeline measures both the live and the
// simulated stream, and the simulated queueing delay (avg cycles waiting in
// module queues) and slowdown appear next to the live contention figures
// they are supposed to explain.
func A8(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	q := dist.NewUniformSet(keys, "")
	// Round the query budget up to a whole number of round-robin passes so
	// every key is queried equally often.
	passes := (cfg.Queries + n - 1) / n
	if passes < 1 {
		passes = 1
	}
	queries := passes * n
	// Simulated batch size: enough concurrent processors that module queues
	// actually form on contended cells, small enough to stay cheap.
	const simProcs = 32
	names := cfg.filterNames(RosterNames())
	t := &Table{
		ID: "A8",
		Title: fmt.Sprintf("Live telemetry vs exact analysis — empirical Φ̂ under %d round-robin positive queries (n = %d, sampling 1)",
			queries, n),
		Columns: []string{"structure", "cells", "probes/q(live)", "probes/q(exact)",
			"maxΦ̂·n(live)", "maxΦ·n(exact)", "ratio", "stepMassL∞",
			"maxΦ̂·n(sim)", "simQdelay", "simSlowdown"},
		Notes: []string{
			"live numbers come from the runtime telemetry sink (internal/telemetry) attached to each structure's cell-probe table — the same estimator lcds-monitor exposes over /metrics",
			"ratio = maxΦ̂·n(live) / maxΦ·n(exact); deterministic schemes land on 1.000 exactly, replicated ones wander by the extreme-value noise of their random replica draws",
			"stepMassL∞ is the largest absolute gap between the measured and exact per-step probe mass vectors — 0 for schemes whose probe count is input-independent",
			fmt.Sprintf("sim columns replay %d captured probe sequences through internal/memsim (one module per cell) with the same telemetry estimator attached as the simulator's probe sink: maxΦ̂·n(sim) is the estimator's reading of the simulated stream, simQdelay the mean cycles each probe waited in a module queue (0 = served on issue), simSlowdown the makespan over the conflict-free ideal", simProcs),
		},
	}
	for _, name := range names {
		st, err := BuildRoster([]string{name}, keys, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("A8: %w", err)
		}
		s := st[0]
		tel := telemetry.New(telemetry.Config{Sample: 1}, s.Table().Size(), s.N())
		s.Table().SetSink(tel)
		r := rng.New(cfg.Seed ^ 0xa8)
		for i := 0; i < queries; i++ {
			if _, err := s.Contains(keys[i%n], r); err != nil {
				return nil, fmt.Errorf("A8 %s: %w", name, err)
			}
			tel.ObserveQuery(true, false, 0)
		}
		s.Table().SetSink(nil)
		ex, err := contention.Exact(s, q.Support())
		if err != nil {
			return nil, fmt.Errorf("A8 %s: %w", name, err)
		}
		drift := tel.Snapshot().CompareExact(ex)

		// Simulated execution: capture simProcs probe sequences and replay
		// them through the memory simulator with a fresh instance of the
		// same estimator as the probe sink.
		seqs, err := memsim.Sequences(s, q, simProcs, rng.New(cfg.Seed^0xa8^0x51))
		if err != nil {
			return nil, fmt.Errorf("A8 %s: %w", name, err)
		}
		simTel := telemetry.New(telemetry.Config{Sample: 1}, s.Table().Size(), s.N())
		sim := memsim.Run(seqs, memsim.Config{Sink: simTel})
		for i := 0; i < simProcs; i++ {
			simTel.ObserveQuery(true, false, 0)
		}
		simDrift := simTel.Snapshot().CompareExact(ex)

		t.Rows = append(t.Rows, []string{
			name, d(s.Table().Size()), f3s(drift.ProbesLive), f3s(drift.ProbesExact),
			f3s(drift.MaxPhiLive * float64(n)), f3s(drift.MaxPhiExact * float64(n)),
			f3s(drift.MaxPhiRatio), fmt.Sprintf("%.1e", drift.StepMassMaxDiff),
			f3s(simDrift.MaxPhiLive * float64(n)), f3s(sim.AvgLatency - 1), f3s(sim.Slowdown()),
		})
	}
	return t, nil
}

// sketchDrift summarizes how well the reservoir (step, cell) sketch tracks
// the exact per-step × per-cell probe matrix captured by a sequential
// cellprobe.Recorder attached to the same table during the same drive.
type sketchDrift struct {
	steps    int     // sketch steps compared against an exact row
	top1     int     // steps whose sketch-hottest cell is an exact argmax
	overlap  float64 // mean fraction of sketch top-K cells inside exact top-K
	shareErr float64 // max |sketch share − exact share| over top-1 cells
	hotMax   float64 // max over steps of the exact hottest cell's share
}

// sketchAgreement diffs the sketch's per-step hottest-cell table against
// the recorder's exact matrix. A step's top-1 counts as a hit when the
// sketch's hottest cell ties the exact maximum (exact argmax ties are all
// acceptable answers — the reservoir cannot distinguish equals).
func sketchAgreement(rows []telemetry.StepCellView, rec *cellprobe.Recorder, topK int) sketchDrift {
	var dr sketchDrift
	var overlapSum float64
	for _, row := range rows {
		if row.Step >= len(rec.PerStep) || rec.PerStep[row.Step] == nil || len(row.Cells) == 0 {
			continue
		}
		exact := rec.PerStep[row.Step]
		var maxCount, stepTotal uint64
		nonzero := 0
		for _, c := range exact {
			stepTotal += c
			if c > 0 {
				nonzero++
			}
			if c > maxCount {
				maxCount = c
			}
		}
		if stepTotal == 0 {
			continue
		}
		dr.steps++
		if share := float64(maxCount) / float64(stepTotal); share > dr.hotMax {
			dr.hotMax = share
		}
		top := row.Cells[0]
		if exact[top.Cell] == maxCount {
			dr.top1++
		}
		if err := top.Share - float64(exact[top.Cell])/float64(stepTotal); err < 0 {
			if -err > dr.shareErr {
				dr.shareErr = -err
			}
		} else if err > dr.shareErr {
			dr.shareErr = err
		}
		// Exact top-K threshold: the K-th largest nonzero count (or the
		// smallest nonzero count when fewer than K cells have mass). Any
		// sketch cell with exact count ≥ threshold is inside the exact
		// top-K under some tie-breaking.
		counts := make([]uint64, 0, nonzero)
		for _, c := range exact {
			if c > 0 {
				counts = append(counts, c)
			}
		}
		sort.Slice(counts, func(a, b int) bool { return counts[a] > counts[b] })
		k := topK
		if k > len(counts) {
			k = len(counts)
		}
		threshold := counts[k-1]
		hit := 0
		for _, c := range row.Cells {
			if exact[c.Cell] >= threshold {
				hit++
			}
		}
		denom := topK
		if denom > len(counts) {
			denom = len(counts)
		}
		if denom > len(row.Cells) {
			denom = len(row.Cells)
		}
		overlapSum += float64(hit) / float64(denom)
	}
	if dr.steps > 0 {
		dr.overlap = overlapSum / float64(dr.steps)
	}
	return dr
}

// A10 — per-step hottest cells: the reservoir-sampled (step, cell) sketch
// (telemetry.StepCellSketch, the table behind Snapshot.StepCells and
// /debug/telemetry) agrees with the exact per-step × per-cell probe matrix.
// Each structure is driven with a skewed weighted schedule while BOTH a
// sequential cellprobe.Recorder (exact, dense) and the telemetry sink with
// the sketch enabled (sampling 1) are attached to the same table, so the
// estimate and the ground truth observe the identical probe stream. The
// table reports, per structure and distribution, how often the sketch's
// per-step hottest cell is an exact argmax, the mean top-K overlap with the
// exact top-K, and the worst-case error of the sketch's hot-share estimate.
//
// The point distribution splits the roster in two instructive ways. For
// schemes whose probe path is a deterministic function of the key (fks,
// cuckoo, bsearch), every query probes the same cell at each step — the
// exact hot share is 1.0 at every step and the sketch must score a perfect
// top-1; any miss is a bug, not noise. The core lcds dictionary randomizes
// its intermediate probes per query precisely so that no hot cell can form:
// only the terminal key-read steps retain a stable argmax, and the sketch's
// low top-1 count across the remaining steps is the low-contention
// guarantee itself — there is nothing stable for the sketch (or an
// adversary) to find. The Zipf drive exercises the reservoir under
// realistic skew between those extremes.
func A10(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	passes := (cfg.Queries + n - 1) / n
	if passes < 1 {
		passes = 1
	}
	queries := passes * n
	const topK = 3
	dists := []struct {
		label   string
		support []dist.Weighted
	}{
		{"zipf(1.2)", dist.NewZipf(keys, 1.2).Support()},
		{"point", dist.PointMass{Key: keys[0]}.Support()},
	}
	names := cfg.filterNames(RosterNames())
	t := &Table{
		ID: "A10",
		Title: fmt.Sprintf("Per-step hottest cells — reservoir (step, cell) sketch vs exact probe matrix under %d skewed queries (n = %d, sampling 1)",
			queries, n),
		Columns: []string{"structure", "dist", "steps", "probes/q", "retained",
			"top1", "overlap@3", "shareΔmax", "hotShare(exact)"},
		Notes: []string{
			"the sketch is telemetry.StepCellSketch — the always-on reservoir behind Snapshot.StepCells and lcds-monitor's /debug/telemetry — fed here at sampling 1 alongside a sequential cellprobe.Recorder on the same table, so both see the identical probe stream",
			"top1 = steps where the sketch's hottest cell ties the exact per-step argmax / steps compared; overlap@3 = mean fraction of the sketch's top-3 cells inside the exact top-3; shareΔmax = worst |sketch hot-share − exact hot-share| over top-1 cells; hotShare(exact) = the exact hottest cell's worst-case probe share",
			"point (every query hits one key) makes deterministic-probe schemes (fks, cuckoo, bsearch) probe one cell per step — top1 must be perfect; the core lcds dictionary randomizes every intermediate probe, so only its terminal key-read steps keep a stable hot cell and the sketch's low top1 across the rest IS the low-contention property (hotShare reports the worst step, which for lcds/point is that deterministic terminal read)",
			"retained = reservoir samples surviving across all steps (bounded by slots × stripes regardless of query volume — the sketch's whole point)",
		},
	}
	for _, name := range names {
		for _, q := range dists {
			st, err := BuildRoster([]string{name}, keys, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("A10: %w", err)
			}
			s := st[0]
			drive, err := workload.NewWeightedDrive(q.support, queries, cfg.Seed^0xa10)
			if err != nil {
				return nil, fmt.Errorf("A10 %s/%s: %w", name, q.label, err)
			}
			rec := cellprobe.NewRecorder(s.Table().Size())
			s.Table().Attach(rec)
			tel := telemetry.New(telemetry.Config{Sample: 1, SketchSlots: 512, SketchTopK: topK},
				s.Table().Size(), s.N())
			s.Table().SetSink(tel)
			r := rng.New(cfg.Seed ^ 0xa10)
			for i := 0; i < queries; i++ {
				if _, err := s.Contains(drive.Next(), r); err != nil {
					return nil, fmt.Errorf("A10 %s/%s: %w", name, q.label, err)
				}
				rec.EndQuery()
				tel.ObserveQuery(true, false, 0)
			}
			s.Table().SetSink(nil)
			s.Table().Detach()
			rows := tel.Snapshot().StepCells
			var retained uint64
			for _, row := range rows {
				retained += row.Samples
			}
			dr := sketchAgreement(rows, rec, topK)
			t.Rows = append(t.Rows, []string{
				name, q.label, d(dr.steps), f3s(rec.ProbesPerQuery()), d(int(retained)),
				fmt.Sprintf("%d/%d", dr.top1, dr.steps), f3s(dr.overlap), f3s(dr.shareErr),
				f3s(dr.hotMax),
			})
		}
	}
	return t, nil
}

// A9 — distribution-aware telemetry: the live Φ̂ estimator agrees with the
// exact analysis under *skewed* query distributions, not just the uniform
// drive A8 checks. The paper's contention bound is quantified over every q;
// T3 computes exact contention under Zipf and adversarial point-mass skews
// offline, and this experiment closes the loop by driving the same skews
// through instrumented structures and diffing the live counters against
// contention.Exact under the matching weights.
//
// The drive is the weighted analogue of A8's round-robin: a deterministic
// schedule realizing each distribution by largest-remainder apportionment
// (internal/workload.WeightedDrive), with the exact analysis computed under
// the schedule's *realized* frequencies, so apportionment quantization
// cancels and deterministic schemes land on ratio 1.000 exactly. Replicated
// baselines still draw their replica columns at random per query; their
// ratios carry extreme-value sampling noise that shrinks with the query
// budget.
func A9(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	passes := (cfg.Queries + n - 1) / n
	if passes < 1 {
		passes = 1
	}
	queries := passes * n
	dists := []struct {
		label   string
		support []dist.Weighted
	}{
		{"zipf(0.8)", dist.NewZipf(keys, 0.8).Support()},
		{"zipf(1.2)", dist.NewZipf(keys, 1.2).Support()},
		{"point", dist.PointMass{Key: keys[0]}.Support()},
	}
	names := cfg.filterNames(RosterNames())
	t := &Table{
		ID: "A9",
		Title: fmt.Sprintf("Live telemetry vs exact analysis under skewed drive — Φ̂ under %d weighted-schedule queries per distribution (n = %d, sampling 1)",
			queries, n),
		Columns: []string{"structure", "dist", "probes/q(live)", "probes/q(exact)",
			"maxΦ̂·n(live)", "maxΦ·n(exact)", "ratio", "stepMassL∞"},
		Notes: []string{
			"each distribution is driven as a deterministic weighted schedule (largest-remainder apportionment, seeded shuffle) and the exact analysis is computed under the schedule's realized frequencies — the skewed analogue of A8's round-robin uniform drive",
			"zipf(s) ranks the member keys by construction order; point is the T3 adversarial distribution (every query hits one key)",
			"ratio = maxΦ̂·n(live) / maxΦ·n(exact); deterministic schemes land on 1.000 exactly, replicated ones wander by the extreme-value noise of their random replica draws",
		},
	}
	for _, name := range names {
		for _, q := range dists {
			st, err := BuildRoster([]string{name}, keys, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("A9: %w", err)
			}
			s := st[0]
			drive, err := workload.NewWeightedDrive(q.support, queries, cfg.Seed^0xa9)
			if err != nil {
				return nil, fmt.Errorf("A9 %s/%s: %w", name, q.label, err)
			}
			tel := telemetry.New(telemetry.Config{Sample: 1}, s.Table().Size(), s.N())
			s.Table().SetSink(tel)
			r := rng.New(cfg.Seed ^ 0xa9)
			for i := 0; i < queries; i++ {
				if _, err := s.Contains(drive.Next(), r); err != nil {
					return nil, fmt.Errorf("A9 %s/%s: %w", name, q.label, err)
				}
				tel.ObserveQuery(true, false, 0)
			}
			s.Table().SetSink(nil)
			ex, err := contention.Exact(s, drive.Realized())
			if err != nil {
				return nil, fmt.Errorf("A9 %s/%s: %w", name, q.label, err)
			}
			drift := tel.Snapshot().CompareExact(ex)
			t.Rows = append(t.Rows, []string{
				name, q.label, f3s(drift.ProbesLive), f3s(drift.ProbesExact),
				f3s(drift.MaxPhiLive * float64(n)), f3s(drift.MaxPhiExact * float64(n)),
				f3s(drift.MaxPhiRatio), fmt.Sprintf("%.1e", drift.StepMassMaxDiff),
			})
		}
	}
	return t, nil
}
