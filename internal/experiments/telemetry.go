package experiments

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// A8 — live telemetry self-check: the runtime Φ̂ estimator agrees with the
// exact analysis. Every roster scheme is instrumented with a telemetry sink
// (sampling 1, so every probe is counted) and driven with queries
// round-robin over the member keys — the deterministic realization of the
// uniform positive distribution, so each key contributes exactly Q/n
// queries and the empirical per-cell probe mass converges to the analytic
// Φ(j) without Monte-Carlo extreme-value bias. The table reports the
// measured maxΦ̂·n next to contention.Exact's maxΦ·n and the ratio between
// them; the core dictionary must sit at 1.00/1.00. Replicated baselines
// still draw their replica columns at random, so their live/exact ratios
// carry sampling noise the deterministic schemes do not.
func A8(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	q := dist.NewUniformSet(keys, "")
	// Round the query budget up to a whole number of round-robin passes so
	// every key is queried equally often.
	passes := (cfg.Queries + n - 1) / n
	if passes < 1 {
		passes = 1
	}
	queries := passes * n
	names := cfg.filterNames(RosterNames())
	t := &Table{
		ID: "A8",
		Title: fmt.Sprintf("Live telemetry vs exact analysis — empirical Φ̂ under %d round-robin positive queries (n = %d, sampling 1)",
			queries, n),
		Columns: []string{"structure", "cells", "probes/q(live)", "probes/q(exact)",
			"maxΦ̂·n(live)", "maxΦ·n(exact)", "ratio", "stepMassL∞"},
		Notes: []string{
			"live numbers come from the runtime telemetry sink (internal/telemetry) attached to each structure's cell-probe table — the same estimator lcds-monitor exposes over /metrics",
			"ratio = maxΦ̂·n(live) / maxΦ·n(exact); deterministic schemes land on 1.000 exactly, replicated ones wander by the extreme-value noise of their random replica draws",
			"stepMassL∞ is the largest absolute gap between the measured and exact per-step probe mass vectors — 0 for schemes whose probe count is input-independent",
		},
	}
	for _, name := range names {
		st, err := BuildRoster([]string{name}, keys, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("A8: %w", err)
		}
		s := st[0]
		tel := telemetry.New(telemetry.Config{Sample: 1}, s.Table().Size(), s.N())
		s.Table().SetSink(tel)
		r := rng.New(cfg.Seed ^ 0xa8)
		for i := 0; i < queries; i++ {
			if _, err := s.Contains(keys[i%n], r); err != nil {
				return nil, fmt.Errorf("A8 %s: %w", name, err)
			}
			tel.ObserveQuery(true, false, 0)
		}
		s.Table().SetSink(nil)
		ex, err := contention.Exact(s, q.Support())
		if err != nil {
			return nil, fmt.Errorf("A8 %s: %w", name, err)
		}
		drift := tel.Snapshot().CompareExact(ex)
		t.Rows = append(t.Rows, []string{
			name, d(s.Table().Size()), f3s(drift.ProbesLive), f3s(drift.ProbesExact),
			f3s(drift.MaxPhiLive * float64(n)), f3s(drift.MaxPhiExact * float64(n)),
			f3s(drift.MaxPhiRatio), fmt.Sprintf("%.1e", drift.StepMassMaxDiff),
		})
	}
	return t, nil
}
