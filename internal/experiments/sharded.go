package experiments

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/dist"
	"repro/internal/shard"
)

// A7 — sharded-contention ablation: contention composes. A P-way sharded
// lcds dictionary's exact contention must equal the analytic composition of
// its parts — the routing row's uniform mass and each shard's own exact
// spectrum on its disjoint cell range — not merely approximately but bit
// for bit in float64 (shard.ComposeExact). The table reports the measured
// composite ratioStep next to the composed prediction for P ∈ {1, 2, 4, 8},
// plus the absolute contention maxΦ·n, which stays flat across P: sharding
// buys P-way independent rebuilds and batch fan-out without concentrating
// probe mass anywhere.
func A7(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	q := dist.NewUniformSet(keys, "")
	t := &Table{
		ID:    "A7",
		Title: fmt.Sprintf("Sharded composition — exact contention of lcds×P vs the composition formula (n = %d, uniform positive queries)", n),
		Columns: []string{"P", "cells", "probes", "ratioStep(measured)",
			"ratioStep(composed)", "bit-exact", "maxΦ·n", "maxShardKeys"},
		Notes: []string{
			"composed = max(routing mass, max_i maxΦ of shard i under its conditional support) · cells — the paper's composition argument, computed without ever touching the composite",
			"the routing row replicates the top-level hash across as many cells as the shards occupy (R = Σ s_i), so its ratio contribution is exactly 2 for every P; the composite uses 2× the cells of the unsharded structure",
			"maxΦ·n is the absolute contention: flat across P — hash partitioning is model-preserving, the scale-out is free in probe mass",
			"maxShardKeys bounds the work of any single shard's rebuild (the dynamic composite rebuilds one shard at a time)",
		},
	}
	for _, P := range []int{1, 2, 4, 8} {
		sd, err := shard.NewNamed(keys, P, "lcds", cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("A7 P=%d: %w", P, err)
		}
		ex, err := contention.Exact(sd, q.Support())
		if err != nil {
			return nil, fmt.Errorf("A7 P=%d: %w", P, err)
		}
		composed, err := sd.ComposeExact(q.Support())
		if err != nil {
			return nil, fmt.Errorf("A7 P=%d: %w", P, err)
		}
		exact := "yes"
		if ex.MaxStep != composed {
			exact = "NO"
		}
		maxShard := 0
		for i := 0; i < sd.Shards(); i++ {
			if sn := sd.Shard(i).N(); sn > maxShard {
				maxShard = sn
			}
		}
		cells := float64(ex.Cells)
		t.Rows = append(t.Rows, []string{
			d(P), d(ex.Cells), f2s(ex.Probes),
			f1(ex.RatioStep()), f1(composed * cells), exact,
			f2s(ex.MaxStep * float64(n)), d(maxShard),
		})
	}
	return t, nil
}
