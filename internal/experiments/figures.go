package experiments

import (
	"fmt"
	"math"

	"repro/internal/cellprobe"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lowerbound"
	"repro/internal/memsim"
	"repro/internal/rng"
)

// F1 — the per-cell contention profile: the LCDS distribution is nearly
// flat while indexed baselines have heavy heads. Each row is a structure;
// columns are the contention (× s, so optimal = 1) of the cell at selected
// quantiles of the descending-sorted profile.
func F1(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	sts, err := cfg.comparison(keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0, 1e-4, 1e-3, 1e-2, 0.1, 0.5}
	t := &Table{
		ID:    "F1",
		Title: fmt.Sprintf("Per-cell total-contention profile, descending (× s; n = %d, uniform positive queries)", n),
		Notes: []string{
			"column p is the contention of the cell ranked p·s from hottest; a flat profile reads ≈ probes-per-query across columns",
			"binary search: head = 1·s (the root); lcds: head within a constant of 1",
		},
	}
	t.Columns = []string{"structure"}
	for _, f := range fracs {
		t.Columns = append(t.Columns, fmt.Sprintf("q=%g", f))
	}
	t.Columns = append(t.Columns, "gini", "entropy")
	t.Notes = append(t.Notes, "gini: 0 = perfectly flat; entropy: normalized, 1 = perfectly flat")
	q := dist.NewUniformSet(keys, "")
	for _, st := range sts {
		prof, err := contention.Profile(st, q.Support())
		if err != nil {
			return nil, err
		}
		sorted := contention.SortedDescending(prof)
		vals := contention.Quantiles(sorted, fracs)
		row := []string{st.Name()}
		for _, v := range vals {
			row = append(row, f2s(v*float64(len(prof))))
		}
		fl := contention.FlatnessOf(prof)
		row = append(row, f3s(fl.Gini), f3s(fl.NormalizedEntropy))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// F2 — the §1 motivation made operational: m simultaneous queries on a
// single-port-per-cell memory. Slowdown = makespan / conflict-free makespan.
// Structures with hot cells serialize (slowdown ≈ m·maxΦ once m·maxΦ > 1);
// the LCDS stays near 1.
func F2(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	sts, err := cfg.comparison(keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	q := dist.NewUniformSet(keys, "")
	t := &Table{
		ID:    "F2",
		Title: fmt.Sprintf("Hot-spot slowdown of m simultaneous queries (n = %d, one memory module per cell)", n),
		Notes: []string{
			"slowdown = queueing makespan / conflict-free makespan; 1.0 = perfectly parallel",
			"expected crossover where m·maxΦ ≈ 1: bsearch at m ≈ 1, header-indexed baselines at m ≈ n/ℓ_max, lcds at m ≈ s/O(1)",
		},
	}
	t.Columns = []string{"m"}
	for _, st := range sts {
		t.Columns = append(t.Columns, st.Name())
	}
	for _, procs := range cfg.Procs {
		row := []string{d(procs)}
		for _, st := range sts {
			seqs, err := memsim.Sequences(st, q, procs, rng.New(cfg.Seed+uint64(procs)))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", st.Name(), err)
			}
			res := memsim.Run(seqs, memsim.Config{})
			row = append(row, f2s(res.Slowdown()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// F5 — open-system view of contention: queries arrive at rate λ per cycle;
// a structure saturates when its hottest cell's arrival rate λ·maxΦ reaches
// the single-port service rate 1. Binary search saturates at λ = 1 (every
// query hits the root); the low-contention dictionary sustains orders of
// magnitude more.
func F5(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	sts, err := cfg.comparison(keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	q := dist.NewUniformSet(keys, "")
	t := &Table{
		ID:    "F5",
		Title: fmt.Sprintf("Open-system mean query latency vs arrival rate λ (n = %d, one module per cell)", n),
		Notes: []string{
			"each row: queries arrive λ per cycle; entries are mean cycles from arrival to completion",
			"latency explodes once λ·maxΦ > 1 for some cell: bsearch at λ = 1, header baselines at λ ≈ n/ℓ_max, lcds beyond the sweep",
		},
	}
	t.Columns = []string{"lambda"}
	for _, st := range sts {
		t.Columns = append(t.Columns, st.Name())
	}
	const queriesPerRate = 2048
	for _, lambda := range []float64{0.5, 1, 2, 8, 32, 128} {
		row := []string{f1(lambda)}
		for _, st := range sts {
			seqs, err := memsim.Sequences(st, q, queriesPerRate, rng.New(cfg.Seed+uint64(lambda*16)))
			if err != nil {
				return nil, err
			}
			arrivals := make([]int, queriesPerRate)
			for i := range arrivals {
				arrivals[i] = int(float64(i) / lambda)
			}
			res, err := memsim.RunOpen(seqs, arrivals, memsim.Config{})
			if err != nil {
				return nil, err
			}
			row = append(row, f1(res.AvgLatency))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// F3 — Theorem 13: the minimal probe count t* compatible with contention
// φ* ≤ polylog(n)/s grows as Θ(log log n). The solver inverts the
// information recursion's final inequality n·2^(−2t*) ≤ a₁·a^(1−2^(−t*)).
func F3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F3",
		Title: "Theorem 13 — minimal feasible probe count t* vs n for balanced schemes",
		Columns: []string{"n", "lg lg n",
			"t* (b=φs=lg²n)", "t* (b=φs=lg n)", "t* (b=φs=lg⁴n)"},
		Notes: []string{
			"t* is the smallest t with n·2^(−2t) ≤ a₁·a^(1−2^(−t)), a₁ = b·(φ*s), a = (5 ln 2)b²t(φ*s)n",
			"the Θ(log log n) growth must appear in every polylog budget column",
		},
	}
	for _, e := range []int{8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048, 4096} {
		lg := float64(e)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("2^%d", e),
			f2s(math.Log2(lg)),
			d(lowerbound.MinTStarLog2(lg, lg*lg, lg*lg)),
			d(lowerbound.MinTStarLog2(lg, lg, lg)),
			d(lowerbound.MinTStarLog2(lg, lg*lg*lg*lg, lg*lg*lg*lg)),
		})
	}
	return t, nil
}

// F4 — the constructive lemmas behind Theorem 13, exercised on the real
// dictionary: the Lemma 14 information accounting over the LCDS probe
// matrices (per-round information rate, cumulative bits vs the n·2^(−2t*)
// requirement) and the Lemma 16 column-max bound checked on every round.
func F4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F4",
		Title: "Lemma 14/16 accounting on the real low-contention dictionary's probe matrices",
		Columns: []string{"n", "rounds", "info(round0)", "info(max)",
			"totalBits/b", "required bits", "feasible", "lemma16 ok"},
		Notes: []string{
			"info(t) = Σ_j max_i P_t(i,j): replicated rounds contribute ≈ 1 (all instances share one span); the data round contributes ≈ n",
			"lemma16 ok = every round satisfies Σ_j max_i P_t(i,j) ≤ LP bound of Lemma 16",
		},
	}
	for _, n := range cfg.Sizes {
		keys := Keys(n, cfg.Seed+uint64(n))
		lc, err := core.Build(keys, core.Params{}, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		specs := make([]cellprobe.ProbeSpec, len(keys))
		for i, k := range keys {
			specs[i] = lc.ProbeSpec(k)
		}
		res := lowerbound.PlayGame(specs, 128)
		maxInfo := 0.0
		lemma16OK := true
		for ti, round := range res.Rounds {
			if round.InfoRate > maxInfo {
				maxInfo = round.InfoRate
			}
			maxima := make([]float64, len(specs))
			for i, sp := range specs {
				if ti < len(sp) {
					m := sp.MaxCellProb()
					maxima[i] = m[ti]
				}
			}
			lp := lowerbound.CheapSetLPBound(maxima, lc.Table().Size())
			if round.InfoRate > lp+1e-6 {
				lemma16OK = false
			}
		}
		t.Rows = append(t.Rows, []string{
			d(n), d(len(res.Rounds)),
			f2s(res.Rounds[0].InfoRate), f1(maxInfo),
			f1(res.TotalBits / 128),
			fmt.Sprintf("%.2e", res.RequiredBits),
			fmt.Sprintf("%v", res.Feasible()),
			fmt.Sprintf("%v", lemma16OK),
		})
	}
	return t, nil
}
