package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/contention"
	"repro/internal/rng"
)

// P1 — the model's prediction on real hardware: goroutines hammering each
// structure with membership queries. Cell-probe contention manifests as
// cache-line bouncing: structures whose queries converge on few cells (the
// binary-search root, plain hash parameters) scale worse than the
// low-contention dictionary, whose random replica choices spread traffic
// across the table. Wall-clock numbers are machine-specific; the claim is
// the *relative* scaling column.
func P1(cfg Config) (*Table, error) {
	n := cfg.FixedN
	keys := Keys(n, cfg.Seed)
	sts, err := cfg.comparison(keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	maxThreads := runtime.GOMAXPROCS(0)
	threads := []int{1}
	for t := 2; t <= maxThreads; t *= 2 {
		threads = append(threads, t)
	}
	if last := threads[len(threads)-1]; last != maxThreads {
		threads = append(threads, maxThreads)
	}
	queriesPerThread := cfg.Queries / 4
	if queriesPerThread < 1000 {
		queriesPerThread = 1000
	}

	t := &Table{
		ID: "P1",
		Title: fmt.Sprintf("Real-hardware parallel query throughput (n = %d, %d queries/goroutine, GOMAXPROCS = %d)",
			n, queriesPerThread, maxThreads),
		Notes: []string{
			"entries are million queries per second, wall clock, probe recording off",
			"speedup(T)/speedup(1) is the claim: the low-contention dictionary's scaling should dominate the hot-cell structures'",
			"wall-clock numbers vary by machine and run; treat columns comparatively",
		},
	}
	t.Columns = []string{"goroutines"}
	for _, st := range sts {
		t.Columns = append(t.Columns, st.Name()+" Mq/s")
	}
	for _, nt := range threads {
		row := []string{d(nt)}
		for _, st := range sts {
			mqps, err := parallelThroughput(st, keys, nt, queriesPerThread, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, f2s(mqps))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// parallelThroughput measures wall-clock queries/µs for nt goroutines.
func parallelThroughput(st contention.Structure, keys []uint64, nt, queriesPerThread int, seed uint64) (float64, error) {
	var wg sync.WaitGroup
	errs := make(chan error, nt)
	start := time.Now()
	for g := 0; g < nt; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(seed + uint64(g)*7919)
			for i := 0; i < queriesPerThread; i++ {
				k := keys[r.Intn(len(keys))]
				ok, err := st.Contains(k, r)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- fmt.Errorf("P1: %s lost key %d", st.Name(), k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	total := float64(nt * queriesPerThread)
	return total / elapsed.Seconds() / 1e6, nil
}
