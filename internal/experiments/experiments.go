// Package experiments drives the evaluation suite of DESIGN.md §3: one
// experiment per quantitative claim of the paper, each rendering a text
// table comparing the theoretical prediction with the measured value.
//
// Experiments are identified as T1–T5 (tables) and F1–F4 (figure-style
// series); Run dispatches on the identifier and All runs everything. Every
// experiment is deterministic given Config.Seed.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/contention"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"

	// Imported for their registry side effects: every structure the
	// rosters name registers itself from these packages' init functions.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table, the
// format EXPERIMENTS.md embeds.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	dashes := make([]string, len(t.Columns))
	for i := range dashes {
		dashes[i] = "---"
	}
	if err := row(dashes); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Config controls experiment scale. Zero values select defaults.
type Config struct {
	Seed    uint64
	Sizes   []int // n sweep for growth experiments
	FixedN  int   // n for single-size experiments (T3, F1, F2)
	Queries int   // Monte-Carlo query count where sampling is used
	Procs   []int // processor counts for F2
	Trials  int   // repetition count for rate experiments (T4, T5)
	// Structures, when non-empty, restricts roster-driven experiments to
	// the named structures (registry names, see scheme.Names). Experiments
	// that study a single structure (T1, T4, A-series) ignore it.
	Structures []string
}

// Default returns the full-scale configuration used by the CLI and benches.
func Default() Config {
	return Config{
		Seed:    20100613, // SPAA'10 presentation date
		Sizes:   []int{512, 1024, 2048, 4096, 8192, 16384, 32768},
		FixedN:  8192,
		Queries: 200000,
		Procs:   []int{1, 4, 16, 64, 256, 1024, 4096, 16384},
		Trials:  40,
	}
}

// Quick returns a reduced configuration for tests.
func Quick() Config {
	return Config{
		Seed:    7,
		Sizes:   []int{256, 512, 1024},
		FixedN:  1024,
		Queries: 20000,
		Procs:   []int{1, 8, 64},
		Trials:  10,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if len(c.Sizes) == 0 {
		c.Sizes = d.Sizes
	}
	if c.FixedN == 0 {
		c.FixedN = d.FixedN
	}
	if c.Queries == 0 {
		c.Queries = d.Queries
	}
	if len(c.Procs) == 0 {
		c.Procs = d.Procs
	}
	if c.Trials == 0 {
		c.Trials = d.Trials
	}
	return c
}

// Keys generates n distinct universe keys deterministically from seed.
func Keys(n int, seed uint64) []uint64 {
	r := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// RosterNames is the canonical full roster — the low-contention dictionary
// plus every baseline — in the order the experiment tables list it. Every
// name resolves through the scheme registry; cross-package init order is
// why the order lives here rather than in the registry itself.
func RosterNames() []string {
	return []string{"lcds", "fks", "fks+rep", "dm", "cuckoo", "cuckoo+rep",
		"bsearch", "linear+rep", "chained+rep", "bsearch+rep", "bloom+rep"}
}

// ComparisonNames is the replicated-parameter roster T2/F1/F2 focus on —
// the §1.3 comparison where each baseline is given its best (redundant)
// storage.
func ComparisonNames() []string {
	return []string{"lcds", "fks+rep", "dm", "cuckoo+rep", "bsearch", "linear+rep"}
}

// BuildRoster constructs the named structures over one key set, resolving
// each through the scheme registry. Each build derives its randomness
// independently from the same seed, so a filtered roster contains exactly
// the structures the full roster would.
func BuildRoster(names []string, keys []uint64, seed uint64) ([]contention.Structure, error) {
	out := make([]contention.Structure, 0, len(names))
	for _, name := range names {
		st, err := scheme.Build(name, keys, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, st)
	}
	return out, nil
}

// BuildAll constructs the full structure roster over one key set.
func BuildAll(keys []uint64, seed uint64) ([]contention.Structure, error) {
	return BuildRoster(RosterNames(), keys, seed)
}

// ComparisonSet builds the ComparisonNames roster.
func ComparisonSet(keys []uint64, seed uint64) ([]contention.Structure, error) {
	return BuildRoster(ComparisonNames(), keys, seed)
}

// filterNames applies the Structures filter to a roster, preserving the
// roster's order. An empty filter keeps everything.
func (c Config) filterNames(names []string) []string {
	if len(c.Structures) == 0 {
		return names
	}
	keep := make(map[string]bool, len(c.Structures))
	for _, n := range c.Structures {
		keep[n] = true
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		if keep[n] {
			out = append(out, n)
		}
	}
	return out
}

// roster builds the (possibly filtered) full roster.
func (c Config) roster(keys []uint64, seed uint64) ([]contention.Structure, error) {
	return BuildRoster(c.filterNames(RosterNames()), keys, seed)
}

// comparison builds the (possibly filtered) comparison roster.
func (c Config) comparison(keys []uint64, seed uint64) ([]contention.Structure, error) {
	return BuildRoster(c.filterNames(ComparisonNames()), keys, seed)
}

// IDs lists every experiment identifier in order: the paper-claim
// experiments T1–T5 and F1–F4, the future-work extension X1, and the
// ablations A1–A3.
func IDs() []string {
	return []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "F1", "F2", "F3", "F4", "F5", "X1", "X2", "W1", "P1", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10"}
}

// Run executes one experiment by identifier.
func Run(id string, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	switch strings.ToUpper(id) {
	case "T1":
		return T1(cfg)
	case "T2":
		return T2(cfg)
	case "T3":
		return T3(cfg)
	case "T4":
		return T4(cfg)
	case "T5":
		return T5(cfg)
	case "T6":
		return T6(cfg)
	case "T7":
		return T7(cfg)
	case "F1":
		return F1(cfg)
	case "F2":
		return F2(cfg)
	case "F3":
		return F3(cfg)
	case "F4":
		return F4(cfg)
	case "F5":
		return F5(cfg)
	case "X1":
		return X1(cfg)
	case "X2":
		return X2(cfg)
	case "A1":
		return A1(cfg)
	case "A2":
		return A2(cfg)
	case "A3":
		return A3(cfg)
	case "A4":
		return A4(cfg)
	case "A5":
		return A5(cfg)
	case "A6":
		return A6(cfg)
	case "A7":
		return A7(cfg)
	case "A8":
		return A8(cfg)
	case "A9":
		return A9(cfg)
	case "A10":
		return A10(cfg)
	case "W1":
		return W1(cfg)
	case "P1":
		return P1(cfg)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// All executes every experiment in order.
func All(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2s(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3s(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
