// Package baseline implements the comparison dictionaries of the paper's
// §1 and §1.3 on the same cell-probe substrate as the low-contention
// dictionary, so that contention is measured identically for all of them:
//
//   - FKS two-level perfect hashing [8], plain and with the hash parameters
//     stored redundantly ("replicated", §1.3): contention Θ(√n)× optimal in
//     the worst case even when replicated, because the header cell of the
//     largest bucket concentrates Θ(ℓ_max/n) probe mass.
//   - The DM dictionary [4]: groups of expected Θ(log n) keys under the
//     R^d_{r,m} family, FKS inside each group; with replicated parameters
//     the group header contention is Θ(log n / n) — Θ(log n)× optimal.
//   - Cuckoo hashing [12]: every query deterministically probes cell h₁(x)
//     (and h₂(x) on a miss), so cell contention equals bucket load / n —
//     Θ(ln n / ln ln n)× optimal under uniform positive queries.
//   - Sorted-array binary search: the root cell is probed by every query —
//     contention 1, the motivating worst case of §1.
//   - Linear probing: clustering concentrates probe mass on runs.
//
// Every structure exposes the same surface as core.Dict — Contains (probing
// through the recorded table), ProbeSpec (exact per-step distributions),
// Table, N, MaxProbes, Name — so the contention analyzer and the experiment
// harness treat them interchangeably.
package baseline

import (
	"fmt"

	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
)

const (
	sentinelLo  = ^uint64(0)
	occupiedTag = uint64(1)
)

// validateKeys applies the shared key precondition with this package's
// error prefix.
func validateKeys(keys []uint64) error {
	if err := scheme.ValidateKeys(keys); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return nil
}

// drawPerfectFamily retries a pairwise top-level hash into nb buckets until
// the FKS space condition Σℓ² ≤ budget holds. It returns the hash, the
// bucket loads, and the number of draws.
func drawPerfectFamily(r *rng.RNG, keys []uint64, nb int, budget int, maxTries int) (hash.Pairwise, []int, int, error) {
	for try := 1; try <= maxTries; try++ {
		top := hash.NewPairwise(r, uint64(nb))
		loads := hash.Loads(keys, top.Eval, nb)
		if hash.SumSquares(loads) <= budget {
			return top, loads, try, nil
		}
	}
	return hash.Pairwise{}, nil, maxTries, fmt.Errorf("baseline: no top-level hash met Σℓ² ≤ %d after %d tries", budget, maxTries)
}
