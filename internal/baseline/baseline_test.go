package baseline

import (
	"math"
	"testing"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// structure is the common surface of every dictionary in this repository.
type structure interface {
	Name() string
	N() int
	Table() *cellprobe.Table
	MaxProbes() int
	Contains(x uint64, r rng.Source) (bool, error)
	ProbeSpec(x uint64) cellprobe.ProbeSpec
}

func distinctKeys(r *rng.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// builders constructs every baseline over the same key set.
func builders(t testing.TB, keys []uint64, seed uint64) []structure {
	t.Helper()
	var out []structure
	fks, err := BuildFKS(keys, false, seed)
	if err != nil {
		t.Fatalf("fks: %v", err)
	}
	fksRep, err := BuildFKS(keys, true, seed)
	if err != nil {
		t.Fatalf("fks+rep: %v", err)
	}
	dm, err := BuildDM(keys, seed)
	if err != nil {
		t.Fatalf("dm: %v", err)
	}
	ck, err := BuildCuckoo(keys, false, seed)
	if err != nil {
		t.Fatalf("cuckoo: %v", err)
	}
	ckRep, err := BuildCuckoo(keys, true, seed)
	if err != nil {
		t.Fatalf("cuckoo+rep: %v", err)
	}
	bs, err := BuildBinarySearch(keys, seed)
	if err != nil {
		t.Fatalf("bsearch: %v", err)
	}
	lp, err := BuildLinearProbing(keys, false, seed)
	if err != nil {
		t.Fatalf("linear: %v", err)
	}
	lpRep, err := BuildLinearProbing(keys, true, seed)
	if err != nil {
		t.Fatalf("linear+rep: %v", err)
	}
	ch, err := BuildChained(keys, false, seed)
	if err != nil {
		t.Fatalf("chained: %v", err)
	}
	chRep, err := BuildChained(keys, true, seed)
	if err != nil {
		t.Fatalf("chained+rep: %v", err)
	}
	rbs, err := BuildReplicatedBinarySearch(keys, 8, seed)
	if err != nil {
		t.Fatalf("bsearch+rep: %v", err)
	}
	out = append(out, fks, fksRep, dm, ck, ckRep, bs, lp, lpRep, ch, chRep, rbs)
	return out
}

// TestReplicatedBinarySearchRatioUnchanged is the strawman's lesson: k-fold
// whole-structure replication divides the absolute contention by k but
// multiplies space by k, leaving the ratio to optimal at Θ(n).
func TestReplicatedBinarySearchRatioUnchanged(t *testing.T) {
	r := rng.New(50)
	keys := distinctKeys(r, 1023)
	plain, err := BuildBinarySearch(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildReplicatedBinarySearch(keys, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Copies() != 16 {
		t.Fatalf("Copies = %d", rep.Copies())
	}
	// Exact root contention: plain 1, replicated 1/16 — but cells scale by 16.
	rootPlain := plain.ProbeSpec(keys[0]).MaxCellProb()[0]
	rootRep := rep.ProbeSpec(keys[0]).MaxCellProb()[0]
	if rootPlain != 1 {
		t.Errorf("plain root prob %v", rootPlain)
	}
	if diff := rootRep - 1.0/16; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("replicated root prob %v, want 1/16", rootRep)
	}
	ratioPlain := rootPlain * float64(plain.Table().Size())
	ratioRep := rootRep * float64(rep.Table().Size())
	if ratioPlain != ratioRep {
		t.Errorf("ratios differ: plain %v vs replicated %v — replication should not change the ratio", ratioPlain, ratioRep)
	}
}

// TestChainedHeadContentionMatchesLoad: the head cell of bucket b carries
// exactly ℓ_b/n probe mass under uniform positive queries.
func TestChainedHeadContentionMatchesLoad(t *testing.T) {
	r := rng.New(40)
	keys := distinctKeys(r, 400)
	ch, err := BuildChained(keys, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, k := range keys {
		spec := ch.ProbeSpec(k)
		head := spec[1]
		if len(head) != 1 || head[0].Count != 1 {
			t.Fatalf("head probe not a point: %+v", head)
		}
		counts[head[0].Start]++
	}
	for cell, c := range counts {
		b := cell - ch.Table().Index(chHeadRow, 0)
		if ch.loads[b] != c {
			t.Errorf("bucket %d: %d queries but load %d", b, c, ch.loads[b])
		}
	}
}

// TestChainedWalkLength: the probe sequence for a stored key equals
// 2 + its position in the chain; absent keys walk the full chain.
func TestChainedWalkLength(t *testing.T) {
	r := rng.New(41)
	keys := distinctKeys(r, 300)
	ch, err := BuildChained(keys, false, 8)
	if err != nil {
		t.Fatal(err)
	}
	qr := rng.New(9)
	for i := 0; i < 2000; i++ {
		x := qr.Uint64n(hash.MaxKey)
		spec := ch.ProbeSpec(x)
		if len(spec) > ch.MaxProbes() {
			t.Fatalf("spec length %d exceeds MaxProbes %d", len(spec), ch.MaxProbes())
		}
	}
}

func TestMembershipAllStructures(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 2, 5, 33, 256, 1500} {
		keys := distinctKeys(r, n)
		inSet := make(map[uint64]bool, n)
		for _, k := range keys {
			inSet[k] = true
		}
		for _, d := range builders(t, keys, uint64(n)+11) {
			qr := rng.New(uint64(n) + 17)
			if d.N() != n {
				t.Errorf("%s: N = %d, want %d", d.Name(), d.N(), n)
			}
			for _, k := range keys {
				ok, err := d.Contains(k, qr)
				if err != nil {
					t.Fatalf("%s n=%d: Contains(%d): %v", d.Name(), n, k, err)
				}
				if !ok {
					t.Fatalf("%s n=%d: lost key %d", d.Name(), n, k)
				}
			}
			for i := 0; i < 1000; i++ {
				x := qr.Uint64n(hash.MaxKey)
				if inSet[x] {
					continue
				}
				ok, err := d.Contains(x, qr)
				if err != nil {
					t.Fatalf("%s n=%d: Contains(%d): %v", d.Name(), n, x, err)
				}
				if ok {
					t.Fatalf("%s n=%d: phantom key %d", d.Name(), n, x)
				}
			}
		}
	}
}

func TestProbeSpecsValid(t *testing.T) {
	r := rng.New(2)
	keys := distinctKeys(r, 400)
	for _, d := range builders(t, keys, 3) {
		qr := rng.New(5)
		for i := 0; i < 40; i++ {
			var x uint64
			if i%2 == 0 {
				x = keys[qr.Intn(len(keys))]
			} else {
				x = qr.Uint64n(hash.MaxKey)
			}
			spec := d.ProbeSpec(x)
			if err := spec.Validate(d.Table().Size()); err != nil {
				t.Errorf("%s: invalid spec for %d: %v", d.Name(), x, err)
			}
		}
	}
}

// TestProbeSpecMatchesEmpirical verifies, for each structure, that recorded
// Monte-Carlo probes land inside the exact spec's spans with matching
// per-step mass.
func TestProbeSpecMatchesEmpirical(t *testing.T) {
	r := rng.New(6)
	keys := distinctKeys(r, 150)
	for _, d := range builders(t, keys, 7) {
		tab := d.Table()
		qr := rng.New(8)
		for _, x := range []uint64{keys[0], keys[149], 987654321} {
			spec := d.ProbeSpec(x)
			rec := cellprobe.NewRecorder(tab.Size())
			tab.Attach(rec)
			const trials = 1500
			for i := 0; i < trials; i++ {
				if _, err := d.Contains(x, qr); err != nil {
					t.Fatalf("%s: %v", d.Name(), err)
				}
				rec.EndQuery()
			}
			tab.Detach()
			for step, ss := range spec {
				want := ss.Mass()
				got := rec.StepMass(step)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("%s x=%d step %d: empirical mass %v, spec %v", d.Name(), x, step, got, want)
				}
			}
			for step := 0; step < rec.Steps(); step++ {
				if rec.PerStep[step] == nil {
					continue
				}
				for cell, cnt := range rec.PerStep[step] {
					if cnt == 0 {
						continue
					}
					if step >= len(spec) {
						t.Fatalf("%s x=%d: probe at step %d beyond spec", d.Name(), x, step)
					}
					inside := false
					for _, sp := range spec[step] {
						if cell >= sp.Start && cell < sp.Start+sp.Count {
							inside = true
							break
						}
					}
					if !inside {
						t.Fatalf("%s x=%d step %d: probe to %d outside spec", d.Name(), x, step, cell)
					}
				}
			}
		}
	}
}

// TestPlainVariantsHaveHotParamCell is the §1 observation: without
// replication, the parameter cell is probed by every query (contention 1).
func TestPlainVariantsHaveHotParamCell(t *testing.T) {
	r := rng.New(9)
	keys := distinctKeys(r, 300)
	fks, _ := BuildFKS(keys, false, 1)
	ck, _ := BuildCuckoo(keys, false, 1)
	lp, _ := BuildLinearProbing(keys, false, 1)
	for _, d := range []structure{fks, ck, lp} {
		spec := d.ProbeSpec(keys[0])
		first := spec[0]
		if len(first) != 1 || first[0].Count != 1 || first[0].Mass != 1 {
			t.Errorf("%s: plain param probe not a deterministic point: %+v", d.Name(), first)
		}
	}
}

// TestReplicatedVariantsSpreadParamProbes verifies replication flattens the
// parameter-cell contention to 1/width.
func TestReplicatedVariantsSpreadParamProbes(t *testing.T) {
	r := rng.New(10)
	keys := distinctKeys(r, 300)
	fks, _ := BuildFKS(keys, true, 1)
	ck, _ := BuildCuckoo(keys, true, 1)
	for _, d := range []structure{fks, ck} {
		spec := d.ProbeSpec(keys[0])
		first := spec[0]
		if len(first) != 1 || first[0].Count != d.Table().Width() {
			t.Errorf("%s: replicated param probe not row-wide: %+v", d.Name(), first)
		}
	}
}

// TestBinarySearchRootContention: the middle cell is probed first by every
// query — the motivating hot spot.
func TestBinarySearchRootContention(t *testing.T) {
	r := rng.New(11)
	keys := distinctKeys(r, 1023)
	bs, err := BuildBinarySearch(keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	root := bs.Table().Index(0, 511)
	for i := 0; i < 20; i++ {
		spec := bs.ProbeSpec(keys[r.Intn(len(keys))])
		if len(spec[0]) != 1 || spec[0][0].Start != root {
			t.Fatalf("first probe not at root: %+v", spec[0])
		}
	}
}

func TestBinarySearchProbeCountLogarithmic(t *testing.T) {
	r := rng.New(12)
	keys := distinctKeys(r, 4096)
	bs, err := BuildBinarySearch(keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := bs.MaxProbes(); got != 13 {
		t.Errorf("MaxProbes = %d, want 13 for n=4096", got)
	}
	qr := rng.New(13)
	for i := 0; i < 100; i++ {
		spec := bs.ProbeSpec(qr.Uint64n(hash.MaxKey))
		steps := 0
		for _, ss := range spec {
			if len(ss) > 0 {
				steps++
			}
		}
		if steps > bs.MaxProbes() {
			t.Fatalf("probe sequence %d exceeds MaxProbes %d", steps, bs.MaxProbes())
		}
	}
}

// TestCuckooSecondProbeConditional: keys stored in T1 never probe T2.
func TestCuckooSecondProbeConditional(t *testing.T) {
	r := rng.New(14)
	keys := distinctKeys(r, 500)
	ck, err := BuildCuckoo(keys, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	sawT1Only, sawBoth := false, false
	for _, k := range keys {
		spec := ck.ProbeSpec(k)
		last := spec[len(spec)-1]
		if len(last) == 0 {
			sawT1Only = true
		} else {
			sawBoth = true
		}
	}
	if !sawT1Only || !sawBoth {
		t.Errorf("expected keys in both tables: T1-only=%v both=%v", sawT1Only, sawBoth)
	}
}

func TestLinearProbingMaxProbesCoversAbsentScans(t *testing.T) {
	r := rng.New(15)
	keys := distinctKeys(r, 700)
	lp, err := BuildLinearProbing(keys, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	qr := rng.New(16)
	for i := 0; i < 3000; i++ {
		x := qr.Uint64n(hash.MaxKey)
		spec := lp.ProbeSpec(x)
		if len(spec) > lp.MaxProbes() {
			t.Fatalf("spec length %d exceeds MaxProbes %d", len(spec), lp.MaxProbes())
		}
	}
}

func TestValidateKeysRejects(t *testing.T) {
	if err := validateKeys([]uint64{1, 1}); err == nil {
		t.Error("duplicates accepted")
	}
	if err := validateKeys([]uint64{hash.MaxKey}); err == nil {
		t.Error("out-of-universe key accepted")
	}
	if err := validateKeys([]uint64{1, 2, 3}); err != nil {
		t.Errorf("valid keys rejected: %v", err)
	}
}

func TestFKSTopTriesReported(t *testing.T) {
	keys := distinctKeys(rng.New(17), 200)
	fks, err := BuildFKS(keys, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fks.TopTries() < 1 || fks.TopTries() > 50 {
		t.Errorf("TopTries = %d", fks.TopTries())
	}
}

func TestStructureNamesDistinct(t *testing.T) {
	keys := distinctKeys(rng.New(18), 50)
	seen := map[string]bool{}
	for _, d := range builders(t, keys, 5) {
		if seen[d.Name()] {
			t.Errorf("duplicate name %s", d.Name())
		}
		seen[d.Name()] = true
	}
}

func BenchmarkFKSContains(b *testing.B) {
	keys := distinctKeys(rng.New(1), 4096)
	d, err := BuildFKS(keys, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	qr := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Contains(keys[i%len(keys)], qr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCuckooContains(b *testing.B) {
	keys := distinctKeys(rng.New(1), 4096)
	d, err := BuildCuckoo(keys, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	qr := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Contains(keys[i%len(keys)], qr); err != nil {
			b.Fatal(err)
		}
	}
}
