package baseline

import (
	"fmt"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// LinearProbing is an open-addressing hash table at load factor ≤ 1/2 with
// multiply-shift hashing. Probe sequences walk runs of occupied slots, so
// query mass concentrates on cluster prefixes — a different contention
// pathology than the index hot spots of FKS/cuckoo.
//
// Layout: row 0 holds the hash parameters (column 0, or replicated), row 1
// the slots.
type LinearProbing struct {
	n          int
	w          int // power-of-two slot count ≥ 2n
	k          uint
	replicated bool
	tab        *cellprobe.Table
	h          hash.MultShift
	slots      []uint64
	occ        []bool
	maxChain   int
}

const (
	lpParamRow = 0
	lpSlotRow  = 1
)

// BuildLinearProbing constructs the table. The slot count is the smallest
// power of two ≥ 2n (≥ 2).
func BuildLinearProbing(keys []uint64, replicated bool, seed uint64) (*LinearProbing, error) {
	if err := validateKeys(keys); err != nil {
		return nil, err
	}
	n := len(keys)
	k := uint(1)
	for (1 << k) < 2*n {
		k++
	}
	w := 1 << k
	r := rng.New(seed)
	h := hash.NewMultShift(r, k)

	d := &LinearProbing{
		n: n, w: w, k: k, replicated: replicated, h: h,
		slots: make([]uint64, w), occ: make([]bool, w),
	}
	for _, x := range keys {
		p := int(h.Eval(x))
		chain := 1
		for d.occ[p] {
			p = (p + 1) % w
			chain++
			if chain > w {
				return nil, fmt.Errorf("baseline: linear probing table full")
			}
		}
		d.slots[p], d.occ[p] = x, true
	}
	// The worst query (an absent key hashing to the start of the longest
	// occupied run) scans that whole run plus the terminating empty slot.
	run := 0
	for j := 0; j < 2*w && run <= w; j++ { // ×2 to handle wrap-around runs
		if d.occ[j%w] {
			run++
			if run > d.maxChain {
				d.maxChain = run
			}
		} else {
			run = 0
		}
	}

	tab := cellprobe.New(2, w)
	d.tab = tab
	params := cellprobe.Cell{Lo: h.A, Hi: uint64(k)}
	if replicated {
		for j := 0; j < w; j++ {
			tab.Set(lpParamRow, j, params)
		}
	} else {
		tab.Set(lpParamRow, 0, params)
	}
	for j := 0; j < w; j++ {
		if d.occ[j] {
			tab.Set(lpSlotRow, j, cellprobe.Cell{Lo: d.slots[j], Hi: occupiedTag})
		} else {
			tab.Set(lpSlotRow, j, cellprobe.Cell{Lo: sentinelLo})
		}
	}
	return d, nil
}

// Name identifies the structure in experiment reports.
func (d *LinearProbing) Name() string {
	if d.replicated {
		return "linear+rep"
	}
	return "linear"
}

// N returns the number of stored keys.
func (d *LinearProbing) N() int { return d.n }

// Table exposes the cell-probe table.
func (d *LinearProbing) Table() *cellprobe.Table { return d.tab }

// MaxProbes returns the parameter probe plus the longest insertion chain
// plus the terminating empty-slot probe.
func (d *LinearProbing) MaxProbes() int { return d.maxChain + 2 }

// Contains answers membership by walking the probe sequence until the key
// or an empty slot is found.
func (d *LinearProbing) Contains(x uint64, r rng.Source) (bool, error) {
	var pc cellprobe.Cell
	if d.replicated {
		pc = d.tab.Probe(0, lpParamRow, r.Intn(d.w))
	} else {
		pc = d.tab.Probe(0, lpParamRow, 0)
	}
	h := hash.MultShift{A: pc.Lo, K: uint(pc.Hi)}
	if h.K != d.k {
		return false, fmt.Errorf("baseline: corrupt linear-probing parameters (k=%d)", h.K)
	}
	p := int(h.Eval(x))
	for step := 1; step <= d.w+1; step++ {
		c := d.tab.Probe(step, lpSlotRow, p)
		if c.Hi != occupiedTag {
			return false, nil
		}
		if c.Lo == x {
			return true, nil
		}
		p = (p + 1) % d.w
	}
	return false, fmt.Errorf("baseline: linear probing scanned full table")
}

// ProbeSpec returns the exact probe sequence for x (deterministic after the
// parameter probe).
func (d *LinearProbing) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	spec := make(cellprobe.ProbeSpec, 0, 4)
	if d.replicated {
		spec = append(spec, cellprobe.UniformSpan(d.tab.Index(lpParamRow, 0), d.w, 1))
	} else {
		spec = append(spec, cellprobe.PointSpan(d.tab.Index(lpParamRow, 0), 1))
	}
	p := int(d.h.Eval(x))
	for {
		spec = append(spec, cellprobe.PointSpan(d.tab.Index(lpSlotRow, p), 1))
		if !d.occ[p] || d.slots[p] == x {
			return spec
		}
		p = (p + 1) % d.w
	}
}
