package baseline

import (
	"sort"

	"repro/internal/cellprobe"
	"repro/internal/rng"
)

// BinarySearch is the sorted-array dictionary from the paper's introduction:
// "the entry in the middle of the table is accessed on every query". It is
// the maximally contended baseline — the root cell has contention 1, a
// factor s from optimal — and needs Θ(log n) probes.
type BinarySearch struct {
	n    int
	keys []uint64 // sorted
	tab  *cellprobe.Table
}

// BuildBinarySearch constructs the sorted-array dictionary.
func BuildBinarySearch(keys []uint64, _ uint64) (*BinarySearch, error) {
	if err := validateKeys(keys); err != nil {
		return nil, err
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	w := len(sorted)
	if w < 1 {
		w = 1
	}
	d := &BinarySearch{n: len(sorted), keys: sorted, tab: cellprobe.New(1, w)}
	for j := range sorted {
		d.tab.Set(0, j, cellprobe.Cell{Lo: sorted[j], Hi: occupiedTag})
	}
	if len(sorted) == 0 {
		d.tab.Set(0, 0, cellprobe.Cell{Lo: sentinelLo})
	}
	return d, nil
}

// Name identifies the structure in experiment reports.
func (d *BinarySearch) Name() string { return "bsearch" }

// N returns the number of stored keys.
func (d *BinarySearch) N() int { return d.n }

// Table exposes the cell-probe table.
func (d *BinarySearch) Table() *cellprobe.Table { return d.tab }

// MaxProbes returns the worst-case probe count ⌈log₂(n+1)⌉.
func (d *BinarySearch) MaxProbes() int {
	p := 0
	for span := d.n; span > 0; span /= 2 {
		p++
	}
	if p == 0 {
		p = 1
	}
	return p
}

// Contains answers membership for x by standard binary search over probes.
func (d *BinarySearch) Contains(x uint64, _ rng.Source) (bool, error) {
	lo, hi := 0, d.n-1
	step := 0
	for lo <= hi {
		mid := lo + (hi-lo)/2
		c := d.tab.Probe(step, 0, mid)
		step++
		switch {
		case c.Lo == x && c.Hi == occupiedTag:
			return true, nil
		case c.Lo < x:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return false, nil
}

// ProbeSpec returns the exact (deterministic) probe sequence for x: a point
// mass per comparison, sub-stochastic after the search terminates.
func (d *BinarySearch) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	spec := make(cellprobe.ProbeSpec, 0, d.MaxProbes())
	lo, hi := 0, d.n-1
	for lo <= hi {
		mid := lo + (hi-lo)/2
		spec = append(spec, cellprobe.PointSpan(d.tab.Index(0, mid), 1))
		v := d.keys[mid]
		if v == x {
			break
		}
		if v < x {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	for len(spec) < d.MaxProbes() {
		spec = append(spec, cellprobe.StepSpec{})
	}
	return spec
}
