package baseline

import (
	"sort"

	"repro/internal/cellprobe"
	"repro/internal/rng"
)

// ReplicatedBinarySearch is the naive contention fix the paper implicitly
// argues against: store k complete copies of the sorted array and have each
// query search a uniformly random copy. The hottest cell's absolute
// contention drops to 1/k — but the space grows to k·n, so the contention
// *ratio to optimal* stays Θ(n): whole-structure replication cannot
// approach the paper's O(1) ratio with linear space, because it pays for
// every factor of contention reduction with the same factor of space.
type ReplicatedBinarySearch struct {
	n      int
	copies int
	keys   []uint64 // sorted
	tab    *cellprobe.Table
}

// BuildReplicatedBinarySearch constructs k sorted copies (rows) of keys.
func BuildReplicatedBinarySearch(keys []uint64, copies int, _ uint64) (*ReplicatedBinarySearch, error) {
	if err := validateKeys(keys); err != nil {
		return nil, err
	}
	if copies < 1 {
		copies = 1
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	w := len(sorted)
	if w < 1 {
		w = 1
	}
	d := &ReplicatedBinarySearch{n: len(sorted), copies: copies, keys: sorted,
		tab: cellprobe.New(copies, w)}
	for c := 0; c < copies; c++ {
		for j := range sorted {
			d.tab.Set(c, j, cellprobe.Cell{Lo: sorted[j], Hi: occupiedTag})
		}
		if len(sorted) == 0 {
			d.tab.Set(c, 0, cellprobe.Cell{Lo: sentinelLo})
		}
	}
	return d, nil
}

// Name identifies the structure in experiment reports.
func (d *ReplicatedBinarySearch) Name() string { return "bsearch+rep" }

// N returns the number of stored keys.
func (d *ReplicatedBinarySearch) N() int { return d.n }

// Table exposes the cell-probe table.
func (d *ReplicatedBinarySearch) Table() *cellprobe.Table { return d.tab }

// Copies returns the replication factor k.
func (d *ReplicatedBinarySearch) Copies() int { return d.copies }

// MaxProbes returns the worst-case probe count ⌈log₂(n+1)⌉.
func (d *ReplicatedBinarySearch) MaxProbes() int {
	p := 0
	for span := d.n; span > 0; span /= 2 {
		p++
	}
	if p == 0 {
		p = 1
	}
	return p
}

// Contains picks a random copy and binary-searches it.
func (d *ReplicatedBinarySearch) Contains(x uint64, r rng.Source) (bool, error) {
	row := r.Intn(d.copies)
	lo, hi := 0, d.n-1
	step := 0
	for lo <= hi {
		mid := lo + (hi-lo)/2
		c := d.tab.Probe(step, row, mid)
		step++
		switch {
		case c.Lo == x && c.Hi == occupiedTag:
			return true, nil
		case c.Lo < x:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return false, nil
}

// ProbeSpec returns the per-step distribution: each comparison probes the
// same column of a uniformly random copy — a span over the column across
// rows would be non-contiguous, so the spec instead uses one span per row
// weighted 1/k. Spans within a step do not overlap, satisfying the
// analyzer contract.
func (d *ReplicatedBinarySearch) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	spec := make(cellprobe.ProbeSpec, 0, d.MaxProbes())
	lo, hi := 0, d.n-1
	mass := 1.0 / float64(d.copies)
	for lo <= hi {
		mid := lo + (hi-lo)/2
		step := make(cellprobe.StepSpec, 0, d.copies)
		for c := 0; c < d.copies; c++ {
			step = append(step, cellprobe.Span{Start: d.tab.Index(c, mid), Count: 1, Mass: mass})
		}
		spec = append(spec, step)
		v := d.keys[mid]
		if v == x {
			break
		}
		if v < x {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	for len(spec) < d.MaxProbes() {
		spec = append(spec, cellprobe.StepSpec{})
	}
	return spec
}
