package baseline

import (
	"fmt"
	"math"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// DM is the Dietzfelbinger–Meyer auf der Heide dictionary [4] as the paper's
// §1.3 considers it: keys are split into m ≈ n/(2 ln n) groups by a hash from
// the R^d_{r,m} family (whose even load distribution is the family's point),
// and each group of expected Θ(log n) keys is a small FKS dictionary. The
// hash parameters are stored redundantly (a replicated row per coefficient,
// a block-replicated z row), which is the "decreased by storing the hash
// function redundantly" variant: the remaining hot spot is each group's
// header pair, probed with probability ℓ_group/n = Θ(log n / n) — the
// Θ(ln n / ln ln n)× optimal contention the paper quotes.
//
// Layout (d = 4): rows 0..3 f coefficients, 4..7 g coefficients, 8 the z
// vector in blocks, 9 group headers {subBase, groupSize}, 10 group sub-hash
// {A, B}, 11 sub-bucket headers {dataOffset, subLoad}, 12 per-sub-bucket
// perfect hashes (replicated over each span), 13 data.
type DM struct {
	n, w    int
	m, r    int // groups, range of g
	blkZ    int
	tab     *cellprobe.Table
	top     hash.DM
	gloads  []int // group sizes
	subBase []int // start of each group's sub-header region
	// Per-group sub-level structures, indexed by group then sub-bucket.
	subTop   []hash.Pairwise
	subLoads [][]int
	subOffs  [][]int
	subPhA   [][]uint64
	subPhB   [][]uint64
}

const dmD = 4

const (
	dmZRow    = 2 * dmD
	dmH1Row   = 2*dmD + 1
	dmH2Row   = 2*dmD + 2
	dmSubRow  = 2*dmD + 3
	dmPHRow   = 2*dmD + 4
	dmDataRow = 2*dmD + 5
	dmRows    = 2*dmD + 6
)

// BuildDM constructs a DM dictionary over the given distinct keys.
func BuildDM(keys []uint64, seed uint64) (*DM, error) {
	if err := validateKeys(keys); err != nil {
		return nil, err
	}
	n := len(keys)
	logn := math.Log(math.Max(float64(n), 2))
	m := int(float64(n) / (2 * logn))
	if m < 1 {
		m = 1
	}
	r := int(math.Ceil(math.Sqrt(float64(n))))
	if r < 1 {
		r = 1
	}
	w := 4 * n
	if w < m {
		w = m
	}
	if w < r {
		w = r
	}
	if w < 4 {
		w = 4
	}
	rand := rng.New(seed)

	d := &DM{
		n: n, w: w, m: m, r: r, blkZ: w / r,
		top:     hash.NewDM(rand, dmD, uint64(r), uint64(m)),
		subBase: make([]int, m),
		subTop:  make([]hash.Pairwise, m),
	}
	tab := cellprobe.New(dmRows, w)
	d.tab = tab

	// Replicated coefficient rows and z blocks.
	for i := 0; i < dmD; i++ {
		for j := 0; j < w; j++ {
			tab.Set(i, j, cellprobe.Cell{Lo: d.top.F.Coef[i]})
			tab.Set(dmD+i, j, cellprobe.Cell{Lo: d.top.G.Coef[i]})
		}
	}
	for j := 0; j < w; j++ {
		idx := j / d.blkZ
		if idx >= r {
			idx = r - 1
		}
		tab.Set(dmZRow, j, cellprobe.Cell{Lo: d.top.Z[idx]})
	}
	for j := 0; j < w; j++ {
		tab.Set(dmDataRow, j, cellprobe.Cell{Lo: sentinelLo})
	}

	// Split keys into groups.
	groups := make([][]uint64, m)
	for _, x := range keys {
		g := int(d.top.Eval(x))
		groups[g] = append(groups[g], x)
	}
	d.gloads = make([]int, m)
	d.subLoads = make([][]int, m)
	d.subOffs = make([][]int, m)
	d.subPhA = make([][]uint64, m)
	d.subPhB = make([][]uint64, m)

	subPos := 0  // cursor in the sub-header row
	dataPos := 0 // cursor in the ph/data rows
	for g := 0; g < m; g++ {
		gk := groups[g]
		l := len(gk)
		d.gloads[g] = l
		d.subBase[g] = subPos
		tab.Set(dmH1Row, g, cellprobe.Cell{Lo: uint64(subPos), Hi: uint64(l)})
		if l == 0 {
			continue
		}
		// Sub-level FKS: pairwise hash into l sub-buckets with Σℓᵢ² ≤ 4l.
		sub, subLoads, _, err := drawPerfectFamily(rand, gk, l, 4*l, 256)
		if err != nil {
			return nil, fmt.Errorf("baseline: dm group %d: %w", g, err)
		}
		d.subTop[g] = sub
		d.subLoads[g] = subLoads
		tab.Set(dmH2Row, g, cellprobe.Cell{Lo: sub.A, Hi: sub.B})

		subKeys := make([][]uint64, l)
		for _, x := range gk {
			i := int(sub.Eval(x))
			subKeys[i] = append(subKeys[i], x)
		}
		d.subOffs[g] = make([]int, l)
		d.subPhA[g] = make([]uint64, l)
		d.subPhB[g] = make([]uint64, l)
		for i := 0; i < l; i++ {
			li := subLoads[i]
			d.subOffs[g][i] = dataPos
			tab.Set(dmSubRow, subPos+i, cellprobe.Cell{Lo: uint64(dataPos), Hi: uint64(li)})
			if li == 0 {
				continue
			}
			span := li * li
			if dataPos+span > w {
				return nil, fmt.Errorf("baseline: dm data overflow at group %d", g)
			}
			hstar, _, err := hash.FindPerfect(rand, subKeys[i], uint64(span), 1000)
			if err != nil {
				return nil, fmt.Errorf("baseline: dm sub-bucket (%d,%d): %w", g, i, err)
			}
			d.subPhA[g][i], d.subPhB[g][i] = hstar.A, hstar.B
			for j := 0; j < span; j++ {
				tab.Set(dmPHRow, dataPos+j, cellprobe.Cell{Lo: hstar.A, Hi: hstar.B})
			}
			for _, x := range subKeys[i] {
				tab.Set(dmDataRow, dataPos+int(hstar.Eval(x)), cellprobe.Cell{Lo: x, Hi: occupiedTag})
			}
			dataPos += span
		}
		subPos += l
	}
	return d, nil
}

// Name identifies the structure in experiment reports.
func (d *DM) Name() string { return "dm" }

// N returns the number of stored keys.
func (d *DM) N() int { return d.n }

// Table exposes the cell-probe table.
func (d *DM) Table() *cellprobe.Table { return d.tab }

// MaxProbes returns the worst-case probe count.
func (d *DM) MaxProbes() int { return dmRows }

// Contains answers membership for x, reading only table cells.
func (d *DM) Contains(x uint64, r rng.Source) (bool, error) {
	fc := make([]uint64, dmD)
	gc := make([]uint64, dmD)
	for i := 0; i < dmD; i++ {
		fc[i] = d.tab.Probe(i, i, r.Intn(d.w)).Lo
		gc[i] = d.tab.Probe(dmD+i, dmD+i, r.Intn(d.w)).Lo
	}
	f := hash.PolyFromCoef(fc, uint64(d.m))
	g := hash.PolyFromCoef(gc, uint64(d.r))
	gx := int(g.Eval(x))
	zv := d.tab.Probe(2*dmD, dmZRow, gx*d.blkZ+r.Intn(d.blkZ)).Lo
	if zv >= uint64(d.m) {
		return false, fmt.Errorf("baseline: dm z value %d out of range %d", zv, d.m)
	}
	grp := int((f.Eval(x) + zv) % uint64(d.m))

	h1 := d.tab.Probe(2*dmD+1, dmH1Row, grp)
	subBase, gsize := int(h1.Lo), int(h1.Hi)
	if gsize == 0 {
		return false, nil
	}
	h2 := d.tab.Probe(2*dmD+2, dmH2Row, grp)
	sub := hash.Pairwise{A: h2.Lo, B: h2.Hi, M: uint64(gsize)}
	subIdx := int(sub.Eval(x))
	if subBase+subIdx >= d.w {
		return false, fmt.Errorf("baseline: dm sub-header index %d out of width", subBase+subIdx)
	}
	sh := d.tab.Probe(2*dmD+3, dmSubRow, subBase+subIdx)
	dataOff, subLoad := int(sh.Lo), int(sh.Hi)
	if subLoad == 0 {
		return false, nil
	}
	span := subLoad * subLoad
	if dataOff+span > d.w {
		return false, fmt.Errorf("baseline: dm span [%d,%d) exceeds width %d", dataOff, dataOff+span, d.w)
	}
	phc := d.tab.Probe(2*dmD+4, dmPHRow, dataOff+r.Intn(span))
	hstar := hash.Pairwise{A: phc.Lo, B: phc.Hi, M: uint64(span)}
	dc := d.tab.Probe(2*dmD+5, dmDataRow, dataOff+int(hstar.Eval(x)))
	return dc.Hi == occupiedTag && dc.Lo == x, nil
}

// ProbeSpec returns the exact per-step probe distribution for x.
func (d *DM) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	spec := make(cellprobe.ProbeSpec, 0, dmRows)
	for i := 0; i < 2*dmD; i++ {
		spec = append(spec, cellprobe.UniformSpan(d.tab.Index(i, 0), d.w, 1))
	}
	gx := int(d.top.G.Eval(x))
	spec = append(spec, cellprobe.UniformSpan(d.tab.Index(dmZRow, gx*d.blkZ), d.blkZ, 1))
	grp := int(d.top.Eval(x))
	spec = append(spec, cellprobe.PointSpan(d.tab.Index(dmH1Row, grp), 1))
	gsize := d.gloads[grp]
	empty := func(k int) {
		for i := 0; i < k; i++ {
			spec = append(spec, cellprobe.StepSpec{})
		}
	}
	if gsize == 0 {
		empty(4)
		return spec
	}
	spec = append(spec, cellprobe.PointSpan(d.tab.Index(dmH2Row, grp), 1))
	subIdx := int(d.subTop[grp].Eval(x))
	spec = append(spec, cellprobe.PointSpan(d.tab.Index(dmSubRow, d.subBase[grp]+subIdx), 1))
	subLoad := d.subLoads[grp][subIdx]
	if subLoad == 0 {
		empty(2)
		return spec
	}
	off, span := d.subOffs[grp][subIdx], subLoad*subLoad
	spec = append(spec, cellprobe.UniformSpan(d.tab.Index(dmPHRow, off), span, 1))
	hstar := hash.Pairwise{A: d.subPhA[grp][subIdx], B: d.subPhB[grp][subIdx], M: uint64(span)}
	spec = append(spec, cellprobe.PointSpan(d.tab.Index(dmDataRow, off+int(hstar.Eval(x))), 1))
	return spec
}
