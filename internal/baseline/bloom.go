package baseline

import (
	"math"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// Bloom is a Bloom filter on the cell-probe substrate — the approximate
// filter a practitioner would deploy in the paper's motivating scenario.
// It is included for its contention profile, not its exactness: a query
// probes k pseudo-random bit-cells. Each bit cell is shared by the members
// hashing to it, so under uniform positive queries its contention ratio is
// Θ(k · bitsPerKey · maxMultiplicity) — bounded, but a distinctly larger
// constant than the exact low-contention dictionary's, growing like
// ln n/ln ln n, and bought with one-sided errors.
//
// Layout: rows 0..k-1 hold one hash function's coefficients each (column 0,
// or replicated); row k is the bit array, one bit per cell (a deliberately
// wasteful encoding that keeps one probe per lookup bit and mirrors the
// other structures' accounting).
type Bloom struct {
	n          int
	w          int // bit cells
	k          int // hash functions
	replicated bool
	tab        *cellprobe.Table
	hs         []hash.Pairwise
}

// BuildBloom constructs a filter with bitsPerKey·n cells and the standard
// optimal k = bitsPerKey·ln 2 hash functions.
func BuildBloom(keys []uint64, bitsPerKey int, replicated bool, seed uint64) (*Bloom, error) {
	if err := validateKeys(keys); err != nil {
		return nil, err
	}
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	n := len(keys)
	w := bitsPerKey * n
	if w < 8 {
		w = 8
	}
	k := int(math.Round(float64(bitsPerKey) * math.Ln2))
	if k < 1 {
		k = 1
	}
	r := rng.New(seed)
	d := &Bloom{n: n, w: w, k: k, replicated: replicated}
	tab := cellprobe.New(k+1, w)
	d.tab = tab
	for i := 0; i < k; i++ {
		h := hash.NewPairwise(r, uint64(w))
		d.hs = append(d.hs, h)
		c := cellprobe.Cell{Lo: h.A, Hi: h.B}
		if replicated {
			tab.SetBlockRow(i, []cellprobe.Cell{c}, w)
		} else {
			tab.Set(i, 0, c)
		}
	}
	for _, x := range keys {
		for _, h := range d.hs {
			tab.Set(k, int(h.Eval(x)), cellprobe.Cell{Lo: 1})
		}
	}
	return d, nil
}

// Name identifies the structure in experiment reports.
func (d *Bloom) Name() string {
	if d.replicated {
		return "bloom+rep"
	}
	return "bloom"
}

// N returns the number of stored keys.
func (d *Bloom) N() int { return d.n }

// Table exposes the cell-probe table.
func (d *Bloom) Table() *cellprobe.Table { return d.tab }

// MaxProbes returns k parameter probes plus up to k bit probes.
func (d *Bloom) MaxProbes() int { return 2 * d.k }

// K returns the number of hash functions.
func (d *Bloom) K() int { return d.k }

// Contains reports (approximate) membership: false is always correct; true
// is wrong with the filter's false-positive probability ≈ 2^−k.
func (d *Bloom) Contains(x uint64, r rng.Source) (bool, error) {
	col := func() int {
		if d.replicated {
			return r.Intn(d.w)
		}
		return 0
	}
	for i := 0; i < d.k; i++ {
		pc := d.tab.Probe(i, i, col())
		h := hash.Pairwise{A: pc.Lo, B: pc.Hi, M: uint64(d.w)}
		bit := d.tab.Probe(d.k+i, d.k, int(h.Eval(x)))
		if bit.Lo == 0 {
			return false, nil
		}
	}
	return true, nil
}

// ProbeSpec returns the exact probe distribution. Iteration i probes hash
// i's parameters (step i) and its bit (step k+i); both happen only if every
// earlier bit was set, so their mass is 0 after the first zero bit.
func (d *Bloom) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	params := make(cellprobe.ProbeSpec, d.k)
	bits := make(cellprobe.ProbeSpec, d.k)
	alive := 1.0
	for i := 0; i < d.k; i++ {
		if d.replicated {
			params[i] = cellprobe.UniformSpan(d.tab.Index(i, 0), d.w, alive)
		} else {
			params[i] = cellprobe.PointSpan(d.tab.Index(i, 0), alive)
		}
		pos := int(d.hs[i].Eval(x))
		bits[i] = cellprobe.PointSpan(d.tab.Index(d.k, pos), alive)
		if d.tab.At(d.k, pos).Lo == 0 {
			alive = 0
		}
	}
	return append(params, bits...)
}
