package baseline

import (
	"fmt"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// Chained is a separate-chaining hash table: n head pointers and a cell per
// key, chains threaded through a spill region. It is the "standard hash
// table" of the paper's introduction: the head row is indexed directly by
// the hash value, so the head cell of a bucket carries that bucket's whole
// query mass — contention ℓ_i/n, like FKS's headers — and chains cost one
// probe per element walked.
//
// Layout: row 0 hash parameters (column 0 or replicated), row 1 bucket
// heads {firstIndex+1, load}, row 2 entries {key, nextIndex+1}; index 0 in
// a link field means nil.
type Chained struct {
	n          int
	w          int
	replicated bool
	tab        *cellprobe.Table
	h          hash.Pairwise
	loads      []int
	heads      []int // first entry index per bucket, -1 if empty
	next       []int // next entry index, -1 terminates
	entries    []uint64
	maxChain   int
}

const (
	chParamRow = 0
	chHeadRow  = 1
	chDataRow  = 2
)

// BuildChained constructs the table with n buckets (load factor 1).
func BuildChained(keys []uint64, replicated bool, seed uint64) (*Chained, error) {
	if err := validateKeys(keys); err != nil {
		return nil, err
	}
	n := len(keys)
	nb := n
	if nb < 1 {
		nb = 1
	}
	w := n
	if w < nb {
		w = nb
	}
	if w < 1 {
		w = 1
	}
	r := rng.New(seed)
	d := &Chained{
		n: n, w: w, replicated: replicated,
		h:     hash.NewPairwise(r, uint64(nb)),
		heads: make([]int, nb),
		next:  make([]int, n),
		loads: make([]int, nb),
	}
	for i := range d.heads {
		d.heads[i] = -1
	}
	d.entries = append([]uint64(nil), keys...)
	for i, x := range d.entries {
		b := int(d.h.Eval(x))
		d.next[i] = d.heads[b]
		d.heads[b] = i
		d.loads[b]++
		if d.loads[b] > d.maxChain {
			d.maxChain = d.loads[b]
		}
	}

	tab := cellprobe.New(3, w)
	d.tab = tab
	params := cellprobe.Cell{Lo: d.h.A, Hi: d.h.B}
	if replicated {
		for j := 0; j < w; j++ {
			tab.Set(chParamRow, j, params)
		}
	} else {
		tab.Set(chParamRow, 0, params)
	}
	for b := 0; b < nb && b < w; b++ {
		tab.Set(chHeadRow, b, cellprobe.Cell{Lo: uint64(d.heads[b] + 1), Hi: uint64(d.loads[b])})
	}
	for i, x := range d.entries {
		tab.Set(chDataRow, i, cellprobe.Cell{Lo: x, Hi: uint64(d.next[i] + 1)})
	}
	return d, nil
}

// Name identifies the structure in experiment reports.
func (d *Chained) Name() string {
	if d.replicated {
		return "chained+rep"
	}
	return "chained"
}

// N returns the number of stored keys.
func (d *Chained) N() int { return d.n }

// Table exposes the cell-probe table.
func (d *Chained) Table() *cellprobe.Table { return d.tab }

// MaxProbes returns the parameter probe + head probe + longest chain walk.
func (d *Chained) MaxProbes() int { return 2 + d.maxChain }

// Contains answers membership by walking the chain through recorded probes.
func (d *Chained) Contains(x uint64, r rng.Source) (bool, error) {
	var pc cellprobe.Cell
	if d.replicated {
		pc = d.tab.Probe(0, chParamRow, r.Intn(d.w))
	} else {
		pc = d.tab.Probe(0, chParamRow, 0)
	}
	h := hash.Pairwise{A: pc.Lo, B: pc.Hi, M: uint64(maxInt(d.n, 1))}
	b := int(h.Eval(x))
	hc := d.tab.Probe(1, chHeadRow, b)
	cur := int(hc.Lo) - 1
	for step := 2; cur >= 0; step++ {
		if cur >= d.w {
			return false, fmt.Errorf("baseline: chained link %d out of range", cur)
		}
		c := d.tab.Probe(step, chDataRow, cur)
		if c.Lo == x {
			return true, nil
		}
		cur = int(c.Hi) - 1
		if step > d.n+2 {
			return false, fmt.Errorf("baseline: chained walk did not terminate")
		}
	}
	return false, nil
}

// ProbeSpec returns the exact probe sequence for x.
func (d *Chained) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	spec := make(cellprobe.ProbeSpec, 0, d.MaxProbes())
	if d.replicated {
		spec = append(spec, cellprobe.UniformSpan(d.tab.Index(chParamRow, 0), d.w, 1))
	} else {
		spec = append(spec, cellprobe.PointSpan(d.tab.Index(chParamRow, 0), 1))
	}
	b := int(d.h.Eval(x))
	spec = append(spec, cellprobe.PointSpan(d.tab.Index(chHeadRow, b), 1))
	for cur := d.heads[b]; cur >= 0; cur = d.next[cur] {
		spec = append(spec, cellprobe.PointSpan(d.tab.Index(chDataRow, cur), 1))
		if d.entries[cur] == x {
			break
		}
	}
	return spec
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
