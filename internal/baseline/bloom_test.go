package baseline

import (
	"math"
	"testing"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	r := rng.New(70)
	keys := distinctKeys(r, 1000)
	d, err := BuildBloom(keys, 10, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	qr := rng.New(2)
	for _, k := range keys {
		ok, err := d.Contains(k, qr)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	r := rng.New(71)
	keys := distinctKeys(r, 2000)
	d, err := BuildBloom(keys, 10, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	inSet := map[uint64]bool{}
	for _, k := range keys {
		inSet[k] = true
	}
	qr := rng.New(3)
	fp := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		x := qr.Uint64n(hash.MaxKey)
		if inSet[x] {
			continue
		}
		ok, err := d.Contains(x, qr)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			fp++
		}
	}
	// 10 bits/key, k = 7: theoretical FP ≈ (1−e^{−k/10})^k ≈ 0.8%.
	if rate := float64(fp) / trials; rate > 0.03 {
		t.Errorf("false-positive rate %v too high", rate)
	}
}

func TestBloomSpecMatchesEmpirical(t *testing.T) {
	r := rng.New(72)
	keys := distinctKeys(r, 300)
	d, err := BuildBloom(keys, 10, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := d.Table()
	qr := rng.New(4)
	for _, x := range []uint64{keys[0], 987654321987} {
		spec := d.ProbeSpec(x)
		if err := spec.Validate(tab.Size()); err != nil {
			t.Fatalf("spec: %v", err)
		}
		rec := cellprobe.NewRecorder(tab.Size())
		tab.Attach(rec)
		const trials = 2000
		for i := 0; i < trials; i++ {
			if _, err := d.Contains(x, qr); err != nil {
				t.Fatal(err)
			}
			rec.EndQuery()
		}
		tab.Detach()
		for step, ss := range spec {
			if got, want := rec.StepMass(step), ss.Mass(); math.Abs(got-want) > 1e-9 {
				t.Errorf("x=%d step %d: empirical %v vs spec %v", x, step, got, want)
			}
		}
	}
}

// TestBloomContentionBounded: the filter's bit probes are spread by
// hashing but carry balls-in-bins multiplicity — several members share a
// bit cell, and every one of their queries probes it. The ratio is
// Θ(k · bitsPerKey · maxMultiplicity) ≈ 240 here: bounded and flat-ish,
// but a markedly larger constant than the exact dictionary's ≈ 52, and
// growing with ln n/ln ln n. Theorem 3's structure beats the practical
// approximate filter on contention while also being exact.
func TestBloomContentionBounded(t *testing.T) {
	r := rng.New(73)
	keys := distinctKeys(r, 2048)
	d, err := BuildBloom(keys, 10, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Exact analysis over uniform positive support.
	cells := d.Table().Size()
	maxPhi := 0.0
	qx := 1.0 / float64(len(keys))
	phi := make([]float64, cells)
	steps := d.MaxProbes()
	for step := 0; step < steps; step++ {
		for i := range phi {
			phi[i] = 0
		}
		for _, x := range keys {
			spec := d.ProbeSpec(x)
			if step >= len(spec) {
				continue
			}
			for _, sp := range spec[step] {
				pc := sp.PerCell() * qx
				for j := sp.Start; j < sp.Start+sp.Count; j++ {
					phi[j] += pc
				}
			}
		}
		for _, v := range phi {
			if v > maxPhi {
				maxPhi = v
			}
		}
	}
	ratio := maxPhi * float64(cells)
	if ratio > 512 {
		t.Errorf("bloom contention ratio %v outside the expected band", ratio)
	}
	if ratio < 64 {
		t.Errorf("bloom ratio %v suspiciously low — multiplicity accounting broken?", ratio)
	}
	t.Logf("bloom ratio %.1f (k = %d)", ratio, d.K())
}

func TestBloomPlainParamHotspot(t *testing.T) {
	r := rng.New(74)
	keys := distinctKeys(r, 100)
	d, err := BuildBloom(keys, 10, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := d.ProbeSpec(keys[0])
	if len(spec[0]) != 1 || spec[0][0].Count != 1 {
		t.Errorf("plain bloom param probe not a point: %+v", spec[0])
	}
}
