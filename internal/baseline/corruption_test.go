package baseline

import (
	"testing"

	"repro/internal/cellprobe"
	"repro/internal/rng"
)

// Failure injection: corrupting structural cells must surface as errors or
// wrong-but-bounded answers, never panics or unbounded scans.

func TestFKSCorruptHeaderSurfacesError(t *testing.T) {
	keys := distinctKeys(rng.New(60), 100)
	d, err := BuildFKS(keys, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Point every bucket header at an out-of-range span.
	for b := 0; b < d.nb; b++ {
		d.Table().Set(fksHeaderRow, b, cellprobe.Cell{Lo: uint64(d.w), Hi: 5})
	}
	qr := rng.New(2)
	if _, err := d.Contains(keys[0], qr); err == nil {
		t.Error("corrupt FKS header did not produce an error")
	}
}

func TestDMCorruptZSurfacesError(t *testing.T) {
	keys := distinctKeys(rng.New(61), 100)
	d, err := BuildDM(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d.w; j++ {
		d.Table().Set(dmZRow, j, cellprobe.Cell{Lo: ^uint64(0)})
	}
	qr := rng.New(2)
	if _, err := d.Contains(keys[0], qr); err == nil {
		t.Error("corrupt DM z row did not produce an error")
	}
}

func TestDMCorruptSubHeaderSurfacesError(t *testing.T) {
	keys := distinctKeys(rng.New(62), 100)
	d, err := BuildDM(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d.w; j++ {
		d.Table().Set(dmSubRow, j, cellprobe.Cell{Lo: uint64(d.w), Hi: 3})
	}
	qr := rng.New(3)
	var sawErr bool
	for _, k := range keys {
		if _, err := d.Contains(k, qr); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("corrupt DM sub-headers never produced an error")
	}
}

func TestLinearProbingCorruptParamsSurfacesError(t *testing.T) {
	keys := distinctKeys(rng.New(63), 50)
	d, err := BuildLinearProbing(keys, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Table().Set(lpParamRow, 0, cellprobe.Cell{Lo: 12345, Hi: 63}) // wrong k
	qr := rng.New(4)
	if _, err := d.Contains(keys[0], qr); err == nil {
		t.Error("corrupt linear-probing parameters did not produce an error")
	}
}

func TestLinearProbingFullScanTerminates(t *testing.T) {
	keys := distinctKeys(rng.New(64), 50)
	d, err := BuildLinearProbing(keys, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill every slot so an absent key's scan has no empty terminator.
	for j := 0; j < d.w; j++ {
		d.Table().Set(lpSlotRow, j, cellprobe.Cell{Lo: 1, Hi: occupiedTag})
	}
	qr := rng.New(5)
	if _, err := d.Contains(2, qr); err == nil {
		t.Error("full-table scan did not surface an error")
	}
}

func TestChainedCorruptLinkSurfacesError(t *testing.T) {
	keys := distinctKeys(rng.New(65), 80)
	d, err := BuildChained(keys, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Create a self-loop in the chain cells: walks must terminate with an
	// error rather than spin forever.
	for j := 0; j < d.w; j++ {
		d.Table().Set(chDataRow, j, cellprobe.Cell{Lo: 1, Hi: uint64(j) + 1})
	}
	qr := rng.New(6)
	if _, err := d.Contains(2, qr); err == nil {
		t.Error("chained self-loop did not surface an error")
	}
}
