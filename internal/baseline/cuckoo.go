package baseline

import (
	"fmt"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// cuckooD is the independence degree of the cuckoo hash functions. Pagh and
// Rodler [12] require O(log n)-wise independence; d = 8 keeps the empirical
// load profile indistinguishable from fully random at the sizes measured
// here while fitting the coefficients in four 128-bit cells per function.
const cuckooD = 8

// Cuckoo is the cuckoo hash dictionary [12]: two arrays of w = 2n cells;
// key x lives in T₁[h₁(x)] or T₂[h₂(x)]. A query always probes T₁[h₁(x)]
// first and T₂[h₂(x)] on a miss, so even with replicated hash-parameter
// storage, cell T₁[j] carries probe mass |h₁⁻¹(j) ∩ support|/n — the
// balls-in-bins maximum Θ(ln n / ln ln n) over n, giving the
// Θ(ln n / ln ln n)× optimal contention of §1.3.
//
// Layout: rows 0..3 hold h₁'s eight coefficients (two per 128-bit cell),
// rows 4..7 hold h₂'s, row 8 is T₁ and row 9 is T₂. Parameter rows are
// fully replicated in the replicated variant and live in column 0 otherwise.
type Cuckoo struct {
	n, w       int
	replicated bool
	tab        *cellprobe.Table
	h1, h2     hash.Poly
	// side[x] records which table stores key x (test/analyzer knowledge).
	side map[uint64]int
}

const (
	cuckooParamRows = cuckooD // 2 coefficients per cell, 2 functions
	cuckooT1Row     = cuckooParamRows
	cuckooT2Row     = cuckooParamRows + 1
	cuckooRows      = cuckooParamRows + 2
)

// BuildCuckoo constructs a cuckoo dictionary. Insertion failures trigger a
// full rehash with fresh functions, up to a bounded number of attempts.
func BuildCuckoo(keys []uint64, replicated bool, seed uint64) (*Cuckoo, error) {
	if err := validateKeys(keys); err != nil {
		return nil, err
	}
	n := len(keys)
	w := 2 * n
	if w < 2 {
		w = 2
	}
	r := rng.New(seed)

	const maxRehash = 64
	maxLoop := 32
	for l := n; l > 1; l /= 2 {
		maxLoop += 8 // ≈ 8·log₂ n eviction steps before declaring a cycle
	}
	for attempt := 0; attempt < maxRehash; attempt++ {
		h1 := hash.NewPoly(r, cuckooD, uint64(w))
		h2 := hash.NewPoly(r, cuckooD, uint64(w))
		t1 := make([]uint64, w)
		t2 := make([]uint64, w)
		occ1 := make([]bool, w)
		occ2 := make([]bool, w)
		ok := true
		for _, x := range keys {
			cur, side := x, 0
			placed := false
			for step := 0; step < maxLoop; step++ {
				if side == 0 {
					p := h1.Eval(cur)
					if !occ1[p] {
						t1[p], occ1[p] = cur, true
						placed = true
						break
					}
					t1[p], cur = cur, t1[p]
					side = 1
				} else {
					p := h2.Eval(cur)
					if !occ2[p] {
						t2[p], occ2[p] = cur, true
						placed = true
						break
					}
					t2[p], cur = cur, t2[p]
					side = 0
				}
			}
			if !placed {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		d := &Cuckoo{n: n, w: w, replicated: replicated, h1: h1, h2: h2, side: make(map[uint64]int, n)}
		tab := cellprobe.New(cuckooRows, w)
		d.tab = tab
		// Parameter rows: coefficient pair i of h₁ in row i, of h₂ in row D/2+i.
		for i := 0; i < cuckooD/2; i++ {
			c1 := cellprobe.Cell{Lo: h1.Coef[2*i], Hi: h1.Coef[2*i+1]}
			c2 := cellprobe.Cell{Lo: h2.Coef[2*i], Hi: h2.Coef[2*i+1]}
			if replicated {
				for j := 0; j < w; j++ {
					tab.Set(i, j, c1)
					tab.Set(cuckooD/2+i, j, c2)
				}
			} else {
				tab.Set(i, 0, c1)
				tab.Set(cuckooD/2+i, 0, c2)
			}
		}
		for j := 0; j < w; j++ {
			c1 := cellprobe.Cell{Lo: sentinelLo}
			if occ1[j] {
				c1 = cellprobe.Cell{Lo: t1[j], Hi: occupiedTag}
				d.side[t1[j]] = 0
			}
			tab.Set(cuckooT1Row, j, c1)
			c2 := cellprobe.Cell{Lo: sentinelLo}
			if occ2[j] {
				c2 = cellprobe.Cell{Lo: t2[j], Hi: occupiedTag}
				d.side[t2[j]] = 1
			}
			tab.Set(cuckooT2Row, j, c2)
		}
		return d, nil
	}
	return nil, fmt.Errorf("baseline: cuckoo insertion failed after %d rehashes for n=%d", maxRehash, n)
}

// Name identifies the structure in experiment reports.
func (d *Cuckoo) Name() string {
	if d.replicated {
		return "cuckoo+rep"
	}
	return "cuckoo"
}

// N returns the number of stored keys.
func (d *Cuckoo) N() int { return d.n }

// Table exposes the cell-probe table.
func (d *Cuckoo) Table() *cellprobe.Table { return d.tab }

// MaxProbes returns the worst-case probe count.
func (d *Cuckoo) MaxProbes() int { return cuckooRows }

// Contains answers membership for x, reading only table cells.
func (d *Cuckoo) Contains(x uint64, r rng.Source) (bool, error) {
	col := func() int {
		if d.replicated {
			return r.Intn(d.w)
		}
		return 0
	}
	c1 := make([]uint64, cuckooD)
	c2 := make([]uint64, cuckooD)
	for i := 0; i < cuckooD/2; i++ {
		cc := d.tab.Probe(i, i, col())
		c1[2*i], c1[2*i+1] = cc.Lo, cc.Hi
		cc = d.tab.Probe(cuckooD/2+i, cuckooD/2+i, col())
		c2[2*i], c2[2*i+1] = cc.Lo, cc.Hi
	}
	h1 := hash.PolyFromCoef(c1, uint64(d.w))
	h2 := hash.PolyFromCoef(c2, uint64(d.w))
	t1c := d.tab.Probe(cuckooD, cuckooT1Row, int(h1.Eval(x)))
	if t1c.Hi == occupiedTag && t1c.Lo == x {
		return true, nil
	}
	t2c := d.tab.Probe(cuckooD+1, cuckooT2Row, int(h2.Eval(x)))
	return t2c.Hi == occupiedTag && t2c.Lo == x, nil
}

// ProbeSpec returns the exact per-step probe distribution for x.
func (d *Cuckoo) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	spec := make(cellprobe.ProbeSpec, 0, cuckooRows)
	for i := 0; i < cuckooParamRows; i++ {
		if d.replicated {
			spec = append(spec, cellprobe.UniformSpan(d.tab.Index(i, 0), d.w, 1))
		} else {
			spec = append(spec, cellprobe.PointSpan(d.tab.Index(i, 0), 1))
		}
	}
	spec = append(spec, cellprobe.PointSpan(d.tab.Index(cuckooT1Row, int(d.h1.Eval(x))), 1))
	// The T₂ probe happens unless x is stored in T₁.
	if side, ok := d.side[x]; ok && side == 0 {
		spec = append(spec, cellprobe.StepSpec{})
	} else {
		spec = append(spec, cellprobe.PointSpan(d.tab.Index(cuckooT2Row, int(d.h2.Eval(x))), 1))
	}
	return spec
}
