package baseline

import (
	"fmt"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// FKS is the static dictionary of Fredman, Komlós and Szemerédi [8]:
// a pairwise top-level hash into n buckets, and within each bucket of load ℓ
// a perfect pairwise hash into ℓ² cells. The table layout is
//
//	row 0: top-level hash parameters (column 0 only, or replicated)
//	row 1: bucket headers — column i holds {offset, load} of bucket i
//	row 2: per-bucket perfect hash, replicated across the bucket's ℓ² span
//	row 3: bucket data, placed by the perfect hash
//
// A plain FKS query probes the single parameter cell (contention 1). The
// replicated variant probes a random copy, which removes that hot spot but
// leaves the bucket-header hot spot: the header of bucket i is probed by
// every query hashing there, contention ℓ_i/n — up to Θ(√n/n) since the FKS
// condition only bounds Σℓ², giving the Θ(√n)× optimal contention of §1.3.
type FKS struct {
	n          int
	w          int // row width (≈ 4n)
	nb         int // top-level buckets
	replicated bool
	tab        *cellprobe.Table
	top        hash.Pairwise
	loads      []int
	offsets    []int
	phA, phB   []uint64
	topTries   int
	maxProbes  int
}

const (
	fksParamRow  = 0
	fksHeaderRow = 1
	fksPHRow     = 2
	fksDataRow   = 3
)

// BuildFKS constructs an FKS dictionary over the given distinct keys.
func BuildFKS(keys []uint64, replicated bool, seed uint64) (*FKS, error) {
	if err := validateKeys(keys); err != nil {
		return nil, err
	}
	n := len(keys)
	nb := n
	if nb < 1 {
		nb = 1
	}
	w := 4 * n
	if w < 4 {
		w = 4
	}
	r := rng.New(seed)

	top, loads, tries, err := drawPerfectFamily(r, keys, nb, w, 256)
	if err != nil {
		return nil, err
	}

	d := &FKS{
		n: n, w: w, nb: nb, replicated: replicated,
		top: top, loads: loads, topTries: tries,
		offsets: make([]int, nb),
		phA:     make([]uint64, nb),
		phB:     make([]uint64, nb),
	}
	tab := cellprobe.New(4, w)
	d.tab = tab

	// Parameter row.
	params := cellprobe.Cell{Lo: top.A, Hi: top.B}
	if replicated {
		for j := 0; j < w; j++ {
			tab.Set(fksParamRow, j, params)
		}
	} else {
		tab.Set(fksParamRow, 0, params)
	}

	// Bucket spans, headers, perfect hashes, data.
	for j := 0; j < w; j++ {
		tab.Set(fksDataRow, j, cellprobe.Cell{Lo: sentinelLo})
	}
	buckets := make([][]uint64, nb)
	for _, x := range keys {
		b := int(top.Eval(x))
		buckets[b] = append(buckets[b], x)
	}
	pos := 0
	for b := 0; b < nb; b++ {
		l := loads[b]
		d.offsets[b] = pos
		tab.Set(fksHeaderRow, b, cellprobe.Cell{Lo: uint64(pos), Hi: uint64(l)})
		if l == 0 {
			continue
		}
		span := l * l
		hstar, _, err := hash.FindPerfect(r, buckets[b], uint64(span), 1000)
		if err != nil {
			return nil, fmt.Errorf("baseline: fks bucket %d: %w", b, err)
		}
		d.phA[b], d.phB[b] = hstar.A, hstar.B
		for j := 0; j < span; j++ {
			tab.Set(fksPHRow, pos+j, cellprobe.Cell{Lo: hstar.A, Hi: hstar.B})
		}
		for _, x := range buckets[b] {
			tab.Set(fksDataRow, pos+int(hstar.Eval(x)), cellprobe.Cell{Lo: x, Hi: occupiedTag})
		}
		pos += span
	}
	d.maxProbes = 4
	return d, nil
}

// Name identifies the structure in experiment reports.
func (d *FKS) Name() string {
	if d.replicated {
		return "fks+rep"
	}
	return "fks"
}

// N returns the number of stored keys.
func (d *FKS) N() int { return d.n }

// Table exposes the cell-probe table.
func (d *FKS) Table() *cellprobe.Table { return d.tab }

// MaxProbes returns the worst-case probe count (4).
func (d *FKS) MaxProbes() int { return d.maxProbes }

// TopTries reports how many top-level hash draws the FKS condition needed.
func (d *FKS) TopTries() int { return d.topTries }

// Contains answers membership for x, reading only table cells.
func (d *FKS) Contains(x uint64, r rng.Source) (bool, error) {
	var pc cellprobe.Cell
	if d.replicated {
		pc = d.tab.Probe(0, fksParamRow, r.Intn(d.w))
	} else {
		pc = d.tab.Probe(0, fksParamRow, 0)
	}
	top := hash.Pairwise{A: pc.Lo, B: pc.Hi, M: uint64(d.nb)}
	b := int(top.Eval(x))
	hc := d.tab.Probe(1, fksHeaderRow, b)
	off, l := int(hc.Lo), int(hc.Hi)
	if l == 0 {
		return false, nil
	}
	span := l * l
	if off+span > d.w {
		return false, fmt.Errorf("baseline: fks bucket span [%d,%d) exceeds width %d", off, off+span, d.w)
	}
	var phc cellprobe.Cell
	if d.replicated {
		phc = d.tab.Probe(2, fksPHRow, off+r.Intn(span))
	} else {
		phc = d.tab.Probe(2, fksPHRow, off)
	}
	hstar := hash.Pairwise{A: phc.Lo, B: phc.Hi, M: uint64(span)}
	dc := d.tab.Probe(3, fksDataRow, off+int(hstar.Eval(x)))
	return dc.Hi == occupiedTag && dc.Lo == x, nil
}

// ProbeSpec returns the exact per-step probe distribution for x.
func (d *FKS) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	spec := make(cellprobe.ProbeSpec, 0, 4)
	if d.replicated {
		spec = append(spec, cellprobe.UniformSpan(d.tab.Index(fksParamRow, 0), d.w, 1))
	} else {
		spec = append(spec, cellprobe.PointSpan(d.tab.Index(fksParamRow, 0), 1))
	}
	b := int(d.top.Eval(x))
	spec = append(spec, cellprobe.PointSpan(d.tab.Index(fksHeaderRow, b), 1))
	l := d.loads[b]
	if l == 0 {
		spec = append(spec, cellprobe.StepSpec{}, cellprobe.StepSpec{})
		return spec
	}
	off, span := d.offsets[b], l*l
	if d.replicated {
		spec = append(spec, cellprobe.UniformSpan(d.tab.Index(fksPHRow, off), span, 1))
	} else {
		spec = append(spec, cellprobe.PointSpan(d.tab.Index(fksPHRow, off), 1))
	}
	hstar := hash.Pairwise{A: d.phA[b], B: d.phB[b], M: uint64(span)}
	spec = append(spec, cellprobe.PointSpan(d.tab.Index(fksDataRow, off+int(hstar.Eval(x))), 1))
	return spec
}
