package baseline

import "repro/internal/scheme"

// Every baseline registers itself under the name the experiment tables use.
// The "+rep" variants store their hash parameters redundantly (§1.3); the
// parameter choices (8 copies for bsearch+rep, 10 bits/key for bloom+rep)
// are the ones every table in EXPERIMENTS.md reports.
func init() {
	reg := func(name string, approx bool, build scheme.Builder) {
		scheme.Register(scheme.Info{Name: name, Approximate: approx, Build: build})
	}
	reg("fks", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildFKS(keys, false, seed))
	})
	reg("fks+rep", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildFKS(keys, true, seed))
	})
	reg("dm", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildDM(keys, seed))
	})
	reg("cuckoo", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildCuckoo(keys, false, seed))
	})
	reg("cuckoo+rep", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildCuckoo(keys, true, seed))
	})
	reg("bsearch", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildBinarySearch(keys, seed))
	})
	reg("linear", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildLinearProbing(keys, false, seed))
	})
	reg("linear+rep", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildLinearProbing(keys, true, seed))
	})
	reg("chained", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildChained(keys, false, seed))
	})
	reg("chained+rep", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildChained(keys, true, seed))
	})
	reg("bsearch+rep", false, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildReplicatedBinarySearch(keys, 8, seed))
	})
	reg("bloom+rep", true, func(keys []uint64, seed uint64) (scheme.Scheme, error) {
		return wrap(BuildBloom(keys, 10, true, seed))
	})
}

// wrap converts a concrete (structure, error) pair to (Scheme, error)
// without ever boxing a typed nil into the interface.
func wrap[T scheme.Scheme](st T, err error) (scheme.Scheme, error) {
	if err != nil {
		return nil, err
	}
	return st, nil
}
