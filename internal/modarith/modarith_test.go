package modarith

import (
	"math/big"
	"testing"
	"testing/quick"
)

func bigP() *big.Int { return new(big.Int).SetUint64(P) }

func TestReduceFixedPoints(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{P - 1, P - 1},
		{P, 0},
		{P + 1, 1},
		{2 * P, 0},
		{^uint64(0), Reduce(^uint64(0))},
	}
	for _, c := range cases {
		if got := Reduce(c.in); got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.in, got, c.want)
		}
		if got := Reduce(c.in); got >= P {
			t.Errorf("Reduce(%d) = %d out of range", c.in, got)
		}
	}
}

func TestReduceMatchesBig(t *testing.T) {
	f := func(x uint64) bool {
		want := new(big.Int).Mod(new(big.Int).SetUint64(x), bigP()).Uint64()
		return Reduce(x) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		a, b = Reduce(a), Reduce(b)
		want := new(big.Int).Add(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, bigP())
		return Add(a, b) == want.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubNegIdentities(t *testing.T) {
	f := func(a, b uint64) bool {
		a, b = Reduce(a), Reduce(b)
		if Add(Sub(a, b), b) != a {
			return false
		}
		if Add(a, Neg(a)) != 0 {
			return false
		}
		return Sub(a, b) == Add(a, Neg(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		a, b = Reduce(a), Reduce(b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, bigP())
		return Mul(a, b) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMulEdgeValues(t *testing.T) {
	edge := []uint64{0, 1, 2, P - 2, P - 1, 1 << 60, (1 << 60) + 1}
	for _, a := range edge {
		for _, b := range edge {
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, bigP())
			if got := Mul(a, b); got != want.Uint64() {
				t.Errorf("Mul(%d,%d) = %d, want %d", a, b, got, want.Uint64())
			}
		}
	}
}

func TestPow(t *testing.T) {
	if got := Pow(2, 61); got != 1 {
		// 2^61 = P + 1 ≡ 1 (mod P)
		t.Errorf("Pow(2,61) = %d, want 1", got)
	}
	if got := Pow(3, 0); got != 1 {
		t.Errorf("Pow(3,0) = %d, want 1", got)
	}
	if got := Pow(0, 5); got != 0 {
		t.Errorf("Pow(0,5) = %d, want 0", got)
	}
	f := func(a uint64, e uint8) bool {
		a = Reduce(a)
		want := new(big.Int).Exp(new(big.Int).SetUint64(a), big.NewInt(int64(e)), bigP())
		return Pow(a, uint64(e)) == want.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	f := func(a uint64) bool {
		a = Reduce(a)
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestPolyEvalKnown(t *testing.T) {
	// 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38
	if got := PolyEval([]uint64{3, 2, 1}, 5); got != 38 {
		t.Errorf("PolyEval = %d, want 38", got)
	}
	if got := PolyEval(nil, 7); got != 0 {
		t.Errorf("PolyEval(nil) = %d, want 0", got)
	}
	if got := PolyEval([]uint64{42}, 9999); got != 42 {
		t.Errorf("constant PolyEval = %d, want 42", got)
	}
}

func TestPolyEvalMatchesBig(t *testing.T) {
	f := func(c0, c1, c2, c3, x uint64) bool {
		coef := []uint64{c0, c1, c2, c3}
		want := big.NewInt(0)
		xb := new(big.Int).SetUint64(Reduce(x))
		for i := len(coef) - 1; i >= 0; i-- {
			want.Mul(want, xb)
			want.Add(want, new(big.Int).SetUint64(Reduce(coef[i])))
			want.Mod(want, bigP())
		}
		return PolyEval(coef, x) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := uint64(0x1234567890abcde), uint64(0x0fedcba987654321)&P
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Mul(x, sink^y)
	}
	_ = sink
}

func BenchmarkPolyEval4(b *testing.B) {
	coef := []uint64{12345, 67890, 13579, 24680}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = PolyEval(coef, sink|1)
	}
	_ = sink
}
