// Package modarith implements arithmetic over the Mersenne prime field
// F_p with p = 2^61 - 1.
//
// The paper's hash families (Carter–Wegman polynomial families H^d_m and the
// Dietzfelbinger–Meyer auf der Heide family R^d_{r,m}) need a field whose
// order exceeds the key universe. p = 2^61 - 1 supports universes up to
// 2^61 - 2 keys while keeping every intermediate product within 128 bits,
// so all operations reduce with shifts and adds instead of division.
package modarith

import "math/bits"

// P is the field order, the Mersenne prime 2^61 - 1.
const P uint64 = (1 << 61) - 1

// Reduce maps an arbitrary uint64 into [0, P).
// It folds the top bits using 2^61 ≡ 1 (mod P).
func Reduce(x uint64) uint64 {
	x = (x & P) + (x >> 61)
	if x >= P {
		x -= P
	}
	return x
}

// Add returns (a + b) mod P for a, b < P.
func Add(a, b uint64) uint64 {
	s := a + b // < 2^62, no overflow
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns (a - b) mod P for a, b < P.
func Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns -a mod P for a < P.
func Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns (a * b) mod P for a, b < P.
//
// The 128-bit product hi·2^64 + lo is folded using 2^61 ≡ 1 (mod P):
// the product of two 61-bit values is below 2^122, so hi < 2^58 and a
// single fold of the two 61-bit limbs suffices.
func Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// limb0: bits 0..60, limb1: bits 61..121.
	limb0 := lo & P
	limb1 := (lo >> 61) | (hi << 3) // hi < 2^58, so hi<<3 < 2^61
	return Add(limb0, Reduce(limb1))
}

// Pow returns a^e mod P by binary exponentiation.
func Pow(a uint64, e uint64) uint64 {
	a = Reduce(a)
	result := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, a)
		}
		a = Mul(a, a)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a mod P.
// It panics if a ≡ 0 (mod P), which has no inverse.
func Inv(a uint64) uint64 {
	a = Reduce(a)
	if a == 0 {
		panic("modarith: zero has no inverse")
	}
	// Fermat: a^(P-2) mod P.
	return Pow(a, P-2)
}

// PolyEval evaluates the polynomial with the given coefficients at x over
// F_P using Horner's rule. coef[i] is the coefficient of x^i. The empty
// polynomial evaluates to 0.
func PolyEval(coef []uint64, x uint64) uint64 {
	x = Reduce(x)
	var acc uint64
	for i := len(coef) - 1; i >= 0; i-- {
		acc = Add(Mul(acc, x), Reduce(coef[i]))
	}
	return acc
}
