// Package scheme names the common surface of every membership structure in
// the repository and keeps the registry that maps structure names to
// builders.
//
// The Scheme interface is the contract the contention analyzer, the memory
// simulator and the experiment harness program against: answer membership by
// probing a cell-probe table, and describe the exact per-step probe
// distribution of any query. The low-contention dictionary (internal/core),
// every baseline (internal/baseline) and the sharded composite
// (internal/shard) all satisfy it.
//
// Structures register themselves by name from init functions (see
// core/register.go and baseline/register.go), so any package that imports
// the implementations can enumerate and build the full roster through
// Names/Build without a hand-written call chain. Registration carries
// capability metadata — today just Approximate, which marks one-sided
// membership error (Bloom filters) so generic conformance tests know not to
// demand exact negative answers.
package scheme

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// Scheme is the common surface of every dictionary in this repository.
type Scheme interface {
	// Name identifies the structure in reports.
	Name() string
	// N returns the number of stored keys.
	N() int
	// Table exposes the cell-probe table for probe recording.
	Table() *cellprobe.Table
	// MaxProbes bounds the number of probes any query makes.
	MaxProbes() int
	// Contains answers membership, reading only table cells via probes.
	// The source supplies the replica choices; *rng.RNG and rng.Sharded
	// both satisfy it.
	Contains(x uint64, r rng.Source) (bool, error)
	// ProbeSpec returns the exact per-step probe distribution for x.
	ProbeSpec(x uint64) cellprobe.ProbeSpec
}

// Builder constructs a structure over the given distinct keys with every
// random choice derived from seed. Builders must treat the keys slice as
// read-only and must not retain it.
type Builder func(keys []uint64, seed uint64) (Scheme, error)

// Info describes one registered structure.
type Info struct {
	// Name is the registry key, e.g. "lcds" or "cuckoo+rep".
	Name string
	// Approximate marks structures with one-sided membership error:
	// Contains may answer true for absent keys (Bloom filters). Exact
	// structures answer every query correctly.
	Approximate bool
	// Build constructs the structure.
	Build Builder
}

var (
	regMu    sync.RWMutex
	registry = map[string]Info{}
)

// Register adds a structure to the registry. It is intended to be called
// from init functions and panics on a duplicate or incomplete registration —
// both are programming errors.
func Register(info Info) {
	if info.Name == "" || info.Build == nil {
		panic("scheme: Register needs a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("scheme: duplicate registration of %q", info.Name))
	}
	registry[info.Name] = info
}

// Lookup returns the registration for name.
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// Names returns every registered name in sorted order. (Sorted, not
// registration, order: cross-package init order follows import-path order,
// which is meaningless to callers; the canonical experiment roster order
// lives in internal/experiments.)
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Infos returns every registration, sorted by name.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Build constructs the named structure, resolving the builder through the
// registry.
func Build(name string, keys []uint64, seed uint64) (Scheme, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scheme: unknown structure %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return info.Build(keys, seed)
}

// ValidateKeys rejects duplicate and out-of-universe keys — the shared
// precondition of every builder. Callers wrap the error with their package
// prefix.
func ValidateKeys(keys []uint64) error {
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if k >= hash.MaxKey {
			return fmt.Errorf("key %d outside universe [0, %d)", k, hash.MaxKey)
		}
		if seen[k] {
			return fmt.Errorf("duplicate key %d", k)
		}
		seen[k] = true
	}
	return nil
}
