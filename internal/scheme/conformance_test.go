// Conformance battery: every registered scheme inherits these checks just
// by registering, so a new structure cannot join the roster without them.
package scheme_test

import (
	"reflect"
	"testing"

	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"

	// Populate the registry with every structure in the repository.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
)

// testKeys generates n distinct universe keys.
func testKeys(n int, seed uint64) []uint64 {
	r := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestRegistryPopulated(t *testing.T) {
	names := scheme.Names()
	if len(names) < 12 {
		t.Fatalf("registry has %d schemes (%v), want the full roster", len(names), names)
	}
	for _, want := range []string{"lcds", "fks+rep", "dm", "cuckoo+rep", "bsearch", "linear+rep", "bloom+rep"} {
		if _, ok := scheme.Lookup(want); !ok {
			t.Errorf("registry is missing %q", want)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration of lcds did not panic")
		}
	}()
	scheme.Register(scheme.Info{
		Name:  "lcds",
		Build: func([]uint64, uint64) (scheme.Scheme, error) { return nil, nil },
	})
}

func TestConformance(t *testing.T) {
	const n, seed = 256, 42
	keys := testKeys(n, seed)
	members := make(map[uint64]bool, n)
	for _, k := range keys {
		members[k] = true
	}
	negatives := make([]uint64, 0, 200)
	nr := rng.New(seed + 1)
	for len(negatives) < 200 {
		k := nr.Uint64n(hash.MaxKey)
		if !members[k] {
			negatives = append(negatives, k)
		}
	}

	for _, info := range scheme.Infos() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			st, err := scheme.Build(info.Name, keys, seed)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if st.Name() != info.Name {
				t.Errorf("Name() = %q, registered as %q", st.Name(), info.Name)
			}
			if st.N() != n {
				t.Errorf("N() = %d, want %d", st.N(), n)
			}
			cells := st.Table().Size()
			if cells < 1 {
				t.Fatalf("table has %d cells", cells)
			}
			if st.MaxProbes() < 1 {
				t.Fatalf("MaxProbes() = %d", st.MaxProbes())
			}

			// Probe specs: well-formed (spans in range, per-step mass ≤ 1)
			// for members and non-members alike.
			for _, x := range append(append([]uint64(nil), keys...), negatives...) {
				spec := st.ProbeSpec(x)
				if err := spec.Validate(cells); err != nil {
					t.Fatalf("ProbeSpec(%d): %v", x, err)
				}
			}

			// Positive queries answer true; every query stays within the
			// probe budget.
			probes := 0
			st.Table().SetTrace(func(step, cell int) { probes++ })
			qr := rng.New(seed + 2)
			for _, k := range keys {
				probes = 0
				ok, err := st.Contains(k, qr)
				if err != nil {
					t.Fatalf("Contains(%d): %v", k, err)
				}
				if !ok {
					t.Fatalf("member %d answered false", k)
				}
				if probes > st.MaxProbes() {
					t.Fatalf("query for %d made %d probes, budget %d", k, probes, st.MaxProbes())
				}
			}
			// Negative queries answer false — unless the scheme is
			// registered as approximate (one-sided error).
			falsePositives := 0
			for _, k := range negatives {
				ok, err := st.Contains(k, qr)
				if err != nil {
					t.Fatalf("Contains(%d): %v", k, err)
				}
				if ok {
					falsePositives++
				}
			}
			st.Table().SetTrace(nil)
			if !info.Approximate && falsePositives > 0 {
				t.Fatalf("exact scheme answered true for %d non-members", falsePositives)
			}
			if info.Approximate && falsePositives == len(negatives) {
				t.Fatalf("approximate scheme answered true for every non-member")
			}

			// Seeded determinism: the same (keys, seed) pair reproduces the
			// structure — identical probe specs and identical answers under
			// an identical draw sequence.
			st2, err := scheme.Build(info.Name, keys, seed)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			for _, x := range append(keys[:8:8], negatives[:8]...) {
				if !reflect.DeepEqual(st.ProbeSpec(x), st2.ProbeSpec(x)) {
					t.Fatalf("ProbeSpec(%d) differs between identically seeded builds", x)
				}
				r1, r2 := rng.New(seed+3), rng.New(seed+3)
				a1, err1 := st.Contains(x, r1)
				a2, err2 := st2.Contains(x, r2)
				if a1 != a2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("Contains(%d) differs between identically seeded builds", x)
				}
			}
		})
	}
}
