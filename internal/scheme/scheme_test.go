package scheme

import (
	"strings"
	"testing"

	"repro/internal/hash"
)

func TestValidateKeys(t *testing.T) {
	if err := ValidateKeys([]uint64{1, 2, 3}); err != nil {
		t.Fatalf("valid keys rejected: %v", err)
	}
	if err := ValidateKeys(nil); err != nil {
		t.Fatalf("empty key set rejected: %v", err)
	}
	if err := ValidateKeys([]uint64{1, 1}); err == nil {
		t.Fatal("duplicate key accepted")
	} else if !strings.Contains(err.Error(), "duplicate key 1") {
		t.Fatalf("duplicate error %q lacks the key", err)
	}
	if err := ValidateKeys([]uint64{hash.MaxKey}); err == nil {
		t.Fatal("out-of-universe key accepted")
	} else if !strings.Contains(err.Error(), "outside universe") {
		t.Fatalf("universe error %q lacks the reason", err)
	}
}

func TestRegisterRejectsIncomplete(t *testing.T) {
	for _, info := range []Info{
		{},
		{Name: "x"},
		{Build: func([]uint64, uint64) (Scheme, error) { return nil, nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", info)
				}
			}()
			Register(info)
		}()
	}
}

func TestBuildUnknown(t *testing.T) {
	_, err := Build("no-such-structure", []uint64{1}, 1)
	if err == nil {
		t.Fatal("unknown structure built")
	}
	if !strings.Contains(err.Error(), "no-such-structure") {
		t.Fatalf("error %q does not name the structure", err)
	}
}
