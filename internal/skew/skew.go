// Package skew implements the paper's "construction may know the query
// distribution" loophole (§1.1, §3 preamble): a distribution-aware static
// dictionary for skewed positive queries.
//
// Theorem 3's O(1/n) contention needs uniform queries; T3 shows a Zipf
// distribution concentrates the deterministic final probes of every
// structure, the low-contention dictionary included. The §3 lower bound
// says a *distribution-oblivious* query algorithm cannot fix this cheaply —
// but the paper's model explicitly lets the BUILDER know q and encode
// guidance in the table. This package exploits exactly that allowance with
// the simplest sound mechanism: weighted whole-structure replication.
//
//   - The heaviest keys (query mass above HotThreshold× the mean) are
//     additionally stored in R complete low-contention dictionaries over
//     just the hot set; a query probes one uniformly random copy first, so
//     a hot key's deterministic data-probe mass q_x is divided by R.
//   - Everything falls back to a cold dictionary over the full key set.
//
// The query algorithm remains distribution-oblivious, as Definition 12
// requires: it always probes a random hot copy first and the cold structure
// on a miss; only the table contents (which keys the hot copies hold, and
// R) encode knowledge of q. Misses through the hot store cost
// O(1) extra probes. Space grows by R·O(hot). The improvement is bounded by
// the replication factor — consistent with the lower bound, which forbids
// distribution-free leveling, not paid-for, per-distribution leveling.
package skew

import (
	"fmt"
	"sort"

	"repro/internal/cellprobe"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rng"
)

// Params configures the skew-aware dictionary.
type Params struct {
	// Replicas is R, the number of hot-store copies. Default 8.
	Replicas int
	// HotThreshold marks keys with q_x ≥ HotThreshold/n as hot. Default 4.
	HotThreshold float64
	// MaxHotFraction caps the hot set at this fraction of n. Default 1/8.
	MaxHotFraction float64
	// Static configures the underlying dictionaries.
	Static core.Params
}

func (p Params) withDefaults() Params {
	if p.Replicas == 0 {
		p.Replicas = 8
	}
	if p.HotThreshold == 0 {
		p.HotThreshold = 4
	}
	if p.MaxHotFraction == 0 {
		p.MaxHotFraction = 0.125
	}
	return p
}

// Dict is a distribution-aware static dictionary.
type Dict struct {
	p    Params
	cold *core.Dict
	hot  []*core.Dict // R copies over the hot key set (nil if no hot keys)
	hotN int
}

// Build constructs the dictionary for the given weighted query support.
// Weights must be the positive-query distribution the builder knows; keys
// with zero weight are allowed (stored cold only).
func Build(support []dist.Weighted, p Params, seed uint64) (*Dict, error) {
	p = p.withDefaults()
	if p.Replicas < 1 || p.HotThreshold <= 0 || p.MaxHotFraction <= 0 || p.MaxHotFraction > 1 {
		return nil, fmt.Errorf("skew: invalid params %+v", p)
	}
	n := len(support)
	keys := make([]uint64, n)
	for i, w := range support {
		keys[i] = w.Key
		if w.P < 0 {
			return nil, fmt.Errorf("skew: negative weight for key %d", w.Key)
		}
	}
	cold, err := core.Build(keys, p.Static, seed)
	if err != nil {
		return nil, err
	}
	d := &Dict{p: p, cold: cold}
	if n == 0 {
		return d, nil
	}

	// Hot set: mass ≥ HotThreshold/n, capped at MaxHotFraction·n, heaviest
	// first.
	sorted := append([]dist.Weighted(nil), support...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].P > sorted[j].P })
	cut := p.HotThreshold / float64(n)
	maxHot := int(p.MaxHotFraction * float64(n))
	var hotKeys []uint64
	for _, w := range sorted {
		if w.P < cut || len(hotKeys) >= maxHot {
			break
		}
		hotKeys = append(hotKeys, w.Key)
	}
	d.hotN = len(hotKeys)
	if d.hotN == 0 {
		return d, nil
	}
	for c := 0; c < p.Replicas; c++ {
		h, err := core.Build(hotKeys, p.Static, seed+uint64(c)+1)
		if err != nil {
			return nil, fmt.Errorf("skew: hot copy %d: %w", c, err)
		}
		d.hot = append(d.hot, h)
	}
	return d, nil
}

// Contains answers membership. It probes one random hot copy, then the cold
// dictionary on a miss.
func (d *Dict) Contains(x uint64, r rng.Source) (bool, error) {
	if len(d.hot) > 0 {
		ok, err := d.hot[r.Intn(len(d.hot))].Contains(x, r)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return d.cold.Contains(x, r)
}

// N returns the number of stored keys.
func (d *Dict) N() int { return d.cold.N() }

// HotKeys returns the size of the hot set.
func (d *Dict) HotKeys() int { return d.hotN }

// Replicas returns the number of hot copies actually built.
func (d *Dict) Replicas() int { return len(d.hot) }

// Cells returns the total cells across the cold structure and all hot
// copies — the space the contention ratio normalizes by.
func (d *Dict) Cells() int {
	total := d.cold.Table().Size()
	for _, h := range d.hot {
		total += h.Table().Size()
	}
	return total
}

// MaxProbes bounds a query's probes: one hot copy plus the cold structure.
func (d *Dict) MaxProbes() int {
	mp := d.cold.MaxProbes()
	if len(d.hot) > 0 {
		mp += d.hot[0].MaxProbes()
	}
	return mp
}

// Name identifies the structure in experiment reports.
func (d *Dict) Name() string { return "lcds+skew" }

// Analysis is the exact contention of the multi-table structure.
type Analysis struct {
	Cells    int
	MaxStep  float64 // max over all tables, steps and cells of Φ_t(j)
	Probes   float64 // expected probes per query
	HotShare float64 // fraction of query mass answered by the hot store
}

// RatioStep is MaxStep × total cells, the ratio to the 1/s optimum.
func (a Analysis) RatioStep() float64 { return a.MaxStep * float64(a.Cells) }

// Analyze computes the exact contention under the given positive-query
// support (which need not equal the build-time support — analyze a
// mismatched distribution to measure staleness costs).
func (d *Dict) Analyze(support []dist.Weighted) (Analysis, error) {
	a := Analysis{Cells: d.Cells()}

	// Cold table: key x reaches it with its full mass if cold-only, or
	// never (hot hits stop); hot misses of absent keys are not in the
	// support. A hot key still probes the cold structure with probability
	// 0 (hot copies always contain it), so its cold mass is 0.
	hotSet := make(map[uint64]bool, d.hotN)
	if len(d.hot) > 0 {
		for _, k := range d.hot[0].Keys() {
			hotSet[k] = true
		}
	}
	coldSupport := make([]dist.Weighted, 0, len(support))
	hotMass := 0.0
	for _, w := range support {
		if hotSet[w.Key] {
			hotMass += w.P
			continue
		}
		coldSupport = append(coldSupport, w)
	}
	a.HotShare = hotMass

	maxPhi, probes, err := exactTable(d.cold, coldSupport)
	if err != nil {
		return a, err
	}
	a.MaxStep = maxPhi
	a.Probes = probes

	if len(d.hot) > 0 {
		// Every query probes a random hot copy with its full mass; each
		// copy receives mass/R. Copies are probabilistically identical up
		// to their seeds, so analyze each with scaled weights.
		scaled := make([]dist.Weighted, len(support))
		for i, w := range support {
			scaled[i] = dist.Weighted{Key: w.Key, P: w.P / float64(len(d.hot))}
		}
		for _, h := range d.hot {
			phi, pr, err := exactTable(h, scaled)
			if err != nil {
				return a, err
			}
			if phi > a.MaxStep {
				a.MaxStep = phi
			}
			a.Probes += pr
		}
	}
	return a, nil
}

// exactTable computes max per-step per-cell contention and expected probes
// for one core dictionary under a weighted support (weights may sum < 1).
func exactTable(dict *core.Dict, support []dist.Weighted) (maxPhi, probes float64, err error) {
	cells := dict.Table().Size()
	specs := make([]cellprobe.ProbeSpec, len(support))
	steps := 0
	for i, w := range support {
		specs[i] = dict.ProbeSpec(w.Key)
		if len(specs[i]) > steps {
			steps = len(specs[i])
		}
	}
	diff := make([]float64, cells+1)
	for t := 0; t < steps; t++ {
		for i := range diff {
			diff[i] = 0
		}
		for i, w := range support {
			if t >= len(specs[i]) {
				continue
			}
			for _, sp := range specs[i][t] {
				pc := sp.PerCell() * w.P
				diff[sp.Start] += pc
				diff[sp.Start+sp.Count] -= pc
				probes += sp.Mass * w.P
			}
		}
		acc := 0.0
		for j := 0; j < cells; j++ {
			acc += diff[j]
			if acc > maxPhi {
				maxPhi = acc
			}
		}
	}
	return maxPhi, probes, nil
}
