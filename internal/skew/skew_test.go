package skew

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hash"
	"repro/internal/rng"
)

func distinctKeys(r *rng.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestMembershipWithSkew(t *testing.T) {
	r := rng.New(1)
	keys := distinctKeys(r, 500)
	zipf := dist.NewZipf(keys, 1.1)
	d, err := Build(zipf.Support(), Params{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 500 {
		t.Errorf("N = %d", d.N())
	}
	if d.HotKeys() == 0 || d.Replicas() == 0 {
		t.Fatalf("no hot store built: hot=%d replicas=%d", d.HotKeys(), d.Replicas())
	}
	inSet := make(map[uint64]bool, len(keys))
	qr := rng.New(3)
	for _, k := range keys {
		inSet[k] = true
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("lost key %d (err %v)", k, err)
		}
	}
	for i := 0; i < 2000; i++ {
		x := qr.Uint64n(hash.MaxKey)
		if inSet[x] {
			continue
		}
		ok, err := d.Contains(x, qr)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("phantom key %d", x)
		}
	}
}

func TestUniformInputBuildsNoHotStore(t *testing.T) {
	r := rng.New(4)
	keys := distinctKeys(r, 300)
	u := dist.NewUniformSet(keys, "")
	d, err := Build(u.Support(), Params{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform weights are all 1/n < 4/n: nothing is hot.
	if d.HotKeys() != 0 || d.Replicas() != 0 {
		t.Errorf("uniform input built a hot store: %d keys × %d", d.HotKeys(), d.Replicas())
	}
}

// TestSkewRepairsZipfContention is the extension's claim: for a Zipf
// distribution the known-q dictionary's exact contention ratio is several
// times lower than the oblivious dictionary's.
func TestSkewRepairsZipfContention(t *testing.T) {
	r := rng.New(6)
	keys := distinctKeys(r, 2048)
	zipf := dist.NewZipf(keys, 1.1)
	support := zipf.Support()

	plain, err := core.Build(keys, core.Params{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	plainPhi, _, err := exactTable(plain, support)
	if err != nil {
		t.Fatal(err)
	}
	plainRatio := plainPhi * float64(plain.Table().Size())

	d, err := Build(support, Params{Replicas: 8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze(support)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("zipf(1.1): plain ratio %.0f, skew-aware ratio %.0f (hot %d keys × %d copies, hot share %.2f)",
		plainRatio, a.RatioStep(), d.HotKeys(), d.Replicas(), a.HotShare)
	if a.RatioStep() > plainRatio/2 {
		t.Errorf("skew-aware ratio %.0f not well below plain %.0f", a.RatioStep(), plainRatio)
	}
	if a.HotShare < 0.3 {
		t.Errorf("hot share %.2f suspiciously low for zipf(1.1)", a.HotShare)
	}
	if a.Probes > float64(d.MaxProbes()) {
		t.Errorf("probes %v exceed MaxProbes %d", a.Probes, d.MaxProbes())
	}
}

// TestAnalyzeMatchesMonteCarlo cross-checks the multi-table analysis
// against recorded queries on all tables.
func TestAnalyzeMatchesMonteCarlo(t *testing.T) {
	r := rng.New(8)
	keys := distinctKeys(r, 400)
	zipf := dist.NewZipf(keys, 1.0)
	support := zipf.Support()
	d, err := Build(support, Params{Replicas: 4}, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze(support)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical probes per query.
	qr := rng.New(10)
	probeCount := 0
	count := func(_, _ int) { probeCount++ }
	d.cold.Table().SetTrace(count)
	for _, h := range d.hot {
		h.Table().SetTrace(count)
	}
	const queries = 30000
	for i := 0; i < queries; i++ {
		if _, err := d.Contains(zipf.Sample(qr), qr); err != nil {
			t.Fatal(err)
		}
	}
	d.cold.Table().SetTrace(nil)
	for _, h := range d.hot {
		h.Table().SetTrace(nil)
	}
	got := float64(probeCount) / queries
	if math.Abs(got-a.Probes) > 0.2 {
		t.Errorf("empirical probes %v vs analysis %v", got, a.Probes)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]dist.Weighted{{Key: 1, P: -0.5}}, Params{}, 1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Build(nil, Params{Replicas: -1}, 1); err == nil {
		t.Error("negative replicas accepted")
	}
	d, err := Build(nil, Params{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	qr := rng.New(2)
	if ok, _ := d.Contains(5, qr); ok {
		t.Error("empty dictionary contains a key")
	}
}
