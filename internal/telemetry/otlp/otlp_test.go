//go:build otlp

package otlp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// collector is a fake OTLP/HTTP endpoint capturing posted bodies by path.
type collector struct {
	srv    *httptest.Server
	bodies map[string][]string
}

func newCollector() *collector {
	c := &collector{bodies: make(map[string][]string)}
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		c.bodies[r.URL.Path] = append(c.bodies[r.URL.Path], string(body))
		w.WriteHeader(http.StatusOK)
	}))
	return c
}

// TestExportSnapshot drives a real telemetry instance and checks the posted
// /v1/metrics document is valid OTLP JSON carrying the expected series.
func TestExportSnapshot(t *testing.T) {
	c := newCollector()
	defer c.srv.Close()
	exp, err := New(Config{Endpoint: c.srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New(telemetry.Config{}, 64, 16)
	for i := 0; i < 500; i++ {
		tel.ProbeObserved(0, i%64)
		tel.ObserveQuery(true, false, 100)
	}
	tel.Events().Emit(events.RebuildStart, 0, 1, 16, 0)
	if err := exp.ExportSnapshot(tel.Snapshot()); err != nil {
		t.Fatal(err)
	}

	posts := c.bodies["/v1/metrics"]
	if len(posts) != 1 {
		t.Fatalf("%d metric posts, want 1", len(posts))
	}
	var req metricsRequest
	if err := json.Unmarshal([]byte(posts[0]), &req); err != nil {
		t.Fatalf("invalid OTLP JSON: %v", err)
	}
	if len(req.ResourceMetrics) != 1 {
		t.Fatalf("resourceMetrics count %d", len(req.ResourceMetrics))
	}
	rm := req.ResourceMetrics[0]
	if got := *rm.Resource.Attributes[0].Value.StringValue; got != "lcds" {
		t.Fatalf("service.name = %q", got)
	}
	names := map[string]metric{}
	for _, m := range rm.ScopeMetrics[0].Metrics {
		names[m.Name] = m
	}
	for _, want := range []string{"lcds.queries", "lcds.probes", "lcds.max_phi_n",
		"lcds.sampling_k", "lcds.latency", "lcds.events"} {
		if _, ok := names[want]; !ok {
			t.Errorf("metrics missing %s", want)
		}
	}
	if q := names["lcds.queries"]; *q.Sum.DataPoints[0].AsInt != "500" {
		t.Errorf("lcds.queries = %s, want 500", *q.Sum.DataPoints[0].AsInt)
	}
	lat := names["lcds.latency"].Histogram.DataPoints[0]
	if lat.Count != "500" || len(lat.BucketCounts) != len(lat.ExplicitBounds)+1 {
		t.Errorf("latency histogram malformed: count=%s buckets=%d bounds=%d",
			lat.Count, len(lat.BucketCounts), len(lat.ExplicitBounds))
	}
	ev := names["lcds.events"]
	if len(ev.Sum.DataPoints) == 0 || !ev.Sum.IsMonotonic {
		t.Errorf("event counter malformed: %+v", ev.Sum)
	}
}

// TestBuildSpans checks the event-to-span pairing: rebuilds and split
// phases become spans with deterministic IDs; unpaired starts are held.
func TestBuildSpans(t *testing.T) {
	evs := []events.Event{
		{Seq: 1, UnixNano: 1000, Type: events.RebuildStart, Shard: 0, A: 2, B: 100},
		{Seq: 2, UnixNano: 1500, Type: events.PhaseSplit, Shard: 0, A: 2, B: 3},
		{Seq: 3, UnixNano: 2000, Type: events.RebuildEnd, Shard: 0, A: 2, B: 100, C: 1000},
		{Seq: 4, UnixNano: 2500, Type: events.RebuildStart, Shard: 1, A: 2, B: 50},
		{Seq: 5, UnixNano: 3000, Type: events.PhaseJoined, Shard: 0, A: 3},
		{Seq: 6, UnixNano: 3500, Type: events.RebuildEnd, Shard: 0, A: events.MarkFailed(3), B: 90},
	}
	spans := BuildSpans(evs)
	// shard 0 rebuild epoch 2, split phase 2→3, failed rebuild 3 (started
	// where? — no second start for shard 0, so the failed end is dropped);
	// shard 1's start never ends.
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	if spans[0].Name != "rebuild" || spans[0].StartTimeUnixNano != "1000" || spans[0].EndTimeUnixNano != "2000" {
		t.Fatalf("rebuild span wrong: %+v", spans[0])
	}
	if spans[1].Name != "split_phase" || spans[1].StartTimeUnixNano != "1500" || spans[1].EndTimeUnixNano != "3000" {
		t.Fatalf("split span wrong: %+v", spans[1])
	}
	if len(spans[0].SpanID) != 16 || len(spans[0].TraceID) != 32 {
		t.Fatalf("span IDs not 8/16 bytes hex: %q %q", spans[0].SpanID, spans[0].TraceID)
	}
	// Determinism: same window re-exported produces identical IDs.
	again := BuildSpans(evs)
	if again[0].SpanID != spans[0].SpanID || again[1].TraceID != spans[1].TraceID {
		t.Fatal("span IDs not deterministic across re-export")
	}
}

// TestExportEvents posts a rebuild pair and checks the /v1/traces document.
func TestExportEvents(t *testing.T) {
	c := newCollector()
	defer c.srv.Close()
	exp, err := New(Config{Endpoint: c.srv.URL, Service: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.ExportEvents(nil); err != nil {
		t.Fatalf("empty window should post nothing: %v", err)
	}
	if len(c.bodies["/v1/traces"]) != 0 {
		t.Fatal("empty window posted")
	}
	evs := []events.Event{
		{Seq: 1, UnixNano: 10, Type: events.RebuildStart, Shard: 0, A: 1, B: 5},
		{Seq: 2, UnixNano: 20, Type: events.RebuildEnd, Shard: 0, A: 1, B: 5, C: 10},
	}
	if err := exp.ExportEvents(evs); err != nil {
		t.Fatal(err)
	}
	var req tracesRequest
	if err := json.Unmarshal([]byte(c.bodies["/v1/traces"][0]), &req); err != nil {
		t.Fatalf("invalid OTLP JSON: %v", err)
	}
	if got := *req.ResourceSpans[0].Resource.Attributes[0].Value.StringValue; got != "custom" {
		t.Fatalf("service.name = %q", got)
	}
	if len(req.ResourceSpans[0].ScopeSpans[0].Spans) != 1 {
		t.Fatal("expected one rebuild span")
	}
}

// TestSpanTracer checks the telemetry.Tracer adapter batches query traces
// into query spans.
func TestSpanTracer(t *testing.T) {
	c := newCollector()
	defer c.srv.Close()
	exp, err := New(Config{Endpoint: c.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	tr := exp.NewSpanTracer(4)
	var _ telemetry.Tracer = tr
	for i := 0; i < 10; i++ {
		tr.Trace(telemetry.QueryTrace{KeyHash: uint64(i), Steps: 3, Found: true,
			LatencyNs: 50, UnixNano: int64(1000 + i)})
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, body := range c.bodies["/v1/traces"] {
		var req tracesRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("invalid OTLP JSON: %v", err)
		}
		for _, sp := range req.ResourceSpans[0].ScopeSpans[0].Spans {
			if sp.Name != "query" {
				t.Fatalf("unexpected span %q", sp.Name)
			}
			if !strings.HasPrefix(sp.EndTimeUnixNano, "10") {
				t.Fatalf("bad end time %s", sp.EndTimeUnixNano)
			}
			total++
		}
	}
	if total != 10 {
		t.Fatalf("exported %d query spans, want 10", total)
	}
}
