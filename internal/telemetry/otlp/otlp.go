//go:build otlp

package otlp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// Config tunes an Exporter. Only Endpoint is required.
type Config struct {
	// Endpoint is the OTLP/HTTP base URL (e.g. http://localhost:4318):
	// metrics post to Endpoint/v1/metrics, spans to Endpoint/v1/traces.
	Endpoint string
	// Service is the resource's service.name attribute. Default "lcds".
	Service string
	// Client is the HTTP client used for posts. Default http.DefaultClient.
	Client *http.Client
}

// Exporter posts telemetry snapshots and flight-recorder events to an
// OTLP/HTTP collector. Methods are safe for concurrent use (the exporter
// itself is stateless; each call marshals and posts one request).
type Exporter struct {
	cfg Config
}

// New creates an exporter. It errors on an empty endpoint.
func New(cfg Config) (*Exporter, error) {
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("otlp: empty endpoint")
	}
	if cfg.Service == "" {
		cfg.Service = "lcds"
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	return &Exporter{cfg: cfg}, nil
}

// --- OTLP 1.x JSON schema (the subset this exporter emits) ---
//
// uint64 fields ride as strings, per the OTLP JSON mapping; timestamps are
// nanoseconds since the Unix epoch.

type anyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

type keyValue struct {
	Key   string   `json:"key"`
	Value anyValue `json:"value"`
}

func strAttr(k, v string) keyValue { return keyValue{Key: k, Value: anyValue{StringValue: &v}} }
func boolAttr(k string, v bool) keyValue {
	return keyValue{Key: k, Value: anyValue{BoolValue: &v}}
}
func intAttr(k string, v int64) keyValue {
	s := strconv.FormatInt(v, 10)
	return keyValue{Key: k, Value: anyValue{IntValue: &s}}
}

type numberPoint struct {
	TimeUnixNano string     `json:"timeUnixNano"`
	AsDouble     *float64   `json:"asDouble,omitempty"`
	AsInt        *string    `json:"asInt,omitempty"`
	Attributes   []keyValue `json:"attributes,omitempty"`
}

type gaugeData struct {
	DataPoints []numberPoint `json:"dataPoints"`
}

type sumData struct {
	DataPoints             []numberPoint `json:"dataPoints"`
	AggregationTemporality int           `json:"aggregationTemporality"` // 2 = cumulative
	IsMonotonic            bool          `json:"isMonotonic"`
}

type histogramPoint struct {
	TimeUnixNano   string    `json:"timeUnixNano"`
	Count          string    `json:"count"`
	Sum            float64   `json:"sum"`
	BucketCounts   []string  `json:"bucketCounts"`
	ExplicitBounds []float64 `json:"explicitBounds"`
}

type histogramData struct {
	DataPoints             []histogramPoint `json:"dataPoints"`
	AggregationTemporality int              `json:"aggregationTemporality"`
}

type metric struct {
	Name      string         `json:"name"`
	Unit      string         `json:"unit,omitempty"`
	Gauge     *gaugeData     `json:"gauge,omitempty"`
	Sum       *sumData       `json:"sum,omitempty"`
	Histogram *histogramData `json:"histogram,omitempty"`
}

type resource struct {
	Attributes []keyValue `json:"attributes"`
}

type scope struct {
	Name string `json:"name"`
}

type scopeMetrics struct {
	Scope   scope    `json:"scope"`
	Metrics []metric `json:"metrics"`
}

type resourceMetrics struct {
	Resource     resource       `json:"resource"`
	ScopeMetrics []scopeMetrics `json:"scopeMetrics"`
}

type metricsRequest struct {
	ResourceMetrics []resourceMetrics `json:"resourceMetrics"`
}

// Span is one OTLP span (exported for tests and for callers that stage
// spans before posting).
type Span struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"` // 1 = SPAN_KIND_INTERNAL
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []keyValue `json:"attributes,omitempty"`
}

type scopeSpans struct {
	Scope scope  `json:"scope"`
	Spans []Span `json:"spans"`
}

type resourceSpans struct {
	Resource   resource     `json:"resource"`
	ScopeSpans []scopeSpans `json:"scopeSpans"`
}

type tracesRequest struct {
	ResourceSpans []resourceSpans `json:"resourceSpans"`
}

func (e *Exporter) resource() resource {
	return resource{Attributes: []keyValue{strAttr("service.name", e.cfg.Service)}}
}

func (e *Exporter) post(path string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("otlp: marshal: %w", err)
	}
	resp, err := e.cfg.Client.Post(e.cfg.Endpoint+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("otlp: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("otlp: POST %s: %s", path, resp.Status)
	}
	return nil
}

// gaugeMetric builds a single-point double gauge.
func gaugeMetric(name string, v float64, now string) metric {
	return metric{Name: name, Gauge: &gaugeData{DataPoints: []numberPoint{{TimeUnixNano: now, AsDouble: &v}}}}
}

// sumPoint builds one cumulative-sum data point.
func sumPoint(v uint64, now string, attrs ...keyValue) numberPoint {
	s := strconv.FormatUint(v, 10)
	return numberPoint{TimeUnixNano: now, AsInt: &s, Attributes: attrs}
}

// counterMetric builds a single-point cumulative monotonic counter.
func counterMetric(name string, v uint64, now string) metric {
	return metric{Name: name, Sum: &sumData{
		DataPoints: []numberPoint{sumPoint(v, now)}, AggregationTemporality: 2, IsMonotonic: true,
	}}
}

// histogramMetric converts a log₂ LogHistogram snapshot into an OTLP
// histogram with explicit power-of-two bounds: bucket k of the snapshot
// covers [2^(k-1), 2^k), so its OTLP upper bound is 2^k.
func histogramMetric(name string, h telemetry.HistogramSnapshot, now string) metric {
	bounds := make([]float64, len(h.Buckets))
	counts := make([]string, len(h.Buckets)+1)
	for k, c := range h.Buckets {
		bounds[k] = float64(telemetry.BucketUpper(k))
		counts[k] = strconv.FormatUint(c, 10)
	}
	counts[len(h.Buckets)] = "0" // overflow bucket: log₂ buckets cover all of uint64
	return metric{Name: name, Unit: "ns", Histogram: &histogramData{
		AggregationTemporality: 2,
		DataPoints: []histogramPoint{{
			TimeUnixNano: now, Count: strconv.FormatUint(h.Count, 10),
			Sum: float64(h.Sum), BucketCounts: counts, ExplicitBounds: bounds,
		}},
	}}
}

// Metrics maps a telemetry snapshot onto OTLP metrics: the headline
// contention gauges, the query/probe counters, per-event-type counts and
// the latency histograms. Exported for tests; ExportSnapshot posts it.
func Metrics(s telemetry.Snapshot, nowUnixNano int64) []metric {
	now := strconv.FormatInt(nowUnixNano, 10)
	ms := []metric{
		gaugeMetric("lcds.max_phi", s.MaxPhi, now),
		gaugeMetric("lcds.max_phi_n", s.MaxPhiN, now),
		gaugeMetric("lcds.probes_per_query", s.ProbesPerQuery, now),
		gaugeMetric("lcds.sampling_k", float64(s.Sample), now),
		gaugeMetric("lcds.keys", float64(s.N), now),
		gaugeMetric("lcds.cells", float64(s.Cells), now),
		counterMetric("lcds.queries", s.Queries, now),
		counterMetric("lcds.hits", s.Hits, now),
		counterMetric("lcds.misses", s.Misses, now),
		counterMetric("lcds.errors", s.Errors, now),
		counterMetric("lcds.probes", s.Probes, now),
		counterMetric("lcds.events.dropped", s.Events.Dropped, now),
		histogramMetric("lcds.latency", s.Latency, now),
		histogramMetric("lcds.batch_latency", s.BatchLatency, now),
	}
	if len(s.Events.ByType) > 0 {
		pts := make([]numberPoint, 0, len(s.Events.ByType))
		for ty := events.Type(0); int(ty) < events.NumTypes; ty++ {
			if c, ok := s.Events.ByType[ty.String()]; ok {
				pts = append(pts, sumPoint(c, now, strAttr("type", ty.String())))
			}
		}
		ms = append(ms, metric{Name: "lcds.events", Sum: &sumData{
			DataPoints: pts, AggregationTemporality: 2, IsMonotonic: true,
		}})
	}
	return ms
}

// ExportSnapshot posts a telemetry snapshot to Endpoint/v1/metrics.
func (e *Exporter) ExportSnapshot(s telemetry.Snapshot) error {
	req := metricsRequest{ResourceMetrics: []resourceMetrics{{
		Resource:     e.resource(),
		ScopeMetrics: []scopeMetrics{{Scope: scope{Name: "lcds"}, Metrics: Metrics(s, time.Now().UnixNano())}},
	}}}
	return e.post("/v1/metrics", req)
}

// mix is the splitmix64 finalizer, used to derive deterministic span
// identifiers from event coordinates.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hex64(x uint64) string { return fmt.Sprintf("%016x", x) }
func hex128(hi, lo uint64) string {
	return fmt.Sprintf("%016x%016x", hi, lo)
}

// BuildSpans converts a flight-recorder timeline into OTLP spans: every
// RebuildStart/RebuildEnd pair on the same shard becomes a "rebuild" span
// and every PhaseSplit/PhaseJoined pair a "split_phase" span. Identifiers
// derive deterministically from (shard, epoch, kind), so re-exporting an
// overlapping timeline window produces the same span IDs and collectors
// deduplicate instead of double-counting. Unpaired starts (a rebuild or
// phase still in flight) are held back until a later window closes them.
func BuildSpans(evs []events.Event) []Span {
	var out []Span
	openRebuild := map[int32]events.Event{}
	openSplit := map[int32]events.Event{}
	for _, ev := range evs {
		switch ev.Type {
		case events.RebuildStart:
			openRebuild[ev.Shard] = ev
		case events.RebuildEnd:
			start, ok := openRebuild[ev.Shard]
			if !ok {
				continue
			}
			delete(openRebuild, ev.Shard)
			epoch, failed := events.FailedRebuild(ev.A)
			id := mix(uint64(ev.Shard)<<32 ^ epoch ^ 0x8eb01d)
			out = append(out, Span{
				TraceID:           hex128(mix(uint64(ev.Shard)+1), epoch),
				SpanID:            hex64(id),
				Name:              "rebuild",
				Kind:              1,
				StartTimeUnixNano: strconv.FormatInt(start.UnixNano, 10),
				EndTimeUnixNano:   strconv.FormatInt(ev.UnixNano, 10),
				Attributes: []keyValue{
					intAttr("lcds.shard", int64(ev.Shard)),
					intAttr("lcds.epoch", int64(epoch)),
					intAttr("lcds.keys", int64(ev.B)),
					boolAttr("lcds.failed", failed),
				},
			})
		case events.PhaseSplit:
			openSplit[ev.Shard] = ev
		case events.PhaseJoined:
			start, ok := openSplit[ev.Shard]
			if !ok {
				continue
			}
			delete(openSplit, ev.Shard)
			id := mix(uint64(ev.Shard)<<32 ^ start.A ^ 0x5b117)
			out = append(out, Span{
				TraceID:           hex128(mix(uint64(ev.Shard)+1), start.A),
				SpanID:            hex64(id),
				Name:              "split_phase",
				Kind:              1,
				StartTimeUnixNano: strconv.FormatInt(start.UnixNano, 10),
				EndTimeUnixNano:   strconv.FormatInt(ev.UnixNano, 10),
				Attributes: []keyValue{
					intAttr("lcds.shard", int64(ev.Shard)),
					intAttr("lcds.split_epoch", int64(start.A)),
					intAttr("lcds.joined_epoch", int64(ev.A)),
					intAttr("lcds.hot_keys", int64(start.B)),
				},
			})
		}
	}
	return out
}

// ExportEvents posts the spans BuildSpans derives from a timeline window to
// Endpoint/v1/traces. A window with no completed rebuilds or phases posts
// nothing and returns nil.
func (e *Exporter) ExportEvents(evs []events.Event) error {
	spans := BuildSpans(evs)
	if len(spans) == 0 {
		return nil
	}
	return e.postSpans(spans)
}

func (e *Exporter) postSpans(spans []Span) error {
	req := tracesRequest{ResourceSpans: []resourceSpans{{
		Resource:   e.resource(),
		ScopeSpans: []scopeSpans{{Scope: scope{Name: "lcds"}, Spans: spans}},
	}}}
	return e.post("/v1/traces", req)
}

// SpanTracer adapts the exporter to telemetry.Tracer: every sampled query
// trace becomes a "query" span, buffered and posted in batches of the
// configured size. Install it via telemetry.Config.Tracer. Trace never
// blocks the query that produced it beyond one buffered append except on
// the flush boundary, where the posting goroutine is the tracing one.
type SpanTracer struct {
	exp   *Exporter
	limit int

	mu      sync.Mutex
	buf     []Span
	lastErr error
}

// NewSpanTracer creates a tracer flushing every limit traces (≤ 0 selects
// 64).
func (e *Exporter) NewSpanTracer(limit int) *SpanTracer {
	if limit <= 0 {
		limit = 64
	}
	return &SpanTracer{exp: e, limit: limit, buf: make([]Span, 0, limit)}
}

// Trace implements telemetry.Tracer.
func (t *SpanTracer) Trace(qt telemetry.QueryTrace) {
	id := mix(qt.KeyHash ^ uint64(qt.UnixNano))
	sp := Span{
		TraceID:           hex128(mix(uint64(qt.UnixNano)), qt.KeyHash),
		SpanID:            hex64(id),
		Name:              "query",
		Kind:              1,
		StartTimeUnixNano: strconv.FormatInt(qt.UnixNano-qt.LatencyNs, 10),
		EndTimeUnixNano:   strconv.FormatInt(qt.UnixNano, 10),
		Attributes: []keyValue{
			intAttr("lcds.key_hash", int64(qt.KeyHash)),
			intAttr("lcds.shard", int64(qt.Shard)),
			intAttr("lcds.steps", int64(qt.Steps)),
			boolAttr("lcds.found", qt.Found),
		},
	}
	t.mu.Lock()
	t.buf = append(t.buf, sp)
	var flush []Span
	if len(t.buf) >= t.limit {
		flush = t.buf
		t.buf = make([]Span, 0, t.limit)
	}
	t.mu.Unlock()
	if flush != nil {
		if err := t.exp.postSpans(flush); err != nil {
			t.mu.Lock()
			t.lastErr = err
			t.mu.Unlock()
		}
	}
}

// Flush posts any buffered query spans and returns the most recent export
// error (cleared by the call).
func (t *SpanTracer) Flush() error {
	t.mu.Lock()
	flush := t.buf
	t.buf = make([]Span, 0, t.limit)
	err := t.lastErr
	t.lastErr = nil
	t.mu.Unlock()
	if len(flush) > 0 {
		if perr := t.exp.postSpans(flush); perr != nil {
			return perr
		}
	}
	return err
}
