// Package otlp maps the telemetry layer and the flight recorder onto the
// OpenTelemetry protocol: snapshot gauges, counters and log₂ latency
// histograms become OTLP metrics, and flight-recorder events become OTLP
// spans (a rebuild is a span from its RebuildStart to its RebuildEnd; a
// split phase is a span from PhaseSplit to PhaseJoined), posted over
// OTLP/HTTP in the JSON encoding. The encoding is hand-rolled against the
// stable OTLP 1.x JSON schema — no OpenTelemetry SDK — so the default build
// pulls in no dependencies.
//
// The implementation compiles only under the `otlp` build tag:
//
//	go build -tags otlp ./...
//	go run -tags otlp ./cmd/lcds-monitor -otlp http://localhost:4318
//
// Without the tag this package is an empty placeholder and lcds-monitor's
// -otlp flag refuses to start.
package otlp
