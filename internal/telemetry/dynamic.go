package telemetry

import (
	"sync/atomic"

	"repro/internal/cellprobe"
)

// DynamicMetrics is the rebuild- and write-side telemetry of one dynamic
// dictionary (one shard of a sharded dynamic composite, or the whole
// dictionary when unsharded): epoch publishes, rebuild durations, writer
// pauses at the buffer hard cap, the buffered-delta depth, and the
// lock-free write path's per-claim probe and CAS-retry counts. All methods
// are safe for any number of concurrent callers; WriteClaim in particular
// is invoked from the mutex-free claim-slot path by every writer, so its
// counters are striped per goroutine rather than shared words.
type DynamicMetrics struct {
	shard int

	rebuilds    atomic.Uint64 // epochs published (successful rebuilds)
	rebuildKeys atomic.Uint64 // keys rebuilt into published epochs, cumulative
	failures    atomic.Uint64 // rebuild attempts that errored

	deltaDepth atomic.Int64  // current buffered-delta depth
	deltaHigh  atomic.Uint64 // high-water delta depth since start

	claimProbes *cellprobe.StripedCounter // probes issued by claim walks
	casRetries  *cellprobe.StripedCounter // claim CASes lost to racing writers

	absorbed      *cellprobe.StripedCounter // writes soaked by split-phase overlays
	phaseSeals    atomic.Uint64             // phase boundaries sealed (absorption enabled)
	phaseAbsorbed atomic.Uint64             // absorbed ops across sealed phases
	phaseHotKeys  atomic.Int64              // current epoch's hot-set size (0 = joined)

	rebuildNs *LogHistogram // duration of each background/sync rebuild
	pauseNs   *LogHistogram // writer stalls waiting at the buffer hard cap
}

// NewDynamicMetrics creates the metrics slot for one shard.
func NewDynamicMetrics(shard int) *DynamicMetrics {
	return &DynamicMetrics{
		shard:       shard,
		claimProbes: cellprobe.NewStripedCounter(),
		casRetries:  cellprobe.NewStripedCounter(),
		absorbed:    cellprobe.NewStripedCounter(),
		rebuildNs:   NewLogHistogram(),
		pauseNs:     NewLogHistogram(),
	}
}

// RebuildDone records a completed rebuild that published an epoch of n
// keys after durationNs nanoseconds.
func (m *DynamicMetrics) RebuildDone(n int, durationNs int64) {
	m.rebuilds.Add(1)
	m.rebuildKeys.Add(uint64(n))
	m.rebuildNs.Observe(uint64(durationNs))
}

// RebuildFailed records a rebuild attempt that ended in error.
func (m *DynamicMetrics) RebuildFailed(durationNs int64) {
	m.failures.Add(1)
	m.rebuildNs.Observe(uint64(durationNs))
}

// WriterPaused records one writer stall of pauseNs nanoseconds spent
// blocked at the buffer occupancy hard cap.
func (m *DynamicMetrics) WriterPaused(pauseNs int64) {
	m.pauseNs.Observe(uint64(pauseNs))
}

// WriteClaim records one completed claim walk of the lock-free write path:
// the probes it issued and the CAS races it lost. Called concurrently by
// every writer; both counters land on per-goroutine stripes.
func (m *DynamicMetrics) WriteClaim(probes, casRetries uint64) {
	m.claimProbes.Add(probes)
	if casRetries > 0 {
		m.casRetries.Add(casRetries)
	}
}

// WriteAbsorbed records one write soaked by a split-phase overlay instead
// of the claim path. Called concurrently by every writer; the counter is
// striped per goroutine.
func (m *DynamicMetrics) WriteAbsorbed() { m.absorbed.Add(1) }

// PhaseSealed records one phase boundary: the sealed phase ran with hotKeys
// absorbed keys and its overlay soaked absorbedOps operations.
func (m *DynamicMetrics) PhaseSealed(hotKeys int, absorbedOps uint64) {
	m.phaseSeals.Add(1)
	m.phaseAbsorbed.Add(absorbedOps)
}

// SetPhase publishes the freshly published epoch's hot-set size — the
// current-phase gauge (0 means a joined phase).
func (m *DynamicMetrics) SetPhase(hotKeys int) { m.phaseHotKeys.Store(int64(hotKeys)) }

// SetDeltaDepth publishes the current buffered-delta depth and maintains
// the high-water mark.
func (m *DynamicMetrics) SetDeltaDepth(depth int) {
	m.deltaDepth.Store(int64(depth))
	for {
		hi := m.deltaHigh.Load()
		if uint64(depth) <= hi || m.deltaHigh.CompareAndSwap(hi, uint64(depth)) {
			return
		}
	}
}

// DynamicSnapshot is a point-in-time read of one shard's rebuild and
// write-path metrics.
type DynamicSnapshot struct {
	Shard          int               `json:"shard"`
	Rebuilds       uint64            `json:"rebuilds"`
	RebuildKeys    uint64            `json:"rebuild_keys"`
	RebuildFails   uint64            `json:"rebuild_fails"`
	DeltaDepth     int64             `json:"delta_depth"`
	DeltaHighWater uint64            `json:"delta_high_water"`
	ClaimProbes    uint64            `json:"claim_probes"`
	CASRetries     uint64            `json:"cas_retries"`
	AbsorbedWrites uint64            `json:"absorbed_writes"`
	PhaseSeals     uint64            `json:"phase_seals"`
	PhaseAbsorbed  uint64            `json:"phase_absorbed"`
	PhaseHotKeys   int64             `json:"phase_hot_keys"`
	SplitPhase     bool              `json:"split_phase"`
	RebuildNs      HistogramSnapshot `json:"rebuild_ns"`
	WriterPauseNs  HistogramSnapshot `json:"writer_pause_ns"`
}

// Snapshot reads the metrics.
func (m *DynamicMetrics) Snapshot() DynamicSnapshot {
	return DynamicSnapshot{
		Shard:          m.shard,
		Rebuilds:       m.rebuilds.Load(),
		RebuildKeys:    m.rebuildKeys.Load(),
		RebuildFails:   m.failures.Load(),
		DeltaDepth:     m.deltaDepth.Load(),
		DeltaHighWater: m.deltaHigh.Load(),
		ClaimProbes:    m.claimProbes.Sum(),
		CASRetries:     m.casRetries.Sum(),
		AbsorbedWrites: m.absorbed.Sum(),
		PhaseSeals:     m.phaseSeals.Load(),
		PhaseAbsorbed:  m.phaseAbsorbed.Load(),
		PhaseHotKeys:   m.phaseHotKeys.Load(),
		SplitPhase:     m.phaseHotKeys.Load() > 0,
		RebuildNs:      m.rebuildNs.Snapshot(),
		WriterPauseNs:  m.pauseNs.Snapshot(),
	}
}
