package telemetry

import "sync/atomic"

// DynamicMetrics is the rebuild-side telemetry of one dynamic dictionary
// (one shard of a sharded dynamic composite, or the whole dictionary when
// unsharded): epoch publishes, rebuild durations, writer pauses at the
// delta hard cap, and the buffered-delta depth. All methods are safe for
// concurrent use; the dictionary's writer lock already serializes most
// callers, but readers snapshot concurrently.
type DynamicMetrics struct {
	shard int

	rebuilds    atomic.Uint64 // epochs published (successful rebuilds)
	rebuildKeys atomic.Uint64 // keys rebuilt into published epochs, cumulative
	failures    atomic.Uint64 // rebuild attempts that errored

	deltaDepth atomic.Int64  // current buffered-delta depth
	deltaHigh  atomic.Uint64 // high-water delta depth since start

	rebuildNs *LogHistogram // duration of each background/sync rebuild
	pauseNs   *LogHistogram // writer stalls waiting at the delta hard cap
}

// NewDynamicMetrics creates the metrics slot for one shard.
func NewDynamicMetrics(shard int) *DynamicMetrics {
	return &DynamicMetrics{shard: shard, rebuildNs: NewLogHistogram(), pauseNs: NewLogHistogram()}
}

// RebuildDone records a completed rebuild that published an epoch of n
// keys after durationNs nanoseconds.
func (m *DynamicMetrics) RebuildDone(n int, durationNs int64) {
	m.rebuilds.Add(1)
	m.rebuildKeys.Add(uint64(n))
	m.rebuildNs.Observe(uint64(durationNs))
}

// RebuildFailed records a rebuild attempt that ended in error.
func (m *DynamicMetrics) RebuildFailed(durationNs int64) {
	m.failures.Add(1)
	m.rebuildNs.Observe(uint64(durationNs))
}

// WriterPaused records one writer stall of pauseNs nanoseconds spent
// blocked at the buffered-delta hard cap.
func (m *DynamicMetrics) WriterPaused(pauseNs int64) {
	m.pauseNs.Observe(uint64(pauseNs))
}

// SetDeltaDepth publishes the current buffered-delta depth and maintains
// the high-water mark.
func (m *DynamicMetrics) SetDeltaDepth(depth int) {
	m.deltaDepth.Store(int64(depth))
	for {
		hi := m.deltaHigh.Load()
		if uint64(depth) <= hi || m.deltaHigh.CompareAndSwap(hi, uint64(depth)) {
			return
		}
	}
}

// DynamicSnapshot is a point-in-time read of one shard's rebuild metrics.
type DynamicSnapshot struct {
	Shard          int               `json:"shard"`
	Rebuilds       uint64            `json:"rebuilds"`
	RebuildKeys    uint64            `json:"rebuild_keys"`
	RebuildFails   uint64            `json:"rebuild_fails"`
	DeltaDepth     int64             `json:"delta_depth"`
	DeltaHighWater uint64            `json:"delta_high_water"`
	RebuildNs      HistogramSnapshot `json:"rebuild_ns"`
	WriterPauseNs  HistogramSnapshot `json:"writer_pause_ns"`
}

// Snapshot reads the metrics.
func (m *DynamicMetrics) Snapshot() DynamicSnapshot {
	return DynamicSnapshot{
		Shard:          m.shard,
		Rebuilds:       m.rebuilds.Load(),
		RebuildKeys:    m.rebuildKeys.Load(),
		RebuildFails:   m.failures.Load(),
		DeltaDepth:     m.deltaDepth.Load(),
		DeltaHighWater: m.deltaHigh.Load(),
		RebuildNs:      m.rebuildNs.Snapshot(),
		WriterPauseNs:  m.pauseNs.Snapshot(),
	}
}
