package telemetry

import (
	"fmt"
	"time"

	"repro/internal/telemetry/events"
)

// AdaptiveConfig makes the probe sampling factor k self-tuning: a feedback
// controller keeps the *recorded* (post-sampling) probe rate near a budget,
// doubling k when the workload runs hot and halving it when traffic is
// light, so an always-on monitor never needs a human to pick k.
//
// The controller runs out-of-band (AdaptTick, called from a ticker loop or a
// test); the hot path only loads the current factor from one atomic word.
// Each recorded probe is accumulated pre-scaled by the factor in force when
// it was recorded, so the counters remain unbiased estimates of the true
// totals across every factor change — Snapshot never rescales them.
type AdaptiveConfig struct {
	// TargetProbesPerSec is the recorded-probe budget the controller steers
	// toward. Must be > 0.
	TargetProbesPerSec float64
	// MinSample and MaxSample bound k (rounded to powers of two). Defaults
	// 1 and 65536.
	MinSample int
	MaxSample int
	// Hysteresis is the deadband fraction around the target (default 0.25):
	// k doubles only above Target·(1+Hysteresis) and halves only when the
	// halved rate would stay below Target·(1−Hysteresis), so a steady
	// workload settles on one k instead of oscillating between two.
	Hysteresis float64
}

// withDefaults validates and normalizes the adaptive configuration.
func (c AdaptiveConfig) withDefaults() (AdaptiveConfig, error) {
	if !(c.TargetProbesPerSec > 0) {
		return c, fmt.Errorf("telemetry: adaptive sampling needs TargetProbesPerSec > 0 (got %v)", c.TargetProbesPerSec)
	}
	if c.MinSample <= 0 {
		c.MinSample = 1
	}
	if c.MaxSample <= 0 {
		c.MaxSample = 1 << 16
	}
	c.MinSample = ceilPow2(c.MinSample)
	c.MaxSample = ceilPow2(c.MaxSample)
	if c.MaxSample < c.MinSample {
		return c, fmt.Errorf("telemetry: adaptive MaxSample %d < MinSample %d", c.MaxSample, c.MinSample)
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.25
	}
	return c, nil
}

// Adaptive reports whether the sampling factor is controller-tuned.
func (t *Telemetry) Adaptive() bool { return t.adaptive }

// RecordedProbes returns the post-sampling probe count — the quantity the
// adaptive controller budgets. It equals Snapshot().Probes only at k = 1.
func (t *Telemetry) RecordedProbes() uint64 {
	if t.recorded == nil {
		return 0
	}
	return t.recorded.Sum(0)
}

// AdaptTick runs one controller step over the probes recorded since the
// previous tick, elapsed apart, and returns the sampling factor now in
// force. Call it from a single ticker goroutine (ticks serialize on an
// internal mutex; the probe hot path is never blocked). It is a no-op for
// fixed-k telemetry.
//
// The control law with recorded rate r, target T, hysteresis h:
//
//	while r > T·(1+h) and k < max:  k ← 2k, r ← r/2
//	while 2r < T·(1−h) and k > min: k ← k/2, r ← 2r
//
// The bands overlap for any h > 0, so a constant incoming rate has at least
// one stable k and the loop converges without oscillation.
func (t *Telemetry) AdaptTick(elapsed time.Duration) int {
	if !t.adaptive || elapsed <= 0 {
		return t.Sample()
	}
	t.adaptMu.Lock()
	defer t.adaptMu.Unlock()
	total := t.recorded.Sum(0)
	delta := total - t.adaptLast
	t.adaptLast = total
	rate := float64(delta) / elapsed.Seconds()

	prev := t.curMask.Load() + 1
	k := prev
	up := t.adapt.TargetProbesPerSec * (1 + t.adapt.Hysteresis)
	down := t.adapt.TargetProbesPerSec * (1 - t.adapt.Hysteresis)
	for rate > up && k < uint64(t.adapt.MaxSample) {
		k <<= 1
		rate /= 2
	}
	for rate*2 < down && k > uint64(t.adapt.MinSample) {
		k >>= 1
		rate *= 2
	}
	t.curMask.Store(k - 1)
	if k != prev {
		t.events.Emit(events.SamplingRetuned, 0, prev, k, 0)
	}
	return int(k)
}
