package telemetry

import (
	"sync"
	"testing"
)

// TestSketchPackRoundTrip checks the (step, cell) word packing.
func TestSketchPackRoundTrip(t *testing.T) {
	cases := [][2]int{{0, 0}, {1, 1}, {64, 12345}, {7, 1<<40 - 1}}
	for _, c := range cases {
		step, cell := unpackStepCell(packStepCell(c[0], c[1]))
		if step != c[0] || cell != c[1] {
			t.Fatalf("pack(%d,%d) round-tripped to (%d,%d)", c[0], c[1], step, cell)
		}
	}
}

// TestSketchHottestCell drives a skewed probe stream through the sketch and
// checks the hottest cell per step is identified.
func TestSketchHottestCell(t *testing.T) {
	s := NewStepCellSketch(128, 1)
	h := &handle{stripe: 0, rng: 12345}
	// Step 0: cell 7 gets 90% of probes; step 1: cell 3 gets all of them.
	for i := 0; i < 10000; i++ {
		if i%10 == 0 {
			s.offer(h, 0, 1)
		} else {
			s.offer(h, 0, 7)
		}
		s.offer(h, 1, 3)
	}
	if got := s.Offers(); got != 20000 {
		t.Fatalf("Offers() = %d, want 20000", got)
	}
	views := s.Snapshot(2)
	if len(views) != 2 {
		t.Fatalf("snapshot has %d steps, want 2", len(views))
	}
	if views[0].Step != 0 || views[1].Step != 1 {
		t.Fatalf("steps out of order: %d, %d", views[0].Step, views[1].Step)
	}
	if views[0].Cells[0].Cell != 7 {
		t.Fatalf("step 0 hottest cell %d, want 7", views[0].Cells[0].Cell)
	}
	if share := views[0].Cells[0].Share; share < 0.75 || share > 1.0 {
		t.Fatalf("step 0 hot share %v, want ≈0.9", share)
	}
	if views[1].Cells[0].Cell != 3 || views[1].Cells[0].Share != 1.0 {
		t.Fatalf("step 1 row %+v, want cell 3 at share 1", views[1].Cells[0])
	}
}

// TestSketchConcurrent hammers the sketch from many goroutines (the -race
// battery for the reservoir's atomic slots) and checks the snapshot stays
// well-formed.
func TestSketchConcurrent(t *testing.T) {
	s := NewStepCellSketch(64, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := &handle{stripe: uint64(g), rng: uint64(g) * 977}
			for i := 0; i < 5000; i++ {
				s.offer(h, g%3, i%17)
			}
		}(g)
	}
	wg.Wait()
	if got := s.Offers(); got != 40000 {
		t.Fatalf("Offers() = %d, want 40000", got)
	}
	for _, v := range s.Snapshot(5) {
		if v.Step < 0 || v.Step > 2 {
			t.Fatalf("impossible step %d in snapshot", v.Step)
		}
		if len(v.Cells) > 5 {
			t.Fatalf("step %d has %d cells, want ≤ 5", v.Step, len(v.Cells))
		}
		var sum float64
		for _, c := range v.Cells {
			if c.Cell < 0 || c.Cell >= 17 {
				t.Fatalf("impossible cell %d", c.Cell)
			}
			sum += c.Share
		}
		if sum > 1.0001 {
			t.Fatalf("step %d shares sum to %v > 1", v.Step, sum)
		}
	}
}

// TestTelemetrySketchIntegration checks the sketch rides the telemetry
// probe sink: recorded probes appear in Snapshot().StepCells.
func TestTelemetrySketchIntegration(t *testing.T) {
	tel := New(Config{}, 100, 10)
	for i := 0; i < 1000; i++ {
		tel.ProbeObserved(0, 42)
		tel.ProbeObserved(1, i%100)
	}
	s := tel.Snapshot()
	if len(s.StepCells) == 0 {
		t.Fatal("snapshot has no step-cell table")
	}
	if s.StepCells[0].Step != 0 || s.StepCells[0].Cells[0].Cell != 42 {
		t.Fatalf("step 0 hottest %+v, want cell 42", s.StepCells[0])
	}
	// Cell-agnostic telemetry has no sketch.
	dyn := New(Config{}, 0, 10)
	dyn.ProbeObserved(0, 1)
	if got := dyn.Snapshot().StepCells; got != nil {
		t.Fatalf("cell-agnostic snapshot has step cells: %+v", got)
	}
}
