package events

import (
	"encoding/json"
	"runtime"
	"sync"
	"testing"
)

// TestEmitTimelineSingle checks the basic emit → drain → cursor contract.
func TestEmitTimelineSingle(t *testing.T) {
	l := NewLog(16, 64)
	if !l.Emit(RebuildStart, 0, 1, 100, 0) {
		t.Fatal("emit on an empty ring refused")
	}
	if !l.Emit(RebuildEnd, 0, 1, 100, 12345) {
		t.Fatal("emit refused")
	}
	evs, next := l.Timeline(0, 0)
	if len(evs) != 2 {
		t.Fatalf("timeline returned %d events, want 2", len(evs))
	}
	if evs[0].Type != RebuildStart || evs[1].Type != RebuildEnd {
		t.Fatalf("wrong order: %v, %v", evs[0].Type, evs[1].Type)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 || next != 2 {
		t.Fatalf("cursors: seq %d,%d next %d", evs[0].Seq, evs[1].Seq, next)
	}
	if evs[1].A != 1 || evs[1].B != 100 || evs[1].C != 12345 {
		t.Fatalf("payload torn: %+v", evs[1])
	}
	// Nothing new: same cursor back, no events.
	evs, next2 := l.Timeline(next, 0)
	if len(evs) != 0 || next2 != next {
		t.Fatalf("idle timeline returned %d events, cursor %d (want %d)", len(evs), next2, next)
	}
}

// TestTimelinePagination checks the since-cursor contract page by page.
func TestTimelinePagination(t *testing.T) {
	l := NewLog(64, 256)
	for i := 0; i < 10; i++ {
		l.Emit(EpochSealed, 0, uint64(i), 0, 0)
	}
	var got []Event
	cursor := uint64(0)
	for {
		page, next := l.Timeline(cursor, 3)
		if len(page) == 0 {
			break
		}
		if len(page) > 3 {
			t.Fatalf("page of %d > max 3", len(page))
		}
		got = append(got, page...)
		cursor = next
	}
	if len(got) != 10 {
		t.Fatalf("paged to %d events, want 10", len(got))
	}
	for i, ev := range got {
		if ev.A != uint64(i) || ev.Seq != uint64(i+1) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
}

// TestOverflowDroppedExact fills the ring with no reader, then checks drops
// are counted exactly and surfaced as an OverflowDropped event whose totals
// match Dropped().
func TestOverflowDroppedExact(t *testing.T) {
	l := NewLog(8, 64)
	accepted, refused := 0, 0
	for i := 0; i < 50; i++ {
		if l.Emit(SamplingRetuned, 0, 1, 2, 0) {
			accepted++
		} else {
			refused++
		}
	}
	if accepted != l.RingCapacity() {
		t.Fatalf("accepted %d, want ring capacity %d", accepted, l.RingCapacity())
	}
	if got := l.Dropped(); got != uint64(refused) {
		t.Fatalf("Dropped() = %d, want %d", got, refused)
	}
	evs, _ := l.Timeline(0, 0)
	var overflow *Event
	for i := range evs {
		if evs[i].Type == OverflowDropped {
			if overflow != nil {
				t.Fatal("more than one OverflowDropped for one loss window")
			}
			overflow = &evs[i]
		}
	}
	if overflow == nil {
		t.Fatal("no OverflowDropped event synthesized")
	}
	if overflow.A != uint64(refused) || overflow.B != uint64(refused) {
		t.Fatalf("OverflowDropped payload %d/%d, want %d/%d", overflow.A, overflow.B, refused, refused)
	}
	if overflow.B != l.Dropped() {
		t.Fatalf("OverflowDropped total %d != ring counter %d", overflow.B, l.Dropped())
	}
}

// TestTimelineWindowSkip checks that a cursor older than the retained
// window skips forward instead of sticking.
func TestTimelineWindowSkip(t *testing.T) {
	l := NewLog(512, 16) // tiny retained window
	for i := 0; i < 100; i++ {
		l.Emit(EpochSealed, 0, uint64(i), 0, 0)
	}
	evs, next := l.Timeline(0, 0)
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want window 16", len(evs))
	}
	if evs[0].Seq != 85 || next != 100 {
		t.Fatalf("window [%d..%d], want [85..100]", evs[0].Seq, next)
	}
}

// TestConcurrentEmitters is the satellite battery: GOMAXPROCS writers and
// one reader under -race. It asserts (1) no event is torn — each event's
// payload words are a self-consistent function of its emitter and per-
// emitter index; (2) per-emitter ordering is monotone in the timeline;
// (3) drops are counted exactly: accepted + refused == attempts and the
// timeline delivers every accepted event.
func TestConcurrentEmitters(t *testing.T) {
	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const perWriter = 2000
	l := NewLog(256, writers*perWriter+writers)

	accepted := make([]uint64, writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// One reader draining concurrently with the writers.
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	var collected []Event
	go func() {
		defer readerWG.Done()
		cursor := uint64(0)
		for {
			page, next := l.Timeline(cursor, 0)
			collected = append(collected, page...)
			cursor = next
			select {
			case <-stop:
				page, _ := l.Timeline(cursor, 0)
				collected = append(collected, page...)
				return
			default:
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ok uint64
			for i := 0; i < perWriter; i++ {
				// Payload: A = writer, B = per-writer index, C = A ^ B — the
				// torn-write detector.
				a, b := uint64(w), uint64(i)
				if l.Emit(EpochSealed, w, a, b, a^b) {
					ok++
				}
			}
			accepted[w] = ok
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	var totalAccepted uint64
	for _, a := range accepted {
		totalAccepted += a
	}
	totalRefused := uint64(writers*perWriter) - totalAccepted
	if got := l.Dropped(); got != totalRefused {
		t.Fatalf("Dropped() = %d, want exactly %d refused emissions", got, totalRefused)
	}

	perWriterSeen := make([]uint64, writers)
	lastIdx := make([]int64, writers)
	for w := range lastIdx {
		lastIdx[w] = -1
	}
	var overflowTotal uint64
	for _, ev := range collected {
		if ev.Type == OverflowDropped {
			overflowTotal = ev.B
			continue
		}
		if ev.Type != EpochSealed {
			t.Fatalf("unexpected event type %v", ev.Type)
		}
		w := int(ev.A)
		if w < 0 || w >= writers || ev.C != ev.A^ev.B || int32(w) != ev.Shard {
			t.Fatalf("torn event: %+v", ev)
		}
		if int64(ev.B) <= lastIdx[w] {
			t.Fatalf("writer %d order violated: index %d after %d", w, ev.B, lastIdx[w])
		}
		lastIdx[w] = int64(ev.B)
		perWriterSeen[w]++
	}
	for w := range perWriterSeen {
		if perWriterSeen[w] != accepted[w] {
			t.Fatalf("writer %d: delivered %d, accepted %d", w, perWriterSeen[w], accepted[w])
		}
	}
	if totalRefused > 0 && overflowTotal != totalRefused {
		t.Fatalf("final OverflowDropped total %d, want %d", overflowTotal, totalRefused)
	}
	// Cursors of the collected stream are strictly increasing with no reuse.
	for i := 1; i < len(collected); i++ {
		if collected[i].Seq <= collected[i-1].Seq {
			t.Fatalf("timeline cursors not monotone at %d: %d then %d", i, collected[i-1].Seq, collected[i].Seq)
		}
	}
}

// TestEventJSON checks the /debug/timeline wire schema fields per type.
func TestEventJSON(t *testing.T) {
	cases := []struct {
		ev   Event
		want []string
	}{
		{Event{Seq: 1, Type: EpochSealed, A: 3, B: 17}, []string{`"type":"epoch_sealed"`, `"epoch":3`, `"buffered":17`}},
		{Event{Seq: 2, Type: RebuildEnd, A: MarkFailed(4), B: 9, C: 55}, []string{`"type":"rebuild_end"`, `"failed":true`, `"epoch":4`, `"duration_ns":55`}},
		{Event{Seq: 3, Type: HotKeyPromoted, A: 0xdead, B: 7}, []string{`"type":"hot_key_promoted"`, `"key_hash":57005`, `"weight":7`}},
		{Event{Seq: 4, Type: SamplingRetuned, A: 2, B: 8}, []string{`"old_k":2`, `"new_k":8`}},
		{Event{Seq: 5, Type: OverflowDropped, A: 5, B: 12}, []string{`"dropped":5`, `"dropped_total":12`}},
	}
	for _, c := range cases {
		raw, err := json.Marshal(c.ev)
		if err != nil {
			t.Fatalf("marshal %v: %v", c.ev.Type, err)
		}
		for _, frag := range c.want {
			if !contains(string(raw), frag) {
				t.Fatalf("%v JSON %s missing %s", c.ev.Type, raw, frag)
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestStats checks the snapshot-embedding summary.
func TestStats(t *testing.T) {
	l := NewLog(32, 64)
	l.Emit(RebuildStart, 0, 1, 10, 0)
	l.Emit(RebuildEnd, 0, 1, 10, 99)
	l.Emit(RebuildEnd, 0, 2, 11, 98)
	s := l.Stats()
	if s.Recorded != 3 || s.Dropped != 0 || s.NextCursor != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.ByType["rebuild_end"] != 2 || s.ByType["rebuild_start"] != 1 {
		t.Fatalf("by-type %v", s.ByType)
	}
}

// BenchmarkEmit measures the producer path (single goroutine).
func BenchmarkEmit(b *testing.B) {
	l := NewLog(1<<16, 1<<16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(EpochSealed, 0, uint64(i), 0, 0)
		if i&1023 == 0 {
			l.Timeline(^uint64(0), 0) // keep the ring drained
		}
	}
}
