// Package events is the dictionary's flight recorder: an always-on,
// lock-free record of the structural moments the gauge-style telemetry
// cannot reconstruct after the fact — when an epoch's buffer sealed, how
// long each rebuild ran and how many keys it carried, when a write-
// absorption phase split or joined, which (hashed) keys the classifier
// promoted, and when the adaptive sampler retuned.
//
// # Design
//
// Emitters — the dynamic dictionary's rebuild path, the sharded composite,
// the adaptive-sampling controller, the hot-key classifier — call Emit from
// whatever goroutine they run on; Emit is wait-free for the common case and
// lock-free always (one CAS claim on a bounded multi-producer ring in the
// style of Vyukov's bounded MPMC queue, then plain payload stores released
// by the slot's sequence word). A full ring never blocks an emitter and
// never silently loses history: Emit counts the drop on an exact atomic
// counter and returns false, and the next drain synthesizes an
// OverflowDropped event carrying the cumulative total, so a timeline reader
// can always see how much it missed.
//
// The single consumer (Timeline, Stats — any reader) drains the MPSC ring
// under a mutex into a larger timeline ring, assigning each event a global
// monotone sequence number. Timeline(since, max) serves any suffix of the
// retained window by cursor, which is what gives the monitor's
// /debug/timeline endpoint stateless pagination.
//
// The package depends only on the standard library, so every layer of the
// repository — internal/dynamic, internal/shard, internal/telemetry — can
// emit into one shared log without import cycles.
package events

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Type enumerates the recorded event kinds.
type Type uint8

const (
	// EpochSealed: a rebuild sealed the epoch's update buffer behind the
	// writer fence. A = epoch, B = live buffered entries at the seal.
	EpochSealed Type = iota
	// RebuildStart: a snapshot was taken and construction of the next core
	// began. A = epoch, B = keys in the snapshot.
	RebuildStart
	// RebuildEnd: the rebuild published (or failed). A = epoch (failedBit
	// set when the build errored), B = keys, C = duration in nanoseconds.
	RebuildEnd
	// PhaseSplit: the freshly published epoch runs a split phase.
	// A = epoch, B = absorbed-hot key count.
	PhaseSplit
	// PhaseJoined: the freshly published epoch returned to a joined phase.
	// A = epoch.
	PhaseJoined
	// HotKeyPromoted: the classifier promoted a key into the absorbed-hot
	// set. A = hash of the key (never the key itself), B = its weighted
	// claim count in the promotion window.
	HotKeyPromoted
	// HotKeyDemoted: the classifier demoted a cooled key. A = hash of the
	// key.
	HotKeyDemoted
	// SamplingRetuned: the adaptive controller changed the sampling factor.
	// A = previous k, B = new k.
	SamplingRetuned
	// ShardRebuild: one shard of a sharded composite published a rebuild
	// (emitted alongside RebuildEnd so composite-level consumers can watch
	// shard churn without decoding per-shard streams). A = epoch, B = keys,
	// C = duration in nanoseconds.
	ShardRebuild
	// OverflowDropped: synthesized by the drain when emitters dropped
	// events on a full ring since the previous drain. A = drops since the
	// last OverflowDropped event, B = cumulative drops since the log was
	// created.
	OverflowDropped

	// NumTypes is the number of event types (for per-type counter arrays).
	NumTypes = int(OverflowDropped) + 1
)

// failedBit marks a RebuildEnd whose build errored (set on the A word, far
// above any real epoch number).
const failedBit = uint64(1) << 63

// FailedRebuild reports whether a RebuildEnd event records a failed build,
// and returns the epoch with the failure flag cleared.
func FailedRebuild(a uint64) (epoch uint64, failed bool) {
	return a &^ failedBit, a&failedBit != 0
}

// MarkFailed sets the failure flag on a RebuildEnd epoch word.
func MarkFailed(epoch uint64) uint64 { return epoch | failedBit }

// typeNames maps Type to its wire name (stable: the /debug/timeline schema
// and the lcds_events_total{type=...} label values).
var typeNames = [NumTypes]string{
	EpochSealed:     "epoch_sealed",
	RebuildStart:    "rebuild_start",
	RebuildEnd:      "rebuild_end",
	PhaseSplit:      "phase_split",
	PhaseJoined:     "phase_joined",
	HotKeyPromoted:  "hot_key_promoted",
	HotKeyDemoted:   "hot_key_demoted",
	SamplingRetuned: "sampling_retuned",
	ShardRebuild:    "shard_rebuild",
	OverflowDropped: "overflow_dropped",
}

// String returns the stable wire name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type_%d", int(t))
}

// Event is one recorded moment. Seq is the global timeline cursor assigned
// at drain time (monotone from 1, no gaps among retained events); A, B and C
// are type-specific payload words documented on each Type constant.
type Event struct {
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"unix_nano"`
	Type     Type   `json:"-"`
	Shard    int32  `json:"shard"`
	A        uint64 `json:"-"`
	B        uint64 `json:"-"`
	C        uint64 `json:"-"`
}

// MarshalJSON renders the event with its payload words decoded into named,
// type-specific fields — the /debug/timeline schema.
func (e Event) MarshalJSON() ([]byte, error) {
	m := map[string]any{
		"seq":       e.Seq,
		"unix_nano": e.UnixNano,
		"type":      e.Type.String(),
		"shard":     e.Shard,
	}
	switch e.Type {
	case EpochSealed:
		m["epoch"] = e.A
		m["buffered"] = e.B
	case RebuildStart:
		m["epoch"] = e.A
		m["keys"] = e.B
	case RebuildEnd:
		epoch, failed := FailedRebuild(e.A)
		m["epoch"] = epoch
		m["keys"] = e.B
		m["duration_ns"] = e.C
		if failed {
			m["failed"] = true
		}
	case PhaseSplit:
		m["epoch"] = e.A
		m["hot_keys"] = e.B
	case PhaseJoined:
		m["epoch"] = e.A
	case HotKeyPromoted:
		m["key_hash"] = e.A
		m["weight"] = e.B
	case HotKeyDemoted:
		m["key_hash"] = e.A
	case SamplingRetuned:
		m["old_k"] = e.A
		m["new_k"] = e.B
	case ShardRebuild:
		m["epoch"] = e.A
		m["keys"] = e.B
		m["duration_ns"] = e.C
	case OverflowDropped:
		m["dropped"] = e.A
		m["dropped_total"] = e.B
	}
	return json.Marshal(m)
}

// slot is one cell of the MPSC ring. seq carries the Vyukov claim/release
// protocol: a producer may claim position p when seq == p, publishes with
// seq = p+1, and the drain frees the cell with seq = p+capacity. The payload
// fields are plain words — every write to them happens between the
// producer's CAS claim and its releasing seq store, and every read between
// the drain's acquiring seq load and its freeing store, so the atomic
// sequence word orders them without per-field atomics.
type slot struct {
	seq      atomic.Uint64
	unixNano int64
	typ      Type
	shard    int32
	a, b, c  uint64
}

// Log is the flight recorder: a bounded lock-free MPSC ring absorbing
// emissions, drained on read into a timeline ring with global cursors.
// Emit is safe for any number of concurrent callers; the read side
// (Timeline, Stats, TypeCounts) serializes on an internal mutex.
type Log struct {
	slots []slot
	mask  uint64
	enq   atomic.Uint64

	dropped atomic.Uint64 // emissions refused on a full ring, exact
	counts  [NumTypes]atomic.Uint64

	mu       sync.Mutex
	deq      uint64  // next ring position to drain (under mu)
	timeline []Event // retained window, a ring over nextSeq
	nextSeq  uint64  // sequence number of the next drained event (from 1)
	synced   uint64  // cumulative drops already surfaced as OverflowDropped
}

// DefaultRingCapacity and DefaultTimelineCapacity size NewLog(0, 0): the
// ring absorbs bursts between drains, the timeline is the retained history.
const (
	DefaultRingCapacity     = 1024
	DefaultTimelineCapacity = 4096
)

// NewLog creates a flight recorder. ringCap bounds the undrained burst a
// set of emitters can accumulate (rounded up to a power of two; ≤ 0 selects
// DefaultRingCapacity); timelineCap is the retained-history window (≤ 0
// selects DefaultTimelineCapacity).
func NewLog(ringCap, timelineCap int) *Log {
	if ringCap <= 0 {
		ringCap = DefaultRingCapacity
	}
	n := 1
	for n < ringCap {
		n <<= 1
	}
	if timelineCap <= 0 {
		timelineCap = DefaultTimelineCapacity
	}
	l := &Log{
		slots:    make([]slot, n),
		mask:     uint64(n - 1),
		timeline: make([]Event, 0, timelineCap),
		nextSeq:  1,
	}
	for i := range l.slots {
		l.slots[i].seq.Store(uint64(i))
	}
	return l
}

// RingCapacity returns the MPSC ring's slot count.
func (l *Log) RingCapacity() int { return len(l.slots) }

// Emit records one event. It never blocks: when the ring is full (readers
// not draining fast enough) the event is dropped, the exact drop counter
// advances, and Emit reports false — the loss surfaces on the next drain as
// an OverflowDropped timeline event. Safe for any number of concurrent
// emitters; lock-free (one CAS per claim attempt).
func (l *Log) Emit(typ Type, shard int, a, b, c uint64) bool {
	now := time.Now().UnixNano()
	pos := l.enq.Load()
	for {
		s := &l.slots[pos&l.mask]
		seq := s.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if l.enq.CompareAndSwap(pos, pos+1) {
				s.unixNano = now
				s.typ = typ
				s.shard = int32(shard)
				s.a, s.b, s.c = a, b, c
				s.seq.Store(pos + 1)
				l.counts[typ].Add(1)
				return true
			}
			pos = l.enq.Load()
		case d < 0:
			// The drain has not freed this cell: the ring holds a full lap
			// of unread events.
			l.dropped.Add(1)
			return false
		default:
			// Another producer claimed pos but a racing enq advance hid it;
			// reload and retry at the current tail.
			pos = l.enq.Load()
		}
	}
}

// Dropped returns the exact number of emissions refused on a full ring.
func (l *Log) Dropped() uint64 { return l.dropped.Load() }

// TypeCounts returns the per-type counts of successfully recorded events
// (drops are excluded — they are counted by Dropped and surfaced as
// OverflowDropped events, which appear here once synthesized).
func (l *Log) TypeCounts() [NumTypes]uint64 {
	var out [NumTypes]uint64
	for i := range out {
		out[i] = l.counts[i].Load()
	}
	return out
}

// drain moves every published ring event into the timeline, assigning
// cursors, then surfaces any drops since the previous drain as a synthetic
// OverflowDropped event. Callers hold l.mu.
func (l *Log) drain() {
	for {
		s := &l.slots[l.deq&l.mask]
		seq := s.seq.Load()
		if int64(seq)-int64(l.deq+1) < 0 {
			break // next cell not yet published
		}
		ev := Event{
			UnixNano: s.unixNano,
			Type:     s.typ,
			Shard:    s.shard,
			A:        s.a, B: s.b, C: s.c,
		}
		s.seq.Store(l.deq + uint64(len(l.slots)))
		l.deq++
		l.append(ev)
	}
	if total := l.dropped.Load(); total > l.synced {
		fresh := total - l.synced
		l.synced = total
		l.counts[OverflowDropped].Add(1)
		l.append(Event{
			UnixNano: time.Now().UnixNano(),
			Type:     OverflowDropped,
			Shard:    -1,
			A:        fresh,
			B:        total,
		})
	}
}

// append assigns the next cursor and stores the event in the timeline ring.
// Callers hold l.mu.
func (l *Log) append(ev Event) {
	ev.Seq = l.nextSeq
	l.nextSeq++
	if len(l.timeline) < cap(l.timeline) {
		l.timeline = append(l.timeline, ev)
		return
	}
	l.timeline[(ev.Seq-1)%uint64(cap(l.timeline))] = ev
}

// Timeline drains the ring and returns up to max events with Seq > since,
// oldest first, plus the cursor to pass as the next call's since (the Seq of
// the last returned event, or since itself when nothing new). max ≤ 0 means
// no limit. Events older than the retained window are skipped — the next
// cursor still advances past them, so pagination never sticks.
func (l *Log) Timeline(since uint64, max int) ([]Event, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drain()
	last := l.nextSeq - 1 // newest retained cursor
	if last == 0 || since >= last {
		return nil, since
	}
	// Clamp the start to the retained window.
	first := uint64(1)
	if n := uint64(len(l.timeline)); last > n {
		first = last - n + 1
	}
	start := since + 1
	if start < first {
		start = first
	}
	count := int(last - start + 1)
	if max > 0 && count > max {
		count = max
	}
	out := make([]Event, count)
	for i := 0; i < count; i++ {
		seq := start + uint64(i)
		out[i] = l.timeline[(seq-1)%uint64(cap(l.timeline))]
	}
	return out, start + uint64(count) - 1
}

// Stats is a point-in-time summary of the log for snapshot embedding and
// Prometheus exposition.
type Stats struct {
	// Recorded is the total number of events that entered the timeline
	// (OverflowDropped synthetics included).
	Recorded uint64 `json:"recorded"`
	// Dropped is the exact count of emissions refused on a full ring.
	Dropped uint64 `json:"dropped"`
	// ByType maps stable type names to recorded counts (zero-count types
	// omitted).
	ByType map[string]uint64 `json:"by_type,omitempty"`
	// NextCursor is the cursor of the newest retained event — what a
	// follower would pass to Timeline to read only the future.
	NextCursor uint64 `json:"next_cursor"`
}

// Stats drains the ring and summarizes the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	l.drain()
	next := l.nextSeq - 1
	l.mu.Unlock()
	s := Stats{Dropped: l.dropped.Load(), NextCursor: next, ByType: make(map[string]uint64)}
	for i, c := range l.TypeCounts() {
		if c > 0 {
			s.ByType[Type(i).String()] = c
		}
		s.Recorded += c
	}
	return s
}
