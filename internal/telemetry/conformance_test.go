package telemetry_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/contention"
	"repro/internal/dist"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
	"repro/internal/telemetry"
	"repro/internal/workload"

	// Registry side effects: the roster registers itself from these
	// packages' init functions.
	_ "repro/internal/baseline"
	_ "repro/internal/core"
)

// genKeys generates n distinct universe keys deterministically from seed.
func genKeys(n int, seed uint64) []uint64 {
	r := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// TestRosterTelemetryConformance is the whole-registry live-vs-exact battery:
// every registered scheme, instrumented with an unsampled telemetry sink and
// driven by a deterministic weighted schedule, must report a live maxΦ̂·n
// within 5% of contention.Exact under the schedule's realized distribution —
// for the uniform drive and for a heavily skewed Zipf(1.2) drive alike.
// Deterministic schemes agree exactly; replicated ones carry the
// extreme-value noise of their random replica draws, which the query budget
// keeps under the tolerance.
func TestRosterTelemetryConformance(t *testing.T) {
	const seed = 20100613
	n, passes := 2048, 64
	if testing.Short() {
		n, passes = 512, 40
	}
	keys := genKeys(n, seed)
	queries := passes * n
	dists := []struct {
		name    string
		support []dist.Weighted
	}{
		{"uniform", dist.NewUniformSet(keys, "").Support()},
		{"zipf(1.2)", dist.NewZipf(keys, 1.2).Support()},
	}
	for _, name := range scheme.Names() {
		for _, q := range dists {
			t.Run(fmt.Sprintf("%s/%s", name, q.name), func(t *testing.T) {
				s, err := scheme.Build(name, keys, seed)
				if err != nil {
					t.Fatal(err)
				}
				drive, err := workload.NewWeightedDrive(q.support, queries, seed^0xc0)
				if err != nil {
					t.Fatal(err)
				}
				tel := telemetry.New(telemetry.Config{Sample: 1}, s.Table().Size(), s.N())
				s.Table().SetSink(tel)
				r := rng.New(seed ^ 0xc0)
				for i := 0; i < queries; i++ {
					if _, err := s.Contains(drive.Next(), r); err != nil {
						t.Fatal(err)
					}
					tel.ObserveQuery(true, false, 0)
				}
				s.Table().SetSink(nil)
				ex, err := contention.Exact(s, drive.Realized())
				if err != nil {
					t.Fatal(err)
				}
				drift := tel.Snapshot().CompareExact(ex)
				if math.Abs(drift.MaxPhiRatio-1) > 0.05 {
					t.Errorf("maxΦ̂ ratio %.4f outside [0.95, 1.05]: live %.4f exact %.4f (·n: %.1f vs %.1f)",
						drift.MaxPhiRatio, drift.MaxPhiLive, drift.MaxPhiExact,
						drift.MaxPhiLive*float64(n), drift.MaxPhiExact*float64(n))
				}
				if math.Abs(drift.ProbesRatio-1) > 0.05 {
					t.Errorf("probes/query ratio %.4f outside [0.95, 1.05]: live %.3f exact %.3f",
						drift.ProbesRatio, drift.ProbesLive, drift.ProbesExact)
				}
			})
		}
	}
}
