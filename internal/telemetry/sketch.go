package telemetry

import (
	"sort"
	"sync/atomic"
)

// StepCellSketch is a reservoir-sampled sketch of the live (step, cell)
// probe stream: which cells each query step actually lands on, the joint
// distribution the per-step and per-cell marginal counters cannot recover.
// The exact per-step × per-cell matrix is the sequential Recorder's job;
// this sketch is the always-on production estimate — O(stripes × slots)
// memory regardless of table size or step count.
//
// Each telemetry stripe owns one reservoir run with Vitter's Algorithm R:
// the first R offers fill the slots, after which the i-th offer replaces a
// random slot with probability R/i, so every recorded probe has (in the
// single-writer case) an equal chance of being retained. Offers land on the
// calling goroutine's stripe — the same handle discipline as the striped
// counters — so concurrent writers on different stripes never share a
// cache line. Writers that do share a stripe interleave their counter
// increments and slot stores; the reservoir then only approximates
// uniformity, which is fine for a hot-cell sketch (the hottest pairs
// dominate every stripe regardless of interleaving). Slot words are atomic
// so a concurrent Snapshot tears nothing.
//
// Snapshot merges the stripes and reports, per step, the hottest cells by
// retained-sample count — the "which cell does step t hammer" table the
// conflict-attribution style of performance debugging needs.
type StepCellSketch struct {
	stripes []sketchStripe
	mask    uint64
}

// sketchStripe is one stripe's reservoir. count is the number of offers the
// stripe has seen; slots hold packed (step, cell) words (+1, so 0 = empty).
type sketchStripe struct {
	count atomic.Uint64
	slots []atomic.Uint64
	_     [6]uint64 // keep adjacent stripes' count words off one line
}

// packStepCell packs a (step, cell) pair into one word: step in the high
// bits, cell in the low 40 (a 2^40-cell table is far beyond any build).
func packStepCell(step, cell int) uint64 {
	return uint64(step)<<40 | uint64(cell)&(1<<40-1)
}

// unpackStepCell reverses packStepCell.
func unpackStepCell(w uint64) (step, cell int) {
	return int(w >> 40), int(w & (1<<40 - 1))
}

// defaultSketchSlots is the per-stripe reservoir size when the
// configuration leaves SketchSlots zero.
const defaultSketchSlots = 256

// NewStepCellSketch creates a sketch with the given per-stripe reservoir
// size (≤ 0 selects the default 256) across the given stripe count
// (rounded up to a power of two).
func NewStepCellSketch(slots, stripes int) *StepCellSketch {
	if slots <= 0 {
		slots = defaultSketchSlots
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	s := &StepCellSketch{stripes: make([]sketchStripe, n), mask: uint64(n - 1)}
	for i := range s.stripes {
		s.stripes[i].slots = make([]atomic.Uint64, slots)
	}
	return s
}

// offer feeds one recorded probe into the calling goroutine's reservoir,
// advancing the handle's splitmix64 state for the replacement draw.
func (s *StepCellSketch) offer(h *handle, step, cell int) {
	st := &s.stripes[h.stripe&s.mask]
	n := st.count.Add(1) - 1
	r := uint64(len(st.slots))
	if n < r {
		st.slots[n].Store(packStepCell(step, cell) + 1)
		return
	}
	h.rng += 0x9e3779b97f4a7c15
	z := h.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	if j := (z ^ (z >> 31)) % (n + 1); j < r {
		st.slots[j].Store(packStepCell(step, cell) + 1)
	}
}

// StepCellView is one step's row of the hottest-cell table.
type StepCellView struct {
	// Step is the query step (StepCap aggregates everything beyond it).
	Step int `json:"step"`
	// Samples is how many retained reservoir samples landed on this step.
	Samples uint64 `json:"samples"`
	// Cells lists the step's hottest cells by retained-sample count,
	// hottest first.
	Cells []StepCellHot `json:"cells"`
}

// StepCellHot is one (cell, weight) entry of a step's hottest-cell row.
type StepCellHot struct {
	Cell int `json:"cell"`
	// Samples is the retained-sample count — an estimate proportional to
	// the cell's share of the step's probe mass.
	Samples uint64 `json:"samples"`
	// Share is Samples over the step's retained total.
	Share float64 `json:"share"`
}

// Offers returns the total number of probes offered to the sketch.
func (s *StepCellSketch) Offers() uint64 {
	var total uint64
	for i := range s.stripes {
		total += s.stripes[i].count.Load()
	}
	return total
}

// Snapshot merges every stripe's reservoir and returns the per-step
// hottest-cell table, steps ascending, at most topK cells per step.
func (s *StepCellSketch) Snapshot(topK int) []StepCellView {
	if topK <= 0 {
		topK = 3
	}
	// Count retained samples per (step, cell) pair across stripes.
	counts := make(map[uint64]uint64)
	for i := range s.stripes {
		st := &s.stripes[i]
		for j := range st.slots {
			if w := st.slots[j].Load(); w != 0 {
				counts[w-1]++
			}
		}
	}
	if len(counts) == 0 {
		return nil
	}
	perStep := make(map[int][]StepCellHot)
	stepTotals := make(map[int]uint64)
	for w, c := range counts {
		step, cell := unpackStepCell(w)
		perStep[step] = append(perStep[step], StepCellHot{Cell: cell, Samples: c})
		stepTotals[step] += c
	}
	steps := make([]int, 0, len(perStep))
	for step := range perStep {
		steps = append(steps, step)
	}
	sort.Ints(steps)
	out := make([]StepCellView, 0, len(steps))
	for _, step := range steps {
		cells := perStep[step]
		sort.Slice(cells, func(a, b int) bool {
			if cells[a].Samples != cells[b].Samples {
				return cells[a].Samples > cells[b].Samples
			}
			return cells[a].Cell < cells[b].Cell
		})
		if len(cells) > topK {
			cells = cells[:topK]
		}
		total := stepTotals[step]
		for i := range cells {
			cells[i].Share = float64(cells[i].Samples) / float64(total)
		}
		out = append(out, StepCellView{Step: step, Samples: total, Cells: cells})
	}
	return out
}
