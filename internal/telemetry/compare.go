package telemetry

import "repro/internal/contention"

// Drift is the result of diffing a live telemetry snapshot against the
// exact offline contention analysis of the same structure — the
// theory-vs-runtime self-check. All ratios are live/exact, so 1.0 means
// the running system behaves exactly as Definition 1 predicts.
type Drift struct {
	// MaxPhiLive is the snapshot's max_j Φ̂(j); MaxPhiExact is the
	// analytic max_j Φ(j) (ExactResult.MaxTotal) under the uniform
	// query distribution.
	MaxPhiLive  float64 `json:"max_phi_live"`
	MaxPhiExact float64 `json:"max_phi_exact"`
	MaxPhiRatio float64 `json:"max_phi_ratio"`

	// ProbesLive / ProbesExact compare probes per query.
	ProbesLive  float64 `json:"probes_per_query_live"`
	ProbesExact float64 `json:"probes_per_query_exact"`
	ProbesRatio float64 `json:"probes_ratio"`

	// StepMassMaxDiff is the L∞ distance between live and exact per-step
	// probe masses over the steps both report.
	StepMassMaxDiff float64 `json:"step_mass_max_diff"`
}

// CompareExact diffs the live snapshot against an exact analysis computed
// by contention.Exact (or shard.ComposeExact) for the same structure and
// the query distribution the live workload is believed to follow. A ratio
// far from 1.0 means the live workload's effective query distribution has
// drifted from the analyzed one — e.g. key skew concentrating probe mass —
// which is precisely the condition worth alerting on.
//
// The live MaxPhi is a per-cell *total* (Σ_t over steps), so it is
// compared against ExactResult.MaxTotal, the total contention of
// Definition 1.
func (s Snapshot) CompareExact(ex contention.ExactResult) Drift {
	return s.CompareExactSteps(ex, 0)
}

// CompareExactSteps is CompareExact restricted to live steps below steps —
// the comparison a dynamic dictionary needs. Its live counters cover the
// whole epoch (the update buffer's probes land at steps offset by the
// static snapshot's MaxProbes), but the exact analysis covers only the
// static snapshot; diffing the buffer steps against an analysis that never
// modeled them previously reported a spurious step-mass gap of ≈ 1.0 from
// the always-executed buffer probes even when the buffer was empty and the
// static masses agreed exactly. Passing the snapshot's MaxProbes as steps
// confines both the step-mass L∞ and the probes-per-query ratio to the
// analyzed range. steps ≤ 0 compares everything (the static behaviour).
func (s Snapshot) CompareExactSteps(ex contention.ExactResult, steps int) Drift {
	d := Drift{
		MaxPhiLive:  s.MaxPhi,
		MaxPhiExact: ex.MaxTotal,
		ProbesLive:  s.ProbesPerQuery,
		ProbesExact: ex.Probes,
	}
	liveSteps, exactSteps := len(s.StepMass), len(ex.StepMass)
	if steps > 0 {
		if liveSteps > steps {
			liveSteps = steps
		}
		if exactSteps > steps {
			exactSteps = steps
		}
		// StepMass[t] is the probability a query executes step t, so the
		// in-range sum is the expected probes per query within the range.
		d.ProbesLive = 0
		for _, m := range s.StepMass[:liveSteps] {
			d.ProbesLive += m
		}
	}
	if d.MaxPhiExact > 0 {
		d.MaxPhiRatio = d.MaxPhiLive / d.MaxPhiExact
	}
	if d.ProbesExact > 0 {
		d.ProbesRatio = d.ProbesLive / d.ProbesExact
	}
	for t, live := range s.StepMass[:liveSteps] {
		exact := 0.0
		if t < exactSteps {
			exact = ex.StepMass[t]
		}
		diff := live - exact
		if diff < 0 {
			diff = -diff
		}
		if diff > d.StepMassMaxDiff {
			d.StepMassMaxDiff = diff
		}
	}
	for t := liveSteps; t < exactSteps; t++ {
		if ex.StepMass[t] > d.StepMassMaxDiff {
			d.StepMassMaxDiff = ex.StepMass[t]
		}
	}
	return d
}
