package telemetry

import "repro/internal/contention"

// Drift is the result of diffing a live telemetry snapshot against the
// exact offline contention analysis of the same structure — the
// theory-vs-runtime self-check. All ratios are live/exact, so 1.0 means
// the running system behaves exactly as Definition 1 predicts.
type Drift struct {
	// MaxPhiLive is the snapshot's max_j Φ̂(j); MaxPhiExact is the
	// analytic max_j Φ(j) (ExactResult.MaxTotal) under the uniform
	// query distribution.
	MaxPhiLive  float64 `json:"max_phi_live"`
	MaxPhiExact float64 `json:"max_phi_exact"`
	MaxPhiRatio float64 `json:"max_phi_ratio"`

	// ProbesLive / ProbesExact compare probes per query.
	ProbesLive  float64 `json:"probes_per_query_live"`
	ProbesExact float64 `json:"probes_per_query_exact"`
	ProbesRatio float64 `json:"probes_ratio"`

	// StepMassMaxDiff is the L∞ distance between live and exact per-step
	// probe masses over the steps both report.
	StepMassMaxDiff float64 `json:"step_mass_max_diff"`
}

// CompareExact diffs the live snapshot against an exact analysis computed
// by contention.Exact (or shard.ComposeExact) for the same structure and
// the query distribution the live workload is believed to follow. A ratio
// far from 1.0 means the live workload's effective query distribution has
// drifted from the analyzed one — e.g. key skew concentrating probe mass —
// which is precisely the condition worth alerting on.
//
// The live MaxPhi is a per-cell *total* (Σ_t over steps), so it is
// compared against ExactResult.MaxTotal, the total contention of
// Definition 1.
func (s Snapshot) CompareExact(ex contention.ExactResult) Drift {
	d := Drift{
		MaxPhiLive:  s.MaxPhi,
		MaxPhiExact: ex.MaxTotal,
		ProbesLive:  s.ProbesPerQuery,
		ProbesExact: ex.Probes,
	}
	if d.MaxPhiExact > 0 {
		d.MaxPhiRatio = d.MaxPhiLive / d.MaxPhiExact
	}
	if d.ProbesExact > 0 {
		d.ProbesRatio = d.ProbesLive / d.ProbesExact
	}
	for t, live := range s.StepMass {
		exact := 0.0
		if t < len(ex.StepMass) {
			exact = ex.StepMass[t]
		}
		diff := live - exact
		if diff < 0 {
			diff = -diff
		}
		if diff > d.StepMassMaxDiff {
			d.StepMassMaxDiff = diff
		}
	}
	for t := len(s.StepMass); t < len(ex.StepMass); t++ {
		if ex.StepMass[t] > d.StepMassMaxDiff {
			d.StepMassMaxDiff = ex.StepMass[t]
		}
	}
	return d
}
