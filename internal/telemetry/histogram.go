package telemetry

import (
	"math/bits"

	"repro/internal/cellprobe"
)

// histBuckets is the bucket count of a LogHistogram: one bucket per
// power-of-two magnitude of a uint64 (bits.Len64 ∈ [0, 64]).
const histBuckets = 65

// LogHistogram is a concurrent latency histogram with power-of-two bucket
// boundaries: an observation v lands in bucket bits.Len64(v), i.e. bucket
// k covers [2^(k-1), 2^k). Counts land on a striped vector and the running
// sum on a striped counter, so concurrent observers never contend.
type LogHistogram struct {
	counts *cellprobe.StripedVector
	sum    *cellprobe.StripedCounter
}

// NewLogHistogram creates an empty histogram.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{
		counts: cellprobe.NewStripedVector(histBuckets, 0),
		sum:    cellprobe.NewStripedCounter(),
	}
}

// Observe records one value (typically a latency in nanoseconds).
func (h *LogHistogram) Observe(v uint64) {
	h.counts.Add(bits.Len64(v))
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time read of a LogHistogram. Buckets[k]
// counts observations in [2^(k-1), 2^k); trailing empty buckets are
// trimmed.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     uint64   `json:"p50"`
	P99     uint64   `json:"p99"`
	P999    uint64   `json:"p999"`
	Max     uint64   `json:"max"` // upper bound of the highest non-empty bucket
	Buckets []uint64 `json:"buckets,omitempty"`
}

// BucketUpper returns the exclusive upper bound of bucket k, 2^k
// (saturating at MaxUint64 for the last bucket).
func BucketUpper(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << k
}

// Snapshot sweeps the histogram. Quantiles are upper bounds of the bucket
// containing the quantile — conservative by at most a factor of two, which
// is the resolution a log₂ histogram buys.
func (h *LogHistogram) Snapshot() HistogramSnapshot {
	raw := h.counts.Sums()
	s := HistogramSnapshot{Sum: h.sum.Sum()}
	last := -1
	for k, c := range raw {
		s.Count += c
		if c > 0 {
			last = k
		}
	}
	if last < 0 {
		return s
	}
	s.Buckets = raw[:last+1]
	s.fillDerived()
	return s
}

// fillDerived recomputes every derived field (mean, max, quantiles) from
// Count, Sum, and Buckets. Buckets must already be trimmed to the last
// non-empty bucket and Count must equal their sum.
func (s *HistogramSnapshot) fillDerived() {
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.Max = BucketUpper(len(s.Buckets) - 1)
	s.P50 = bucketQuantile(s.Buckets, s.Count, 0.50)
	s.P99 = bucketQuantile(s.Buckets, s.Count, 0.99)
	s.P999 = bucketQuantile(s.Buckets, s.Count, 0.999)
}

// MergeHistogramSnapshots folds any number of snapshots into one aggregate:
// bucket-wise count sums with the derived fields (mean, max, quantiles)
// recomputed over the merged buckets. Because the buckets are plain counts,
// merging per-worker snapshots is exactly equivalent to having observed
// every value on a single histogram — the aggregation path an open-loop
// load generator uses to combine its workers' latency records.
func MergeHistogramSnapshots(snaps ...HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	var buckets []uint64
	for _, s := range snaps {
		out.Count += s.Count
		out.Sum += s.Sum
		for k, c := range s.Buckets {
			if c == 0 {
				continue
			}
			for len(buckets) <= k {
				buckets = append(buckets, 0)
			}
			buckets[k] += c
		}
	}
	last := -1
	for k, c := range buckets {
		if c > 0 {
			last = k
		}
	}
	if last < 0 {
		return HistogramSnapshot{Count: out.Count, Sum: out.Sum}
	}
	out.Buckets = buckets[:last+1]
	out.fillDerived()
	return out
}

// bucketQuantile returns the upper bound of the bucket holding the
// q-quantile of count observations spread over buckets.
func bucketQuantile(buckets []uint64, count uint64, q float64) uint64 {
	target := uint64(q * float64(count))
	if target >= count {
		target = count - 1
	}
	var cum uint64
	for k, c := range buckets {
		cum += c
		if cum > target {
			return BucketUpper(k)
		}
	}
	return BucketUpper(len(buckets) - 1)
}
