package telemetry

import (
	"math"
	"sync"
	"testing"

	"repro/internal/contention"
)

func TestSnapshotCounts(t *testing.T) {
	tel := New(Config{TopK: 3}, 10, 100)
	// 4 queries: cell 7 probed at step 0 every time, cell 3 at step 1
	// half the time.
	for q := 0; q < 4; q++ {
		tel.ProbeObserved(0, 7)
		if q%2 == 0 {
			tel.ProbeObserved(1, 3)
		}
		tel.ObserveQuery(q%2 == 0, false, 100)
	}
	s := tel.Snapshot()
	if s.Queries != 4 || s.Hits != 2 || s.Misses != 2 || s.Errors != 0 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Probes != 6 {
		t.Fatalf("Probes = %d, want 6", s.Probes)
	}
	if got := s.ProbesPerQuery; got != 1.5 {
		t.Fatalf("ProbesPerQuery = %v, want 1.5", got)
	}
	if s.MaxPhi != 1.0 || s.MaxPhiCell != 7 {
		t.Fatalf("MaxPhi = %v at cell %d, want 1.0 at 7", s.MaxPhi, s.MaxPhiCell)
	}
	if s.MaxPhiN != 100.0 {
		t.Fatalf("MaxPhiN = %v, want 100", s.MaxPhiN)
	}
	if len(s.StepMass) != 2 || s.StepMass[0] != 1.0 || s.StepMass[1] != 0.5 {
		t.Fatalf("StepMass = %v, want [1 0.5]", s.StepMass)
	}
	if len(s.TopCells) != 2 || s.TopCells[0].Cell != 7 || s.TopCells[1].Cell != 3 {
		t.Fatalf("TopCells = %+v", s.TopCells)
	}
}

func TestStepCapOverflow(t *testing.T) {
	tel := New(Config{StepCap: 4}, 0, 1)
	tel.ProbeObserved(3, 0)
	tel.ProbeObserved(4, 0)
	tel.ProbeObserved(1000, 0)
	tel.ObserveQuery(true, false, 1)
	s := tel.Snapshot()
	if s.Probes != 3 {
		t.Fatalf("Probes = %d, want 3", s.Probes)
	}
	// Steps ≥ StepCap aggregate into the overflow slot.
	if len(s.StepMass) != 5 || s.StepMass[4] != 2.0 || s.StepMass[3] != 1.0 {
		t.Fatalf("StepMass = %v", s.StepMass)
	}
}

func TestSamplingScalesUnbiased(t *testing.T) {
	tel := New(Config{Sample: 8}, 4, 16)
	if tel.Sample() != 8 {
		t.Fatalf("Sample = %d, want 8", tel.Sample())
	}
	const probes = 200000
	for i := 0; i < probes; i++ {
		tel.ProbeObserved(0, i%4)
	}
	tel.ObserveQuery(true, false, 1)
	s := tel.Snapshot()
	// Bernoulli(1/8) over 200k probes: the scaled estimate concentrates
	// within a few percent of the truth.
	if ratio := float64(s.Probes) / probes; math.Abs(ratio-1) > 0.10 {
		t.Fatalf("scaled probe estimate %d off by %.1f%% from %d", s.Probes, 100*(ratio-1), probes)
	}
	// Sampling to the nearest power of two.
	if got := New(Config{Sample: 5}, 0, 1).Sample(); got != 8 {
		t.Fatalf("Sample 5 rounded to %d, want 8", got)
	}
	if got := New(Config{}, 0, 1).Sample(); got != 1 {
		t.Fatalf("zero config Sample = %d, want 1", got)
	}
}

func TestRanges(t *testing.T) {
	tel := New(Config{Ranges: []Range{
		{Name: "a", Start: 0, Cells: 4},
		{Name: "b", Start: 4, Cells: 4},
	}}, 8, 10)
	for i := 0; i < 6; i++ {
		tel.ProbeObserved(0, 1)
	}
	tel.ProbeObserved(0, 5)
	tel.ProbeObserved(1, 5)
	tel.ObserveQuery(true, false, 1)
	s := tel.Snapshot()
	if len(s.Ranges) != 2 {
		t.Fatalf("Ranges = %+v", s.Ranges)
	}
	a, b := s.Ranges[0], s.Ranges[1]
	if a.Probes != 6 || b.Probes != 2 {
		t.Fatalf("range probes a=%d b=%d, want 6 and 2", a.Probes, b.Probes)
	}
	if math.Abs(a.Share-0.75) > 1e-12 || math.Abs(b.Share-0.25) > 1e-12 {
		t.Fatalf("range shares a=%v b=%v", a.Share, b.Share)
	}
	if a.MaxPhi != 6 || b.MaxPhi != 2 {
		t.Fatalf("range maxΦ̂ a=%v b=%v (1 query)", a.MaxPhi, b.MaxPhi)
	}
}

func TestRangesRequireCells(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ranges with cells=0 accepted")
		}
	}()
	New(Config{Ranges: []Range{{Name: "x", Start: 0, Cells: 1}}}, 0, 1)
}

func TestObserveBatch(t *testing.T) {
	tel := New(Config{}, 0, 1)
	tel.ObserveBatch(10, 7, false, 500)
	tel.ObserveBatch(5, 0, true, 100)
	s := tel.Snapshot()
	if s.Queries != 15 || s.Hits != 7 || s.Misses != 3 || s.Errors != 1 {
		t.Fatalf("batch counts: %+v", s)
	}
	if s.BatchLatency.Count != 2 {
		t.Fatalf("batch latency count = %d, want 2", s.BatchLatency.Count)
	}
}

func TestTopK(t *testing.T) {
	counts := []uint64{0, 5, 2, 9, 9, 1}
	top := topK(counts, 3)
	if len(top) != 3 {
		t.Fatalf("topK = %+v", top)
	}
	// Ties break toward the lower index.
	if top[0].idx != 3 || top[1].idx != 4 || top[2].idx != 1 {
		t.Fatalf("topK order = %+v", top)
	}
	if got := topK([]uint64{0, 0}, 3); len(got) != 0 {
		t.Fatalf("all-zero topK = %+v", got)
	}
	if got := topK(counts, 0); got != nil {
		t.Fatalf("k=0 topK = %+v", got)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Trace(QueryTrace{KeyHash: uint64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	recent := r.Recent(0)
	if len(recent) != 3 || recent[0].KeyHash != 5 || recent[1].KeyHash != 4 || recent[2].KeyHash != 3 {
		t.Fatalf("Recent = %+v", recent)
	}
	if two := r.Recent(2); len(two) != 2 || two[0].KeyHash != 5 {
		t.Fatalf("Recent(2) = %+v", two)
	}
}

func TestTracerSampling(t *testing.T) {
	// TraceEvery 0 disables tracing entirely.
	off := New(Config{}, 0, 1)
	if off.ShouldTrace() {
		t.Fatal("tracing enabled without TraceEvery")
	}
	if off.Traces() != nil {
		t.Fatal("trace ring exists without TraceEvery")
	}
	// TraceEvery 1 traces every query into the internal ring.
	every := New(Config{TraceEvery: 1, TraceBuffer: 8}, 0, 1)
	for i := 0; i < 5; i++ {
		if !every.ShouldTrace() {
			t.Fatal("TraceEvery=1 skipped a query")
		}
		every.Emit(QueryTrace{KeyHash: uint64(i)})
	}
	if got := len(every.Traces()); got != 5 {
		t.Fatalf("ring holds %d traces, want 5", got)
	}
	// A custom tracer replaces the ring.
	var mu sync.Mutex
	n := 0
	custom := New(Config{TraceEvery: 1, Tracer: tracerFunc(func(QueryTrace) {
		mu.Lock()
		n++
		mu.Unlock()
	})}, 0, 1)
	custom.Emit(QueryTrace{})
	if n != 1 {
		t.Fatalf("custom tracer saw %d traces, want 1", n)
	}
	if custom.Traces() != nil {
		t.Fatal("internal ring populated despite custom tracer")
	}
	// TraceEvery k samples roughly 1/k of queries.
	sampled := New(Config{TraceEvery: 8}, 0, 1)
	hits := 0
	const trials = 64000
	for i := 0; i < trials; i++ {
		if sampled.ShouldTrace() {
			hits++
		}
	}
	if ratio := float64(hits) / trials * 8; math.Abs(ratio-1) > 0.15 {
		t.Fatalf("TraceEvery=8 sampled %d/%d (%.2fx expected)", hits, trials, ratio)
	}
}

type tracerFunc func(QueryTrace)

func (f tracerFunc) Trace(qt QueryTrace) { f(qt) }

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram()
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1000 → bucket 10.
	for _, v := range []uint64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1006 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if len(s.Buckets) != 11 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[10] != 1 {
		t.Fatalf("bucket placement = %v", s.Buckets)
	}
	if s.Max != 1024 {
		t.Fatalf("Max = %d, want 1024", s.Max)
	}
	// Median of {0,1,2,3,1000}: the 3rd observation lies in bucket 2 → upper bound 4.
	if s.P50 != 4 {
		t.Fatalf("P50 = %d, want 4", s.P50)
	}
	if s.P99 != 1024 {
		t.Fatalf("P99 = %d, want 1024", s.P99)
	}
	if math.Abs(s.Mean-1006.0/5) > 1e-9 {
		t.Fatalf("Mean = %v", s.Mean)
	}
}

func TestDynamicMetrics(t *testing.T) {
	tel := New(Config{}, 0, 1)
	m0 := tel.DynamicShard(0)
	m2 := tel.DynamicShard(2)
	if tel.DynamicShard(0) != m0 {
		t.Fatal("DynamicShard not stable")
	}
	m0.RebuildDone(100, 5000)
	m0.RebuildDone(200, 7000)
	m0.RebuildFailed(300)
	m0.WriterPaused(12345)
	m0.SetDeltaDepth(5)
	m0.SetDeltaDepth(9)
	m0.SetDeltaDepth(2)
	m2.RebuildDone(50, 1000)
	s := tel.Snapshot()
	if len(s.Dynamic) != 3 {
		t.Fatalf("dynamic shards = %d, want 3", len(s.Dynamic))
	}
	d0 := s.Dynamic[0]
	if d0.Rebuilds != 2 || d0.RebuildKeys != 300 || d0.RebuildFails != 1 {
		t.Fatalf("shard0 = %+v", d0)
	}
	if d0.DeltaDepth != 2 || d0.DeltaHighWater != 9 {
		t.Fatalf("delta depth = %d high %d", d0.DeltaDepth, d0.DeltaHighWater)
	}
	if d0.RebuildNs.Count != 3 || d0.WriterPauseNs.Count != 1 {
		t.Fatalf("histograms = %+v", d0)
	}
	if s.Dynamic[1].Rebuilds != 0 || s.Dynamic[2].Rebuilds != 1 {
		t.Fatalf("shards 1/2 = %+v", s.Dynamic[1:])
	}
}

func TestCompareExact(t *testing.T) {
	s := Snapshot{
		MaxPhi:         0.002,
		ProbesPerQuery: 14,
		StepMass:       []float64{1, 1, 0.5},
	}
	ex := contention.ExactResult{
		MaxTotal: 0.001,
		Probes:   7,
		StepMass: []float64{1, 0.8, 0.5, 0.25},
	}
	d := s.CompareExact(ex)
	if d.MaxPhiRatio != 2.0 || d.ProbesRatio != 2.0 {
		t.Fatalf("ratios = %+v", d)
	}
	// L∞ over the union of steps: |1-0.8| at step 1 vs the unmatched 0.25.
	if math.Abs(d.StepMassMaxDiff-0.25) > 1e-12 {
		t.Fatalf("StepMassMaxDiff = %v, want 0.25", d.StepMassMaxDiff)
	}
	// Zero exact values leave the ratios at zero rather than dividing.
	if z := (Snapshot{}).CompareExact(contention.ExactResult{}); z.MaxPhiRatio != 0 || z.ProbesRatio != 0 {
		t.Fatalf("zero compare = %+v", z)
	}
}

// TestConcurrentProbes drives ProbeObserved and ObserveQuery from many
// goroutines; the snapshot must account every probe exactly (sampling off).
func TestConcurrentProbes(t *testing.T) {
	tel := New(Config{TraceEvery: 4, TopK: 5}, 64, 1000)
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tel.ProbeObserved(i%7, (g*perG+i)%64)
				tel.ObserveQuery(i%2 == 0, false, int64(i%1000))
				if tel.ShouldTrace() {
					tel.Emit(QueryTrace{KeyHash: uint64(i)})
				}
			}
		}(g)
	}
	wg.Wait()
	s := tel.Snapshot()
	if want := uint64(goroutines * perG); s.Probes != want || s.Queries != want {
		t.Fatalf("probes %d queries %d, want %d each", s.Probes, s.Queries, want)
	}
	if s.Latency.Count != uint64(goroutines*perG) {
		t.Fatalf("latency count %d", s.Latency.Count)
	}
}
