package telemetry

import "sync"

// QueryTrace is one sampled membership query: which cells it probed at
// which steps, what it answered, and how long it took. Cell indices are
// flat indices into the dictionary's composite table (for sharded
// dictionaries the facade translates shard-local indices by the shard's
// cell offset; the routing probe itself and dynamic-buffer probes are not
// captured — they have no stable flat index across epochs).
type QueryTrace struct {
	// KeyHash is a hash of the queried key, not the key itself — traces
	// may be exposed on a debug endpoint and must not leak the keyset.
	KeyHash uint64 `json:"key_hash"`
	// Shard is the shard that answered (0 for unsharded dictionaries).
	Shard int `json:"shard"`
	// Steps is the number of probe steps the query executed.
	Steps int `json:"steps"`
	// Cells lists the flat cell index probed at each step.
	Cells []int32 `json:"cells"`
	// Found is the query's answer; Err marks a corrupt-table failure.
	Found bool `json:"found"`
	Err   bool `json:"err,omitempty"`
	// LatencyNs is the wall-clock duration of the query in nanoseconds.
	LatencyNs int64 `json:"latency_ns"`
	// UnixNano timestamps trace completion.
	UnixNano int64 `json:"unix_nano"`
}

// Tracer receives sampled query traces. Implementations must be safe for
// concurrent use; Trace is called at most once per sampled query, off the
// probe hot path (after the query completes).
type Tracer interface {
	Trace(QueryTrace)
}

// Ring is the default Tracer: a fixed-capacity ring buffer of the most
// recent traces, overwriting oldest-first. A single mutex guards it — at a
// 1-in-TraceEvery sampling rate the lock sees a small fraction of query
// traffic, and each critical section is a few word copies.
type Ring struct {
	mu    sync.Mutex
	buf   []QueryTrace
	next  int // next write position
	count int // traces ever written, saturating at len(buf)
}

// NewRing creates a ring holding the last capacity traces.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("telemetry: ring capacity must be ≥ 1")
	}
	return &Ring{buf: make([]QueryTrace, capacity)}
}

// Trace implements Tracer.
func (r *Ring) Trace(qt QueryTrace) {
	r.mu.Lock()
	r.buf[r.next] = qt
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// Recent returns up to max traces, newest first (max ≤ 0 means all held).
func (r *Ring) Recent(max int) []QueryTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if max > 0 && max < n {
		n = max
	}
	out := make([]QueryTrace, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(r.next-1-i+len(r.buf)*2)%len(r.buf)]
	}
	return out
}

// Len returns the number of traces currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
