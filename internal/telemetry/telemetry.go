// Package telemetry is the live observability subsystem of the
// low-contention dictionary: an always-cheap, opt-in layer that measures at
// runtime the quantity the rest of the repository computes offline — the
// per-cell contention Φ of Definition 1 — together with probe traces,
// query-latency histograms and rebuild metrics for the dynamic path.
//
// # Design
//
// A Telemetry value implements cellprobe.ProbeSink and is installed on a
// dictionary's table (facade option lcds.WithTelemetry). Every recorded
// probe lands on cache-line-striped counters (cellprobe.StripedVector, the
// vector generalization of StripedCounter): a per-step vector for the probe
// mass of each query step and, for static dictionaries, a per-cell vector
// for the empirical per-cell probe mass Φ̂(j). The counters inherit the
// structure's own contention profile — the hottest counter receives exactly
// the probe mass of the hottest cell, which is the O(1/n) the paper
// guarantees — and the striping removes the residual false sharing between
// adjacent cells' counters.
//
// When telemetry is *off* nothing is installed: the query hot path pays one
// predictable nil-check per probe (the same discipline as the pre-existing
// Recorder and trace hooks) and performs zero atomic writes and zero
// allocations. When on, optional 1-in-k probe sampling (Config.Sample)
// divides the counting cost; Snapshot scales the estimates back up.
//
// # Self-check against theory
//
// Snapshot returns the empirical maxΦ̂·n, per-step probe mass and probes per
// query; Snapshot.CompareExact diffs those against a contention.ExactResult
// so the drift between the analytic prediction and the live workload is
// itself a monitored signal (experiment A8, and the lcds_phi_* metrics of
// cmd/lcds-monitor).
//
// Φ̂(j) here is the per-cell *total* probe mass Σ_t Φ̂_t(j), the contention
// of Definition 1; compare it with ExactResult.MaxTotal. (The full per-step
// × per-cell matrix remains the sequential Recorder's job — keeping the
// live counters to the two marginals is what makes them cheap enough to
// leave on in production.)
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cellprobe"
	"repro/internal/telemetry/events"
)

// Config configures a Telemetry instance. The zero value is valid: count
// every probe, no tracing, default capacities.
type Config struct {
	// Sample records 1 in Sample probes (rounded up to a power of two);
	// 0 or 1 records every probe. Snapshot scales counts back up by the
	// realized sampling factor, so estimates stay unbiased.
	Sample int
	// Adaptive, when non-nil, makes the sampling factor self-tuning: a
	// feedback controller (AdaptTick) steers the recorded probe rate toward
	// AdaptiveConfig.TargetProbesPerSec, with Sample as the initial factor.
	// Recorded probes are accumulated pre-scaled by the factor in force, so
	// estimates stay unbiased across factor changes.
	Adaptive *AdaptiveConfig
	// TraceEvery traces roughly 1 in TraceEvery queries into the ring
	// buffer (per-goroutine sampled, so concurrent tracers never contend
	// on a shared sequence counter); 0 disables query tracing.
	TraceEvery int
	// TraceBuffer is the trace ring capacity (default 256).
	TraceBuffer int
	// Tracer, when non-nil, receives every sampled QueryTrace instead of
	// the internal ring buffer.
	Tracer Tracer
	// TopK is how many hottest cells Snapshot reports (default 10).
	TopK int
	// StepCap bounds the per-step vector; probes at steps ≥ StepCap are
	// accumulated in the final overflow slot (default 64, far above any
	// scheme's MaxProbes; open-addressing chains can exceed it).
	StepCap int
	// Ranges, when non-empty, makes Snapshot report per-range probe mass
	// and maxΦ̂ — the facade uses it for per-shard views of the sharded
	// composite. Ranges require per-cell accounting (cells > 0 in New).
	Ranges []Range
	// Events, when non-nil, is the flight recorder this instance emits into
	// and reports from — the facade shares one log between the telemetry
	// layer and the dynamic dictionary's rebuild path. Nil creates a
	// private log with default capacities: the recorder is always on.
	Events *events.Log
	// SketchSlots sizes each per-stripe reservoir of the (step, cell)
	// sketch (default 256). The sketch needs per-cell accounting, so it
	// exists only when cells > 0 in New; set SketchSlots < 0 to disable it
	// there too.
	SketchSlots int
	// SketchTopK is how many hottest cells the snapshot reports per step
	// (default 3).
	SketchTopK int
}

// Range names a span of flat cell indices for per-range snapshot views.
type Range struct {
	Name  string `json:"name"`
	Start int    `json:"start"`
	Cells int    `json:"cells"`
}

// handle is the per-goroutine state of the probe sink: the stripe identity
// shared by every striped vector the sink charges, and a splitmix64 state
// for the sampling decision. Cached through a sync.Pool exactly like
// StripedCounter's index handles.
type handle struct {
	stripe uint64
	rng    uint64
}

// Telemetry is one dictionary's live telemetry state. All methods are safe
// for concurrent use; the probe path (ProbeObserved) and the query path
// (ObserveQuery, ShouldTrace, Emit) are lock-free.
type Telemetry struct {
	cfg        Config
	n          int // stored keys, for the maxΦ̂·n headline
	cells      int // 0 = cell-agnostic (dynamic dictionaries)
	sampleMask uint64
	traceMask  uint64
	stepCap    int

	// Adaptive-sampling state: the controller retunes curMask out-of-band
	// (AdaptTick) while the probe hot path loads it with one atomic read.
	adaptive  bool
	adapt     AdaptiveConfig
	curMask   atomic.Uint64
	recorded  *cellprobe.StripedVector // post-sampling probe count (length 1)
	adaptMu   sync.Mutex
	adaptLast uint64 // recorded total at the previous tick

	steps   *cellprobe.StripedVector // per-step probe counts (slot stepCap = overflow)
	perCell *cellprobe.StripedVector // per-cell probe counts, nil when cells == 0

	queries *cellprobe.StripedCounter
	hits    *cellprobe.StripedCounter
	misses  *cellprobe.StripedCounter
	errors  *cellprobe.StripedCounter

	latency      *LogHistogram // single-query Contains latency, ns
	batchLatency *LogHistogram // whole-batch ContainsBatch latency, ns

	ring   *Ring
	tracer Tracer
	events *events.Log
	sketch *StepCellSketch // nil in cell-agnostic mode or when disabled

	pool sync.Pool // *handle

	dynMu sync.Mutex
	dyn   []*DynamicMetrics

	started time.Time
}

var _ cellprobe.ProbeSink = (*Telemetry)(nil)

// ceilPow2 rounds v up to a power of two (v ≤ 1 → 1).
func ceilPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// New creates a telemetry instance for a dictionary of n keys whose table
// has the given cell count. cells == 0 selects cell-agnostic mode (per-step
// masses, latencies and counters only — what the dynamic dictionary uses,
// since its tables are replaced on every rebuild).
func New(cfg Config, cells, n int) *Telemetry {
	if cfg.Sample < 0 {
		panic(fmt.Sprintf("telemetry: negative sample %d", cfg.Sample))
	}
	sample := ceilPow2(cfg.Sample)
	trace := 0
	if cfg.TraceEvery > 0 {
		trace = ceilPow2(cfg.TraceEvery)
	}
	if cfg.TraceBuffer <= 0 {
		cfg.TraceBuffer = 256
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.StepCap <= 0 {
		cfg.StepCap = 64
	}
	if len(cfg.Ranges) > 0 && cells == 0 {
		panic("telemetry: Ranges require per-cell accounting (cells > 0)")
	}
	for _, r := range cfg.Ranges {
		if r.Start < 0 || r.Cells < 1 || r.Start+r.Cells > cells {
			panic(fmt.Sprintf("telemetry: range %q [%d, %d) outside [0, %d)", r.Name, r.Start, r.Start+r.Cells, cells))
		}
	}
	stripes := cellprobe.DefaultVectorStripes()
	t := &Telemetry{
		cfg:          cfg,
		n:            n,
		cells:        cells,
		sampleMask:   uint64(sample - 1),
		traceMask:    uint64(trace - 1),
		stepCap:      cfg.StepCap,
		steps:        cellprobe.NewStripedVector(cfg.StepCap+1, stripes),
		queries:      cellprobe.NewStripedCounter(),
		hits:         cellprobe.NewStripedCounter(),
		misses:       cellprobe.NewStripedCounter(),
		errors:       cellprobe.NewStripedCounter(),
		latency:      NewLogHistogram(),
		batchLatency: NewLogHistogram(),
		tracer:       cfg.Tracer,
		started:      time.Now(),
	}
	t.events = cfg.Events
	if t.events == nil {
		t.events = events.NewLog(0, 0)
	}
	if cells > 0 {
		t.perCell = cellprobe.NewStripedVector(cells, stripes)
		if cfg.SketchSlots >= 0 {
			t.sketch = NewStepCellSketch(cfg.SketchSlots, stripes)
		}
	}
	if cfg.Adaptive != nil {
		ac, err := cfg.Adaptive.withDefaults()
		if err != nil {
			panic(err.Error())
		}
		k := sample
		if k < ac.MinSample {
			k = ac.MinSample
		}
		if k > ac.MaxSample {
			k = ac.MaxSample
		}
		t.adaptive = true
		t.adapt = ac
		t.curMask.Store(uint64(k - 1))
		t.recorded = cellprobe.NewStripedVector(1, stripes)
	}
	if trace > 0 && t.tracer == nil {
		t.ring = NewRing(cfg.TraceBuffer)
		t.tracer = t.ring
	}
	var next uint64
	var mu sync.Mutex
	t.pool.New = func() any {
		mu.Lock()
		next++
		id := next - 1
		mu.Unlock()
		// Seed the sampling stream from the stripe identity so stripes
		// sample decorrelated probe subsets.
		return &handle{stripe: id, rng: splitmix64(id ^ 0x9e3779b97f4a7c15)}
	}
	return t
}

// Sample returns the probe sampling factor k currently in force (a power of
// two ≥ 1; controller-tuned when the configuration is adaptive).
func (t *Telemetry) Sample() int {
	if t.adaptive {
		return int(t.curMask.Load()) + 1
	}
	return int(t.sampleMask) + 1
}

// Cells returns the per-cell accounting width (0 in cell-agnostic mode).
func (t *Telemetry) Cells() int { return t.cells }

// N returns the stored-key count the maxΦ̂·n headline normalizes by.
func (t *Telemetry) N() int { return t.n }

// splitmix64 advances one splitmix64 state and returns the mixed output.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ProbeObserved implements cellprobe.ProbeSink: one call per recorded probe
// from however many goroutines are querying. It charges the per-step and
// (when enabled) per-cell striped vectors on the calling goroutine's
// stripe, after the 1-in-k sampling decision.
func (t *Telemetry) ProbeObserved(step, cell int) {
	h := t.pool.Get().(*handle)
	mask := t.sampleMask
	if t.adaptive {
		mask = t.curMask.Load()
	}
	if mask != 0 {
		h.rng += 0x9e3779b97f4a7c15
		z := h.rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		if (z^(z>>31))&mask != 0 {
			t.pool.Put(h)
			return
		}
	}
	if step > t.stepCap {
		step = t.stepCap
	}
	if t.adaptive {
		// Accumulate pre-scaled by the factor in force *now*: the estimate
		// stays unbiased across retunes and Snapshot never rescales.
		w := mask + 1
		t.recorded.AddStripe(h.stripe, 0)
		t.steps.AddStripeN(h.stripe, step, w)
		if t.perCell != nil {
			t.perCell.AddStripeN(h.stripe, cell, w)
		}
	} else {
		t.steps.AddStripe(h.stripe, step)
		if t.perCell != nil {
			t.perCell.AddStripe(h.stripe, cell)
		}
	}
	if t.sketch != nil {
		// Feed the reservoir with the post-sampling probe stream: the
		// sketch estimates the distribution of recorded (step, cell)
		// pairs, which matches the scaled counters above.
		t.sketch.offer(h, step, cell)
	}
	t.pool.Put(h)
}

// Events returns the flight recorder this instance emits into — always
// non-nil (a private log is created when the configuration supplies none).
func (t *Telemetry) Events() *events.Log { return t.events }

// Timeline drains the flight recorder and returns up to max events with
// sequence numbers beyond since, oldest first, plus the cursor for the next
// call — the monitor's /debug/timeline pagination contract.
func (t *Telemetry) Timeline(since uint64, max int) ([]events.Event, uint64) {
	return t.events.Timeline(since, max)
}

// ObserveQuery records the completion of one membership query: its outcome
// and its latency in nanoseconds.
func (t *Telemetry) ObserveQuery(found, failed bool, latencyNs int64) {
	t.queries.Add(1)
	switch {
	case failed:
		t.errors.Add(1)
	case found:
		t.hits.Add(1)
	default:
		t.misses.Add(1)
	}
	t.latency.Observe(uint64(latencyNs))
}

// ObserveBatch records the completion of one ContainsBatch call answering
// queries keys, hits of them positively, with the whole batch taking
// latencyNs. failed marks a batch that stopped at a corrupt-table error.
func (t *Telemetry) ObserveBatch(queries, hits int, failed bool, latencyNs int64) {
	t.queries.Add(uint64(queries))
	t.hits.Add(uint64(hits))
	if failed {
		t.errors.Add(1)
	} else {
		t.misses.Add(uint64(queries - hits))
	}
	t.batchLatency.Observe(uint64(latencyNs))
}

// ShouldTrace makes the per-goroutine 1-in-TraceEvery decision for query
// tracing. It is false for every query when tracing is disabled.
func (t *Telemetry) ShouldTrace() bool {
	if t.tracer == nil {
		return false
	}
	if t.traceMask == 0 {
		return true
	}
	h := t.pool.Get().(*handle)
	h.rng += 0x9e3779b97f4a7c15
	z := h.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	ok := (z^(z>>31))&t.traceMask == 0
	t.pool.Put(h)
	return ok
}

// Emit delivers one completed query trace to the tracer (ring buffer by
// default). Callers pair it with ShouldTrace.
func (t *Telemetry) Emit(qt QueryTrace) {
	if t.tracer != nil {
		t.tracer.Trace(qt)
	}
}

// Traces returns the most recent traced queries, newest first (nil when
// tracing is disabled or routed to a custom Tracer).
func (t *Telemetry) Traces() []QueryTrace {
	if t.ring == nil {
		return nil
	}
	return t.ring.Recent(0)
}

// DynamicShard returns the rebuild-metrics slot for shard i, creating slots
// up to i on first use. The dynamic dictionary (and each shard of the
// sharded dynamic composite) records epoch publishes, rebuild durations and
// writer pauses through it.
func (t *Telemetry) DynamicShard(i int) *DynamicMetrics {
	t.dynMu.Lock()
	defer t.dynMu.Unlock()
	for len(t.dyn) <= i {
		t.dyn = append(t.dyn, NewDynamicMetrics(len(t.dyn)))
	}
	return t.dyn[i]
}

// HotCell is one entry of the top-K hottest-cells report.
type HotCell struct {
	Cell  int     `json:"cell"`  // flat cell index
	Count uint64  `json:"count"` // recorded probes (unscaled)
	Phi   float64 `json:"phi"`   // Φ̂(j) = Sample·Count/Queries
}

// RangeView is the snapshot of one configured cell range.
type RangeView struct {
	Name   string  `json:"name"`
	Start  int     `json:"start"`
	Cells  int     `json:"cells"`
	Probes uint64  `json:"probes"` // scaled estimate
	Share  float64 `json:"share"`  // fraction of all probes
	MaxPhi float64 `json:"max_phi"`
}

// Snapshot is a point-in-time summary of everything the telemetry layer
// measures. Counters are full-sweep reads and may miss events concurrent
// with the snapshot; ratios are internally consistent to within that skew.
type Snapshot struct {
	Queries uint64 `json:"queries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Errors  uint64 `json:"errors"`
	// Probes is the estimated total probe count (sampled counts scaled by
	// Sample).
	Probes uint64 `json:"probes"`
	Sample int    `json:"sample"`
	// Adaptive marks a controller-tuned Sample (see AdaptiveConfig); the
	// counters are then pre-scaled and Sample is the factor currently in
	// force, not the factor behind every historical count.
	Adaptive bool `json:"adaptive,omitempty"`
	Cells    int  `json:"cells"`
	N        int  `json:"n"`

	ProbesPerQuery float64 `json:"probes_per_query"`
	// MaxPhi is max_j Φ̂(j), the empirical per-cell total contention of
	// Definition 1; MaxPhiN = MaxPhi·n is the headline the A-series tables
	// report (1.00 for the core dictionary under uniform-positive load).
	MaxPhi     float64 `json:"max_phi"`
	MaxPhiN    float64 `json:"max_phi_n"`
	MaxPhiCell int     `json:"max_phi_cell"`
	// StepMass[t] estimates the probability a query executes step t
	// (trailing all-zero steps trimmed; the last slot aggregates steps
	// beyond StepCap).
	StepMass []float64 `json:"step_mass"`

	TopCells []HotCell   `json:"top_cells,omitempty"`
	Ranges   []RangeView `json:"ranges,omitempty"`

	// StepCells is the per-step hottest-cell table derived from the
	// reservoir-sampled (step, cell) sketch, present when per-cell
	// accounting and the sketch are enabled.
	StepCells []StepCellView `json:"step_cells,omitempty"`

	Latency      HistogramSnapshot `json:"latency_ns"`
	BatchLatency HistogramSnapshot `json:"batch_latency_ns"`

	Dynamic []DynamicSnapshot `json:"dynamic,omitempty"`

	// Events summarizes the flight recorder: per-type counts, the exact
	// drop total, and the newest timeline cursor.
	Events events.Stats `json:"events"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Snapshot sweeps the counters and summarizes them. It allocates (one word
// per table cell) and is meant for scrape/inspection cadence, not the query
// path.
func (t *Telemetry) Snapshot() Snapshot {
	// Adaptive counts are accumulated pre-scaled (see ProbeObserved), so
	// they are already estimates of the true totals; fixed-k counts scale
	// up by the one factor that produced them.
	scale := float64(t.Sample())
	if t.adaptive {
		scale = 1
	}
	s := Snapshot{
		Queries:  t.queries.Sum(),
		Hits:     t.hits.Sum(),
		Misses:   t.misses.Sum(),
		Errors:   t.errors.Sum(),
		Sample:   t.Sample(),
		Adaptive: t.adaptive,
		Cells:    t.cells,
		N:        t.n,

		Latency:       t.latency.Snapshot(),
		BatchLatency:  t.batchLatency.Snapshot(),
		UptimeSeconds: time.Since(t.started).Seconds(),
	}
	stepCounts := t.steps.Sums()
	var probes uint64
	last := 0
	for i, c := range stepCounts {
		probes += c
		if c > 0 {
			last = i
		}
	}
	s.Probes = probes * uint64(scale)
	if s.Queries > 0 {
		q := float64(s.Queries)
		s.ProbesPerQuery = float64(s.Probes) / q
		s.StepMass = make([]float64, last+1)
		for i := range s.StepMass {
			s.StepMass[i] = scale * float64(stepCounts[i]) / q
		}
	}
	if t.perCell != nil && s.Queries > 0 {
		q := float64(s.Queries)
		counts := t.perCell.Sums()
		top := topK(counts, t.cfg.TopK)
		for _, h := range top {
			s.TopCells = append(s.TopCells, HotCell{Cell: h.idx, Count: h.count, Phi: scale * float64(h.count) / q})
		}
		if len(top) > 0 {
			s.MaxPhi = scale * float64(top[0].count) / q
			s.MaxPhiN = s.MaxPhi * float64(t.n)
			s.MaxPhiCell = top[0].idx
		}
		for _, r := range t.cfg.Ranges {
			var sum, best uint64
			bestAt := r.Start
			for j := r.Start; j < r.Start+r.Cells; j++ {
				c := counts[j]
				sum += c
				if c > best {
					best, bestAt = c, j
				}
			}
			_ = bestAt
			rv := RangeView{Name: r.Name, Start: r.Start, Cells: r.Cells,
				Probes: sum * uint64(scale),
				MaxPhi: scale * float64(best) / q,
			}
			if probes > 0 {
				rv.Share = float64(sum) / float64(probes)
			}
			s.Ranges = append(s.Ranges, rv)
		}
	}
	if t.sketch != nil {
		k := t.cfg.SketchTopK
		if k <= 0 {
			k = 3
		}
		s.StepCells = t.sketch.Snapshot(k)
	}
	t.dynMu.Lock()
	for _, m := range t.dyn {
		s.Dynamic = append(s.Dynamic, m.Snapshot())
	}
	t.dynMu.Unlock()
	s.Events = t.events.Stats()
	return s
}

// cellCount pairs a cell index with its probe count for top-K selection.
type cellCount struct {
	idx   int
	count uint64
}

// topK returns the k highest-count cells, hottest first (ties by lower
// index). Zero-count cells are never reported.
func topK(counts []uint64, k int) []cellCount {
	if k <= 0 {
		return nil
	}
	top := make([]cellCount, 0, k+1)
	worst := uint64(0)
	for i, c := range counts {
		if c == 0 || (len(top) == k && c <= worst) {
			continue
		}
		top = append(top, cellCount{idx: i, count: c})
		sort.Slice(top, func(a, b int) bool {
			if top[a].count != top[b].count {
				return top[a].count > top[b].count
			}
			return top[a].idx < top[b].idx
		})
		if len(top) > k {
			top = top[:k]
		}
		worst = top[len(top)-1].count
	}
	return top
}
