package telemetry

import (
	"sort"
	"sync/atomic"

	"repro/internal/telemetry/events"
)

// HotKeyConfig tunes the write-absorption classifier. The zero value selects
// the defaults noted on each field.
type HotKeyConfig struct {
	// PromoteOps is the weighted claim count one key must accumulate within
	// a single phase to be promoted into the absorbed-hot set. Default 128.
	PromoteOps uint64
	// RetryWeight is the extra weight a claim contributes per CAS retry it
	// suffered — contended claims count harder than merely frequent ones.
	// Default 8.
	RetryWeight uint64
	// DemoteOps is the absorbed-write count per phase below which a hot key
	// is considered cool. Default PromoteOps/4. Together with DemotePhases
	// this is the hysteresis deadband: a key must climb past PromoteOps to
	// enter and fall below DemoteOps for DemotePhases consecutive phases to
	// leave, so a key oscillating in between never flaps.
	DemoteOps uint64
	// DemotePhases is how many consecutive cool phases a hot key survives
	// before demotion. Default 2.
	DemotePhases int
	// MaxHot caps the absorbed-hot set size. Default 64.
	MaxHot int
	// SketchSlots sizes the candidate-tracking sketch (rounded up to a
	// power of two). Default 256.
	SketchSlots int
}

func (c HotKeyConfig) withDefaults() HotKeyConfig {
	if c.PromoteOps == 0 {
		c.PromoteOps = 128
	}
	if c.RetryWeight == 0 {
		c.RetryWeight = 8
	}
	if c.DemoteOps == 0 {
		c.DemoteOps = c.PromoteOps / 4
		if c.DemoteOps == 0 {
			c.DemoteOps = 1
		}
	}
	if c.DemotePhases == 0 {
		c.DemotePhases = 2
	}
	if c.MaxHot == 0 {
		c.MaxHot = 64
	}
	if c.SketchSlots == 0 {
		c.SketchSlots = 256
	}
	return c
}

// hotSlot is one sketch cell: a candidate key (stored +1 so zero means
// empty) and its weighted claim count this phase, padded to a cache line so
// concurrent observers of different candidates never false-share.
type hotSlot struct {
	key   atomic.Uint64
	count atomic.Uint64
	_     [6]uint64
}

// HotKeyClassifier is the hysteresis controller that decides which keys the
// dynamic dictionary absorbs — the same deadband style as the AdaptTick
// sampling controller, applied to key promotion instead of sample factors.
// It tracks promotion candidates in a fixed lossy-counting sketch fed from
// the lock-free claim path (ObserveClaim takes no locks; each cell is its
// own padded cache line) and reclassifies at phase boundaries, where the
// caller serializes it under the dictionary mutex.
//
// It implements dynamic.HotClassifier. One classifier serves one dictionary
// (one shard); shards classify independently, matching their independent
// phase boundaries.
type HotKeyClassifier struct {
	cfg      HotKeyConfig
	slots    []hotSlot
	mask     uint64
	pressure atomic.Bool

	// Reclassify-only state (serialized by the dictionary mutex).
	cool map[uint64]int // consecutive cool phases per current hot key

	// Flight-recorder sink for HotKeyPromoted/HotKeyDemoted events, nil
	// when unattached. Emitted keys are hashed (sketchHash), never raw —
	// the timeline may be exposed on a debug endpoint and must not leak
	// the keyset.
	events      *events.Log
	eventsShard int
}

// NewHotKeyClassifier builds a classifier with the given tuning (zero
// fields select defaults).
func NewHotKeyClassifier(cfg HotKeyConfig) *HotKeyClassifier {
	cfg = cfg.withDefaults()
	n := 1
	for n < cfg.SketchSlots {
		n <<= 1
	}
	return &HotKeyClassifier{
		cfg:   cfg,
		slots: make([]hotSlot, n),
		mask:  uint64(n - 1),
		cool:  make(map[uint64]int),
	}
}

// SetEventLog attaches the flight recorder the classifier emits promotion
// and demotion events into, labeled with the given shard index. Call before
// the classifier is shared (the facade attaches it at construction); events
// carry hashed keys only.
func (c *HotKeyClassifier) SetEventLog(l *events.Log, shard int) {
	c.events = l
	c.eventsShard = shard
}

// sketchHash spreads keys over the sketch (splitmix64 finalizer).
func sketchHash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ObserveClaim feeds one completed claim walk into the sketch. Lossy
// counting on a CAS slot: a colliding candidate drains the incumbent's
// count and takes the cell over when it hits bottom, so a sustained hot key
// wins its cell even against background traffic. Crossing PromoteOps raises
// the pressure flag exactly once per crossing.
func (c *HotKeyClassifier) ObserveClaim(key uint64, probes, casRetries uint64) {
	w := 1 + casRetries*c.cfg.RetryWeight
	s := &c.slots[sketchHash(key)&c.mask]
	stored := key + 1 // slot encoding: 0 = empty
	for {
		k := s.key.Load()
		if k == stored {
			break
		}
		if k != 0 {
			// Another candidate owns the cell: spend our weight draining it.
			if cnt := s.count.Load(); cnt > w {
				s.count.CompareAndSwap(cnt, cnt-w)
				return
			}
		}
		if s.key.CompareAndSwap(k, stored) {
			s.count.Store(0)
			break
		}
	}
	n := s.count.Add(w)
	if n >= c.cfg.PromoteOps && n-w < c.cfg.PromoteOps {
		c.pressure.Store(true)
	}
}

// Pressure reports (and consumes) a pending promotion signal. The fast-path
// cost when idle is one atomic load.
func (c *HotKeyClassifier) Pressure() bool {
	if !c.pressure.Load() {
		return false
	}
	return c.pressure.Swap(false)
}

// Reclassify computes the next phase's hot set: current keys survive unless
// their absorbed writes stayed below DemoteOps for DemotePhases consecutive
// phases (the hysteresis tail), then sketch candidates at or above
// PromoteOps join, hottest first, up to MaxHot. The sketch counts reset —
// each phase is a fresh promotion window — and any pending pressure is
// consumed. Callers serialize Reclassify (the dictionary mutex does).
func (c *HotKeyClassifier) Reclassify(current []uint64, writes func(key uint64) uint64) []uint64 {
	next := make([]uint64, 0, len(current))
	for _, k := range current {
		if writes(k) >= c.cfg.DemoteOps {
			c.cool[k] = 0
			next = append(next, k)
			continue
		}
		c.cool[k]++
		if c.cool[k] >= c.cfg.DemotePhases {
			delete(c.cool, k)
			if c.events != nil {
				c.events.Emit(events.HotKeyDemoted, c.eventsShard, sketchHash(k), 0, 0)
			}
			continue
		}
		next = append(next, k)
	}

	type candidate struct {
		key   uint64
		count uint64
	}
	keep := make(map[uint64]bool, len(next))
	for _, k := range next {
		keep[k] = true
	}
	var cands []candidate
	for i := range c.slots {
		s := &c.slots[i]
		k := s.key.Load()
		cnt := s.count.Load()
		s.count.Store(0)
		if k == 0 || cnt < c.cfg.PromoteOps || keep[k-1] {
			continue
		}
		cands = append(cands, candidate{key: k - 1, count: cnt})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		return cands[i].key < cands[j].key
	})
	for _, cand := range cands {
		if len(next) >= c.cfg.MaxHot {
			break
		}
		next = append(next, cand.key)
		c.cool[cand.key] = 0
		if c.events != nil {
			c.events.Emit(events.HotKeyPromoted, c.eventsShard, sketchHash(cand.key), cand.count, 0)
		}
	}
	if len(next) > c.cfg.MaxHot {
		next = next[:c.cfg.MaxHot]
	}
	c.pressure.Store(false)
	return next
}
