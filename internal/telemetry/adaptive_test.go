package telemetry

import (
	"math"
	"testing"
	"time"

	"repro/internal/contention"
)

func TestAdaptiveConfigDefaults(t *testing.T) {
	c, err := AdaptiveConfig{TargetProbesPerSec: 100}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.MinSample != 1 || c.MaxSample != 1<<16 || c.Hysteresis != 0.25 {
		t.Fatalf("defaults = %+v", c)
	}
	// Bounds round to powers of two.
	c, err = AdaptiveConfig{TargetProbesPerSec: 100, MinSample: 3, MaxSample: 100}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.MinSample != 4 || c.MaxSample != 128 {
		t.Fatalf("rounded bounds = %+v", c)
	}
	if _, err := (AdaptiveConfig{}).withDefaults(); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := (AdaptiveConfig{TargetProbesPerSec: math.NaN()}).withDefaults(); err == nil {
		t.Error("NaN target accepted")
	}
	if _, err := (AdaptiveConfig{TargetProbesPerSec: 1, MinSample: 64, MaxSample: 2}).withDefaults(); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestNewAdaptivePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid adaptive config accepted")
		}
	}()
	New(Config{Adaptive: &AdaptiveConfig{}}, 0, 1)
}

func TestAdaptTickIsNoOpWhenFixed(t *testing.T) {
	tel := New(Config{Sample: 4}, 0, 1)
	if tel.Adaptive() {
		t.Fatal("fixed-k telemetry reports adaptive")
	}
	if got := tel.AdaptTick(time.Second); got != 4 {
		t.Fatalf("AdaptTick on fixed telemetry = %d, want 4", got)
	}
	if tel.RecordedProbes() != 0 {
		t.Fatal("fixed-k telemetry has a recorded counter")
	}
}

// feed drives exactly n probes (step 0, cell 0) into the sink.
func feed(tel *Telemetry, n int) {
	for i := 0; i < n; i++ {
		tel.ProbeObserved(0, 0)
	}
}

func TestAdaptTickConvergesAndHolds(t *testing.T) {
	const target = 10000.0
	tel := New(Config{Adaptive: &AdaptiveConfig{TargetProbesPerSec: target}}, 0, 1)
	if !tel.Adaptive() || tel.Sample() != 1 {
		t.Fatalf("initial state: adaptive=%v k=%d", tel.Adaptive(), tel.Sample())
	}
	// An incoming rate of 16·target: at k=1 every probe is recorded, so one
	// tick must climb straight to k=16 (each doubling halves the projected
	// rate; 2·target is still above the 1.25·target band, 1·target is not).
	feed(tel, 16*int(target))
	if k := tel.AdaptTick(time.Second); k != 16 {
		t.Fatalf("after hot tick k = %d, want 16", k)
	}
	// Same incoming rate at k=16 records ≈ target probes/sec — inside the
	// deadband, so k holds across further ticks (no oscillation).
	for tick := 0; tick < 3; tick++ {
		feed(tel, 16*int(target))
		if k := tel.AdaptTick(time.Second); k != 16 {
			t.Fatalf("tick %d: k = %d, want steady 16", tick, k)
		}
	}
	// Traffic stops: recorded rate 0, so k walks back down to MinSample.
	if k := tel.AdaptTick(time.Second); k != 1 {
		t.Fatalf("idle tick k = %d, want 1", k)
	}
}

func TestAdaptTickRespectsBounds(t *testing.T) {
	tel := New(Config{Adaptive: &AdaptiveConfig{
		TargetProbesPerSec: 1, MinSample: 4, MaxSample: 16,
	}}, 0, 1)
	// Initial k clamps up to MinSample.
	if tel.Sample() != 4 {
		t.Fatalf("initial k = %d, want MinSample 4", tel.Sample())
	}
	// A flood cannot push k past MaxSample.
	feed(tel, 1<<20)
	if k := tel.AdaptTick(time.Second); k != 16 {
		t.Fatalf("flooded k = %d, want MaxSample 16", k)
	}
	// Silence cannot pull it below MinSample.
	if k := tel.AdaptTick(time.Second); k != 4 {
		t.Fatalf("idle k = %d, want MinSample 4", k)
	}
	// Non-positive elapsed is a no-op.
	if k := tel.AdaptTick(0); k != 4 {
		t.Fatalf("zero-elapsed tick k = %d, want unchanged 4", k)
	}
}

func TestAdaptiveCountsStayUnbiasedAcrossRetunes(t *testing.T) {
	const target = 1000.0
	tel := New(Config{Adaptive: &AdaptiveConfig{TargetProbesPerSec: target}}, 8, 100)
	total := 0
	// Phase 1 at k=1: exact counting.
	feed(tel, 50000)
	total += 50000
	tel.AdaptTick(time.Second) // retunes k upward (50000 > 1250)
	if tel.Sample() <= 1 {
		t.Fatalf("controller did not raise k (k=%d)", tel.Sample())
	}
	// Phase 2 at k>1: sampled probes accumulate pre-scaled by the new k.
	feed(tel, 200000)
	total += 200000
	tel.ObserveQuery(true, false, 1)
	s := tel.Snapshot()
	if !s.Adaptive {
		t.Fatal("snapshot does not mark adaptive mode")
	}
	if s.Sample != tel.Sample() {
		t.Fatalf("snapshot sample %d != current %d", s.Sample, tel.Sample())
	}
	if ratio := float64(s.Probes) / float64(total); math.Abs(ratio-1) > 0.10 {
		t.Fatalf("probe estimate %d off by %.1f%% from %d across a retune", s.Probes, 100*(ratio-1), total)
	}
	// RecordedProbes counts post-sampling events: strictly fewer than the
	// estimate once k > 1, and nonzero.
	if rec := tel.RecordedProbes(); rec == 0 || rec >= uint64(total) {
		t.Fatalf("recorded probes %d outside (0, %d)", rec, total)
	}
}

func TestCompareExactStepsBoundsBufferSteps(t *testing.T) {
	// A dynamic dictionary's live step masses: the static snapshot occupies
	// steps 0..3 (MaxProbes 4) and the always-executed update-buffer probe
	// lands at step 4 with mass 1. The exact analysis models only the static
	// snapshot.
	s := Snapshot{
		MaxPhi:         0.01,
		ProbesPerQuery: 3.5, // includes the buffer probe
		StepMass:       []float64{1, 1, 0.5, 0, 1},
	}
	ex := contention.ExactResult{
		MaxTotal: 0.01,
		Probes:   2.5,
		StepMass: []float64{1, 1, 0.5, 0},
	}
	// Unbounded compare sees the buffer step as a spurious mass-1 gap —
	// the regression this API exists to fix.
	if d := s.CompareExact(ex); d.StepMassMaxDiff != 1.0 {
		t.Fatalf("unbounded StepMassMaxDiff = %v, want the spurious 1.0", d.StepMassMaxDiff)
	}
	// Bounded to the snapshot's MaxProbes: step 3 is still compared, step 4
	// is not, and probes per query recomputes to the in-range mass.
	d := s.CompareExactSteps(ex, 4)
	if d.StepMassMaxDiff != 0 {
		t.Fatalf("bounded StepMassMaxDiff = %v, want 0", d.StepMassMaxDiff)
	}
	if d.ProbesLive != 2.5 || d.ProbesRatio != 1.0 {
		t.Fatalf("bounded probes live=%v ratio=%v, want 2.5 and 1.0", d.ProbesLive, d.ProbesRatio)
	}
	if d.MaxPhiRatio != 1.0 {
		t.Fatalf("MaxPhiRatio = %v, want 1.0", d.MaxPhiRatio)
	}
	// A genuine static-range gap still surfaces: perturb step 3.
	s.StepMass[3] = 0.25
	if d := s.CompareExactSteps(ex, 4); math.Abs(d.StepMassMaxDiff-0.25) > 1e-12 {
		t.Fatalf("boundary step 3 diff = %v, want 0.25", d.StepMassMaxDiff)
	}
	// Exact steps beyond the live vector but inside the bound still count
	// (a live workload that never reached step 3 must not hide its absence).
	short := Snapshot{StepMass: []float64{1, 1}, ProbesPerQuery: 2}
	if d := short.CompareExactSteps(ex, 4); math.Abs(d.StepMassMaxDiff-0.5) > 1e-12 {
		t.Fatalf("missing live steps diff = %v, want 0.5", d.StepMassMaxDiff)
	}
}
