package telemetry

import (
	"math/bits"
	"testing"
)

// TestHistogramEmpty pins the zero-observation snapshot: all fields zero,
// no buckets, and quantiles that do not invent data.
func TestHistogramEmpty(t *testing.T) {
	s := NewLogHistogram().Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot carries data: %+v", s)
	}
	if s.P50 != 0 || s.P99 != 0 || s.P999 != 0 {
		t.Fatalf("empty snapshot has quantiles: %+v", s)
	}
	if s.Buckets != nil {
		t.Fatalf("empty snapshot has buckets: %v", s.Buckets)
	}
}

// TestHistogramSingleBucket: every observation in one bucket makes every
// quantile that bucket's upper bound, including the degenerate single
// observation.
func TestHistogramSingleBucket(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(700) // bits.Len64(700) = 10, bucket [512, 1024)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 700 || s.Mean != 700 {
		t.Fatalf("single observation: %+v", s)
	}
	want := BucketUpper(bits.Len64(700))
	if s.P50 != want || s.P99 != want || s.P999 != want || s.Max != want {
		t.Fatalf("single-bucket quantiles: p50=%d p99=%d p999=%d max=%d, want all %d",
			s.P50, s.P99, s.P999, s.Max, want)
	}
	for i := 0; i < 99; i++ {
		h.Observe(700)
	}
	s = h.Snapshot()
	if s.Count != 100 || s.P50 != want || s.P999 != want {
		t.Fatalf("repeated single-bucket: %+v", s)
	}
}

// TestHistogramZeroValue: observing 0 lands in bucket 0 with upper bound 1.
func TestHistogramZeroValue(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(0)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || len(s.Buckets) != 1 || s.Buckets[0] != 1 {
		t.Fatalf("zero observation: %+v", s)
	}
	if s.P50 != 1 || s.Max != 1 {
		t.Fatalf("zero-value quantiles: %+v", s)
	}
}

// TestHistogramP999FewSamples: with fewer than 1000 samples the p999 target
// index clamps to the last observation, so p999 reports the bucket of the
// maximum — not a fabricated tail.
func TestHistogramP999FewSamples(t *testing.T) {
	h := NewLogHistogram()
	// 9 small values and one large outlier: any quantile above 90% must land
	// in the outlier's bucket.
	for i := 0; i < 9; i++ {
		h.Observe(100) // bucket 7: [64, 128)
	}
	h.Observe(1 << 20) // bucket 21
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("count %d", s.Count)
	}
	if want := BucketUpper(7); s.P50 != want {
		t.Fatalf("p50 = %d, want %d", s.P50, want)
	}
	outlier := BucketUpper(21)
	if s.P99 != outlier || s.P999 != outlier || s.Max != outlier {
		t.Fatalf("tail quantiles p99=%d p999=%d max=%d, want %d", s.P99, s.P999, s.Max, outlier)
	}
	// One single sample: p999 = that sample's bucket.
	h1 := NewLogHistogram()
	h1.Observe(3)
	if s := h1.Snapshot(); s.P999 != BucketUpper(bits.Len64(3)) {
		t.Fatalf("single-sample p999 = %d", s.P999)
	}
}

// TestHistogramMerge pins the aggregation contract: merging per-worker
// snapshots equals one histogram that observed every value.
func TestHistogramMerge(t *testing.T) {
	values := [][]uint64{
		{1, 5, 700, 1 << 30},
		{0, 0, 3, 900, 901, 902},
		{1 << 40},
	}
	all := NewLogHistogram()
	var parts []HistogramSnapshot
	for _, vs := range values {
		h := NewLogHistogram()
		for _, v := range vs {
			h.Observe(v)
			all.Observe(v)
		}
		parts = append(parts, h.Snapshot())
	}
	got := MergeHistogramSnapshots(parts...)
	want := all.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum || got.Mean != want.Mean {
		t.Fatalf("merged totals %+v, want %+v", got, want)
	}
	if got.P50 != want.P50 || got.P99 != want.P99 || got.P999 != want.P999 || got.Max != want.Max {
		t.Fatalf("merged quantiles %+v, want %+v", got, want)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("merged buckets %v, want %v", got.Buckets, want.Buckets)
	}
	for k := range want.Buckets {
		if got.Buckets[k] != want.Buckets[k] {
			t.Fatalf("bucket %d: %d vs %d", k, got.Buckets[k], want.Buckets[k])
		}
	}
}

// TestHistogramMergeEdges: merging nothing, merging empties, and merging an
// empty with a populated snapshot.
func TestHistogramMergeEdges(t *testing.T) {
	if s := MergeHistogramSnapshots(); s.Count != 0 || s.Buckets != nil {
		t.Fatalf("merge of nothing: %+v", s)
	}
	empty := NewLogHistogram().Snapshot()
	if s := MergeHistogramSnapshots(empty, empty); s.Count != 0 || s.P999 != 0 {
		t.Fatalf("merge of empties: %+v", s)
	}
	h := NewLogHistogram()
	h.Observe(42)
	one := h.Snapshot()
	got := MergeHistogramSnapshots(empty, one, empty)
	if got.Count != 1 || got.Sum != 42 || got.P50 != one.P50 || got.Max != one.Max {
		t.Fatalf("merge with empties %+v, want %+v", got, one)
	}
	// Merge is associative over buckets: ((a+b)+c) == (a+(b+c)).
	h2 := NewLogHistogram()
	h2.Observe(1 << 10)
	h2.Observe(7)
	two := h2.Snapshot()
	left := MergeHistogramSnapshots(MergeHistogramSnapshots(one, two), empty)
	right := MergeHistogramSnapshots(one, MergeHistogramSnapshots(two, empty))
	if left.Count != right.Count || left.P999 != right.P999 || left.Sum != right.Sum {
		t.Fatalf("merge not associative: %+v vs %+v", left, right)
	}
}
