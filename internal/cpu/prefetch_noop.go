//go:build !amd64 && !arm64

package cpu

import "unsafe"

// HavePrefetch reports whether Prefetch emits a real hardware hint on this
// architecture (false here: no asm stub, so Prefetch is a no-op and the
// wavefront scheduler runs without memory-level-parallelism hints).
const HavePrefetch = false

// Prefetch is the portable fallback: a no-op. The wavefront batch path
// stays correct — interleaving alone still overlaps some latency on
// out-of-order cores — it just loses the explicit hint.
func Prefetch(p unsafe.Pointer) { _ = p }
