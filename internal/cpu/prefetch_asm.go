//go:build amd64 || arm64

package cpu

import "unsafe"

// HavePrefetch reports whether Prefetch emits a real hardware hint on this
// architecture (true here; the portable fallback is a no-op).
const HavePrefetch = true

// prefetch is implemented in prefetch_amd64.s / prefetch_arm64.s.
//
//go:noescape
func prefetch(p unsafe.Pointer)

// Prefetch hints that the cache line containing p will be read soon
// (prefetcht0 on amd64, PRFM PLDL1KEEP on arm64). It performs no memory
// access in the cell-probe model's sense: no value is transferred and no
// probe is recorded.
func Prefetch(p unsafe.Pointer) { prefetch(p) }
