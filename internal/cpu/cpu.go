// Package cpu exposes the few architecture-specific hints the query path
// uses. Its only export today is Prefetch, a software prefetch of one cache
// line: the batch query path's wavefront scheduler (internal/core) issues it
// for the *next* probe target of every in-flight query before evaluating the
// current one, so the hardware overlaps the cache misses of G independent
// probe chains instead of serializing them.
//
// A prefetch is a hint, not a memory operation of the cell-probe model: it
// transfers no value, changes no observable state, and is never recorded as
// a probe. On architectures without an implemented stub (anything other than
// amd64 and arm64) Prefetch is a portable no-op and the wavefront degrades
// to plain interleaved execution — still correct, just without the
// memory-level parallelism boost.
package cpu
