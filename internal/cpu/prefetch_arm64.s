//go:build arm64

#include "textflag.h"

// func prefetch(p unsafe.Pointer)
TEXT ·prefetch(SB), NOSPLIT, $0-8
	MOVD p+0(FP), R0
	PRFM (R0), PLDL1KEEP
	RET
