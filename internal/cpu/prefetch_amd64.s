//go:build amd64

#include "textflag.h"

// func prefetch(p unsafe.Pointer)
TEXT ·prefetch(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET
