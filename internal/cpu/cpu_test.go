package cpu

import (
	"runtime"
	"testing"
	"unsafe"
)

// TestPrefetch exercises the stub on a live allocation: a prefetch is a pure
// hint, so the only observable contract is that it neither faults nor
// perturbs the data it targets.
func TestPrefetch(t *testing.T) {
	buf := make([]uint64, 1024)
	for i := range buf {
		buf[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	for i := 0; i < len(buf); i += 8 {
		Prefetch(unsafe.Pointer(&buf[i]))
	}
	for i := range buf {
		if buf[i] != uint64(i)*0x9e3779b97f4a7c15 {
			t.Fatalf("prefetch perturbed buf[%d]", i)
		}
	}
}

// TestHavePrefetch pins the constant to the architectures carrying an asm
// stub, so a new port that forgets the build tags fails loudly.
func TestHavePrefetch(t *testing.T) {
	want := runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64"
	if HavePrefetch != want {
		t.Fatalf("HavePrefetch = %v on %s, want %v", HavePrefetch, runtime.GOARCH, want)
	}
}
