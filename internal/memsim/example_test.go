package memsim_test

import (
	"fmt"

	"repro/internal/memsim"
)

// Example shows the §1 hot-spot effect in miniature: four processors that
// all need cell 0 first serialize on it, while spread probes run parallel.
func Example() {
	hot := [][]int{{0, 10}, {0, 11}, {0, 12}, {0, 13}}
	spread := [][]int{{0, 10}, {1, 11}, {2, 12}, {3, 13}}
	fmt.Println("hot-cell makespan:   ", memsim.Run(hot, memsim.Config{}).Makespan)
	fmt.Println("spread makespan:     ", memsim.Run(spread, memsim.Config{}).Makespan)
	// With combining hardware the hot cell broadcasts in one cycle.
	fmt.Println("hot with combining:  ", memsim.Run(hot, memsim.Config{Combining: true}).Makespan)
	// Output:
	// hot-cell makespan:    5
	// spread makespan:      2
	// hot with combining:   2
}

// ExampleRunOpen shows saturation: a single cell serves one query per
// cycle, so two arrivals per cycle build an ever-growing queue.
func ExampleRunOpen() {
	const q = 60
	seqs := make([][]int, q)
	overload := make([]int, q)
	underload := make([]int, q)
	for i := range seqs {
		seqs[i] = []int{7}
		overload[i] = i / 2  // λ = 2
		underload[i] = i * 2 // λ = 0.5
	}
	over, _ := memsim.RunOpen(seqs, overload, memsim.Config{})
	under, _ := memsim.RunOpen(seqs, underload, memsim.Config{})
	fmt.Printf("λ=2.0: max latency %d\n", over.MaxLatency)
	fmt.Printf("λ=0.5: max latency %d\n", under.MaxLatency)
	// Output:
	// λ=2.0: max latency 31
	// λ=0.5: max latency 1
}
