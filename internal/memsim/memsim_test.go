package memsim

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hash"
	"repro/internal/rng"
)

func TestSingleProcessorNoSlowdown(t *testing.T) {
	res := Run([][]int{{1, 2, 3, 4}}, Config{})
	if res.Makespan != 4 || res.IdealSpan != 4 {
		t.Errorf("makespan %d ideal %d, want 4/4", res.Makespan, res.IdealSpan)
	}
	if res.Slowdown() != 1 {
		t.Errorf("slowdown %v", res.Slowdown())
	}
	if res.AvgLatency != 1 {
		t.Errorf("latency %v, want 1", res.AvgLatency)
	}
}

func TestDisjointProcessorsParallel(t *testing.T) {
	seqs := [][]int{{0, 1, 2}, {10, 11, 12}, {20, 21, 22}}
	res := Run(seqs, Config{})
	if res.Makespan != 3 {
		t.Errorf("makespan %d, want 3", res.Makespan)
	}
	if res.Slowdown() != 1 {
		t.Errorf("slowdown %v, want 1", res.Slowdown())
	}
}

func TestHotCellSerializes(t *testing.T) {
	const m = 8
	seqs := make([][]int, m)
	for p := range seqs {
		seqs[p] = []int{42} // everyone probes the same cell
	}
	res := Run(seqs, Config{})
	if res.Makespan != m {
		t.Errorf("makespan %d, want %d (full serialization)", res.Makespan, m)
	}
	if res.MaxQueue != m {
		t.Errorf("max queue %d, want %d", res.MaxQueue, m)
	}
	if res.MaxModuleLoad != m {
		t.Errorf("max module load %d, want %d", res.MaxModuleLoad, m)
	}
	// Latencies 1, 2, ..., m; average (m+1)/2.
	if want := float64(m+1) / 2; res.AvgLatency != want {
		t.Errorf("latency %v, want %v", res.AvgLatency, want)
	}
}

func TestConservation(t *testing.T) {
	r := rng.New(1)
	seqs := make([][]int, 20)
	total := 0
	for p := range seqs {
		l := r.Intn(10)
		seqs[p] = make([]int, l)
		for i := range seqs[p] {
			seqs[p][i] = r.Intn(50)
		}
		total += l
	}
	res := Run(seqs, Config{})
	if res.TotalProbes != total {
		t.Errorf("TotalProbes %d, want %d", res.TotalProbes, total)
	}
	if res.Makespan < res.IdealSpan {
		t.Errorf("makespan %d below ideal %d", res.Makespan, res.IdealSpan)
	}
	if res.Makespan > total {
		t.Errorf("makespan %d exceeds total probes %d", res.Makespan, total)
	}
}

func TestEmptyInputs(t *testing.T) {
	res := Run(nil, Config{})
	if res.Makespan != 0 || res.Slowdown() != 1 {
		t.Errorf("empty run: %+v", res)
	}
	res = Run([][]int{{}, {}}, Config{})
	if res.Makespan != 0 || res.TotalProbes != 0 {
		t.Errorf("empty sequences: %+v", res)
	}
}

func TestDeterministic(t *testing.T) {
	r := rng.New(2)
	seqs := make([][]int, 30)
	for p := range seqs {
		seqs[p] = make([]int, 5)
		for i := range seqs[p] {
			seqs[p][i] = r.Intn(10)
		}
	}
	a := Run(seqs, Config{})
	b := Run(seqs, Config{})
	if a != b {
		t.Errorf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestModuleInterleaving(t *testing.T) {
	// Cells 0 and 4 share module 0 when Modules = 4.
	seqs := [][]int{{0}, {4}}
	res := Run(seqs, Config{Modules: 4})
	if res.Makespan != 2 {
		t.Errorf("interleaved makespan %d, want 2", res.Makespan)
	}
	res = Run(seqs, Config{}) // cell-per-module: no conflict
	if res.Makespan != 1 {
		t.Errorf("cell-per-module makespan %d, want 1", res.Makespan)
	}
}

func TestCombiningCollapsesSameCellRequests(t *testing.T) {
	const m = 8
	seqs := make([][]int, m)
	for p := range seqs {
		seqs[p] = []int{42}
	}
	res := Run(seqs, Config{Combining: true})
	if res.Makespan != 1 {
		t.Errorf("combined makespan %d, want 1", res.Makespan)
	}
	// Different cells on the same module must still serialize.
	seqs = [][]int{{0}, {4}, {8}}
	res = Run(seqs, Config{Modules: 4, Combining: true})
	if res.Makespan != 3 {
		t.Errorf("distinct-cell makespan %d, want 3", res.Makespan)
	}
	// Same cell on a shared module combines.
	seqs = [][]int{{0}, {0}, {4}}
	res = Run(seqs, Config{Modules: 4, Combining: true})
	if res.Makespan != 2 {
		t.Errorf("mixed makespan %d, want 2", res.Makespan)
	}
}

func TestCombiningNeverSlower(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		seqs := make([][]int, 12)
		for p := range seqs {
			seqs[p] = make([]int, 1+r.Intn(6))
			for i := range seqs[p] {
				seqs[p][i] = r.Intn(8)
			}
		}
		plain := Run(seqs, Config{})
		combined := Run(seqs, Config{Combining: true})
		if combined.Makespan > plain.Makespan {
			t.Fatalf("trial %d: combining slower (%d > %d)", trial, combined.Makespan, plain.Makespan)
		}
		if combined.TotalProbes != plain.TotalProbes {
			t.Fatalf("trial %d: probe conservation broken", trial)
		}
	}
}

// TestCombiningRescuesBinarySearch: combining is the classic fix for the
// §1 hot spot — with it, the root broadcast completes in one cycle, so
// binary search parallelizes; the low-contention dictionary achieves the
// same without any combining hardware.
func TestCombiningRescuesBinarySearch(t *testing.T) {
	r := rng.New(8)
	keys := distinctKeys(r, 512)
	bs, err := baseline.BuildBinarySearch(keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	q := dist.NewUniformSet(keys, "")
	seqs, err := Sequences(bs, q, 128, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	plain := Run(seqs, Config{})
	combined := Run(seqs, Config{Combining: true})
	if combined.Slowdown() > plain.Slowdown()/3 {
		t.Errorf("combining did not rescue bsearch: %.2f vs %.2f", combined.Slowdown(), plain.Slowdown())
	}
}

func TestPipelinedHotCell(t *testing.T) {
	// Two processors, each probing the hot cell then a private cell: the
	// loser of cycle 0 retries the hot cell in cycle 1, finishing at 3.
	seqs := [][]int{{7, 100}, {7, 200}}
	res := Run(seqs, Config{})
	if res.Makespan != 3 {
		t.Errorf("makespan %d, want 3", res.Makespan)
	}
}

func distinctKeys(r *rng.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestSequencesCaptureProbes(t *testing.T) {
	r := rng.New(3)
	keys := distinctKeys(r, 200)
	lc, err := core.Build(keys, core.Params{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := dist.NewUniformSet(keys, "")
	seqs, err := Sequences(lc, q, 50, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 50 {
		t.Fatalf("got %d sequences", len(seqs))
	}
	for p, s := range seqs {
		// Positive queries always reach the data probe.
		if len(s) != lc.MaxProbes() {
			t.Errorf("proc %d: %d probes, want %d", p, len(s), lc.MaxProbes())
		}
		for _, cell := range s {
			if cell < 0 || cell >= lc.Table().Size() {
				t.Fatalf("probe outside table: %d", cell)
			}
		}
	}
}

// TestBinarySearchSerializesLCDSDoesNot is the F2 story at miniature scale:
// simultaneous membership queries serialize on binary search's root cell but
// spread across the low-contention dictionary's replicas.
func TestBinarySearchSerializesLCDSDoesNot(t *testing.T) {
	r := rng.New(6)
	keys := distinctKeys(r, 512)
	lc, err := core.Build(keys, core.Params{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := baseline.BuildBinarySearch(keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	q := dist.NewUniformSet(keys, "")
	const procs = 64

	lcSeqs, err := Sequences(lc, q, procs, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	bsSeqs, err := Sequences(bs, q, procs, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	lcRes := Run(lcSeqs, Config{})
	bsRes := Run(bsSeqs, Config{})
	t.Logf("lcds slowdown %.2f, bsearch slowdown %.2f", lcRes.Slowdown(), bsRes.Slowdown())
	if lcRes.Slowdown() > 3 {
		t.Errorf("lcds slowdown %.2f too high for %d processors", lcRes.Slowdown(), procs)
	}
	// Binary search serializes on the root: makespan ≥ procs.
	if bsRes.Makespan < procs {
		t.Errorf("bsearch makespan %d, want ≥ %d", bsRes.Makespan, procs)
	}
	if bsRes.Slowdown() < 4*lcRes.Slowdown() {
		t.Errorf("expected clear separation: bsearch %.2f vs lcds %.2f", bsRes.Slowdown(), lcRes.Slowdown())
	}
}

func TestRunOpenValidation(t *testing.T) {
	if _, err := RunOpen([][]int{{1}}, nil, Config{}); err == nil {
		t.Error("mismatched arrivals accepted")
	}
	if _, err := RunOpen([][]int{{1}}, []int{-1}, Config{}); err == nil {
		t.Error("negative arrival accepted")
	}
}

func TestRunOpenSequentialArrivals(t *testing.T) {
	// Two queries to the same cell, arriving 10 cycles apart: no queueing,
	// each completes in one cycle.
	seqs := [][]int{{5}, {5}}
	res, err := RunOpen(seqs, []int{0, 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 1 {
		t.Errorf("AvgLatency = %v, want 1", res.AvgLatency)
	}
	if res.Makespan != 11 {
		t.Errorf("Makespan = %v, want 11", res.Makespan)
	}
	// Same two queries arriving together: the second waits a cycle.
	res, err = RunOpen(seqs, []int{0, 0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 1.5 {
		t.Errorf("simultaneous AvgLatency = %v, want 1.5", res.AvgLatency)
	}
	if res.MaxLatency != 2 {
		t.Errorf("MaxLatency = %v, want 2", res.MaxLatency)
	}
}

func TestRunOpenSaturation(t *testing.T) {
	// A hot cell served once per cycle saturates at throughput 1: with 2
	// arrivals per cycle the queue — and latency — grows linearly.
	const q = 100
	seqs := make([][]int, q)
	arrivals := make([]int, q)
	for i := range seqs {
		seqs[i] = []int{7}
		arrivals[i] = i / 2 // 2 per cycle
	}
	res, err := RunOpen(seqs, arrivals, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > 1.01 {
		t.Errorf("throughput %v exceeds the single-cell service rate", res.Throughput)
	}
	if res.MaxLatency < q/4 {
		t.Errorf("MaxLatency %v does not show queue growth", res.MaxLatency)
	}
	// At 1 arrival per 2 cycles, the system is underloaded: latency stays 1.
	for i := range arrivals {
		arrivals[i] = 2 * i
	}
	res, err = RunOpen(seqs, arrivals, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 1 {
		t.Errorf("underloaded AvgLatency = %v, want 1", res.AvgLatency)
	}
}

func TestRunOpenPercentiles(t *testing.T) {
	// 100 queries to one cell arriving together: latencies 1..100.
	const q = 100
	seqs := make([][]int, q)
	arrivals := make([]int, q)
	for i := range seqs {
		seqs[i] = []int{3}
	}
	res, err := RunOpen(seqs, arrivals, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.P50Latency != 51 {
		t.Errorf("P50 = %d, want 51", res.P50Latency)
	}
	if res.P99Latency != 100 {
		t.Errorf("P99 = %d, want 100", res.P99Latency)
	}
	if res.MaxLatency != 100 {
		t.Errorf("Max = %d, want 100", res.MaxLatency)
	}
}

func TestRunOpenEmptySequences(t *testing.T) {
	res, err := RunOpen([][]int{{}, {1}}, []int{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency != 1 {
		t.Errorf("AvgLatency = %v", res.AvgLatency)
	}
}

func BenchmarkRun64x13(b *testing.B) {
	r := rng.New(1)
	seqs := make([][]int, 64)
	for p := range seqs {
		seqs[p] = make([]int, 13)
		for i := range seqs[p] {
			seqs[p][i] = r.Intn(4096)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(seqs, Config{})
	}
}

type countingSink struct {
	probes int
	cells  map[int]int // cell -> served probes
	steps  map[int]int // step -> served probes
}

func (s *countingSink) ProbeObserved(step, cell int) {
	s.probes++
	if s.cells == nil {
		s.cells = map[int]int{}
		s.steps = map[int]int{}
	}
	s.cells[cell]++
	s.steps[step]++
}

// TestSinkObservesEveryServedProbe checks the ProbeSink hook sees exactly
// the probes the memory system serves — per cell and per step — including
// combined completions, so the same estimator the live path feeds can
// measure a simulated execution.
func TestSinkObservesEveryServedProbe(t *testing.T) {
	r := rng.New(3)
	seqs := make([][]int, 16)
	wantCells := map[int]int{}
	wantSteps := map[int]int{}
	total := 0
	for p := range seqs {
		l := 1 + r.Intn(6)
		seqs[p] = make([]int, l)
		for i := range seqs[p] {
			c := r.Intn(8) // few cells, so queues and combining both engage
			seqs[p][i] = c
			wantCells[c]++
			wantSteps[i]++
		}
		total += l
	}
	for _, combining := range []bool{false, true} {
		sink := &countingSink{}
		res := Run(seqs, Config{Combining: combining, Sink: sink})
		if sink.probes != res.TotalProbes || sink.probes != total {
			t.Errorf("combining=%v: sink saw %d probes, want %d", combining, sink.probes, total)
		}
		for c, n := range wantCells {
			if sink.cells[c] != n {
				t.Errorf("combining=%v: cell %d served %d, want %d", combining, c, sink.cells[c], n)
			}
		}
		for s, n := range wantSteps {
			if sink.steps[s] != n {
				t.Errorf("combining=%v: step %d served %d, want %d", combining, s, sink.steps[s], n)
			}
		}
	}
}
