// Package memsim turns contention into observable slowdown.
//
// The paper motivates its contention measure with shared-memory
// multiprocessors (§1): when m queries run simultaneously, the expected
// number of probes to cell j is m·Φ(j) by linearity of expectation, and a
// memory cell serves one access at a time. This package simulates exactly
// that execution model — the hot-spot cost model of Dwork, Herlihy and
// Waarts [6] and of combining-network studies [13]: each memory module
// serves one request per cycle, concurrent requests to the same module
// queue, and a processor issues its next probe only after the previous one
// is served.
//
// The simulator is deterministic given its inputs: requests arriving in the
// same cycle are enqueued in processor order.
package memsim

import (
	"fmt"
	"sort"

	"repro/internal/cellprobe"
	"repro/internal/dist"
	"repro/internal/rng"
)

// Config controls the memory system.
type Config struct {
	// Modules is the number of memory modules. 0 means one module per
	// cell (the pure cell-contention model of the paper). Otherwise cells
	// are interleaved: cell c lives on module c mod Modules.
	Modules int
	// Combining enables read combining à la hot-spot combining networks
	// (Tzeng–Lawrie [13]): all requests for the SAME cell that are queued
	// at a module when it serves that cell complete together in that
	// cycle. Requests for different cells on a shared module still
	// serialize. This is the classic contention-*resolution* mitigation,
	// contrasted with the paper's contention-*avoidance*.
	Combining bool
	// Sink, when non-nil, observes every probe as the memory system serves
	// it — the same cellprobe.ProbeSink hook the live query path feeds, so
	// one estimator (e.g. internal/telemetry) can measure a simulated
	// execution and a live one with identical accounting. The step passed is
	// the probe's index within its processor's sequence; the cell is the
	// flat cell index. The simulator is sequential, so unlike the live hook
	// the sink sees probes from one goroutine, in service order.
	Sink cellprobe.ProbeSink
}

// Result summarizes one simulated parallel execution.
type Result struct {
	Processors  int
	TotalProbes int
	// Makespan is the number of cycles until every processor finished.
	Makespan int
	// IdealSpan is the longest single probe sequence — the makespan of a
	// conflict-free memory system.
	IdealSpan int
	// MaxQueue is the largest instantaneous module queue length observed.
	MaxQueue int
	// MaxModuleLoad is the most requests served by any single module.
	MaxModuleLoad int
	// AvgLatency is the mean cycles from issue to completion of a probe
	// (1 = served immediately).
	AvgLatency float64
}

// Slowdown is Makespan / IdealSpan — 1 means perfectly parallel, m means
// fully serialized on a hot spot.
func (r Result) Slowdown() float64 {
	if r.IdealSpan == 0 {
		return 1
	}
	return float64(r.Makespan) / float64(r.IdealSpan)
}

// Run simulates the probe sequences of len(seqs) processors against the
// configured memory system. seqs[p] lists the flat cell indices processor p
// probes, in order. All processors start at cycle 0 (a closed system); use
// RunOpen for scheduled arrivals.
func Run(seqs [][]int, cfg Config) Result {
	res, _ := run(seqs, nil, cfg)
	return res
}

// OpenResult summarizes an open-system run: queries arrive on a schedule
// and the interesting quantities are per-query latency and sustained
// throughput rather than makespan.
type OpenResult struct {
	Queries    int
	Makespan   int
	AvgLatency float64 // mean (completion − arrival + 1) per query
	MaxLatency int
	P50Latency int     // median latency
	P99Latency int     // 99th-percentile latency
	Throughput float64 // queries per cycle over the whole run
}

// RunOpen simulates queries arriving at the given cycles (arrivals[i] is
// when query i may issue its first probe). len(arrivals) must equal
// len(seqs); arrivals must be non-negative.
func RunOpen(seqs [][]int, arrivals []int, cfg Config) (OpenResult, error) {
	if len(arrivals) != len(seqs) {
		return OpenResult{}, fmt.Errorf("memsim: %d arrivals for %d queries", len(arrivals), len(seqs))
	}
	for i, a := range arrivals {
		if a < 0 {
			return OpenResult{}, fmt.Errorf("memsim: negative arrival %d for query %d", a, i)
		}
	}
	res, completions := run(seqs, arrivals, cfg)
	out := OpenResult{Queries: len(seqs), Makespan: res.Makespan}
	totalLatency := 0
	var latencies []int
	for i, done := range completions {
		if len(seqs[i]) == 0 {
			continue
		}
		l := done - arrivals[i] + 1
		totalLatency += l
		latencies = append(latencies, l)
		if l > out.MaxLatency {
			out.MaxLatency = l
		}
	}
	if res.Makespan > 0 {
		out.Throughput = float64(len(seqs)) / float64(res.Makespan)
	}
	if len(latencies) > 0 {
		out.AvgLatency = float64(totalLatency) / float64(len(latencies))
		sort.Ints(latencies)
		out.P50Latency = latencies[len(latencies)/2]
		out.P99Latency = latencies[len(latencies)*99/100]
	}
	return out, nil
}

// run is the shared engine. arrivals may be nil (all zero). It returns the
// closed-system result and the completion cycle of each processor's last
// probe (0-indexed cycles; -1 for empty sequences).
func run(seqs [][]int, arrivals []int, cfg Config) (Result, []int) {
	res := Result{Processors: len(seqs)}
	completions := make([]int, len(seqs))
	for i := range completions {
		completions[i] = -1
	}
	for _, s := range seqs {
		res.TotalProbes += len(s)
		if len(s) > res.IdealSpan {
			res.IdealSpan = len(s)
		}
	}
	if res.TotalProbes == 0 {
		return res, completions
	}
	moduleOf := func(cell int) int {
		if cfg.Modules <= 0 {
			return cell
		}
		return cell % cfg.Modules
	}

	type proc struct {
		pos   int // next probe index in seqs[p]
		ready int // first cycle at which the next probe may issue
	}
	type request struct {
		proc int
		cell int
	}
	procs := make([]proc, len(seqs))
	queues := make(map[int][]request) // module -> waiting requests, FIFO
	issued := make([]int, len(seqs))
	for i := range issued {
		issued[i] = -1
	}
	remaining := 0
	for p, s := range seqs {
		if len(s) > 0 {
			remaining++
		} else {
			procs[p].pos = len(s)
		}
	}

	totalLatency := 0
	served := make(map[int]int) // module -> service cycles used
	complete := func(rq request, cycle int) {
		p := rq.proc
		if cfg.Sink != nil {
			cfg.Sink.ProbeObserved(procs[p].pos, rq.cell)
		}
		totalLatency += cycle - issued[p] + 1
		issued[p] = -1
		procs[p].pos++
		procs[p].ready = cycle + 1
		if procs[p].pos >= len(seqs[p]) {
			remaining--
			completions[p] = cycle
		}
	}
	for cycle := 0; remaining > 0; cycle++ {
		// Issue phase: processors whose previous probe completed enqueue
		// their next request, in processor order for determinism.
		for p := range procs {
			pr := &procs[p]
			if pr.pos >= len(seqs[p]) || pr.ready > cycle || issued[p] >= 0 {
				continue
			}
			if arrivals != nil && arrivals[p] > cycle {
				continue
			}
			cell := seqs[p][pr.pos]
			mod := moduleOf(cell)
			queues[mod] = append(queues[mod], request{proc: p, cell: cell})
			issued[p] = cycle
			if len(queues[mod]) > res.MaxQueue {
				res.MaxQueue = len(queues[mod])
			}
		}
		// Service phase: each module serves the front of its queue; with
		// combining, every queued request for the same cell rides along.
		for mod, q := range queues {
			front := q[0]
			rest := q[1:]
			if cfg.Combining {
				kept := rest[:0]
				for _, rq := range rest {
					if rq.cell == front.cell {
						complete(rq, cycle)
					} else {
						kept = append(kept, rq)
					}
				}
				rest = kept
			}
			if len(rest) == 0 {
				delete(queues, mod)
			} else {
				queues[mod] = append([]request(nil), rest...)
			}
			served[mod]++
			complete(front, cycle)
		}
		res.Makespan = cycle + 1
	}
	for _, c := range served {
		if c > res.MaxModuleLoad {
			res.MaxModuleLoad = c
		}
	}
	res.AvgLatency = float64(totalLatency) / float64(res.TotalProbes)
	return res, completions
}

// Prober is the slice of the dictionary surface the sequence extractor
// needs; every structure in this repository satisfies it. Contains takes
// the same rng.Source abstraction the live query path uses, so simulated
// probe sequences are drawn from exactly the replica-choice distribution
// real concurrent queries would produce.
type Prober interface {
	Table() *cellprobe.Table
	Contains(x uint64, r rng.Source) (bool, error)
}

// Sequences executes procs queries sampled from q against st and captures
// each query's exact probe sequence via the table trace hook.
func Sequences(st Prober, q dist.Dist, procs int, r *rng.RNG) ([][]int, error) {
	tab := st.Table()
	seqs := make([][]int, procs)
	var current []int
	tab.SetTrace(func(_, cell int) { current = append(current, cell) })
	defer tab.SetTrace(nil)
	for p := 0; p < procs; p++ {
		current = nil
		if _, err := st.Contains(q.Sample(r), r); err != nil {
			return nil, fmt.Errorf("memsim: query %d: %w", p, err)
		}
		seqs[p] = current
	}
	return seqs, nil
}
