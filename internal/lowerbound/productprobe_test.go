package lowerbound

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// runProductProbe estimates the success rate and conditional distribution.
func runProductProbe(t *testing.T, p []float64, trials int, seed uint64) (successRate float64, cond []float64) {
	t.Helper()
	if err := ValidateProbeDist(p); err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	counts := make([]int, len(p))
	successes := 0
	for i := 0; i < trials; i++ {
		_, cell, ok := ProductProbe(p, r)
		if ok {
			successes++
			counts[cell]++
		}
	}
	cond = make([]float64, len(p))
	for i, c := range counts {
		if successes > 0 {
			cond[i] = float64(c) / float64(successes)
		}
	}
	return float64(successes) / float64(trials), cond
}

// TestProductProbeCase1 — all p_i ≤ 1/2 (proof case 1): success ≥ 1/4 and
// the conditional distribution equals p.
func TestProductProbeCase1(t *testing.T) {
	p := []float64{0.3, 0.2, 0.1, 0.25, 0.15}
	rate, cond := runProductProbe(t, p, 400000, 1)
	if rate < 0.25 {
		t.Errorf("success rate %v below 1/4", rate)
	}
	for i := range p {
		if math.Abs(cond[i]-p[i]) > 0.01 {
			t.Errorf("conditional[%d] = %v, want %v", i, cond[i], p[i])
		}
	}
}

// TestProductProbeCase2 — one p_0 > 1/2 (proof case 2).
func TestProductProbeCase2(t *testing.T) {
	p := []float64{0.7, 0.1, 0.1, 0.1}
	rate, cond := runProductProbe(t, p, 400000, 2)
	if rate < 0.25 {
		t.Errorf("success rate %v below 1/4", rate)
	}
	for i := range p {
		if math.Abs(cond[i]-p[i]) > 0.01 {
			t.Errorf("conditional[%d] = %v, want %v", i, cond[i], p[i])
		}
	}
}

// TestProductProbeDeterministicPoint — p concentrated on one cell.
func TestProductProbePoint(t *testing.T) {
	p := []float64{0, 1, 0}
	rate, cond := runProductProbe(t, p, 100000, 3)
	// p' = 1/2, ε = 0: succeed whenever exactly cell 1 is probed: 1/2.
	if rate < 0.45 || rate > 0.55 {
		t.Errorf("point success rate %v, want ≈ 1/2", rate)
	}
	if cond[1] != 1 {
		t.Errorf("conditional = %v, want all mass on 1", cond)
	}
}

// TestProductProbeUniform — the spread case the dictionary relies on.
func TestProductProbeUniform(t *testing.T) {
	const s = 16
	p := make([]float64, s)
	for i := range p {
		p[i] = 1.0 / s
	}
	rate, cond := runProductProbe(t, p, 400000, 4)
	// ρ = (1 − 1/s)^s → 1/e; success = ρ·Σp(1−p)... ≥ 1/4 per the lemma.
	if rate < 0.25 {
		t.Errorf("uniform success rate %v below 1/4", rate)
	}
	for i := range p {
		if math.Abs(cond[i]-p[i]) > 0.01 {
			t.Errorf("conditional[%d] = %v, want %v", i, cond[i], p[i])
		}
	}
}

// TestProductProbeIsProductSpace — the defining property: cell memberships
// of J are independent across cells. Check pairwise independence
// empirically on two cells.
func TestProductProbeIsProductSpace(t *testing.T) {
	p := []float64{0.4, 0.3, 0.2}
	r := rng.New(5)
	const trials = 300000
	var c0, c1, both int
	for i := 0; i < trials; i++ {
		J, _, _ := ProductProbe(p, r)
		in0, in1 := false, false
		for _, j := range J {
			if j == 0 {
				in0 = true
			}
			if j == 1 {
				in1 = true
			}
		}
		if in0 {
			c0++
		}
		if in1 {
			c1++
		}
		if in0 && in1 {
			both++
		}
	}
	p0 := float64(c0) / trials
	p1 := float64(c1) / trials
	pBoth := float64(both) / trials
	if math.Abs(pBoth-p0*p1) > 0.005 {
		t.Errorf("J not a product space: P(0∧1)=%v, P(0)P(1)=%v", pBoth, p0*p1)
	}
}

func TestValidateProbeDist(t *testing.T) {
	good := [][]float64{
		{0.5, 0.5},
		{1},
		{0.7, 0.2},
		{},
	}
	for i, p := range good {
		if err := ValidateProbeDist(p); err != nil {
			t.Errorf("good dist %d rejected: %v", i, err)
		}
	}
	bad := [][]float64{
		{0.8, 0.8}, // sums over 1 and two entries > 1/2
		{-0.1, 0.5},
		{1.2},
		{0.6, 0.6}, // two entries > 1/2
	}
	for i, p := range bad {
		if err := ValidateProbeDist(p); err == nil {
			t.Errorf("bad dist %d accepted", i)
		}
	}
}
