package lowerbound

import (
	"fmt"

	"repro/internal/rng"
)

// CoupledProbes realizes the joint distribution of Lemma 21: given n
// product-space probe distributions (probs[i][j] = Pr[cell j ∈ J_i]), it
// draws sets L_1..L_n such that each L_i has exactly its marginal
// distribution while the union ∪L_i is concentrated on the shared base set
// B — so E[|∪L_i|] ≤ Σ_j max_i probs[i][j], the information bound that
// powers Lemma 14.
//
// Construction (verbatim from the proof): draw B by including each cell j
// independently with probability p̃_j = max_i probs[i][j]; then each cell
// j ∈ B joins L_i independently with probability probs[i][j]/p̃_j.
func CoupledProbes(probs [][]float64, r *rng.RNG) ([][]int, error) {
	if len(probs) == 0 {
		return nil, nil
	}
	s := len(probs[0])
	for i, p := range probs {
		if len(p) != s {
			return nil, fmt.Errorf("lowerbound: instance %d has %d cells, want %d", i, len(p), s)
		}
		for j, v := range p {
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("lowerbound: probs[%d][%d] = %v", i, j, v)
			}
		}
	}
	tilde := make([]float64, s)
	for j := 0; j < s; j++ {
		for i := range probs {
			if probs[i][j] > tilde[j] {
				tilde[j] = probs[i][j]
			}
		}
	}
	out := make([][]int, len(probs))
	for j := 0; j < s; j++ {
		if tilde[j] == 0 || r.Float64() >= tilde[j] {
			continue
		}
		// j ∈ B: thin into each instance.
		for i := range probs {
			if probs[i][j] == 0 {
				continue
			}
			if r.Float64() < probs[i][j]/tilde[j] {
				out[i] = append(out[i], j)
			}
		}
	}
	return out, nil
}

// UnionBound returns Σ_j max_i probs[i][j] — Lemma 21's bound on the
// expected size of the coupled union.
func UnionBound(probs [][]float64) float64 {
	if len(probs) == 0 {
		return 0
	}
	total := 0.0
	for j := range probs[0] {
		best := 0.0
		for i := range probs {
			if probs[i][j] > best {
				best = probs[i][j]
			}
		}
		total += best
	}
	return total
}
