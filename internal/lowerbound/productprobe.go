package lowerbound

import (
	"fmt"

	"repro/internal/rng"
)

// ProductProbe simulates a single randomized cell probe with distribution p
// over [s] by a product-space cell probe (Appendix A, Lemma 19): every cell
// is probed independently, which is what lets Lemma 21 couple n parallel
// instances so their union of probed cells is small.
//
// Procedure (verbatim from the proof): probe each cell i independently with
// probability p'_i = min(p_i, ½), giving the set J; fail unless |J| = 1;
// if J = {i}, fail with probability ε_i = min(p_i, 1−p_i). On success the
// returned cell is distributed exactly according to p, and the success
// probability is at least ¼.
//
// It returns the probed set J (always), the simulated cell, and whether the
// simulation succeeded.
func ProductProbe(p []float64, r *rng.RNG) (J []int, cell int, ok bool) {
	for i, pi := range p {
		pp := pi
		if pp > 0.5 {
			pp = 0.5
		}
		if r.Float64() < pp {
			J = append(J, i)
		}
	}
	if len(J) != 1 {
		return J, 0, false
	}
	i := J[0]
	eps := p[i]
	if 1-p[i] < eps {
		eps = 1 - p[i]
	}
	if r.Float64() < eps {
		return J, 0, false
	}
	return J, i, true
}

// ValidateProbeDist checks that p is a probability distribution with at
// most one entry above ½ (the two cases of the Lemma 19 proof cover exactly
// these; a distribution cannot have two entries > ½).
func ValidateProbeDist(p []float64) error {
	total := 0.0
	big := 0
	for i, pi := range p {
		if pi < 0 || pi > 1 {
			return fmt.Errorf("lowerbound: p[%d] = %v", i, pi)
		}
		if pi > 0.5 {
			big++
		}
		total += pi
	}
	if total > 1+1e-9 {
		return fmt.Errorf("lowerbound: probe distribution sums to %v", total)
	}
	if big > 1 {
		return fmt.Errorf("lowerbound: %d entries exceed 1/2", big)
	}
	return nil
}
