package lowerbound

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/cellprobe"
	"repro/internal/rng"
)

// ColumnMaxSum computes Σ_j max_i P(i, j) over a step's probe spans of n
// query instances: spans[i] lists instance i's spans (non-overlapping within
// an instance, as every structure here produces). This is the left side of
// Lemma 16 and, times b, the information bound (3) of Lemma 14.
//
// The sweep runs in O(k log k) for k total spans via a lazy-deletion
// max-heap over per-cell masses.
func ColumnMaxSum(spans [][]cellprobe.Span) float64 {
	type event struct {
		pos   int
		value float64
		open  bool
	}
	var events []event
	for _, inst := range spans {
		for _, sp := range inst {
			if sp.Count <= 0 || sp.Mass <= 0 {
				continue
			}
			pc := sp.PerCell()
			events = append(events,
				event{pos: sp.Start, value: pc, open: true},
				event{pos: sp.Start + sp.Count, value: pc, open: false})
		}
	}
	if len(events) == 0 {
		return 0
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	active := &lazyMaxHeap{}
	removed := map[float64]int{}
	total := 0.0
	i := 0
	prev := events[0].pos
	for i < len(events) {
		pos := events[i].pos
		// Contribution of the segment [prev, pos).
		if pos > prev {
			if m, ok := active.Max(removed); ok {
				total += float64(pos-prev) * m
			}
			prev = pos
		}
		for i < len(events) && events[i].pos == pos {
			if events[i].open {
				heap.Push(active, events[i].value)
			} else {
				removed[events[i].value]++
			}
			i++
		}
	}
	return total
}

// lazyMaxHeap is a float64 max-heap with lazy deletion.
type lazyMaxHeap []float64

func (h lazyMaxHeap) Len() int            { return len(h) }
func (h lazyMaxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h lazyMaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lazyMaxHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *lazyMaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Max returns the current maximum, discarding lazily removed entries.
func (h *lazyMaxHeap) Max(removed map[float64]int) (float64, bool) {
	for h.Len() > 0 {
		top := (*h)[0]
		if removed[top] > 0 {
			removed[top]--
			heap.Pop(h)
			continue
		}
		return top, true
	}
	return 0, false
}

// LargestCheapSet returns |R| for the largest R ⊆ [n] with
// Σ_{i∈R} 1/max_j P(i,j) ≤ s, the right side of Lemma 16. maxPerInstance[i]
// is max_j P(i, j); instances with zero max are probing nothing and are
// excluded.
func LargestCheapSet(maxPerInstance []float64, s int) int {
	count, _ := cheapSet(maxPerInstance, s)
	return count
}

// CheapSetLPBound returns the exact linear-programming optimum of Lemma 16's
// proof: maximize Σ x_i subject to x_i ≤ 1 and Σ x_i / max_j P(i,j) ≤ s.
// The paper states the bound as |R|, which drops the fractional remainder of
// the last row the budget partially covers; Σ_j max_i P(i,j) can exceed |R|
// by that fraction (< 1), and this function is the rigorous bound our
// property tests verify. The looseness is absorbed by the theorem's
// constants.
func CheapSetLPBound(maxPerInstance []float64, s int) float64 {
	count, frac := cheapSet(maxPerInstance, s)
	return float64(count) + frac
}

func cheapSet(maxPerInstance []float64, s int) (count int, frac float64) {
	costs := make([]float64, 0, len(maxPerInstance))
	for _, m := range maxPerInstance {
		if m > 0 {
			costs = append(costs, 1/m)
		}
	}
	sort.Float64s(costs)
	budget := float64(s)
	for _, c := range costs {
		if budget < c {
			frac = budget / c
			if frac > 1 {
				frac = 1
			}
			return count, frac
		}
		budget -= c
		count++
	}
	return count, 0
}

// AdversaryVector realizes Lemma 15 constructively. M is an N×n
// non-negative matrix; rows for which the sum of their r smallest entries
// is ≤ delta are the "good" rows the adversary must violate. It returns a
// vector q with Σq_i = eps such that for every good row u there is an i
// with M[u][i] < q_i, together with the index set T it concentrated on.
// Rows whose cheapest-r sum exceeds delta (not good) are ignored, matching
// the lemma's hypothesis.
func AdversaryVector(M [][]float64, r int, eps, delta float64, rnd *rng.RNG) (q []float64, T []int) {
	if len(M) == 0 {
		return nil, nil
	}
	n := len(M[0])
	if r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	// R'_u: indices of the r/2 smallest entries of each good row.
	half := r / 2
	if half < 1 {
		half = 1
	}
	var rprime [][]int
	idx := make([]int, n)
	for _, row := range M {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		sum := 0.0
		for _, i := range idx[:r] {
			sum += row[i]
		}
		if sum > delta {
			continue // row is not good; the adversary need not violate it
		}
		rprime = append(rprime, append([]int(nil), idx[:half]...))
	}
	if len(rprime) == 0 {
		return make([]float64, n), nil
	}
	// Find a small T hitting every R'_u. The probabilistic argument
	// guarantees a random set of size 2n·lnN/r works; we retry random
	// draws and grow the size if needed, then greedily minimize.
	lnN := math.Log(math.Max(float64(len(M)), 2))
	size := int(math.Ceil(2 * float64(n) * lnN / float64(r)))
	if size < 1 {
		size = 1
	}
	if size > n {
		size = n
	}
	for attempts := 0; ; attempts++ {
		perm := rnd.Perm(n)
		cand := perm[:size]
		in := make([]bool, n)
		for _, i := range cand {
			in[i] = true
		}
		ok := true
		for _, rp := range rprime {
			hit := false
			for _, i := range rp {
				if in[i] {
					hit = true
					break
				}
			}
			if !hit {
				ok = false
				break
			}
		}
		if ok {
			T = cand
			break
		}
		if attempts%8 == 7 && size < n {
			size++ // finite-n slack over the asymptotic bound
		}
	}
	q = make([]float64, n)
	for _, i := range T {
		q[i] = eps / float64(len(T))
	}
	return q, T
}

// ViolatesAllGoodRows checks the Lemma 15 postcondition: every row whose
// r cheapest entries sum to ≤ delta has some entry strictly below q.
func ViolatesAllGoodRows(M [][]float64, r int, delta float64, q []float64) bool {
	n := len(q)
	if r > n {
		r = n
	}
	idx := make([]int, n)
	for _, row := range M {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		sum := 0.0
		for _, i := range idx[:r] {
			sum += row[i]
		}
		if sum > delta {
			continue
		}
		violated := false
		for i := range row {
			if row[i] < q[i] {
				violated = true
				break
			}
		}
		if !violated {
			return false
		}
	}
	return true
}

// Recursion returns the bound sequence E[C_1] ≤ a1,
// E[C_t] ≤ √(a·E[C_{t−1}]) for t = 1..steps (Theorem 13's proof).
func Recursion(a1, a float64, steps int) []float64 {
	out := make([]float64, steps)
	cur := a1
	for t := 0; t < steps; t++ {
		if t > 0 {
			cur = math.Sqrt(a * cur)
		}
		out[t] = cur
	}
	return out
}

// MinTStar returns the smallest t* ≥ 1 satisfying Theorem 13's final
// inequality n·2^(−2t*) ≤ a1·a^(1−2^(−t*)), with a1 = b·(φ*·s) and
// a = (5 ln 2)·b²·t*·(φ*·s)·n. phiTimesS is the contention as a multiple of
// the optimal 1/s (the paper's polylog(n) budget); b is the cell width in
// bits. Any scheme with fewer probes cannot gather the required n·2^(−2t*)
// bits, so this is the probe-count lower bound — Θ(log log n) for
// polylogarithmic b and phiTimesS.
func MinTStar(n, b, phiTimesS float64) int {
	if n <= 1 {
		return 1
	}
	return MinTStarLog2(math.Log2(n), b, phiTimesS)
}

// MinTStarLog2 is MinTStar with n given as log₂ n, usable beyond the
// float64 range (n up to 2^(2^53)).
func MinTStarLog2(log2N, b, phiTimesS float64) int {
	if log2N <= 0 {
		return 1
	}
	lnN := log2N * math.Ln2
	lnA1 := math.Log(b * phiTimesS)
	for t := 1; t <= 64; t++ {
		lnA := math.Log(5*math.Ln2*b*b*phiTimesS) + lnN + math.Log(float64(t))
		lhs := lnN - 2*float64(t)*math.Ln2
		rhs := lnA1 + (1-math.Pow(2, -float64(t)))*lnA
		if lhs <= rhs {
			return t
		}
	}
	return 64
}
