package lowerbound

import (
	"math"
	"testing"

	"repro/internal/cellprobe"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/rng"
)

func TestVCDimMembership(t *testing.T) {
	// VC-dim of membership with data sets of size k is exactly k (§3).
	for _, tc := range []struct{ universe, setSize, want int }{
		{6, 0, 0},
		{6, 1, 1},
		{6, 3, 3},
		{6, 6, 0}, // only one data set (everything): nothing shattered
		{8, 4, 4},
		{5, 2, 2},
	} {
		p := Membership(tc.universe, tc.setSize)
		if got := VCDim(p); got != tc.want {
			t.Errorf("VCDim(membership %d choose %d) = %d, want %d",
				tc.universe, tc.setSize, got, tc.want)
		}
	}
}

func TestVCDimHandConstructed(t *testing.T) {
	// Problem with rows {00, 01, 10}: shatters one query but not two.
	p := Problem{NumQueries: 2, Rows: []uint64{0b00, 0b01, 0b10}}
	if got := VCDim(p); got != 1 {
		t.Errorf("VCDim = %d, want 1", got)
	}
	// Adding row 11 shatters both queries.
	p.Rows = append(p.Rows, 0b11)
	if got := VCDim(p); got != 2 {
		t.Errorf("VCDim = %d, want 2", got)
	}
	if got := VCDim(Problem{}); got != 0 {
		t.Errorf("VCDim(empty) = %d", got)
	}
}

func TestVCDimInterval(t *testing.T) {
	// Intervals on a line have VC-dimension exactly 2 for ≥ 3 points.
	for _, q := range []int{3, 5, 8, 12} {
		if got := VCDim(Interval(q)); got != 2 {
			t.Errorf("VCDim(interval %d) = %d, want 2", q, got)
		}
	}
	// Degenerate universes: with one point there is no empty interval, so
	// the single point cannot be labeled 0 — dimension 0.
	if got := VCDim(Interval(1)); got != 0 {
		t.Errorf("VCDim(interval 1) = %d, want 0", got)
	}
	if got := VCDim(Interval(0)); got != 0 {
		t.Errorf("VCDim(interval 0) = %d, want 0", got)
	}
	// Two points cannot both be labeled 0 either — dimension 1.
	if got := VCDim(Interval(2)); got != 1 {
		t.Errorf("VCDim(interval 2) = %d, want 1", got)
	}
}

func TestVCDimThreshold(t *testing.T) {
	for _, q := range []int{1, 4, 10} {
		if got := VCDim(Threshold(q)); got != 1 {
			t.Errorf("VCDim(threshold %d) = %d, want 1", q, got)
		}
	}
}

func TestVCDimParity(t *testing.T) {
	for _, q := range []int{0, 1, 3, 8} {
		if got := VCDim(Parity(q)); got != q {
			t.Errorf("VCDim(parity %d) = %d, want %d", q, got, q)
		}
	}
}

// TestTheorem13AppliesAcrossProblems: the lower bound is stated for any
// problem with a non-degenerate VC-dimension — verify MinTStar responds to
// the dimension, not the problem encoding: parity(q) has dimension q, so
// its bound matches membership's with n = q shattered queries.
func TestTheorem13AppliesAcrossProblems(t *testing.T) {
	nFromVC := func(p Problem) float64 { return float64(int(1) << uint(VCDim(p))) }
	mem := Membership(12, 6)
	par := Parity(6)
	if VCDim(mem) != VCDim(par) {
		t.Fatalf("dimensions differ: %d vs %d", VCDim(mem), VCDim(par))
	}
	if MinTStar(nFromVC(mem), 64, 64) != MinTStar(nFromVC(par), 64, 64) {
		t.Error("equal VC-dimensions gave different t* bounds")
	}
}

func TestColumnMaxSumSimple(t *testing.T) {
	// Two instances: instance 0 uniform over cells [0,4), instance 1 a
	// point at cell 2. Column maxima: 0.25, 0.25, 1, 0.25 -> 1.75.
	spans := [][]cellprobe.Span{
		{{Start: 0, Count: 4, Mass: 1}},
		{{Start: 2, Count: 1, Mass: 1}},
	}
	if got := ColumnMaxSum(spans); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("ColumnMaxSum = %v, want 1.75", got)
	}
}

func TestColumnMaxSumEmpty(t *testing.T) {
	if got := ColumnMaxSum(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := ColumnMaxSum([][]cellprobe.Span{{}, {}}); got != 0 {
		t.Errorf("no spans = %v", got)
	}
}

func TestColumnMaxSumMatchesBruteForce(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		const cells = 60
		nInst := 1 + r.Intn(6)
		spans := make([][]cellprobe.Span, nInst)
		dense := make([][]float64, nInst)
		for i := range spans {
			dense[i] = make([]float64, cells)
			// Spans within one instance must not overlap (the documented
			// ColumnMaxSum contract, honored by every structure's specs):
			// carve them from disjoint ranges.
			pos := 0
			nsp := 1 + r.Intn(3)
			for k := 0; k < nsp && pos < cells; k++ {
				start := pos + r.Intn(cells-pos)
				if start >= cells {
					break
				}
				count := 1 + r.Intn(cells-start)
				mass := r.Float64() / float64(nsp)
				spans[i] = append(spans[i], cellprobe.Span{Start: start, Count: count, Mass: mass})
				for j := start; j < start+count; j++ {
					dense[i][j] += mass / float64(count)
				}
				pos = start + count
			}
		}
		want := 0.0
		for j := 0; j < cells; j++ {
			best := 0.0
			for i := range dense {
				if dense[i][j] > best {
					best = dense[i][j]
				}
			}
			want += best
		}
		got := ColumnMaxSum(spans)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: sweep %v, brute %v", trial, got, want)
		}
	}
}

func TestColumnMaxSumOverlapWithinInstance(t *testing.T) {
	// Overlapping spans within one instance sum per cell; the sweep treats
	// each span independently, so per-instance sums are only correct when
	// spans do not overlap — verify the documented non-overlap contract is
	// honored by our structures' specs rather than silently wrong here:
	// with two identical instances the max equals a single instance.
	sp := []cellprobe.Span{{Start: 0, Count: 2, Mass: 1}}
	one := ColumnMaxSum([][]cellprobe.Span{sp})
	two := ColumnMaxSum([][]cellprobe.Span{sp, sp})
	if math.Abs(one-two) > 1e-12 {
		t.Errorf("identical instances changed column-max sum: %v vs %v", one, two)
	}
}

func TestLargestCheapSet(t *testing.T) {
	// maxima 1, 1/2, 1/4 -> costs 1, 2, 4. Budget 3 fits {1,2} -> 2.
	if got := LargestCheapSet([]float64{1, 0.5, 0.25}, 3); got != 2 {
		t.Errorf("LargestCheapSet = %d, want 2", got)
	}
	if got := LargestCheapSet([]float64{1, 0.5, 0.25}, 7); got != 3 {
		t.Errorf("LargestCheapSet = %d, want 3", got)
	}
	if got := LargestCheapSet([]float64{0, 0}, 10); got != 0 {
		t.Errorf("all-zero instances = %d, want 0", got)
	}
}

// TestLemma16Inequality: Σ_j max_i P(i,j) ≤ |R| on random sub-stochastic
// span matrices.
func TestLemma16Inequality(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 60; trial++ {
		const cells = 80
		nInst := 2 + r.Intn(8)
		spans := make([][]cellprobe.Span, nInst)
		maxima := make([]float64, nInst)
		for i := range spans {
			start := r.Intn(cells)
			count := 1 + r.Intn(cells-start)
			mass := 0.1 + 0.9*r.Float64()
			spans[i] = []cellprobe.Span{{Start: start, Count: count, Mass: mass}}
			maxima[i] = mass / float64(count)
		}
		lhs := ColumnMaxSum(spans)
		lp := CheapSetLPBound(maxima, cells)
		if lhs > lp+1e-9 {
			t.Fatalf("trial %d: Lemma 16 LP bound violated: %v > %v", trial, lhs, lp)
		}
		// The paper's integer statement holds up to the fractional slack.
		if intBound := LargestCheapSet(maxima, cells); lhs > float64(intBound)+1 {
			t.Fatalf("trial %d: %v exceeds |R| + 1 = %d", trial, lhs, intBound+1)
		}
	}
}

// TestAdversaryVector: the constructed q violates every good row, sums to
// eps, and is supported on T.
func TestAdversaryVector(t *testing.T) {
	r := rng.New(3)
	const N, n = 40, 30
	M := make([][]float64, N)
	for u := range M {
		M[u] = make([]float64, n)
		for i := range M[u] {
			M[u][i] = r.Float64() * 0.001 // small entries: all rows good
		}
	}
	const eps, delta = 0.5, 0.02
	rr := 10
	q, T := AdversaryVector(M, rr, eps, delta, r)
	if len(T) == 0 {
		t.Fatal("empty T")
	}
	sum := 0.0
	for i, v := range q {
		sum += v
		if v > 0 {
			found := false
			for _, ti := range T {
				if ti == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("q positive off T at %d", i)
			}
		}
	}
	if math.Abs(sum-eps) > 1e-9 {
		t.Errorf("Σq = %v, want %v", sum, eps)
	}
	if !ViolatesAllGoodRows(M, rr, delta, q) {
		t.Error("adversary vector does not violate all good rows")
	}
}

func TestAdversaryVectorIgnoresBadRows(t *testing.T) {
	r := rng.New(4)
	// One row with huge entries everywhere (not good): must not prevent
	// construction, and the checker must skip it.
	M := [][]float64{
		{10, 10, 10, 10},
		{0, 0, 0, 0},
	}
	q, _ := AdversaryVector(M, 2, 0.5, 0.1, r)
	if !ViolatesAllGoodRows(M, 2, 0.1, q) {
		t.Error("good row not violated")
	}
}

func TestRecursionMonotoneAndBounded(t *testing.T) {
	seq := Recursion(100, 1e6, 10)
	if seq[0] != 100 {
		t.Errorf("C1 = %v", seq[0])
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != math.Sqrt(1e6*seq[i-1]) {
			t.Fatalf("recursion broken at %d", i)
		}
	}
	// The sequence converges to the fixed point a.
	if math.Abs(seq[9]-1e6)/1e6 > 0.2 {
		t.Errorf("sequence did not approach fixed point: %v", seq[9])
	}
}

// TestMinTStarGrowsLikeLogLog is the Theorem 13 shape: for b = φ·s = log²n,
// the minimal feasible t* tracks log log n.
func TestMinTStarGrowsLikeLogLog(t *testing.T) {
	prev := 0
	for _, e := range []int{8, 16, 32, 64, 128, 256} {
		n := math.Pow(2, float64(e))
		l2 := math.Log2(n)
		tstar := MinTStar(n, l2*l2, l2*l2)
		if tstar < prev {
			t.Errorf("t* decreased: n=2^%d gives %d after %d", e, tstar, prev)
		}
		prev = tstar
		loglog := math.Log2(math.Log2(n))
		// Within a small additive/multiplicative band of log log n.
		if float64(tstar) > 3*loglog+4 {
			t.Errorf("n=2^%d: t* = %d too large vs loglog %v", e, tstar, loglog)
		}
	}
	// Strict growth over a wide range confirms unboundedness.
	small := MinTStar(1<<8, 64, 64)
	large := MinTStar(math.Pow(2, 512), 81, 81)
	if large <= small {
		t.Errorf("t* not growing: %d vs %d", small, large)
	}
}

func TestMinTStarLog2Consistent(t *testing.T) {
	for _, e := range []float64{8, 32, 128, 512} {
		a := MinTStar(math.Pow(2, e), e*e, e*e)
		b := MinTStarLog2(e, e*e, e*e)
		if a != b {
			t.Errorf("e=%v: MinTStar %d != MinTStarLog2 %d", e, a, b)
		}
	}
	// Log2 form reaches far beyond float64 range and keeps growing.
	small := MinTStarLog2(64, 64*64, 64*64)
	huge := MinTStarLog2(1<<20, 400, 400)
	if huge <= small {
		t.Errorf("t* not growing into the huge range: %d vs %d", small, huge)
	}
	if got := MinTStarLog2(0, 10, 10); got != 1 {
		t.Errorf("log2N=0: %d", got)
	}
}

func TestMinTStarDegenerate(t *testing.T) {
	if got := MinTStar(1, 10, 10); got != 1 {
		t.Errorf("n=1: %d", got)
	}
	if got := MinTStar(0, 10, 10); got != 1 {
		t.Errorf("n=0: %d", got)
	}
}

func distinctKeys(r *rng.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// TestPlayGameOnRealDictionary runs the Lemma 14 accounting on the actual
// low-contention dictionary: the information bound must be feasible (the
// scheme is correct), replicated rounds must contribute ≈ 1 cell of
// information, and the data round ≈ n cells.
func TestPlayGameOnRealDictionary(t *testing.T) {
	r := rng.New(5)
	keys := distinctKeys(r, 512)
	d, err := core.Build(keys, core.Params{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]cellprobe.ProbeSpec, len(keys))
	for i, k := range keys {
		specs[i] = d.ProbeSpec(k)
	}
	res := PlayGame(specs, 128)
	if res.Instances != len(keys) {
		t.Errorf("instances = %d", res.Instances)
	}
	if !res.Feasible() {
		t.Errorf("correct scheme reported infeasible: total %v < required %v", res.TotalBits, res.RequiredBits)
	}
	// Coefficient rounds: every instance reads the same full-row span, so
	// the union bound is exactly 1 cell of information.
	for i := 0; i < 8; i++ {
		if math.Abs(res.Rounds[i].InfoRate-1) > 1e-9 {
			t.Errorf("coefficient round %d info rate %v, want 1", i, res.Rounds[i].InfoRate)
		}
	}
	// Final (data) round: point probes, nearly all distinct.
	last := res.Rounds[len(res.Rounds)-1]
	if last.InfoRate < float64(len(keys))*0.9 {
		t.Errorf("data round info rate %v, want ≈ %d", last.InfoRate, len(keys))
	}
	// The adversary's constraint quantity is finite and ≤ 1.
	for _, round := range res.Rounds {
		if round.MaxCellProb <= 0 || round.MaxCellProb > 1+1e-9 {
			t.Errorf("round %d max cell prob %v", round.Step, round.MaxCellProb)
		}
	}
}

func TestPlayGameEmpty(t *testing.T) {
	res := PlayGame(nil, 128)
	if res.TotalBits != 0 || len(res.Rounds) != 0 {
		t.Errorf("empty game: %+v", res)
	}
	if res.RequiredBits != 0 {
		t.Errorf("required bits %v", res.RequiredBits)
	}
}

func BenchmarkColumnMaxSum1024(b *testing.B) {
	r := rng.New(1)
	spans := make([][]cellprobe.Span, 1024)
	for i := range spans {
		start := r.Intn(4096)
		spans[i] = []cellprobe.Span{{Start: start, Count: 1 + r.Intn(64), Mass: 1}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ColumnMaxSum(spans)
	}
}

func BenchmarkVCDimMembership12(b *testing.B) {
	p := Membership(12, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if VCDim(p) != 6 {
			b.Fatal("wrong VC dim")
		}
	}
}
