package lowerbound

import (
	"math"

	"repro/internal/cellprobe"
)

// GameRound records one round of the Lemma 14 communication game.
type GameRound struct {
	Step int
	// InfoRate is Σ_j max_i P_t(i, j): how many cells the n parallel
	// query instances can usefully read this round after Lemma 21's
	// coupling (their union of probed cells has this expected size).
	InfoRate float64
	// BitsBound = b · InfoRate bounds the information received (Lemma 14,
	// inequality (3)).
	BitsBound float64
	// MaxCellProb is max_{i,j} P_t(i, j), the quantity the adversary
	// constrains via (2): P_t(i, j) ≤ φ*/q_i.
	MaxCellProb float64
}

// GameResult aggregates the game over all rounds of a scheme's probe
// specifications.
type GameResult struct {
	Instances int
	Rounds    []GameRound
	// TotalBits is Σ_t BitsBound — the most the algorithm can have learned.
	TotalBits float64
	// RequiredBits is n·2^(−2t*) (Lemma 14, property 3): the information
	// the n parallel product-space instances must collect in expectation.
	RequiredBits float64
}

// Feasible reports whether the information actually obtainable covers the
// requirement. A correct scheme always satisfies it; the lower bound's
// content is how large t* must be before it can hold under contention
// constraints.
func (g GameResult) Feasible() bool { return g.TotalBits >= g.RequiredBits }

// PlayGame runs the Lemma 14 accounting on the exact probe specifications
// of n query instances against a fixed table: per round it computes the
// column-max information bound, and it compares the cumulative total with
// the requirement n·2^(−2t*). bBits is the cell width b in bits.
func PlayGame(specs []cellprobe.ProbeSpec, bBits float64) GameResult {
	res := GameResult{Instances: len(specs)}
	steps := 0
	for _, sp := range specs {
		if len(sp) > steps {
			steps = len(sp)
		}
	}
	for t := 0; t < steps; t++ {
		round := GameRound{Step: t}
		spans := make([][]cellprobe.Span, 0, len(specs))
		for _, sp := range specs {
			if t >= len(sp) {
				continue
			}
			spans = append(spans, sp[t])
			for _, s := range sp[t] {
				if pc := s.PerCell(); pc > round.MaxCellProb {
					round.MaxCellProb = pc
				}
			}
		}
		round.InfoRate = ColumnMaxSum(spans)
		round.BitsBound = bBits * round.InfoRate
		res.Rounds = append(res.Rounds, round)
		res.TotalBits += round.BitsBound
	}
	res.RequiredBits = float64(len(specs)) * math.Pow(2, -2*float64(steps))
	return res
}
