package lowerbound_test

import (
	"fmt"

	"repro/internal/lowerbound"
)

// ExampleVCDim computes Definition 11 for the membership problem: with
// data sets of size k, exactly k queries can be shattered.
func ExampleVCDim() {
	p := lowerbound.Membership(8, 4)
	fmt.Println(lowerbound.VCDim(p))
	// Output: 4
}

// ExampleMinTStar inverts Theorem 13's final inequality: the probe count a
// balanced scheme needs grows (doubly logarithmically) with n.
func ExampleMinTStar() {
	budget := func(lg float64) float64 { return lg * lg } // polylog: lg²n
	fmt.Println(lowerbound.MinTStarLog2(8, budget(8), budget(8)))
	fmt.Println(lowerbound.MinTStarLog2(512, budget(512), budget(512)))
	fmt.Println(lowerbound.MinTStarLog2(4096, budget(4096), budget(4096)))
	// Output:
	// 1
	// 3
	// 5
}
