package lowerbound

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestCoupledProbesMarginals(t *testing.T) {
	// Two instances over 6 cells with overlapping support.
	probs := [][]float64{
		{0.5, 0.3, 0.0, 0.2, 0.0, 0.1},
		{0.5, 0.0, 0.4, 0.2, 0.1, 0.0},
	}
	r := rng.New(1)
	const trials = 200000
	counts := make([][]int, len(probs))
	for i := range counts {
		counts[i] = make([]int, len(probs[0]))
	}
	unionTotal := 0
	for trial := 0; trial < trials; trial++ {
		ls, err := CoupledProbes(probs, r)
		if err != nil {
			t.Fatal(err)
		}
		union := map[int]bool{}
		for i, l := range ls {
			for _, j := range l {
				counts[i][j]++
				union[j] = true
			}
		}
		unionTotal += len(union)
	}
	// Marginals must match probs.
	for i := range probs {
		for j := range probs[i] {
			got := float64(counts[i][j]) / trials
			if math.Abs(got-probs[i][j]) > 0.01 {
				t.Errorf("marginal[%d][%d] = %v, want %v", i, j, got, probs[i][j])
			}
		}
	}
	// E[|union|] ≤ Σ_j max_i p.
	bound := UnionBound(probs)
	gotUnion := float64(unionTotal) / trials
	if gotUnion > bound+0.02 {
		t.Errorf("E[|union|] = %v exceeds bound %v", gotUnion, bound)
	}
	// The coupling must be genuinely better than independence: shared
	// cells (cell 0 at 0.5/0.5, cell 3 at 0.2/0.2) are sampled once, so
	// the union is strictly below the independent-draw expectation.
	independent := 0.0
	for j := range probs[0] {
		miss := 1.0
		for i := range probs {
			miss *= 1 - probs[i][j]
		}
		independent += 1 - miss
	}
	if gotUnion >= independent-0.05 {
		t.Errorf("coupled union %v not below independent %v", gotUnion, independent)
	}
}

func TestCoupledProbesIdenticalInstances(t *testing.T) {
	// n identical instances: the union equals each L_i's distribution —
	// exactly 1 cell of joint information per Lemma 14's replicated rounds.
	p := []float64{0.25, 0.25, 0.25, 0.25}
	probs := [][]float64{p, p, p, p}
	r := rng.New(2)
	const trials = 100000
	unionTotal := 0
	for trial := 0; trial < trials; trial++ {
		ls, err := CoupledProbes(probs, r)
		if err != nil {
			t.Fatal(err)
		}
		union := map[int]bool{}
		for _, l := range ls {
			for _, j := range l {
				union[j] = true
			}
		}
		unionTotal += len(union)
	}
	got := float64(unionTotal) / trials
	if math.Abs(got-UnionBound(probs)) > 0.02 {
		t.Errorf("identical-instance union %v, want %v", got, UnionBound(probs))
	}
	if UnionBound(probs) != 1 {
		t.Errorf("UnionBound = %v, want 1", UnionBound(probs))
	}
}

func TestCoupledProbesValidation(t *testing.T) {
	if _, err := CoupledProbes([][]float64{{0.5}, {0.5, 0.5}}, rng.New(3)); err == nil {
		t.Error("ragged probs accepted")
	}
	if _, err := CoupledProbes([][]float64{{1.5}}, rng.New(3)); err == nil {
		t.Error("probability > 1 accepted")
	}
	out, err := CoupledProbes(nil, rng.New(3))
	if err != nil || out != nil {
		t.Errorf("empty input: %v %v", out, err)
	}
}

func TestUnionBoundEmpty(t *testing.T) {
	if UnionBound(nil) != 0 {
		t.Error("empty UnionBound not 0")
	}
}
