// Package lowerbound implements the machinery of the paper's §3: the
// VC-dimension view of data-structure problems (Definition 11), the
// probe-specification communication game of Lemma 14, the adversary of
// Lemma 15, the column-max bound of Lemma 16, the information recursion
// E[C_t] ≤ √(a·E[C_{t−1}]), and a numeric solver for the minimal probe
// count t* consistent with Theorem 13 — the Ω(log log n) lower bound for
// balanced schemes under arbitrary query distributions.
package lowerbound

import "math/bits"

// Problem is an explicit data-structure problem f : Q × D → {0,1},
// represented as one row per data set: Rows[S] has bit x set iff
// f(x, S) = 1. Q must have at most 64 queries for this explicit form
// (the brute-force VC computation is exponential anyway).
type Problem struct {
	NumQueries int
	Rows       []uint64
}

// Membership constructs the membership problem restricted to a universe of
// numQueries elements and all data sets of size setSize — the problem whose
// VC-dimension is exactly setSize (§3).
func Membership(numQueries, setSize int) Problem {
	if numQueries < 0 || numQueries > 64 {
		panic("lowerbound: membership universe must have 0..64 elements")
	}
	p := Problem{NumQueries: numQueries}
	// Enumerate all subsets of the right popcount.
	for mask := uint64(0); mask < 1<<uint(numQueries); mask++ {
		if bits.OnesCount64(mask) == setSize {
			p.Rows = append(p.Rows, mask)
		}
	}
	return p
}

// Interval constructs the 1-dimensional interval-stabbing problem on a
// universe of numQueries points: data sets are the closed intervals
// [a, b] ⊆ [0, numQueries), and f(x, [a,b]) = 1 iff a ≤ x ≤ b. Its
// VC-dimension is exactly 2 — the classic textbook example — so it gives
// Theorem 13 a non-membership instance with small, known dimension.
func Interval(numQueries int) Problem {
	if numQueries < 0 || numQueries > 64 {
		panic("lowerbound: interval universe must have 0..64 points")
	}
	p := Problem{NumQueries: numQueries}
	for a := 0; a < numQueries; a++ {
		for b := a; b < numQueries; b++ {
			var row uint64
			for x := a; x <= b; x++ {
				row |= 1 << uint(x)
			}
			p.Rows = append(p.Rows, row)
		}
	}
	return p
}

// Threshold constructs the predecessor-style threshold problem: data sets
// are thresholds t ∈ [0, numQueries], and f(x, t) = 1 iff x < t. Its
// VC-dimension is exactly 1 (half-lines on a line shatter one point).
func Threshold(numQueries int) Problem {
	if numQueries < 0 || numQueries > 64 {
		panic("lowerbound: threshold universe must have 0..64 points")
	}
	p := Problem{NumQueries: numQueries}
	for t := 0; t <= numQueries; t++ {
		var row uint64
		for x := 0; x < t; x++ {
			row |= 1 << uint(x)
		}
		p.Rows = append(p.Rows, row)
	}
	return p
}

// Parity constructs the subset-parity problem: data sets are all subsets
// S of the universe, and f(x, S) = 1 iff x ∈ S... with all 2^q subsets as
// rows, every assignment is realized, so VC-dimension = numQueries — the
// maximal ("non-degenerate" in the paper's phrase) case.
func Parity(numQueries int) Problem {
	if numQueries < 0 || numQueries > 20 {
		panic("lowerbound: parity universe must have 0..20 points (2^q rows)")
	}
	p := Problem{NumQueries: numQueries}
	for mask := uint64(0); mask < 1<<uint(numQueries); mask++ {
		p.Rows = append(p.Rows, mask)
	}
	return p
}

// VCDim computes the exact VC-dimension of the problem by brute force:
// the largest k such that some k queries are shattered — every one of the
// 2^k boolean assignments is realized by some data set (Definition 11).
func VCDim(p Problem) int {
	if len(p.Rows) == 0 || p.NumQueries == 0 {
		return 0
	}
	best := 0
	shattered := func(subset []int) bool {
		k := len(subset)
		need := 1 << uint(k)
		if len(p.Rows) < need {
			return false
		}
		seen := make(map[uint64]bool, need)
		count := 0
		for _, row := range p.Rows {
			var pat uint64
			for i, x := range subset {
				if row>>uint(x)&1 == 1 {
					pat |= 1 << uint(i)
				}
			}
			if !seen[pat] {
				seen[pat] = true
				count++
				if count == need {
					return true
				}
			}
		}
		return false
	}
	var rec func(start int, subset []int)
	rec = func(start int, subset []int) {
		if len(subset) > best && shattered(subset) {
			best = len(subset)
		}
		for x := start; x < p.NumQueries; x++ {
			// Prune: even using every remaining query we cannot beat best.
			if len(subset)+p.NumQueries-x <= best {
				return
			}
			rec(x+1, append(subset, x))
		}
	}
	rec(0, nil)
	return best
}
