package lowerbound

import (
	"fmt"
	"math"

	"repro/internal/cellprobe"
	"repro/internal/rng"
)

// SimConfig parameterizes the round-by-round adversary simulation of the
// Theorem 13 proof.
type SimConfig struct {
	N          int     // parallel query instances (the shattered set size)
	Cells      int     // table size s
	PhiStar    float64 // contention budget per cell
	Rounds     int     // t*
	Candidates int     // decision-tree branching per round (N_t)
}

// RoundStats records one adversary round.
type RoundStats struct {
	Round        int
	GoodRows     int     // candidate specs the adversary had to kill
	ViolatedAll  bool    // Lemma 15 postcondition
	ChosenInfo   float64 // Σ_j max_i P_t(i,j) of the surviving (bad) candidate
	RtBound      float64 // the r_t cap of inequality (4)
	WithinBound  bool
	QTotalBudget float64 // Σ q_i spent so far (must stay ≤ 1)
}

// SimulateAdversary plays the §3 argument concretely. Each round the
// "algorithm" proposes Candidates random probe specifications (one span per
// instance, each respecting the contention constraint (2) against the
// current q); the adversary computes M(u, i) = φ*/maxCellProb(u, i), builds
// the Lemma 15 vector q increment that violates every good row, and the
// algorithm is left choosing a bad row, whose information rate Lemma 16
// caps by r_t. The returned per-round stats verify both lemmas end to end.
func SimulateAdversary(cfg SimConfig, rnd *rng.RNG) ([]RoundStats, error) {
	if cfg.N < 2 || cfg.Cells < cfg.N || cfg.Rounds < 1 || cfg.Candidates < 1 {
		return nil, fmt.Errorf("lowerbound: invalid simulation config %+v", cfg)
	}
	q := make([]float64, cfg.N)
	qTotal := 0.0
	eps := 1.0 / float64(cfg.Rounds)
	delta := cfg.PhiStar * float64(cfg.Cells)
	var out []RoundStats

	for t := 1; t <= cfg.Rounds; t++ {
		// The algorithm's candidate probe specifications. Constraint (2):
		// maxCellProb(i) ≤ φ*/q_i, i.e. span width ≥ q_i/φ* for mass-1 spans.
		cands := make([][][]cellprobe.Span, cfg.Candidates)
		for u := range cands {
			cands[u] = make([][]cellprobe.Span, cfg.N)
			for i := 0; i < cfg.N; i++ {
				minWidth := 1
				if q[i] > 0 {
					minWidth = int(math.Ceil(q[i] / cfg.PhiStar))
				}
				if minWidth > cfg.Cells {
					minWidth = cfg.Cells
				}
				width := minWidth + rnd.Intn(cfg.Cells-minWidth+1)
				start := rnd.Intn(cfg.Cells - width + 1)
				cands[u][i] = []cellprobe.Span{{Start: start, Count: width, Mass: 1}}
			}
		}
		// Adversary: M(u, i) = φ* / maxCellProb(u, i).
		M := make([][]float64, cfg.Candidates)
		for u := range cands {
			M[u] = make([]float64, cfg.N)
			for i := 0; i < cfg.N; i++ {
				M[u][i] = cfg.PhiStar * float64(cands[u][i][0].Count) // φ*/(1/width)
			}
		}
		r := int(math.Sqrt(5 * float64(cfg.Rounds) * delta * float64(cfg.N) *
			math.Log(math.Max(float64(cfg.Candidates), 2))))
		if r < 2 {
			r = 2
		}
		stats := RoundStats{Round: t}
		for _, row := range M {
			if cheapestSum(row, r) <= delta {
				stats.GoodRows++
			}
		}
		dq, _ := AdversaryVector(M, r, eps, delta, rnd)
		for i, v := range dq {
			if v > q[i] {
				qTotal += v - q[i]
				q[i] = v
			}
		}
		stats.QTotalBudget = qTotal
		stats.ViolatedAll = ViolatesAllGoodRows(M, r, delta, q)

		// The algorithm must pick a candidate not violated by q (a bad
		// row); if all are violated it is stuck and we report the last.
		chosen := -1
		for u, row := range M {
			violated := false
			for i := range row {
				if row[i] < q[i] {
					violated = true
					break
				}
			}
			if !violated {
				chosen = u
				break
			}
		}
		if chosen >= 0 {
			stats.ChosenInfo = ColumnMaxSum(cands[chosen])
			stats.RtBound = float64(r)
			stats.WithinBound = stats.ChosenInfo <= stats.RtBound+1e-9
		} else {
			stats.WithinBound = true // adversary killed every candidate
		}
		out = append(out, stats)
	}
	return out, nil
}

// cheapestSum returns the sum of the r smallest entries of row.
func cheapestSum(row []float64, r int) float64 {
	if r > len(row) {
		r = len(row)
	}
	tmp := append([]float64(nil), row...)
	// Selection via partial sort (rows are small).
	for i := 0; i < r; i++ {
		minIdx := i
		for j := i + 1; j < len(tmp); j++ {
			if tmp[j] < tmp[minIdx] {
				minIdx = j
			}
		}
		tmp[i], tmp[minIdx] = tmp[minIdx], tmp[i]
	}
	sum := 0.0
	for i := 0; i < r; i++ {
		sum += tmp[i]
	}
	return sum
}
