package lowerbound

import (
	"testing"

	"repro/internal/rng"
)

func TestSimulateAdversaryRounds(t *testing.T) {
	cfg := SimConfig{
		N:          64,
		Cells:      512,
		PhiStar:    0.01,
		Rounds:     5,
		Candidates: 16,
	}
	stats, err := SimulateAdversary(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != cfg.Rounds {
		t.Fatalf("got %d rounds", len(stats))
	}
	for _, s := range stats {
		if !s.ViolatedAll {
			t.Errorf("round %d: adversary failed to violate all good rows", s.Round)
		}
		if !s.WithinBound {
			t.Errorf("round %d: chosen info %v exceeds r_t bound %v", s.Round, s.ChosenInfo, s.RtBound)
		}
		if s.QTotalBudget > 1+1e-9 {
			t.Errorf("round %d: adversary budget %v exceeds 1", s.Round, s.QTotalBudget)
		}
	}
	// The budget is spent incrementally: non-decreasing across rounds.
	for i := 1; i < len(stats); i++ {
		if stats[i].QTotalBudget+1e-12 < stats[i-1].QTotalBudget {
			t.Errorf("budget decreased at round %d", i)
		}
	}
}

func TestSimulateAdversaryManySeeds(t *testing.T) {
	cfg := SimConfig{N: 32, Cells: 256, PhiStar: 0.02, Rounds: 4, Candidates: 8}
	for seed := uint64(0); seed < 10; seed++ {
		stats, err := SimulateAdversary(cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stats {
			if !s.ViolatedAll || !s.WithinBound {
				t.Fatalf("seed %d round %d: violatedAll=%v withinBound=%v",
					seed, s.Round, s.ViolatedAll, s.WithinBound)
			}
		}
	}
}

func TestSimulateAdversaryRejectsBadConfig(t *testing.T) {
	bad := []SimConfig{
		{N: 1, Cells: 10, PhiStar: 0.1, Rounds: 1, Candidates: 1},
		{N: 4, Cells: 2, PhiStar: 0.1, Rounds: 1, Candidates: 1},
		{N: 4, Cells: 10, PhiStar: 0.1, Rounds: 0, Candidates: 1},
		{N: 4, Cells: 10, PhiStar: 0.1, Rounds: 1, Candidates: 0},
	}
	for i, cfg := range bad {
		if _, err := SimulateAdversary(cfg, rng.New(1)); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCheapestSum(t *testing.T) {
	row := []float64{5, 1, 3, 2, 4}
	if got := cheapestSum(row, 2); got != 3 {
		t.Errorf("cheapestSum(2) = %v, want 3", got)
	}
	if got := cheapestSum(row, 10); got != 15 {
		t.Errorf("cheapestSum(10) = %v, want 15", got)
	}
	// Must not mutate the input.
	if row[0] != 5 || row[1] != 1 {
		t.Error("cheapestSum mutated the row")
	}
}
