package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestUniformSetSampleAndSupport(t *testing.T) {
	keys := []uint64{10, 20, 30, 40}
	u := NewUniformSet(keys, "")
	r := rng.New(1)
	counts := map[uint64]int{}
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[u.Sample(r)]++
	}
	for _, k := range keys {
		got := float64(counts[k]) / trials
		if math.Abs(got-0.25) > 0.02 {
			t.Errorf("key %d frequency %.3f, want 0.25", k, got)
		}
	}
	sup := u.Support()
	if len(sup) != 4 {
		t.Fatalf("support size %d", len(sup))
	}
	total := 0.0
	for _, w := range sup {
		total += w.P
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("support mass %v", total)
	}
}

func TestUniformSetPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty UniformSet did not panic")
		}
	}()
	NewUniformSet(nil, "")
}

func TestUniformComplementExcludes(t *testing.T) {
	exclude := []uint64{0, 1, 2, 3, 4}
	u := NewUniformComplement(10, exclude)
	r := rng.New(2)
	counts := map[uint64]int{}
	const trials = 50000
	for i := 0; i < trials; i++ {
		x := u.Sample(r)
		if x >= 10 {
			t.Fatalf("sample %d outside universe", x)
		}
		for _, e := range exclude {
			if x == e {
				t.Fatalf("sampled excluded key %d", x)
			}
		}
		counts[x]++
	}
	for k := uint64(5); k < 10; k++ {
		got := float64(counts[k]) / trials
		if math.Abs(got-0.2) > 0.02 {
			t.Errorf("key %d frequency %.3f, want 0.2", k, got)
		}
	}
}

func TestUniformComplementPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty complement did not panic")
		}
	}()
	NewUniformComplement(3, []uint64{0, 1, 2})
}

func TestMixtureWeights(t *testing.T) {
	a := PointMass{Key: 1}
	b := PointMass{Key: 2}
	m := NewMixture([]Dist{a, b}, []float64{3, 1}, "")
	r := rng.New(3)
	count1 := 0
	const trials = 40000
	for i := 0; i < trials; i++ {
		if m.Sample(r) == 1 {
			count1++
		}
	}
	if got := float64(count1) / trials; math.Abs(got-0.75) > 0.02 {
		t.Errorf("component 1 frequency %.3f, want 0.75", got)
	}
}

func TestMixtureSupportMerges(t *testing.T) {
	a := NewUniformSet([]uint64{1, 2}, "")
	b := NewUniformSet([]uint64{2, 3}, "")
	m := NewMixture([]Dist{a, b}, []float64{0.5, 0.5}, "")
	sup := m.Support()
	want := map[uint64]float64{1: 0.25, 2: 0.5, 3: 0.25}
	if len(sup) != 3 {
		t.Fatalf("support %v", sup)
	}
	for _, w := range sup {
		if math.Abs(w.P-want[w.Key]) > 1e-12 {
			t.Errorf("key %d weight %v, want %v", w.Key, w.P, want[w.Key])
		}
	}
}

func TestMixtureSupportNilForUnbounded(t *testing.T) {
	m := NewMixture(
		[]Dist{PointMass{Key: 1}, NewUniformComplement(100, nil)},
		[]float64{0.5, 0.5}, "")
	if m.Support() != nil {
		t.Error("mixture with unbounded component returned a support")
	}
}

func TestPosNegSamplesBothSides(t *testing.T) {
	S := []uint64{100, 200, 300}
	q := PosNeg(S, 1000, 0.5)
	inS := map[uint64]bool{100: true, 200: true, 300: true}
	r := rng.New(4)
	pos := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if inS[q.Sample(r)] {
			pos++
		}
	}
	if got := float64(pos) / trials; math.Abs(got-0.5) > 0.02 {
		t.Errorf("positive fraction %.3f, want 0.5", got)
	}
}

func TestZipfSkew(t *testing.T) {
	keys := []uint64{7, 8, 9, 10}
	z := NewZipf(keys, 1.0)
	// Weights proportional to 1, 1/2, 1/3, 1/4; normalizer 25/12.
	sup := z.Support()
	norm := 1.0 + 0.5 + 1.0/3 + 0.25
	for i, w := range sup {
		want := (1.0 / float64(i+1)) / norm
		if math.Abs(w.P-want) > 1e-12 {
			t.Errorf("rank %d weight %v, want %v", i, w.P, want)
		}
	}
	r := rng.New(5)
	counts := map[uint64]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[z.Sample(r)]++
	}
	if counts[7] <= counts[10] {
		t.Errorf("Zipf not skewed: counts %v", counts)
	}
	got := float64(counts[7]) / trials
	if math.Abs(got-1/norm) > 0.02 {
		t.Errorf("top key frequency %.3f, want %.3f", got, 1/norm)
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	z := NewZipf([]uint64{1, 2, 3, 4, 5}, 0)
	for _, w := range z.Support() {
		if math.Abs(w.P-0.2) > 1e-12 {
			t.Errorf("weight %v, want 0.2", w.P)
		}
	}
}

func TestPointMass(t *testing.T) {
	p := PointMass{Key: 77}
	r := rng.New(6)
	for i := 0; i < 10; i++ {
		if p.Sample(r) != 77 {
			t.Fatal("PointMass sampled a different key")
		}
	}
	sup := p.Support()
	if len(sup) != 1 || sup[0].Key != 77 || sup[0].P != 1 {
		t.Errorf("support = %v", sup)
	}
}

func TestSupportFallsBackToSampling(t *testing.T) {
	u := NewUniformComplement(1000, []uint64{1})
	r := rng.New(7)
	sup := Support(u, 50, r)
	if len(sup) != 50 {
		t.Fatalf("sampled support size %d", len(sup))
	}
	total := 0.0
	for _, w := range sup {
		total += w.P
		if w.Key == 1 || w.Key >= 1000 {
			t.Errorf("invalid sampled key %d", w.Key)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("sampled support mass %v", total)
	}
}

func TestSupportPrefersExact(t *testing.T) {
	u := NewUniformSet([]uint64{5, 6}, "")
	sup := Support(u, 999, rng.New(8))
	if len(sup) != 2 {
		t.Errorf("exact support not used: %v", sup)
	}
}

func TestDistNames(t *testing.T) {
	if NewUniformSet([]uint64{1}, "custom").Name() != "custom" {
		t.Error("label not used")
	}
	names := []string{
		NewUniformSet([]uint64{1}, "").Name(),
		NewUniformComplement(10, nil).Name(),
		NewZipf([]uint64{1}, 1).Name(),
		PointMass{Key: 3}.Name(),
		PosNeg([]uint64{1}, 10, 0.5).Name(),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate name %q in %v", n, names)
		}
		seen[n] = true
	}
}
