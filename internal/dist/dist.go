// Package dist models query distributions q over the key universe (§1.1).
//
// The paper's positive results assume q is uniform within the positive set S
// and uniform within the negative set U∖S (§2); its lower bound is about
// arbitrary q (§3). This package provides both families plus skewed
// distributions (Zipf, point mass) used to demonstrate how baselines degrade.
//
// A distribution can always be sampled; distributions with small explicit
// support additionally expose it for exact contention computation, and
// unbounded ones are approximated by Monte-Carlo support sampling.
package dist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Weighted is a support point: key x with probability P.
type Weighted struct {
	Key uint64
	P   float64
}

// Dist is a query distribution over uint64 keys.
type Dist interface {
	// Sample draws one query key.
	Sample(r *rng.RNG) uint64
	// Name identifies the distribution in reports.
	Name() string
}

// Supporter is implemented by distributions whose support can be enumerated
// exactly (used for exact contention computation).
type Supporter interface {
	Support() []Weighted
}

// Support returns an exact support if d implements Supporter, and otherwise
// a Monte-Carlo support of k samples with weight 1/k each.
func Support(d Dist, k int, r *rng.RNG) []Weighted {
	if s, ok := d.(Supporter); ok {
		return s.Support()
	}
	w := 1.0 / float64(k)
	out := make([]Weighted, k)
	for i := range out {
		out[i] = Weighted{Key: d.Sample(r), P: w}
	}
	return out
}

// UniformSet is the uniform distribution over a fixed non-empty key set —
// the paper's "uniform positive queries" when the set is S.
type UniformSet struct {
	Keys  []uint64
	Label string
}

// NewUniformSet builds a uniform distribution over keys. It panics on an
// empty set.
func NewUniformSet(keys []uint64, label string) *UniformSet {
	if len(keys) == 0 {
		panic("dist: UniformSet over empty set")
	}
	return &UniformSet{Keys: keys, Label: label}
}

func (u *UniformSet) Sample(r *rng.RNG) uint64 { return u.Keys[r.Intn(len(u.Keys))] }

func (u *UniformSet) Name() string {
	if u.Label != "" {
		return u.Label
	}
	return fmt.Sprintf("uniform-set(%d)", len(u.Keys))
}

// Support enumerates the set with equal weights.
func (u *UniformSet) Support() []Weighted {
	w := 1.0 / float64(len(u.Keys))
	out := make([]Weighted, len(u.Keys))
	for i, k := range u.Keys {
		out[i] = Weighted{Key: k, P: w}
	}
	return out
}

// UniformComplement is the uniform distribution over [0, N) ∖ S — the
// paper's "uniform negative queries". Sampling is by rejection, which is
// efficient because every use here has N ≥ 2|S|.
type UniformComplement struct {
	N       uint64
	Exclude map[uint64]bool
}

// NewUniformComplement builds the uniform distribution over [0,N) minus the
// excluded keys. It panics if the complement is empty.
func NewUniformComplement(n uint64, exclude []uint64) *UniformComplement {
	m := make(map[uint64]bool, len(exclude))
	for _, k := range exclude {
		if k < n {
			m[k] = true
		}
	}
	if uint64(len(m)) >= n {
		panic("dist: empty complement")
	}
	return &UniformComplement{N: n, Exclude: m}
}

func (u *UniformComplement) Sample(r *rng.RNG) uint64 {
	for {
		x := r.Uint64n(u.N)
		if !u.Exclude[x] {
			return x
		}
	}
}

func (u *UniformComplement) Name() string {
	return fmt.Sprintf("uniform-negative(N=%d)", u.N)
}

// Mixture draws from component i with probability Weights[i].
type Mixture struct {
	Components []Dist
	Weights    []float64
	cum        []float64
	Label      string
}

// NewMixture builds a mixture. Weights must be non-negative and sum to a
// positive value; they are normalized.
func NewMixture(components []Dist, weights []float64, label string) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("dist: mixture components/weights mismatch")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("dist: negative mixture weight")
		}
		total += w
	}
	if total <= 0 {
		panic("dist: zero total mixture weight")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1.0
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return &Mixture{Components: components, Weights: norm, cum: cum, Label: label}
}

func (m *Mixture) Sample(r *rng.RNG) uint64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.Components) {
		i = len(m.Components) - 1
	}
	return m.Components[i].Sample(r)
}

func (m *Mixture) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return fmt.Sprintf("mixture(%d)", len(m.Components))
}

// Support enumerates the mixture support when every component is a
// Supporter; it merges duplicate keys.
func (m *Mixture) Support() []Weighted {
	merged := map[uint64]float64{}
	for i, c := range m.Components {
		s, ok := c.(Supporter)
		if !ok {
			return nil
		}
		for _, w := range s.Support() {
			merged[w.Key] += w.P * m.Weights[i]
		}
	}
	out := make([]Weighted, 0, len(merged))
	for k, p := range merged {
		out = append(out, Weighted{Key: k, P: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// PosNeg is the paper's §2 query class: with probability posWeight a uniform
// positive query (member of S), otherwise a uniform negative query.
func PosNeg(S []uint64, universe uint64, posWeight float64) *Mixture {
	return NewMixture(
		[]Dist{NewUniformSet(S, "uniform-positive"), NewUniformComplement(universe, S)},
		[]float64{posWeight, 1 - posWeight},
		fmt.Sprintf("posneg(%.2f)", posWeight),
	)
}

// Zipf is a Zipf distribution over an explicit key list: key i (0-based) has
// probability proportional to 1/(i+1)^Exponent. It models the skewed query
// distributions under which §1.3 notes baseline contention becomes
// arbitrarily bad.
type Zipf struct {
	Keys     []uint64
	Exponent float64
	cum      []float64
}

// NewZipf builds a Zipf distribution over keys with the given exponent ≥ 0.
func NewZipf(keys []uint64, exponent float64) *Zipf {
	if len(keys) == 0 {
		panic("dist: Zipf over empty set")
	}
	if exponent < 0 || math.IsNaN(exponent) {
		panic("dist: negative Zipf exponent")
	}
	cum := make([]float64, len(keys))
	acc := 0.0
	for i := range keys {
		acc += math.Pow(float64(i+1), -exponent)
		cum[i] = acc
	}
	for i := range cum {
		cum[i] /= acc
	}
	cum[len(cum)-1] = 1.0
	return &Zipf{Keys: keys, Exponent: exponent, cum: cum}
}

func (z *Zipf) Sample(r *rng.RNG) uint64 {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.Keys) {
		i = len(z.Keys) - 1
	}
	return z.Keys[i]
}

func (z *Zipf) Name() string {
	return fmt.Sprintf("zipf(%.2f,%d)", z.Exponent, len(z.Keys))
}

// Support enumerates the Zipf support exactly.
func (z *Zipf) Support() []Weighted {
	out := make([]Weighted, len(z.Keys))
	prev := 0.0
	for i, k := range z.Keys {
		out[i] = Weighted{Key: k, P: z.cum[i] - prev}
		prev = z.cum[i]
	}
	return out
}

// PointMass always returns Key — the most adversarial q for any scheme whose
// probe distribution for a single input is concentrated.
type PointMass struct {
	Key uint64
}

func (p PointMass) Sample(*rng.RNG) uint64 { return p.Key }
func (p PointMass) Name() string           { return fmt.Sprintf("point(%d)", p.Key) }

// Support is the single key with probability 1.
func (p PointMass) Support() []Weighted { return []Weighted{{Key: p.Key, P: 1}} }
