package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestWeightedSetMergesAndNormalizes(t *testing.T) {
	w, err := NewWeightedSet([]Weighted{
		{Key: 5, P: 1},
		{Key: 3, P: 2},
		{Key: 5, P: 1}, // duplicate merges with the first
		{Key: 9, P: 0}, // zero weight drops
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("support size %d, want 2", w.Len())
	}
	sup := w.Support()
	want := map[uint64]float64{3: 0.5, 5: 0.5}
	total := 0.0
	for _, p := range sup {
		if math.Abs(p.P-want[p.Key]) > 1e-12 {
			t.Errorf("key %d weight %v, want %v", p.Key, p.P, want[p.Key])
		}
		total += p.P
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("support mass %v, want 1", total)
	}
	// Keys ascending.
	if sup[0].Key != 3 || sup[1].Key != 5 {
		t.Errorf("support not key-sorted: %v", sup)
	}
}

func TestWeightedSetRejectsBadWeights(t *testing.T) {
	cases := []struct {
		name    string
		support []Weighted
	}{
		{"empty", nil},
		{"negative", []Weighted{{Key: 1, P: -0.5}}},
		{"nan", []Weighted{{Key: 1, P: math.NaN()}}},
		{"inf", []Weighted{{Key: 1, P: math.Inf(1)}}},
		{"zero total", []Weighted{{Key: 1, P: 0}, {Key: 2, P: 0}}},
	}
	for _, c := range cases {
		if _, err := NewWeightedSet(c.support, ""); err == nil {
			t.Errorf("%s support accepted", c.name)
		}
	}
}

func TestWeightedSetSampleFrequencies(t *testing.T) {
	w, err := NewWeightedSet([]Weighted{
		{Key: 1, P: 0.5}, {Key: 2, P: 0.3}, {Key: 3, P: 0.2},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	counts := map[uint64]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[w.Sample(r)]++
	}
	want := map[uint64]float64{1: 0.5, 2: 0.3, 3: 0.2}
	for k, p := range want {
		got := float64(counts[k]) / trials
		if math.Abs(got-p) > 0.02 {
			t.Errorf("key %d frequency %.3f, want %.3f", k, got, p)
		}
	}
}

func TestWeightedSetDrawMatchesSampleLaw(t *testing.T) {
	// Draw (plain rng.Source) and Sample (*rng.RNG) use the same top-53-bit
	// uniform construction, so over the same stream they produce the same keys.
	w, err := NewWeightedSet([]Weighted{
		{Key: 10, P: 1}, {Key: 20, P: 2}, {Key: 30, P: 3},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	a, b := rng.New(12), rng.New(12)
	for i := 0; i < 1000; i++ {
		if s, d := w.Sample(a), w.Draw(b); s != d {
			t.Fatalf("iteration %d: Sample=%d Draw=%d over identical streams", i, s, d)
		}
	}
}

func TestWeightedSetName(t *testing.T) {
	w, _ := NewWeightedSet([]Weighted{{Key: 1, P: 1}}, "hot")
	if w.Name() != "hot" {
		t.Errorf("labeled name %q", w.Name())
	}
	w2, _ := NewWeightedSet([]Weighted{{Key: 1, P: 1}, {Key: 2, P: 1}}, "")
	if w2.Name() != "weighted(2)" {
		t.Errorf("default name %q", w2.Name())
	}
}

// FuzzWeightedDraw checks the two distribution-law invariants of WeightedSet
// over arbitrary supports: every draw lands on a positive-weight support key,
// and at large N the empirical frequencies pass a (very generous) χ² sanity
// bound against the normalized weights — enough to catch a cumulative-table
// or binary-search bug that pins mass on the wrong key, loose enough to never
// flake on honest sampling noise.
func FuzzWeightedDraw(f *testing.F) {
	f.Add(uint64(1), 1.0, uint64(2), 1.0, uint64(3), 1.0, uint64(99))
	f.Add(uint64(7), 0.9, uint64(7), 0.1, uint64(8), 1e-9, uint64(1))
	f.Add(uint64(0), 1e6, uint64(math.MaxUint64), 1.0, uint64(5), 0.0, uint64(42))
	f.Add(uint64(3), 0.25, uint64(1), 0.25, uint64(2), 0.5, uint64(20100613))
	f.Fuzz(func(t *testing.T, k1 uint64, p1 float64, k2 uint64, p2 float64, k3 uint64, p3 float64, seed uint64) {
		support := []Weighted{{Key: k1, P: p1}, {Key: k2, P: p2}, {Key: k3, P: p3}}
		w, err := NewWeightedSet(support, "")
		if err != nil {
			// Invalid weights (negative, NaN, Inf, zero mass) must be
			// rejected at construction, never panic later.
			return
		}
		norm := map[uint64]float64{}
		for _, p := range w.Support() {
			norm[p.Key] = p.P
		}
		const draws = 4096
		counts := map[uint64]int{}
		r := rng.New(seed)
		for i := 0; i < draws; i++ {
			k := w.Draw(r)
			if _, ok := norm[k]; !ok {
				t.Fatalf("draw %d landed on %d, outside the support %v", i, k, w.Support())
			}
			counts[k]++
		}
		// χ² over categories with a non-negligible expected count. The bound
		// is ~20σ for ≤3 degrees of freedom — gross-bias detection only.
		chi2 := 0.0
		categories := 0
		for k, p := range norm {
			expected := p * draws
			if expected < 8 {
				continue
			}
			diff := float64(counts[k]) - expected
			chi2 += diff * diff / expected
			categories++
		}
		if categories > 0 && chi2 > 60+float64(categories)*20 {
			t.Fatalf("χ² = %.1f over %d categories: counts %v vs support %v", chi2, categories, counts, w.Support())
		}
	})
}
