package dist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// WeightedSet is a general finite query distribution given by an explicit
// weighted support — the form every Supporter in this package reduces to,
// and the form the distribution-aware telemetry layer consumes. It closes
// the loop between sampling and analysis: the same []Weighted that drives
// contention.Exact can drive a live workload, so live Φ̂ and exact Φ are
// computed under one distribution.
//
// Unlike the other distributions here it can additionally draw from a plain
// rng.Source (Draw), so concurrent workload drivers can sample through a
// low-contention rng.Sharded stream instead of a per-goroutine *rng.RNG.
type WeightedSet struct {
	keys  []uint64
	cum   []float64 // cumulative probabilities, cum[len-1] == 1
	Label string
}

// NewWeightedSet builds a weighted distribution from a support. Weights must
// be non-negative, finite, and sum to a positive total; they are normalized.
// Duplicate keys are allowed and their weights merge. Zero-weight points are
// dropped.
func NewWeightedSet(support []Weighted, label string) (*WeightedSet, error) {
	if len(support) == 0 {
		return nil, fmt.Errorf("dist: weighted set over empty support")
	}
	merged := make(map[uint64]float64, len(support))
	total := 0.0
	for _, w := range support {
		if w.P < 0 || math.IsNaN(w.P) || math.IsInf(w.P, 0) {
			return nil, fmt.Errorf("dist: weight %v for key %d is not a finite non-negative number", w.P, w.Key)
		}
		merged[w.Key] += w.P
		total += w.P
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: weighted set has zero total mass")
	}
	keys := make([]uint64, 0, len(merged))
	for k, p := range merged {
		if p > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cum := make([]float64, len(keys))
	acc := 0.0
	for i, k := range keys {
		acc += merged[k] / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1.0
	return &WeightedSet{keys: keys, cum: cum, Label: label}, nil
}

// Len returns the support size (distinct positive-weight keys).
func (w *WeightedSet) Len() int { return len(w.keys) }

// Sample draws one key with a *rng.RNG (the Dist interface).
func (w *WeightedSet) Sample(r *rng.RNG) uint64 { return w.at(r.Float64()) }

// Draw draws one key from any rng.Source — pass an rng.Sharded stream so
// concurrent drivers sample without contending on a shared generator. The
// uniform variate is the source's top 53 bits, the same construction
// rng.RNG.Float64 uses.
func (w *WeightedSet) Draw(r rng.Source) uint64 {
	return w.at(float64(r.Uint64()>>11) / (1 << 53))
}

// at maps a uniform variate u ∈ [0, 1) through the cumulative table.
func (w *WeightedSet) at(u float64) uint64 {
	i := sort.SearchFloat64s(w.cum, u)
	if i >= len(w.keys) {
		i = len(w.keys) - 1
	}
	return w.keys[i]
}

// Name identifies the distribution in reports.
func (w *WeightedSet) Name() string {
	if w.Label != "" {
		return w.Label
	}
	return fmt.Sprintf("weighted(%d)", len(w.keys))
}

// Support enumerates the normalized support, keys ascending.
func (w *WeightedSet) Support() []Weighted {
	out := make([]Weighted, len(w.keys))
	prev := 0.0
	for i, k := range w.keys {
		out[i] = Weighted{Key: k, P: w.cum[i] - prev}
		prev = w.cum[i]
	}
	return out
}

var (
	_ Dist      = (*WeightedSet)(nil)
	_ Supporter = (*WeightedSet)(nil)
)
