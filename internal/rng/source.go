package rng

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Source is the randomness a membership query consumes: independent uniform
// draws, one per replica choice. *RNG implements it for sequential and
// explicitly-seeded use; Sharded implements it for concurrent query paths
// that must not contend on a shared generator state.
//
// Implementations must be safe for use by the goroutine that owns them;
// Sharded is additionally safe for concurrent use by any number of
// goroutines.
type Source interface {
	// Uint64 returns 64 uniformly random bits.
	Uint64() uint64
	// Intn returns a uniform int in [0, n). It panics if n <= 0.
	Intn(n int) int
}

var (
	_ Source = (*RNG)(nil)
	_ Source = (*Sharded)(nil)
)

// cacheLine is the assumed coherence granularity. Each shard's state is
// padded to this size so that concurrent callers on different shards never
// write the same cache line — the same discipline the paper imposes on the
// dictionary's cells.
const cacheLine = 64

// shard is one cache-line-padded splitmix64 stream.
type shard struct {
	state atomic.Uint64
	_     [cacheLine - 8]byte
}

// Sharded is a low-contention concurrent query source. It maintains a power
// of two of independent splitmix64 streams, each padded to its own cache
// line. A call advances exactly one stream, picked by a per-goroutine handle
// cached in a sync.Pool: in the steady state each P of the Go scheduler owns
// a handle and therefore hits its own shard, so concurrent queries perform
// no writes to shared cache lines. Under handle churn (GC clears the pool)
// a goroutine may move to another shard; streams stay decorrelated because
// every shard runs its own splitmix64 sequence from an independent origin.
//
// Sharded trades reproducibility for scalability: which stream serves a
// call depends on scheduler placement (only a single-shard source is fully
// deterministic), and concurrent callers interleave shard advances in
// scheduling order. Pass an explicit *RNG where bit-exact reproducibility
// matters (the experiment harness does).
type Sharded struct {
	shards []shard
	mask   uint64
	next   atomic.Uint64
	pool   sync.Pool // *uint64: the caller's cached shard index
}

// NewSharded returns a sharded source seeded from seed. shards is rounded up
// to a power of two; shards <= 0 selects the default of 4×GOMAXPROCS, enough
// that handle collisions are rare even with goroutine migration.
func NewSharded(seed uint64, shards int) *Sharded {
	if shards <= 0 {
		shards = 4 * runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded{shards: make([]shard, n), mask: uint64(n - 1)}
	// Give each shard an independent splitmix64 origin. Distinct origins
	// drawn from the seeding stream keep the per-shard sequences
	// decorrelated even though they share the additive constant.
	sm := seed
	for i := range s.shards {
		s.shards[i].state.Store(SplitMix64(&sm))
	}
	s.pool.New = func() any {
		i := new(uint64)
		*i = s.next.Add(1) - 1
		return i
	}
	return s
}

// Shards returns the number of independent streams.
func (s *Sharded) Shards() int { return len(s.shards) }

// Uint64 advances the calling goroutine's shard stream by one splitmix64
// step: a single atomic add on a cache line private to the shard, then a
// local finalizer. No other shared memory is written.
func (s *Sharded) Uint64() uint64 {
	h := s.pool.Get().(*uint64)
	i := *h & s.mask
	s.pool.Put(h)
	return mix64(s.shards[i].state.Add(splitMixGamma))
}

// Intn returns a uniform int in [0, n) using the same nearly-divisionless
// reduction as RNG.Intn. It panics if n <= 0.
func (s *Sharded) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}
