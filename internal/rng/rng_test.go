package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d/1000 times", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 33, math.MaxUint64} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; threshold is the 99.9% quantile
	// of chi2 with 15 degrees of freedom (~37.7).
	r := New(12345)
	const buckets = 16
	const samples = 160000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Errorf("chi2 = %.2f exceeds 99.9%% quantile; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈ 0.5", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p2 := New(5)
	p2.Uint64() // account for the value Split consumed
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("split stream tracks parent stream (%d/100 equal)", same)
	}
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	base := New(9)
	a := base.Clone()
	b := base.Clone()
	b.Jump()
	// The jumped stream must differ from the original immediately and not
	// collide over a long prefix.
	same := 0
	for i := 0; i < 10000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("jumped stream coincides %d/10000 times", same)
	}
}

func TestJumpDeterministic(t *testing.T) {
	a, b := New(5), New(5)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump not deterministic")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(3)
	a.Uint64()
	b := a.Clone()
	// Both continue identically from the cloned state...
	x, y := a.Uint64(), b.Uint64()
	if x != y {
		t.Fatal("clone diverged immediately")
	}
	// ...but advancing one does not affect the other.
	a.Uint64()
	c := b.Clone()
	if c.Uint64() == a.Uint64() {
		// states are now offset by one; equality would be a coincidence
		// at rate 2^-64 — treat as failure.
		t.Error("clone appears to share state")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(1)
	const n = 5
	const trials = 50000
	var first [n]int
	for i := 0; i < trials; i++ {
		first[r.Perm(n)[0]]++
	}
	expected := float64(trials) / n
	for i, c := range first {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("first element %d appeared %d times, want ≈ %.0f", i, c, expected)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestSplitMix64KnownVectors(t *testing.T) {
	// Reference outputs for seed 0 from the splitmix64 reference
	// implementation (Vigna).
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Errorf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64n(12345)
	}
	_ = sink
}
