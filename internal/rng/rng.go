// Package rng provides a deterministic, splittable pseudo-random number
// generator for reproducible experiments.
//
// Every randomized component in this repository — hash-family sampling,
// replica choice in the query algorithm, workload generation, the
// lower-bound adversary — draws from an *RNG seeded explicitly, so that
// every experiment table is reproducible from its seed. The core generator
// is xoshiro256**, seeded through splitmix64 as its authors recommend.
package rng

import "math/bits"

// splitMixGamma is the additive constant of the splitmix64 sequence.
const splitMixGamma = 0x9e3779b97f4a7c15

// SplitMix64 advances a splitmix64 state and returns the next output.
// It is the seeding primitive and is also used directly where a cheap
// stateless hash of a counter is sufficient.
func SplitMix64(state *uint64) uint64 {
	*state += splitMixGamma
	return mix64(*state)
}

// mix64 is the splitmix64 output finalizer: a bijective scramble of the
// raw Weyl-sequence state.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. It is not safe for concurrent use;
// use Split to derive independent streams for concurrent goroutines.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via splitmix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro forbids the all-zero state; splitmix64 of any seed cannot
	// produce four zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n) using Lemire's nearly-divisionless
// method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Split derives a new generator whose stream is independent of the parent's
// future output. It consumes one value from the parent.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// jumpPoly is the xoshiro256** jump polynomial: Jump advances the state by
// 2^128 steps, yielding 2^128 provably non-overlapping subsequences.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator by 2^128 steps in O(256) operations. Calling
// Jump k times on copies of one seed state produces k streams guaranteed
// not to overlap for 2^128 outputs each — stronger than Split's statistical
// independence.
func (r *RNG) Jump() {
	var s [4]uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s[0] ^= r.s[0]
				s[1] ^= r.s[1]
				s[2] ^= r.s[2]
				s[3] ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = s
}

// Clone returns an independent copy of the generator's current state.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
