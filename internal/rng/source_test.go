package rng

import (
	"sync"
	"testing"
)

func TestShardedShardsRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32}} {
		if got := NewSharded(1, tc.ask).Shards(); got != tc.want {
			t.Errorf("NewSharded(_, %d).Shards() = %d, want %d", tc.ask, got, tc.want)
		}
	}
	if NewSharded(1, 0).Shards() < 1 {
		t.Error("default shard count < 1")
	}
}

func TestShardedSeedDecorrelation(t *testing.T) {
	// Draws from differently-seeded sources must not collide; single-shard
	// sources are deterministic, so identical seeds must agree exactly.
	a, b := NewSharded(42, 1), NewSharded(42, 1)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %x != %x for identical single-shard seeds", i, av, bv)
		}
	}
	c, d := NewSharded(43, 4), NewSharded(42, 4)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/1000 collisions between different seeds", same)
	}
}

func TestShardedMatchesSplitMixStream(t *testing.T) {
	// A single-goroutine Sharded walks one shard's splitmix64 sequence:
	// the shard origin is the seeding stream's first output, and each draw
	// adds the gamma and finalizes.
	s := NewSharded(7, 1)
	sm := uint64(7)
	st := SplitMix64(&sm)
	for i := 0; i < 100; i++ {
		st += splitMixGamma
		if want, got := mix64(st), s.Uint64(); want != got {
			t.Fatalf("draw %d: got %x, want splitmix64 %x", i, got, want)
		}
	}
}

func TestShardedIntnBounds(t *testing.T) {
	s := NewSharded(11, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		// Loose uniformity: each bin within 10% of the expected mass.
		if c < draws/10-draws/100 || c > draws/10+draws/100 {
			t.Errorf("Intn(10) bin %d: %d draws, expected ≈%d", v, c, draws/10)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

// TestShardedConcurrent drives the source from many goroutines; run under
// -race. Duplicate draws across goroutines would indicate shard streams
// colliding.
func TestShardedConcurrent(t *testing.T) {
	s := NewSharded(13, 0)
	const goroutines, draws = 8, 20000
	var wg sync.WaitGroup
	results := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]uint64, draws)
			for i := range out {
				out[i] = s.Uint64()
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*draws)
	dups := 0
	for _, out := range results {
		for _, v := range out {
			if seen[v] {
				dups++
			}
			seen[v] = true
		}
	}
	// 160k draws of 64-bit values: birthday collisions are ~0; a handful
	// would already mean overlapping streams.
	if dups > 2 {
		t.Errorf("%d duplicate draws across %d concurrent goroutines", dups, goroutines)
	}
}
