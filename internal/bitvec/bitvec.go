// Package bitvec provides bit vectors and the unary-coded group histogram
// of the paper's §2.2.
//
// The low-contention dictionary stores, for every group of s/m buckets, a
// "group histogram": the load of each bucket in the group written
// consecutively in unary (load many 1-bits) with a single 0-bit separator
// after each bucket. The query algorithm reads the ρ = O(1) histogram words
// for its group and decodes every bucket load, from which it derives the
// ℓ² cell ranges owned by each bucket.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Vector is an append-only bit string packed into 64-bit words, LSB-first
// within each word (bit i of the string lives in word i/64 at position i%64).
type Vector struct {
	words []uint64
	n     int // number of valid bits
}

// New returns an empty vector with capacity for at least nbits bits.
func New(nbits int) *Vector {
	return &Vector{words: make([]uint64, 0, (nbits+63)/64)}
}

// FromWords constructs a vector over an existing word slice holding nbits
// valid bits. The slice is not copied.
func FromWords(words []uint64, nbits int) *Vector {
	if nbits < 0 || nbits > len(words)*64 {
		panic(fmt.Sprintf("bitvec: %d bits do not fit in %d words", nbits, len(words)))
	}
	return &Vector{words: words, n: nbits}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words returns the backing words. The final word's unused high bits are zero.
func (v *Vector) Words() []uint64 { return v.words }

// Append adds a single bit to the end of the vector.
func (v *Vector) Append(bit bool) {
	if v.n%64 == 0 {
		v.words = append(v.words, 0)
	}
	if bit {
		v.words[v.n/64] |= 1 << uint(v.n%64)
	}
	v.n++
}

// AppendRun appends count copies of bit.
func (v *Vector) AppendRun(bit bool, count int) {
	if count < 0 {
		panic("bitvec: negative run length")
	}
	for i := 0; i < count; i++ {
		v.Append(bit)
	}
}

// Bit returns bit i. It panics if i is out of range.
func (v *Vector) Bit(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: bit %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/64]>>(uint(i%64))&1 == 1
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// EncodeHistogram encodes bucket loads as the paper's unary group histogram:
// for each load ℓ, ℓ one-bits followed by one zero-bit separator. The total
// length is sum(loads) + len(loads) bits.
func EncodeHistogram(loads []int) *Vector {
	total := len(loads)
	for _, l := range loads {
		if l < 0 {
			panic("bitvec: negative load")
		}
		total += l
	}
	v := New(total)
	for _, l := range loads {
		v.AppendRun(true, l)
		v.Append(false)
	}
	return v
}

// DecodeHistogram decodes a unary group histogram of exactly count buckets.
// It returns an error if the vector does not contain count separators, or if
// bits remain after the final separator.
func DecodeHistogram(v *Vector, count int) ([]int, error) {
	if count == 0 {
		for j := 0; j < v.Len(); j++ {
			if v.Bit(j) {
				return nil, fmt.Errorf("bitvec: trailing one-bit at %d after 0 buckets", j)
			}
		}
		return []int{}, nil
	}
	loads := make([]int, 0, count)
	run := 0
	for i := 0; i < v.Len(); i++ {
		if v.Bit(i) {
			run++
			continue
		}
		loads = append(loads, run)
		run = 0
		if len(loads) == count {
			for j := i + 1; j < v.Len(); j++ {
				if v.Bit(j) {
					return nil, fmt.Errorf("bitvec: trailing one-bit at %d after %d buckets", j, count)
				}
			}
			return loads, nil
		}
	}
	return nil, fmt.Errorf("bitvec: histogram has %d separators, want %d", len(loads), count)
}

// DecodeHistogramPrefix decodes the first count bucket loads, ignoring any
// bits after the count-th separator. This is the query-side decoder: the ρ
// histogram cells a group owns may contain padding bits beyond the encoded
// histogram.
func DecodeHistogramPrefix(v *Vector, count int) ([]int, error) {
	if count == 0 {
		return []int{}, nil
	}
	loads := make([]int, 0, count)
	run := 0
	for i := 0; i < v.Len(); i++ {
		if v.Bit(i) {
			run++
			continue
		}
		loads = append(loads, run)
		run = 0
		if len(loads) == count {
			return loads, nil
		}
	}
	return nil, fmt.Errorf("bitvec: histogram has %d separators, want %d", len(loads), count)
}

// HistogramPrefixSum streams the first count bucket loads of a unary group
// histogram and returns the sum of squares of the first count−1 loads
// together with the count-th load itself, without materializing a load
// slice. It decodes exactly what the query algorithm's phase 3 needs — the
// cell offset Σ_{k<pos} ℓ_k² and the bucket load ℓ_pos — and it agrees with
// DecodeHistogramPrefix on every input: for loads := DecodeHistogramPrefix(v,
// count), sumSq = Σ_{k<count−1} loads[k]² and last = loads[count−1].
//
// The scan is word-at-a-time: within a word, the next separator is the
// lowest zero bit at or beyond the cursor, and every bit between cursor and
// separator is a one, so each bucket costs O(1) word operations instead of
// one Bit call per unary digit.
func HistogramPrefixSum(v *Vector, count int) (sumSq, last int, err error) {
	if count < 1 {
		return 0, 0, fmt.Errorf("bitvec: prefix sum needs count ≥ 1, got %d", count)
	}
	run := 0
	decoded := 0
	for wi := 0; wi*64 < v.n; wi++ {
		valid := v.n - wi*64
		if valid > 64 {
			valid = 64
		}
		// Zero bits of the word are separators; mask the slack beyond the
		// vector's length so it is neither ones nor separators.
		z := ^v.words[wi]
		if valid < 64 {
			z &= 1<<uint(valid) - 1
		}
		start := 0
		for z != 0 {
			sep := bits.TrailingZeros64(z)
			run += sep - start // bits in [start, sep) are all ones
			decoded++
			if decoded == count {
				return sumSq, run, nil
			}
			sumSq += run * run
			run = 0
			start = sep + 1
			z &= z - 1
		}
		run += valid - start // trailing ones carry into the next word
	}
	return 0, 0, fmt.Errorf("bitvec: histogram has %d separators, want %d", decoded, count)
}

// HistogramBits returns the exact number of bits needed to encode the given
// bucket count and total load: totalLoad ones plus count separators.
func HistogramBits(count, totalLoad int) int { return count + totalLoad }

// Reset repoints the vector at an existing word slice holding nbits valid
// bits, without copying — the in-place analogue of FromWords for callers
// that reuse one Vector across queries to avoid allocation.
func (v *Vector) Reset(words []uint64, nbits int) {
	if nbits < 0 || nbits > len(words)*64 {
		panic(fmt.Sprintf("bitvec: %d bits do not fit in %d words", nbits, len(words)))
	}
	v.words = words
	v.n = nbits
}
