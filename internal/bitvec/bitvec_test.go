package bitvec

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAppendAndBit(t *testing.T) {
	v := New(0)
	pattern := []bool{true, false, true, true, false, false, true}
	for _, b := range pattern {
		v.Append(b)
	}
	if v.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(pattern))
	}
	for i, want := range pattern {
		if got := v.Bit(i); got != want {
			t.Errorf("Bit(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestAppendCrossesWordBoundary(t *testing.T) {
	v := New(0)
	for i := 0; i < 130; i++ {
		v.Append(i%3 == 0)
	}
	for i := 0; i < 130; i++ {
		if v.Bit(i) != (i%3 == 0) {
			t.Fatalf("Bit(%d) wrong across word boundary", i)
		}
	}
	if got, want := v.OnesCount(), (130+2)/3; got != want {
		t.Errorf("OnesCount = %d, want %d", got, want)
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	v := New(0)
	v.Append(true)
	for _, i := range []int{-1, 1, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			v.Bit(i)
		}()
	}
}

func TestFromWordsRoundTrip(t *testing.T) {
	words := []uint64{0xdeadbeef, 0x12345678}
	v := FromWords(words, 100)
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := 0; i < 100; i++ {
		want := words[i/64]>>(uint(i%64))&1 == 1
		if v.Bit(i) != want {
			t.Errorf("Bit(%d) mismatch", i)
		}
	}
}

func TestFromWordsPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromWords with too many bits did not panic")
		}
	}()
	FromWords([]uint64{1}, 65)
}

func TestHistogramRoundTripFixed(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{0, 0, 0},
		{1, 2, 3},
		{5},
		{0, 7, 0, 1, 64, 2},
	}
	for _, loads := range cases {
		v := EncodeHistogram(loads)
		if got, want := v.Len(), HistogramBits(len(loads), sum(loads)); got != want {
			t.Errorf("encoded %v into %d bits, want %d", loads, got, want)
		}
		dec, err := DecodeHistogram(v, len(loads))
		if err != nil {
			t.Errorf("decode %v: %v", loads, err)
			continue
		}
		if !equal(dec, loads) {
			t.Errorf("round trip %v -> %v", loads, dec)
		}
	}
}

func TestHistogramRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		loads := make([]int, len(raw))
		for i, r := range raw {
			loads[i] = int(r % 20)
		}
		dec, err := DecodeHistogram(EncodeHistogram(loads), len(loads))
		return err == nil && equal(dec, loads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeHistogramPrefixIgnoresPadding(t *testing.T) {
	loads := []int{3, 0, 2, 5}
	v := EncodeHistogram(loads)
	// Simulate the query path: the cells may carry stale padding bits.
	v.AppendRun(true, 9)
	v.Append(false)
	dec, err := DecodeHistogramPrefix(v, len(loads))
	if err != nil {
		t.Fatal(err)
	}
	if !equal(dec, loads) {
		t.Errorf("prefix decode = %v, want %v", dec, loads)
	}
	// Strict decode must reject the padding.
	if _, err := DecodeHistogram(v, len(loads)); err == nil {
		t.Error("strict decode accepted trailing one-bits")
	}
}

func TestDecodeHistogramErrors(t *testing.T) {
	v := EncodeHistogram([]int{1, 2})
	if _, err := DecodeHistogram(v, 3); err == nil {
		t.Error("decode with too-large count did not fail")
	}
	if _, err := DecodeHistogramPrefix(v, 3); err == nil {
		t.Error("prefix decode with too-large count did not fail")
	}
}

func TestEncodeHistogramPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EncodeHistogram(-1) did not panic")
		}
	}()
	EncodeHistogram([]int{-1})
}

func TestHistogramViaWordsRoundTrip(t *testing.T) {
	// The dictionary ships histograms between build and query as raw words;
	// verify Words -> FromWords preserves the decode.
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(40)
		loads := make([]int, n)
		total := 0
		for i := range loads {
			loads[i] = r.Intn(10)
			total += loads[i]
		}
		v := EncodeHistogram(loads)
		w := FromWords(v.Words(), HistogramBits(n, total))
		dec, err := DecodeHistogram(w, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !equal(dec, loads) {
			t.Fatalf("trial %d: %v != %v", trial, dec, loads)
		}
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prefixSumRef derives (sumSq, last) from the materializing decoder — the
// reference the streaming HistogramPrefixSum must match bit for bit.
func prefixSumRef(v *Vector, count int) (int, int, error) {
	loads, err := DecodeHistogramPrefix(v, count)
	if err != nil {
		return 0, 0, err
	}
	sumSq := 0
	for _, l := range loads[:count-1] {
		sumSq += l * l
	}
	return sumSq, loads[count-1], nil
}

func TestHistogramPrefixSumMatchesDecoder(t *testing.T) {
	cases := [][]int{
		{0},
		{1},
		{5},
		{0, 0, 0},
		{1, 2, 3, 4, 5},
		{63, 1, 64, 0, 65},       // runs straddling word boundaries
		{127, 0, 128, 2},         // separator on a word boundary
		{0, 200, 0, 0, 17, 3, 1}, // long run far past one word
	}
	for _, loads := range cases {
		v := EncodeHistogram(loads)
		// The query path hands the decoder whole words with padding bits
		// beyond the encoded histogram; mirror that.
		padded := FromWords(v.Words(), len(v.Words())*64)
		for _, vec := range []*Vector{v, padded} {
			for count := 1; count <= len(loads); count++ {
				wantSq, wantLast, wantErr := prefixSumRef(vec, count)
				gotSq, gotLast, gotErr := HistogramPrefixSum(vec, count)
				if (gotErr != nil) != (wantErr != nil) {
					t.Fatalf("loads %v count %d: err %v, want %v", loads, count, gotErr, wantErr)
				}
				if gotSq != wantSq || gotLast != wantLast {
					t.Fatalf("loads %v count %d: (%d, %d), want (%d, %d)",
						loads, count, gotSq, gotLast, wantSq, wantLast)
				}
			}
		}
	}
}

func TestHistogramPrefixSumErrors(t *testing.T) {
	v := EncodeHistogram([]int{1, 2})
	if _, _, err := HistogramPrefixSum(v, 0); err == nil {
		t.Error("count 0 accepted")
	}
	if _, _, err := HistogramPrefixSum(v, -3); err == nil {
		t.Error("negative count accepted")
	}
	if _, _, err := HistogramPrefixSum(v, 3); err == nil {
		t.Error("count beyond the encoded buckets accepted")
	}
	// An all-ones vector has no separators at all.
	ones := FromWords([]uint64{^uint64(0), ^uint64(0)}, 128)
	if _, _, err := HistogramPrefixSum(ones, 1); err == nil {
		t.Error("separator-free vector accepted")
	}
}

func TestHistogramPrefixSumRandom(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(40)
		loads := make([]int, n)
		for i := range loads {
			if r.Intn(3) == 0 {
				loads[i] = 0
			} else {
				loads[i] = r.Intn(130)
			}
		}
		v := EncodeHistogram(loads)
		padded := FromWords(v.Words(), len(v.Words())*64)
		count := 1 + r.Intn(n)
		wantSq, wantLast, err := prefixSumRef(padded, count)
		if err != nil {
			t.Fatalf("trial %d: reference decode: %v", trial, err)
		}
		gotSq, gotLast, err := HistogramPrefixSum(padded, count)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if gotSq != wantSq || gotLast != wantLast {
			t.Fatalf("trial %d: loads %v count %d: (%d, %d), want (%d, %d)",
				trial, loads, count, gotSq, gotLast, wantSq, wantLast)
		}
	}
}
