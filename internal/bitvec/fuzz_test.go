package bitvec

import "testing"

// FuzzHistogramRoundTrip checks encode/decode inverse on arbitrary load
// vectors derived from fuzz input bytes.
func FuzzHistogramRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 250})
	f.Add([]byte{255, 255, 0, 7})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		loads := make([]int, len(raw))
		total := 0
		for i, b := range raw {
			loads[i] = int(b)
			total += int(b)
		}
		v := EncodeHistogram(loads)
		if v.Len() != HistogramBits(len(loads), total) {
			t.Fatalf("encoded length %d, want %d", v.Len(), HistogramBits(len(loads), total))
		}
		dec, err := DecodeHistogram(v, len(loads))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		for i := range loads {
			if dec[i] != loads[i] {
				t.Fatalf("round trip mismatch at %d: %d != %d", i, dec[i], loads[i])
			}
		}
		// Prefix decode through a word-level round trip (the query path).
		w := FromWords(v.Words(), len(v.Words())*64)
		dec2, err := DecodeHistogramPrefix(w, len(loads))
		if err != nil {
			t.Fatalf("prefix decode: %v", err)
		}
		for i := range loads {
			if dec2[i] != loads[i] {
				t.Fatalf("prefix mismatch at %d", i)
			}
		}
		// The streaming decoder must agree with the materializing one on
		// every prefix length.
		for count := 1; count <= len(loads); count++ {
			sumSq, last, err := HistogramPrefixSum(w, count)
			if err != nil {
				t.Fatalf("prefix sum count %d: %v", count, err)
			}
			wantSq := 0
			for _, l := range loads[:count-1] {
				wantSq += l * l
			}
			if sumSq != wantSq || last != loads[count-1] {
				t.Fatalf("prefix sum count %d: (%d, %d), want (%d, %d)",
					count, sumSq, last, wantSq, loads[count-1])
			}
		}
	})
}

// FuzzDecodeNeverPanics: arbitrary words must decode or error, not panic,
// and the two prefix decoders must agree on arbitrary (even corrupt) input.
func FuzzDecodeNeverPanics(f *testing.F) {
	f.Add(uint64(0), uint64(0), 5)
	f.Add(^uint64(0), uint64(1)<<63, 100)
	f.Fuzz(func(t *testing.T, w0, w1 uint64, count int) {
		if count < 0 || count > 200 {
			return
		}
		v := FromWords([]uint64{w0, w1}, 128)
		_, _ = DecodeHistogram(v, count)
		loads, decErr := DecodeHistogramPrefix(v, count)
		if count < 1 {
			return
		}
		sumSq, last, sumErr := HistogramPrefixSum(v, count)
		if (decErr != nil) != (sumErr != nil) {
			t.Fatalf("decoders disagree on error: %v vs %v", decErr, sumErr)
		}
		if decErr != nil {
			return
		}
		wantSq := 0
		for _, l := range loads[:count-1] {
			wantSq += l * l
		}
		if sumSq != wantSq || last != loads[count-1] {
			t.Fatalf("decoders disagree: (%d, %d), want (%d, %d)", sumSq, last, wantSq, loads[count-1])
		}
	})
}
