package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestExplainPositive(t *testing.T) {
	keys := distinctKeys(rng.New(80), 128)
	d := mustBuild(t, keys, 81)
	var buf bytes.Buffer
	ok, err := d.Explain(keys[0], rng.New(82), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Explain lost a stored key")
	}
	out := buf.String()
	for _, want := range []string{"f-coef[0]", "g-coef[3]", "row z", "GBAS", "histogram[0]", "perfect-hash", "data", "answer: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Probe count in the trace matches the contract.
	if got := strings.Count(out, "probe "); got != d.MaxProbes() {
		t.Errorf("trace has %d probes, want %d", got, d.MaxProbes())
	}
}

func TestExplainNegativeEmptyBucket(t *testing.T) {
	keys := distinctKeys(rng.New(83), 16)
	d := mustBuild(t, keys, 84)
	// Find a key hashing to an empty bucket.
	r := rng.New(85)
	var miss uint64
	for {
		x := r.Uint64n(1 << 60)
		if d.hLoads[d.hEval(x)] == 0 {
			miss = x
			break
		}
	}
	var buf bytes.Buffer
	ok, err := d.Explain(miss, rng.New(86), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("phantom member")
	}
	if !strings.Contains(buf.String(), "empty -> answer false") {
		t.Errorf("empty-bucket explanation missing:\n%s", buf.String())
	}
}

func TestExplainLeavesNoTrace(t *testing.T) {
	keys := distinctKeys(rng.New(87), 32)
	d := mustBuild(t, keys, 88)
	var buf bytes.Buffer
	if _, err := d.Explain(keys[0], rng.New(89), &buf); err != nil {
		t.Fatal(err)
	}
	// The trace hook must be removed afterwards: subsequent queries work
	// and do not append to the old buffer.
	before := buf.Len()
	if _, err := d.Contains(keys[1], rng.New(90)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != before {
		t.Error("Explain left its trace hook installed")
	}
}
