// Package core implements the paper's primary contribution (§2): the
// low-contention static dictionary of Theorem 3 — an
// (O(n), b, O(1), O(1/n))-balanced cell-probing scheme for membership under
// query distributions that are uniform within the positive set and uniform
// within the negative set.
//
// # Construction (§2.2)
//
// Draw f ∈ H^d_s, g ∈ H^d_r, z ∈ [s]^r and form the DM-family function
// h(x) = (f(x) + z_{g(x)}) mod s assigning keys to s buckets, and
// h′ = h mod m arranging the buckets into m groups of s/m buckets each.
// Resample until property P(S) holds:
//
//	∀i ∈ [r]: ℓ(S, g, i) ≤ c·n/r          (g-blocks are balanced)
//	∀i ∈ [m]: ℓ(S, h′, i) ≤ c·n/m         (groups are balanced)
//	Σ_i ℓ(S, h, i)² ≤ s                   (FKS condition)
//
// The table stores, in O(1) rows of s cells each: the 2d hash coefficients
// (each replicated across a full row), the vector z (replicated s/r times),
// the group base addresses GBAS (replicated s/m times), ρ = O(1) rows of
// unary-coded group histograms (replicated s/m times), and per bucket a
// pairwise perfect hash plus the bucket data in the ℓ² cells the bucket owns.
//
// # Query (§2.3)
//
// Each probe picks a uniformly random replica, so every step spreads its
// probability mass over a range whose size P(S) guarantees to be within a
// constant factor of n times the range's query mass — contention O(1/n) per
// step for uniform-positive and (via Lemma 10) uniform-negative queries.
//
// # Deviations from the paper's presentation
//
//   - Replicas are laid out in contiguous blocks (cell j of row zRow holds
//     z[j / (s/r)]) rather than residue classes (z[j mod r]). The replica
//     counts and therefore all contention bounds are unchanged; contiguous
//     blocks let the exact contention analyzer represent every probe
//     distribution as a uniform interval.
//   - Cells are 128 bits wide (b = Θ(log N) for the 2^61 universe), so one
//     cell holds both coefficients of a bucket's pairwise perfect hash and
//     the paper's one-probe-per-row layout is preserved exactly.
//   - The constants (c, d, δ, α, β) are configurable with defaults
//     satisfying Lemma 9's constraints; because P(S) is an asymptotic
//     1/2 − o(1) event, the builder escalates the slack constant c after
//     a bounded number of failed draws and reports the escalation.
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
)

// Sentinel fills unoccupied data cells. Occupied cells carry Hi = occupiedTag.
const (
	sentinelLo  = ^uint64(0)
	occupiedTag = uint64(1)
)

// Params are the construction constants of §2.2. Zero values select the
// defaults, which satisfy every constraint of Lemma 9:
// d = 4 (> 2), δ = 1/2 ∈ (2/(d+2), 1 − 1/d), c = 2e, α = 2 > d/(c(ln c − 1)),
// β = 4 ≥ 2.
type Params struct {
	// D is the independence degree d of the hash families; must be > 2.
	D int
	// Delta sets r = ⌈n^Delta⌉; must lie in (2/(D+2), 1 − 1/D).
	Delta float64
	// Alpha sets the group count m ≈ n / (Alpha·ln n).
	Alpha float64
	// Beta sets the bucket count s ≈ Beta·n; must be ≥ 2.
	Beta float64
	// C is the load-slack constant c of property P(S); must be > e.
	C float64
	// MaxTriesPerSlack bounds the number of (f, g, z) draws at each slack
	// level before c is multiplied by SlackGrowth.
	MaxTriesPerSlack int
	// SlackGrowth is the escalation factor applied to c; must be > 1.
	SlackGrowth float64
	// MaxEscalations bounds the number of slack escalations.
	MaxEscalations int
	// PerfectMaxTries bounds the per-bucket perfect-hash search.
	PerfectMaxTries int
	// Strided selects the paper's literal replica layout (copy j of z at
	// column j mod r, of group data at column j mod m) instead of the
	// default contiguous blocks. The replica counts, probe counts and
	// contention are identical; the strided layout exists to validate
	// that equivalence empirically. ProbeSpec (the exact analyzer)
	// requires the block layout and panics for strided dictionaries —
	// use Monte-Carlo contention measurement instead.
	Strided bool
	// Compact backs the replicated rows (coefficients, z, GBAS,
	// histograms) with one stored value per replica block instead of
	// materializing every copy, cutting the Go heap from ≈ 14·βn cells to
	// ≈ 2·βn while leaving the model's space accounting — and every
	// observable behaviour — unchanged. Incompatible with Strided.
	Compact bool
	// BuildWorkers races this many independent (f, g, z) draws per round
	// of the §2.2 resampling loop, cutting the wall-clock of the geometric
	// retry by the worker count. 0 or 1 selects the serial loop, which is
	// byte-identical to historical builds. With k > 1 workers every round
	// examines k candidates — each drawn from its own deterministically
	// seeded stream — and accepts the success of lowest (round, worker)
	// rank, so a given (seed, BuildWorkers) pair is fully reproducible;
	// different worker counts may, however, select different (equally
	// valid) hash functions.
	BuildWorkers int
	// BatchGroup is the wavefront width G of the batch query path
	// (ContainsBatch): up to G queries are kept in flight, each evaluating
	// the probe stage it prefetched on the previous round, so the dependent
	// cache misses of G independent probe chains overlap. 0 selects the
	// default (8); 1 degenerates to query-at-a-time; values above 64 are
	// clamped at use. Answers and per-query probe cells are identical for
	// every G — only throughput and the probe interleaving across the batch
	// change.
	BatchGroup int
}

// DefaultParams returns the paper-faithful defaults described on Params.
func DefaultParams() Params {
	return Params{
		D:                4,
		Delta:            0.5,
		Alpha:            2,
		Beta:             4,
		C:                2 * math.E,
		MaxTriesPerSlack: 48,
		SlackGrowth:      1.5,
		MaxEscalations:   10,
		PerfectMaxTries:  1000,
	}
}

func (p Params) withDefaults() Params {
	def := DefaultParams()
	if p.D == 0 {
		p.D = def.D
	}
	if p.Delta == 0 {
		p.Delta = def.Delta
	}
	if p.Alpha == 0 {
		p.Alpha = def.Alpha
	}
	if p.Beta == 0 {
		p.Beta = def.Beta
	}
	if p.C == 0 {
		p.C = def.C
	}
	if p.MaxTriesPerSlack == 0 {
		p.MaxTriesPerSlack = def.MaxTriesPerSlack
	}
	if p.SlackGrowth == 0 {
		p.SlackGrowth = def.SlackGrowth
	}
	if p.MaxEscalations == 0 {
		p.MaxEscalations = def.MaxEscalations
	}
	if p.PerfectMaxTries == 0 {
		p.PerfectMaxTries = def.PerfectMaxTries
	}
	return p
}

func (p Params) validate() error {
	if p.D <= 2 {
		return fmt.Errorf("core: d = %d must be > 2", p.D)
	}
	lo, hi := 2.0/float64(p.D+2), 1.0-1.0/float64(p.D)
	if p.Delta <= lo || p.Delta >= hi {
		return fmt.Errorf("core: delta = %v outside (%v, %v)", p.Delta, lo, hi)
	}
	if p.C <= math.E {
		return fmt.Errorf("core: c = %v must exceed e", p.C)
	}
	if p.Beta < 2 {
		return fmt.Errorf("core: beta = %v must be ≥ 2", p.Beta)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("core: alpha = %v must be positive", p.Alpha)
	}
	if p.SlackGrowth <= 1 {
		return fmt.Errorf("core: slack growth %v must exceed 1", p.SlackGrowth)
	}
	if p.BuildWorkers < 0 {
		return fmt.Errorf("core: build workers %d must be ≥ 0", p.BuildWorkers)
	}
	if p.BatchGroup < 0 {
		return fmt.Errorf("core: batch group %d must be ≥ 0", p.BatchGroup)
	}
	return nil
}

// BuildReport records what the construction actually did — the evidence for
// experiment T4 (expected O(1) resampling rounds, O(n) work).
type BuildReport struct {
	N             int     // number of keys
	S             int     // buckets / row width (the paper's s)
	R             int     // range of g
	M             int     // number of groups
	Rho           int     // histogram rows
	Rows          int     // total table rows
	Cells         int     // total cells (space in cells)
	HashTries     int     // (f, g, z) draws until P(S) held
	Escalations   int     // slack escalations applied
	FinalC        float64 // slack constant in force when P(S) held
	PerfectTries  int     // total per-bucket perfect-hash draws
	MaxBucketLoad int     // max_i ℓ(S, h, i)
	MaxGroupLoad  int     // max_i ℓ(S, h′, i)
	MaxGLoad      int     // max_i ℓ(S, g, i)
	SumSquares    int     // Σ ℓ(S, h, i)²
}

// Dict is a built low-contention static dictionary. The query side reads
// only table cells; the hash functions and load vectors retained here serve
// the exact contention analyzer (ProbeSpec) and the test oracles.
type Dict struct {
	n       int
	d       int
	s       int // buckets and row width
	r       int // range of g
	m       int // groups
	blkZ    int // replica block width of the z row: ⌊s/r⌋
	blkG    int // replica block width of GBAS/histogram rows: s/m
	rho     int
	strided bool // paper-literal residue-class replica layout
	compact bool // block-backed replicated rows

	batchGroup int // wavefront width G of the batch query path (0 = default)

	tab *cellprobe.Table

	f, g    hash.Poly
	z       []uint64
	hLoads  []int    // ℓ(S, h, i) per bucket i ∈ [s]
	offsets []int    // start of bucket i's ℓ² span in the ph/data rows
	phA     []uint64 // per-bucket perfect hash coefficient A
	phB     []uint64 // per-bucket perfect hash coefficient B

	report BuildReport
}

// sizes derives (s, r, m) from n per §2.2.
func sizes(n int, p Params) (s, r, m int) {
	logn := math.Log(math.Max(float64(n), 2))
	m = int(float64(n) / (p.Alpha * logn))
	if m < 1 {
		m = 1
	}
	r = int(math.Ceil(math.Pow(float64(n), p.Delta)))
	if r < 1 {
		r = 1
	}
	sMin := int(math.Ceil(p.Beta * float64(n)))
	if sMin < m {
		sMin = m
	}
	if sMin < r {
		sMin = r
	}
	if sMin < 1 {
		sMin = 1
	}
	// Round s up to a multiple of m so that h′ = h mod m is uniform over
	// R^d_{r,m} (§2.2 requires m | s).
	s = ((sMin + m - 1) / m) * m
	return s, r, m
}

// Build constructs the dictionary for the given distinct keys. Keys must be
// below hash.MaxKey. The seed determines every random choice, making builds
// reproducible.
func Build(keys []uint64, p Params, seed uint64) (*Dict, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if err := scheme.ValidateKeys(keys); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	n := len(keys)
	s, r, m := sizes(n, p)
	d := p.D
	rand := rng.New(seed)

	if p.Strided && p.Compact {
		return nil, fmt.Errorf("core: compact backing requires the block layout")
	}
	dict := &Dict{
		n: n, d: d, s: s, r: r, m: m,
		blkZ: s / r, blkG: s / m,
		strided:    p.Strided,
		compact:    p.Compact,
		batchGroup: p.BatchGroup,
	}
	if err := dict.drawHashes(keys, p, rand); err != nil {
		return nil, err
	}
	if err := dict.layout(keys, p, rand); err != nil {
		return nil, err
	}
	// Self-check: every key must be retrievable through the real query path.
	check := rng.New(seed ^ 0x5eed)
	for _, k := range keys {
		ok, err := dict.Contains(k, check)
		if err != nil {
			return nil, fmt.Errorf("core: self-check query failed: %w", err)
		}
		if !ok {
			return nil, fmt.Errorf("core: self-check lost key %d", k)
		}
	}
	return dict, nil
}

// hashDraw is one candidate (f, g, z) together with its property-P(S)
// verdict and the load statistics the build report records.
type hashDraw struct {
	f, g      hash.Poly
	z         []uint64
	hLoads    []int
	maxBucket int
	maxGroup  int
	maxG      int
	ss        int
	ok        bool
}

// drawCandidate draws one (f, g, z) from rand and checks property P(S) at
// slack c. It always consumes exactly 2d + r values from rand, whether or
// not the checks pass, so candidate streams stay aligned.
func (dict *Dict) drawCandidate(keys []uint64, c float64, rand *rng.RNG) hashDraw {
	n, s, r, m, d := dict.n, dict.s, dict.r, dict.m, dict.d
	f := hash.NewPoly(rand, d, uint64(s))
	g := hash.NewPoly(rand, d, uint64(r))
	z := make([]uint64, r)
	for i := range z {
		z[i] = rand.Uint64n(uint64(s))
	}
	cand := hashDraw{f: f, g: g, z: z}
	hEval := func(x uint64) uint64 { return (f.Eval(x) + z[g.Eval(x)]) % uint64(s) }

	gLoads := hash.Loads(keys, g.Eval, r)
	if float64(hash.MaxLoad(gLoads)) > c*float64(n)/float64(r) {
		return cand
	}
	hLoads := hash.Loads(keys, hEval, s)
	hpLoads := make([]int, m)
	for i, l := range hLoads {
		hpLoads[i%m] += l
	}
	if float64(hash.MaxLoad(hpLoads)) > c*float64(n)/float64(m) {
		return cand
	}
	ss := hash.SumSquares(hLoads)
	if ss > s {
		return cand
	}
	cand.hLoads = hLoads
	cand.maxBucket = hash.MaxLoad(hLoads)
	cand.maxGroup = hash.MaxLoad(hpLoads)
	cand.maxG = hash.MaxLoad(gLoads)
	cand.ss = ss
	cand.ok = true
	return cand
}

// accept installs a successful draw and fills the build report.
func (dict *Dict) accept(cand hashDraw, tries, esc int, c float64) {
	dict.f, dict.g, dict.z, dict.hLoads = cand.f, cand.g, cand.z, cand.hLoads
	dict.report = BuildReport{
		N: dict.n, S: dict.s, R: dict.r, M: dict.m,
		HashTries: tries, Escalations: esc, FinalC: c,
		MaxBucketLoad: cand.maxBucket,
		MaxGroupLoad:  cand.maxGroup,
		MaxGLoad:      cand.maxG,
		SumSquares:    cand.ss,
	}
}

// drawHashes resamples (f, g, z) until property P(S) holds, escalating the
// slack constant c if a slack level exhausts its budget. With
// BuildWorkers > 1 the resampling races that many draws per round.
func (dict *Dict) drawHashes(keys []uint64, p Params, rand *rng.RNG) error {
	if p.BuildWorkers > 1 {
		return dict.drawHashesParallel(keys, p, rand)
	}
	c := p.C
	tries := 0
	for esc := 0; esc <= p.MaxEscalations; esc++ {
		for t := 0; t < p.MaxTriesPerSlack; t++ {
			tries++
			if cand := dict.drawCandidate(keys, c, rand); cand.ok {
				dict.accept(cand, tries, esc, c)
				return nil
			}
		}
		c *= p.SlackGrowth
	}
	return fmt.Errorf("core: property P(S) not satisfied for n=%d after %d tries and %d escalations", dict.n, tries, p.MaxEscalations)
}

// drawHashesParallel is the §2.2 resampling loop with K = BuildWorkers
// draws raced per round. Each worker owns a stream split deterministically
// from the build RNG and draws one candidate per round whether or not it is
// needed, so the accepted draw depends only on (seed, K): the winner is the
// success of lowest (round, worker) rank, never the first to finish on the
// clock. Each slack level examines ⌈MaxTriesPerSlack/K⌉ rounds, preserving
// the serial loop's per-slack draw budget up to rounding.
func (dict *Dict) drawHashesParallel(keys []uint64, p Params, rand *rng.RNG) error {
	K := p.BuildWorkers
	wrng := make([]*rng.RNG, K)
	for k := range wrng {
		wrng[k] = rand.Split()
	}
	c := p.C
	rounds := (p.MaxTriesPerSlack + K - 1) / K
	tries := 0
	cands := make([]hashDraw, K)
	for esc := 0; esc <= p.MaxEscalations; esc++ {
		for t := 0; t < rounds; t++ {
			var wg sync.WaitGroup
			for k := 0; k < K; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					cands[k] = dict.drawCandidate(keys, c, wrng[k])
				}(k)
			}
			wg.Wait()
			for k := 0; k < K; k++ {
				if cands[k].ok {
					dict.accept(cands[k], tries+k+1, esc, c)
					return nil
				}
			}
			tries += K
		}
		c *= p.SlackGrowth
	}
	return fmt.Errorf("core: property P(S) not satisfied for n=%d after %d tries and %d escalations", dict.n, tries, p.MaxEscalations)
}

// phSource supplies the perfect hash for one bucket's keys and span. Build
// searches with FindPerfect; deserialization replays stored coefficients.
type phSource func(bucket int, keys []uint64, span int) (hash.Pairwise, int, error)

// layout fills the table rows from the accepted hash functions.
func (dict *Dict) layout(keys []uint64, p Params, rand *rng.RNG) error {
	finder := func(_ int, bucketKeys []uint64, span int) (hash.Pairwise, int, error) {
		return hash.FindPerfect(rand, bucketKeys, uint64(span), p.PerfectMaxTries)
	}
	return dict.layoutWith(keys, finder)
}

// layoutWith fills the table rows, obtaining per-bucket perfect hashes from
// the given source.
func (dict *Dict) layoutWith(keys []uint64, ph phSource) error {
	s, m, d := dict.s, dict.m, dict.d
	bucketsPerGroup := s / m

	// Assign keys to buckets.
	bucketKeys := make(map[int][]uint64)
	for _, x := range keys {
		b := int(dict.hEval(x))
		bucketKeys[b] = append(bucketKeys[b], x)
	}

	// Group base addresses and per-bucket offsets (buckets ordered by
	// (group, position-in-group), spans of ℓ² cells each).
	gbas := make([]uint64, m)
	offsets := make([]int, s)
	pos := 0
	for grp := 0; grp < m; grp++ {
		gbas[grp] = uint64(pos)
		for k := 0; k < bucketsPerGroup; k++ {
			b := k*m + grp
			offsets[b] = pos
			pos += dict.hLoads[b] * dict.hLoads[b]
		}
	}
	if pos > s {
		return fmt.Errorf("core: bucket spans need %d cells > s = %d despite FKS condition", pos, s)
	}
	dict.offsets = offsets

	// Group histograms, and ρ from the realized maximum bit length.
	groupWords := make([][]uint64, m)
	maxBits := 1
	for grp := 0; grp < m; grp++ {
		loads := make([]int, bucketsPerGroup)
		for k := 0; k < bucketsPerGroup; k++ {
			loads[k] = dict.hLoads[k*m+grp]
		}
		v := bitvec.EncodeHistogram(loads)
		if v.Len() > maxBits {
			maxBits = v.Len()
		}
		groupWords[grp] = v.Words()
	}
	rho := (maxBits + 127) / 128
	dict.rho = rho
	rows := 2*d + 4 + rho
	tab := cellprobe.New(rows, s)
	dict.tab = tab

	// Rows 0..2d−1: hash coefficients, replicated across the full row.
	// Row 2d: z replicas — blocks of width ⌊s/r⌋ (leftover cells repeat
	// z[r−1]), or the paper's residue classes when strided.
	// Row 2d+1: GBAS replicas.
	// Rows 2d+2 .. 2d+1+ρ: group histograms (word pair w of group grp in
	// histogram row w).
	histCell := func(grp, w int) cellprobe.Cell {
		words := groupWords[grp]
		var c cellprobe.Cell
		if 2*w < len(words) {
			c.Lo = words[2*w]
		}
		if 2*w+1 < len(words) {
			c.Hi = words[2*w+1]
		}
		return c
	}
	if dict.compact {
		for i := 0; i < d; i++ {
			tab.SetBlockRow(i, []cellprobe.Cell{{Lo: dict.f.Coef[i]}}, s)
			tab.SetBlockRow(d+i, []cellprobe.Cell{{Lo: dict.g.Coef[i]}}, s)
		}
		zvals := make([]cellprobe.Cell, dict.r)
		for i, v := range dict.z {
			zvals[i] = cellprobe.Cell{Lo: v}
		}
		tab.SetBlockRow(dict.zRow(), zvals, dict.blkZ)
		gvals := make([]cellprobe.Cell, m)
		for i, v := range gbas {
			gvals[i] = cellprobe.Cell{Lo: v}
		}
		tab.SetBlockRow(dict.gbasRow(), gvals, dict.blkG)
		for w := 0; w < rho; w++ {
			hvals := make([]cellprobe.Cell, m)
			for grp := 0; grp < m; grp++ {
				hvals[grp] = histCell(grp, w)
			}
			tab.SetBlockRow(dict.histRow()+w, hvals, dict.blkG)
		}
	} else {
		for i := 0; i < d; i++ {
			for j := 0; j < s; j++ {
				tab.Set(i, j, cellprobe.Cell{Lo: dict.f.Coef[i]})
				tab.Set(d+i, j, cellprobe.Cell{Lo: dict.g.Coef[i]})
			}
		}
		zRow := dict.zRow()
		for j := 0; j < s; j++ {
			tab.Set(zRow, j, cellprobe.Cell{Lo: dict.z[dict.zReplicaIndex(j)]})
		}
		gbasRow := dict.gbasRow()
		for j := 0; j < s; j++ {
			tab.Set(gbasRow, j, cellprobe.Cell{Lo: gbas[dict.groupReplicaIndex(j)]})
		}
		for w := 0; w < rho; w++ {
			row := dict.histRow() + w
			for j := 0; j < s; j++ {
				tab.Set(row, j, histCell(dict.groupReplicaIndex(j), w))
			}
		}
	}
	// Last two rows: per-bucket perfect hashes and data.
	phRow, dataRow := dict.phRow(), dict.dataRow()
	for j := 0; j < s; j++ {
		tab.Set(dataRow, j, cellprobe.Cell{Lo: sentinelLo})
	}
	dict.phA = make([]uint64, s)
	dict.phB = make([]uint64, s)
	perfectTries := 0
	// Iterate buckets in index order: map iteration order would make the
	// perfect-hash RNG consumption, and hence the build, nondeterministic.
	for b := 0; b < s; b++ {
		bk := bucketKeys[b]
		if len(bk) == 0 {
			continue
		}
		l := dict.hLoads[b]
		span := l * l
		hstar, tries, err := ph(b, bk, span)
		perfectTries += tries
		if err != nil {
			return fmt.Errorf("core: bucket %d: %w", b, err)
		}
		dict.phA[b], dict.phB[b] = hstar.A, hstar.B
		off := offsets[b]
		for j := 0; j < span; j++ {
			tab.Set(phRow, off+j, cellprobe.Cell{Lo: hstar.A, Hi: hstar.B})
		}
		for _, x := range bk {
			tab.Set(dataRow, off+int(hstar.Eval(x)), cellprobe.Cell{Lo: x, Hi: occupiedTag})
		}
	}

	dict.report.Rho = rho
	dict.report.Rows = rows
	dict.report.Cells = tab.Size()
	dict.report.PerfectTries = perfectTries
	return nil
}

// zReplicaIndex maps a z-row column to the z entry it replicates.
func (dict *Dict) zReplicaIndex(col int) int {
	if dict.strided {
		return col % dict.r
	}
	idx := col / dict.blkZ
	if idx >= dict.r {
		idx = dict.r - 1
	}
	return idx
}

// groupReplicaIndex maps a GBAS/histogram-row column to its group.
func (dict *Dict) groupReplicaIndex(col int) int {
	if dict.strided {
		return col % dict.m
	}
	return col / dict.blkG
}

// zReplicaCol returns the column of the k-th replica of z[idx].
func (dict *Dict) zReplicaCol(idx, k int) int {
	if dict.strided {
		return idx + k*dict.r
	}
	return idx*dict.blkZ + k
}

// groupReplicaCol returns the column of the k-th replica of group grp.
func (dict *Dict) groupReplicaCol(grp, k int) int {
	if dict.strided {
		return grp + k*dict.m
	}
	return grp*dict.blkG + k
}

// hEval is the builder-side h(x) = (f(x) + z_{g(x)}) mod s.
func (dict *Dict) hEval(x uint64) uint64 {
	return (dict.f.Eval(x) + dict.z[dict.g.Eval(x)]) % uint64(dict.s)
}

func (dict *Dict) zRow() int    { return 2 * dict.d }
func (dict *Dict) gbasRow() int { return 2*dict.d + 1 }
func (dict *Dict) histRow() int { return 2*dict.d + 2 }
func (dict *Dict) phRow() int   { return 2*dict.d + 2 + dict.rho }
func (dict *Dict) dataRow() int { return 2*dict.d + 3 + dict.rho }

// N returns the number of stored keys.
func (dict *Dict) N() int { return dict.n }

// Keys returns the stored key set, read from the data row (bucket order).
func (dict *Dict) Keys() []uint64 {
	keys := make([]uint64, 0, dict.n)
	row := dict.dataRow()
	for j := 0; j < dict.s; j++ {
		if c := dict.tab.At(row, j); c.Hi == occupiedTag {
			keys = append(keys, c.Lo)
		}
	}
	return keys
}

// Table exposes the underlying cell-probe table for contention recording.
func (dict *Dict) Table() *cellprobe.Table { return dict.tab }

// Report returns the build report.
func (dict *Dict) Report() BuildReport { return dict.report }

// MaxProbes returns the worst-case number of cell probes per query:
// 2d coefficient probes, one z probe, one GBAS probe, ρ histogram probes,
// one perfect-hash probe and one data probe.
func (dict *Dict) MaxProbes() int { return 2*dict.d + dict.rho + 4 }

// Name identifies the structure in experiment reports.
func (dict *Dict) Name() string { return "lcds" }
