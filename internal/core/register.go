package core

import "repro/internal/scheme"

// The low-contention dictionary registers itself under the name every
// experiment table uses, with default Theorem-3 parameters; callers that
// need non-default Params keep using Build directly.
func init() {
	scheme.Register(scheme.Info{
		Name: "lcds",
		Build: func(keys []uint64, seed uint64) (scheme.Scheme, error) {
			d, err := Build(keys, Params{}, seed)
			if err != nil {
				return nil, err
			}
			return d, nil
		},
	})
}
