package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/hash"
)

// Serialization stores the construction state rather than the table: the
// keys, the accepted hash functions (f, g, z) and the per-bucket perfect
// hashes. Loading re-derives bucket loads, offsets, group histograms and
// every replicated row deterministically — the file is ≈ (2d + r + 3n)
// words instead of the table's ≈ 14·βn cells.

// serialMagic identifies the format; bump the digit on layout changes.
var serialMagic = [8]byte{'L', 'C', 'D', 'S', 'v', '1', 0, 0}

// MaxReadBuckets caps the bucket count (the paper's s) a deserialized header
// may declare, bounding the memory a hostile or corrupt file can make Read
// allocate (≈ 24 bytes per bucket of bookkeeping before any content is
// verified). 1<<24 buckets admits dictionaries of about four million keys at
// the default space factor; raise it explicitly for larger files.
var MaxReadBuckets = 1 << 24

// WriteTo serializes the dictionary. It implements io.WriterTo.
func (dict *Dict) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(vs ...uint64) error {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			n, err := bw.Write(buf[:])
			written += int64(n)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if n, err := bw.Write(serialMagic[:]); err != nil {
		return int64(n), err
	}
	written += int64(len(serialMagic))

	strided := uint64(0)
	if dict.strided {
		strided = 1
	}
	if err := put(uint64(dict.n), uint64(dict.d), uint64(dict.s), uint64(dict.r),
		uint64(dict.m), strided); err != nil {
		return written, err
	}
	if err := put(dict.f.Coef...); err != nil {
		return written, err
	}
	if err := put(dict.g.Coef...); err != nil {
		return written, err
	}
	if err := put(dict.z...); err != nil {
		return written, err
	}
	// Keys in bucket order (so loading can regroup without sorting), and
	// per non-empty bucket its index and perfect hash.
	for b := 0; b < dict.s; b++ {
		if dict.hLoads[b] == 0 {
			continue
		}
		if err := put(uint64(b), uint64(dict.hLoads[b]), dict.phA[b], dict.phB[b]); err != nil {
			return written, err
		}
	}
	// Sentinel bucket terminator (s is never a valid bucket index).
	if err := put(uint64(dict.s)); err != nil {
		return written, err
	}
	// The keys themselves.
	data := dict.dataRow()
	count := 0
	for j := 0; j < dict.s; j++ {
		c := dict.tab.At(data, j)
		if c.Hi == occupiedTag {
			if err := put(c.Lo); err != nil {
				return written, err
			}
			count++
		}
	}
	if count != dict.n {
		return written, fmt.Errorf("core: serialized %d keys, expected %d", count, dict.n)
	}
	return written, bw.Flush()
}

// Read deserializes a dictionary written by WriteTo and reconstructs its
// table. The reconstruction verifies the stored perfect hashes; corrupt
// input surfaces as an error.
func Read(r io.Reader) (*Dict, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != serialMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic[:])
	}
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	getN := func(n int, what string, max uint64) ([]uint64, error) {
		out := make([]uint64, n)
		for i := range out {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("core: reading %s: %w", what, err)
			}
			if max > 0 && v >= max {
				return nil, fmt.Errorf("core: %s value %d out of range %d", what, v, max)
			}
			out[i] = v
		}
		return out, nil
	}

	hdr, err := getN(6, "header", 0)
	if err != nil {
		return nil, err
	}
	n, d, s, rr, m := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3]), int(hdr[4])
	if n < 0 || d < 3 || d > 64 || s < 1 || s > MaxReadBuckets || rr < 1 || rr > s ||
		m < 1 || m > s || s%m != 0 || n > s {
		return nil, fmt.Errorf("core: implausible header n=%d d=%d s=%d r=%d m=%d", n, d, s, rr, m)
	}
	dict := &Dict{
		n: n, d: d, s: s, r: rr, m: m,
		blkZ: s / rr, blkG: s / m,
		strided: hdr[5] == 1,
	}
	fc, err := getN(d, "f coefficients", 0)
	if err != nil {
		return nil, err
	}
	gc, err := getN(d, "g coefficients", 0)
	if err != nil {
		return nil, err
	}
	z, err := getN(rr, "z", uint64(s))
	if err != nil {
		return nil, err
	}
	dict.f = hash.PolyFromCoef(fc, uint64(s))
	dict.g = hash.PolyFromCoef(gc, uint64(rr))
	dict.z = z

	type bucketPH struct {
		load int
		a, b uint64
	}
	phs := make(map[int]bucketPH)
	for {
		b, err := get()
		if err != nil {
			return nil, fmt.Errorf("core: reading bucket table: %w", err)
		}
		if b == uint64(s) {
			break
		}
		if b > uint64(s) {
			return nil, fmt.Errorf("core: bucket index %d out of range", b)
		}
		rest, err := getN(3, "bucket entry", 0)
		if err != nil {
			return nil, err
		}
		if rest[0] == 0 || rest[0] > uint64(n) {
			return nil, fmt.Errorf("core: bucket %d load %d implausible", b, rest[0])
		}
		if _, dup := phs[int(b)]; dup {
			return nil, fmt.Errorf("core: duplicate bucket %d", b)
		}
		phs[int(b)] = bucketPH{load: int(rest[0]), a: rest[1], b: rest[2]}
	}
	keys, err := getN(n, "keys", hash.MaxKey)
	if err != nil {
		return nil, err
	}

	// Recompute loads from the keys and check them against the stored
	// bucket table.
	dict.hLoads = make([]int, s)
	for _, x := range keys {
		dict.hLoads[dict.hEval(x)]++
	}
	total := 0
	for b, ph := range phs {
		if dict.hLoads[b] != ph.load {
			return nil, fmt.Errorf("core: bucket %d stored load %d, recomputed %d", b, ph.load, dict.hLoads[b])
		}
		total += ph.load
	}
	if total != n {
		return nil, fmt.Errorf("core: bucket loads sum to %d, want %d", total, n)
	}

	replay := func(b int, bucketKeys []uint64, span int) (hash.Pairwise, int, error) {
		ph, ok := phs[b]
		if !ok {
			return hash.Pairwise{}, 0, fmt.Errorf("missing perfect hash for bucket %d", b)
		}
		h := hash.Pairwise{A: ph.a, B: ph.b, M: uint64(span)}
		if !h.IsInjectiveOn(bucketKeys, nil) {
			return hash.Pairwise{}, 0, fmt.Errorf("stored perfect hash for bucket %d is not injective", b)
		}
		return h, 1, nil
	}
	if err := dict.layoutWith(keys, replay); err != nil {
		return nil, err
	}
	dict.report = BuildReport{
		N: n, S: s, R: rr, M: m,
		Rho: dict.rho, Rows: dict.tab.Rows(), Cells: dict.tab.Size(),
		MaxBucketLoad: maxIntSlice(dict.hLoads),
		SumSquares:    sumSquaresInt(dict.hLoads),
	}
	return dict, nil
}

func maxIntSlice(xs []int) int {
	best := 0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

func sumSquaresInt(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x * x
	}
	return total
}
