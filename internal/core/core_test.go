package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

func distinctKeys(r *rng.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func mustBuild(t testing.TB, keys []uint64, seed uint64) *Dict {
	t.Helper()
	d, err := Build(keys, Params{}, seed)
	if err != nil {
		t.Fatalf("Build(n=%d): %v", len(keys), err)
	}
	return d
}

func TestBuildAndMembershipAcrossSizes(t *testing.T) {
	r := rng.New(100)
	for _, n := range []int{0, 1, 2, 3, 7, 16, 64, 257, 1000, 4096} {
		keys := distinctKeys(r, n)
		d := mustBuild(t, keys, uint64(n)+1)
		qr := rng.New(999)
		inSet := make(map[uint64]bool, n)
		for _, k := range keys {
			inSet[k] = true
			ok, err := d.Contains(k, qr)
			if err != nil {
				t.Fatalf("n=%d: Contains(%d): %v", n, k, err)
			}
			if !ok {
				t.Fatalf("n=%d: stored key %d not found", n, k)
			}
		}
		// Negative queries.
		for i := 0; i < 2000; i++ {
			x := qr.Uint64n(hash.MaxKey)
			if inSet[x] {
				continue
			}
			ok, err := d.Contains(x, qr)
			if err != nil {
				t.Fatalf("n=%d: Contains(%d): %v", n, x, err)
			}
			if ok {
				t.Fatalf("n=%d: absent key %d reported present", n, x)
			}
		}
	}
}

func TestMembershipManySeeds(t *testing.T) {
	r := rng.New(200)
	for seed := uint64(0); seed < 10; seed++ {
		keys := distinctKeys(r, 300)
		d := mustBuild(t, keys, seed)
		qr := rng.New(seed + 77)
		for _, k := range keys {
			ok, err := d.Contains(k, qr)
			if err != nil || !ok {
				t.Fatalf("seed %d: lost key %d (err %v)", seed, k, err)
			}
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build([]uint64{5, 5}, Params{}, 1); err == nil {
		t.Error("duplicate keys accepted")
	}
	if _, err := Build([]uint64{hash.MaxKey}, Params{}, 1); err == nil {
		t.Error("out-of-universe key accepted")
	}
	if _, err := Build([]uint64{1}, Params{D: 2}, 1); err == nil {
		t.Error("d = 2 accepted")
	}
	if _, err := Build([]uint64{1}, Params{Delta: 0.9}, 1); err == nil {
		t.Error("delta = 0.9 accepted for d = 4")
	}
	if _, err := Build([]uint64{1}, Params{Beta: 1}, 1); err == nil {
		t.Error("beta = 1 accepted")
	}
	if _, err := Build([]uint64{1}, Params{C: 1}, 1); err == nil {
		t.Error("c = 1 accepted")
	}
	if _, err := Build([]uint64{1}, Params{SlackGrowth: 0.5}, 1); err == nil {
		t.Error("slack growth < 1 accepted")
	}
}

func TestSizesInvariants(t *testing.T) {
	p := DefaultParams()
	for _, n := range []int{0, 1, 2, 10, 100, 12345, 1 << 17} {
		s, r, m := sizes(n, p)
		if s < 1 || r < 1 || m < 1 {
			t.Fatalf("n=%d: non-positive size s=%d r=%d m=%d", n, s, r, m)
		}
		if s%m != 0 {
			t.Errorf("n=%d: m=%d does not divide s=%d", n, m, s)
		}
		if s < r {
			t.Errorf("n=%d: s=%d < r=%d", n, s, r)
		}
		if n > 0 && float64(s) < p.Beta*float64(n) {
			t.Errorf("n=%d: s=%d below beta·n", n, s)
		}
		if n >= 100 && float64(s) > 2*p.Beta*float64(n) {
			t.Errorf("n=%d: s=%d not linear", n, s)
		}
	}
}

func TestReportConsistency(t *testing.T) {
	keys := distinctKeys(rng.New(1), 2000)
	d := mustBuild(t, keys, 7)
	rep := d.Report()
	if rep.N != 2000 {
		t.Errorf("N = %d", rep.N)
	}
	if rep.SumSquares > rep.S {
		t.Errorf("FKS condition violated in accepted build: %d > %d", rep.SumSquares, rep.S)
	}
	if float64(rep.MaxGroupLoad) > rep.FinalC*float64(rep.N)/float64(rep.M) {
		t.Errorf("group load %d exceeds slack bound", rep.MaxGroupLoad)
	}
	if float64(rep.MaxGLoad) > rep.FinalC*float64(rep.N)/float64(rep.R) {
		t.Errorf("g load %d exceeds slack bound", rep.MaxGLoad)
	}
	if rep.Rows != 2*4+4+rep.Rho {
		t.Errorf("Rows = %d with rho = %d", rep.Rows, rep.Rho)
	}
	if rep.Cells != rep.Rows*rep.S {
		t.Errorf("Cells = %d", rep.Cells)
	}
	if d.MaxProbes() != 2*4+rep.Rho+4 {
		t.Errorf("MaxProbes = %d", d.MaxProbes())
	}
	// Space must be linear: cells = O(n) with the constant rows.
	if rep.Cells > 20*rep.S {
		t.Errorf("non-constant row count: %d rows", rep.Rows)
	}
}

func TestProbeSpecValidAndMatchesMaxProbes(t *testing.T) {
	keys := distinctKeys(rng.New(2), 500)
	d := mustBuild(t, keys, 3)
	qr := rng.New(4)
	for i := 0; i < 50; i++ {
		var x uint64
		if i%2 == 0 {
			x = keys[qr.Intn(len(keys))]
		} else {
			x = qr.Uint64n(hash.MaxKey)
		}
		spec := d.ProbeSpec(x)
		if len(spec) != d.MaxProbes() {
			t.Fatalf("spec has %d steps, want %d", len(spec), d.MaxProbes())
		}
		if err := spec.Validate(d.Table().Size()); err != nil {
			t.Fatalf("invalid spec for %d: %v", x, err)
		}
	}
}

// TestProbeSpecMatchesEmpirical compares the exact spec against recorded
// Monte-Carlo probes for a handful of fixed queries.
func TestProbeSpecMatchesEmpirical(t *testing.T) {
	keys := distinctKeys(rng.New(5), 200)
	d := mustBuild(t, keys, 6)
	tab := d.Table()
	qr := rng.New(7)

	targets := []uint64{keys[0], keys[100], 1234567890123}
	for _, x := range targets {
		spec := d.ProbeSpec(x)
		rec := cellprobe.NewRecorder(tab.Size())
		tab.Attach(rec)
		const trials = 4000
		for i := 0; i < trials; i++ {
			if _, err := d.Contains(x, qr); err != nil {
				t.Fatal(err)
			}
			rec.EndQuery()
		}
		tab.Detach()
		// Per-step mass must match.
		for step, ss := range spec {
			want := ss.Mass()
			got := rec.StepMass(step)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("x=%d step %d: empirical mass %v, spec mass %v", x, step, got, want)
			}
		}
		// Every recorded probe must land inside the spec's spans.
		for step := 0; step < rec.Steps(); step++ {
			if rec.PerStep[step] == nil {
				continue
			}
			for cell, cnt := range rec.PerStep[step] {
				if cnt == 0 {
					continue
				}
				if step >= len(spec) {
					t.Fatalf("x=%d: probe at unexpected step %d", x, step)
				}
				inside := false
				for _, sp := range spec[step] {
					if cell >= sp.Start && cell < sp.Start+sp.Count {
						inside = true
						break
					}
				}
				if !inside {
					t.Fatalf("x=%d step %d: probe to cell %d outside spec spans", x, step, cell)
				}
			}
		}
	}
}

// TestContentionUniformPositive is the heart of Theorem 3: with uniform
// positive queries, the exact per-step contention max_j Φ_t(j) stays within
// a constant multiple of 1/s.
func TestContentionUniformPositive(t *testing.T) {
	keys := distinctKeys(rng.New(8), 2048)
	d := mustBuild(t, keys, 9)
	cells := d.Table().Size()

	// Accumulate Φ_t = Σ_x q_x P_t(x,·) exactly using dense per-step arrays.
	steps := d.MaxProbes()
	phi := make([][]float64, steps)
	for i := range phi {
		phi[i] = make([]float64, cells)
	}
	qx := 1.0 / float64(len(keys))
	for _, x := range keys {
		for step, ss := range d.ProbeSpec(x) {
			for _, sp := range ss {
				pc := sp.PerCell() * qx
				for j := sp.Start; j < sp.Start+sp.Count; j++ {
					phi[step][j] += pc
				}
			}
		}
	}
	maxPhi := 0.0
	for _, stepPhi := range phi {
		for _, v := range stepPhi {
			if v > maxPhi {
				maxPhi = v
			}
		}
	}
	s := float64(d.Report().S)
	ratio := maxPhi * s // optimal is 1/s, so this is the ratio to optimal
	// Theorem 3 promises O(1); the constants give ≈ c·β ≈ 22. Anything
	// below 64 is decisively constant (baselines at this n are ≥ 100).
	if ratio > 64 {
		t.Errorf("uniform-positive contention ratio %.1f not O(1)", ratio)
	}
	t.Logf("n=%d: max step contention × s = %.2f", len(keys), ratio)
}

// TestStridedLayoutEquivalence validates the documented deviation: the
// paper's residue-class replica layout and our contiguous blocks are the
// same structure up to cell placement — membership answers agree, probe
// counts agree, and the empirical contention of the strided build matches
// the exact contention of the block build within sampling noise.
func TestStridedLayoutEquivalence(t *testing.T) {
	keys := distinctKeys(rng.New(30), 1024)
	block := mustBuild(t, keys, 31)
	strided, err := Build(keys, Params{Strided: true}, 31)
	if err != nil {
		t.Fatal(err)
	}
	qr := rng.New(32)
	inSet := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		inSet[k] = true
	}
	for i := 0; i < 3000; i++ {
		var x uint64
		if i%2 == 0 {
			x = keys[qr.Intn(len(keys))]
		} else {
			x = qr.Uint64n(hash.MaxKey)
		}
		a, err := block.Contains(x, qr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := strided.Contains(x, qr)
		if err != nil {
			t.Fatal(err)
		}
		if a != b || a != inSet[x] {
			t.Fatalf("layouts disagree on %d: block=%v strided=%v want=%v", x, a, b, inSet[x])
		}
	}
	if block.MaxProbes() != strided.MaxProbes() {
		t.Errorf("probe counts differ: %d vs %d", block.MaxProbes(), strided.MaxProbes())
	}

	// Empirical contention of the strided layout ≈ exact contention of the
	// block layout (same replica counts ⇒ same distributions).
	rec := cellprobe.NewRecorder(strided.Table().Size())
	strided.Table().Attach(rec)
	const queries = 120000
	for i := 0; i < queries; i++ {
		if _, err := strided.Contains(keys[qr.Intn(len(keys))], qr); err != nil {
			t.Fatal(err)
		}
		rec.EndQuery()
	}
	strided.Table().Detach()
	stridedRatio := rec.MaxStepContention() * float64(strided.Table().Size())
	if stridedRatio > 128 {
		t.Errorf("strided empirical ratio %.1f not in the O(1) band", stridedRatio)
	}
}

// TestCompactBackingEquivalence: the compact table must be cell-for-cell
// identical to the dense one and use far less heap.
func TestCompactBackingEquivalence(t *testing.T) {
	keys := distinctKeys(rng.New(35), 1024)
	dense := mustBuild(t, keys, 36)
	compact, err := Build(keys, Params{Compact: true}, 36)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Table().Size() != compact.Table().Size() {
		t.Fatalf("model sizes differ: %d vs %d", dense.Table().Size(), compact.Table().Size())
	}
	for i := 0; i < dense.Table().Size(); i++ {
		if dense.Table().AtIndex(i) != compact.Table().AtIndex(i) {
			t.Fatalf("cell %d differs between dense and compact backing", i)
		}
	}
	if h := compact.Table().HeapCells(); h >= dense.Table().HeapCells()/4 {
		t.Errorf("compact heap %d not far below dense %d", h, dense.Table().HeapCells())
	}
	// Queries and exact specs work identically.
	qr := rng.New(37)
	for _, k := range keys[:200] {
		ok, err := compact.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("compact dictionary lost key %d (err %v)", k, err)
		}
	}
	spec := compact.ProbeSpec(keys[0])
	if err := spec.Validate(compact.Table().Size()); err != nil {
		t.Fatalf("compact spec invalid: %v", err)
	}
}

func TestCompactRejectsStrided(t *testing.T) {
	if _, err := Build([]uint64{1, 2}, Params{Compact: true, Strided: true}, 1); err == nil {
		t.Error("compact+strided accepted")
	}
}

func TestStridedProbeSpecPanics(t *testing.T) {
	keys := distinctKeys(rng.New(33), 64)
	strided, err := Build(keys, Params{Strided: true}, 34)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("ProbeSpec on strided dictionary did not panic")
		}
	}()
	strided.ProbeSpec(keys[0])
}

// TestBuildPermutationInvariant: the construction depends on the key SET,
// not the order keys are supplied — the hash draws consume the same RNG
// stream and the per-bucket perfect hashes are found in bucket order, so
// two permutations of the same set must yield identical tables.
func TestBuildPermutationInvariant(t *testing.T) {
	keys := distinctKeys(rng.New(91), 400)
	a := mustBuild(t, keys, 92)
	shuffled := append([]uint64(nil), keys...)
	rng.New(93).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := mustBuild(t, shuffled, 92)
	if a.Report() != b.Report() {
		t.Fatalf("reports differ:\n%+v\n%+v", a.Report(), b.Report())
	}
	for i := 0; i < a.Table().Size(); i++ {
		if a.Table().AtIndex(i) != b.Table().AtIndex(i) {
			t.Fatalf("tables differ at cell %d under permutation", i)
		}
	}
}

func TestKeysAccessor(t *testing.T) {
	keys := distinctKeys(rng.New(95), 300)
	d := mustBuild(t, keys, 96)
	got := d.Keys()
	if len(got) != 300 {
		t.Fatalf("Keys returned %d", len(got))
	}
	want := map[uint64]bool{}
	for _, k := range keys {
		want[k] = true
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("Keys returned foreign key %d", k)
		}
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("%d keys missing from Keys()", len(want))
	}
}

func TestEmptyDictAnswersNegative(t *testing.T) {
	d := mustBuild(t, nil, 1)
	qr := rng.New(2)
	for i := 0; i < 100; i++ {
		ok, err := d.Contains(qr.Uint64n(hash.MaxKey), qr)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("empty dictionary reported a member")
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	keys := distinctKeys(rng.New(10), 128)
	d1 := mustBuild(t, keys, 42)
	d2 := mustBuild(t, keys, 42)
	if d1.Report() != d2.Report() {
		t.Errorf("same seed produced different reports:\n%+v\n%+v", d1.Report(), d2.Report())
	}
	// Identical tables cell by cell.
	t1, t2 := d1.Table(), d2.Table()
	for i := 0; i < t1.Size(); i++ {
		if t1.AtIndex(i) != t2.AtIndex(i) {
			t.Fatalf("tables differ at cell %d", i)
		}
	}
}

// Failure injection: corrupting cells must surface as errors or wrong-but-
// detected states, never panics.
func TestCorruptZValueSurfacesError(t *testing.T) {
	keys := distinctKeys(rng.New(11), 64)
	d := mustBuild(t, keys, 12)
	// Overwrite the entire z row with an out-of-range value.
	for j := 0; j < d.Report().S; j++ {
		d.Table().Set(d.zRow(), j, cellprobe.Cell{Lo: ^uint64(0)})
	}
	qr := rng.New(13)
	if _, err := d.Contains(keys[0], qr); err == nil {
		t.Error("corrupt z row did not produce an error")
	}
}

func TestCorruptGBASSurfacesError(t *testing.T) {
	keys := distinctKeys(rng.New(14), 64)
	d := mustBuild(t, keys, 15)
	for j := 0; j < d.Report().S; j++ {
		d.Table().Set(d.gbasRow(), j, cellprobe.Cell{Lo: uint64(d.Report().S) + 100})
	}
	qr := rng.New(16)
	if _, err := d.Contains(keys[0], qr); err == nil {
		t.Error("corrupt GBAS row did not produce an error")
	}
}

func TestCorruptHistogramSurfacesError(t *testing.T) {
	keys := distinctKeys(rng.New(17), 64)
	d := mustBuild(t, keys, 18)
	// All-ones histogram words decode to no separators -> prefix decode fails.
	for w := 0; w < d.rho; w++ {
		for j := 0; j < d.Report().S; j++ {
			d.Table().Set(d.histRow()+w, j, cellprobe.Cell{Lo: ^uint64(0), Hi: ^uint64(0)})
		}
	}
	qr := rng.New(19)
	var sawErr bool
	for i := 0; i < 50; i++ {
		if _, err := d.Contains(keys[i%len(keys)], qr); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("corrupt histograms never produced an error")
	}
}

func TestHashTriesSmall(t *testing.T) {
	// Expected O(1) draws: across seeds the mean must be modest.
	r := rng.New(20)
	total := 0
	const runs = 20
	for seed := uint64(0); seed < runs; seed++ {
		keys := distinctKeys(r, 1024)
		d := mustBuild(t, keys, seed)
		total += d.Report().HashTries
	}
	if mean := float64(total) / runs; mean > 12 {
		t.Errorf("mean hash tries %.1f; expected O(1) (paper: ≤ 2 asymptotically)", mean)
	}
}

// TestBuildQuickProperty drives random key sets and valid random parameters
// through build + full membership verification via testing/quick.
func TestBuildQuickProperty(t *testing.T) {
	f := func(seed uint64, sizeByte uint8, dChoice uint8, betaChoice uint8) bool {
		n := int(sizeByte)                // 0..255 keys
		deg := 3 + int(dChoice%4)         // d ∈ {3,4,5,6}
		beta := 2 + float64(betaChoice%4) // β ∈ {2,3,4,5}
		r := rng.New(seed)
		keys := distinctKeys(r, n)
		dict, err := Build(keys, Params{D: deg, Delta: 0.5, Beta: beta}, seed)
		if err != nil {
			t.Logf("build failed: %v", err)
			return false
		}
		qr := rng.New(seed + 1)
		for _, k := range keys {
			ok, err := dict.Contains(k, qr)
			if err != nil || !ok {
				return false
			}
		}
		inSet := make(map[uint64]bool, n)
		for _, k := range keys {
			inSet[k] = true
		}
		for i := 0; i < 50; i++ {
			x := qr.Uint64n(hash.MaxKey)
			ok, err := dict.Contains(x, qr)
			if err != nil || ok != inSet[x] {
				return false
			}
		}
		// Every probe spec must validate and have one span per step.
		for i := 0; i < 5 && i < n; i++ {
			if err := dict.ProbeSpec(keys[i]).Validate(dict.Table().Size()); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild4096(b *testing.B) {
	keys := distinctKeys(rng.New(1), 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(keys, Params{}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	keys := distinctKeys(rng.New(2), 4096)
	d := mustBuild(b, keys, 3)
	qr := rng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Contains(keys[i%len(keys)], qr); err != nil {
			b.Fatal(err)
		}
	}
}

// TestContainsScratchMatchesContains: the scratch fast path must make the
// same probes and give the same answers as the allocating path — run both
// from cloned RNG states and compare.
func TestContainsScratchMatchesContains(t *testing.T) {
	keys := distinctKeys(rng.New(21), 700)
	dict := mustBuild(t, keys, 5)
	probe := append(append([]uint64{}, keys[:50]...), distinctKeys(rng.New(22), 50)...)
	r1 := rng.New(99)
	r2 := r1.Clone()
	sc := new(QueryScratch)
	for _, x := range probe {
		want, err1 := dict.Contains(x, r1)
		got, err2 := dict.ContainsScratch(x, r2, sc)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d errored: %v / %v", x, err1, err2)
		}
		if got != want {
			t.Fatalf("scratch path diverged on key %d: %v != %v", x, got, want)
		}
	}
}

func TestContainsBatchCore(t *testing.T) {
	keys := distinctKeys(rng.New(23), 500)
	dict := mustBuild(t, keys, 6)
	absent := distinctKeys(rng.New(24), 500)
	probe := append(append([]uint64{}, keys...), absent...)
	out := make([]bool, len(probe))
	if err := dict.ContainsBatch(probe, out, rng.New(7), nil); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !out[i] {
			t.Fatalf("batch lost stored key %d", probe[i])
		}
	}
	for i := len(keys); i < len(probe); i++ {
		if out[i] {
			t.Fatalf("batch claims absent key %d", probe[i])
		}
	}
	if err := dict.ContainsBatch(probe, out[:1], rng.New(7), nil); err == nil {
		t.Error("short output slice accepted")
	}
}

// TestContainsScratchZeroAlloc: after warm-up, the explicit-scratch query
// path with a plain RNG source allocates nothing at all.
func TestContainsScratchZeroAlloc(t *testing.T) {
	keys := distinctKeys(rng.New(25), 1000)
	dict := mustBuild(t, keys, 7)
	r := rng.New(11)
	sc := new(QueryScratch)
	if _, err := dict.ContainsScratch(keys[0], r, sc); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		i++
		if _, err := dict.ContainsScratch(keys[i%len(keys)], r, sc); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ContainsScratch allocates %v objects per query, want 0", allocs)
	}
}

// TestParallelBuildDeterministic: racing K draws must be reproducible for a
// fixed (seed, K) and must pass the same membership oracle as serial builds.
func TestParallelBuildDeterministic(t *testing.T) {
	keys := distinctKeys(rng.New(26), 900)
	build := func(workers int) *Dict {
		d, err := Build(keys, Params{BuildWorkers: workers}, 9)
		if err != nil {
			t.Fatalf("Build(workers=%d): %v", workers, err)
		}
		return d
	}
	a, b := build(4), build(4)
	if a.report != b.report {
		t.Fatalf("parallel build not reproducible: %+v != %+v", a.report, b.report)
	}
	for i := range a.f.Coef {
		if a.f.Coef[i] != b.f.Coef[i] || a.g.Coef[i] != b.g.Coef[i] {
			t.Fatal("parallel build drew different hash functions for the same (seed, workers)")
		}
	}
	// Serial (0 and 1 workers) builds are identical to each other.
	s0, s1 := build(0), build(1)
	if s0.report != s1.report {
		t.Fatalf("workers 0 and 1 disagree: %+v != %+v", s0.report, s1.report)
	}
	// Every variant answers membership exactly.
	r := rng.New(13)
	absent := distinctKeys(rng.New(27), 200)
	for _, d := range []*Dict{a, s0} {
		for _, k := range keys {
			if ok, err := d.Contains(k, r); err != nil || !ok {
				t.Fatalf("lost key %d (err %v)", k, err)
			}
		}
		for _, k := range absent {
			if ok, err := d.Contains(k, r); err != nil || ok {
				t.Fatalf("phantom key %d (err %v)", k, err)
			}
		}
	}
}

// TestParallelBuildReportsPlausibleTries: the deterministic (round, worker)
// acceptance rank must be reflected in HashTries.
func TestParallelBuildReportsPlausibleTries(t *testing.T) {
	keys := distinctKeys(rng.New(28), 600)
	d, err := Build(keys, Params{BuildWorkers: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Report()
	if rep.HashTries < 1 {
		t.Fatalf("HashTries = %d, want ≥ 1", rep.HashTries)
	}
	if rep.SumSquares > rep.S {
		t.Fatalf("accepted draw violates FKS: Σℓ² = %d > s = %d", rep.SumSquares, rep.S)
	}
}
