package core

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// FuzzRead feeds arbitrary bytes to the deserializer: it must return an
// error or a working dictionary, never panic or hang.
func FuzzRead(f *testing.F) {
	// Seed with a real serialized dictionary and perturbations of it.
	keys := distinctKeys(rng.New(1), 40)
	d, err := Build(keys, Params{}, 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("LCDSv1\x00\x00garbage"))
	mut := append([]byte(nil), good...)
	mut[20] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		loaded, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A dictionary that loads must answer queries without panicking.
		qr := rng.New(3)
		for i := 0; i < 5; i++ {
			_, _ = loaded.Contains(qr.Uint64n(1<<60), qr)
		}
	})
}
