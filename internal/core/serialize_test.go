package core

import (
	"bytes"
	"testing"

	"repro/internal/hash"
	"repro/internal/rng"
)

func TestSerializeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 300, 2000} {
		keys := distinctKeys(rng.New(uint64(n)+50), n)
		orig := mustBuild(t, keys, 51)
		var buf bytes.Buffer
		written, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatalf("n=%d: WriteTo: %v", n, err)
		}
		if written != int64(buf.Len()) {
			t.Errorf("n=%d: WriteTo reported %d bytes, wrote %d", n, written, buf.Len())
		}
		loaded, err := Read(&buf)
		if err != nil {
			t.Fatalf("n=%d: Read: %v", n, err)
		}
		// The reconstructed table must be cell-for-cell identical.
		if loaded.Table().Size() != orig.Table().Size() {
			t.Fatalf("n=%d: table sizes differ", n)
		}
		for i := 0; i < orig.Table().Size(); i++ {
			if orig.Table().AtIndex(i) != loaded.Table().AtIndex(i) {
				t.Fatalf("n=%d: cell %d differs", n, i)
			}
		}
		// Queries must work.
		qr := rng.New(52)
		for _, k := range keys {
			ok, err := loaded.Contains(k, qr)
			if err != nil || !ok {
				t.Fatalf("n=%d: loaded dictionary lost key %d (err %v)", n, k, err)
			}
		}
		for i := 0; i < 500; i++ {
			x := qr.Uint64n(hash.MaxKey)
			a, err1 := orig.Contains(x, rng.New(uint64(i)))
			b, err2 := loaded.Contains(x, rng.New(uint64(i)))
			if err1 != nil || err2 != nil || a != b {
				t.Fatalf("n=%d: answers diverge on %d", n, x)
			}
		}
	}
}

func TestSerializeCompact(t *testing.T) {
	keys := distinctKeys(rng.New(60), 4000)
	d := mustBuild(t, keys, 61)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tableBytes := d.Table().Size() * 16
	if buf.Len() >= tableBytes/2 {
		t.Errorf("serialized %d bytes not compact vs table %d bytes", buf.Len(), tableBytes)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	keys := distinctKeys(rng.New(70), 200)
	d := mustBuild(t, keys, 71)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at various points must error, never panic.
	for _, cut := range []int{0, 4, 8, 20, len(good) / 2, len(good) - 1} {
		if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Flip a byte somewhere in the body; the loader must either reject it
	// or produce a dictionary that still answers all stored keys (a flip
	// may hit padding). Never panic.
	for pos := 16; pos < len(good); pos += len(good) / 13 {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x40
		loaded, err := Read(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		qr := rng.New(72)
		for _, k := range keys {
			ok, err := loaded.Contains(k, qr)
			if err != nil || !ok {
				// Acceptable: the corruption was detected at query time
				// or lost a key — but only if the loader could not have
				// known. What we really guard against is a panic, which
				// the test harness would catch.
				break
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("not a dictionary at all......"))); err == nil {
		t.Error("garbage accepted")
	}
}
