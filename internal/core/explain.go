package core

import (
	"fmt"
	"io"

	"repro/internal/rng"
)

// Explain runs one membership query for x with the same probes Contains
// makes, writing a human-readable account of each step — which row was
// probed, which replica was chosen, and what was learned. It is a debugging
// and teaching aid; the answer and error semantics match Contains exactly.
func (dict *Dict) Explain(x uint64, r rng.Source, w io.Writer) (bool, error) {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	p("query x = %d against n = %d keys (s = %d buckets, m = %d groups, d = %d)",
		x, dict.n, dict.s, dict.m, dict.d)

	var steps []string
	dict.tab.SetTrace(func(step, cell int) {
		row, col := cell/dict.s, cell%dict.s
		name := dict.rowName(row)
		steps = append(steps, fmt.Sprintf("  probe %2d: row %-12s col %d", step, name, col))
	})
	defer dict.tab.SetTrace(nil)

	ok, err := dict.Contains(x, r)
	for _, s := range steps {
		p("%s", s)
	}
	if err != nil {
		p("query failed: %v", err)
		return ok, err
	}

	// Builder-side commentary (not probes): where the key went.
	gx := dict.g.Eval(x)
	h := int(dict.hEval(x))
	hp := h % dict.m
	l := dict.hLoads[h]
	p("derived: g(x) = %d, h(x) = bucket %d, group %d (position %d in group)",
		gx, h, hp, h/dict.m)
	if l == 0 {
		p("bucket %d is empty -> answer false without data probes", h)
	} else {
		p("bucket %d holds %d key(s) in cells [%d, %d) of the data row",
			h, l, dict.offsets[h], dict.offsets[h]+l*l)
	}
	p("answer: %v", ok)
	return ok, nil
}

// rowName names a table row for human-readable traces.
func (dict *Dict) rowName(row int) string {
	d := dict.d
	switch {
	case row < d:
		return fmt.Sprintf("f-coef[%d]", row)
	case row < 2*d:
		return fmt.Sprintf("g-coef[%d]", row-d)
	case row == dict.zRow():
		return "z"
	case row == dict.gbasRow():
		return "GBAS"
	case row >= dict.histRow() && row < dict.histRow()+dict.rho:
		return fmt.Sprintf("histogram[%d]", row-dict.histRow())
	case row == dict.phRow():
		return "perfect-hash"
	case row == dict.dataRow():
		return "data"
	}
	return fmt.Sprintf("row[%d]", row)
}
