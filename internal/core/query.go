package core

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// The query algorithm is written as a resumable per-query state machine so
// the batch path can interleave many queries: each stage reads the cells the
// previous stage prefetched, computes the next probe targets, and issues
// prefetches for them. Stage names follow the §2.3 phases.
const (
	wfIdle  int8 = iota // slot holds no query
	wfCoef              // next: read the 2d coefficient cells
	wfZ                 // next: read z_{g(x)}
	wfGroup             // next: read GBAS + the ρ histogram cells
	wfPH                // next: read the perfect-hash cell
	wfData              // next: read the data cell
)

// Wavefront width G of the batch query path: the default, and the cap above
// which wider rings stop paying (the load queue is finite and slot state
// stops fitting in L1).
const (
	defaultBatchGroup = 8
	maxBatchGroup     = 64
)

// wfSlot is one in-flight query of a wavefront: its pre-drawn replica
// choices, the state its completed stages computed, and the cell column the
// next stage will probe. All randomness is drawn at admission — in the same
// within-query order the sequential path consumes — so interleaving queries
// never changes which cells any individual query probes.
type wfSlot struct {
	x     uint64   // the queried key
	fsum  uint64   // f(x), computed from the coefficient cells
	uSpan uint64   // raw 64-bit draw for the perfect-hash replica choice
	idx   int      // batch index: out[idx] receives the answer
	stage int8     // next stage to evaluate
	kz    int      // replica choice within the z block
	kb    int      // replica choice within the GBAS block
	hp    int      // group index h′(x)
	pos   int      // position of bucket h(x) within its group
	col   int      // column the next single-cell stage probes
	off   int      // bucket span start (set by wfGroup)
	span  int      // bucket span width ℓ² (set by wfGroup)
	log   *[]int32 // per-step capture destination, nil when off
}

// QueryScratch holds the per-query working memory of Contains: the f and g
// coefficient buffers, the group-histogram words, and the wavefront arena of
// the batch path. A zero QueryScratch is ready to use; buffers grow on first
// use and are reused afterwards, so a caller that keeps one scratch per
// goroutine (the facade pools them) pays no heap allocation per query. A
// scratch must not be shared by concurrent queries.
type QueryScratch struct {
	fc, gc []uint64
	words  []uint64
	vec    bitvec.Vector

	// Wavefront arena: wf[i] is one in-flight query; wfCoef carries each
	// slot's 2d coefficient replica columns, wfHist each slot's ρ histogram
	// replica choices (overwritten with resolved columns at stage wfZ).
	wf     []wfSlot
	wfCoef []int32
	wfHist []int32
	src    sliceSource // ContainsBatch's feed, embedded so no interface allocation

	// capture arms per-probe trace capture (StartCapture): probeLog[t]
	// records the flat cell index probed at step t of the next query. A
	// scratch serves one query at a time by construction, so capture needs
	// no synchronization; un-armed queries pay one predictable untaken
	// branch per probe.
	capture  bool
	probeLog []int32

	// batchCap arms per-query capture across a whole batch (StartBatch-
	// Capture): batchLog[i] records the per-step cells of the query at
	// batch index i. Each log lives in its own heap box so the pointer a
	// slot holds stays valid while batchLog itself grows with later
	// admissions. A test/measurement mode — it allocates.
	batchCap bool
	batchLog []*[]int32
}

// StartCapture arms per-probe capture for the next ContainsScratch call on
// this scratch. The telemetry layer uses it to build per-query traces.
func (sc *QueryScratch) StartCapture() {
	sc.capture = true
	sc.probeLog = sc.probeLog[:0]
}

// StopCapture disarms capture and returns the per-step flat cell indices
// recorded since StartCapture (aliasing scratch memory: valid until the
// next StartCapture).
func (sc *QueryScratch) StopCapture() []int32 {
	sc.capture = false
	return sc.probeLog
}

// StartBatchCapture arms per-query capture for the next batch answered with
// this scratch: every admitted query records its per-step flat cell indices
// under its batch index. The equivalence battery uses it to check that the
// wavefront probes exactly the cells the sequential path would; unlike the
// steady-state batch path it allocates (one log per query).
func (sc *QueryScratch) StartBatchCapture() {
	sc.batchCap = true
	sc.batchLog = sc.batchLog[:0]
}

// StopBatchCapture disarms batch capture and returns the per-query logs,
// indexed by batch position (nil for queries that never reached this
// dictionary — e.g. resolved by a dynamic dictionary's buffer). The slices
// alias scratch memory: valid until the next StartBatchCapture.
func (sc *QueryScratch) StopBatchCapture() [][]int32 {
	sc.batchCap = false
	out := make([][]int32, len(sc.batchLog))
	for i, box := range sc.batchLog {
		if box != nil {
			out[i] = *box
		}
	}
	return out
}

// logCell records cell as the probe target of the given step.
func logCell(log *[]int32, step, cell int) {
	for len(*log) <= step {
		*log = append(*log, -1)
	}
	(*log)[step] = int32(cell)
}

// ensure sizes the buffers for a dictionary with degree d and rho histogram
// rows.
func (sc *QueryScratch) ensure(d, rho int) {
	if cap(sc.fc) < d {
		sc.fc = make([]uint64, d)
		sc.gc = make([]uint64, d)
	}
	sc.fc, sc.gc = sc.fc[:d], sc.gc[:d]
	if cap(sc.words) < 2*rho {
		sc.words = make([]uint64, 2*rho)
	}
	sc.words = sc.words[:2*rho]
}

// ensureWave additionally sizes the wavefront arena for g in-flight queries.
func (sc *QueryScratch) ensureWave(d, rho, g int) {
	sc.ensure(d, rho)
	if cap(sc.wf) < g {
		sc.wf = make([]wfSlot, g)
	}
	sc.wf = sc.wf[:g]
	if n := g * 2 * d; cap(sc.wfCoef) < n {
		sc.wfCoef = make([]int32, n)
	}
	sc.wfCoef = sc.wfCoef[:g*2*d]
	if n := g * rho; cap(sc.wfHist) < n {
		sc.wfHist = make([]int32, n)
	}
	sc.wfHist = sc.wfHist[:g*rho]
}

// spanIndex reduces one raw 64-bit draw to a uniform index in [0, span) by
// fixed-point multiply (the first — and almost always only — iteration of
// the nearly-divisionless reduction rng.Intn uses). Unlike Intn it consumes
// exactly one draw regardless of span, which is what lets the wavefront
// pre-draw a query's whole random budget at admission, before the bucket
// span is known: Intn's rare rejection loop would consume a data-dependent
// number of draws and desynchronize the stream. The price is a bias of at
// most span/2^64 ≈ 10^-15 per draw — invisible to every statistical
// contention bound (the exact analyzer's UniformSpan model is unchanged).
func spanIndex(u uint64, span int) int {
	hi, _ := bits.Mul64(u, uint64(span))
	return int(hi)
}

// batchGroupSize resolves the configured wavefront width.
func (dict *Dict) batchGroupSize() int {
	g := dict.batchGroup
	if g <= 0 {
		g = defaultBatchGroup
	}
	if g > maxBatchGroup {
		g = maxBatchGroup
	}
	return g
}

// BatchGroup returns the wavefront width G the batch query path runs at.
func (dict *Dict) BatchGroup() int { return dict.batchGroupSize() }

// SetBatchGroup overrides the wavefront width after construction (0 restores
// the default, values above the cap are clamped) — the hook deserialized
// dictionaries use, since the wire format carries no query-side tuning. Not
// safe to call concurrently with queries.
func (dict *Dict) SetBatchGroup(g int) { dict.batchGroup = g }

// Contains answers the membership query for x using the paper's §2.3
// four-phase algorithm. Every value it uses is read from table cells via
// recorded probes; the random source chooses which replica each probe
// reads. Pass an *rng.RNG for reproducible sequential queries or a shared
// rng.Sharded for concurrent ones.
//
// The returned error is non-nil only when the table itself is corrupt
// (failure injection, bit flips): every error path is a consistency check
// on cell contents. On a well-formed table the answer is exact and the
// error is always nil.
//
// Contains allocates a fresh QueryScratch per call; hot paths should use
// ContainsScratch with a reused scratch instead.
func (dict *Dict) Contains(x uint64, r rng.Source) (bool, error) {
	var sc QueryScratch
	return dict.ContainsScratch(x, r, &sc)
}

// ContainsScratch is Contains with caller-supplied working memory. After
// the scratch's first use it performs zero heap allocations, so a caller
// that reuses one scratch per goroutine gets an allocation-free read path.
//
// It runs the same state machine as the wavefront batch path, one query at
// a time with prefetching off: a query's replica draws, probe cells and
// step numbers are bit-identical between the two, which is what makes batch
// answers interchangeable with sequential ones probe for probe.
func (dict *Dict) ContainsScratch(x uint64, r rng.Source, sc *QueryScratch) (bool, error) {
	sc.ensureWave(dict.d, dict.rho, 1)
	dict.wfAdmitKey(sc, 0, 0, x, r, false)
	for {
		done, ans, err := dict.wfStep(sc, 0, false)
		if done || err != nil {
			sc.wf[0].stage = wfIdle
			return ans, err
		}
	}
}

// wfAdmitKey loads the query for x into slot, drawing its entire random
// budget — 2d coefficient replicas, the z and GBAS replicas, ρ histogram
// replicas, one raw draw for the perfect-hash replica — in the sequential
// path's within-query order. Queries are admitted in batch order, so the
// shared source is consumed exactly as a sequential loop would consume it.
// With pf set it prefetches the 2d coefficient cells the first stage reads.
func (dict *Dict) wfAdmitKey(sc *QueryScratch, slot, idx int, x uint64, r rng.Source, pf bool) {
	s := &sc.wf[slot]
	d := dict.d
	s.x, s.idx = x, idx
	base := slot * 2 * d
	for i := 0; i < d; i++ {
		sc.wfCoef[base+2*i] = int32(r.Intn(dict.s))
		sc.wfCoef[base+2*i+1] = int32(r.Intn(dict.s))
	}
	s.kz = r.Intn(dict.blkZ)
	s.kb = r.Intn(dict.blkG)
	hbase := slot * dict.rho
	for w := 0; w < dict.rho; w++ {
		sc.wfHist[hbase+w] = int32(r.Intn(dict.blkG))
	}
	s.uSpan = r.Uint64()
	s.stage = wfCoef
	s.log = nil
	if sc.batchCap {
		for len(sc.batchLog) <= idx {
			sc.batchLog = append(sc.batchLog, nil)
		}
		if sc.batchLog[idx] == nil {
			sc.batchLog[idx] = new([]int32)
		}
		*sc.batchLog[idx] = (*sc.batchLog[idx])[:0]
		s.log = sc.batchLog[idx]
	} else if sc.capture {
		s.log = &sc.probeLog
	}
	if pf {
		tab := dict.tab
		for i := 0; i < d; i++ {
			tab.PrefetchCell(i, int(sc.wfCoef[base+2*i]))
			tab.PrefetchCell(d+i, int(sc.wfCoef[base+2*i+1]))
		}
	}
}

// wfStep evaluates one stage of the query in slot: it probes the cells the
// previous stage prefetched, advances the slot's state, and (with pf set)
// prefetches the next stage's cells. It reports done=true when the query
// retired with answer ans. Probe steps and cells match the §2.3 sequential
// algorithm exactly.
func (dict *Dict) wfStep(sc *QueryScratch, slot int, pf bool) (done, ans bool, err error) {
	s := &sc.wf[slot]
	tab := dict.tab
	d := dict.d

	switch s.stage {
	case wfCoef:
		// Phase 1a: the 2d coefficient cells (steps 0..2d−1), then derive
		// f(x) and g(x) and the z replica column.
		base := slot * 2 * d
		for i := 0; i < d; i++ {
			cf, cg := int(sc.wfCoef[base+2*i]), int(sc.wfCoef[base+2*i+1])
			sc.fc[i] = tab.Probe(i, i, cf).Lo
			sc.gc[i] = tab.Probe(d+i, d+i, cg).Lo
			if s.log != nil {
				logCell(s.log, i, tab.Index(i, cf))
				logCell(s.log, d+i, tab.Index(d+i, cg))
			}
		}
		gx := int(hash.EvalFromCoef(sc.gc, uint64(dict.r), s.x))
		s.fsum = hash.EvalFromCoef(sc.fc, uint64(dict.s), s.x)
		s.col = dict.zReplicaCol(gx, s.kz)
		if pf {
			tab.PrefetchCell(dict.zRow(), s.col)
		}
		s.stage = wfZ

	case wfZ:
		// Phase 1b: z_{g(x)} (step 2d) completes h(x); the group and the
		// histogram columns become known.
		zv := tab.Probe(2*d, dict.zRow(), s.col).Lo
		if s.log != nil {
			logCell(s.log, 2*d, tab.Index(dict.zRow(), s.col))
		}
		if zv >= uint64(dict.s) {
			return false, false, fmt.Errorf("core: corrupt table: z value %d outside [0, %d)", zv, dict.s)
		}
		h := int((s.fsum + zv) % uint64(dict.s))
		s.hp = h % dict.m
		s.pos = h / dict.m
		s.col = dict.groupReplicaCol(s.hp, s.kb)
		hbase := slot * dict.rho
		for w := 0; w < dict.rho; w++ {
			sc.wfHist[hbase+w] = int32(dict.groupReplicaCol(s.hp, int(sc.wfHist[hbase+w])))
		}
		if pf {
			tab.PrefetchCell(dict.gbasRow(), s.col)
			for w := 0; w < dict.rho; w++ {
				tab.PrefetchCell(dict.histRow()+w, int(sc.wfHist[hbase+w]))
			}
		}
		s.stage = wfGroup

	case wfGroup:
		// Phase 2+3: group base address (step 2d+1), the ρ histogram cells
		// (steps 2d+2..2d+1+ρ), and the prefix-sum decode to the bucket's
		// ℓ² cell span.
		step := 2*d + 1
		gbas := tab.Probe(step, dict.gbasRow(), s.col).Lo
		if s.log != nil {
			logCell(s.log, step, tab.Index(dict.gbasRow(), s.col))
		}
		if gbas > uint64(dict.s) {
			return false, false, fmt.Errorf("core: corrupt table: group base address %d outside [0, %d]", gbas, dict.s)
		}
		hbase := slot * dict.rho
		for w := 0; w < dict.rho; w++ {
			step++
			ch := int(sc.wfHist[hbase+w])
			c := tab.Probe(step, dict.histRow()+w, ch)
			if s.log != nil {
				logCell(s.log, step, tab.Index(dict.histRow()+w, ch))
			}
			sc.words[2*w], sc.words[2*w+1] = c.Lo, c.Hi
		}
		sc.vec.Reset(sc.words, dict.rho*128)
		sumSq, l, herr := bitvec.HistogramPrefixSum(&sc.vec, s.pos+1)
		if herr != nil {
			return false, false, fmt.Errorf("core: corrupt table: histogram of group %d: %w", s.hp, herr)
		}
		if l == 0 {
			return true, false, nil // empty bucket: the key cannot be present
		}
		off := int(gbas) + sumSq
		span := l * l
		if off+span > dict.s {
			return false, false, fmt.Errorf("core: corrupt table: bucket span [%d, %d) exceeds s = %d", off, off+span, dict.s)
		}
		s.off, s.span = off, span
		s.col = off + spanIndex(s.uSpan, span)
		if pf {
			tab.PrefetchCell(dict.phRow(), s.col)
		}
		s.stage = wfPH

	case wfPH:
		// Phase 4a: the perfect hash from a random cell of the span
		// (step 2d+2+ρ).
		step := 2*d + 2 + dict.rho
		phc := tab.Probe(step, dict.phRow(), s.col)
		if s.log != nil {
			logCell(s.log, step, tab.Index(dict.phRow(), s.col))
		}
		hstar := hash.Pairwise{A: phc.Lo, B: phc.Hi, M: uint64(s.span)}
		s.col = s.off + int(hstar.Eval(s.x))
		if pf {
			tab.PrefetchCell(dict.dataRow(), s.col)
		}
		s.stage = wfData

	case wfData:
		// Phase 4b: the data cell (step 2d+3+ρ) answers the query.
		step := 2*d + 3 + dict.rho
		dc := tab.Probe(step, dict.dataRow(), s.col)
		if s.log != nil {
			logCell(s.log, step, tab.Index(dict.dataRow(), s.col))
		}
		return true, dc.Hi == occupiedTag && dc.Lo == s.x, nil
	}
	return false, false, nil
}

// BatchSource feeds queries to ContainsWavefront in batch order: NextQuery
// returns the next pending query's output index and key, or ok=false when
// the batch is exhausted. A source may resolve some queries itself (the
// dynamic dictionary's buffer pre-check) and hand the wavefront only the
// rest; because the wavefront admits queries — and therefore draws their
// randomness — strictly in the order the source yields them, the shared
// random stream is consumed exactly as a sequential loop over the batch
// would consume it.
type BatchSource interface {
	NextQuery() (idx int, key uint64, ok bool)
}

// sliceSource feeds a plain key slice, embedded in QueryScratch so the
// interface conversion in ContainsBatch costs no allocation.
type sliceSource struct {
	keys []uint64
	pos  int
}

func (s *sliceSource) NextQuery() (int, uint64, bool) {
	if s.pos >= len(s.keys) {
		return 0, 0, false
	}
	i := s.pos
	s.pos++
	return i, s.keys[i], true
}

// ContainsWavefront answers every query src yields into out[idx] using a
// wavefront of up to G = BatchGroup in-flight queries: per round, each live
// query evaluates the stage whose cells were prefetched on the previous
// round and prefetches its next stage, so the dependent cache misses of G
// probe chains overlap instead of serializing. Retired slots are refilled
// from src until it is exhausted.
//
// Answers, per-query probe cells and step numbers are bit-identical to
// calling ContainsScratch per key with the same source — only the order of
// probes across the batch changes. out must be long enough for every index
// src yields. It stops at the first corrupt-table error; queries in flight
// at that point are abandoned.
func (dict *Dict) ContainsWavefront(src BatchSource, out []bool, r rng.Source, sc *QueryScratch) error {
	if sc == nil {
		sc = new(QueryScratch)
	}
	g := dict.batchGroupSize()
	sc.ensureWave(dict.d, dict.rho, g)
	for i := 0; i < g; i++ {
		sc.wf[i].stage = wfIdle
	}
	live := 0
	for i := 0; i < g; i++ {
		idx, x, ok := src.NextQuery()
		if !ok {
			break
		}
		dict.wfAdmitKey(sc, i, idx, x, r, true)
		live++
	}
	for live > 0 {
		for i := 0; i < g; i++ {
			if sc.wf[i].stage == wfIdle {
				continue
			}
			done, ans, err := dict.wfStep(sc, i, true)
			if err != nil {
				return err
			}
			if !done {
				continue
			}
			out[sc.wf[i].idx] = ans
			if idx, x, ok := src.NextQuery(); ok {
				dict.wfAdmitKey(sc, i, idx, x, r, true)
			} else {
				sc.wf[i].stage = wfIdle
				live--
			}
		}
	}
	return nil
}

// ContainsBatch answers membership for every keys[i] into out[i] through
// the wavefront scheduler (see ContainsWavefront), reusing one scratch
// across the whole batch. out must be at least as long as keys. It stops at
// the first corrupt-table error.
func (dict *Dict) ContainsBatch(keys []uint64, out []bool, r rng.Source, sc *QueryScratch) error {
	if len(out) < len(keys) {
		return fmt.Errorf("core: ContainsBatch output length %d < %d keys", len(out), len(keys))
	}
	if sc == nil {
		sc = new(QueryScratch)
	}
	sc.src = sliceSource{keys: keys}
	err := dict.ContainsWavefront(&sc.src, out, r, sc)
	sc.src = sliceSource{}
	return err
}

// ProbeSpec returns the exact per-step probe distribution P_t(x, ·) of the
// query algorithm for input x on this table — the row of the paper's probe
// matrices (§1.1). It is computed from builder-side knowledge and is exact
// because every query step probes a uniformly random replica of a range
// determined by x and the table.
func (dict *Dict) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	if dict.strided {
		panic("core: ProbeSpec requires the block replica layout; strided dictionaries support Monte-Carlo contention measurement only")
	}
	d, s := dict.d, dict.s
	tab := dict.tab
	spec := make(cellprobe.ProbeSpec, 0, dict.MaxProbes())

	// Coefficient probes: uniform over each coefficient row.
	for i := 0; i < 2*d; i++ {
		spec = append(spec, cellprobe.UniformSpan(tab.Index(i, 0), s, 1))
	}
	// z probe: uniform over the block of g(x).
	gx := int(dict.g.Eval(x))
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.zRow(), gx*dict.blkZ), dict.blkZ, 1))
	// GBAS and histogram probes: uniform over the group block.
	h := int(dict.hEval(x))
	hp := h % dict.m
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.gbasRow(), hp*dict.blkG), dict.blkG, 1))
	for w := 0; w < dict.rho; w++ {
		spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.histRow()+w, hp*dict.blkG), dict.blkG, 1))
	}
	// Perfect-hash and data probes: only for non-empty buckets.
	l := dict.hLoads[h]
	if l == 0 {
		spec = append(spec, cellprobe.StepSpec{}, cellprobe.StepSpec{})
		return spec
	}
	off := dict.offsets[h]
	span := l * l
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.phRow(), off), span, 1))
	hstar := hash.Pairwise{A: dict.phA[h], B: dict.phB[h], M: uint64(span)}
	spec = append(spec, cellprobe.PointSpan(tab.Index(dict.dataRow(), off+int(hstar.Eval(x))), 1))
	return spec
}
