package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// Contains answers the membership query for x using the paper's §2.3
// four-phase algorithm. Every value it uses is read from table cells via
// recorded probes; the random source chooses which replica each probe
// reads. Pass an *rng.RNG for reproducible sequential queries or a shared
// rng.Sharded for concurrent ones. It returns an error only if the table is
// corrupt (failure injection); on a well-formed table the answer is exact.
func (dict *Dict) Contains(x uint64, r rng.Source) (bool, error) {
	tab := dict.tab
	d, s := dict.d, dict.s

	// Phase 1: read the 2d coefficient cells (one random replica each),
	// reconstruct f and g, then read z_{g(x)} from a random copy.
	fc := make([]uint64, d)
	gc := make([]uint64, d)
	for i := 0; i < d; i++ {
		fc[i] = tab.Probe(i, i, r.Intn(s)).Lo
		gc[i] = tab.Probe(d+i, d+i, r.Intn(s)).Lo
	}
	f := hash.PolyFromCoef(fc, uint64(s))
	g := hash.PolyFromCoef(gc, uint64(dict.r))
	gx := int(g.Eval(x))
	zv := tab.Probe(2*d, dict.zRow(), dict.zReplicaCol(gx, r.Intn(dict.blkZ))).Lo
	if zv >= uint64(s) {
		return false, fmt.Errorf("core: z value %d out of range %d", zv, s)
	}
	h := int((f.Eval(x) + zv) % uint64(s))
	hp := h % dict.m
	posInGroup := h / dict.m

	// Phase 2: group base address and the group histogram.
	step := 2*d + 1
	gbas := tab.Probe(step, dict.gbasRow(), dict.groupReplicaCol(hp, r.Intn(dict.blkG))).Lo
	if gbas > uint64(s) {
		return false, fmt.Errorf("core: group base address %d out of range %d", gbas, s)
	}
	words := make([]uint64, 2*dict.rho)
	for w := 0; w < dict.rho; w++ {
		step++
		c := tab.Probe(step, dict.histRow()+w, dict.groupReplicaCol(hp, r.Intn(dict.blkG)))
		words[2*w], words[2*w+1] = c.Lo, c.Hi
	}
	loads, err := bitvec.DecodeHistogramPrefix(bitvec.FromWords(words, dict.rho*128), posInGroup+1)
	if err != nil {
		return false, fmt.Errorf("core: corrupt group histogram for group %d: %w", hp, err)
	}

	// Phase 3: locate the bucket's ℓ² cell span.
	off := int(gbas)
	for k := 0; k < posInGroup; k++ {
		off += loads[k] * loads[k]
	}
	l := loads[posInGroup]
	if l == 0 {
		return false, nil // empty bucket: the key cannot be present
	}
	span := l * l
	if off+span > s {
		return false, fmt.Errorf("core: bucket span [%d,%d) exceeds s = %d", off, off+span, s)
	}

	// Phase 4: perfect hash from a random cell of the span, then the data cell.
	step++
	phc := tab.Probe(step, dict.phRow(), off+r.Intn(span))
	hstar := hash.Pairwise{A: phc.Lo, B: phc.Hi, M: uint64(span)}
	step++
	dc := tab.Probe(step, dict.dataRow(), off+int(hstar.Eval(x)))
	return dc.Hi == occupiedTag && dc.Lo == x, nil
}

// ProbeSpec returns the exact per-step probe distribution P_t(x, ·) of the
// query algorithm for input x on this table — the row of the paper's probe
// matrices (§1.1). It is computed from builder-side knowledge and is exact
// because every query step probes a uniformly random replica of a range
// determined by x and the table.
func (dict *Dict) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	if dict.strided {
		panic("core: ProbeSpec requires the block replica layout; strided dictionaries support Monte-Carlo contention measurement only")
	}
	d, s := dict.d, dict.s
	tab := dict.tab
	spec := make(cellprobe.ProbeSpec, 0, dict.MaxProbes())

	// Coefficient probes: uniform over each coefficient row.
	for i := 0; i < 2*d; i++ {
		spec = append(spec, cellprobe.UniformSpan(tab.Index(i, 0), s, 1))
	}
	// z probe: uniform over the block of g(x).
	gx := int(dict.g.Eval(x))
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.zRow(), gx*dict.blkZ), dict.blkZ, 1))
	// GBAS and histogram probes: uniform over the group block.
	h := int(dict.hEval(x))
	hp := h % dict.m
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.gbasRow(), hp*dict.blkG), dict.blkG, 1))
	for w := 0; w < dict.rho; w++ {
		spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.histRow()+w, hp*dict.blkG), dict.blkG, 1))
	}
	// Perfect-hash and data probes: only for non-empty buckets.
	l := dict.hLoads[h]
	if l == 0 {
		spec = append(spec, cellprobe.StepSpec{}, cellprobe.StepSpec{})
		return spec
	}
	off := dict.offsets[h]
	span := l * l
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.phRow(), off), span, 1))
	hstar := hash.Pairwise{A: dict.phA[h], B: dict.phB[h], M: uint64(span)}
	spec = append(spec, cellprobe.PointSpan(tab.Index(dict.dataRow(), off+int(hstar.Eval(x))), 1))
	return spec
}
