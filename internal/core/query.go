package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

// QueryScratch holds the per-query working memory of Contains: the f and g
// coefficient buffers and the group-histogram words. A zero QueryScratch is
// ready to use; buffers grow on first use and are reused afterwards, so a
// caller that keeps one scratch per goroutine (the facade pools them) pays
// no heap allocation per query. A scratch must not be shared by concurrent
// queries.
type QueryScratch struct {
	fc, gc []uint64
	words  []uint64
	vec    bitvec.Vector

	// capture arms per-probe trace capture (StartCapture): probeLog[t]
	// records the flat cell index probed at step t of the next query. A
	// scratch serves one query at a time by construction, so capture needs
	// no synchronization; un-armed queries pay one predictable untaken
	// branch per probe.
	capture  bool
	probeLog []int32
}

// StartCapture arms per-probe capture for the next ContainsScratch call on
// this scratch. The telemetry layer uses it to build per-query traces.
func (sc *QueryScratch) StartCapture() {
	sc.capture = true
	sc.probeLog = sc.probeLog[:0]
}

// StopCapture disarms capture and returns the per-step flat cell indices
// recorded since StartCapture (aliasing scratch memory: valid until the
// next StartCapture).
func (sc *QueryScratch) StopCapture() []int32 {
	sc.capture = false
	return sc.probeLog
}

// logProbe records cell as the probe target of the given step.
func (sc *QueryScratch) logProbe(step int, cell int32) {
	for len(sc.probeLog) <= step {
		sc.probeLog = append(sc.probeLog, -1)
	}
	sc.probeLog[step] = cell
}

// ensure sizes the buffers for a dictionary with degree d and rho histogram
// rows.
func (sc *QueryScratch) ensure(d, rho int) {
	if cap(sc.fc) < d {
		sc.fc = make([]uint64, d)
		sc.gc = make([]uint64, d)
	}
	sc.fc, sc.gc = sc.fc[:d], sc.gc[:d]
	if cap(sc.words) < 2*rho {
		sc.words = make([]uint64, 2*rho)
	}
	sc.words = sc.words[:2*rho]
}

// Contains answers the membership query for x using the paper's §2.3
// four-phase algorithm. Every value it uses is read from table cells via
// recorded probes; the random source chooses which replica each probe
// reads. Pass an *rng.RNG for reproducible sequential queries or a shared
// rng.Sharded for concurrent ones.
//
// The returned error is non-nil only when the table itself is corrupt
// (failure injection, bit flips): every error path is a consistency check
// on cell contents. On a well-formed table the answer is exact and the
// error is always nil.
//
// Contains allocates a fresh QueryScratch per call; hot paths should use
// ContainsScratch with a reused scratch instead.
func (dict *Dict) Contains(x uint64, r rng.Source) (bool, error) {
	var sc QueryScratch
	return dict.ContainsScratch(x, r, &sc)
}

// ContainsScratch is Contains with caller-supplied working memory. After
// the scratch's first use it performs zero heap allocations, so a caller
// that reuses one scratch per goroutine gets an allocation-free read path.
func (dict *Dict) ContainsScratch(x uint64, r rng.Source, sc *QueryScratch) (bool, error) {
	tab := dict.tab
	d, s := dict.d, dict.s
	sc.ensure(d, dict.rho)

	// Phase 1: read the 2d coefficient cells (one random replica each),
	// reconstruct f and g in place, then read z_{g(x)} from a random copy.
	for i := 0; i < d; i++ {
		cf, cg := r.Intn(s), r.Intn(s)
		sc.fc[i] = tab.Probe(i, i, cf).Lo
		sc.gc[i] = tab.Probe(d+i, d+i, cg).Lo
		if sc.capture {
			sc.logProbe(i, int32(tab.Index(i, cf)))
			sc.logProbe(d+i, int32(tab.Index(d+i, cg)))
		}
	}
	gx := int(hash.EvalFromCoef(sc.gc, uint64(dict.r), x))
	cz := dict.zReplicaCol(gx, r.Intn(dict.blkZ))
	zv := tab.Probe(2*d, dict.zRow(), cz).Lo
	if sc.capture {
		sc.logProbe(2*d, int32(tab.Index(dict.zRow(), cz)))
	}
	if zv >= uint64(s) {
		return false, fmt.Errorf("core: corrupt table: z value %d outside [0, %d)", zv, s)
	}
	h := int((hash.EvalFromCoef(sc.fc, uint64(s), x) + zv) % uint64(s))
	hp := h % dict.m
	posInGroup := h / dict.m

	// Phase 2: group base address and the group histogram.
	step := 2*d + 1
	cb := dict.groupReplicaCol(hp, r.Intn(dict.blkG))
	gbas := tab.Probe(step, dict.gbasRow(), cb).Lo
	if sc.capture {
		sc.logProbe(step, int32(tab.Index(dict.gbasRow(), cb)))
	}
	if gbas > uint64(s) {
		return false, fmt.Errorf("core: corrupt table: group base address %d outside [0, %d]", gbas, s)
	}
	for w := 0; w < dict.rho; w++ {
		step++
		ch := dict.groupReplicaCol(hp, r.Intn(dict.blkG))
		c := tab.Probe(step, dict.histRow()+w, ch)
		if sc.capture {
			sc.logProbe(step, int32(tab.Index(dict.histRow()+w, ch)))
		}
		sc.words[2*w], sc.words[2*w+1] = c.Lo, c.Hi
	}

	// Phase 3: stream the histogram prefix to locate the bucket's ℓ² cell
	// span — Σ_{k<pos} ℓ_k² cells past the group base, ℓ_pos² cells wide.
	sc.vec.Reset(sc.words, dict.rho*128)
	sumSq, l, err := bitvec.HistogramPrefixSum(&sc.vec, posInGroup+1)
	if err != nil {
		return false, fmt.Errorf("core: corrupt table: histogram of group %d: %w", hp, err)
	}
	if l == 0 {
		return false, nil // empty bucket: the key cannot be present
	}
	off := int(gbas) + sumSq
	span := l * l
	if off+span > s {
		return false, fmt.Errorf("core: corrupt table: bucket span [%d, %d) exceeds s = %d", off, off+span, s)
	}

	// Phase 4: perfect hash from a random cell of the span, then the data cell.
	step++
	cp := off + r.Intn(span)
	phc := tab.Probe(step, dict.phRow(), cp)
	if sc.capture {
		sc.logProbe(step, int32(tab.Index(dict.phRow(), cp)))
	}
	hstar := hash.Pairwise{A: phc.Lo, B: phc.Hi, M: uint64(span)}
	step++
	cd := off + int(hstar.Eval(x))
	dc := tab.Probe(step, dict.dataRow(), cd)
	if sc.capture {
		sc.logProbe(step, int32(tab.Index(dict.dataRow(), cd)))
	}
	return dc.Hi == occupiedTag && dc.Lo == x, nil
}

// ContainsBatch answers membership for every keys[i] into out[i], reusing
// one scratch across the whole batch. out must be at least as long as keys.
// It stops at the first corrupt-table error.
func (dict *Dict) ContainsBatch(keys []uint64, out []bool, r rng.Source, sc *QueryScratch) error {
	if len(out) < len(keys) {
		return fmt.Errorf("core: ContainsBatch output length %d < %d keys", len(out), len(keys))
	}
	if sc == nil {
		sc = new(QueryScratch)
	}
	for i, x := range keys {
		ok, err := dict.ContainsScratch(x, r, sc)
		if err != nil {
			return err
		}
		out[i] = ok
	}
	return nil
}

// ProbeSpec returns the exact per-step probe distribution P_t(x, ·) of the
// query algorithm for input x on this table — the row of the paper's probe
// matrices (§1.1). It is computed from builder-side knowledge and is exact
// because every query step probes a uniformly random replica of a range
// determined by x and the table.
func (dict *Dict) ProbeSpec(x uint64) cellprobe.ProbeSpec {
	if dict.strided {
		panic("core: ProbeSpec requires the block replica layout; strided dictionaries support Monte-Carlo contention measurement only")
	}
	d, s := dict.d, dict.s
	tab := dict.tab
	spec := make(cellprobe.ProbeSpec, 0, dict.MaxProbes())

	// Coefficient probes: uniform over each coefficient row.
	for i := 0; i < 2*d; i++ {
		spec = append(spec, cellprobe.UniformSpan(tab.Index(i, 0), s, 1))
	}
	// z probe: uniform over the block of g(x).
	gx := int(dict.g.Eval(x))
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.zRow(), gx*dict.blkZ), dict.blkZ, 1))
	// GBAS and histogram probes: uniform over the group block.
	h := int(dict.hEval(x))
	hp := h % dict.m
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.gbasRow(), hp*dict.blkG), dict.blkG, 1))
	for w := 0; w < dict.rho; w++ {
		spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.histRow()+w, hp*dict.blkG), dict.blkG, 1))
	}
	// Perfect-hash and data probes: only for non-empty buckets.
	l := dict.hLoads[h]
	if l == 0 {
		spec = append(spec, cellprobe.StepSpec{}, cellprobe.StepSpec{})
		return spec
	}
	off := dict.offsets[h]
	span := l * l
	spec = append(spec, cellprobe.UniformSpan(tab.Index(dict.phRow(), off), span, 1))
	hstar := hash.Pairwise{A: dict.phA[h], B: dict.phB[h], M: uint64(span)}
	spec = append(spec, cellprobe.PointSpan(tab.Index(dict.dataRow(), off+int(hstar.Eval(x))), 1))
	return spec
}
