package dynamic

import (
	"testing"
	"testing/quick"

	"repro/internal/cellprobe"
	"repro/internal/hash"
	"repro/internal/rng"
)

func distinctKeys(r *rng.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func mustNew(t testing.TB, keys []uint64, seed uint64) *Dict {
	t.Helper()
	d, err := New(keys, Params{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInsertDeleteContains(t *testing.T) {
	r := rng.New(1)
	keys := distinctKeys(r, 200)
	d := mustNew(t, keys[:100], 2)
	qr := rng.New(3)

	check := func(x uint64, want bool) {
		t.Helper()
		ok, err := d.Contains(x, qr)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Fatalf("Contains(%d) = %v, want %v", x, ok, want)
		}
	}

	for _, k := range keys[:100] {
		check(k, true)
	}
	for _, k := range keys[100:] {
		check(k, false)
	}
	// Insert the second hundred.
	for _, k := range keys[100:] {
		changed, err := d.Insert(k)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatalf("Insert(%d) reported no change", k)
		}
		check(k, true)
	}
	if d.Len() != 200 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Delete the first hundred.
	for _, k := range keys[:100] {
		changed, err := d.Delete(k)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			t.Fatalf("Delete(%d) reported no change", k)
		}
		check(k, false)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d after deletes", d.Len())
	}
	for _, k := range keys[100:] {
		check(k, true)
	}
}

func TestIdempotentOps(t *testing.T) {
	d := mustNew(t, []uint64{1, 2, 3}, 1)
	if changed, _ := d.Insert(2); changed {
		t.Error("Insert of existing key reported change")
	}
	if changed, _ := d.Delete(99); changed {
		t.Error("Delete of absent key reported change")
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestRejectsBadInput(t *testing.T) {
	if _, err := New([]uint64{5, 5}, Params{}, 1); err == nil {
		t.Error("duplicates accepted")
	}
	if _, err := New([]uint64{hash.MaxKey}, Params{}, 1); err == nil {
		t.Error("out-of-universe key accepted")
	}
	if _, err := New(nil, Params{Epsilon: 2}, 1); err == nil {
		t.Error("epsilon > 1 accepted")
	}
	d := mustNew(t, nil, 1)
	if _, err := d.Insert(hash.MaxKey); err == nil {
		t.Error("Insert of out-of-universe key accepted")
	}
}

func TestRebuildTriggers(t *testing.T) {
	r := rng.New(4)
	initial := distinctKeys(r, 400)
	d := mustNew(t, initial, 5)
	startEpoch := d.Stats().Epoch
	threshold := d.cur.Load().buf.threshold
	extra := distinctKeys(rng.New(6), 2*threshold+10)
	for _, k := range extra {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	d.Quiesce()
	s := d.Stats()
	if s.Epoch <= startEpoch {
		t.Errorf("no rebuild after %d inserts (threshold %d)", len(extra), threshold)
	}
	// All keys still present after rebuilds.
	qr := rng.New(7)
	for _, k := range extra {
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("key %d lost across rebuild (err %v)", k, err)
		}
	}
	if s.SnapshotN != d.Len() && s.Buffered == 0 {
		t.Errorf("snapshot %d != len %d with empty buffer", s.SnapshotN, d.Len())
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	d := mustNew(t, []uint64{10, 20, 30}, 8)
	qr := rng.New(9)
	if _, err := d.Delete(20); err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Contains(20, qr); ok {
		t.Fatal("deleted key still present")
	}
	if _, err := d.Insert(20); err != nil {
		t.Fatal(err)
	}
	ok, err := d.Contains(20, qr)
	if err != nil || !ok {
		t.Fatalf("re-inserted key missing (err %v)", err)
	}
	// The tombstone flip must not have grown the buffer.
	d.Quiesce()
	if d.Stats().Buffered != 0 {
		t.Errorf("buffered = %d after delete+reinsert of snapshot key", d.Stats().Buffered)
	}
}

// TestOracleRandomOps drives a long random op sequence against a map oracle.
func TestOracleRandomOps(t *testing.T) {
	r := rng.New(10)
	pool := distinctKeys(r, 300)
	d := mustNew(t, pool[:50], 11)
	oracle := make(map[uint64]bool)
	for _, k := range pool[:50] {
		oracle[k] = true
	}
	qr := rng.New(12)
	for op := 0; op < 4000; op++ {
		k := pool[r.Intn(len(pool))]
		switch r.Intn(3) {
		case 0:
			changed, err := d.Insert(k)
			if err != nil {
				t.Fatal(err)
			}
			if changed == oracle[k] {
				t.Fatalf("op %d: Insert(%d) changed=%v but oracle has=%v", op, k, changed, oracle[k])
			}
			oracle[k] = true
		case 1:
			changed, err := d.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if changed != oracle[k] {
				t.Fatalf("op %d: Delete(%d) changed=%v but oracle has=%v", op, k, changed, oracle[k])
			}
			delete(oracle, k)
		default:
			ok, err := d.Contains(k, qr)
			if err != nil {
				t.Fatal(err)
			}
			if ok != oracle[k] {
				t.Fatalf("op %d: Contains(%d) = %v, oracle %v (epoch %d)", op, k, ok, oracle[k], d.Stats().Epoch)
			}
		}
		if d.Len() != len(oracle) {
			t.Fatalf("op %d: Len %d != oracle %d", op, d.Len(), len(oracle))
		}
	}
	d.Quiesce()
	if d.Stats().Epoch < 2 {
		t.Errorf("expected several rebuilds, got epoch %d", d.Stats().Epoch)
	}
}

// TestOracleProperty uses testing/quick over op scripts.
func TestOracleProperty(t *testing.T) {
	f := func(seed uint64, script []byte) bool {
		d, err := New(nil, Params{Epsilon: 0.5}, seed)
		if err != nil {
			return false
		}
		oracle := map[uint64]bool{}
		qr := rng.New(seed + 1)
		for _, b := range script {
			k := uint64(b % 32) // small key space forces collisions
			if b&0x80 == 0 {
				if _, err := d.Insert(k); err != nil {
					return false
				}
				oracle[k] = true
			} else {
				if _, err := d.Delete(k); err != nil {
					return false
				}
				delete(oracle, k)
			}
		}
		for k := uint64(0); k < 32; k++ {
			ok, err := d.Contains(k, qr)
			if err != nil || ok != oracle[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReadContentionStaysBounded: after churn, the empirical read contention
// on both tables stays within a constant of optimal.
func TestReadContentionStaysBounded(t *testing.T) {
	r := rng.New(13)
	keys := distinctKeys(r, 1024)
	d := mustNew(t, keys[:768], 14)
	// Churn: insert the rest, delete a third of the original.
	for _, k := range keys[768:] {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys[:256] {
		if _, err := d.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	live := keys[256:]

	// Probe recording is a sequential measurement mode: settle the epoch
	// before attaching recorders.
	d.Quiesce()
	baseRec := cellprobe.NewRecorder(d.BaseTable().Size())
	bufRec := cellprobe.NewRecorder(d.BufferTable().Size())
	d.BaseTable().Attach(baseRec)
	d.BufferTable().Attach(bufRec)
	qr := rng.New(15)
	const queries = 60000
	for i := 0; i < queries; i++ {
		k := live[qr.Intn(len(live))]
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("lost key %d (err %v)", k, err)
		}
		baseRec.EndQuery()
		bufRec.EndQuery()
	}
	d.BaseTable().Detach()
	d.BufferTable().Detach()

	baseRatio := baseRec.MaxStepContention() * float64(d.BaseTable().Size())
	if baseRatio > 128 {
		t.Errorf("base read contention ratio %.1f after churn", baseRatio)
	}
	// Buffer parameter probes are spread across the row; slot probes are
	// per-key. The hottest buffer cell must stay well below contention 1.
	if hot := bufRec.MaxStepContention(); hot > 0.1 {
		t.Errorf("buffer hot cell contention %.3f", hot)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := mustNew(t, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 16)
	s := d.Stats()
	if s.Epoch != 1 || s.SnapshotN != 8 || s.Len != 8 {
		t.Errorf("initial stats %+v", s)
	}
	if s.BufferSlots < 8 {
		t.Errorf("buffer slots %d", s.BufferSlots)
	}
	for k := uint64(100); k < 120; k++ {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	d.Quiesce()
	s = d.Stats()
	if s.Updates != 20 {
		t.Errorf("updates = %d, want 20", s.Updates)
	}
	if s.RebuildKeys <= 8 {
		t.Errorf("rebuild keys %d, want amortization evidence", s.RebuildKeys)
	}
	if d.MaxReadProbes() < 10 {
		t.Errorf("MaxReadProbes = %d", d.MaxReadProbes())
	}
	if s.WriteProbes < uint64(s.Updates)*2 {
		t.Errorf("WriteProbes = %d for %d updates", s.WriteProbes, s.Updates)
	}
	qr := rng.New(99)
	before := d.Stats().ReadProbes
	if _, err := d.Contains(1, qr); err != nil {
		t.Fatal(err)
	}
	if after := d.Stats().ReadProbes; after <= before {
		t.Errorf("ReadProbes did not advance: %d -> %d", before, after)
	}
}

func TestEmptyDynamic(t *testing.T) {
	d := mustNew(t, nil, 17)
	qr := rng.New(18)
	if ok, err := d.Contains(42, qr); err != nil || ok {
		t.Errorf("empty dict Contains(42) = %v, %v", ok, err)
	}
	if _, err := d.Insert(42); err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Contains(42, qr); !ok {
		t.Error("inserted key missing from empty-start dict")
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rng.New(1)
	d, err := New(distinctKeys(r, 4096), Params{}, 2)
	if err != nil {
		b.Fatal(err)
	}
	fresh := distinctKeys(rng.New(3), b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Insert(fresh[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicContains(b *testing.B) {
	r := rng.New(1)
	keys := distinctKeys(r, 4096)
	d, err := New(keys, Params{}, 2)
	if err != nil {
		b.Fatal(err)
	}
	qr := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Contains(keys[i%len(keys)], qr); err != nil {
			b.Fatal(err)
		}
	}
}

// TestContainsBatchAgreesWithContains: the batched path answers against one
// epoch snapshot and must agree with per-key queries on a quiescent dict.
func TestContainsBatchAgreesWithContains(t *testing.T) {
	r := rng.New(51)
	keys := distinctKeys(r, 400)
	d := mustNew(t, keys[:200], 5)
	for _, k := range keys[200:300] {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys[:50] {
		if _, err := d.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	d.Quiesce()
	qr := rng.New(52)
	out := make([]bool, len(keys))
	if err := d.ContainsBatch(keys, out, qr); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want, err := d.Contains(k, qr)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("batch[%d] (key %d) = %v, want %v", i, k, out[i], want)
		}
	}
	if err := d.ContainsBatch(keys, out[:3], qr); err == nil {
		t.Error("short output slice accepted")
	}
}
