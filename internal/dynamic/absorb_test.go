package dynamic

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// pinnedHot is a stub classifier that pins a fixed hot set from the first
// epoch on — deterministic promotion for tests that need to know exactly
// which keys are absorbed.
type pinnedHot struct{ keys []uint64 }

func (p pinnedHot) ObserveClaim(uint64, uint64, uint64) {}
func (p pinnedHot) Pressure() bool                      { return false }
func (p pinnedHot) Reclassify([]uint64, func(uint64) uint64) []uint64 {
	return p.keys
}

func mustNewAbsorbed(t testing.TB, keys []uint64, seed uint64, p Params) *Dict {
	t.Helper()
	d, err := New(keys, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAbsorbedFlipsWithinPhase pins one hot key and drives
// insert→delete→insert flips of it within a single phase, asserting the
// overlay answers every Contains linearizably mid-phase, and that the
// phase-seal reconciliation (forced rebuilds) lands the last write — in
// both final polarities, across consecutive phases.
func TestAbsorbedFlipsWithinPhase(t *testing.T) {
	keys := distinctKeys(rng.New(80), 256)
	initial, filler := keys[:128], keys[128:]
	hot := initial[0] // hot and initially a member
	d := mustNewAbsorbed(t, initial, 81, Params{
		SyncRebuild: true,
		Hot:         pinnedHot{keys: []uint64{hot}},
	})
	qr := rng.New(82)
	check := func(want bool, when string) {
		t.Helper()
		ok, err := d.Contains(hot, qr)
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Fatalf("%s: Contains(hot) = %v, want %v", when, ok, want)
		}
	}
	st := d.Stats()
	if !st.SplitPhase || st.HotKeys != 1 {
		t.Fatalf("pinned classifier did not arm a split phase: %+v", st)
	}

	// Flip the key several times inside one phase; every intermediate state
	// must be reader-visible immediately, and changed-ness must track the
	// overlay's state word exactly.
	ops := []struct {
		del     bool
		changed bool
	}{
		{del: true, changed: true},  // member → absent
		{del: true, changed: false}, // already absent
		{del: false, changed: true}, // absent → member
		{del: true, changed: true},  // member → absent
		{del: false, changed: true}, // absent → member (final: present)
	}
	for i, op := range ops {
		var changed bool
		var err error
		if op.del {
			changed, err = d.Delete(hot)
		} else {
			changed, err = d.Insert(hot)
		}
		if err != nil {
			t.Fatal(err)
		}
		if changed != op.changed {
			t.Fatalf("op %d: changed = %v, want %v", i, changed, op.changed)
		}
		check(!op.del, fmt.Sprintf("after op %d", i))
	}
	if got := d.Stats().AbsorbedWrites; got != uint64(len(ops)) {
		t.Fatalf("AbsorbedWrites = %d, want %d", got, len(ops))
	}
	// No claim ever ran for the hot key, so the flip sequence cannot have
	// contended on anything beyond the key's own overlay line.
	if got := d.Stats().WriteCASRetries; got != 0 {
		t.Fatalf("WriteCASRetries = %d on a single-writer absorbed sequence", got)
	}

	// Force a phase seal by filling the buffer with cool inserts; the
	// rebuild must reconcile the overlay's final state (present).
	epoch := d.Stats().Epoch
	for _, k := range filler {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
		if d.Stats().Epoch > epoch {
			break
		}
	}
	if d.Stats().Epoch == epoch {
		t.Fatal("filler inserts never sealed the phase")
	}
	check(true, "after reconciling rebuild (present)")
	if n := d.Len(); n < len(initial) {
		t.Fatalf("Len = %d after reconciliation, want ≥ %d", n, len(initial))
	}

	// Now end a phase with the key absent and reconcile again. Churn
	// insert/delete pairs on filler keys until the buffer fills: pairs are
	// membership-neutral, so only the hot key's polarity is at stake.
	if changed, err := d.Delete(hot); err != nil || !changed {
		t.Fatalf("delete before second seal: changed=%v err=%v", changed, err)
	}
	check(false, "mid-phase after delete")
	epoch = d.Stats().Epoch
	for round := 0; round < 16 && d.Stats().Epoch == epoch; round++ {
		for _, k := range filler {
			if _, err := d.Delete(k); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Insert(k); err != nil {
				t.Fatal(err)
			}
			if d.Stats().Epoch > epoch {
				break
			}
		}
	}
	if d.Stats().Epoch == epoch {
		t.Fatal("filler churn never sealed the phase")
	}
	check(false, "after reconciling rebuild (absent)")
	if st = d.Stats(); st.PhaseSeals < 2 {
		t.Fatalf("PhaseSeals = %d, want ≥ 2", st.PhaseSeals)
	}
}

// TestAbsorbedWritersChangedCounts extends the changed-count linearization
// ledger to the absorbed path: several writers flip a pinned-hot contended
// set (insert→delete→insert churn of the same keys within phases) while
// also churning cool keys hard enough to seal phases mid-storm, so the
// ledger crosses overlay→snapshot reconciliations. For every hot key the
// summed changed-reports plus initial membership must land in {0, 1} and
// agree with Contains — a duplicated or lost absorbed write breaks it.
func TestAbsorbedWritersChangedCounts(t *testing.T) {
	const contended = 32
	writers, ops := 4, 3000
	if testing.Short() {
		writers, ops = 2, 600
	}
	keys := distinctKeys(rng.New(90), 512+contended)
	filler, hot := keys[:512], keys[512:]
	initial := append(append([]uint64{}, filler[:256]...), hot[:contended/2]...)
	d := mustNewAbsorbed(t, initial, 91, Params{Hot: pinnedHot{keys: hot}})
	volatile := filler[256:]

	nets := make([][]int, writers)
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for g := 0; g < writers; g++ {
		nets[g] = make([]int, contended)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(900 + g))
			for i := 0; i < ops; i++ {
				if r.Intn(4) == 0 {
					// Cool churn: fills the buffer and seals phases, so
					// absorbed state reconciles mid-ledger.
					k := volatile[r.Intn(len(volatile))]
					var err error
					if r.Intn(2) == 0 {
						_, err = d.Insert(k)
					} else {
						_, err = d.Delete(k)
					}
					if err != nil {
						errc <- err
						return
					}
					continue
				}
				ki := r.Intn(contended)
				if r.Intn(2) == 0 {
					changed, err := d.Insert(hot[ki])
					if err != nil {
						errc <- err
						return
					}
					if changed {
						nets[g][ki]++
					}
				} else {
					changed, err := d.Delete(hot[ki])
					if err != nil {
						errc <- err
						return
					}
					if changed {
						nets[g][ki]--
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	d.Quiesce()

	st := d.Stats()
	if st.AbsorbedWrites == 0 {
		t.Fatal("storm absorbed no writes — hot set never engaged")
	}
	if st.PhaseSeals == 0 {
		t.Fatal("storm sealed no phases — reconciliation never exercised")
	}
	qr := rng.New(92)
	for i := 0; i < contended; i++ {
		membership := 0
		if i < contended/2 {
			membership = 1
		}
		for g := 0; g < writers; g++ {
			membership += nets[g][i]
		}
		if membership != 0 && membership != 1 {
			t.Fatalf("hot key %d: changed-count ledger says membership %d — an absorbed write was double-counted or lost", hot[i], membership)
		}
		ok, err := d.Contains(hot[i], qr)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (membership == 1) {
			t.Fatalf("hot key %d: ledger membership %d but Contains = %v", hot[i], membership, ok)
		}
	}
	// The untouched filler prefix must be fully intact.
	for _, k := range filler[:256] {
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("filler key %d lost (err %v)", k, err)
		}
	}
	t.Logf("%d writers: %d absorbed, %d phases, %d CAS retries",
		writers, st.AbsorbedWrites, st.PhaseSeals, st.WriteCASRetries)
}

// TestAbsorbedStormZeroCASRetries is the acceptance criterion in its purest
// form: when every write lands on an absorbed-hot key, the split phase
// performs zero CAS retries — not "few", zero — because the absorbed path
// has no CAS at all. A concurrent reader asserts a never-written hot key
// stays visible through the overlay for the storm's whole duration.
func TestAbsorbedStormZeroCASRetries(t *testing.T) {
	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	ops := 20000
	if testing.Short() {
		ops = 4000
	}
	keys := distinctKeys(rng.New(100), 64)
	hot := keys[:8]
	stable := hot[0] // absorbed, a member, and never written
	d := mustNewAbsorbed(t, keys, 101, Params{Hot: pinnedHot{keys: hot}})
	src := rng.NewSharded(102, 0)

	var writerWG, readerWG sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, writers+1)
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			r := rng.New(uint64(1000 + g))
			for i := 0; i < ops; i++ {
				k := hot[1+r.Intn(len(hot)-1)]
				var err error
				if r.Intn(2) == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for !stop.Load() {
			ok, err := d.Contains(stable, src)
			if err != nil {
				errc <- err
				return
			}
			if !ok {
				errc <- fmt.Errorf("stable absorbed key %d reported absent mid-storm", stable)
				return
			}
		}
	}()
	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := d.Stats()
	if st.WriteCASRetries != 0 {
		t.Fatalf("split-phase storm performed %d CAS retries, want exactly 0", st.WriteCASRetries)
	}
	if want := uint64(writers * ops); st.AbsorbedWrites < want {
		t.Fatalf("AbsorbedWrites = %d, want ≥ %d", st.AbsorbedWrites, want)
	}
	if st.Buffered != 0 {
		t.Fatalf("absorbed storm left %d buffer entries — hot writes leaked into the claim path", st.Buffered)
	}
}

// TestRotatingHotSetAbsorbedStorm drives the real classifier under the
// ddtxn-style rotating-hot-set schedule: GOMAXPROCS writers churn whatever
// the drive schedules (90% of ops on a rotating 4-key point mass) while the
// classifier detects, promotes and demotes on its own. The storm must
// engage absorption, seal phases, and leave the never-written stable core
// fully intact.
func TestRotatingHotSetAbsorbedStorm(t *testing.T) {
	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	ops := 20000
	if testing.Short() {
		ops = 5000
	}
	keys := distinctKeys(rng.New(110), 1024+64)
	stable, volatile := keys[:1024], keys[1024:]
	drive, err := workload.NewRotatingHotSet(volatile, 4, 4096, 0.9, 111)
	if err != nil {
		t.Fatal(err)
	}
	d := mustNewAbsorbed(t, stable, 112, Params{
		Hot: telemetry.NewHotKeyClassifier(telemetry.HotKeyConfig{PromoteOps: 64}),
	})

	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(1100 + g))
			for i := 0; i < ops; i++ {
				k := drive.Next()
				var err error
				if r.Intn(2) == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	d.Quiesce()

	st := d.Stats()
	if st.AbsorbedWrites == 0 {
		t.Fatalf("rotating storm never engaged absorption: %+v", st)
	}
	if st.PhaseSeals == 0 {
		t.Fatalf("rotating storm sealed no phases: %+v", st)
	}
	qr := rng.New(114)
	for _, k := range stable {
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("stable key %d lost under rotating storm (err %v)", k, err)
		}
	}
	t.Logf("%d writers × %d ops: %d absorbed, %d phases, %d hot now, %d CAS retries",
		writers, ops, st.AbsorbedWrites, st.PhaseSeals, st.HotKeys, st.WriteCASRetries)
}
