package dynamic

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestContainsDuringRebuild is the epoch design's headline property: a
// global rebuild of a ≥10^4-key dictionary runs in the background while
// readers keep completing against the still-published old epoch.
func TestContainsDuringRebuild(t *testing.T) {
	const n = 12000
	keys := distinctKeys(rng.New(20), n+n/2)
	d := mustNew(t, keys[:n], 21)
	src := rng.NewSharded(22, 0)
	probe := keys[0] // member of every epoch

	completed := 0
	for _, k := range keys[n:] {
		if _, err := d.Insert(k); err != nil {
			t.Fatal(err)
		}
		for guard := 0; d.Rebuilding() && guard < 1_000_000; guard++ {
			ok, err := d.Contains(probe, src)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("key %d lost mid-rebuild", probe)
			}
			if d.Rebuilding() {
				completed++
			}
		}
		if completed > 0 {
			break
		}
	}
	d.Quiesce()
	if completed == 0 {
		t.Fatal("no Contains completed while a rebuild was in flight")
	}
	t.Logf("%d queries completed during one background rebuild of %d keys", completed, n)
}

// TestConcurrentMixedOps hammers the internal dictionary with parallel
// readers, writers and Len calls; run it under -race. Correctness of the
// answers is checked by the reader goroutines on a stable key range.
func TestConcurrentMixedOps(t *testing.T) {
	readers, writers, opsPerReader, opsPerWriter := 4, 2, 4000, 1500
	if testing.Short() {
		readers, writers, opsPerReader, opsPerWriter = 2, 1, 500, 200
	}
	keys := distinctKeys(rng.New(30), 3000)
	stable, volatile := keys[:1000], keys[1000:]
	d := mustNew(t, keys[:2000], 31) // stable keys + first half of volatile
	src := rng.NewSharded(32, 0)

	var wg sync.WaitGroup
	errc := make(chan error, readers+writers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(100 + g))
			for i := 0; i < opsPerReader; i++ {
				k := stable[r.Intn(len(stable))]
				ok, err := d.Contains(k, src)
				if err != nil {
					errc <- err
					return
				}
				if !ok {
					t.Errorf("stable key %d reported absent", k)
					return
				}
				if d.Len() < len(stable) {
					t.Errorf("Len %d below stable floor %d", d.Len(), len(stable))
					return
				}
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(200 + g))
			for i := 0; i < opsPerWriter; i++ {
				k := volatile[r.Intn(len(volatile))]
				var err error
				if r.Intn(2) == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	d.Quiesce()
	// Post-quiesce, the structure must still agree with itself.
	qr := rng.New(33)
	for _, k := range stable {
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("stable key %d missing after hammer (err %v)", k, err)
		}
	}
}
