package dynamic

import (
	"testing"

	"repro/internal/hash"
	"repro/internal/rng"
)

// TestSlotPackRoundtrip sweeps all four tags with random in-range keys and
// pins the boundary: every key below 2^61 packs and roundtrips, the first
// key at the boundary is rejected, and every valid dictionary key
// (< hash.MaxKey) fits in a slot word.
func TestSlotPackRoundtrip(t *testing.T) {
	r := rng.New(77)
	tags := []uint64{slotEmpty, slotInserted, slotDeleted, slotVacated}
	for _, tag := range tags {
		for i := 0; i < 2000; i++ {
			key := r.Uint64n(keyMask + 1) // any 61-bit key
			w, ok := packSlot(tag, key)
			if !ok {
				t.Fatalf("packSlot(%d, %d) rejected an in-range key", tag, key)
			}
			gotTag, gotKey := unpackSlot(w)
			if gotTag != tag || gotKey != key {
				t.Fatalf("roundtrip (%d, %d) -> %#x -> (%d, %d)", tag, key, w, gotTag, gotKey)
			}
		}
	}
	if _, ok := packSlot(slotInserted, keyMask); !ok {
		t.Error("largest 61-bit key rejected")
	}
	if _, ok := packSlot(slotInserted, keyMask+1); ok {
		t.Error("key 2^61 accepted — it would corrupt the tag bits")
	}
	if _, ok := packSlot(slotVacated+1, 0); ok {
		t.Error("out-of-range tag accepted")
	}
	if hash.MaxKey-1 > keyMask {
		t.Errorf("universe bound %d exceeds slot key capacity %d", hash.MaxKey-1, keyMask)
	}
}

// FuzzSlotPack drives the packed-word encode/decode through arbitrary
// (tag, key) pairs: in-range pairs must roundtrip exactly, anything at or
// past the key-range boundary (or with an unknown tag) must be rejected
// rather than silently truncated into a different key.
func FuzzSlotPack(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(12345))
	f.Add(uint64(2), keyMask)
	f.Add(uint64(3), keyMask+1)
	f.Add(uint64(7), uint64(1)<<63)
	f.Fuzz(func(t *testing.T, tag, key uint64) {
		w, ok := packSlot(tag, key)
		if tag > slotVacated || key > keyMask {
			if ok {
				t.Fatalf("packSlot(%d, %d) accepted an out-of-range pair", tag, key)
			}
			return
		}
		if !ok {
			t.Fatalf("packSlot(%d, %d) rejected an in-range pair", tag, key)
		}
		gotTag, gotKey := unpackSlot(w)
		if gotTag != tag || gotKey != key {
			t.Fatalf("roundtrip (%d, %d) -> %#x -> (%d, %d)", tag, key, w, gotTag, gotKey)
		}
	})
}
