package dynamic

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// TestContainsDuringWriteStorm is the lock-free write path's headline
// property: GOMAXPROCS writer goroutines churn a volatile key range hard
// enough to force at least three rebuild epochs while reader goroutines
// continuously assert membership of a stable core set. A stable key going
// missing — during a claim race, a seal, a delta replay or an epoch swap —
// fails the test; run it under -race to also catch data races on the slot
// words and epoch pointer.
func TestContainsDuringWriteStorm(t *testing.T) {
	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const readers = 2
	stableN, volatileN := 1500, 2500
	if testing.Short() {
		stableN, volatileN = 400, 800
	}
	keys := distinctKeys(rng.New(40), stableN+volatileN)
	stable, volatile := keys[:stableN], keys[stableN:]
	d := mustNew(t, stable, 41)
	src := rng.NewSharded(42, 0)
	startEpoch := d.Stats().Epoch

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(400 + g))
			for !stop.Load() {
				k := volatile[r.Intn(len(volatile))]
				var err error
				if r.Intn(2) == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	var checks atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(500 + g))
			for !stop.Load() {
				k := stable[r.Intn(len(stable))]
				ok, err := d.Contains(k, src)
				if err != nil {
					errc <- err
					return
				}
				if !ok {
					errc <- fmt.Errorf("stable key %d reported absent mid-storm", k)
					return
				}
				checks.Add(1)
			}
		}(g)
	}

	deadline := time.Now().Add(30 * time.Second)
	for d.Stats().Epoch < startEpoch+3 && time.Now().Before(deadline) && len(errc) == 0 {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	d.Quiesce()
	st := d.Stats()
	if st.Epoch < startEpoch+3 {
		t.Fatalf("storm drove only %d rebuild epochs, want ≥ 3", st.Epoch-startEpoch)
	}
	if checks.Load() == 0 {
		t.Fatal("no reader check completed during the storm")
	}
	// Post-quiesce the stable core must be fully intact.
	qr := rng.New(43)
	for _, k := range stable {
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("stable key %d missing after storm (err %v)", k, err)
		}
	}
	t.Logf("%d writers, %d reader checks, %d epochs, %d CAS retries",
		writers, checks.Load(), st.Epoch-startEpoch, st.WriteCASRetries)
}

// TestStatsDuringWriteStorm calls Stats and Len continuously while writers
// churn, asserting the counters stay monotone and self-consistent. Every
// field Stats reads is an atomic or striped counter, so this must be clean
// under -race with zero coordination against the writers.
func TestStatsDuringWriteStorm(t *testing.T) {
	writers, ops := 4, 4000
	if testing.Short() {
		writers, ops = 2, 800
	}
	keys := distinctKeys(rng.New(50), 2000)
	d := mustNew(t, keys[:1000], 51)
	volatile := keys[1000:]

	var wg sync.WaitGroup
	errc := make(chan error, writers)
	var done atomic.Bool
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(600 + g))
			for i := 0; i < ops; i++ {
				k := volatile[r.Intn(len(volatile))]
				var err error
				if r.Intn(2) == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	go func() {
		wg.Wait()
		done.Store(true)
	}()
	var prev Stats
	for !done.Load() {
		st := d.Stats()
		if st.WriteProbes < prev.WriteProbes {
			t.Errorf("WriteProbes went backwards: %d -> %d", prev.WriteProbes, st.WriteProbes)
			break
		}
		if st.Updates < prev.Updates {
			t.Errorf("Updates went backwards: %d -> %d", prev.Updates, st.Updates)
			break
		}
		if st.Epoch < prev.Epoch {
			t.Errorf("Epoch went backwards: %d -> %d", prev.Epoch, st.Epoch)
			break
		}
		if st.Len < 0 || st.Buffered < 0 || st.Buffered > st.BufferSlots {
			t.Errorf("inconsistent mid-storm stats: %+v", st)
			break
		}
		prev = st
		// Overlap the next snapshot with writer progress.
		runtime.Gosched()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	d.Quiesce()
	st := d.Stats()
	if st.Updates == 0 || st.WriteProbes == 0 {
		t.Fatalf("storm recorded no write work: %+v", st)
	}
}

// TestConcurrentWritersChangedCounts pins the linearization invariant of the
// changed-report: with several writers hammering the same small key set,
// every op that reports "changed" is a real membership transition, so for
// each key (initial membership) + (sum of +1 per changed insert, −1 per
// changed delete) must equal its final membership — and never leave {0, 1}
// in aggregate. Duplicate claims racing on one key would break this.
func TestConcurrentWritersChangedCounts(t *testing.T) {
	const contended = 64
	writers, ops := 4, 3000
	if testing.Short() {
		writers, ops = 2, 600
	}
	keys := distinctKeys(rng.New(60), 512+contended)
	filler, hot := keys[:512], keys[512:]
	// Half the contended keys start as members (via the initial build), so
	// both the tombstone-first and insert-first claim paths are exercised.
	initial := append(append([]uint64{}, filler...), hot[:contended/2]...)
	d := mustNew(t, initial, 61)

	nets := make([][]int, writers) // nets[g][i]: writer g's net changed delta on hot[i]
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for g := 0; g < writers; g++ {
		nets[g] = make([]int, contended)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(700 + g))
			for i := 0; i < ops; i++ {
				ki := r.Intn(contended)
				if r.Intn(2) == 0 {
					changed, err := d.Insert(hot[ki])
					if err != nil {
						errc <- err
						return
					}
					if changed {
						nets[g][ki]++
					}
				} else {
					changed, err := d.Delete(hot[ki])
					if err != nil {
						errc <- err
						return
					}
					if changed {
						nets[g][ki]--
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	d.Quiesce()

	qr := rng.New(62)
	for i := 0; i < contended; i++ {
		membership := 0
		if i < contended/2 {
			membership = 1 // initial member
		}
		for g := 0; g < writers; g++ {
			membership += nets[g][i]
		}
		if membership != 0 && membership != 1 {
			t.Fatalf("key %d: changed-count ledger says membership %d — some claim double-counted", hot[i], membership)
		}
		ok, err := d.Contains(hot[i], qr)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (membership == 1) {
			t.Fatalf("key %d: ledger membership %d but Contains = %v", hot[i], membership, ok)
		}
	}
	// The filler set must be untouched by the contention.
	for _, k := range filler {
		ok, err := d.Contains(k, qr)
		if err != nil || !ok {
			t.Fatalf("filler key %d lost (err %v)", k, err)
		}
	}
}
