// Write absorption: the split-phase half of the two-phase write protocol.
//
// Doppel (Narula's phase-reconciled ddtxn) splits execution into phases:
// during a *split* phase, operations on contended records accumulate in
// per-core structures instead of fighting over shared words, and the
// accumulated deltas merge into the authoritative store at the phase
// boundary. This file applies that trick to the update buffer's hot keys —
// the paper's §1.3 replication idea turned from reads to writes.
//
// An epoch whose classifier has promoted keys runs a split phase: it carries
// an *absorber* — an immutable hot-key index built and published with the
// epoch (the same atomic.Pointer discipline as the snapshot itself). A write
// to a hot key bypasses the claim-slot protocol entirely: it Swaps the key's
// dedicated cache-line-padded state word (the linearization point — wait-free,
// no CAS retry loop, no occupancy traffic, no probe chain) and journals the
// operation in a per-core delta log acquired through the same pooled
// stripe-handle pattern as telemetry's StripedVector. Contains consults the
// index before the buffer walk, so a reader pinning the epoch observes
// absorbed writes immediately — linearizability holds mid-phase.
//
// Phase seal reuses the rebuild fence (writers counter + sealed flag): after
// seal() drains, no writer is inside the absorber either, so the snapshot
// scan reads each hot entry's final state — the last write wins per key, in
// phase-seal order — and folds it into the next epoch's key set. The next
// epoch re-seeds a fresh absorber from the classifier's reclassification;
// per-key churn soaked during the phase costs the rebuild nothing beyond the
// membership bit it already reconciles.
//
// Divergence from Doppel: split-phase reads of contended records there stall
// until the phase joins; our Contains must stay wait-free, so each hot key
// keeps one shared committed-state word. Writers of one hot key therefore
// share that key's padded line (a single wait-free Swap each) instead of
// sharing the whole buffer's slot words, occupancy counter and CAS retry
// convoy — the absorbed path performs zero CAS retries by construction.
package dynamic

import (
	"sync"
	"sync/atomic"

	"repro/internal/cellprobe"
)

// HotClassifier decides which keys are hot enough to absorb. The dictionary
// feeds it every claim walk (concurrently, from the lock-free write path —
// implementations must not take locks there) and consults Pressure on the
// write path; Reclassify runs under the dictionary mutex at each phase
// boundary. *telemetry.HotKeyClassifier implements it; the indirection keeps
// this package below internal/telemetry in the import graph. A non-nil
// Params.Hot enables the two-phase protocol.
type HotClassifier interface {
	// ObserveClaim records one completed claim walk on a cool key: the
	// probes it issued and the CAS races it lost. Called lock-free.
	ObserveClaim(key uint64, probes, casRetries uint64)
	// Pressure reports (and consumes) a pending promotion signal: some cool
	// key has accumulated enough contended claims to deserve absorption.
	// The dictionary answers by turning the phase (sealing into a rebuild).
	// Called lock-free on the write path; must be cheap when idle.
	Pressure() bool
	// Reclassify returns the next phase's hot set given the current one and
	// each current key's absorbed-write count this phase. Serialized by the
	// dictionary mutex; order of the result is the (deterministic) seed
	// order of the next absorber.
	Reclassify(current []uint64, writes func(key uint64) uint64) []uint64
}

// Absorbed states held in a hotEntry's state word.
const (
	absorbAbsent  = uint64(0)
	absorbPresent = uint64(1)
)

// absorbLogCap bounds one per-core journal. Ops past the cap still count
// (ops/overflow) but their journal entries are dropped — the journal is
// accounting and test instrumentation; correctness rides on the state words.
const absorbLogCap = 4096

// hotEntry is one absorbed key's committed state: a full cache line so
// writers of different hot keys never false-share. state is the
// linearization point (Swap on write, Load on read); writes feeds the
// classifier's demotion side at the phase boundary.
type hotEntry struct {
	key    uint64
	state  atomic.Uint64 // absorbAbsent | absorbPresent
	writes atomic.Uint64 // absorbed ops on this key this phase
	_      [5]uint64     // pad to 64 bytes
}

// absorbLog is one per-core delta journal: an append cursor plus a bounded
// entry array, padded on both sides so adjacent stripes never share a line.
// Entries pack del<<63 | key (keys are < 2^61).
type absorbLog struct {
	_    [8]uint64
	next atomic.Uint64 // ops appended (entries beyond absorbLogCap drop)
	ents []atomic.Uint64
	_    [8]uint64
}

const absorbDelBit = uint64(1) << 63

// absorber is the split-phase state of one epoch: the immutable hot-key
// index plus the per-core delta logs. It is built before the epoch is
// published and the index never changes afterwards, so lock-free readers
// and writers use the map without coordination; only the entries' atomic
// words and the logs mutate during the phase.
type absorber struct {
	keys    []uint64             // hot keys in deterministic (seed) order
	entries []hotEntry           // one padded line per hot key
	index   map[uint64]*hotEntry // immutable after construction

	logs []absorbLog
	mask uint64
	next atomic.Uint64
	pool sync.Pool // *uint64: cached per-goroutine stripe index
}

// newAbsorber seeds an absorber for the given hot set, with each key's
// state initialized to its membership in the snapshot being published.
// stripes is rounded up to a power of two (<=0 selects the cellprobe
// default, min(GOMAXPROCS, 8)).
func newAbsorber(hot []uint64, member func(uint64) bool, stripes int) *absorber {
	if stripes <= 0 {
		stripes = cellprobe.DefaultVectorStripes()
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	a := &absorber{
		keys:    append([]uint64(nil), hot...),
		entries: make([]hotEntry, len(hot)),
		index:   make(map[uint64]*hotEntry, len(hot)),
		logs:    make([]absorbLog, n),
		mask:    uint64(n - 1),
	}
	for i, k := range a.keys {
		e := &a.entries[i]
		e.key = k
		if member(k) {
			e.state.Store(absorbPresent)
		}
		a.index[k] = e
	}
	for s := range a.logs {
		a.logs[s].ents = make([]atomic.Uint64, absorbLogCap)
	}
	a.pool.New = func() any {
		i := new(uint64)
		*i = a.next.Add(1) - 1
		return i
	}
	return a
}

// entry returns x's hot entry, or nil when x is cool this phase. The index
// is immutable, so this is safe from any goroutine without coordination.
func (a *absorber) entry(x uint64) *hotEntry { return a.index[x] }

// absorb applies one write to a hot key: Swap the committed state (the
// linearization point — wait-free, zero CAS retries) and journal the op on
// the calling goroutine's stripe. It reports whether membership changed.
func (a *absorber) absorb(ent *hotEntry, del bool) (changed bool) {
	st := absorbPresent
	if del {
		st = absorbAbsent
	}
	old := ent.state.Swap(st)
	ent.writes.Add(1)

	h := a.pool.Get().(*uint64)
	s := *h & a.mask
	a.pool.Put(h)
	l := &a.logs[s]
	packed := ent.key
	if del {
		packed |= absorbDelBit
	}
	if i := l.next.Add(1) - 1; i < absorbLogCap {
		l.ents[i].Store(packed)
	}
	return old != st
}

// ops returns the total absorbed operations journaled across all stripes.
// Exact only after the phase is sealed (the rebuild fence has drained).
func (a *absorber) ops() uint64 {
	var total uint64
	for s := range a.logs {
		total += a.logs[s].next.Load()
	}
	return total
}

// writesOf returns the absorbed-write count of one hot key (0 for cool
// keys) — the classifier's demotion signal at the phase boundary.
func (a *absorber) writesOf(k uint64) uint64 {
	if e := a.index[k]; e != nil {
		return e.writes.Load()
	}
	return 0
}

// finalStates iterates the hot keys in seed order with each key's committed
// membership. Callers must hold the phase sealed (post-fence), so the states
// are the per-key last writes in phase-seal order.
func (a *absorber) finalStates(f func(key uint64, present bool)) {
	for i := range a.entries {
		e := &a.entries[i]
		f(e.key, e.state.Load() == absorbPresent)
	}
}

// journal returns one stripe's logged (key, del) entries in append order,
// for tests that verify reconciliation ordering. Valid post-seal; entries
// dropped past the journal cap are not returned (see ops for exact counts).
func (a *absorber) journal(stripe int) []update {
	l := &a.logs[stripe]
	n := l.next.Load()
	if n > absorbLogCap {
		n = absorbLogCap
	}
	out := make([]update, 0, n)
	for i := uint64(0); i < n; i++ {
		w := l.ents[i].Load()
		out = append(out, update{key: w &^ absorbDelBit, del: w&absorbDelBit != 0})
	}
	return out
}
