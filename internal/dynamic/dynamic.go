// Package dynamic extends the static low-contention dictionary to support
// insertions and deletions — the direction the paper's §4 names as future
// work ("study the contention caused by the updates in dynamic data
// structures").
//
// The design is global rebuilding over the Theorem 3 structure:
//
//   - a static core.Dict holds a snapshot S₀;
//   - a small open-addressing buffer (its own cell-probe table, with
//     replicated hash parameters) absorbs updates: inserted keys, and
//     tombstones for deleted snapshot keys;
//   - queries check the buffer (expected O(1) probes at the buffer's tiny
//     load factor), then fall through to the static structure;
//   - when the buffer holds ε·n entries the whole dictionary is rebuilt
//     from the current key set, giving amortized O(1/ε) work per update
//     on top of the static O(n) construction.
//
// # Concurrency model
//
// The pair (static snapshot, update buffer) forms an immutable *epoch*
// published through an atomic pointer — the RCU discipline of lock-free
// open-addressing tables (Gao–Groote–Hesselink). Readers load the current
// epoch and probe it without taking any lock: the static table is immutable
// and the buffer's slot words are single atomic loads. Writers serialize on
// a mutex, publish each update with one atomic slot store, and when the
// buffer fills hand the ε·n global rebuild to a background goroutine; the
// old epoch stays fully readable until the new one is swapped in, at which
// point updates that arrived mid-rebuild are replayed into the fresh
// buffer. A membership query therefore performs zero shared mutable-memory
// writes outside the probed cells (read-probe statistics go to a striped
// counter, itself padded per goroutine).
//
// Read contention stays within a constant of the static dictionary's: the
// buffer's parameter row is replicated and its slot probes are spread by
// hashing. Update contention is the interesting quantity the paper asks
// about — every writer must touch the buffer's occupancy region, and the
// package counts read and write probes separately (Stats.ReadProbes,
// Stats.WriteProbes) so experiment X1 can quantify exactly that.
package dynamic

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cellprobe"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
)

// Slot tags in the buffer (the top bits of a packed slot word).
const (
	slotEmpty    = uint64(0)
	slotInserted = uint64(1)
	slotDeleted  = uint64(2) // tombstone for a snapshot key
	slotVacated  = uint64(3) // removed buffer entry; keeps probe chains intact
)

// A buffer slot packs (tag, key) into one word so that readers and the
// writer exchange it with single atomic operations: keys are < 2^61, the
// tag takes the bits above.
const (
	tagShift = 61
	keyMask  = uint64(1)<<tagShift - 1
)

const (
	bufParamRow = 0
	bufSlotRow  = 1
	bufRows     = 2
)

// Params configures the dynamic dictionary.
type Params struct {
	// Epsilon is the buffer fraction: a rebuild triggers after
	// ⌈Epsilon·max(n,1)⌉ buffered updates. Must be in (0, 1]. Default 0.25.
	Epsilon float64
	// Static configures the underlying static construction.
	Static core.Params
	// SyncRebuild runs global rebuilds inline on the triggering update
	// instead of in a background goroutine. Readers are never blocked
	// either way; synchronous mode makes the epoch sequence deterministic
	// for reproducible experiments (X1) at the cost of O(n) update-call
	// latency at each rebuild.
	SyncRebuild bool
	// Sink, when non-nil, observes every recorded probe of the published
	// epochs' tables (live telemetry): it is installed on each new epoch's
	// static and buffer tables before the epoch is published, so readers
	// never race the installation. Buffer probes are reported with their
	// step offset by the static MaxProbes, keeping the two step ranges
	// distinguishable in step-mass reports. The sink sees the write path's
	// buffer probes too (the table cannot tell them apart); Stats separates
	// read and write probe counts exactly.
	Sink cellprobe.ProbeSink
	// Metrics, when non-nil, receives the rebuild-side telemetry: epoch
	// publishes, rebuild durations, writer pauses at the delta hard cap,
	// and the buffered-delta depth.
	Metrics Metrics
}

// Metrics receives a dynamic dictionary's rebuild-side telemetry.
// *telemetry.DynamicMetrics implements it; the indirection keeps this
// package below internal/telemetry in the import graph.
type Metrics interface {
	RebuildDone(n int, durationNs int64)
	RebuildFailed(durationNs int64)
	WriterPaused(pauseNs int64)
	SetDeltaDepth(depth int)
}

// stepSink offsets every observed probe's step — the buffer table's sink,
// so buffer steps land past the static dictionary's step range.
type stepSink struct {
	sink cellprobe.ProbeSink
	off  int
}

func (s stepSink) ProbeObserved(step, cell int) { s.sink.ProbeObserved(step+s.off, cell) }

// Stats describes the dictionary's dynamic behaviour.
type Stats struct {
	Len             int    // current number of keys
	Epoch           int    // rebuilds performed
	SnapshotN       int    // keys in the current static snapshot
	Buffered        int    // live buffer entries (inserts + tombstones)
	BufferSlots     int    // buffer slot capacity
	RebuildKeys     int    // total keys across all rebuilds (amortization numerator)
	Updates         int    // total Insert/Delete calls that changed state
	ReadProbes      uint64 // probes issued by Contains (static probes counted at MaxProbes)
	WriteProbes     uint64 // probes and writes issued by Insert/Delete (replays included)
	RebuildCells    int    // cells written by the last rebuild
	StaticHashTries int    // hash draws of the last rebuild
}

// buffer is the update buffer of one epoch: an open-addressing table whose
// slot words are atomic, so lock-free readers run concurrently with the
// writer. The acct table carries the cell-probe model's accounting (probe
// recording, replicated parameter row); slot data lives in the packed
// atomic words. Occupancy counters are owned by the writer lock.
type buffer struct {
	acct      *cellprobe.Table
	slots     []atomic.Uint64
	width     int
	threshold int // occupancy that triggers a rebuild
	hardCap   int // occupancy at which writers wait for the rebuild (load ≤ 1/2)
	buffered  int // occupied minus vacated entries
	occupied  int // slots not empty (including vacated) — drives rebuild
}

// params probes a random replica of the buffer's parameter row.
func (b *buffer) params(r rng.Source) hash.Pairwise {
	c := b.acct.Probe(0, bufParamRow, r.Intn(b.width))
	return hash.Pairwise{A: c.Lo, B: c.Hi, M: uint64(b.width)}
}

// find walks the probe chain for x. It returns the slot holding x
// (found=true) or the first empty slot (found=false). Probes are recorded
// at steps 1, 2, ... on the accounting table; callers already probed the
// parameter row at step 0.
func (b *buffer) find(x uint64, h hash.Pairwise) (slot int, tag uint64, found bool, probes uint64, err error) {
	p := int(h.Eval(x))
	for step := 1; step <= b.width+1; step++ {
		b.acct.Probe(step, bufSlotRow, p)
		w := b.slots[p].Load()
		probes++
		t := w >> tagShift
		switch {
		case t == slotEmpty:
			return p, slotEmpty, false, probes, nil
		case w&keyMask == x && t != slotVacated:
			return p, t, true, probes, nil
		}
		p = (p + 1) % b.width
	}
	return 0, 0, false, probes, fmt.Errorf("dynamic: buffer scan wrapped (corrupt table?)")
}

// set publishes one slot with a single atomic store.
func (b *buffer) set(slot int, x, tag uint64) {
	b.slots[slot].Store(tag<<tagShift | x)
}

// epoch is one immutable published state: a static snapshot plus the buffer
// absorbing the updates since. Readers obtain both with one pointer load.
type epoch struct {
	base *core.Dict
	buf  *buffer
}

// update is one buffered operation, logged for replay when a background
// rebuild swaps epochs.
type update struct {
	key uint64
	del bool
}

// Dict is a dynamic low-contention dictionary. Contains and Len are safe
// for any number of concurrent callers and take no lock; Insert and Delete
// serialize on an internal writer mutex and may run concurrently with
// readers. Probe recording (BaseTable/BufferTable with an attached
// Recorder) is a sequential measurement mode: quiesce and stop updating
// while a recorder is attached.
type Dict struct {
	p    Params
	seed uint64

	cur atomic.Pointer[epoch]
	n   atomic.Int64 // len(members), mirrored for lock-free Len

	readProbes *cellprobe.StripedCounter
	scratch    sync.Pool // *core.QueryScratch reused across Contains calls

	mu          sync.Mutex
	cond        *sync.Cond
	members     map[uint64]bool // current key set (oracle for rebuilds)
	epoch       int             // epochs started (== Stats.Epoch when idle)
	rebuilding  bool
	rebuildErr  error
	delta       []update // updates applied since the rebuild snapshot was taken
	writeProbes uint64
	stats       Stats
}

// New builds a dynamic dictionary over the initial keys. The initial
// construction (epoch 1) is always synchronous.
func New(initial []uint64, p Params, seed uint64) (*Dict, error) {
	if p.Epsilon == 0 {
		p.Epsilon = 0.25
	}
	if p.Epsilon < 0 || p.Epsilon > 1 {
		return nil, fmt.Errorf("dynamic: epsilon %v outside (0, 1]", p.Epsilon)
	}
	d := &Dict{
		p:          p,
		seed:       seed,
		readProbes: cellprobe.NewStripedCounter(),
		members:    make(map[uint64]bool, len(initial)),
	}
	d.scratch.New = func() any { return new(core.QueryScratch) }
	d.cond = sync.NewCond(&d.mu)
	if err := scheme.ValidateKeys(initial); err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	for _, k := range initial {
		d.members[k] = true
	}
	d.n.Store(int64(len(d.members)))
	d.mu.Lock()
	defer d.mu.Unlock()
	d.epoch = 1
	keys := d.memberKeys()
	started := time.Now()
	base, err := core.Build(keys, d.p.Static, d.seed+1)
	d.rebuilding = true
	d.finishRebuild(base, err, 1, len(keys), started)
	if d.rebuildErr != nil {
		return nil, d.rebuildErr
	}
	return d, nil
}

// memberKeys snapshots the current key set. Callers hold d.mu.
func (d *Dict) memberKeys() []uint64 {
	keys := make([]uint64, 0, len(d.members))
	for k := range d.members {
		keys = append(keys, k)
	}
	return keys
}

// newBuffer sizes and seeds the buffer of epoch ep for a snapshot of n keys.
func (d *Dict) newBuffer(n, ep int) *buffer {
	threshold := int(d.p.Epsilon * float64(max(n, 1)))
	if threshold < 1 {
		threshold = 1
	}
	// Slot capacity 4× the threshold keeps the load factor ≤ 1/4 at the
	// trigger point (and ≤ 1/2 at the writers' hard cap) so probe chains
	// stay O(1) in expectation.
	width := 4 * threshold
	if width < 8 {
		width = 8
	}
	b := &buffer{
		acct:      cellprobe.New(bufRows, width),
		slots:     make([]atomic.Uint64, width),
		width:     width,
		threshold: threshold,
		hardCap:   width / 2,
	}
	r := rng.New(d.seed ^ uint64(ep)<<32)
	h := hash.NewPairwise(r, uint64(width))
	params := cellprobe.Cell{Lo: h.A, Hi: h.B}
	for j := 0; j < width; j++ {
		b.acct.Set(bufParamRow, j, params)
	}
	return b
}

// startRebuild snapshots the member set and kicks off construction of the
// next epoch. Callers hold d.mu.
func (d *Dict) startRebuild() {
	d.rebuilding = true
	d.epoch++
	ep := d.epoch
	keys := d.memberKeys()
	d.delta = nil
	started := time.Now()
	if d.p.SyncRebuild {
		base, err := core.Build(keys, d.p.Static, d.seed+uint64(ep))
		d.finishRebuild(base, err, ep, len(keys), started)
		return
	}
	go func() {
		base, err := core.Build(keys, d.p.Static, d.seed+uint64(ep))
		d.mu.Lock()
		defer d.mu.Unlock()
		d.finishRebuild(base, err, ep, len(keys), started)
	}()
}

// finishRebuild publishes epoch ep around the freshly built base, replaying
// any updates that arrived while the build ran. Callers hold d.mu.
func (d *Dict) finishRebuild(base *core.Dict, err error, ep, n int, started time.Time) {
	d.rebuilding = false
	defer d.cond.Broadcast()
	if err != nil {
		if d.p.Metrics != nil {
			d.p.Metrics.RebuildFailed(time.Since(started).Nanoseconds())
		}
		d.rebuildErr = fmt.Errorf("dynamic: rebuild %d: %w", ep, err)
		return
	}
	buf := d.newBuffer(n, ep)
	for _, u := range d.delta {
		if aerr := d.apply(buf, u.key, u.del); aerr != nil {
			d.rebuildErr = fmt.Errorf("dynamic: rebuild %d replay: %w", ep, aerr)
			return
		}
	}
	d.delta = nil
	if d.p.Sink != nil {
		// Installed before the epoch pointer is published: no reader has the
		// new tables yet, so SetSink cannot race a probe.
		base.Table().SetSink(d.p.Sink)
		buf.acct.SetSink(stepSink{sink: d.p.Sink, off: base.MaxProbes()})
	}
	if d.p.Metrics != nil {
		d.p.Metrics.RebuildDone(n, time.Since(started).Nanoseconds())
		d.p.Metrics.SetDeltaDepth(buf.buffered)
	}
	d.cur.Store(&epoch{base: base, buf: buf})
	d.stats.Epoch = ep
	d.stats.SnapshotN = n
	d.stats.RebuildKeys += n
	d.stats.RebuildCells = base.Table().Size() + buf.acct.Size()
	d.stats.StaticHashTries = base.Report().HashTries
	// Replayed updates may already exceed the new, possibly smaller
	// threshold — go again rather than let writers hit the hard cap.
	if buf.occupied >= buf.threshold {
		d.startRebuild()
	}
}

// apply writes one update into b's probe chain. Callers hold d.mu.
func (d *Dict) apply(b *buffer, x uint64, del bool) error {
	seed := d.seed ^ x
	if del {
		seed ^= 0xdead
	}
	h := b.params(rng.New(seed))
	slot, tag, found, probes, err := b.find(x, h)
	if err != nil {
		return err
	}
	d.writeProbes += probes + 2 // chain + parameter probe + slot write
	if !del {
		if found && tag == slotDeleted {
			// Re-inserting a snapshot key that was tombstoned: drop the
			// tombstone; the static structure already holds it.
			b.set(slot, x, slotVacated)
			b.buffered--
			return nil
		}
		b.set(slot, x, slotInserted)
		b.buffered++
		b.occupied++
		return nil
	}
	if found && tag == slotInserted {
		// The key only ever lived in the buffer.
		b.set(slot, x, slotVacated)
		b.buffered--
		return nil
	}
	// Tombstone a snapshot key.
	b.set(slot, x, slotDeleted)
	b.buffered++
	b.occupied++
	return nil
}

// writableEpoch returns the current epoch once its buffer has room for one
// more entry, waiting out an in-flight rebuild if the writer outran it.
// Callers hold d.mu.
func (d *Dict) writableEpoch() (*epoch, error) {
	var pauseStart time.Time
	paused := false
	endPause := func() {
		if paused && d.p.Metrics != nil {
			d.p.Metrics.WriterPaused(time.Since(pauseStart).Nanoseconds())
		}
	}
	for {
		if d.rebuildErr != nil {
			endPause()
			return nil, d.rebuildErr
		}
		e := d.cur.Load()
		if e.buf.occupied < e.buf.hardCap {
			endPause()
			return e, nil
		}
		if !d.rebuilding {
			d.startRebuild()
			continue
		}
		if !paused {
			paused = true
			pauseStart = time.Now()
		}
		d.cond.Wait()
	}
}

// Contains answers membership for x through recorded probes on both the
// buffer and the static tables of the current epoch. It takes no lock and
// writes no shared cache line beyond the striped probe counter; its working
// memory comes from a pooled scratch, so the steady-state read path
// performs no heap allocation.
func (d *Dict) Contains(x uint64, r rng.Source) (bool, error) {
	e := d.cur.Load()
	sc := d.scratch.Get().(*core.QueryScratch)
	ok, err := d.containsEpoch(e, x, r, sc)
	d.scratch.Put(sc)
	return ok, err
}

// ContainsScratch is Contains with caller-supplied working memory, pinning
// the current epoch for the single query. The facade's telemetry path uses
// it with a capture-armed scratch to trace the static probes of a query
// (buffer probes are not captured — their cell indices are epoch-local).
func (d *Dict) ContainsScratch(x uint64, r rng.Source, sc *core.QueryScratch) (bool, error) {
	return d.containsEpoch(d.cur.Load(), x, r, sc)
}

// containsEpoch answers membership against one pinned epoch.
func (d *Dict) containsEpoch(e *epoch, x uint64, r rng.Source, sc *core.QueryScratch) (bool, error) {
	b := e.buf
	h := b.params(r)
	_, tag, found, probes, err := b.find(x, h)
	if err != nil {
		return false, err
	}
	d.readProbes.Add(probes + 1) // chain + the parameter probe
	if found {
		switch tag {
		case slotInserted:
			return true, nil
		case slotDeleted:
			return false, nil
		}
	}
	d.readProbes.Add(uint64(e.base.MaxProbes()))
	return e.base.ContainsScratch(x, r, sc)
}

// ContainsBatch answers membership for every keys[i] into out[i]. The whole
// batch runs against a single epoch snapshot loaded once up front — one
// atomic pointer load and one scratch fetch amortized over the batch — so
// concurrent updates that publish a new epoch mid-batch are not observed.
// out must be at least as long as keys. It stops at the first corrupt-table
// error.
func (d *Dict) ContainsBatch(keys []uint64, out []bool, r rng.Source) error {
	if len(out) < len(keys) {
		return fmt.Errorf("dynamic: ContainsBatch output length %d < %d keys", len(out), len(keys))
	}
	e := d.cur.Load()
	sc := d.scratch.Get().(*core.QueryScratch)
	defer d.scratch.Put(sc)
	for i, x := range keys {
		ok, err := d.containsEpoch(e, x, r, sc)
		if err != nil {
			return err
		}
		out[i] = ok
	}
	return nil
}

// Insert adds x. It reports whether the dictionary changed; crossing the
// buffer threshold triggers a rebuild (background unless SyncRebuild).
func (d *Dict) Insert(x uint64) (bool, error) {
	if x >= hash.MaxKey {
		return false, fmt.Errorf("dynamic: key %d outside universe", x)
	}
	return d.mutate(x, false)
}

// Delete removes x. It reports whether the dictionary changed.
func (d *Dict) Delete(x uint64) (bool, error) {
	return d.mutate(x, true)
}

// mutate is the shared write path: membership check, buffer publish, delta
// log for an in-flight rebuild, threshold trigger.
func (d *Dict) mutate(x uint64, del bool) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.members[x] != del { // insert of present key / delete of absent key
		return false, nil
	}
	e, err := d.writableEpoch()
	if err != nil {
		return false, err
	}
	if err := d.apply(e.buf, x, del); err != nil {
		return false, err
	}
	if del {
		delete(d.members, x)
	} else {
		d.members[x] = true
	}
	d.n.Store(int64(len(d.members)))
	d.stats.Updates++
	if d.p.Metrics != nil {
		d.p.Metrics.SetDeltaDepth(e.buf.buffered)
	}
	if d.rebuilding {
		d.delta = append(d.delta, update{key: x, del: del})
	}
	if e.buf.occupied >= e.buf.threshold && !d.rebuilding && d.rebuildErr == nil {
		d.startRebuild()
	}
	return true, nil
}

// Len returns the current number of keys without taking a lock.
func (d *Dict) Len() int { return int(d.n.Load()) }

// Quiesce blocks until no rebuild is in flight. Call it before attaching
// probe recorders or reading Stats that must reflect a settled epoch.
func (d *Dict) Quiesce() {
	d.mu.Lock()
	for d.rebuilding {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// Rebuilding reports whether a background rebuild is currently in flight.
func (d *Dict) Rebuilding() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rebuilding
}

// Stats returns a snapshot of the dynamic statistics. Epoch-dependent
// fields settle only after Quiesce.
func (d *Dict) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Len = len(d.members)
	b := d.cur.Load().buf
	s.Buffered = b.buffered
	s.BufferSlots = b.width
	s.ReadProbes = d.readProbes.Sum()
	s.WriteProbes = d.writeProbes
	return s
}

// BaseTable exposes the current epoch's static table (for contention
// recording). The result is stable only while the dictionary is quiescent.
func (d *Dict) BaseTable() *cellprobe.Table { return d.cur.Load().base.Table() }

// Base exposes the current epoch's static snapshot itself, so exact
// contention can be computed for the structure live queries currently fall
// through to (the telemetry live-vs-exact comparison). Like BaseTable, the
// result is stable only while the dictionary is quiescent — a concurrent
// rebuild publishes a new snapshot.
func (d *Dict) Base() *core.Dict { return d.cur.Load().base }

// BufferTable exposes the current epoch's update-buffer table. Slot cells
// read as zero through it — slot data lives in atomic words — but probe
// accounting (recording, size) is exact.
func (d *Dict) BufferTable() *cellprobe.Table { return d.cur.Load().buf.acct }

// MaxReadProbes bounds the probes of one Contains call in the common case
// (buffer chain of length 1): one parameter probe, one slot probe, plus the
// static dictionary's probes. Longer chains add one probe each.
func (d *Dict) MaxReadProbes() int { return 2 + d.cur.Load().base.MaxProbes() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
